// incremental demonstrates the incremental N-sigma STA engine: one full
// analysis up front, then ECO-style edits (here: upsizing every cell on the
// worst path) that re-propagate eq. 10 through only the downstream cone of
// each edit. For every edit it prints how many gates were re-evaluated
// against what a from-scratch analysis would have to time, and at the end it
// proves the incremental state is bit-identical to a fresh run.
//
// With no -lib argument it characterises a coefficients file first, which
// takes several minutes; reuse one from cmd/characterize to skip that:
//
//	go run ./cmd/characterize -profile quick -out coeffs.json
//	go run ./examples/incremental -lib coeffs.json -circuit c1355
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/experiments"
)

func main() {
	libPath := flag.String("lib", "", "coefficients file (empty = characterise now at quick effort)")
	circuit := flag.String("circuit", "c432", "benchmark name")
	flag.Parse()

	var lib *repro.TimingFile
	if *libPath != "" {
		var err error
		lib, err = repro.LoadTimingFile(*libPath)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Println("no -lib given: characterising the library at quick effort (minutes)...")
		ctx := experiments.NewContext(experiments.Quick, 1)
		ctx.Log = os.Stderr
		var err error
		lib, err = ctx.BuildTimingFile()
		if err != nil {
			log.Fatal(err)
		}
	}

	nl, err := repro.GenerateBenchmark(*circuit)
	if err != nil {
		log.Fatal(err)
	}
	cfg := repro.DefaultConfig()
	trees, err := repro.ExtractParasitics(cfg, nl, 1)
	if err != nil {
		log.Fatal(err)
	}

	t0 := time.Now()
	eng, err := repro.NewIncrementalEngine(context.Background(), lib, nl, repro.WithParasitics(trees))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s: %d cells — initial full analysis in %v\n",
		nl.Name, eng.GateCount(), time.Since(t0).Round(time.Millisecond))

	// The ECO: upsize every distinct cell on the +3σ worst path one drive
	// strength step (1→2→4→8), the classic fix for a failing setup path.
	paths, err := eng.Snapshot().WorstPaths(1)
	if err != nil || len(paths) == 0 {
		log.Fatalf("worst path: %v", err)
	}
	worst := paths[0]
	before := worst.Quantile(3)
	fmt.Printf("worst path: %d stages ending at %s, +3σ delay %.1f ps\n",
		len(worst.Stages), worst.Endpoint, before*1e12)

	design, _ := eng.CopyDesign()
	seen := map[int]bool{}
	var targets []int
	for _, s := range worst.Stages {
		if s.GateIdx >= 0 && !seen[s.GateIdx] {
			seen[s.GateIdx] = true
			targets = append(targets, s.GateIdx)
		}
	}
	sort.Ints(targets)

	fmt.Printf("\n%-8s %-12s %8s %8s %8s %10s\n",
		"gate", "edit", "seeded", "reeval", "cut", "cone size")
	var edits, reeval int
	for _, gi := range targets {
		g := design.Gates[gi]
		next, ok := upsize(g.Cell)
		if !ok {
			continue // already at max drive
		}
		rep, err := eng.ResizeCell(g.Name, next)
		if err != nil {
			log.Fatalf("resize %s: %v", g.Name, err)
		}
		edits++
		reeval += rep.Reevaluated
		fmt.Printf("%-8s %-12s %8d %8d %8d %9.1f%%\n",
			g.Name, fmt.Sprintf("%s→x%d", g.Cell, next),
			rep.Seeded, rep.Reevaluated, rep.Cut,
			100*float64(rep.Reevaluated)/float64(eng.GateCount()))
	}

	after, err := eng.Snapshot().WorstPaths(1)
	if err != nil || len(after) == 0 {
		log.Fatalf("worst path after ECO: %v", err)
	}
	fmt.Printf("\nworst path +3σ delay: %.1f ps → %.1f ps\n",
		before*1e12, after[0].Quantile(3)*1e12)

	full := edits * eng.GateCount()
	stats := eng.Stats()
	fmt.Printf("\nincremental work: %d gate evaluations over %d edits\n", reeval, edits)
	fmt.Printf("full re-analysis: %d evaluations (%d × %d gates) — %.1f× more\n",
		full, edits, eng.GateCount(), float64(full)/float64(max(reeval, 1)))
	fmt.Printf("cache hit ratio:  %.3f\n", stats.CacheHitRatio())

	t0 = time.Now()
	if err := eng.VerifyFull(context.Background()); err != nil {
		log.Fatalf("verify: %v", err)
	}
	fmt.Printf("\nverified bit-identical to a fresh analysis (in %v)\n",
		time.Since(t0).Round(time.Millisecond))
}

// upsize returns the next drive strength above the cell's ("INVx2" → 4), or
// false when the cell is already at the top of the 1/2/4/8 ladder.
func upsize(cell string) (int, bool) {
	i := strings.LastIndexByte(cell, 'x')
	if i < 0 {
		return 0, false
	}
	s, err := strconv.Atoi(cell[i+1:])
	if err != nil || s >= 8 {
		return 0, false
	}
	return s * 2, true
}
