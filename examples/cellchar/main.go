// cellchar reproduces the paper's Table II experiment in miniature: for a
// handful of cells, compare the ±3σ delay estimates of the LSN and Burr
// distribution fits against the N-sigma model, all scored on golden
// Monte-Carlo quantiles under the FO4 constraint.
//
//	go run ./examples/cellchar [-samples 1500]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro"
	"repro/internal/baseline"
	"repro/internal/stats"
)

func main() {
	samples := flag.Int("samples", 1500, "Monte-Carlo samples per measurement")
	flag.Parse()

	cfg := repro.DefaultConfig()
	cells := []string{"NOR2x1", "NAND2x2", "AOI2x4"}

	fmt.Printf("%-9s %10s %10s | %7s %7s | %7s %7s | %7s %7s\n",
		"cell", "-3s (ps)", "+3s (ps)", "LSN-3", "LSN+3", "Burr-3", "Burr+3", "ours-3", "ours+3")

	for _, name := range cells {
		cell := cfg.Lib.MustCell(name)
		arc := repro.Arc{Cell: name, Pin: cell.Inputs[0], InEdge: repro.Rising}
		fo4 := 4 * cell.PinCap(cell.Inputs[0])

		// Golden distribution at the FO4 point.
		smp, err := cfg.MCArc(context.Background(), arc, repro.Reference.Slew, fo4, *samples, 7)
		if err != nil {
			log.Fatal(err)
		}
		q := smp.SigmaQuantiles()

		lsn, err := baseline.FitLSN(smp.Delay)
		if err != nil {
			log.Fatal(err)
		}
		burr, err := baseline.FitBurr(smp.Delay)
		if err != nil {
			log.Fatal(err)
		}

		char, err := repro.CharacterizeArc(cfg, arc,
			[]float64{10e-12, 100e-12, 300e-12},
			[]float64{0.4e-15 * float64(cell.Strength), fo4, 2 * fo4},
			*samples, 11)
		if err != nil {
			log.Fatal(err)
		}
		model, err := repro.FitArc(char)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%-9s %10.2f %10.2f | %7.2f %7.2f | %7.2f %7.2f | %7.2f %7.2f\n",
			name, q[-3]*1e12, q[3]*1e12,
			stats.RelErr(lsn.SigmaQuantile(-3), q[-3]), stats.RelErr(lsn.SigmaQuantile(3), q[3]),
			stats.RelErr(burr.SigmaQuantile(-3), q[-3]), stats.RelErr(burr.SigmaQuantile(3), q[3]),
			stats.RelErr(model.Quantile(-3, repro.Reference.Slew, fo4), q[-3]),
			stats.RelErr(model.Quantile(3, repro.Reference.Slew, fo4), q[3]))
	}
	fmt.Println("\n(error columns are % vs the golden MC quantiles; cf. paper Table II)")
}
