// Quickstart: characterise one inverter timing arc against the golden
// Monte-Carlo simulator, fit the N-sigma model, and query calibrated delay
// quantiles at an operating condition the characterisation grid never saw.
//
//	go run ./examples/quickstart
//
// Takes a few seconds: every number here comes from real transistor-level
// transient simulations.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	cfg := repro.DefaultConfig()

	// The arc: INVx1, input pin A, rising input (falling output).
	arc := repro.Arc{Cell: "INVx1", Pin: "A", InEdge: repro.Rising}

	// Characterise over a small slew × load grid, 600 Monte-Carlo samples
	// per point (the paper uses 10k; raise this for tighter tails).
	fmt.Println("characterising INVx1/A against the golden MC simulator...")
	char, err := repro.CharacterizeArc(cfg, arc,
		[]float64{10e-12, 60e-12, 150e-12, 300e-12}, // input slews (s)
		[]float64{0.1e-15, 0.4e-15, 1.2e-15, 3e-15}, // output loads (F)
		600, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Fit the N-sigma model: moment LUT + Table-I quantile coefficients.
	model, err := repro.FitArc(char)
	if err != nil {
		log.Fatal(err)
	}

	// Query an operating point between grid nodes.
	slew, load := 80e-12, 0.9e-15
	m := model.MomentsAt(slew, load)
	fmt.Printf("\ncalibrated moments at S=%.0fps C=%.1ffF:\n", slew*1e12, load*1e15)
	fmt.Printf("  mu=%.2fps sigma=%.2fps skewness=%.2f kurtosis=%.2f\n",
		m.Mean*1e12, m.Std*1e12, m.Skewness, m.Kurtosis)

	fmt.Println("\nN-sigma delay quantiles (paper Table I):")
	for _, n := range []int{-3, -2, -1, 0, 1, 2, 3} {
		fmt.Printf("  %+dsigma: %7.2f ps\n", n, model.Quantile(n, slew, load)*1e12)
	}

	// The ±6σ extension the paper mentions for rigorous signoff.
	fmt.Printf("\n+6sigma extension: %.2f ps\n", model.Quantile(6, slew, load)*1e12)
	fmt.Printf("output slew handed downstream: %.2f ps\n", model.OutSlew(slew, load)*1e12)
}
