// observability demonstrates the unified metrics/tracing layer on a live
// design: it runs one full N-sigma analysis, fires an ECO edit burst at an
// incremental engine, and then prints a per-stage latency table read
// straight from the process-wide obs registry — the same histograms
// cmd/timingd exposes on /metrics. With -trace-out it also records every
// span (full analysis, per-level propagation, per-edit re-propagation) into
// a Chrome trace_event JSON file; open it at https://ui.perfetto.dev.
//
// The synthetic full-coverage coefficients library keeps the run to a few
// seconds — no Monte-Carlo characterisation needed:
//
//	go run ./examples/observability -circuit c880 -edits 32 -trace-out trace.json
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"repro"
	"repro/internal/libsynth"
	"repro/internal/obs"
)

func main() {
	circuit := flag.String("circuit", "c432", "benchmark name")
	edits := flag.Int("edits", 24, "ECO burst size (resize edits)")
	traceOut := flag.String("trace-out", "", "write a Chrome trace_event JSON file here")
	flag.Parse()

	if *traceOut != "" {
		obs.Trace.Enable(obs.DefaultSpanBuffer)
	}

	lib := libsynth.File()
	nl, err := repro.GenerateBenchmark(*circuit)
	if err != nil {
		log.Fatal(err)
	}
	trees, err := repro.ExtractParasitics(repro.DefaultConfig(), nl, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Stage 1: one full analysis (populates sta_analyze_seconds and, when
	// tracing, one sta_level span per wavefront level).
	ctx := context.Background()
	timer, err := repro.NewTimer(ctx, lib, nl, repro.WithParasitics(trees))
	if err != nil {
		log.Fatal(err)
	}
	res, err := timer.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d gate arcs timed, +3σ critical arrival %.1f ps\n",
		nl.Name, res.GatesTimed, res.ArrivalQ[3]*1e12)

	// Stage 2: the incremental engine plus an ECO burst — every gate that
	// has headroom on the 1/2/4/8 drive ladder is upsized one step, each
	// edit re-propagating only its downstream cone (incsta_edit_seconds,
	// incsta_dirty_cone_gates, incsta_epsilon_cut_gates).
	eng, err := repro.NewIncrementalEngine(ctx, lib, nl, repro.WithParasitics(trees))
	if err != nil {
		log.Fatal(err)
	}
	design, _ := eng.CopyDesign()
	applied := 0
	for gi := 0; applied < *edits && gi < len(design.Gates); gi++ {
		g := design.Gates[gi]
		next, ok := upsize(g.Cell)
		if !ok {
			continue
		}
		if _, err := eng.ResizeCell(g.Name, next); err != nil {
			log.Fatalf("resize %s: %v", g.Name, err)
		}
		applied++
	}
	fmt.Printf("applied %d resize edits (cache hit ratio %.3f)\n\n",
		applied, eng.Stats().CacheHitRatio())

	// The per-stage latency table, read from the same registry /metrics
	// scrapes. Latencies in µs; the cone/cut rows are gate counts.
	fmt.Printf("%-28s %8s %12s %12s %12s\n", "stage", "count", "p50", "p95", "p99")
	row := func(label, metric string, scale float64, unit string) {
		h := obs.Default().Histogram(metric, "")
		if h.Count() == 0 {
			return
		}
		fmt.Printf("%-28s %8d %10.1f %s %10.1f %s %10.1f %s\n", label, h.Count(),
			h.Quantile(0.5)*scale, unit, h.Quantile(0.95)*scale, unit, h.Quantile(0.99)*scale, unit)
	}
	row("full STA analysis", "sta_analyze_seconds", 1e6, "µs")
	row("incremental edit", "incsta_edit_seconds", 1e6, "µs")
	row("dirty-cone size", "incsta_dirty_cone_gates", 1, "  ")
	row("epsilon-cut gates", "incsta_epsilon_cut_gates", 1, "  ")

	if *traceOut != "" {
		if err := obs.Trace.WriteFile(*traceOut); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s (%d spans) — open at https://ui.perfetto.dev\n",
			*traceOut, obs.Trace.Len())
	}
}

// upsize returns the next drive strength above the cell's ("INVx2" → 4), or
// false when the cell is already at the top of the 1/2/4/8 ladder.
func upsize(cell string) (int, bool) {
	i := strings.LastIndexByte(cell, 'x')
	if i < 0 {
		return 0, false
	}
	s, err := strconv.Atoi(cell[i+1:])
	if err != nil || s >= 8 {
		return 0, false
	}
	return s * 2, true
}
