// wirecal demonstrates the statistical wire-delay model (paper §IV and
// Figs. 7–8): it measures how the delay distribution of one RC tree changes
// with the driver/load inverter strengths, evaluates the Elmore and D2M
// metrics against the golden mean, and shows the (1 + n·X_w)·T_Elmore
// quantile form with a measured X_w.
//
//	go run ./examples/wirecal
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/charlib"
	"repro/internal/layout"
	"repro/internal/stats"
	"repro/internal/wire"
)

func main() {
	cfg := repro.DefaultConfig()
	par := layout.Default28nm()
	tree := layout.RandomTree("demo", 1, par, 0xCAFE)
	leaf := tree.NodeIndex("sink0")

	fmt.Println("RC tree:", len(tree.Nodes), "nodes, total cap",
		fmt.Sprintf("%.2f fF", tree.TotalCap()*1e15))

	fmt.Printf("\n%8s %8s | %9s %9s %9s | %8s\n",
		"driver", "load", "mu (ps)", "sig (ps)", "Xw", "elm (ps)")
	for _, ds := range []int{1, 2, 4} {
		for _, ls := range []int{1, 2, 4} {
			driver := fmt.Sprintf("INVx%d", ds)
			load := fmt.Sprintf("INVx%d", ls)
			lc := cfg.Lib.MustCell(load)

			st := &wire.Stage{
				Driver: driver, DriverPin: "A", InEdge: repro.Rising, InSlew: 20e-12,
				Tree:  tree,
				Loads: []wire.LoadSpec{{Leaf: leaf, Cell: load, Pin: "A"}},
			}
			ss, err := wire.MCStage(context.Background(), cfg, st, 800, uint64(ds*10+ls))
			if err != nil {
				log.Fatal(err)
			}
			m := stats.ComputeMoments(ss.Wire)

			// Elmore with the load pin cap folded onto the leaf.
			withPin := tree.Clone()
			withPin.Nodes[leaf].C += lc.PinCap("A")
			elm := withPin.Elmore(leaf)

			fmt.Printf("%8s %8s | %9.3f %9.3f %9.4f | %8.3f\n",
				driver, load, m.Mean*1e12, m.Std*1e12, m.Std/m.Mean, elm*1e12)
		}
	}
	fmt.Println("\nobservations to compare with the paper's Fig. 8:")
	fmt.Println("  sigma/mu falls as the driver strengthens and rises with the load.")

	// Quantiles via eq. (9) with the measured X_w of the FO4/FO4 case.
	lc := cfg.Lib.MustCell("INVx4")
	st := &wire.Stage{
		Driver: "INVx4", DriverPin: "A", InEdge: repro.Rising, InSlew: 20e-12,
		Tree:  tree,
		Loads: []wire.LoadSpec{{Leaf: leaf, Cell: "INVx4", Pin: "A"}},
	}
	ss, err := wire.MCStage(context.Background(), cfg, st, 1500, 99)
	if err != nil {
		log.Fatal(err)
	}
	m := stats.ComputeMoments(ss.Wire)
	q := stats.SigmaQuantiles(ss.Wire)
	withPin := tree.Clone()
	withPin.Nodes[leaf].C += lc.PinCap("A")
	elm := withPin.Elmore(leaf)
	xw := m.Std / m.Mean

	fmt.Printf("\nFO4/FO4 case: Elmore %.3fps, D2M %.3fps, golden mean %.3fps\n",
		elm*1e12, withPin.D2M(leaf)*1e12, m.Mean*1e12)
	fmt.Printf("%8s %14s %14s\n", "level", "golden (ps)", "eq.9 (ps)")
	for _, n := range []int{-3, 0, 3} {
		fmt.Printf("%+7dσ %14.3f %14.3f\n", n, q[n]*1e12, repro.WireQuantile(elm, xw, n)*1e12)
	}
	_ = charlib.Reference
}
