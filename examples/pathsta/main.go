// pathsta runs the full paper flow on a benchmark circuit: generate the
// netlist, place it and extract parasitics, load (or build) a coefficients
// file, run N-sigma statistical timing, and print the critical path with
// its nσ delay quantiles (eq. 10).
//
// With no -lib argument it characterises a coefficients file first, which
// takes several minutes; reuse one from cmd/characterize to skip that:
//
//	go run ./cmd/characterize -profile quick -out coeffs.json
//	go run ./examples/pathsta -lib coeffs.json -circuit c1355
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro"
	"repro/internal/experiments"
)

func main() {
	libPath := flag.String("lib", "", "coefficients file (empty = characterise now at quick effort)")
	circuit := flag.String("circuit", "c432", "benchmark name")
	flag.Parse()

	var lib *repro.TimingFile
	if *libPath != "" {
		var err error
		lib, err = repro.LoadTimingFile(*libPath)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Println("no -lib given: characterising the library at quick effort (minutes)...")
		ctx := experiments.NewContext(experiments.Quick, 1)
		ctx.Log = os.Stderr
		var err error
		lib, err = ctx.BuildTimingFile()
		if err != nil {
			log.Fatal(err)
		}
	}

	nl, err := repro.GenerateBenchmark(*circuit)
	if err != nil {
		log.Fatal(err)
	}
	cfg := repro.DefaultConfig()
	trees, err := repro.ExtractParasitics(cfg, nl, 1)
	if err != nil {
		log.Fatal(err)
	}

	timer, err := repro.NewTimer(context.Background(), lib, nl, repro.WithParasitics(trees))
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	res, err := timer.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	took := time.Since(t0)

	p := res.Critical
	fmt.Printf("\n%s: %d cells, %d nets — timed in %v (%d arcs)\n",
		nl.Name, len(nl.Gates), nl.NumNets(), took.Round(time.Millisecond), res.GatesTimed)
	fmt.Printf("critical path: %d stages ending at %s (launch %s)\n",
		len(p.Stages), p.Endpoint, p.Launch)

	fmt.Printf("\n%8s %16s\n", "level", "path delay (ps)")
	for _, n := range []int{-3, -2, -1, 0, 1, 2, 3} {
		fmt.Printf("%+7dσ %16.1f\n", n, p.Quantile(n)*1e12)
	}

	fmt.Printf("\nfirst stages of the path:\n")
	fmt.Printf("%4s %-9s %-4s %10s %10s %8s\n", "#", "cell", "pin", "Tc 0σ(ps)", "Tw 0σ(ps)", "Xw")
	for i, s := range p.Stages {
		if i >= 8 {
			fmt.Printf("   ... %d more stages\n", len(p.Stages)-i)
			break
		}
		cell := s.Cell
		if cell == "" {
			cell = "(input)"
		}
		fmt.Printf("%4d %-9s %-4s %10.2f %10.3f %8.4f\n",
			i, cell, s.InPin, s.CellMoments.Mean*1e12, s.Elmore*1e12, s.XW)
	}
}
