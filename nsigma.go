// Package repro is a from-scratch Go reproduction of "A Novel Delay
// Calibration Method Considering Interaction between Cells and Wires"
// (Jin et al., DATE 2023): an N-sigma statistical delay model for
// near-threshold timing, covering moment-based cell-delay quantiles
// (Table I), operating-condition moment calibration (eqs. 1–3), the
// Pelgrom-rooted wire variability model X_w = X_FI·r_FI + X_FO·r_FO
// (eqs. 5–9), and quantile-summed path analysis (eq. 10) — together with
// the transistor-level Monte-Carlo substrate that plays the paper's
// HSPICE + TSMC 28 nm golden flow.
//
// This root package is a facade over the implementation packages:
//
//   - characterise a library and fit the models (Characterize* / Fit*),
//   - persist and reload the coefficients file (TimingFile),
//   - run statistical timing on a netlist (NewTimer → Analyze),
//   - regenerate the paper's tables and figures (cmd/repro, package
//     internal/experiments).
//
// The quickstart example (examples/quickstart) walks the full flow on one
// inverter arc; DESIGN.md maps every paper artefact to its package.
package repro

import (
	"context"

	"repro/internal/charlib"
	"repro/internal/circuits"
	"repro/internal/device"
	"repro/internal/incsta"
	"repro/internal/layout"
	"repro/internal/netlist"
	"repro/internal/nsigma"
	"repro/internal/rctree"
	"repro/internal/sta"
	"repro/internal/stats"
	"repro/internal/stdcell"
	"repro/internal/timinglib"
	"repro/internal/waveform"
	"repro/internal/wire"
)

// Core model types.
type (
	// Arc identifies a timing arc: cell, switching input pin, input edge.
	Arc = charlib.Arc
	// ArcChar is the Monte-Carlo characterisation of an arc over a grid.
	ArcChar = charlib.ArcChar
	// ArcModel is the fitted N-sigma model of one arc.
	ArcModel = nsigma.ArcModel
	// Moments are the first four moments [µ, σ, γ, κ] of a delay sample.
	Moments = stats.Moments
	// TimingFile is the serialisable coefficients file (paper Fig. 5).
	TimingFile = timinglib.File
	// WireCalibration holds the fitted X_FI/X_FO coefficients (eqs. 5–7).
	WireCalibration = wire.Calibration
	// Tree is an interconnect RC tree (Elmore: eq. 4).
	Tree = rctree.Tree
	// Netlist is a gate-level combinational circuit.
	Netlist = netlist.Netlist
	// Timer runs N-sigma STA over a netlist and its parasitics.
	Timer = sta.Timer
	// Path is an extracted critical path; Path.Quantile is eq. 10.
	Path = sta.Path
	// Edge is a transition direction (Rising/Falling).
	Edge = waveform.Edge
	// CharConfig bundles technology + variation + simulator knobs for
	// characterisation runs.
	CharConfig = charlib.Config
	// STAOptions configures an analysis.
	STAOptions = sta.Options
	// IncrementalEngine keeps a design's timing state resident and
	// re-propagates only the downstream cone of each ECO edit
	// (package internal/incsta; served over HTTP by cmd/timingd).
	IncrementalEngine = incsta.Engine
	// IncrementalConfig tunes an IncrementalEngine (options + epsilon).
	IncrementalConfig = incsta.Config
	// TimingSnapshot is an immutable, lock-free-queryable view of an
	// IncrementalEngine at one edit version.
	TimingSnapshot = incsta.Snapshot
)

// Edge directions.
const (
	Rising  = waveform.Rising
	Falling = waveform.Falling
)

// Reference is the paper's reference operating condition
// (S_ref = 10 ps, C_ref = 0.4 fF).
var Reference = charlib.Reference

// DefaultConfig returns the characterisation config over the default
// synthetic 28-nm-class technology at 0.6 V.
func DefaultConfig() *CharConfig { return charlib.DefaultConfig() }

// CharacterizeArc runs Monte-Carlo characterisation of one arc over the
// given slew/load axes with n samples per grid point.
func CharacterizeArc(cfg *CharConfig, arc Arc, slews, loads []float64, n int, seed uint64) (*ArcChar, error) {
	return cfg.CharacterizeArc(context.Background(), arc, slews, loads, n, seed)
}

// CharacterizeArcContext is CharacterizeArc under a cancelable context:
// canceling ctx aborts the Monte-Carlo run promptly with a wrapped
// context error.
func CharacterizeArcContext(ctx context.Context, cfg *CharConfig, arc Arc, slews, loads []float64, n int, seed uint64) (*ArcChar, error) {
	return cfg.CharacterizeArc(ctx, arc, slews, loads, n, seed)
}

// FitArc fits the N-sigma model (moment LUT, Table-I quantile coefficients,
// slew surface) from a characterisation.
func FitArc(char *ArcChar) (*ArcModel, error) { return nsigma.FitArc(char) }

// DefaultSlewGrid and DefaultLoadGrid span the paper's Fig. 4 sweeps.
func DefaultSlewGrid() []float64 { return charlib.DefaultSlewGrid() }

// DefaultLoadGrid returns the default load axis (0.1–6 fF).
func DefaultLoadGrid() []float64 { return charlib.DefaultLoadGrid() }

// NewTimingFile returns an empty coefficients file for cfg's library.
func NewTimingFile(cfg *CharConfig) *TimingFile { return timinglib.New(cfg.Lib) }

// LoadTimingFile reads a coefficients file from disk.
func LoadTimingFile(path string) (*TimingFile, error) { return timinglib.Load(path) }

// GenerateBenchmark builds one of the paper's Table-III benchmark circuits
// by name (c432…c7552, ADD, SUB, MUL, DIV).
func GenerateBenchmark(name string) (*Netlist, error) { return circuits.ByName(name) }

// ExtractParasitics places the netlist and synthesises one RC tree per net
// (the IC-Compiler/SPEF role; see internal/layout).
func ExtractParasitics(cfg *CharConfig, nl *Netlist, seed uint64) (map[string]*Tree, error) {
	par := layout.Default28nm()
	pl, err := layout.Place(nl, par, seed)
	if err != nil {
		return nil, err
	}
	return layout.Extract(nl, cfg.Lib, par, pl)
}

// NewIncrementalEngine builds an incremental timing engine over a design:
// one full analysis up front, then per-edit re-propagation of only the
// affected cone, with snapshots bit-identical to a fresh analysis at
// epsilon 0.
func NewIncrementalEngine(lib *TimingFile, nl *Netlist, trees map[string]*Tree, cfg IncrementalConfig) (*IncrementalEngine, error) {
	return incsta.New(lib, nl, trees, cfg)
}

// NewTimer builds an N-sigma STA engine over a netlist, its parasitics and
// a coefficients file.
func NewTimer(lib *TimingFile, nl *Netlist, trees map[string]*Tree, opt STAOptions) (*Timer, error) {
	return sta.NewTimer(lib, nl, trees, opt)
}

// WireQuantile evaluates eq. (9): T_w(nσ) = (1 + n·X_w)·T_Elmore.
func WireQuantile(elmore, xw float64, n int) float64 { return wire.Quantile(elmore, xw, n) }

// Default28nmTech returns the synthetic technology card.
func Default28nmTech() *device.Tech { return device.Default28nm() }

// LibraryCells lists the synthetic standard-cell names.
func LibraryCells(cfg *CharConfig) []string { return cfg.Lib.Names() }

// CellName re-exports the canonical cell naming helper (e.g. NAND2x4).
func CellName(kind string, strength int) string {
	return stdcell.CellName(stdcell.Kind(kind), strength)
}
