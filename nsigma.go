// Package repro is a from-scratch Go reproduction of "A Novel Delay
// Calibration Method Considering Interaction between Cells and Wires"
// (Jin et al., DATE 2023): an N-sigma statistical delay model for
// near-threshold timing, covering moment-based cell-delay quantiles
// (Table I), operating-condition moment calibration (eqs. 1–3), the
// Pelgrom-rooted wire variability model X_w = X_FI·r_FI + X_FO·r_FO
// (eqs. 5–9), and quantile-summed path analysis (eq. 10) — together with
// the transistor-level Monte-Carlo substrate that plays the paper's
// HSPICE + TSMC 28 nm golden flow.
//
// This root package is a facade over the implementation packages:
//
//   - characterise a library and fit the models (Characterize* / Fit*),
//   - persist and reload the coefficients file (TimingFile),
//   - run statistical timing on a netlist (NewTimer → Analyze),
//   - regenerate the paper's tables and figures (cmd/repro, package
//     internal/experiments).
//
// The quickstart example (examples/quickstart) walks the full flow on one
// inverter arc; DESIGN.md maps every paper artefact to its package.
package repro

import (
	"context"

	"repro/internal/charlib"
	"repro/internal/circuits"
	"repro/internal/device"
	"repro/internal/incsta"
	"repro/internal/layout"
	"repro/internal/netlist"
	"repro/internal/nsigma"
	"repro/internal/rctree"
	"repro/internal/sta"
	"repro/internal/stats"
	"repro/internal/stdcell"
	"repro/internal/timinglib"
	"repro/internal/waveform"
	"repro/internal/wire"
)

// Core model types.
type (
	// Arc identifies a timing arc: cell, switching input pin, input edge.
	Arc = charlib.Arc
	// ArcChar is the Monte-Carlo characterisation of an arc over a grid.
	ArcChar = charlib.ArcChar
	// ArcModel is the fitted N-sigma model of one arc.
	ArcModel = nsigma.ArcModel
	// Moments are the first four moments [µ, σ, γ, κ] of a delay sample.
	Moments = stats.Moments
	// TimingFile is the serialisable coefficients file (paper Fig. 5).
	TimingFile = timinglib.File
	// WireCalibration holds the fitted X_FI/X_FO coefficients (eqs. 5–7).
	WireCalibration = wire.Calibration
	// Tree is an interconnect RC tree (Elmore: eq. 4).
	Tree = rctree.Tree
	// Netlist is a gate-level combinational circuit.
	Netlist = netlist.Netlist
	// Timer runs N-sigma STA over a netlist and its parasitics.
	Timer = sta.Timer
	// Path is an extracted critical path; Path.Quantile is eq. 10.
	Path = sta.Path
	// Edge is a transition direction (Rising/Falling).
	Edge = waveform.Edge
	// CharConfig bundles technology + variation + simulator knobs for
	// characterisation runs.
	CharConfig = charlib.Config
	// STAOptions configures an analysis.
	STAOptions = sta.Options
	// IncrementalEngine keeps a design's timing state resident and
	// re-propagates only the downstream cone of each ECO edit
	// (package internal/incsta; served over HTTP by cmd/timingd).
	IncrementalEngine = incsta.Engine
	// IncrementalConfig tunes an IncrementalEngine (options + epsilon).
	IncrementalConfig = incsta.Config
	// TimingSnapshot is an immutable, lock-free-queryable view of an
	// IncrementalEngine at one edit version.
	TimingSnapshot = incsta.Snapshot
	// Corner is one operating condition of a multi-corner analysis.
	Corner = sta.Corner
	// CornerSet is a batch of operating corners evaluated in one traversal.
	CornerSet = sta.CornerSet
	// AnalyzeOptions configures one Timer.AnalyzeAll call: the corner batch
	// and the wavefront worker count.
	AnalyzeOptions = sta.AnalyzeOptions
)

// Typed errors the facade's constructors and engines return. Callers match
// them with errors.As to distinguish bad input from internal failures.
type (
	// EditError is the typed rejection of a malformed ECO edit (the engine
	// state is untouched when one is returned).
	EditError = incsta.EditError
	// ParseError locates a syntax error in ISCAS85 .bench netlist text.
	ParseError = netlist.ParseError
	// SPEFError locates a syntax error in SPEF parasitics text.
	SPEFError = rctree.SPEFError
	// OptionsError reports an invalid analysis option or corner parameter.
	OptionsError = sta.OptionsError
)

// Edge directions.
const (
	Rising  = waveform.Rising
	Falling = waveform.Falling
)

// Reference is the paper's reference operating condition
// (S_ref = 10 ps, C_ref = 0.4 fF).
var Reference = charlib.Reference

// DefaultConfig returns the characterisation config over the default
// synthetic 28-nm-class technology at 0.6 V.
func DefaultConfig() *CharConfig { return charlib.DefaultConfig() }

// CharacterizeArc runs Monte-Carlo characterisation of one arc over the
// given slew/load axes with n samples per grid point.
func CharacterizeArc(cfg *CharConfig, arc Arc, slews, loads []float64, n int, seed uint64) (*ArcChar, error) {
	return cfg.CharacterizeArc(context.Background(), arc, slews, loads, n, seed)
}

// CharacterizeArcContext is CharacterizeArc under a cancelable context:
// canceling ctx aborts the Monte-Carlo run promptly with a wrapped
// context error.
func CharacterizeArcContext(ctx context.Context, cfg *CharConfig, arc Arc, slews, loads []float64, n int, seed uint64) (*ArcChar, error) {
	return cfg.CharacterizeArc(ctx, arc, slews, loads, n, seed)
}

// FitArc fits the N-sigma model (moment LUT, Table-I quantile coefficients,
// slew surface) from a characterisation.
func FitArc(char *ArcChar) (*ArcModel, error) { return nsigma.FitArc(char) }

// DefaultSlewGrid and DefaultLoadGrid span the paper's Fig. 4 sweeps.
func DefaultSlewGrid() []float64 { return charlib.DefaultSlewGrid() }

// DefaultLoadGrid returns the default load axis (0.1–6 fF).
func DefaultLoadGrid() []float64 { return charlib.DefaultLoadGrid() }

// NewTimingFile returns an empty coefficients file for cfg's library.
func NewTimingFile(cfg *CharConfig) *TimingFile { return timinglib.New(cfg.Lib) }

// LoadTimingFile reads a coefficients file from disk.
func LoadTimingFile(path string) (*TimingFile, error) { return timinglib.Load(path) }

// GenerateBenchmark builds one of the paper's Table-III benchmark circuits
// by name (c432…c7552, ADD, SUB, MUL, DIV).
func GenerateBenchmark(name string) (*Netlist, error) { return circuits.ByName(name) }

// ExtractParasitics places the netlist and synthesises one RC tree per net
// (the IC-Compiler/SPEF role; see internal/layout).
func ExtractParasitics(cfg *CharConfig, nl *Netlist, seed uint64) (map[string]*Tree, error) {
	par := layout.Default28nm()
	pl, err := layout.Place(nl, par, seed)
	if err != nil {
		return nil, err
	}
	return layout.Extract(nl, cfg.Lib, par, pl)
}

// Option configures NewTimer or NewIncrementalEngine. The zero set of
// options is valid as long as parasitics are supplied (WithParasitics).
type Option func(*builderConfig)

// builderConfig accumulates the functional options of both constructors.
type builderConfig struct {
	trees       map[string]*Tree
	opt         STAOptions
	corners     CornerSet
	parallelism int
	epsilon     float64
}

// WithParasitics supplies the per-net RC trees (from ExtractParasitics or a
// SPEF reader). Required by both constructors.
func WithParasitics(trees map[string]*Tree) Option {
	return func(c *builderConfig) { c.trees = trees }
}

// WithSTAOptions sets the analysis options (sigma levels, input slews,
// wire-variability fallbacks).
func WithSTAOptions(opt STAOptions) Option {
	return func(c *builderConfig) { c.opt = opt }
}

// WithCorners batches operating corners: an incremental engine carries one
// timing state per corner through every edit; a Timer analyses them all in
// one traversal via AnalyzeAll.
func WithCorners(cs CornerSet) Option {
	return func(c *builderConfig) { c.corners = cs }
}

// WithParallelism sets the wavefront worker count (0/1 = sequential;
// results are bit-identical at every value).
func WithParallelism(n int) Option {
	return func(c *builderConfig) { c.parallelism = n }
}

// WithEpsilon sets the incremental early-termination cutoff in seconds
// (0 = bit-exact snapshots). Ignored by NewTimer.
func WithEpsilon(eps float64) Option {
	return func(c *builderConfig) { c.epsilon = eps }
}

func applyOptions(opts []Option) (*builderConfig, error) {
	c := &builderConfig{}
	for _, o := range opts {
		o(c)
	}
	if c.trees == nil {
		return nil, &OptionsError{Field: "Parasitics",
			Reason: "no parasitics: pass WithParasitics(trees)"}
	}
	return c, nil
}

// NewIncrementalEngine builds an incremental timing engine over a design:
// one full analysis up front, then per-edit re-propagation of only the
// affected cone, with snapshots bit-identical to a fresh analysis at
// epsilon 0. The context bounds the construction-time full analysis.
//
//	eng, err := repro.NewIncrementalEngine(ctx, lib, nl,
//	    repro.WithParasitics(trees),
//	    repro.WithCorners(repro.CornerSet{Corners: []repro.Corner{{Name: "slow", CapScale: 1.1}}}),
//	    repro.WithParallelism(4))
func NewIncrementalEngine(ctx context.Context, lib *TimingFile, nl *Netlist, opts ...Option) (*IncrementalEngine, error) {
	c, err := applyOptions(opts)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return incsta.New(lib, nl, c.trees, IncrementalConfig{
		Options:     c.opt,
		Epsilon:     c.epsilon,
		Corners:     c.corners,
		Parallelism: c.parallelism,
	})
}

// NewTimer builds an N-sigma STA engine over a netlist, its parasitics and
// a coefficients file. Corner and parallelism options become the defaults
// of AnalyzeAll calls made through AnalyzeAllDefault; plain Analyze stays a
// sequential neutral-corner run.
//
//	timer, err := repro.NewTimer(ctx, lib, nl, repro.WithParasitics(trees))
//	res, err := timer.Analyze(ctx)
func NewTimer(ctx context.Context, lib *TimingFile, nl *Netlist, opts ...Option) (*Timer, error) {
	c, err := applyOptions(opts)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return sta.NewTimer(lib, nl, c.trees, c.opt)
}

// NewIncrementalEngineLegacy is the pre-v1 constructor shape.
//
// Deprecated: use NewIncrementalEngine with functional options.
func NewIncrementalEngineLegacy(lib *TimingFile, nl *Netlist, trees map[string]*Tree, cfg IncrementalConfig) (*IncrementalEngine, error) {
	return incsta.New(lib, nl, trees, cfg)
}

// NewTimerLegacy is the pre-v1 constructor shape.
//
// Deprecated: use NewTimer with functional options.
func NewTimerLegacy(lib *TimingFile, nl *Netlist, trees map[string]*Tree, opt STAOptions) (*Timer, error) {
	return sta.NewTimer(lib, nl, trees, opt)
}

// WireQuantile evaluates eq. (9): T_w(nσ) = (1 + n·X_w)·T_Elmore.
func WireQuantile(elmore, xw float64, n int) float64 { return wire.Quantile(elmore, xw, n) }

// Default28nmTech returns the synthetic technology card.
func Default28nmTech() *device.Tech { return device.Default28nm() }

// LibraryCells lists the synthetic standard-cell names.
func LibraryCells(cfg *CharConfig) []string { return cfg.Lib.Names() }

// CellName re-exports the canonical cell naming helper (e.g. NAND2x4).
func CellName(kind string, strength int) string {
	return stdcell.CellName(stdcell.Kind(kind), strength)
}
