package resilience

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/linalg"
	"repro/internal/waveform"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Class
	}{
		{nil, ClassUnknown},
		{errors.New("mystery"), ClassUnknown},
		{circuit.ErrNoConvergence, ClassConvergence},
		{fmt.Errorf("t=1e-12: %w", circuit.ErrNoConvergence), ClassConvergence},
		{linalg.ErrSingular, ClassSingular},
		{waveform.ErrNoCrossing, ClassMeasurement},
		{ErrNonSettle, ClassNonSettle},
		{context.Canceled, ClassCanceled},
		{fmt.Errorf("wrap: %w", context.DeadlineExceeded), ClassCanceled},
		{&BudgetError{Failed: 3, Total: 10, MaxFailFraction: 0.1}, ClassBudget},
		{Wrap("op", circuit.ErrNoConvergence), ClassConvergence},
		{WrapClass(ClassInput, "parse", errors.New("bad netlist")), ClassInput},
	}
	for i, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("case %d: Classify(%v) = %v, want %v", i, c.err, got, c.want)
		}
	}
}

func TestWrapPreservesSentinel(t *testing.T) {
	err := Wrap("sample 3", fmt.Errorf("newton: %w", circuit.ErrNoConvergence))
	if !errors.Is(err, circuit.ErrNoConvergence) {
		t.Fatal("Wrap must keep the underlying sentinel visible to errors.Is")
	}
	var ce *Error
	if !errors.As(err, &ce) || ce.Class != ClassConvergence || ce.Op != "sample 3" {
		t.Fatalf("unexpected classified error: %+v", ce)
	}
	if Wrap("op", nil) != nil {
		t.Fatal("Wrap(nil) must be nil")
	}
}

func TestSafelyCapturesPanic(t *testing.T) {
	err := Safely("worker", func() error { panic("index out of range") })
	if Classify(err) != ClassPanic {
		t.Fatalf("want ClassPanic, got %v (%v)", Classify(err), err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatal("want a *PanicError in the chain")
	}
	if pe.Value != "index out of range" || len(pe.Stack) == 0 {
		t.Fatalf("panic payload not captured: %+v", pe.Value)
	}
	if err := Safely("ok", func() error { return nil }); err != nil {
		t.Fatalf("Safely over a clean fn must be nil, got %v", err)
	}
	wrapped := errors.New("boom")
	if err := Safely("fwd", func() error { return wrapped }); !errors.Is(err, wrapped) {
		t.Fatalf("Safely must forward plain errors, got %v", err)
	}
}

func TestRetryPolicyDefaultsAndBackoff(t *testing.T) {
	var p RetryPolicy // zero value: inherit defaults
	if p.Attempts() != 4 {
		t.Fatalf("default attempts = %d, want 4", p.Attempts())
	}
	for k, want := range []float64{1, 3, 9, 27} {
		if got := p.WindowScale(k); got != want {
			t.Fatalf("WindowScale(%d) = %g, want %g", k, got, want)
		}
	}
	if p.RNGLabel(0) != 0 {
		t.Fatal("first attempt must use the canonical sub-stream")
	}
	q := RetryPolicy{MaxAttempts: 2, WindowBackoff: 5, PerturbRNG: true}
	if q.Attempts() != 2 || q.WindowScale(2) != 25 {
		t.Fatalf("explicit policy not honoured: %d %g", q.Attempts(), q.WindowScale(2))
	}
	if q.RNGLabel(1) == 0 || q.RNGLabel(1) == q.RNGLabel(2) {
		t.Fatal("retry labels must be distinct and non-zero")
	}
	noPerturb := RetryPolicy{PerturbRNG: false}
	if noPerturb.RNGLabel(3) != 0 {
		t.Fatal("PerturbRNG=false must keep the canonical sub-stream")
	}
}

func TestRetryableClasses(t *testing.T) {
	for _, c := range []Class{ClassConvergence, ClassNonSettle, ClassMeasurement, ClassSingular} {
		if !c.Retryable() {
			t.Errorf("%v must be retryable", c)
		}
	}
	for _, c := range []Class{ClassUnknown, ClassPanic, ClassCanceled, ClassBudget, ClassInput} {
		if c.Retryable() {
			t.Errorf("%v must not be retryable", c)
		}
	}
}

func TestReportAggregation(t *testing.T) {
	r := &Report{}
	a := &ArcReport{Arc: "INVx1/A/rise", Wall: 3 * time.Second}
	a.AddPoint(PointReport{Slew: 1e-11, Load: 4e-16, Samples: 100, Survivors: 100})
	a.AddPoint(PointReport{Slew: 1e-11, Load: 1e-15, Samples: 100, Survivors: 98,
		Retried:     1,
		Quarantined: []SampleFailure{{Index: 3, Attempts: 4, Class: ClassConvergence}, {Index: 9, Attempts: 4, Class: ClassPanic}}})
	r.AddArc(a)
	r.AddArc(&ArcReport{Arc: "INVx1/A/fall", Skipped: true})

	chars, skipped, retried, quarantined, degraded := r.Totals()
	if chars != 1 || skipped != 1 || retried != 1 || quarantined != 2 || degraded != 1 {
		t.Fatalf("Totals = %d %d %d %d %d", chars, skipped, retried, quarantined, degraded)
	}
	s := r.Summary()
	for _, want := range []string{"1 arcs characterized", "1 resumed", "2 quarantined", "1 degraded", "INVx1/A/rise"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
	// Clean points must not be persisted per-point.
	if len(a.Points) != 1 {
		t.Fatalf("only degraded/retried points should be retained, got %d", len(a.Points))
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	r := &Report{}
	r.AddArc(&ArcReport{Arc: "NAND2x1/B/rise", Quarantined: 1,
		Points: []PointReport{{Samples: 10, Survivors: 9,
			Quarantined: []SampleFailure{{Index: 7, Attempts: 4, Class: ClassNonSettle, Err: "did not settle"}}}}})
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"non-settle"`) {
		t.Fatalf("Class must serialise by name: %s", b)
	}
	var back Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Arcs[0].Points[0].Quarantined[0].Class != ClassNonSettle {
		t.Fatalf("class did not round-trip: %+v", back.Arcs[0])
	}
}

func TestBudgetErrorMessage(t *testing.T) {
	err := &BudgetError{Op: "INVx1/A (rise in)", Failed: 7, Total: 100, MaxFailFraction: 0.05}
	for _, want := range []string{"7 of 100", "0.05"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("budget error %q missing %q", err.Error(), want)
		}
	}
}
