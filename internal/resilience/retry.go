package resilience

// RetryPolicy bounds how a failed Monte-Carlo sample is re-attempted. It
// generalises the ad-hoc `window *= 3` loop that used to live inside
// charlib.MeasureArcOnce: attempt k runs with the simulation window scaled
// by WindowBackoff^k, and (for variation samples) a fresh RNG sub-stream
// derived from the attempt number, so a pathological variate draw is
// re-rolled rather than replayed.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts including the first
	// (<= 0 means DefaultRetryPolicy.MaxAttempts).
	MaxAttempts int
	// WindowBackoff multiplies the simulation window on every retry
	// (<= 1 means DefaultRetryPolicy.WindowBackoff).
	WindowBackoff float64
	// PerturbRNG re-derives the sample's variation sub-stream per attempt.
	// The first attempt always uses the canonical sub-stream so successful
	// samples stay bit-reproducible; retries mix in the attempt number.
	PerturbRNG bool
}

// DefaultRetryPolicy matches the historical behaviour of MeasureArcOnce
// (four attempts, 3x window growth) plus RNG perturbation on retries.
var DefaultRetryPolicy = RetryPolicy{MaxAttempts: 4, WindowBackoff: 3, PerturbRNG: true}

// Attempts returns the effective attempt bound.
func (p RetryPolicy) Attempts() int {
	if p.MaxAttempts <= 0 {
		return DefaultRetryPolicy.MaxAttempts
	}
	return p.MaxAttempts
}

// WindowScale returns the simulation-window multiplier of attempt k
// (0-based): WindowBackoff^k.
func (p RetryPolicy) WindowScale(attempt int) float64 {
	b := p.WindowBackoff
	if b <= 1 {
		b = DefaultRetryPolicy.WindowBackoff
	}
	s := 1.0
	for i := 0; i < attempt; i++ {
		s *= b
	}
	return s
}

// RNGLabel returns the sub-stream split label of attempt k: 0 for the
// canonical first attempt, a distinct non-zero label per retry when
// perturbation is enabled.
func (p RetryPolicy) RNGLabel(attempt int) uint64 {
	if attempt == 0 || !p.PerturbRNG {
		return 0
	}
	return 0xa5a5_0000 + uint64(attempt)
}
