package resilience

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// MarshalJSON serialises a Class as its name so reports stay readable.
func (c Class) MarshalJSON() ([]byte, error) { return json.Marshal(c.String()) }

// UnmarshalJSON parses a Class name (unknown names map to ClassUnknown).
func (c *Class) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for cand := ClassUnknown; cand <= ClassInput; cand++ {
		if cand.String() == s {
			*c = cand
			return nil
		}
	}
	*c = ClassUnknown
	return nil
}

// SampleFailure records one quarantined Monte-Carlo sample.
type SampleFailure struct {
	// Index is the sample index within its Monte-Carlo run.
	Index int `json:"index"`
	// Attempts is how many attempts were made before quarantining.
	Attempts int   `json:"attempts"`
	Class    Class `json:"class"`
	Err      string `json:"err,omitempty"`
}

// PointReport summarises fault handling at one characterisation grid point.
type PointReport struct {
	Slew float64 `json:"slew"`
	Load float64 `json:"load"`
	// Samples is the requested sample count; Survivors is how many made it
	// into the moment computation.
	Samples   int `json:"samples"`
	Survivors int `json:"survivors"`
	// Retried counts samples that failed at least once but eventually
	// succeeded.
	Retried     int             `json:"retried,omitempty"`
	Quarantined []SampleFailure `json:"quarantined,omitempty"`
}

// Degraded reports whether the point's moments were computed over fewer
// samples than requested.
func (p *PointReport) Degraded() bool { return p.Survivors < p.Samples }

// String renders the point as "S=… C=…" for degraded-point listings.
func (p *PointReport) String() string {
	return fmt.Sprintf("S=%.3g C=%.3g (%d/%d survived)", p.Slew, p.Load, p.Survivors, p.Samples)
}

// ArcReport summarises fault handling of one arc's characterisation.
type ArcReport struct {
	Arc string `json:"arc"`
	// Skipped means the arc was restored from a checkpoint (resume) and
	// not re-simulated.
	Skipped bool `json:"skipped,omitempty"`
	// Retried and Quarantined aggregate over grid points.
	Retried     int `json:"retried,omitempty"`
	Quarantined int `json:"quarantined,omitempty"`
	// Points holds the degraded grid points only (clean points carry no
	// fault information worth persisting).
	Points []PointReport `json:"points,omitempty"`
	// Wall is the characterisation wall time of this arc.
	Wall time.Duration `json:"wall,omitempty"`
}

// AddPoint folds one grid point into the arc report, retaining the point
// itself only when it is degraded or saw retries.
func (a *ArcReport) AddPoint(p PointReport) {
	a.Retried += p.Retried
	a.Quarantined += len(p.Quarantined)
	if p.Degraded() || p.Retried > 0 {
		a.Points = append(a.Points, p)
	}
}

// DegradedPoints lists the degraded grid points of the arc.
func (a *ArcReport) DegradedPoints() []string {
	var out []string
	for i := range a.Points {
		if a.Points[i].Degraded() {
			out = append(out, a.Points[i].String())
		}
	}
	return out
}

// Report is the structured outcome of a fault-tolerant pipeline run. It is
// safe for concurrent Add* calls.
type Report struct {
	mu sync.Mutex
	// Arcs holds one entry per characterised (or skipped) arc.
	Arcs []*ArcReport `json:"arcs"`
	// Wall is the total pipeline wall time (set by the driver).
	Wall time.Duration `json:"wall,omitempty"`
}

// AddArc appends an arc report.
func (r *Report) AddArc(a *ArcReport) {
	if r == nil || a == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.Arcs = append(r.Arcs, a)
}

// Totals aggregates the report: characterised arcs, resumed (skipped) arcs,
// retried samples, quarantined samples, and degraded grid points.
func (r *Report) Totals() (chars, skipped, retried, quarantined, degraded int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, a := range r.Arcs {
		if a.Skipped {
			skipped++
			continue
		}
		chars++
		retried += a.Retried
		quarantined += a.Quarantined
		for i := range a.Points {
			if a.Points[i].Degraded() {
				degraded++
			}
		}
	}
	return
}

// Summary renders a one-paragraph human-readable digest.
func (r *Report) Summary() string {
	chars, skipped, retried, quarantined, degraded := r.Totals()
	var b strings.Builder
	fmt.Fprintf(&b, "resilience: %d arcs characterized", chars)
	if skipped > 0 {
		fmt.Fprintf(&b, ", %d resumed from checkpoint", skipped)
	}
	fmt.Fprintf(&b, "; %d samples retried, %d quarantined, %d degraded grid points", retried, quarantined, degraded)
	if r != nil && r.Wall > 0 {
		fmt.Fprintf(&b, " (wall %v)", r.Wall.Round(time.Millisecond))
	}
	if degraded > 0 {
		r.mu.Lock()
		var lines []string
		for _, a := range r.Arcs {
			for _, p := range a.DegradedPoints() {
				lines = append(lines, fmt.Sprintf("  degraded: %s %s", a.Arc, p))
			}
		}
		r.mu.Unlock()
		sort.Strings(lines)
		b.WriteString("\n")
		b.WriteString(strings.Join(lines, "\n"))
	}
	return b.String()
}
