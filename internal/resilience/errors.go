// Package resilience is the fault-tolerance layer of the characterisation
// and STA pipeline. The paper's flow spends hours of Monte-Carlo transient
// simulation per library; hierarchical statistical STA treats every arc (and
// every sample within it) as an independently recomputable unit, which is
// exactly the granularity at which this package isolates faults:
//
//   - a typed error taxonomy (Class) classifying solver and measurement
//     failures, so callers can distinguish a non-converging sample from a
//     malformed netlist;
//   - panic capture (Safely) at worker boundaries, turning solver-stack
//     panics into classified errors instead of killing the process;
//   - a bounded RetryPolicy generalising the ad-hoc window-widening loop of
//     charlib.MeasureArcOnce (fresh RNG sub-stream perturbation plus
//     exponential simulation-window backoff);
//   - a quarantine budget (BudgetError) bounding how many samples a run may
//     drop before the result is declared unusable;
//   - a structured run Report (per-arc retries, quarantined samples,
//     degraded grid points, wall time) surfaced by the characterisation
//     commands.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"

	"repro/internal/circuit"
	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/waveform"
)

// Class partitions pipeline failures by cause. The zero value is
// ClassUnknown.
type Class int

// Failure classes, ordered roughly from "transient, retry may help" to
// "structural, retrying is pointless".
const (
	// ClassUnknown is any failure the taxonomy does not recognise.
	ClassUnknown Class = iota
	// ClassConvergence: the Newton/transient solver did not converge
	// (circuit.ErrNoConvergence). Usually sample-specific; retry with a
	// perturbed sub-stream and wider window often succeeds.
	ClassConvergence
	// ClassNonSettle: the transient ran but the output never reached its
	// rail inside the simulation window. Retried with a wider window.
	ClassNonSettle
	// ClassMeasurement: the waveform never crossed a measurement level
	// (waveform.ErrNoCrossing) or a .MEASURE-style extraction failed.
	ClassMeasurement
	// ClassSingular: a linear solve met a (numerically) singular matrix
	// (linalg.ErrSingular).
	ClassSingular
	// ClassPanic: a panic recovered at a worker boundary.
	ClassPanic
	// ClassCanceled: the run was canceled or timed out via its context.
	ClassCanceled
	// ClassBudget: the quarantine budget (MaxFailFraction) was exceeded.
	ClassBudget
	// ClassInput: malformed input (netlist, parasitics, configuration)
	// rejected at a package API boundary. Never retried.
	ClassInput
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassConvergence:
		return "convergence"
	case ClassNonSettle:
		return "non-settle"
	case ClassMeasurement:
		return "measurement"
	case ClassSingular:
		return "singular-matrix"
	case ClassPanic:
		return "panic"
	case ClassCanceled:
		return "canceled"
	case ClassBudget:
		return "budget-exceeded"
	case ClassInput:
		return "bad-input"
	default:
		return "unknown"
	}
}

// Retryable reports whether a failure of this class may succeed on a
// retried attempt (with a perturbed sub-stream and/or wider window).
func (c Class) Retryable() bool {
	switch c {
	case ClassConvergence, ClassNonSettle, ClassMeasurement, ClassSingular:
		return true
	}
	return false
}

// ErrNonSettle is the sentinel for transients that ran to completion but
// whose output never settled to its rail; charlib wraps it per arc.
var ErrNonSettle = errors.New("resilience: output did not settle within the simulation window")

// Error is a classified pipeline failure. It wraps the underlying cause, so
// errors.Is/As still see the original sentinel.
type Error struct {
	Class Class
	// Op names the failing operation ("mc sample 17", "transient", ...).
	Op  string
	Err error
}

// Error implements error.
func (e *Error) Error() string {
	if e.Err == nil {
		return fmt.Sprintf("resilience: %s: %s", e.Op, e.Class)
	}
	return fmt.Sprintf("resilience: %s [%s]: %v", e.Op, e.Class, e.Err)
}

// Unwrap exposes the cause.
func (e *Error) Unwrap() error { return e.Err }

// Classify maps an arbitrary pipeline error onto the taxonomy. A nil error
// classifies as ClassUnknown.
func Classify(err error) Class {
	switch {
	case err == nil:
		return ClassUnknown
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return ClassCanceled
	case errors.Is(err, circuit.ErrNoConvergence):
		return ClassConvergence
	case errors.Is(err, ErrNonSettle):
		return ClassNonSettle
	case errors.Is(err, linalg.ErrSingular):
		return ClassSingular
	case errors.Is(err, waveform.ErrNoCrossing):
		return ClassMeasurement
	}
	var ce *Error
	if errors.As(err, &ce) {
		return ce.Class
	}
	var be *BudgetError
	if errors.As(err, &be) {
		return ClassBudget
	}
	return ClassUnknown
}

// Wrap classifies err and wraps it as a *Error. A nil err returns nil; an
// already-classified error is re-labelled with op but keeps its class.
func Wrap(op string, err error) error {
	if err == nil {
		return nil
	}
	return &Error{Class: Classify(err), Op: op, Err: err}
}

// WrapClass wraps err with an explicit class (used when the caller knows
// better than the taxonomy, e.g. at input-validation boundaries).
func WrapClass(class Class, op string, err error) error {
	if err == nil {
		return nil
	}
	return &Error{Class: class, Op: op, Err: err}
}

// PanicError carries a recovered panic value and its stack.
type PanicError struct {
	Value any
	Stack []byte
}

// Error implements error.
func (p *PanicError) Error() string {
	return fmt.Sprintf("recovered panic: %v", p.Value)
}

// Safely runs fn, converting a panic into a ClassPanic *Error. The solver
// stack (linalg, circuit, rctree) panics only on programmer-error
// invariants, but a long characterisation run must degrade one sample, not
// lose hours of work, when such an invariant trips on an exotic operating
// point.
func Safely(op string, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			mPanicsRecovered.Inc()
			err = &Error{
				Class: ClassPanic,
				Op:    op,
				Err:   &PanicError{Value: r, Stack: debug.Stack()},
			}
		}
	}()
	return fn()
}

// mPanicsRecovered counts panics captured at worker boundaries — a panic
// that shows up here was survived, not fatal, but each one is a solver bug
// worth a look.
var mPanicsRecovered = obs.Default().Counter("resilience_panics_recovered_total",
	"Panics recovered at worker boundaries and converted to classified errors.")

// BudgetError reports that quarantined samples exceeded the configured
// MaxFailFraction budget.
type BudgetError struct {
	Op              string
	Failed, Total   int
	MaxFailFraction float64
}

// Error implements error.
func (b *BudgetError) Error() string {
	return fmt.Sprintf("resilience: %s: %d of %d samples failed, exceeding the quarantine budget (max fail fraction %.3g)",
		b.Op, b.Failed, b.Total, b.MaxFailFraction)
}
