package profiling

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestSessionNoOp(t *testing.T) {
	s, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	var nilS *Session
	if err := nilS.Stop(); err != nil {
		t.Fatalf("nil session Stop: %v", err)
	}
}

func TestSessionWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	s, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to sample.
	x := 0.0
	for i := 0; i < 1e6; i++ {
		x += float64(i) * 1.0000001
	}
	_ = x
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
	// Stop is idempotent: a second call must not rewrite or error.
	if err := s.Stop(); err != nil {
		t.Fatalf("second Stop: %v", err)
	}
}

func TestStartUnwritableCPUPath(t *testing.T) {
	_, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.prof"), "")
	if err == nil {
		t.Fatal("Start with unwritable cpu path: want error")
	}
}

func TestStopUnwritableHeapPath(t *testing.T) {
	s, err := Start("", filepath.Join(t.TempDir(), "no", "such", "dir", "mem.prof"))
	if err != nil {
		t.Fatalf("Start only records the heap path, got %v", err)
	}
	if err := s.Stop(); err == nil {
		t.Fatal("Stop with unwritable heap path: want error")
	}
}

func TestReportShape(t *testing.T) {
	r := NewReport("testcmd")
	if err := r.Time("phase-a", func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	wantErr := errors.New("boom")
	if err := r.Time("phase-b", func() error { return wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("Time must pass through the phase error, got %v", err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := r.Write(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Command    string `json:"command"`
		GoMaxProcs int    `json:"goMaxProcs"`
		Phases     []struct {
			Name    string  `json:"name"`
			Seconds float64 `json:"seconds"`
		} `json:"phases"`
		TotalSeconds    float64 `json:"totalSeconds"`
		TotalAllocBytes uint64  `json:"totalAllocBytes"`
		Mallocs         uint64  `json:"mallocs"`
	}
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("bench JSON does not parse: %v\n%s", err, data)
	}
	if got.Command != "testcmd" || got.GoMaxProcs <= 0 {
		t.Fatalf("bench JSON header = %+v", got)
	}
	if len(got.Phases) != 2 || got.Phases[0].Name != "phase-a" || got.Phases[1].Name != "phase-b" {
		t.Fatalf("phases = %+v", got.Phases)
	}
	for _, p := range got.Phases {
		if p.Seconds < 0 {
			t.Fatalf("negative phase time: %+v", p)
		}
	}
	if got.TotalSeconds <= 0 || got.TotalAllocBytes == 0 || got.Mallocs == 0 {
		t.Fatalf("totals not populated: %+v", got)
	}
}

func TestReportNilAndEmptyPath(t *testing.T) {
	var r *Report
	if err := r.Time("x", func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := r.Write("anything.json"); err != nil {
		t.Fatalf("nil report Write: %v", err)
	}
	if err := NewReport("c").Write(""); err != nil {
		t.Fatalf("empty path Write: %v", err)
	}
}

func TestReportUnwritablePath(t *testing.T) {
	r := NewReport("c")
	if err := r.Write(filepath.Join(t.TempDir(), "no", "such", "dir", "bench.json")); err == nil {
		t.Fatal("Write to unwritable path: want error")
	}
}
