// Package profiling wires the standard runtime/pprof collectors and a
// small JSON bench report into the command-line tools, so performance work
// on the simulator can be measured on the real workloads (characterisation
// and table regeneration) rather than only on micro-benchmarks.
package profiling

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"
)

// Session owns the profile outputs of one command run. The zero Session
// (from Start with empty paths) is inert: every method is a cheap no-op.
type Session struct {
	cpuFile *os.File
	memPath string
}

// Start begins CPU profiling into cpuPath (when non-empty) and remembers
// memPath for a heap profile at Stop. Either path may be empty.
func Start(cpuPath, memPath string) (*Session, error) {
	s := &Session{memPath: memPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
		s.cpuFile = f
	}
	return s, nil
}

// Stop ends the CPU profile and writes the heap profile, if requested.
// Idempotent and nil-safe, so commands can both defer it and call it
// explicitly on os.Exit error paths (which skip defers).
func (s *Session) Stop() error {
	if s == nil {
		return nil
	}
	if s.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := s.cpuFile.Close(); err != nil {
			return fmt.Errorf("profiling: %w", err)
		}
		s.cpuFile = nil
	}
	if s.memPath != "" {
		f, err := os.Create(s.memPath)
		if err != nil {
			return fmt.Errorf("profiling: %w", err)
		}
		runtime.GC() // get up-to-date allocation statistics
		err = pprof.WriteHeapProfile(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("profiling: %w", err)
		}
		s.memPath = ""
	}
	return nil
}

// Phase is one timed section of a command run.
type Phase struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// Report accumulates phase wall times for a -bench-json dump. The zero
// value is usable; a nil *Report ignores all calls, so call sites need no
// flag checks.
type Report struct {
	Command     string  `json:"command"`
	GoMaxProcs  int     `json:"goMaxProcs"`
	Phases      []Phase `json:"phases"`
	TotalSecond float64 `json:"totalSeconds"`

	// Allocation totals over the whole process, from runtime.MemStats.
	TotalAllocBytes uint64 `json:"totalAllocBytes"`
	Mallocs         uint64 `json:"mallocs"`
	NumGC           uint32 `json:"numGC"`

	start time.Time
}

// NewReport starts a report for the named command.
func NewReport(command string) *Report {
	return &Report{Command: command, GoMaxProcs: runtime.GOMAXPROCS(0), start: time.Now()}
}

// Time runs f as a named phase and records its wall time.
func (r *Report) Time(name string, f func() error) error {
	if r == nil {
		return f()
	}
	t0 := time.Now()
	err := f()
	r.Phases = append(r.Phases, Phase{Name: name, Seconds: time.Since(t0).Seconds()})
	return err
}

// Write finalises the totals and writes the report as indented JSON.
func (r *Report) Write(path string) error {
	if r == nil || path == "" {
		return nil
	}
	r.TotalSecond = time.Since(r.start).Seconds()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.TotalAllocBytes = ms.TotalAlloc
	r.Mallocs = ms.Mallocs
	r.NumGC = ms.NumGC
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("profiling: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("profiling: %w", err)
	}
	return nil
}
