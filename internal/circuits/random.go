// Package circuits generates the benchmark netlists of the paper's
// evaluation: ISCAS85-scale random combinational circuits (matched to the
// per-circuit cell/net counts of Table III) and structural PULPino-style
// functional units — ripple-carry adder/subtractor, array multiplier and
// restoring array divider — built from the stdcell library.
//
// The exact Design-Compiler netlists the paper timed are not public, so the
// ISCAS85 rows are reproduced by *statistics-matched* synthetic circuits:
// levelised random DAGs with the same cell count, a realistic cell-kind
// mix, and fan-in locality, which is what path-delay accuracy actually
// depends on. Every generator is seeded and deterministic.
package circuits

import (
	"fmt"

	"repro/internal/netlist"
	"repro/internal/rng"
	"repro/internal/stdcell"
)

// RandomOptions shapes a random levelised circuit.
type RandomOptions struct {
	Cells   int // total gate count (required)
	Inputs  int // primary inputs (default max(8, Cells/40))
	Outputs int // primary outputs (default max(4, Cells/60))
	// Depth is the target logic depth (default ≈ 4·√Cells/3, an empirical
	// ISCAS85-like aspect ratio).
	Depth int
	// Seed drives all random choices.
	Seed uint64
}

// kindMix is the cell-kind distribution of generated logic, loosely
// matching a mapped ISCAS85 profile (NAND-rich, some NOR/AOI, inverters).
var kindMix = []struct {
	kind   stdcell.Kind
	weight int
}{
	{stdcell.NAND2, 45},
	{stdcell.NOR2, 20},
	{stdcell.AOI2, 12},
	{stdcell.INV, 23},
}

// strengthMix is the drive-strength distribution (mostly x1/x2 with a tail
// of stronger drivers, as a sized netlist would show).
var strengthMix = []struct {
	s      int
	weight int
}{
	{1, 35},
	{2, 40},
	{4, 18},
	{8, 7},
}

func pickWeighted(r *rng.Stream, total int, pick func(i int) int, n int) int {
	v := r.Intn(total)
	for i := 0; i < n; i++ {
		v -= pick(i)
		if v < 0 {
			return i
		}
	}
	return n - 1
}

func pickKind(r *rng.Stream) stdcell.Kind {
	total := 0
	for _, k := range kindMix {
		total += k.weight
	}
	i := pickWeighted(r, total, func(i int) int { return kindMix[i].weight }, len(kindMix))
	return kindMix[i].kind
}

func pickStrength(r *rng.Stream) int {
	total := 0
	for _, s := range strengthMix {
		total += s.weight
	}
	i := pickWeighted(r, total, func(i int) int { return strengthMix[i].weight }, len(strengthMix))
	return strengthMix[i].s
}

// Random generates a levelised random combinational circuit.
func Random(name string, opt RandomOptions) (*netlist.Netlist, error) {
	if opt.Cells <= 0 {
		return nil, fmt.Errorf("circuits: Cells must be positive")
	}
	r := rng.New(opt.Seed ^ 0xC1C5)
	inputs := opt.Inputs
	if inputs <= 0 {
		inputs = max(8, opt.Cells/40)
	}
	outputs := opt.Outputs
	if outputs <= 0 {
		outputs = max(4, opt.Cells/60)
	}
	depth := opt.Depth
	if depth <= 0 {
		depth = max(6, isqrt(opt.Cells)*4/3)
	}
	if depth > opt.Cells {
		depth = opt.Cells
	}

	nl := &netlist.Netlist{Name: name}
	for i := 0; i < inputs; i++ {
		nl.Inputs = append(nl.Inputs, fmt.Sprintf("pi%d", i))
	}

	// Distribute gates over levels: at least one per level, remainder
	// spread with a mid-heavy profile.
	perLevel := make([]int, depth)
	for i := range perLevel {
		perLevel[i] = 1
	}
	for extra := opt.Cells - depth; extra > 0; extra-- {
		perLevel[r.Intn(depth)]++
	}

	// levelNets[l] holds nets produced at level l (level 0 = PIs).
	levelNets := [][]string{append([]string(nil), nl.Inputs...)}
	gateNum := 0
	for l := 1; l <= depth; l++ {
		var produced []string
		for k := 0; k < perLevel[l-1]; k++ {
			gateNum++
			out := fmt.Sprintf("n%d", gateNum)
			kind := pickKind(r)
			strength := pickStrength(r)
			cell := stdcell.CellName(kind, strength)
			pins := map[string]string{"Y": out}
			nin := 1
			switch kind {
			case stdcell.NAND2, stdcell.NOR2:
				nin = 2
			case stdcell.AOI2:
				nin = 3
			}
			pinNames := []string{"A", "B", "C"}
			// The first input comes from the previous level (guaranteeing
			// the level structure); the rest from nearby earlier levels
			// (fan-in locality).
			for p := 0; p < nin; p++ {
				var srcLevel int
				if p == 0 {
					srcLevel = l - 1
				} else {
					back := 1 + r.Intn(min(l, 4))
					srcLevel = l - back
				}
				nets := levelNets[srcLevel]
				pins[pinNames[p]] = nets[r.Intn(len(nets))]
			}
			nl.Gates = append(nl.Gates, netlist.Gate{
				Name: fmt.Sprintf("U%d", gateNum),
				Cell: cell,
				Pins: pins,
			})
			produced = append(produced, out)
		}
		levelNets = append(levelNets, produced)
	}

	// Primary outputs: sample from the deepest levels, preferring nets with
	// no fanout yet so the circuit has no dangling logic cones.
	fan := nl.FanoutMap()
	var candidates []string
	for l := depth; l >= 1 && len(candidates) < outputs*3; l-- {
		for _, net := range levelNets[l] {
			if len(fan[net]) == 0 {
				candidates = append(candidates, net)
			}
		}
	}
	for l := depth; l >= 1 && len(candidates) < outputs; l-- {
		candidates = append(candidates, levelNets[l]...)
	}
	seen := map[string]bool{}
	for _, c := range candidates {
		if len(nl.Outputs) >= outputs {
			break
		}
		if !seen[c] {
			seen[c] = true
			nl.Outputs = append(nl.Outputs, c)
		}
	}
	// Any remaining dangling nets become outputs too (nothing unobservable).
	for l := depth; l >= 1; l-- {
		for _, net := range levelNets[l] {
			if len(fan[net]) == 0 && !seen[net] {
				seen[net] = true
				nl.Outputs = append(nl.Outputs, net)
			}
		}
	}
	SizeByFanout(nl)
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	return nl, nil
}

func isqrt(n int) int {
	x := 1
	for x*x < n {
		x++
	}
	return x
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
