package circuits

import (
	"reflect"
	"testing"

	"repro/internal/netlist"
	"repro/internal/rng"
)

func TestRandomMatchesRequestedSize(t *testing.T) {
	nl, err := Random("r", RandomOptions{Cells: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(nl.Gates) != 500 {
		t.Fatalf("got %d cells want 500", len(nl.Gates))
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomDeterministic(t *testing.T) {
	a, err := Random("r", RandomOptions{Cells: 200, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random("r", RandomOptions{Cells: 200, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different circuits")
	}
	c, err := Random("r", RandomOptions{Cells: 200, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Gates, c.Gates) {
		t.Fatal("different seeds produced identical circuits")
	}
}

func TestRandomRejectsBadOptions(t *testing.T) {
	if _, err := Random("r", RandomOptions{}); err == nil {
		t.Fatal("zero cells accepted")
	}
}

func TestSizeByFanout(t *testing.T) {
	nl, err := Random("r", RandomOptions{Cells: 800, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	fan := nl.FanoutMap()
	for gi := range nl.Gates {
		g := &nl.Gates[gi]
		fo := len(fan[g.Output()])
		want := 1
		switch {
		case fo <= 1:
			want = 1
		case fo <= 2:
			want = 2
		case fo <= 4:
			want = 4
		default:
			want = 8
		}
		if g.Cell[len(g.Cell)-1] != byte('0'+want) {
			t.Fatalf("gate %s fanout %d has cell %s (want strength %d)", g.Name, fo, g.Cell, want)
		}
	}
}

func TestISCAS85SizesMatchTable(t *testing.T) {
	for _, spec := range ISCAS85Table {
		nl, err := ISCAS85(spec.Name)
		if err != nil {
			t.Fatal(err)
		}
		if len(nl.Gates) != spec.Cells {
			t.Errorf("%s: %d cells want %d", spec.Name, len(nl.Gates), spec.Cells)
		}
	}
}

func TestISCAS85Unknown(t *testing.T) {
	if _, err := ISCAS85("c9999"); err == nil {
		t.Fatal("unknown circuit accepted")
	}
}

func TestByNameDispatch(t *testing.T) {
	for _, n := range AllTable3Names() {
		if _, err := ByName(n); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

// evalAdd drives the adder generator with integers and checks the sum.
func evalAdd(t *testing.T, nl *netlist.Netlist, width int, a, b uint64, cin bool) uint64 {
	t.Helper()
	in := map[string]bool{"cin": cin}
	for i := 0; i < width; i++ {
		in[key("a", i)] = a>>uint(i)&1 == 1
		in[key("b", i)] = b>>uint(i)&1 == 1
	}
	out, err := nl.Evaluate(in)
	if err != nil {
		t.Fatal(err)
	}
	var sum uint64
	// The first width outputs are the sum bits, then the carry.
	for i := 0; i < width; i++ {
		if out[nl.Outputs[i]] {
			sum |= 1 << uint(i)
		}
	}
	if out[nl.Outputs[width]] {
		sum |= 1 << uint(width)
	}
	return sum
}

func key(prefix string, i int) string {
	return prefix + itoa(i)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

func TestAdderComputesSum(t *testing.T) {
	const width = 16
	nl, err := Adder("add16", width)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	for trial := 0; trial < 50; trial++ {
		a := r.Uint64() & 0xFFFF
		b := r.Uint64() & 0xFFFF
		cin := r.Float64() < 0.5
		want := a + b
		if cin {
			want++
		}
		if got := evalAdd(t, nl, width, a, b, cin); got != want {
			t.Fatalf("add(%d,%d,%v) = %d want %d", a, b, cin, got, want)
		}
	}
}

func TestSubtractorComputesDifference(t *testing.T) {
	const width = 12
	nl, err := Subtractor("sub12", width)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(6)
	for trial := 0; trial < 50; trial++ {
		a := r.Uint64() & 0xFFF
		b := r.Uint64() & 0xFFF
		in := map[string]bool{"one": trial%2 == 0} // value must not matter
		for i := 0; i < width; i++ {
			in[key("a", i)] = a>>uint(i)&1 == 1
			in[key("b", i)] = b>>uint(i)&1 == 1
		}
		out, err := nl.Evaluate(in)
		if err != nil {
			t.Fatal(err)
		}
		var diff uint64
		for i := 0; i < width; i++ {
			if out[nl.Outputs[i]] {
				diff |= 1 << uint(i)
			}
		}
		want := (a - b) & 0xFFF
		if diff != want {
			t.Fatalf("sub(%d,%d) = %d want %d", a, b, diff, want)
		}
	}
}

func TestMultiplierComputesProduct(t *testing.T) {
	const width = 8
	nl, err := Multiplier("mul8", width)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7)
	for trial := 0; trial < 30; trial++ {
		a := r.Uint64() & 0xFF
		b := r.Uint64() & 0xFF
		in := map[string]bool{}
		for i := 0; i < width; i++ {
			in[key("a", i)] = a>>uint(i)&1 == 1
			in[key("b", i)] = b>>uint(i)&1 == 1
		}
		out, err := nl.Evaluate(in)
		if err != nil {
			t.Fatal(err)
		}
		var prod uint64
		for i := 0; i < 2*width; i++ {
			if i < len(nl.Outputs) && out[nl.Outputs[i]] {
				prod |= 1 << uint(i)
			}
		}
		if prod != a*b {
			t.Fatalf("mul(%d,%d) = %d want %d", a, b, prod, a*b)
		}
	}
}

func TestDividerComputesQuotient(t *testing.T) {
	const width = 8 // dividend bits; divisor = 4 bits
	nl, err := Divider("div8", width)
	if err != nil {
		t.Fatal(err)
	}
	half := width / 2
	r := rng.New(8)
	for trial := 0; trial < 40; trial++ {
		n := r.Uint64() & 0xFF
		d := (r.Uint64() & 0xF)
		if d == 0 {
			d = 1
		}
		// Restoring array dividers require the quotient to fit: top half of
		// the dividend must be < divisor.
		if n>>uint(half) >= d {
			continue
		}
		in := map[string]bool{}
		for i := 0; i < width; i++ {
			in[key("n", i)] = n>>uint(i)&1 == 1
		}
		for i := 0; i < half; i++ {
			in[key("d", i)] = d>>uint(i)&1 == 1
		}
		out, err := nl.Evaluate(in)
		if err != nil {
			t.Fatal(err)
		}
		// Outputs: quotient bits MSB-first (row order), then remainder.
		rows := width - half
		var q uint64
		for rIdx := 0; rIdx < rows; rIdx++ {
			if out[nl.Outputs[rIdx]] {
				q |= 1 << uint(rows-1-rIdx)
			}
		}
		var rem uint64
		for i := 0; i < half; i++ {
			if out[nl.Outputs[rows+i]] {
				rem |= 1 << uint(i)
			}
		}
		if q != n/d || rem != n%d {
			t.Fatalf("div(%d,%d) = q%d r%d want q%d r%d", n, d, q, rem, n/d, n%d)
		}
	}
}

func TestPULPinoSizesNearPaper(t *testing.T) {
	paper := map[string]int{"ADD": 4088, "SUB": 3066, "MUL": 49570, "DIV": 51654}
	for name, want := range paper {
		nl, err := PULPinoUnit(name)
		if err != nil {
			t.Fatal(err)
		}
		got := len(nl.Gates)
		ratio := float64(got) / float64(want)
		if ratio < 0.6 || ratio > 1.4 {
			t.Errorf("%s: %d cells vs paper %d (ratio %.2f) — generator drifted", name, got, want, ratio)
		}
	}
}
