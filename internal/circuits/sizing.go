package circuits

import (
	"fmt"
	"strings"

	"repro/internal/netlist"
)

// SizeByFanout reassigns every gate's drive strength from its output
// fanout, the role Design Compiler's sizing pass plays in the paper's flow:
// without it, unit-strength cells end up driving tens of fF, far outside
// any characterised operating range (and outside what a signed-off netlist
// would ever contain).
//
//	fanout ≤ 1 → x1, ≤ 2 → x2, ≤ 4 → x4, else x8
func SizeByFanout(nl *netlist.Netlist) {
	fan := nl.FanoutMap()
	for gi := range nl.Gates {
		g := &nl.Gates[gi]
		fo := len(fan[g.Output()])
		strength := 1
		switch {
		case fo <= 1:
			strength = 1
		case fo <= 2:
			strength = 2
		case fo <= 4:
			strength = 4
		default:
			strength = 8
		}
		kind := g.Cell
		if i := strings.LastIndexByte(kind, 'x'); i > 0 {
			kind = kind[:i]
		}
		g.Cell = fmt.Sprintf("%sx%d", kind, strength)
	}
}
