package circuits

import (
	"fmt"
	"sort"

	"repro/internal/netlist"
)

// ISCAS85Spec records the per-circuit size the paper's Table III lists
// (#Nets / #Cells of the synthesised netlists). The generators target the
// cell count; net count follows structurally.
type ISCAS85Spec struct {
	Name  string
	Nets  int
	Cells int
}

// ISCAS85Table mirrors the eight ISCAS85 rows of Table III.
var ISCAS85Table = []ISCAS85Spec{
	{"c432", 734, 655},
	{"c1355", 1091, 977},
	{"c1908", 1184, 1093},
	{"c2670", 2415, 1810},
	{"c3540", 2290, 2168},
	{"c6288", 3725, 3246},
	{"c5315", 5371, 5275},
	{"c7552", 4536, 4041},
}

// ISCAS85 generates the statistics-matched substitute of the named ISCAS85
// circuit (see the package comment for why a substitute is used). The seed
// is derived from the circuit name, so repeated calls agree.
func ISCAS85(name string) (*netlist.Netlist, error) {
	for _, spec := range ISCAS85Table {
		if spec.Name == name {
			return Random(spec.Name, RandomOptions{
				Cells: spec.Cells,
				Seed:  nameSeed(spec.Name),
			})
		}
	}
	return nil, fmt.Errorf("circuits: unknown ISCAS85 circuit %q", name)
}

// ISCAS85Names lists the supported circuit names in Table III order.
func ISCAS85Names() []string {
	out := make([]string, len(ISCAS85Table))
	for i, s := range ISCAS85Table {
		out[i] = s.Name
	}
	return out
}

func nameSeed(name string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// PULPinoUnit generates one of the paper's PULPino functional-unit rows:
// ADD, SUB, MUL or DIV. Bit widths are chosen so the generated cell counts
// land near the paper's Table III sizes (see each generator).
func PULPinoUnit(name string) (*netlist.Netlist, error) {
	switch name {
	case "ADD":
		// Table III lists 4088 cells; a 455-bit ripple-carry adder at 9
		// cells/bit lands nearby.
		return Adder("ADD", 455)
	case "SUB":
		return Subtractor("SUB", 310)
	case "MUL":
		// 64×64 array multiplier ≈ paper's 49570 cells.
		return Multiplier("MUL", 64)
	case "DIV":
		// 122/61 restoring array divider lands near the paper's 51654.
		return Divider("DIV", 122)
	default:
		return nil, fmt.Errorf("circuits: unknown PULPino unit %q", name)
	}
}

// PULPinoNames lists the functional units of Table III.
func PULPinoNames() []string { return []string{"ADD", "SUB", "MUL", "DIV"} }

// AllTable3Names lists every circuit row of Table III in order.
func AllTable3Names() []string {
	out := append([]string(nil), ISCAS85Names()...)
	return append(out, PULPinoNames()...)
}

// ByName dispatches to the ISCAS85 or PULPino generator.
func ByName(name string) (*netlist.Netlist, error) {
	for _, s := range ISCAS85Table {
		if s.Name == name {
			return ISCAS85(name)
		}
	}
	for _, u := range PULPinoNames() {
		if u == name {
			return PULPinoUnit(name)
		}
	}
	return nil, fmt.Errorf("circuits: unknown benchmark %q", name)
}

// builder accumulates gates for the structural generators.
type builder struct {
	nl   *netlist.Netlist
	auto int
}

func newBuilder(name string) *builder {
	return &builder{nl: &netlist.Netlist{Name: name}}
}

func (b *builder) input(name string) string {
	b.nl.Inputs = append(b.nl.Inputs, name)
	return name
}

func (b *builder) output(net string) {
	b.nl.Outputs = append(b.nl.Outputs, net)
}

func (b *builder) fresh() string {
	b.auto++
	return fmt.Sprintf("w%d", b.auto)
}

func (b *builder) gate(cell, out string, ins ...string) string {
	if out == "" {
		out = b.fresh()
	}
	pins := map[string]string{"Y": out}
	names := []string{"A", "B", "C"}
	for i, in := range ins {
		pins[names[i]] = in
	}
	b.nl.Gates = append(b.nl.Gates, netlist.Gate{
		Name: fmt.Sprintf("U%d", len(b.nl.Gates)+1),
		Cell: cell,
		Pins: pins,
	})
	return out
}

func (b *builder) inv(in string) string     { return b.gate("INVx1", "", in) }
func (b *builder) nand(a, bb string) string { return b.gate("NAND2x1", "", a, bb) }
func (b *builder) and(a, bb string) string  { return b.inv(b.nand(a, bb)) }
func (b *builder) or(a, bb string) string   { return b.inv(b.gate("NOR2x1", "", a, bb)) }
func (b *builder) xor(a, bb string) (x string) {
	m := b.nand(a, bb)
	return b.nand2pair(a, bb, m)
}

func (b *builder) nand2pair(a, bb, m string) string {
	am := b.nand(a, m)
	bm := b.nand(bb, m)
	return b.nand(am, bm)
}

// fullAdder returns (sum, carry) of a+b+cin using the classic 9-NAND2
// decomposition (XOR-XOR for sum, majority via NANDs for carry).
func (b *builder) fullAdder(a, bb, cin string) (sum, cout string) {
	m1 := b.nand(a, bb)
	axb := b.nand2pair(a, bb, m1) // a XOR b
	m2 := b.nand(axb, cin)
	sum = b.nand2pair(axb, cin, m2) // (a XOR b) XOR cin
	cout = b.nand(m1, m2)           // NAND(NAND(a,b), NAND(axb,cin))
	return sum, cout
}

func (b *builder) finish() (*netlist.Netlist, error) {
	// Expose dangling nets as outputs so every cone is observable.
	fan := b.nl.FanoutMap()
	onOutput := map[string]bool{}
	for _, o := range b.nl.Outputs {
		onOutput[o] = true
	}
	var dangling []string
	for gi := range b.nl.Gates {
		out := b.nl.Gates[gi].Output()
		if len(fan[out]) == 0 && !onOutput[out] {
			dangling = append(dangling, out)
		}
	}
	sort.Strings(dangling)
	b.nl.Outputs = append(b.nl.Outputs, dangling...)
	SizeByFanout(b.nl)
	if err := b.nl.Validate(); err != nil {
		return nil, err
	}
	return b.nl, nil
}

// Adder builds a width-bit ripple-carry adder (PULPino ADD substitute).
func Adder(name string, width int) (*netlist.Netlist, error) {
	b := newBuilder(name)
	carry := b.input("cin")
	for i := 0; i < width; i++ {
		a := b.input(fmt.Sprintf("a%d", i))
		bb := b.input(fmt.Sprintf("b%d", i))
		var sum string
		sum, carry = b.fullAdder(a, bb, carry)
		b.output(sum)
	}
	b.output(carry)
	return b.finish()
}

// Subtractor builds a width-bit ripple-borrow subtractor a−b (PULPino SUB
// substitute): b is inverted and the carry-in forced by an extra stage.
func Subtractor(name string, width int) (*netlist.Netlist, error) {
	b := newBuilder(name)
	// cin=1 is synthesised from an input and its inverse through OR, so the
	// netlist stays purely combinational with no constant nets.
	seed := b.input("one")
	carry := b.or(seed, b.inv(seed)) // always-1 net
	for i := 0; i < width; i++ {
		a := b.input(fmt.Sprintf("a%d", i))
		bi := b.inv(b.input(fmt.Sprintf("b%d", i)))
		var diff string
		diff, carry = b.fullAdder(a, bi, carry)
		b.output(diff)
	}
	b.output(carry)
	return b.finish()
}

// Multiplier builds a width×width unsigned array multiplier (PULPino MUL
// substitute): AND partial products reduced by a carry-save adder array.
func Multiplier(name string, width int) (*netlist.Netlist, error) {
	b := newBuilder(name)
	a := make([]string, width)
	bb := make([]string, width)
	for i := 0; i < width; i++ {
		a[i] = b.input(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < width; i++ {
		bb[i] = b.input(fmt.Sprintf("b%d", i))
	}
	if width < 2 {
		return nil, fmt.Errorf("circuits: multiplier width %d too small", width)
	}
	// pp(i, j) = a[i]·b[j], weight 2^(i+j).
	pp := func(i, j int) string { return b.and(a[i], bb[j]) }

	// Row 0 initialises the running sum: after row j, sum[i] carries weight
	// 2^(j+i) and product bit j has been emitted.
	sum := make([]string, width)
	for i := 0; i < width; i++ {
		sum[i] = pp(i, 0)
	}
	b.output(sum[0]) // product bit 0
	pending := ""    // carry of weight 2^(j+width) deferred to the next row's top
	for j := 1; j < width; j++ {
		carry := ""
		next := make([]string, width)
		for i := 0; i < width-1; i++ {
			p := pp(i, j) // weight j+i, same as sum[i+1]
			if carry == "" {
				next[i] = b.xor(sum[i+1], p)
				carry = b.and(sum[i+1], p)
			} else {
				next[i], carry = b.fullAdder(sum[i+1], p, carry)
			}
		}
		// Top position (weight j+width-1): the fresh partial product, the
		// row's ripple carry, and the previous row's pending carry all
		// share this weight.
		p := pp(width-1, j)
		switch {
		case carry == "" && pending == "":
			next[width-1] = p
		case pending == "":
			next[width-1] = b.xor(p, carry)
			pending = b.and(p, carry)
		case carry == "":
			next[width-1] = b.xor(p, pending)
			pending = b.and(p, pending)
		default:
			next[width-1], pending = b.fullAdder(p, carry, pending)
		}
		sum = next
		b.output(sum[0]) // product bit j
	}
	// After the last row, sum[1..width-1] are product bits width..2width-2
	// and the pending carry is bit 2width-1.
	for i := 1; i < width; i++ {
		b.output(sum[i])
	}
	if pending != "" {
		b.output(pending)
	}
	return b.finish()
}

// Divider builds a width/(width/2)-bit restoring array divider (PULPino DIV
// substitute) from controlled add/subtract cells.
func Divider(name string, width int) (*netlist.Netlist, error) {
	b := newBuilder(name)
	half := width / 2
	if half < 2 {
		return nil, fmt.Errorf("circuits: divider width %d too small", width)
	}
	n := make([]string, width)
	d := make([]string, half)
	for i := 0; i < width; i++ {
		n[i] = b.input(fmt.Sprintf("n%d", i))
	}
	for i := 0; i < half; i++ {
		d[i] = b.input(fmt.Sprintf("d%d", i))
	}
	// Restoring division: each row conditionally subtracts the divisor from
	// the running remainder; the select (quotient bit) is the inverted
	// borrow-out.
	rem := make([]string, half)
	for i := range rem {
		// Initial partial remainder: top bits of the dividend.
		rem[i] = n[width-half+i]
	}
	rows := width - half
	for row := 0; row < rows; row++ {
		// Shift in the next dividend bit (LSB side).
		shifted := append([]string{n[width-half-1-row]}, rem[:half-1]...)
		msb := rem[half-1]
		// Subtract d: full adders with inverted d and cin=1 (borrow chain).
		one := b.or(shifted[0], b.inv(shifted[0]))
		carry := one
		diff := make([]string, half)
		for i := 0; i < half; i++ {
			di := b.inv(d[i])
			diff[i], carry = b.fullAdder(shifted[i], di, carry)
		}
		// Quotient bit: 1 if no borrow (carry | msb of shifted remainder).
		q := b.or(carry, msb)
		b.output(q)
		// Restoring mux per bit: rem = q ? diff : shifted.
		for i := 0; i < half; i++ {
			// mux(q, diff, shifted) = NAND(NAND(q,diff), NAND(!q,shifted))
			t1 := b.nand(q, diff[i])
			t2 := b.nand(b.inv(q), shifted[i])
			rem[i] = b.nand(t1, t2)
		}
	}
	for i := 0; i < half; i++ {
		b.output(rem[i])
	}
	return b.finish()
}
