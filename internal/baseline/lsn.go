package baseline

import (
	"errors"
	"math"

	"repro/internal/stats"
)

// SkewNormal is the three-parameter skew-normal distribution
// SN(ξ location, ω scale, α shape), pdf (2/ω)·φ(z)·Φ(αz) with z=(x−ξ)/ω.
type SkewNormal struct {
	Xi    float64
	Omega float64
	Alpha float64
}

// maxSkew is the supremum of the skew-normal's skewness (|γ1| < 0.9953);
// moment matching clamps sample skewness below it.
const maxSkew = 0.99

// FitSkewNormalMoments fits SN parameters by the method of moments.
func FitSkewNormalMoments(xs []float64) (*SkewNormal, error) {
	if len(xs) < 8 {
		return nil, errors.New("baseline: too few samples for a skew-normal fit")
	}
	m := stats.ComputeMoments(xs)
	g := m.Skewness
	sign := 1.0
	if g < 0 {
		sign = -1.0
		g = -g
	}
	if g > maxSkew {
		g = maxSkew
	}
	g23 := math.Pow(g, 2.0/3.0)
	c23 := math.Pow((4-math.Pi)/2, 2.0/3.0)
	delta := sign * math.Sqrt(math.Pi/2*g23/(g23+c23))
	omega := m.Std / math.Sqrt(1-2*delta*delta/math.Pi)
	xi := m.Mean - omega*delta*math.Sqrt(2/math.Pi)
	alpha := delta / math.Sqrt(1-delta*delta)
	return &SkewNormal{Xi: xi, Omega: omega, Alpha: alpha}, nil
}

// CDF evaluates the skew-normal CDF Φ(z) − 2·T(z, α) via Owen's T.
func (sn *SkewNormal) CDF(x float64) float64 {
	z := (x - sn.Xi) / sn.Omega
	return stats.NormalCDF(z) - 2*owensT(z, sn.Alpha)
}

// Quantile inverts the CDF by bisection.
func (sn *SkewNormal) Quantile(p float64) float64 {
	lo := sn.Xi - 12*sn.Omega
	hi := sn.Xi + 12*sn.Omega
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if sn.CDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*sn.Omega {
			break
		}
	}
	return (lo + hi) / 2
}

// owensT computes Owen's T function T(h, a) by adaptive-free Simpson
// quadrature of its defining integral — accurate to ~1e-9 for the |a| ≤ ~40
// range the LSN fit produces.
func owensT(h, a float64) float64 {
	if a == 0 {
		return 0
	}
	neg := false
	if a < 0 {
		a = -a
		neg = true
	}
	// T(h, a) for a > 1 via the standard identity keeps the integrand tame:
	// T(h,a) = ½Φ(h)+½Φ(ah) − Φ(h)Φ(ah) − T(ah, 1/a).
	var t float64
	if a <= 1 {
		t = owensTIntegral(h, a)
	} else {
		ph := stats.NormalCDF(h)
		pah := stats.NormalCDF(a * h)
		t = 0.5*ph + 0.5*pah - ph*pah - owensTIntegral(a*h, 1/a)
	}
	if neg {
		t = -t
	}
	return t
}

func owensTIntegral(h, a float64) float64 {
	const nIntervals = 240 // even
	h2 := h * h
	f := func(x float64) float64 {
		return math.Exp(-0.5*h2*(1+x*x)) / (1 + x*x)
	}
	w := a / nIntervals
	sum := f(0) + f(a)
	for i := 1; i < nIntervals; i++ {
		x := float64(i) * w
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return sum * w / 3 / (2 * math.Pi)
}

// LSN is the log-skew-normal cell-delay model of [12] (Balef et al.): the
// logarithm of delay is fitted to a skew-normal density.
type LSN struct {
	SN SkewNormal
}

// FitLSN fits the model to delay samples (seconds, all positive).
func FitLSN(delays []float64) (*LSN, error) {
	logs := make([]float64, len(delays))
	for i, d := range delays {
		if d <= 0 {
			return nil, errors.New("baseline: LSN requires positive delays")
		}
		logs[i] = math.Log(d)
	}
	sn, err := FitSkewNormalMoments(logs)
	if err != nil {
		return nil, err
	}
	return &LSN{SN: *sn}, nil
}

// Quantile returns the delay at probability p.
func (l *LSN) Quantile(p float64) float64 {
	return math.Exp(l.SN.Quantile(p))
}

// SigmaQuantile returns the delay at sigma level n (the paper's convention:
// the Φ(n) probability point).
func (l *LSN) SigmaQuantile(n int) float64 {
	return l.Quantile(stats.SigmaProbability(float64(n)))
}
