package baseline

import (
	"math"

	"repro/internal/sta"
)

// This file implements the Table-III path-delay comparison methods on top
// of an extracted sta.Path. All three reuse the same per-stage moments the
// coefficients file provides; they differ in how per-stage numbers combine
// into a path number — which is exactly where their pessimism or optimism
// comes from.

// CornerOptions parameterises the PrimeTime-like corner timer.
type CornerOptions struct {
	// WireDerate multiplies Elmore wire delays (slow-corner interconnect
	// margin). Default 1.10.
	WireDerate float64
	// OCVMargin is the extra global on-chip-variation margin multiplying
	// the whole path. Default 1.05.
	OCVMargin float64
}

func (o *CornerOptions) setDefaults() {
	if o.WireDerate == 0 {
		o.WireDerate = 1.10
	}
	if o.OCVMargin == 0 {
		o.OCVMargin = 1.05
	}
}

// CornerPathDelay is the PrimeTime-like single-corner signoff number [7]:
// every cell contributes its stage-local worst case µ+3σ, wires a derated
// Elmore, and a global OCV margin multiplies the sum. Summing per-stage
// worst cases ignores the statistical averaging across stages, which is
// why this number lands far above the true +3σ on long paths (the 24–43 %
// PT errors of Table III).
func CornerPathDelay(p *sta.Path, opt CornerOptions) float64 {
	opt.setDefaults()
	var sum float64
	for _, s := range p.Stages {
		if s.Cell != "" {
			sum += s.CellMoments.Mean + 3*s.CellMoments.Std
		}
		sum += opt.WireDerate * s.Elmore
	}
	return opt.OCVMargin * sum
}

// CorrectionModel is the correction-based calibration of [8]: a single
// multiplicative factor per design family, fitted so the cheap timer
// (per-stage corner cells + raw Elmore wires) matches a reference +3σ path
// delay on a training circuit, then applied unchanged elsewhere. Its error
// on other circuits measures how transferable one scalar calibration is.
type CorrectionModel struct {
	Factor float64
}

// uncorrected is the cheap timer the correction factor scales.
func uncorrected(p *sta.Path) float64 {
	var sum float64
	for _, s := range p.Stages {
		if s.Cell != "" {
			sum += s.CellMoments.Mean + 3*s.CellMoments.Std
		}
		sum += s.Elmore
	}
	return sum
}

// FitCorrection fits the factor on a training path against a reference +3σ
// delay (the "PrimeTime report" role is played by the golden MC).
func FitCorrection(train *sta.Path, refPlus3Sigma float64) *CorrectionModel {
	u := uncorrected(train)
	if u <= 0 {
		return &CorrectionModel{Factor: 1}
	}
	return &CorrectionModel{Factor: refPlus3Sigma / u}
}

// PathDelay applies the fitted correction to a path.
func (c *CorrectionModel) PathDelay(p *sta.Path) float64 {
	return c.Factor * uncorrected(p)
}

// RSSPathQuantile is the independent-stage statistical sum
// Σµ + n·√(Σσ²): the classic SSTA simplification that *under*-estimates
// spread whenever a shared global corner correlates the stages. Exposed for
// the ablation benches.
func RSSPathQuantile(p *sta.Path, n int) float64 {
	var mu, var_ float64
	for _, s := range p.Stages {
		if s.Cell != "" {
			mu += s.CellMoments.Mean
			var_ += s.CellMoments.Std * s.CellMoments.Std
		}
		mu += s.Elmore
		sw := s.XW * s.Elmore
		var_ += sw * sw
	}
	return mu + float64(n)*math.Sqrt(var_)
}
