// Package baseline implements the comparison methods of the paper's
// evaluation: the LSN (log-skew-normal) and Burr distribution cell-delay
// models of Table II, and the PrimeTime-like corner, correction-based and
// ML-based path/wire timers of Table III.
package baseline

import "math"

// nelderMead minimises f over dim dimensions starting from x0, with a
// classic (reflection/expansion/contraction/shrink) simplex. It is the
// fitting engine of the Burr MLE; tolerances are fixed for that use.
func nelderMead(f func([]float64) float64, x0 []float64, scale float64, maxIter int) []float64 {
	dim := len(x0)
	n := dim + 1
	simplex := make([][]float64, n)
	vals := make([]float64, n)
	for i := range simplex {
		p := append([]float64(nil), x0...)
		if i > 0 {
			p[i-1] += scale
		}
		simplex[i] = p
		vals[i] = f(p)
	}
	const (
		alpha = 1.0
		gamma = 2.0
		rho   = 0.5
		sigma = 0.5
	)
	for iter := 0; iter < maxIter; iter++ {
		// Order simplex.
		for i := 1; i < n; i++ {
			for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
				vals[j], vals[j-1] = vals[j-1], vals[j]
				simplex[j], simplex[j-1] = simplex[j-1], simplex[j]
			}
		}
		if math.Abs(vals[n-1]-vals[0]) < 1e-12*(math.Abs(vals[0])+1e-12) {
			break
		}
		// Centroid of all but worst.
		cen := make([]float64, dim)
		for i := 0; i < n-1; i++ {
			for d := range cen {
				cen[d] += simplex[i][d]
			}
		}
		for d := range cen {
			cen[d] /= float64(n - 1)
		}
		point := func(coef float64) []float64 {
			p := make([]float64, dim)
			for d := range p {
				p[d] = cen[d] + coef*(simplex[n-1][d]-cen[d])
			}
			return p
		}
		refl := point(-alpha)
		fr := f(refl)
		switch {
		case fr < vals[0]:
			exp := point(-alpha * gamma)
			fe := f(exp)
			if fe < fr {
				simplex[n-1], vals[n-1] = exp, fe
			} else {
				simplex[n-1], vals[n-1] = refl, fr
			}
		case fr < vals[n-2]:
			simplex[n-1], vals[n-1] = refl, fr
		default:
			con := point(rho)
			fc := f(con)
			if fc < vals[n-1] {
				simplex[n-1], vals[n-1] = con, fc
			} else {
				// Shrink towards the best vertex.
				for i := 1; i < n; i++ {
					for d := range simplex[i] {
						simplex[i][d] = simplex[0][d] + sigma*(simplex[i][d]-simplex[0][d])
					}
					vals[i] = f(simplex[i])
				}
			}
		}
	}
	best := 0
	for i := 1; i < n; i++ {
		if vals[i] < vals[best] {
			best = i
		}
	}
	return simplex[best]
}
