package baseline

import (
	"errors"
	"math"

	"repro/internal/rctree"
	"repro/internal/rng"
)

// MLWire is the machine-learning wire-timing estimator standing in for [9]
// (Cheng et al., DAC'20): a small feed-forward network trained on golden
// wire-delay statistics, taking the moments of the RC tree "and many other
// features" (paper §V-D) and predicting the mean and σ of the wire delay.
// It shares the failure mode of the original: accuracy degrades on nets
// unlike its training distribution.
type MLWire struct {
	net             *mlp
	featMu, featSd  []float64
	tgtMu, tgtSd    []float64
	nFeat, nTargets int
}

// WireFeatures builds the model's feature vector for a net leaf: first and
// second impulse-response moments, structural totals, and the boundary
// conditions (driver strength, load cap, input slew).
func WireFeatures(t *rctree.Tree, leaf int, driverStrength int, loadCap, inSlew float64) []float64 {
	var totalR float64
	for _, n := range t.Nodes[1:] {
		totalR += n.R
	}
	return []float64{
		t.Elmore(leaf),
		math.Sqrt(math.Abs(t.SecondMoment(leaf))),
		totalR,
		t.TotalCap(),
		float64(len(t.Nodes)),
		float64(driverStrength),
		loadCap,
		inSlew,
	}
}

// TrainSample is one supervised example.
type TrainSample struct {
	Features []float64
	Targets  []float64 // [µ_w, σ_w]
}

// TrainOptions tunes training.
type TrainOptions struct {
	Hidden int     // hidden units (default 12)
	Epochs int     // full passes (default 600)
	LR     float64 // learning rate (default 0.01)
	Seed   uint64
}

// TrainMLWire trains the estimator. Feature/target standardisation is
// learned from the training set and baked into the model.
func TrainMLWire(samples []TrainSample, opt TrainOptions) (*MLWire, error) {
	if len(samples) < 4 {
		return nil, errors.New("baseline: too few ML training samples")
	}
	if opt.Hidden <= 0 {
		opt.Hidden = 12
	}
	if opt.Epochs <= 0 {
		opt.Epochs = 600
	}
	if opt.LR == 0 {
		opt.LR = 0.01
	}
	nf := len(samples[0].Features)
	nt := len(samples[0].Targets)
	m := &MLWire{nFeat: nf, nTargets: nt}
	m.featMu, m.featSd = standardise(samples, func(s TrainSample) []float64 { return s.Features }, nf)
	m.tgtMu, m.tgtSd = standardise(samples, func(s TrainSample) []float64 { return s.Targets }, nt)

	r := rng.New(opt.Seed ^ 0x3117)
	m.net = newMLP(nf, opt.Hidden, nt, r)

	x := make([]float64, nf)
	y := make([]float64, nt)
	for epoch := 0; epoch < opt.Epochs; epoch++ {
		perm := r.Perm(len(samples))
		for _, i := range perm {
			s := samples[i]
			for j := 0; j < nf; j++ {
				x[j] = (s.Features[j] - m.featMu[j]) / m.featSd[j]
			}
			for j := 0; j < nt; j++ {
				y[j] = (s.Targets[j] - m.tgtMu[j]) / m.tgtSd[j]
			}
			m.net.step(x, y, opt.LR)
		}
	}
	return m, nil
}

// Predict returns [µ_w, σ_w] estimates for a feature vector.
func (m *MLWire) Predict(features []float64) []float64 {
	x := make([]float64, m.nFeat)
	for j := range x {
		x[j] = (features[j] - m.featMu[j]) / m.featSd[j]
	}
	out := m.net.forward(x)
	res := make([]float64, m.nTargets)
	for j := range res {
		res[j] = out[j]*m.tgtSd[j] + m.tgtMu[j]
	}
	return res
}

// SigmaQuantile turns a prediction into a wire nσ delay, Gaussian-style
// (µ + n·σ), matching how [9]'s two predicted moments would be used.
func (m *MLWire) SigmaQuantile(features []float64, n int) float64 {
	p := m.Predict(features)
	return p[0] + float64(n)*p[1]
}

func standardise(samples []TrainSample, get func(TrainSample) []float64, n int) (mu, sd []float64) {
	mu = make([]float64, n)
	sd = make([]float64, n)
	for _, s := range samples {
		v := get(s)
		for j := 0; j < n; j++ {
			mu[j] += v[j]
		}
	}
	for j := range mu {
		mu[j] /= float64(len(samples))
	}
	for _, s := range samples {
		v := get(s)
		for j := 0; j < n; j++ {
			d := v[j] - mu[j]
			sd[j] += d * d
		}
	}
	for j := range sd {
		sd[j] = math.Sqrt(sd[j] / float64(len(samples)))
		if sd[j] < 1e-30 {
			sd[j] = 1
		}
	}
	return mu, sd
}

// mlp is a one-hidden-layer tanh network with linear output, trained by
// plain SGD — deliberately small, like the original method's "sophisticated
// process" scaled to this repository's stdlib-only constraint.
type mlp struct {
	nin, nh, nout int
	w1            []float64 // nh × nin
	b1            []float64
	w2            []float64 // nout × nh
	b2            []float64
	// scratch
	h, dh, out []float64
}

func newMLP(nin, nh, nout int, r *rng.Stream) *mlp {
	m := &mlp{
		nin: nin, nh: nh, nout: nout,
		w1: make([]float64, nh*nin),
		b1: make([]float64, nh),
		w2: make([]float64, nout*nh),
		b2: make([]float64, nout),
		h:  make([]float64, nh), dh: make([]float64, nh), out: make([]float64, nout),
	}
	s1 := 1 / math.Sqrt(float64(nin))
	for i := range m.w1 {
		m.w1[i] = s1 * r.NormFloat64()
	}
	s2 := 1 / math.Sqrt(float64(nh))
	for i := range m.w2 {
		m.w2[i] = s2 * r.NormFloat64()
	}
	return m
}

func (m *mlp) forward(x []float64) []float64 {
	for i := 0; i < m.nh; i++ {
		s := m.b1[i]
		row := m.w1[i*m.nin : (i+1)*m.nin]
		for j, w := range row {
			s += w * x[j]
		}
		m.h[i] = math.Tanh(s)
	}
	for o := 0; o < m.nout; o++ {
		s := m.b2[o]
		row := m.w2[o*m.nh : (o+1)*m.nh]
		for j, w := range row {
			s += w * m.h[j]
		}
		m.out[o] = s
	}
	return m.out
}

// step performs one SGD update on example (x, y) with squared loss.
func (m *mlp) step(x, y []float64, lr float64) {
	out := m.forward(x)
	for i := range m.dh {
		m.dh[i] = 0
	}
	for o := 0; o < m.nout; o++ {
		e := out[o] - y[o]
		row := m.w2[o*m.nh : (o+1)*m.nh]
		for j := range row {
			m.dh[j] += e * row[j]
			row[j] -= lr * e * m.h[j]
		}
		m.b2[o] -= lr * e
	}
	for i := 0; i < m.nh; i++ {
		g := m.dh[i] * (1 - m.h[i]*m.h[i])
		row := m.w1[i*m.nin : (i+1)*m.nin]
		for j := range row {
			row[j] -= lr * g * x[j]
		}
		m.b1[i] -= lr * g
	}
}
