package baseline

import (
	"math"
	"testing"

	"repro/internal/sta"
	"repro/internal/stats"
)

// synthPath builds a uniform path of n cell stages with the given stage
// moments and wire numbers.
func synthPath(n int, mu, sigma, elmore, xw float64) *sta.Path {
	p := &sta.Path{}
	for i := 0; i < n; i++ {
		p.Stages = append(p.Stages, sta.Stage{
			Cell:        "INVx1",
			CellMoments: stats.Moments{Mean: mu, Std: sigma, Kurtosis: 3},
			Elmore:      elmore,
			XW:          xw,
		})
	}
	return p
}

func TestCornerPathDelayPessimism(t *testing.T) {
	p := synthPath(10, 10e-12, 1e-12, 1e-12, 0.1)
	corner := CornerPathDelay(p, CornerOptions{})
	// Sum of per-stage µ+3σ with wire derate and OCV margin must exceed
	// both the mean sum and the RSS +3σ.
	mean := p.Mean()
	rss := RSSPathQuantile(p, 3)
	if corner <= mean || corner <= rss {
		t.Fatalf("corner %v not above mean %v and RSS %v", corner, mean, rss)
	}
	// Exact value: 1.05·(10·(13ps) + 10·1.10·1ps).
	want := 1.05 * (10*13e-12 + 10*1.10*1e-12)
	if math.Abs(corner-want) > 1e-18 {
		t.Fatalf("corner %v want %v", corner, want)
	}
}

func TestCornerOptionsDefaults(t *testing.T) {
	p := synthPath(4, 10e-12, 1e-12, 1e-12, 0.1)
	def := CornerPathDelay(p, CornerOptions{})
	custom := CornerPathDelay(p, CornerOptions{WireDerate: 1.10, OCVMargin: 1.05})
	if def != custom {
		t.Fatal("defaults differ from explicit 1.10/1.05")
	}
	bigger := CornerPathDelay(p, CornerOptions{WireDerate: 1.5, OCVMargin: 1.2})
	if bigger <= def {
		t.Fatal("larger margins must increase the corner number")
	}
}

func TestRSSUnderestimatesComonotonicSum(t *testing.T) {
	p := synthPath(16, 10e-12, 1e-12, 0, 0)
	// Comonotonic (eq. 10-style) +3σ would be Σ(µ+3σ); RSS replaces 3Σσ
	// with 3√(Σσ²) = 3σ√n.
	rss := RSSPathQuantile(p, 3)
	wantMu := 16 * 10e-12
	wantSpread := 3 * 1e-12 * 4 // √16
	if math.Abs(rss-(wantMu+wantSpread)) > 1e-18 {
		t.Fatalf("RSS %v want %v", rss, wantMu+wantSpread)
	}
	comono := wantMu + 3*16e-12*1e-12/1e-12 // Σµ + 3·n·σ
	_ = comono
	if rss >= wantMu+3*16*1e-12 {
		t.Fatal("RSS should be below the comonotonic sum")
	}
}

func TestRSSIncludesWireSigma(t *testing.T) {
	noWire := RSSPathQuantile(synthPath(4, 10e-12, 1e-12, 0, 0), 3)
	withWire := RSSPathQuantile(synthPath(4, 10e-12, 1e-12, 2e-12, 0.2), 3)
	if withWire <= noWire {
		t.Fatal("wire variance ignored by RSS")
	}
}

func TestCorrectionModelFitAndTransfer(t *testing.T) {
	train := synthPath(10, 10e-12, 1e-12, 1e-12, 0.1)
	ref := 150e-12
	m := FitCorrection(train, ref)
	if got := m.PathDelay(train); math.Abs(got-ref) > 1e-18 {
		t.Fatalf("correction on its training path: %v want %v", got, ref)
	}
	// On a path with a different cell/wire balance, the single scalar
	// cannot be exact — but it must scale monotonically with path size.
	small := m.PathDelay(synthPath(5, 10e-12, 1e-12, 1e-12, 0.1))
	large := m.PathDelay(synthPath(20, 10e-12, 1e-12, 1e-12, 0.1))
	if !(small < ref && ref < large) {
		t.Fatalf("correction scaling broken: %v %v %v", small, ref, large)
	}
}

func TestCorrectionDegenerate(t *testing.T) {
	m := FitCorrection(&sta.Path{}, 1e-10)
	if m.Factor != 1 {
		t.Fatalf("degenerate training path factor %v", m.Factor)
	}
}

func TestPathMeanAndQuantileConsistency(t *testing.T) {
	p := synthPath(6, 10e-12, 1e-12, 2e-12, 0.1)
	if math.Abs(p.Mean()-(6*12e-12)) > 1e-18 {
		t.Fatalf("path mean %v", p.Mean())
	}
	// eq. (10) at level 0 with symmetric stage quantile maps absent: the
	// synthetic path has no CellQ, so Quantile counts only wires.
	if got := p.Quantile(0); math.Abs(got-6*2e-12) > 1e-18 {
		t.Fatalf("wire-only quantile %v", got)
	}
}
