package baseline

import (
	"errors"
	"math"
	"sort"

	"repro/internal/stats"
)

// Burr is the three-parameter Burr type-XII delay model of [13] (Moshrefi
// et al.): F(x) = 1 − [1 + (x/λ)^c]^(−k) for x > 0.
type Burr struct {
	C      float64 // shape
	K      float64 // shape
	Lambda float64 // scale
}

// FitBurr fits Burr XII parameters to positive delay samples by maximum
// likelihood (Nelder-Mead over log-parameters; initialised from the sample
// median so the optimiser starts on the right scale).
func FitBurr(delays []float64) (*Burr, error) {
	if len(delays) < 8 {
		return nil, errors.New("baseline: too few samples for a Burr fit")
	}
	xs := append([]float64(nil), delays...)
	sort.Float64s(xs)
	if xs[0] <= 0 {
		return nil, errors.New("baseline: Burr requires positive delays")
	}
	median := stats.QuantileSorted(xs, 0.5)

	nll := func(p []float64) float64 {
		c := math.Exp(p[0])
		k := math.Exp(p[1])
		lam := math.Exp(p[2])
		if c > 200 || k > 200 {
			return math.Inf(1)
		}
		var sum float64
		for _, x := range xs {
			z := x / lam
			logz := math.Log(z)
			// log pdf = log(c·k/λ) + (c−1)·log z − (k+1)·log(1+z^c)
			log1p := math.Log1p(math.Exp(minf(c*logz, 500)))
			sum -= math.Log(c*k/lam) + (c-1)*logz - (k+1)*log1p
		}
		if math.IsNaN(sum) {
			return math.Inf(1)
		}
		return sum
	}
	x0 := []float64{math.Log(4), math.Log(1), math.Log(median)}
	best := nelderMead(nll, x0, 0.5, 400)
	b := &Burr{
		C:      math.Exp(best[0]),
		K:      math.Exp(best[1]),
		Lambda: math.Exp(best[2]),
	}
	if math.IsNaN(b.C) || math.IsNaN(b.K) || math.IsNaN(b.Lambda) {
		return nil, errors.New("baseline: Burr fit diverged")
	}
	return b, nil
}

// CDF evaluates the Burr XII distribution function.
func (b *Burr) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 1 - math.Pow(1+math.Pow(x/b.Lambda, b.C), -b.K)
}

// Quantile inverts the CDF in closed form:
// x = λ·[(1−p)^(−1/k) − 1]^(1/c).
func (b *Burr) Quantile(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	return b.Lambda * math.Pow(math.Pow(1-p, -1/b.K)-1, 1/b.C)
}

// SigmaQuantile returns the delay at sigma level n.
func (b *Burr) SigmaQuantile(n int) float64 {
	return b.Quantile(stats.SigmaProbability(float64(n)))
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
