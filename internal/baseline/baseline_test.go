package baseline

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/stats"
)

func TestNelderMeadQuadratic(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-3)*(x[0]-3) + 2*(x[1]+1)*(x[1]+1)
	}
	best := nelderMead(f, []float64{0, 0}, 1, 500)
	if math.Abs(best[0]-3) > 1e-4 || math.Abs(best[1]+1) > 1e-4 {
		t.Fatalf("minimum at %v", best)
	}
}

func TestNelderMeadRosenbrockish(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 10*b*b
	}
	best := nelderMead(f, []float64{-1, 1}, 0.5, 4000)
	if f(best) > 1e-5 {
		t.Fatalf("failed to descend: f=%v at %v", f(best), best)
	}
}

func TestOwensTProperties(t *testing.T) {
	// T(h, 0) = 0.
	if v := owensT(1.2, 0); v != 0 {
		t.Errorf("T(h,0)=%v", v)
	}
	// T(0, a) = atan(a)/(2π).
	for _, a := range []float64{0.3, 1, 2.5} {
		want := math.Atan(a) / (2 * math.Pi)
		if got := owensT(0, a); math.Abs(got-want) > 1e-8 {
			t.Errorf("T(0,%v)=%v want %v", a, got, want)
		}
	}
	// T(h, 1) = ½Φ(h)(1−Φ(h)).
	for _, h := range []float64{0.5, 1.5} {
		p := stats.NormalCDF(h)
		want := 0.5 * p * (1 - p)
		if got := owensT(h, 1); math.Abs(got-want) > 1e-8 {
			t.Errorf("T(%v,1)=%v want %v", h, got, want)
		}
	}
	// Odd in a.
	if got := owensT(0.7, -2); math.Abs(got+owensT(0.7, 2)) > 1e-12 {
		t.Error("T not odd in a")
	}
}

func TestSkewNormalReducesToNormal(t *testing.T) {
	sn := SkewNormal{Xi: 2, Omega: 3, Alpha: 0}
	for _, p := range []float64{0.0013499, 0.5, 0.9986501} {
		want := 2 + 3*stats.NormalQuantile(p)
		if got := sn.Quantile(p); math.Abs(got-want) > 1e-6 {
			t.Errorf("α=0 quantile(%v)=%v want %v", p, got, want)
		}
	}
}

func TestSkewNormalCDFMonotone(t *testing.T) {
	sn := SkewNormal{Xi: 0, Omega: 1, Alpha: 4}
	prev := -1.0
	for x := -3.0; x <= 5; x += 0.25 {
		c := sn.CDF(x)
		if c < prev-1e-12 || c < 0 || c > 1 {
			t.Fatalf("CDF not monotone/bounded at %v: %v", x, c)
		}
		prev = c
	}
}

func sampleSkewNormal(r *rng.Stream, xi, omega, alpha float64, n int) []float64 {
	delta := alpha / math.Sqrt(1+alpha*alpha)
	out := make([]float64, n)
	for i := range out {
		z0 := r.NormFloat64()
		z1 := r.NormFloat64()
		z := delta*math.Abs(z0) + math.Sqrt(1-delta*delta)*z1
		out[i] = xi + omega*z
	}
	return out
}

func TestFitSkewNormalMoments(t *testing.T) {
	r := rng.New(11)
	xs := sampleSkewNormal(r, 1, 0.5, 3, 200000)
	sn, err := FitSkewNormalMoments(xs)
	if err != nil {
		t.Fatal(err)
	}
	// Check the fitted quantiles against empirical ones.
	for _, p := range []float64{0.05, 0.5, 0.95} {
		want := stats.Quantile(xs, p)
		got := sn.Quantile(p)
		if math.Abs(got-want) > 0.02 {
			t.Errorf("fit quantile(%v) = %v want ≈%v", p, got, want)
		}
	}
}

func TestLSNOnLognormal(t *testing.T) {
	// A pure lognormal is the α=0 special case of the LSN family, so the
	// fit must nail its quantiles.
	r := rng.New(12)
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = r.LogNormFloat64(-24.5, 0.18) // delay-like magnitudes
	}
	l, err := FitLSN(xs)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{-3, 0, 3} {
		want := stats.Quantile(xs, stats.SigmaProbability(float64(n)))
		got := l.SigmaQuantile(n)
		if stats.RelErr(got, want) > 3 {
			t.Errorf("LSN %+dσ: %v want %v", n, got, want)
		}
	}
}

func TestLSNRejectsNonPositive(t *testing.T) {
	if _, err := FitLSN([]float64{1e-12, -1e-12, 2e-12, 1e-12, 1e-12, 1e-12, 1e-12, 1e-12}); err == nil {
		t.Fatal("negative delay accepted")
	}
}

func TestBurrQuantileCDFInverse(t *testing.T) {
	b := &Burr{C: 4, K: 1.5, Lambda: 2e-11}
	for _, p := range []float64{0.01, 0.3, 0.5, 0.9, 0.999} {
		x := b.Quantile(p)
		if got := b.CDF(x); math.Abs(got-p) > 1e-10 {
			t.Errorf("CDF(Q(%v)) = %v", p, got)
		}
	}
	if b.CDF(-1) != 0 {
		t.Error("CDF negative domain")
	}
	if b.Quantile(0) != 0 || !math.IsInf(b.Quantile(1), 1) {
		t.Error("Quantile bounds")
	}
}

func TestBurrFitOnBurrData(t *testing.T) {
	truth := &Burr{C: 5, K: 2, Lambda: 1.8e-11}
	r := rng.New(13)
	xs := make([]float64, 60000)
	for i := range xs {
		xs[i] = truth.Quantile(r.Float64())
	}
	fit, err := FitBurr(xs)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0.1, 0.5, 0.9, 0.9986} {
		if stats.RelErr(fit.Quantile(p), truth.Quantile(p)) > 3 {
			t.Errorf("Burr refit quantile(%v): %v want %v", p, fit.Quantile(p), truth.Quantile(p))
		}
	}
}

func TestBurrRejectsBadInput(t *testing.T) {
	if _, err := FitBurr([]float64{1, 2, 3}); err == nil {
		t.Fatal("too-few samples accepted")
	}
	neg := []float64{-1, 1, 1, 1, 1, 1, 1, 1}
	if _, err := FitBurr(neg); err == nil {
		t.Fatal("negative samples accepted")
	}
}

func TestMLWireLearnsLinearMap(t *testing.T) {
	// Targets are a noiseless linear function of the features: a tanh MLP
	// must approximate it tightly inside the training range.
	r := rng.New(14)
	var train []TrainSample
	for i := 0; i < 400; i++ {
		f := []float64{r.Float64(), r.Float64() * 2, r.Float64()}
		train = append(train, TrainSample{
			Features: f,
			Targets:  []float64{2*f[0] + f[1] - 0.5*f[2] + 1, f[0] - f[2]},
		})
	}
	m, err := TrainMLWire(train, TrainOptions{Seed: 3, Epochs: 400})
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for i := 0; i < 50; i++ {
		f := []float64{r.Float64(), r.Float64() * 2, r.Float64()}
		want0 := 2*f[0] + f[1] - 0.5*f[2] + 1
		got := m.Predict(f)
		if e := math.Abs(got[0] - want0); e > worst {
			worst = e
		}
	}
	if worst > 0.15 {
		t.Fatalf("MLP worst-case error %v on a linear map", worst)
	}
}

func TestMLWireDeterministic(t *testing.T) {
	r := rng.New(15)
	var train []TrainSample
	for i := 0; i < 50; i++ {
		f := []float64{r.Float64(), r.Float64()}
		train = append(train, TrainSample{Features: f, Targets: []float64{f[0] + f[1]}})
	}
	m1, err := TrainMLWire(train, TrainOptions{Seed: 9, Epochs: 50})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := TrainMLWire(train, TrainOptions{Seed: 9, Epochs: 50})
	if err != nil {
		t.Fatal(err)
	}
	probe := []float64{0.4, 0.6}
	if m1.Predict(probe)[0] != m2.Predict(probe)[0] {
		t.Fatal("training not deterministic for equal seeds")
	}
}

func TestMLWireRejectsTinyTrainingSet(t *testing.T) {
	if _, err := TrainMLWire([]TrainSample{{Features: []float64{1}, Targets: []float64{1}}}, TrainOptions{}); err == nil {
		t.Fatal("tiny training set accepted")
	}
}

func TestMLWireSigmaQuantile(t *testing.T) {
	r := rng.New(16)
	var train []TrainSample
	for i := 0; i < 100; i++ {
		f := []float64{1 + r.Float64()}
		train = append(train, TrainSample{Features: f, Targets: []float64{10 * f[0], f[0]}})
	}
	m, err := TrainMLWire(train, TrainOptions{Seed: 1, Epochs: 300})
	if err != nil {
		t.Fatal(err)
	}
	f := []float64{1.5}
	p := m.Predict(f)
	if got := m.SigmaQuantile(f, 3); math.Abs(got-(p[0]+3*p[1])) > 1e-12 {
		t.Fatal("SigmaQuantile must be µ + nσ of the prediction")
	}
}
