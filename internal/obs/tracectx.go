package obs

import (
	"context"
	"encoding/hex"
	"fmt"
	"math/rand/v2"
)

// TraceContext is the distributed-trace identity carried across process
// boundaries: a 128-bit trace ID shared by every span of one request, the
// 64-bit span ID of the current parent, and the head-sampling decision. It
// travels on context.Context inside a process and as a W3C traceparent
// header between processes.
type TraceContext struct {
	TraceID [16]byte
	SpanID  [8]byte
	Sampled bool
}

// zeroTraceID / zeroSpanID are the invalid all-zero identifiers the W3C
// spec forbids on the wire.
var (
	zeroTraceID [16]byte
	zeroSpanID  [8]byte
)

// Valid reports whether the context names a trace at all (non-zero trace
// ID). The span ID may be zero on a freshly minted root context — the first
// span started under it becomes the trace root.
func (tc TraceContext) Valid() bool { return tc.TraceID != zeroTraceID }

// Propagatable reports whether the context can be rendered as a valid
// traceparent header: the W3C wire form forbids zero IDs, so a root context
// that has not recorded a span yet (span ID still zero) cannot travel.
func (tc TraceContext) Propagatable() bool {
	return tc.TraceID != zeroTraceID && tc.SpanID != zeroSpanID
}

// TraceIDString renders the trace ID as 32 lowercase hex digits.
func (tc TraceContext) TraceIDString() string { return hex.EncodeToString(tc.TraceID[:]) }

// SpanIDString renders the span ID as 16 lowercase hex digits.
func (tc TraceContext) SpanIDString() string { return hex.EncodeToString(tc.SpanID[:]) }

// NewTraceContext mints a fresh trace: random 128-bit trace ID, no parent
// span yet (the first span started under it becomes the root), and the
// given head-sampling decision.
func NewTraceContext(sampled bool) TraceContext {
	var tc TraceContext
	for tc.TraceID == zeroTraceID {
		putUint64(tc.TraceID[0:8], rand.Uint64())
		putUint64(tc.TraceID[8:16], rand.Uint64())
	}
	tc.Sampled = sampled
	return tc
}

// newSpanID mints a random non-zero 64-bit span ID.
func newSpanID() [8]byte {
	var id [8]byte
	for id == zeroSpanID {
		putUint64(id[:], rand.Uint64())
	}
	return id
}

func putUint64(b []byte, v uint64) {
	_ = b[7]
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (56 - 8*i))
	}
}

// Traceparent renders the context as a W3C traceparent header value
// (version 00): 00-<trace-id>-<parent-id>-<trace-flags>.
func (tc TraceContext) Traceparent() string {
	flags := "00"
	if tc.Sampled {
		flags = "01"
	}
	return "00-" + tc.TraceIDString() + "-" + tc.SpanIDString() + "-" + flags
}

// ParseTraceparent parses a W3C traceparent header value. It accepts any
// non-ff version whose first four fields have the version-00 layout
// (forward compatibility per the spec) and rejects malformed input: wrong
// field lengths, non-hex digits, uppercase hex, the ff version, and the
// forbidden all-zero trace or span IDs.
func ParseTraceparent(s string) (TraceContext, error) {
	var tc TraceContext
	if len(s) < 55 {
		return tc, fmt.Errorf("obs: traceparent too short (%d bytes)", len(s))
	}
	if len(s) > 55 && s[55] != '-' {
		return tc, fmt.Errorf("obs: traceparent version-00 layout violated")
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return tc, fmt.Errorf("obs: traceparent field separators misplaced")
	}
	ver, ok := hexByte(s[0], s[1])
	if !ok {
		return tc, fmt.Errorf("obs: traceparent version is not hex")
	}
	if ver == 0xff {
		return tc, fmt.Errorf("obs: traceparent version ff is forbidden")
	}
	if ver == 0 && len(s) != 55 {
		return tc, fmt.Errorf("obs: version-00 traceparent must be exactly 55 bytes")
	}
	for i := 0; i < 16; i++ {
		b, ok := hexByte(s[3+2*i], s[4+2*i])
		if !ok {
			return tc, fmt.Errorf("obs: traceparent trace-id is not lowercase hex")
		}
		tc.TraceID[i] = b
	}
	for i := 0; i < 8; i++ {
		b, ok := hexByte(s[36+2*i], s[37+2*i])
		if !ok {
			return tc, fmt.Errorf("obs: traceparent parent-id is not lowercase hex")
		}
		tc.SpanID[i] = b
	}
	flags, ok := hexByte(s[53], s[54])
	if !ok {
		return tc, fmt.Errorf("obs: traceparent flags are not hex")
	}
	if tc.TraceID == zeroTraceID {
		return tc, fmt.Errorf("obs: traceparent trace-id is all zeros")
	}
	if tc.SpanID == zeroSpanID {
		return tc, fmt.Errorf("obs: traceparent parent-id is all zeros")
	}
	tc.Sampled = flags&0x01 != 0
	return tc, nil
}

// hexByte decodes two lowercase hex digits. Uppercase is rejected — the
// W3C spec requires lowercase on the wire.
func hexByte(hi, lo byte) (byte, bool) {
	h, ok1 := hexNibble(hi)
	l, ok2 := hexNibble(lo)
	return h<<4 | l, ok1 && ok2
}

func hexNibble(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}

type traceCtxKey struct{}

// ContextWithTrace attaches a trace context; spans started from the
// returned context join its trace (or are suppressed when it is unsampled).
func ContextWithTrace(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceFromContext returns the trace context carried by ctx, if any. After
// StartSpan the returned SpanID is the current span's — the value to
// propagate downstream so remote children link to it.
func TraceFromContext(ctx context.Context) (TraceContext, bool) {
	if ctx == nil {
		return TraceContext{}, false
	}
	tc, ok := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc, ok
}
