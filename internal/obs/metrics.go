// Package obs is the dependency-free observability core shared by the
// whole characterization → STA → serving pipeline: a metrics registry
// (atomic counters, gauges and log-bucketed histograms with scrape-time
// quantiles), span-based tracing that exports Chrome trace_event JSON
// (chrome://tracing / Perfetto loadable), and a shared log/slog setup with
// the -log-level/-log-json flags every cmd/ binary registers.
//
// Everything is safe for concurrent use. Metrics are always on — a counter
// bump is one atomic add, a histogram observation one atomic add into a
// fixed bucket array — while tracing is off by default and costs a single
// atomic load per StartSpan until enabled.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomically settable float value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add atomically adds delta to the gauge (CAS loop) — the up/down primitive
// an in-flight/workers-busy gauge needs, where concurrent Set calls would
// lose increments.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram buckets: 8 sub-buckets per power of two over 2^-40 .. 2^40
// (≈ 9e-13 .. 1.1e12), which covers latencies from picoseconds to hours and
// counts/sizes up to a trillion with ≤ 12.5 % relative bucket width. Bucket
// 0 holds zero/negative/sub-range observations, the last bucket overflows.
const (
	histMinExp  = -40
	histMaxExp  = 40
	histSub     = 8
	histNB      = (histMaxExp-histMinExp)*histSub + 2
	histRelFrac = 1.0 / histSub
)

// Histogram is a lock-free log-bucketed histogram. Observations are atomic
// bucket increments; quantiles are estimated at scrape time by walking the
// cumulative bucket counts and reporting the bucket's upper bound, so the
// relative quantile error is bounded by the bucket width (12.5 %).
type Histogram struct {
	counts  [histNB]atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// bucketOf maps a value to its bucket index.
func bucketOf(v float64) int {
	if v <= 0 || math.IsNaN(v) {
		return 0
	}
	frac, exp := math.Frexp(v) // v = frac·2^exp, frac ∈ [0.5, 1)
	oct := exp - 1 - histMinExp
	if oct < 0 {
		return 0
	}
	if oct >= histMaxExp-histMinExp {
		return histNB - 1
	}
	sub := int((frac - 0.5) * 2 * histSub)
	if sub >= histSub { // frac rounding at the top edge
		sub = histSub - 1
	}
	return 1 + oct*histSub + sub
}

// bucketUpper returns the upper bound of bucket i (its reported quantile
// value). Bucket 0 reports 0.
func bucketUpper(i int) float64 {
	if i <= 0 {
		return 0
	}
	if i >= histNB-1 {
		return math.Ldexp(1, histMaxExp)
	}
	i--
	oct, sub := i/histSub, i%histSub
	return math.Ldexp(1+float64(sub+1)/histSub, histMinExp+oct-1+1)
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.counts[bucketOf(v)].Add(1)
	h.count.Add(1)
	for { // atomic float add
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveSince records the elapsed seconds since t0.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0).Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (0 < q ≤ 1) of everything observed so
// far. It returns 0 before the first observation.
func (h *Histogram) Quantile(q float64) float64 {
	var counts [histNB]uint64
	var total uint64
	for i := range counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum >= target {
			return bucketUpper(i)
		}
	}
	return bucketUpper(histNB - 1)
}

// quantiles rendered on every scrape.
var scrapeQuantiles = []float64{0.5, 0.95, 0.99}

// metricKind discriminates families.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "summary"
	}
}

// otherLabel is the overflow bucket of every labeled family: label values
// outside the fixed set registered up front land here, so series
// cardinality is bounded no matter what clients send.
const otherLabel = "other"

// family is one named metric family: either a single unlabeled series or a
// fixed set of labeled series plus the "other" overflow.
type family struct {
	name, help string
	kind       metricKind
	label      string // label key; "" for unlabeled

	mu     sync.Mutex
	series map[string]any // label value ("" when unlabeled) → *Counter/*Gauge/*Histogram
}

func (f *family) get(value string) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.label == "" {
		value = ""
	} else if _, ok := f.series[value]; !ok {
		value = otherLabel
	}
	return f.series[value]
}

// Registry holds metric families. The zero value is not usable; create with
// NewRegistry or use Default.
type Registry struct {
	mu    sync.Mutex
	fams  map[string]*family
	hooks []func() // scrape-time collectors (see OnScrape)
}

// OnScrape registers a collector invoked at the start of every
// WritePrometheus call, before any family renders — the hook point for
// gauges that sample live process state (goroutines, heap, FDs) instead of
// being pushed on every change.
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	r.hooks = append(r.hooks, fn)
	r.mu.Unlock()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry every package-level metric
// registers on — the one /metrics scrapes and -metrics-out dumps.
func Default() *Registry { return defaultRegistry }

// lookup returns (creating if needed) the family, enforcing that repeated
// registrations agree on kind and label key. Registration mismatches are
// programmer errors and panic. Re-registering a labeled family with new
// label values adds series for the values not seen before (cardinality
// stays bounded by what callers register), so two components — say, two
// cluster nodes hosted in one test process — can share one family while
// each contributes its own value set.
func (r *Registry) lookup(name, help string, kind metricKind, label string, values []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	mk := func() any {
		switch kind {
		case kindCounter:
			return &Counter{}
		case kindGauge:
			return &Gauge{}
		default:
			return &Histogram{}
		}
	}
	if f, ok := r.fams[name]; ok {
		if f.kind != kind || f.label != label {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s/%q, was %s/%q",
				name, kind, label, f.kind, f.label))
		}
		if label != "" {
			f.mu.Lock()
			for _, v := range values {
				if _, ok := f.series[v]; !ok {
					f.series[v] = mk()
				}
			}
			f.mu.Unlock()
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, label: label,
		series: make(map[string]any)}
	if label == "" {
		f.series[""] = mk()
	} else {
		for _, v := range values {
			f.series[v] = mk()
		}
		f.series[otherLabel] = mk()
	}
	r.fams[name] = f
	return f
}

// Counter registers (or returns the existing) unlabeled counter family.
func (r *Registry) Counter(name, help string) *Counter {
	return r.lookup(name, help, kindCounter, "", nil).series[""].(*Counter)
}

// Gauge registers (or returns the existing) unlabeled gauge family.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.lookup(name, help, kindGauge, "", nil).series[""].(*Gauge)
}

// Histogram registers (or returns the existing) unlabeled histogram family.
func (r *Registry) Histogram(name, help string) *Histogram {
	return r.lookup(name, help, kindHistogram, "", nil).series[""].(*Histogram)
}

// CounterVec is a counter family keyed by one label over a fixed value set.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family. Only the values given here
// get their own series; any other value aggregates under "other".
func (r *Registry) CounterVec(name, help, label string, values ...string) *CounterVec {
	return &CounterVec{f: r.lookup(name, help, kindCounter, label, values)}
}

// With returns the series for the label value (the "other" series for
// values outside the registered set).
func (v *CounterVec) With(value string) *Counter { return v.f.get(value).(*Counter) }

// GaugeVec is a gauge family keyed by one label over a fixed value set.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family with bounded cardinality, like
// CounterVec.
func (r *Registry) GaugeVec(name, help, label string, values ...string) *GaugeVec {
	return &GaugeVec{f: r.lookup(name, help, kindGauge, label, values)}
}

// With returns the series for the label value.
func (v *GaugeVec) With(value string) *Gauge { return v.f.get(value).(*Gauge) }

// HistogramVec is a histogram family keyed by one label over a fixed set.
type HistogramVec struct{ f *family }

// HistogramVec registers a labeled histogram family with bounded
// cardinality, like CounterVec.
func (r *Registry) HistogramVec(name, help, label string, values ...string) *HistogramVec {
	return &HistogramVec{f: r.lookup(name, help, kindHistogram, label, values)}
}

// With returns the series for the label value.
func (v *HistogramVec) With(value string) *Histogram { return v.f.get(value).(*Histogram) }

// WritePrometheus renders every family in the Prometheus text exposition
// format, families and series sorted by name for stable scrapes.
// Histograms render as summaries: {quantile="0.5|0.95|0.99"}, _sum and
// _count, with quantiles estimated from the log buckets at scrape time.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	hooks := append([]func(){}, r.hooks...)
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.fams[n])
	}
	r.mu.Unlock()

	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind)
		f.mu.Lock()
		vals := make([]string, 0, len(f.series))
		for v := range f.series {
			vals = append(vals, v)
		}
		sort.Strings(vals)
		for _, v := range vals {
			sel := func(extra string) string {
				switch {
				case f.label == "" && extra == "":
					return ""
				case f.label == "":
					return "{" + extra + "}"
				case extra == "":
					return fmt.Sprintf("{%s=%q}", f.label, v)
				default:
					return fmt.Sprintf("{%s=%q,%s}", f.label, v, extra)
				}
			}
			switch m := f.series[v].(type) {
			case *Counter:
				fmt.Fprintf(w, "%s%s %d\n", f.name, sel(""), m.Value())
			case *Gauge:
				fmt.Fprintf(w, "%s%s %g\n", f.name, sel(""), m.Value())
			case *Histogram:
				for _, q := range scrapeQuantiles {
					fmt.Fprintf(w, "%s%s %g\n", f.name,
						sel(fmt.Sprintf("quantile=%q", fmt.Sprintf("%g", q))), m.Quantile(q))
				}
				fmt.Fprintf(w, "%s_sum%s %g\n", f.name, sel(""), m.Sum())
				fmt.Fprintf(w, "%s_count%s %d\n", f.name, sel(""), m.Count())
			}
		}
		f.mu.Unlock()
	}
}
