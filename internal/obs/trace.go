package obs

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value span attribute; it lands in the Chrome trace
// event's "args" object.
type Attr struct {
	Key   string
	Value any
}

// A builds an Attr tersely at call sites.
func A(key string, value any) Attr { return Attr{Key: key, Value: value} }

// Span is one timed section of work. A nil *Span (what StartSpan returns
// while tracing is disabled) is inert: every method is a cheap no-op.
// SetAttr and End are safe to call from different goroutines.
type Span struct {
	tr    *Tracer
	name  string
	start time.Time
	track int32
	root  bool // owns its track; released on End

	// Distributed-trace identity, zero when the span is not part of a
	// distributed trace (plain local tracing).
	traceID  [16]byte
	spanID   [8]byte
	parentID [8]byte

	mu    sync.Mutex // guards attrs and ended
	attrs []Attr
	ended bool
}

// SetAttr attaches an attribute after the span started (e.g. a result
// count known only at the end). Safe for concurrent use with End; attrs
// set after End are dropped.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	}
	s.mu.Unlock()
}

// End records the span into the tracer's ring buffer. Only the first End
// records; later calls are no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	dur := time.Since(s.start)
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := append([]Attr(nil), s.attrs...)
	s.mu.Unlock()
	s.tr.record(s, attrs, dur)
}

// TraceContext returns the span's distributed-trace identity (its own span
// ID as the current SpanID); ok is false for a nil span or one outside any
// distributed trace.
func (s *Span) TraceContext() (TraceContext, bool) {
	if s == nil || s.traceID == zeroTraceID {
		return TraceContext{}, false
	}
	return TraceContext{TraceID: s.traceID, SpanID: s.spanID, Sampled: true}, true
}

// spanEvent is one completed span in the ring buffer.
type spanEvent struct {
	name     string
	track    int32
	start    time.Duration // since tracer epoch
	dur      time.Duration
	attrs    []Attr
	traceID  [16]byte
	spanID   [8]byte
	parentID [8]byte
}

// Tracer records spans into a bounded ring buffer (newest win) and exports
// them as Chrome trace_event JSON. Disabled by default: StartSpan costs one
// atomic load until Enable is called.
type Tracer struct {
	enabled atomic.Bool

	mu         sync.Mutex
	epoch      time.Time
	buf        []spanEvent
	next       int
	full       bool
	dropped    uint64
	freeTracks []int32
	nextTrack  int32
}

// DefaultSpanBuffer is the ring capacity Enable(0) uses.
const DefaultSpanBuffer = 1 << 16

// NewTracer returns a disabled tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Trace is the process-wide tracer behind the package-level StartSpan and
// the -trace-out flags.
var Trace = NewTracer()

// Enable starts recording with a ring buffer of bufCap completed spans
// (DefaultSpanBuffer when bufCap <= 0). Any previously recorded spans are
// discarded.
func (tr *Tracer) Enable(bufCap int) {
	if bufCap <= 0 {
		bufCap = DefaultSpanBuffer
	}
	tr.mu.Lock()
	tr.epoch = time.Now()
	tr.buf = make([]spanEvent, bufCap)
	tr.next, tr.full, tr.dropped = 0, false, 0
	tr.freeTracks, tr.nextTrack = nil, 0
	tr.mu.Unlock()
	tr.enabled.Store(true)
}

// Disable stops recording; already-recorded spans stay exportable.
func (tr *Tracer) Disable() { tr.enabled.Store(false) }

// Enabled reports whether spans are being recorded.
func (tr *Tracer) Enabled() bool { return tr.enabled.Load() }

type spanCtxKey struct{}

// StartSpan opens a span named name. The returned context carries the span
// so children started from it share its display track (the flame-graph
// row); top-level spans get a track of their own, reused after End. While
// the tracer is disabled both return values are usable no-ops.
//
// When ctx carries a TraceContext (see ContextWithTrace), the span joins
// the distributed trace: it gets a fresh span ID with the context's span ID
// as its parent, and the returned context carries the updated trace context
// so children — local or remote via Traceparent — link under this span. An
// unsampled trace context suppresses the span entirely (head-based
// sampling): the caller gets an inert nil span at one atomic load plus one
// context lookup.
func (tr *Tracer) StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	if ctx == nil {
		ctx = context.Background()
	}
	if !tr.enabled.Load() {
		return ctx, nil
	}
	tc, hasTrace := TraceFromContext(ctx)
	if hasTrace && !tc.Sampled {
		return ctx, nil
	}
	s := &Span{tr: tr, name: name, start: time.Now(), attrs: attrs}
	if hasTrace {
		s.traceID = tc.TraceID
		s.spanID = newSpanID()
		s.parentID = tc.SpanID // zero for a freshly minted root context
		ctx = ContextWithTrace(ctx, TraceContext{TraceID: tc.TraceID, SpanID: s.spanID, Sampled: true})
	}
	if parent, ok := ctx.Value(spanCtxKey{}).(*Span); ok && parent != nil {
		s.track = parent.track
	} else {
		s.root = true
		tr.mu.Lock()
		if n := len(tr.freeTracks); n > 0 {
			s.track = tr.freeTracks[n-1]
			tr.freeTracks = tr.freeTracks[:n-1]
		} else {
			s.track = tr.nextTrack
			tr.nextTrack++
		}
		tr.mu.Unlock()
	}
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// StartSpan opens a span on the process-wide tracer.
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	return Trace.StartSpan(ctx, name, attrs...)
}

func (tr *Tracer) record(s *Span, attrs []Attr, dur time.Duration) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.buf == nil {
		return // Enable was never called (span predates a Disable+Enable race)
	}
	if tr.full {
		tr.dropped++
	}
	tr.buf[tr.next] = spanEvent{
		name:     s.name,
		track:    s.track,
		start:    s.start.Sub(tr.epoch),
		dur:      dur,
		attrs:    attrs,
		traceID:  s.traceID,
		spanID:   s.spanID,
		parentID: s.parentID,
	}
	tr.next++
	if tr.next == len(tr.buf) {
		tr.next, tr.full = 0, true
	}
	if s.root {
		tr.freeTracks = append(tr.freeTracks, s.track)
	}
}

// Len reports how many completed spans are currently buffered.
func (tr *Tracer) Len() int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.full {
		return len(tr.buf)
	}
	return tr.next
}

// Dropped reports how many spans were overwritten by ring wraparound.
func (tr *Tracer) Dropped() uint64 {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.dropped
}

// chromeEvent is one entry of the trace_event JSON array — a "complete"
// (ph "X") event with microsecond timestamps, the format chrome://tracing
// and Perfetto load directly.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int32          `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports the buffered spans as Chrome trace_event JSON.
func (tr *Tracer) WriteChromeTrace(w io.Writer) error {
	tr.mu.Lock()
	var events []spanEvent
	if tr.full {
		events = append(events, tr.buf[tr.next:]...)
		events = append(events, tr.buf[:tr.next]...)
	} else {
		events = append(events, tr.buf[:tr.next]...)
	}
	tr.mu.Unlock()

	sort.SliceStable(events, func(i, j int) bool { return events[i].start < events[j].start })
	out := chromeTrace{TraceEvents: make([]chromeEvent, len(events)), DisplayTimeUnit: "ns"}
	for i, e := range events {
		ev := chromeEvent{
			Name: e.name, Ph: "X", Pid: 1, Tid: e.track,
			Ts:  float64(e.start) / float64(time.Microsecond),
			Dur: float64(e.dur) / float64(time.Microsecond),
		}
		nattrs := len(e.attrs)
		if e.traceID != zeroTraceID {
			nattrs += 3
		}
		if nattrs > 0 {
			ev.Args = make(map[string]any, nattrs)
			for _, a := range e.attrs {
				ev.Args[a.Key] = a.Value
			}
			// Distributed-trace identity rides in args, where cmd/tracemerge
			// finds it to stitch per-node files into one cross-node timeline.
			if e.traceID != zeroTraceID {
				ev.Args["trace_id"] = hex.EncodeToString(e.traceID[:])
				ev.Args["span_id"] = hex.EncodeToString(e.spanID[:])
				if e.parentID != zeroSpanID {
					ev.Args["parent_span_id"] = hex.EncodeToString(e.parentID[:])
				}
			}
		}
		out.TraceEvents[i] = ev
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteFile exports the trace to path (the -trace-out flag's target).
func (tr *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: trace export: %w", err)
	}
	err = tr.WriteChromeTrace(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("obs: trace export: %w", err)
	}
	return nil
}
