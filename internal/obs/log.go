package obs

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
)

type loggerCtxKey struct{}

// ContextWithLogger attaches a request-scoped logger (typically one carrying
// request_id/trace_id attrs) to ctx; LoggerFromContext retrieves it anywhere
// downstream so every log line of that request stays greppable by ID.
func ContextWithLogger(ctx context.Context, l *slog.Logger) context.Context {
	return context.WithValue(ctx, loggerCtxKey{}, l)
}

// LoggerFromContext returns the logger attached by ContextWithLogger, or
// slog.Default() when none is.
func LoggerFromContext(ctx context.Context) *slog.Logger {
	if ctx != nil {
		if l, ok := ctx.Value(loggerCtxKey{}).(*slog.Logger); ok && l != nil {
			return l
		}
	}
	return slog.Default()
}

// LogOptions carries the shared logging flags every cmd/ binary registers:
//
//	-log-level debug|info|warn|error   (default info)
//	-log-json                          (structured JSON instead of text)
//
// Register with RegisterLogFlags before flag.Parse, then Setup once parsed.
type LogOptions struct {
	Level string
	JSON  bool
}

// RegisterLogFlags binds the shared logging flags onto fs (use
// flag.CommandLine in main) and returns the options they fill.
func RegisterLogFlags(fs *flag.FlagSet) *LogOptions {
	o := &LogOptions{}
	fs.StringVar(&o.Level, "log-level", "info", "log level: debug | info | warn | error")
	fs.BoolVar(&o.JSON, "log-json", false, "emit structured JSON logs (default: human-readable text)")
	return o
}

// RegisterOutFlag binds an output-file flag under its canonical "-<thing>-out"
// name plus a deprecated alias kept for old scripts. Both write the same
// variable; when a command line passes both, the later one wins (standard
// flag semantics).
func RegisterOutFlag(fs *flag.FlagSet, canonical, deprecated, usage string) *string {
	p := fs.String(canonical, "", usage)
	fs.StringVar(p, deprecated, "", "deprecated alias for -"+canonical)
	return p
}

// ParseLevel maps a flag string onto a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}

// Setup installs the process-wide slog default logger (writing to stderr)
// per the parsed flags. Call it right after flag.Parse.
func (o *LogOptions) Setup() error {
	return SetupLogs(os.Stderr, o.Level, o.JSON)
}

// SetupLogs installs a slog default logger on w at the given level,
// structured JSON when jsonOut is set.
func SetupLogs(w io.Writer, level string, jsonOut bool) error {
	lv, err := ParseLevel(level)
	if err != nil {
		return err
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	if jsonOut {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	slog.SetDefault(slog.New(h))
	return nil
}
