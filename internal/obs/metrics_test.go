package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Re-registration returns the same series.
	if again := r.Counter("test_total", "a counter"); again.Value() != 5 {
		t.Fatalf("re-registered counter lost state: %d", again.Value())
	}
	g := r.Gauge("test_gauge", "a gauge")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %g, want 2.5", got)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("dup", "x")
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency")
	// 1..1000 uniformly: p50 ≈ 500, p95 ≈ 950, p99 ≈ 990.
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if s := h.Sum(); math.Abs(s-500500) > 1e-6 {
		t.Fatalf("sum = %g", s)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 500}, {0.95, 950}, {0.99, 990},
	} {
		got := h.Quantile(tc.q)
		// The log buckets are 12.5% wide and report the upper bound, so the
		// estimate must be within +12.5% of the true quantile and never below
		// the bucket containing it.
		if got < tc.want*(1-1.0/histSub) || got > tc.want*(1+1.0/histSub) {
			t.Errorf("q%g = %g, want within ±12.5%% of %g", tc.q, got, tc.want)
		}
	}
}

func TestHistogramEdgeValues(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(-3)
	h.Observe(math.NaN())
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("all-zero quantile = %g", got)
	}
	h2 := Histogram{}
	h2.Observe(1e300) // far above range: overflow bucket
	if got := h2.Quantile(0.5); got != math.Ldexp(1, histMaxExp) {
		t.Fatalf("overflow quantile = %g", got)
	}
	if got := (&Histogram{}).Quantile(0.99); got != 0 {
		t.Fatalf("empty quantile = %g", got)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines; run
// under -race this pins down that observation and scrape are safe, and that
// the quantiles come out correct afterwards.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers = 8
	const per = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 1; i <= per; i++ {
				h.Observe(float64(i%1000 + 1))
				if i%512 == 0 {
					_ = h.Quantile(0.95) // concurrent scrape
				}
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
	p50 := h.Quantile(0.5)
	if p50 < 500*(1-1.0/histSub) || p50 > 500*(1+1.0/histSub) {
		t.Fatalf("concurrent p50 = %g, want ≈ 500", p50)
	}
}

func TestVecCardinalityBounded(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("req_total", "requests", "route", "/a", "/b")
	v.With("/a").Inc()
	// A flood of distinct unknown values must all collapse into "other".
	for i := 0; i < 1000; i++ {
		v.With(strings.Repeat("x", i%17) + "/evil").Inc()
	}
	if v.With("/definitely-unknown") != v.With("/other-unknown") {
		t.Fatal("unknown label values must share the other series")
	}
	if got := v.f.seriesCount(); got != 3 { // /a, /b, other
		t.Fatalf("series count = %d, want 3", got)
	}
	if got := v.With(otherLabel).Value(); got != 1000 {
		t.Fatalf("other bucket = %d, want 1000", got)
	}
}

func TestGaugeVec(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("lag_seqs", "replication lag", "peer", "http://a", "http://b")
	v.With("http://a").Set(7)
	v.With("http://b").Add(2)
	if got := v.With("http://a").Value(); got != 7 {
		t.Fatalf("gauge a = %g, want 7", got)
	}
	if got := v.With("http://b").Value(); got != 2 {
		t.Fatalf("gauge b = %g, want 2", got)
	}
	// Unknown values collapse into "other", like the counter/histogram vecs.
	if v.With("http://evil") != v.With("http://also-evil") {
		t.Fatal("unknown label values must share the other series")
	}
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `lag_seqs{peer="http://a"} 7`) {
		t.Fatalf("exposition missing labeled gauge:\n%s", sb.String())
	}
}

// TestVecRegistrationMergesNewValues pins the behavior the cluster metrics
// rely on: two components registering the same family with different label
// value sets (say, two nodes in one test process, each naming its own peers)
// each get dedicated series rather than the late one collapsing into
// "other".
func TestVecRegistrationMergesNewValues(t *testing.T) {
	r := NewRegistry()
	v1 := r.CounterVec("fwd_total", "forwards", "peer", "http://a")
	v1.With("http://a").Inc()
	v2 := r.CounterVec("fwd_total", "forwards", "peer", "http://b")
	v2.With("http://b").Add(3)
	if got := v2.With("http://a").Value(); got != 1 {
		t.Fatalf("pre-existing series lost state: %d", got)
	}
	if v2.With("http://b") == v2.With(otherLabel) {
		t.Fatal("late-registered value must get its own series, not other")
	}
	if got := v1.f.seriesCount(); got != 3 { // a, b, other
		t.Fatalf("series count = %d, want 3", got)
	}
	// Same merge for gauges.
	g1 := r.GaugeVec("breaker_open", "breaker", "peer", "http://a")
	g2 := r.GaugeVec("breaker_open", "breaker", "peer", "http://b")
	g2.With("http://b").Set(1)
	if g1.With("http://b").Value() != 1 {
		t.Fatal("gauge families must share merged series")
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "counter a").Add(3)
	r.Gauge("b_gauge", "gauge b").Set(1.5)
	h := r.HistogramVec("c_seconds", "hist c", "route", "/x")
	h.With("/x").Observe(0.25)
	h.With("/unknown").Observe(4)
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# HELP a_total counter a",
		"# TYPE a_total counter",
		"a_total 3",
		"# TYPE b_gauge gauge",
		"b_gauge 1.5",
		"# TYPE c_seconds summary",
		`c_seconds{route="/x",quantile="0.5"}`,
		`c_seconds{route="other",quantile="0.99"}`,
		`c_seconds_sum{route="/x"} 0.25`,
		`c_seconds_count{route="/x"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// seriesCount is a test helper peeking at family cardinality.
func (f *family) seriesCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.series)
}
