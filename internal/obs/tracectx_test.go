package obs

import (
	"context"
	"math/rand/v2"
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	for i := 0; i < 500; i++ {
		var tc TraceContext
		putUint64(tc.TraceID[0:8], rand.Uint64())
		putUint64(tc.TraceID[8:16], rand.Uint64())
		putUint64(tc.SpanID[:], rand.Uint64())
		if tc.TraceID == zeroTraceID || tc.SpanID == zeroSpanID {
			continue // the forbidden wire values; Traceparent callers guard with Propagatable
		}
		tc.Sampled = i%2 == 0
		got, err := ParseTraceparent(tc.Traceparent())
		if err != nil {
			t.Fatalf("round-trip %q: %v", tc.Traceparent(), err)
		}
		if got != tc {
			t.Fatalf("round-trip %q: got %+v want %+v", tc.Traceparent(), got, tc)
		}
	}
}

func TestTraceparentParseValid(t *testing.T) {
	tc, err := ParseTraceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	if err != nil {
		t.Fatal(err)
	}
	if !tc.Sampled {
		t.Error("flags 01 must parse as sampled")
	}
	if tc.TraceIDString() != "0af7651916cd43dd8448eb211c80319c" {
		t.Errorf("trace id %s", tc.TraceIDString())
	}
	if tc.SpanIDString() != "b7ad6b7169203331" {
		t.Errorf("span id %s", tc.SpanIDString())
	}
	// A future version may append fields after a dash; the first four fields
	// still parse (W3C forward compatibility).
	if _, err := ParseTraceparent("cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra"); err != nil {
		t.Errorf("future version with suffix must parse: %v", err)
	}
	if tc2, err := ParseTraceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-00"); err != nil || tc2.Sampled {
		t.Errorf("flags 00 must parse unsampled (err %v)", err)
	}
}

func TestTraceparentParseRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00",
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331",     // missing flags
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-0",   // short flags
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01x", // version 00 with trailing junk
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",  // forbidden version
		"00-00000000000000000000000000000000-b7ad6b7169203331-01",  // zero trace id
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",  // zero span id
		"00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01",  // uppercase hex
		"00-0af7651916cd43dd8448eb211c80319c-B7AD6B7169203331-01",  // uppercase hex
		"0g-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",  // non-hex version
		"00-0af7651916cd43dd8448eb211c8031-b7ad6b7169203331aa-01",  // shifted field widths
		"00_0af7651916cd43dd8448eb211c80319c_b7ad6b7169203331_01",  // wrong separators
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-zz",  // non-hex flags
		strings.Repeat("0", 55),
	}
	for _, s := range bad {
		if _, err := ParseTraceparent(s); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted malformed input", s)
		}
	}
}

func FuzzParseTraceparent(f *testing.F) {
	f.Add("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	f.Add("00-00000000000000000000000000000000-0000000000000000-00")
	f.Add("ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	f.Add("cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-what-ever")
	f.Add("")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, s string) {
		tc, err := ParseTraceparent(s)
		if err != nil {
			return
		}
		// Whatever parses must re-encode to a value that parses to the same
		// identity (version and any suffix normalize to 00, five-field form).
		if tc.TraceID == zeroTraceID || tc.SpanID == zeroSpanID {
			t.Fatalf("ParseTraceparent(%q) accepted a forbidden zero ID", s)
		}
		again, err := ParseTraceparent(tc.Traceparent())
		if err != nil {
			t.Fatalf("re-encode of %q failed to parse: %v", s, err)
		}
		if again != tc {
			t.Fatalf("re-encode of %q changed identity: %+v vs %+v", s, again, tc)
		}
	})
}

func TestContextWithTrace(t *testing.T) {
	if _, ok := TraceFromContext(context.Background()); ok {
		t.Fatal("empty context must carry no trace")
	}
	tc := NewTraceContext(true)
	if !tc.Valid() || tc.SpanID != zeroSpanID {
		t.Fatalf("NewTraceContext: %+v (want non-zero trace id, zero span id)", tc)
	}
	if tc.Propagatable() {
		t.Fatal("root context without a span must not be propagatable")
	}
	ctx := ContextWithTrace(context.Background(), tc)
	got, ok := TraceFromContext(ctx)
	if !ok || got != tc {
		t.Fatalf("TraceFromContext: %+v ok=%v", got, ok)
	}
}
