package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// MergeOptions tunes MergeTraceFiles.
type MergeOptions struct {
	// TraceID, when non-empty, keeps only events belonging to that trace
	// (32 lowercase hex digits); metadata events are always kept.
	TraceID string
}

// MergedTrace is the result of stitching several per-node Chrome trace
// files into one Perfetto-loadable timeline.
type MergedTrace struct {
	TraceEvents     []map[string]any `json:"traceEvents"`
	DisplayTimeUnit string           `json:"displayTimeUnit"`

	// Files counts the input files, Spans the slice events kept, Flows the
	// cross-node flow arrows emitted, Traces the distinct trace IDs seen.
	Files, Spans, Flows, Traces int `json:"-"`
}

// MergeTraceFiles merges N per-node trace_event JSON files (each written by
// Tracer.WriteFile on one node) into a single timeline:
//
//   - every input file becomes one "process": its events keep their thread
//     (track) IDs but get a distinct pid, plus a process_name metadata event
//     labeled with the file's base name, so Perfetto shows one lane group
//     per node;
//   - spans carrying distributed-trace identity (trace_id/span_id/
//     parent_span_id args) are linked: where a span's parent lives in a
//     different file, a flow arrow (ph "s"/"f") is emitted from the parent
//     slice to the child slice — the visual owner→replica / proxy→owner hop.
//
// Events are ordered by timestamp. The inputs must share a clock for the
// absolute alignment to be meaningful (same host, or NTP-close hosts);
// flow arrows are correct regardless since they bind to slices, not times.
func MergeTraceFiles(paths []string, opt MergeOptions) (*MergedTrace, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("obs: merge: no input files")
	}
	type slice struct {
		ev       map[string]any
		pid      int
		traceID  string
		spanID   string
		parentID string
	}
	var slices []slice
	spanHome := map[string]int{} // span_id → index into slices
	traces := map[string]bool{}
	out := &MergedTrace{DisplayTimeUnit: "ns", Files: len(paths)}

	for i, path := range paths {
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("obs: merge: %w", err)
		}
		var file struct {
			TraceEvents []map[string]any `json:"traceEvents"`
		}
		if err := json.Unmarshal(raw, &file); err != nil {
			return nil, fmt.Errorf("obs: merge %s: %w", path, err)
		}
		pid := i + 1
		label := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		out.TraceEvents = append(out.TraceEvents, map[string]any{
			"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
			"args": map[string]any{"name": label},
		})
		for _, ev := range file.TraceEvents {
			if ph, _ := ev["ph"].(string); ph == "M" {
				continue // per-file metadata is replaced by ours
			}
			s := slice{ev: ev, pid: pid}
			if args, ok := ev["args"].(map[string]any); ok {
				s.traceID, _ = args["trace_id"].(string)
				s.spanID, _ = args["span_id"].(string)
				s.parentID, _ = args["parent_span_id"].(string)
			}
			if opt.TraceID != "" && s.traceID != opt.TraceID {
				continue
			}
			ev["pid"] = pid
			if s.traceID != "" {
				traces[s.traceID] = true
			}
			if s.spanID != "" {
				spanHome[s.spanID] = len(slices)
			}
			slices = append(slices, s)
		}
	}

	flowID := 0
	for _, s := range slices {
		out.TraceEvents = append(out.TraceEvents, s.ev)
		if s.parentID == "" {
			continue
		}
		pi, ok := spanHome[s.parentID]
		if !ok || slices[pi].pid == s.pid {
			continue // local parent (same file) or parent span not captured
		}
		// Cross-node link: flow start bound to the parent slice, flow end
		// (bp "e": bind to the enclosing slice) at the child slice.
		parent := slices[pi]
		flowID++
		out.TraceEvents = append(out.TraceEvents,
			map[string]any{
				"name": "cross-node", "cat": "trace", "ph": "s", "id": flowID,
				"pid": parent.pid, "tid": parent.ev["tid"], "ts": parent.ev["ts"],
			},
			map[string]any{
				"name": "cross-node", "cat": "trace", "ph": "f", "bp": "e", "id": flowID,
				"pid": s.pid, "tid": s.ev["tid"], "ts": s.ev["ts"],
			},
		)
		out.Flows++
	}
	out.Spans = len(slices)
	out.Traces = len(traces)

	sort.SliceStable(out.TraceEvents, func(i, j int) bool {
		// Metadata first (no ts), then by timestamp.
		ti, iok := out.TraceEvents[i]["ts"].(float64)
		tj, jok := out.TraceEvents[j]["ts"].(float64)
		if !iok || !jok {
			return !iok && jok
		}
		return ti < tj
	})
	return out, nil
}

// Encode renders the merged trace as Chrome trace_event JSON.
func (m *MergedTrace) Encode(w io.Writer) error {
	return json.NewEncoder(w).Encode(m)
}

// Write renders the merged trace as Chrome trace_event JSON at path.
func (m *MergedTrace) Write(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: merge export: %w", err)
	}
	err = m.Encode(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("obs: merge export: %w", err)
	}
	return nil
}
