package obs

import (
	"bytes"
	"math"
	"regexp"
	"runtime/metrics"
	"strconv"
	"strings"
	"testing"
)

func TestRuntimeMetricsOnScrape(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	RegisterRuntimeMetrics(r) // idempotent: one hook, no duplicate families

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, fam := range []string{
		"process_goroutines",
		"process_heap_inuse_bytes",
		"process_gc_pause_p99_seconds",
		"process_open_fds",
	} {
		if n := strings.Count(out, "# TYPE "+fam+" "); n != 1 {
			t.Errorf("family %s appears %d times, want 1\n%s", fam, n, out)
		}
	}

	sample := func(fam string) float64 {
		m := regexp.MustCompile(`(?m)^` + fam + ` (\S+)$`).FindStringSubmatch(out)
		if m == nil {
			t.Fatalf("no sample for %s", fam)
		}
		v, err := strconv.ParseFloat(m[1], 64)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		return v
	}
	if g := sample("process_goroutines"); g < 1 {
		t.Errorf("goroutines %g, want >= 1", g)
	}
	if h := sample("process_heap_inuse_bytes"); h <= 0 {
		t.Errorf("heap in-use %g, want > 0", h)
	}
	if p := sample("process_gc_pause_p99_seconds"); p < 0 || p > 10 {
		t.Errorf("gc pause p99 %g out of sane range", p)
	}
	// /proc may be absent on non-Linux; the gauge then reports -1.
	if f := sample("process_open_fds"); f != -1 && f < 3 {
		t.Errorf("open fds %g, want -1 or >= 3 (stdio)", f)
	}
}

func TestHistPQuantile(t *testing.T) {
	if got := histP(nil, 0.99); got != 0 {
		t.Errorf("nil histogram: %g", got)
	}
	h := &metrics.Float64Histogram{
		Counts:  []uint64{0, 0, 0},
		Buckets: []float64{0, 1, 2, 3},
	}
	if got := histP(h, 0.99); got != 0 {
		t.Errorf("empty histogram: %g", got)
	}
	// 90 samples in [0,1), 10 in [2,3): p50 falls in the first bucket (upper
	// bound 1), p99 in the last.
	h.Counts = []uint64{90, 0, 10}
	if got := histP(h, 0.5); got != 1 {
		t.Errorf("p50 = %g, want 1", got)
	}
	if got := histP(h, 0.99); got != 3 {
		t.Errorf("p99 = %g, want 3", got)
	}
	// +Inf upper bound falls back to the bucket's lower bound.
	h.Buckets = []float64{0, 1, 2, math.Inf(1)}
	if got := histP(h, 0.99); got != 2 {
		t.Errorf("p99 with +Inf bucket = %g, want lower bound 2", got)
	}
}
