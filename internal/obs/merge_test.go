package obs

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

// twoNodeTraceFiles simulates a proxied request: node A records the client
// span, node B records the server span as its remote child, each tracer
// exports its own file — exactly what two timingd -trace-out nodes produce.
func twoNodeTraceFiles(t *testing.T) (dir string, traceID string) {
	t.Helper()
	trA, trB := NewTracer(), NewTracer()
	trA.Enable(0)
	trB.Enable(0)

	root := NewTraceContext(true)
	ctxA := ContextWithTrace(context.Background(), root)
	ctxA, spanA := trA.StartSpan(ctxA, "proxy_forward")
	// The wire hop: A's context travels as a traceparent, B parses it.
	tcWire, ok := TraceFromContext(ctxA)
	if !ok || !tcWire.Propagatable() {
		t.Fatalf("context after StartSpan not propagatable: %+v", tcWire)
	}
	parsed, err := ParseTraceparent(tcWire.Traceparent())
	if err != nil {
		t.Fatal(err)
	}
	ctxB := ContextWithTrace(context.Background(), parsed)
	_, spanB := trB.StartSpan(ctxB, "http_request")
	spanB.End()
	spanA.End()

	// An unrelated local span on A: no trace identity, must not link.
	_, loose := trA.StartSpan(context.Background(), "local_work")
	loose.End()

	dir = t.TempDir()
	if err := trA.WriteFile(filepath.Join(dir, "nodeA.json")); err != nil {
		t.Fatal(err)
	}
	if err := trB.WriteFile(filepath.Join(dir, "nodeB.json")); err != nil {
		t.Fatal(err)
	}
	return dir, root.TraceIDString()
}

func TestMergeTraceFilesLinksAcrossNodes(t *testing.T) {
	dir, traceID := twoNodeTraceFiles(t)
	m, err := MergeTraceFiles([]string{
		filepath.Join(dir, "nodeA.json"),
		filepath.Join(dir, "nodeB.json"),
	}, MergeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Files != 2 || m.Spans != 3 || m.Traces != 1 {
		t.Fatalf("files=%d spans=%d traces=%d, want 2/3/1", m.Files, m.Spans, m.Traces)
	}
	if m.Flows != 1 {
		t.Fatalf("flows=%d, want exactly one cross-node arrow", m.Flows)
	}
	pidsOfTrace := map[int]bool{}
	var flowStarts, flowEnds int
	for _, ev := range m.TraceEvents {
		args, _ := ev["args"].(map[string]any)
		if args != nil && args["trace_id"] == traceID {
			pid, _ := ev["pid"].(int)
			pidsOfTrace[pid] = true
		}
		switch ev["ph"] {
		case "s":
			flowStarts++
		case "f":
			flowEnds++
			if ev["bp"] != "e" {
				t.Error("flow end must bind to the enclosing slice (bp e)")
			}
		}
	}
	if len(pidsOfTrace) != 2 {
		t.Fatalf("trace %s spans %d pids, want 2", traceID, len(pidsOfTrace))
	}
	if flowStarts != 1 || flowEnds != 1 {
		t.Fatalf("flow events %d/%d, want 1/1", flowStarts, flowEnds)
	}

	// Round-trip through the file form tracemerge writes.
	out := filepath.Join(dir, "merged.json")
	if err := m.Write(out); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(out)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == 0 {
		t.Fatal("merged file is empty")
	}
}

func TestMergeTraceFilesFilterByTrace(t *testing.T) {
	dir, traceID := twoNodeTraceFiles(t)
	paths := []string{filepath.Join(dir, "nodeA.json"), filepath.Join(dir, "nodeB.json")}
	m, err := MergeTraceFiles(paths, MergeOptions{TraceID: traceID})
	if err != nil {
		t.Fatal(err)
	}
	if m.Spans != 2 {
		t.Fatalf("filtered spans=%d, want 2 (local_work dropped)", m.Spans)
	}
	if m.Traces != 1 || m.Flows != 1 {
		t.Fatalf("traces=%d flows=%d after filter", m.Traces, m.Flows)
	}
	if _, err := MergeTraceFiles(nil, MergeOptions{}); err == nil {
		t.Fatal("empty input list must error")
	}
	if _, err := MergeTraceFiles([]string{filepath.Join(dir, "missing.json")}, MergeOptions{}); err == nil {
		t.Fatal("missing input file must error")
	}
}
