package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"
)

// exportArgs decodes a tracer's Chrome export and returns each event's args
// keyed by span name.
func exportArgs(t *testing.T, tr *Tracer) map[string]map[string]any {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	byName := map[string]map[string]any{}
	for _, ev := range out.TraceEvents {
		byName[ev.Name] = ev.Args
	}
	return byName
}

func TestSpanConcurrentSetAttrAndEnd(t *testing.T) {
	tr := NewTracer()
	tr.Enable(1 << 10)
	for i := 0; i < 50; i++ {
		_, s := tr.StartSpan(context.Background(), "contended")
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for j := 0; j < 20; j++ {
					s.SetAttr("k", w*100+j)
				}
			}(w)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.End()
			s.End() // second End must be a harmless no-op
		}()
		wg.Wait()
		s.SetAttr("late", true) // after End: dropped, not raced
	}
	if tr.Len() != 50 {
		t.Fatalf("recorded %d spans, want 50 (one per iteration, double End collapsed)", tr.Len())
	}
}

func TestDistributedTraceIdentityExport(t *testing.T) {
	tr := NewTracer()
	tr.Enable(0)
	root := NewTraceContext(true)
	ctx := ContextWithTrace(context.Background(), root)

	ctx, parent := tr.StartSpan(ctx, "parent")
	pc, ok := parent.TraceContext()
	if !ok || pc.TraceID != root.TraceID || pc.SpanID == zeroSpanID {
		t.Fatalf("parent.TraceContext() = %+v ok=%v", pc, ok)
	}
	cur, _ := TraceFromContext(ctx)
	if cur.SpanID != pc.SpanID || !cur.Sampled {
		t.Fatalf("context after StartSpan carries %+v, want span %x", cur, pc.SpanID)
	}
	_, child := tr.StartSpan(ctx, "child")
	child.End()
	parent.End()

	args := exportArgs(t, tr)
	want := root.TraceIDString()
	if args["parent"]["trace_id"] != want || args["child"]["trace_id"] != want {
		t.Fatalf("trace ids: parent %v child %v want %s", args["parent"]["trace_id"], args["child"]["trace_id"], want)
	}
	if _, has := args["parent"]["parent_span_id"]; has {
		t.Error("trace root (minted context, zero parent) must omit parent_span_id")
	}
	if got := args["child"]["parent_span_id"]; got != pc.SpanIDString() {
		t.Errorf("child parent_span_id %v, want %s", got, pc.SpanIDString())
	}
}

func TestUnsampledContextSuppressesSpans(t *testing.T) {
	tr := NewTracer()
	tr.Enable(0)
	tc := NewTraceContext(false)
	ctx := ContextWithTrace(context.Background(), tc)
	ctx2, s := tr.StartSpan(ctx, "suppressed")
	if s != nil {
		t.Fatal("unsampled trace context must yield a nil span")
	}
	if ctx2 != ctx {
		t.Fatal("unsampled StartSpan must return ctx unchanged")
	}
	s.SetAttr("k", 1) // nil-safe
	s.End()
	if tr.Len() != 0 {
		t.Fatalf("suppressed span recorded (%d events)", tr.Len())
	}
	// No trace context at all still records (plain local tracing).
	_, s2 := tr.StartSpan(context.Background(), "plain")
	s2.End()
	if tr.Len() != 1 {
		t.Fatalf("plain span not recorded (%d events)", tr.Len())
	}
	if c, ok := s2.TraceContext(); ok {
		t.Fatalf("plain span reports a trace context %+v", c)
	}
}
