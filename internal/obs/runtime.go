package obs

import (
	"math"
	"os"
	"runtime"
	"runtime/metrics"
	"sync"
)

// runtimeOnce guards per-registry runtime-metric registration, so repeated
// RegisterRuntimeMetrics calls (e.g. several servers in one test process)
// install a single scrape hook.
var (
	runtimeMu   sync.Mutex
	runtimeRegs = map[*Registry]bool{}
)

// RegisterRuntimeMetrics installs process-level telemetry gauges on r,
// refreshed lazily on every scrape (Registry.OnScrape):
//
//	process_goroutines            live goroutine count
//	process_heap_inuse_bytes      heap memory in in-use spans
//	process_gc_pause_p99_seconds  p99 stop-the-world GC pause, process lifetime
//	process_open_fds              open file descriptors (-1 where unsupported)
//
// Collection costs a few runtime/metrics reads plus one /proc readdir per
// scrape — nothing on the request path. Idempotent per registry.
func RegisterRuntimeMetrics(r *Registry) {
	runtimeMu.Lock()
	if runtimeRegs[r] {
		runtimeMu.Unlock()
		return
	}
	runtimeRegs[r] = true
	runtimeMu.Unlock()

	goroutines := r.Gauge("process_goroutines", "Live goroutines.")
	heapInuse := r.Gauge("process_heap_inuse_bytes", "Heap bytes in in-use spans (objects plus in-span slack).")
	gcPauseP99 := r.Gauge("process_gc_pause_p99_seconds", "p99 stop-the-world GC pause over the process lifetime.")
	openFDs := r.Gauge("process_open_fds", "Open file descriptors (-1 where /proc is unavailable).")

	samples := []metrics.Sample{
		{Name: "/memory/classes/heap/objects:bytes"},
		{Name: "/memory/classes/heap/unused:bytes"},
		{Name: "/sched/pauses/total/gc:seconds"},
	}
	r.OnScrape(func() {
		goroutines.Set(float64(runtime.NumGoroutine()))
		metrics.Read(samples)
		heapInuse.Set(float64(samples[0].Value.Uint64() + samples[1].Value.Uint64()))
		gcPauseP99.Set(histP(samples[2].Value.Float64Histogram(), 0.99))
		openFDs.Set(countOpenFDs())
	})
}

// histP estimates the q-quantile of a runtime/metrics histogram by walking
// the cumulative bucket counts and reporting the matched bucket's upper
// bound (the lower bound for the +Inf overflow bucket). 0 when empty.
func histP(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			// Bucket i spans [Buckets[i], Buckets[i+1]).
			upper := h.Buckets[i+1]
			if math.IsInf(upper, 1) {
				return h.Buckets[i]
			}
			return upper
		}
	}
	return 0
}

// countOpenFDs counts this process's open file descriptors via /proc
// (Linux). Returns -1 where that is unavailable.
func countOpenFDs() float64 {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	// The ReadDir itself holds one fd open on the directory; exclude it.
	return float64(len(ents) - 1)
}
