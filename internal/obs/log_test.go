package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"log/slog"
	"strings"
	"testing"
)

func TestRegisterLogFlags(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	o := RegisterLogFlags(fs)
	if err := fs.Parse([]string{"-log-level", "debug", "-log-json"}); err != nil {
		t.Fatal(err)
	}
	if o.Level != "debug" || !o.JSON {
		t.Fatalf("parsed options = %+v", o)
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "": slog.LevelInfo,
		"WARN": slog.LevelWarn, "warning": slog.LevelWarn, "error": slog.LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel(loud) should fail")
	}
}

func TestSetupLogsJSONAndLevel(t *testing.T) {
	prev := slog.Default()
	defer slog.SetDefault(prev)

	var buf bytes.Buffer
	if err := SetupLogs(&buf, "warn", true); err != nil {
		t.Fatal(err)
	}
	slog.Info("dropped")
	slog.Warn("kept", "route", "/metrics")
	out := buf.String()
	if strings.Contains(out, "dropped") {
		t.Fatalf("info line should be filtered at warn level:\n%s", out)
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(out)), &rec); err != nil {
		t.Fatalf("JSON handler output is not JSON: %v\n%s", err, out)
	}
	if rec["msg"] != "kept" || rec["route"] != "/metrics" {
		t.Fatalf("record = %v", rec)
	}

	if err := SetupLogs(&buf, "nope", false); err == nil {
		t.Fatal("bad level must error")
	}
}
