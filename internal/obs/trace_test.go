package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestDisabledTracerIsInert(t *testing.T) {
	tr := NewTracer()
	ctx, sp := tr.StartSpan(context.Background(), "noop", A("k", 1))
	if sp != nil {
		t.Fatal("disabled tracer must return a nil span")
	}
	sp.SetAttr("x", 2) // nil-safe
	sp.End()
	if ctx == nil {
		t.Fatal("context must still be usable")
	}
	if tr.Len() != 0 {
		t.Fatalf("recorded %d spans while disabled", tr.Len())
	}
}

func TestSpanRecordingAndExport(t *testing.T) {
	tr := NewTracer()
	tr.Enable(16)
	ctx, root := tr.StartSpan(context.Background(), "parent", A("design", "c432"))
	_, child := tr.StartSpan(ctx, "child")
	time.Sleep(time.Millisecond)
	child.SetAttr("gates", 42)
	child.End()
	root.End()
	tr.Disable()

	if got := tr.Len(); got != 2 {
		t.Fatalf("buffered spans = %d, want 2", got)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int32          `json:"tid"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(out.TraceEvents) != 2 {
		t.Fatalf("exported %d events, want 2", len(out.TraceEvents))
	}
	byName := map[string]int{}
	for i, e := range out.TraceEvents {
		if e.Ph != "X" {
			t.Errorf("event %d phase %q, want X", i, e.Ph)
		}
		byName[e.Name] = i
	}
	p, c := out.TraceEvents[byName["parent"]], out.TraceEvents[byName["child"]]
	if p.Tid != c.Tid {
		t.Errorf("child track %d != parent track %d (must share a flame row)", c.Tid, p.Tid)
	}
	if c.Dur < 900 { // slept 1ms = 1000µs
		t.Errorf("child dur = %g µs, want ≥ 900", c.Dur)
	}
	if p.Args["design"] != "c432" {
		t.Errorf("parent args = %v", p.Args)
	}
	if c.Args["gates"] != float64(42) {
		t.Errorf("child args = %v", c.Args)
	}
}

func TestRingBufferWraparound(t *testing.T) {
	tr := NewTracer()
	tr.Enable(4)
	for i := 0; i < 10; i++ {
		_, sp := tr.StartSpan(context.Background(), "s")
		sp.End()
	}
	if got := tr.Len(); got != 4 {
		t.Fatalf("len = %d, want cap 4", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("wrapped export is not valid JSON")
	}
}

func TestTrackReuseAndConcurrency(t *testing.T) {
	tr := NewTracer()
	tr.Enable(1024)
	// Sequential top-level spans reuse one track.
	_, a := tr.StartSpan(context.Background(), "a")
	a.End()
	_, b := tr.StartSpan(context.Background(), "b")
	b.End()
	if a.track != b.track {
		t.Errorf("sequential roots on tracks %d/%d, want reuse", a.track, b.track)
	}
	// Concurrent roots must get distinct tracks (race-checked too).
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				ctx, sp := tr.StartSpan(context.Background(), "w")
				_, inner := tr.StartSpan(ctx, "inner")
				inner.End()
				sp.End()
			}
		}()
	}
	wg.Wait()
	if tr.Len() != 1024 {
		t.Fatalf("len = %d, want full 1024", tr.Len())
	}
}
