package nsigma

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/stats"
)

func TestLUTInterpolationBoundedProperty(t *testing.T) {
	// Linear interpolation of µ and σ can never leave the envelope of the
	// node values, for any query point.
	ch := synthChar()
	lut, err := BuildLUT(ch)
	if err != nil {
		t.Fatal(err)
	}
	var muLo, muHi = math.Inf(1), math.Inf(-1)
	for _, g := range ch.Grid {
		muLo = math.Min(muLo, g.Moments.Mean)
		muHi = math.Max(muHi, g.Moments.Mean)
	}
	err = quick.Check(func(sRaw, lRaw float64) bool {
		s := math.Mod(math.Abs(sRaw), 1e-9)
		l := math.Mod(math.Abs(lRaw), 2e-14)
		m := lut.MomentsAt(s, l)
		return m.Mean >= muLo-1e-18 && m.Mean <= muHi+1e-18 && m.Std > 0
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestQuantileOrderingUnderGaussianModel(t *testing.T) {
	// With zero correction coefficients the model is exactly µ + nσ, which
	// must be strictly increasing in n for any positive σ.
	var q QuantileModel
	for i := range q.Coeffs {
		q.Coeffs[i] = make([]float64, len(FeatureNames(i-3)))
	}
	r := rng.New(55)
	err := quick.Check(func(seed uint64) bool {
		rr := r.Split(seed)
		m := stats.Moments{
			Mean:     1e-11 * (0.5 + rr.Float64()),
			Std:      1e-12 * (0.1 + rr.Float64()),
			Skewness: rr.NormFloat64(),
			Kurtosis: 3 + math.Abs(rr.NormFloat64()),
		}
		prev := math.Inf(-1)
		for n := -6; n <= 6; n++ {
			v := q.Quantile(m, n)
			if v <= prev {
				return false
			}
			prev = v
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCalibratedMomentsAlwaysPhysicalProperty(t *testing.T) {
	// Whatever operating point is queried, the calibrated moments must be
	// physical: σ > 0 and the Pearson bound κ ≥ γ² + 1.
	ch := synthChar()
	am, err := FitArc(ch)
	if err != nil {
		t.Fatal(err)
	}
	check := func(f func(s, l float64) stats.Moments) func(float64, float64) bool {
		return func(sRaw, lRaw float64) bool {
			s := math.Mod(math.Abs(sRaw), 5e-9)
			l := math.Mod(math.Abs(lRaw), 1e-13)
			m := f(s, l)
			return m.Std > 0 && m.Kurtosis >= m.Skewness*m.Skewness+1-1e-9 &&
				!math.IsNaN(m.Mean) && !math.IsInf(m.Mean, 0)
		}
	}
	if err := quick.Check(check(am.MomentsAt), &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal("LUT path:", err)
	}
	if err := quick.Check(check(am.MomentsAtGlobal), &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal("polynomial path:", err)
	}
}
