package nsigma

import (
	"errors"
	"fmt"

	"repro/internal/charlib"
	"repro/internal/linalg"
	"repro/internal/stats"
)

// Feature scaling: the interpolation polynomials of eqs. (2)–(3) are fitted
// on ΔS and ΔC normalised to roughly the grid span (100 ps, 2 fF), keeping
// every polynomial feature O(1). Without this the cubic terms (ΔS³ ~ 1e-31
// in SI) would destroy the conditioning of the regression matrix.
// Evaluation applies the same scaling, so stored coefficients are
// self-consistent.
const (
	slewUnit = 100e-12 // 100 ps
	loadUnit = 2e-15   // 2 fF
)

// MomentCalib calibrates the four moments for operating-condition
// deviations {ΔS, ΔC} from the reference point, per eqs. (1)–(3):
//
//	[µ', σ'] = [µ0, σ0] + P·[ΔS, ΔC]                      + K·ΔS·ΔC      (2)
//	[γ', κ'] = [γ0, κ0] + P·[ΔS, ΔC] + Q·[ΔS², ΔC²]
//	                     + R·[ΔS³, ΔC³]                   + K·ΔS·ΔC      (3)
//
// µ and σ use the bilinear form; γ and κ the cubic form.
type MomentCalib struct {
	RefSlew float64       `json:"refSlew"` // seconds
	RefLoad float64       `json:"refLoad"` // farads
	Ref     stats.Moments `json:"ref"`

	// Bilinear coefficient vectors for µ and σ: [P_S, P_C, K].
	Mu    [3]float64 `json:"mu"`
	Sigma [3]float64 `json:"sigma"`
	// Cubic coefficient vectors for γ and κ:
	// [P_S, P_C, Q_S, Q_C, R_S, R_C, K].
	Gamma [7]float64 `json:"gamma"`
	Kappa [7]float64 `json:"kappa"`

	// GammaRange and KappaRange bound the calibrated higher moments to the
	// envelope observed across the characterisation grid (with margin).
	// Cubic response surfaces extrapolate violently outside their support;
	// physically the moments stay within the characterised envelope, so
	// evaluation clamps to it.
	GammaRange [2]float64 `json:"gammaRange"`
	KappaRange [2]float64 `json:"kappaRange"`
}

func bilinearFeatures(dS, dC float64) []float64 {
	return []float64{dS, dC, dS * dC}
}

func cubicFeatures(dS, dC float64) []float64 {
	return []float64{dS, dC, dS * dS, dC * dC, dS * dS * dS, dC * dC * dC, dS * dC}
}

// MomentsAt returns the calibrated moments [µ', σ', γ', κ'] at the given
// operating condition (SI units).
func (mc *MomentCalib) MomentsAt(slew, load float64) stats.Moments {
	dS := (slew - mc.RefSlew) / slewUnit
	dC := (load - mc.RefLoad) / loadUnit
	bf := bilinearFeatures(dS, dC)
	cf := cubicFeatures(dS, dC)
	out := mc.Ref
	for i, f := range bf {
		out.Mean += mc.Mu[i] * f
		out.Std += mc.Sigma[i] * f
	}
	for i, f := range cf {
		out.Skewness += mc.Gamma[i] * f
		out.Kurtosis += mc.Kappa[i] * f
	}
	// Keep the calibrated moments physical: clamp γ and κ to the
	// characterised envelope, keep σ positive, and respect the Pearson
	// bound κ ≥ γ² + 1.
	if out.Std < 1e-18 {
		out.Std = 1e-18
	}
	out.Skewness = clamp(out.Skewness, mc.GammaRange)
	out.Kurtosis = clamp(out.Kurtosis, mc.KappaRange)
	if min := out.Skewness*out.Skewness + 1; out.Kurtosis < min {
		out.Kurtosis = min
	}
	return out
}

func clamp(v float64, r [2]float64) float64 {
	if r[0] == 0 && r[1] == 0 {
		return v // unset range: no clamping
	}
	if v < r[0] {
		return r[0]
	}
	if v > r[1] {
		return r[1]
	}
	return v
}

// FitMomentCalib fits the interpolation vectors from a characterised grid.
// The first grid point must be the reference condition.
func FitMomentCalib(char *charlib.ArcChar) (*MomentCalib, error) {
	if len(char.Grid) < 8 {
		return nil, errors.New("nsigma: moment calibration needs at least 8 grid points")
	}
	ref := char.RefPoint()
	if ref.Op != char.Ref {
		return nil, errors.New("nsigma: grid[0] is not the reference point")
	}
	// The cubic terms of eq. (3) need ≥4 distinct values per axis: on 3
	// support points the ΔS, ΔS², ΔS³ columns are linearly dependent.
	slews := map[float64]bool{}
	loads := map[float64]bool{}
	for _, g := range char.Grid {
		slews[g.Op.Slew] = true
		loads[g.Op.Load] = true
	}
	if len(slews) < 4 || len(loads) < 4 {
		return nil, fmt.Errorf("nsigma: cubic calibration needs ≥4 distinct slews and loads (got %d×%d)",
			len(slews), len(loads))
	}
	mc := &MomentCalib{
		RefSlew: char.Ref.Slew,
		RefLoad: char.Ref.Load,
		Ref:     ref.Moments,
	}
	gamLo, gamHi := ref.Moments.Skewness, ref.Moments.Skewness
	kapLo, kapHi := ref.Moments.Kurtosis, ref.Moments.Kurtosis
	for _, g := range char.Grid {
		gamLo = minf(gamLo, g.Moments.Skewness)
		gamHi = maxf(gamHi, g.Moments.Skewness)
		kapLo = minf(kapLo, g.Moments.Kurtosis)
		kapHi = maxf(kapHi, g.Moments.Kurtosis)
	}
	// 25 % span margin so mild extrapolation beyond the grid stays smooth.
	gm := 0.25 * (gamHi - gamLo)
	km := 0.25 * (kapHi - kapLo)
	mc.GammaRange = [2]float64{gamLo - gm, gamHi + gm}
	mc.KappaRange = [2]float64{kapLo - km, kapHi + km}

	var bRows, cRows [][]float64
	var dMu, dSig, dGam, dKap []float64
	for _, g := range char.Grid[1:] {
		dS := (g.Op.Slew - mc.RefSlew) / slewUnit
		dC := (g.Op.Load - mc.RefLoad) / loadUnit
		bRows = append(bRows, bilinearFeatures(dS, dC))
		cRows = append(cRows, cubicFeatures(dS, dC))
		dMu = append(dMu, g.Moments.Mean-mc.Ref.Mean)
		dSig = append(dSig, g.Moments.Std-mc.Ref.Std)
		dGam = append(dGam, g.Moments.Skewness-mc.Ref.Skewness)
		dKap = append(dKap, g.Moments.Kurtosis-mc.Ref.Kurtosis)
	}
	fit3 := func(rhs []float64, dst *[3]float64, what string) error {
		c, err := linalg.LeastSquares(linalg.FromRows(bRows), rhs)
		if err != nil {
			return fmt.Errorf("nsigma: fitting %s: %w", what, err)
		}
		copy(dst[:], c)
		return nil
	}
	fit7 := func(rhs []float64, dst *[7]float64, what string) error {
		c, err := linalg.LeastSquares(linalg.FromRows(cRows), rhs)
		if err != nil {
			return fmt.Errorf("nsigma: fitting %s: %w", what, err)
		}
		copy(dst[:], c)
		return nil
	}
	if err := fit3(dMu, &mc.Mu, "mu"); err != nil {
		return nil, err
	}
	if err := fit3(dSig, &mc.Sigma, "sigma"); err != nil {
		return nil, err
	}
	if err := fit7(dGam, &mc.Gamma, "gamma"); err != nil {
		return nil, err
	}
	if err := fit7(dKap, &mc.Kappa, "kappa"); err != nil {
		return nil, err
	}
	return mc, nil
}

// SlewModel predicts the mean output transition time of an arc as a
// quadratic-with-cross-term response surface in (ΔS, ΔC). STA uses it to
// propagate slews stage to stage.
type SlewModel struct {
	RefSlew    float64    `json:"refSlew"` // seconds (input slew at reference)
	RefLoad    float64    `json:"refLoad"`
	RefOutSlew float64    `json:"refOutSlew"`
	C          [5]float64 `json:"c"` // [ΔS, ΔC, ΔS², ΔC², ΔS·ΔC]
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func slewFeatures(dS, dC float64) []float64 {
	return []float64{dS, dC, dS * dS, dC * dC, dS * dC}
}

// OutSlew returns the predicted 10-90 output transition time (seconds).
func (sm *SlewModel) OutSlew(slew, load float64) float64 {
	dS := (slew - sm.RefSlew) / slewUnit
	dC := (load - sm.RefLoad) / loadUnit
	out := sm.RefOutSlew
	for i, f := range slewFeatures(dS, dC) {
		out += sm.C[i] * f
	}
	if out < 1e-13 {
		out = 1e-13
	}
	return out
}

// FitSlewModel fits the output-slew surface from a characterised grid.
func FitSlewModel(char *charlib.ArcChar) (*SlewModel, error) {
	if len(char.Grid) < 6 {
		return nil, errors.New("nsigma: slew model needs at least 6 grid points")
	}
	ref := char.RefPoint()
	sm := &SlewModel{
		RefSlew:    char.Ref.Slew,
		RefLoad:    char.Ref.Load,
		RefOutSlew: ref.MeanOutSlew,
	}
	var rows [][]float64
	var rhs []float64
	for _, g := range char.Grid[1:] {
		dS := (g.Op.Slew - sm.RefSlew) / slewUnit
		dC := (g.Op.Load - sm.RefLoad) / loadUnit
		rows = append(rows, slewFeatures(dS, dC))
		rhs = append(rhs, g.MeanOutSlew-sm.RefOutSlew)
	}
	c, err := linalg.LeastSquares(linalg.FromRows(rows), rhs)
	if err != nil {
		return nil, fmt.Errorf("nsigma: fitting slew model: %w", err)
	}
	copy(sm.C[:], c)
	return sm, nil
}
