package nsigma

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/charlib"
	"repro/internal/stats"
)

// MomentLUT is the look-up-table form of the moment calibration (Fig. 5 of
// the paper stores the coefficients "in the look-up table form"): moments
// characterised on a (slew, load) grid, interpolated locally at evaluation
// time — bilinear for µ and σ (eq. 2's form within a grid cell) and cubic
// for γ and κ (eq. 3's form), per axis.
//
// The global polynomial MomentCalib remains available as an ablation; the
// LUT is what the timing flow uses, exactly like a Liberty/LVF table.
type MomentLUT struct {
	Slews []float64 `json:"slews"` // ascending, seconds
	Loads []float64 `json:"loads"` // ascending, farads

	// Value planes indexed [slew][load].
	Mu      [][]float64 `json:"mu"`
	Sigma   [][]float64 `json:"sigma"`
	Gamma   [][]float64 `json:"gamma"`
	Kappa   [][]float64 `json:"kappa"`
	OutSlew [][]float64 `json:"outSlew"`
}

// BuildLUT assembles the LUT from a characterised grid, which must contain
// the full cross product of its slew and load axes.
func BuildLUT(char *charlib.ArcChar) (*MomentLUT, error) {
	slewSet := map[float64]bool{}
	loadSet := map[float64]bool{}
	for _, g := range char.Grid {
		slewSet[g.Op.Slew] = true
		loadSet[g.Op.Load] = true
	}
	lut := &MomentLUT{
		Slews: sortedFloats(slewSet),
		Loads: sortedFloats(loadSet),
	}
	ns, nc := len(lut.Slews), len(lut.Loads)
	if ns < 2 || nc < 2 {
		return nil, errors.New("nsigma: LUT needs at least a 2x2 grid")
	}
	alloc := func() [][]float64 {
		m := make([][]float64, ns)
		for i := range m {
			m[i] = make([]float64, nc)
		}
		return m
	}
	lut.Mu, lut.Sigma, lut.Gamma, lut.Kappa, lut.OutSlew = alloc(), alloc(), alloc(), alloc(), alloc()
	seen := alloc()
	idxOf := func(axis []float64, v float64) int {
		for i, a := range axis {
			if a == v {
				return i
			}
		}
		return -1
	}
	for _, g := range char.Grid {
		i := idxOf(lut.Slews, g.Op.Slew)
		j := idxOf(lut.Loads, g.Op.Load)
		lut.Mu[i][j] = g.Moments.Mean
		lut.Sigma[i][j] = g.Moments.Std
		lut.Gamma[i][j] = g.Moments.Skewness
		lut.Kappa[i][j] = g.Moments.Kurtosis
		lut.OutSlew[i][j] = g.MeanOutSlew
		seen[i][j] = 1
	}
	for i := 0; i < ns; i++ {
		for j := 0; j < nc; j++ {
			if seen[i][j] == 0 {
				return nil, fmt.Errorf("nsigma: grid is not a full cross product (missing S=%.3g C=%.3g)",
					lut.Slews[i], lut.Loads[j])
			}
		}
	}
	return lut, nil
}

func sortedFloats(set map[float64]bool) []float64 {
	out := make([]float64, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Float64s(out)
	return out
}

// MomentsAt interpolates the four moments at an operating condition.
func (l *MomentLUT) MomentsAt(slew, load float64) stats.Moments {
	m := stats.Moments{
		Mean:     l.interp(l.Mu, slew, load, false),
		Std:      l.interp(l.Sigma, slew, load, false),
		Skewness: l.interp(l.Gamma, slew, load, true),
		Kurtosis: l.interp(l.Kappa, slew, load, true),
	}
	if m.Std < 1e-18 {
		m.Std = 1e-18
	}
	if min := m.Skewness*m.Skewness + 1; m.Kurtosis < min {
		m.Kurtosis = min
	}
	return m
}

// OutSlewAt interpolates the mean output transition time.
func (l *MomentLUT) OutSlewAt(slew, load float64) float64 {
	v := l.interp(l.OutSlew, slew, load, false)
	if v < 1e-13 {
		v = 1e-13
	}
	return v
}

// interp performs separable interpolation of plane at (slew, load):
// per-axis linear (cubic=false) or 4-point Lagrange cubic (cubic=true).
// Queries outside the grid clamp to the edge.
func (l *MomentLUT) interp(plane [][]float64, slew, load float64, cubic bool) float64 {
	// First interpolate along the load axis at every slew row the slew-axis
	// stencil needs, then along the slew axis.
	si, sn := stencil(l.Slews, slew, cubic)
	// The stencil is at most 4 points, so the row buffer lives on the stack.
	var buf [4]float64
	vals := buf[:sn]
	for k := 0; k < sn; k++ {
		vals[k] = interp1D(l.Loads, plane[si+k], load, cubic)
	}
	return interp1DAt(l.Slews[si:si+sn], vals, slew, cubic)
}

// stencil returns the starting index and width of the interpolation stencil
// around x: 2 points for linear, up to 4 for cubic.
func stencil(axis []float64, x float64, cubic bool) (start, n int) {
	n = 2
	if cubic {
		n = 4
	}
	if n > len(axis) {
		n = len(axis)
	}
	// Find the cell containing x.
	i := sort.SearchFloat64s(axis, x)
	if i > 0 {
		i--
	}
	start = i - (n-2)/2
	if start < 0 {
		start = 0
	}
	if start+n > len(axis) {
		start = len(axis) - n
	}
	return start, n
}

func interp1D(axis, vals []float64, x float64, cubic bool) float64 {
	s, n := stencil(axis, x, cubic)
	return interp1DAt(axis[s:s+n], vals[s:s+n], x, cubic)
}

// interp1DAt interpolates within a small stencil: Lagrange polynomial
// through all stencil points for cubic, linear with edge clamping otherwise.
func interp1DAt(axis, vals []float64, x float64, cubic bool) float64 {
	n := len(axis)
	if n == 1 {
		return vals[0]
	}
	if !cubic || n == 2 {
		// Piecewise linear with clamped extrapolation.
		if x <= axis[0] {
			x = axis[0]
		}
		if x >= axis[n-1] {
			x = axis[n-1]
		}
		i := sort.SearchFloat64s(axis, x)
		if i > 0 {
			i--
		}
		if i >= n-1 {
			i = n - 2
		}
		t := (x - axis[i]) / (axis[i+1] - axis[i])
		return vals[i]*(1-t) + vals[i+1]*t
	}
	// Clamp cubic queries to the stencil span to avoid polynomial runaway.
	if x < axis[0] {
		x = axis[0]
	}
	if x > axis[n-1] {
		x = axis[n-1]
	}
	var sum float64
	for i := 0; i < n; i++ {
		li := 1.0
		for j := 0; j < n; j++ {
			if j != i {
				li *= (x - axis[j]) / (axis[i] - axis[j])
			}
		}
		sum += li * vals[i]
	}
	return sum
}
