package nsigma

import (
	"fmt"

	"repro/internal/charlib"
	"repro/internal/stats"
)

// ArcModel is the complete N-sigma model of one timing arc: calibrated
// moments, Table-I quantile coefficients, and the output-slew surface. It
// answers the two questions STA asks of a cell arc — "what is the nσ delay
// at this (slew, load)?" and "what slew does it hand downstream?".
type ArcModel struct {
	Arc charlib.Arc `json:"arc"`
	// LUT is the moment/slew look-up table (Fig. 5's "coefficients file in
	// the look-up table form") — the calibration the timing flow uses.
	LUT MomentLUT `json:"lut"`
	// Calib is the global polynomial response surface of eqs. (2)–(3),
	// retained for the calibration ablation study.
	Calib MomentCalib   `json:"calib"`
	Quant QuantileModel `json:"quant"`
	Slew  SlewModel     `json:"slew"`
}

// FitArc builds an ArcModel from a Monte-Carlo characterisation. The
// quantile coefficients are regressed across every grid point, so one
// coefficient set serves all operating conditions of the arc — the paper's
// "A_ni and B_nj are fixed and still apply when the operating condition
// changes".
func FitArc(char *charlib.ArcChar) (*ArcModel, error) {
	lut, err := BuildLUT(char)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", char.Arc, err)
	}
	calib, err := FitMomentCalib(char)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", char.Arc, err)
	}
	slew, err := FitSlewModel(char)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", char.Arc, err)
	}
	obs := make([]Observation, len(char.Grid))
	for i, g := range char.Grid {
		obs[i] = Observation{Moments: g.Moments, Quantiles: g.Quantiles}
	}
	quant, err := FitQuantileModel(obs)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", char.Arc, err)
	}
	return &ArcModel{Arc: char.Arc, LUT: *lut, Calib: *calib, Quant: *quant, Slew: *slew}, nil
}

// MomentsAt returns the calibrated moments at an operating condition
// (LUT-interpolated).
func (a *ArcModel) MomentsAt(slew, load float64) stats.Moments {
	return a.LUT.MomentsAt(slew, load)
}

// MomentsAtGlobal evaluates the global polynomial calibration of
// eqs. (2)–(3) instead of the LUT — the ablation variant.
func (a *ArcModel) MomentsAtGlobal(slew, load float64) stats.Moments {
	return a.Calib.MomentsAt(slew, load)
}

// Quantile returns T_c(nσ) at the given operating condition.
func (a *ArcModel) Quantile(n int, slew, load float64) float64 {
	return a.Quant.Quantile(a.LUT.MomentsAt(slew, load), n)
}

// QuantileGlobalCalib is Quantile evaluated through the global polynomial
// calibration (ablation).
func (a *ArcModel) QuantileGlobalCalib(n int, slew, load float64) float64 {
	return a.Quant.Quantile(a.Calib.MomentsAt(slew, load), n)
}

// OutSlew returns the mean output transition time at an operating condition.
func (a *ArcModel) OutSlew(slew, load float64) float64 {
	return a.LUT.OutSlewAt(slew, load)
}

// Variability returns the delay variability ratio σ/µ at an operating
// condition — the quantity the wire model's X coefficients scale (eq. 6).
func (a *ArcModel) Variability(slew, load float64) float64 {
	m := a.LUT.MomentsAt(slew, load)
	if m.Mean <= 0 {
		return 0
	}
	return m.Std / m.Mean
}
