// Package nsigma implements the paper's primary contribution: the N-sigma
// delay model. A cell-delay distribution is summarised by its first four
// moments [µ, σ, γ, κ]; each nσ quantile (-3σ…+3σ, the 0.14 %…99.86 % points
// of Table I) is a closed form in those moments with regression
// coefficients A_ni / B_nj; and the moments themselves are calibrated for
// operating conditions (input slew S, output load C) by the interpolation of
// eqs. (1)–(3). The fitted artefacts serialise into the "coefficients file"
// of Fig. 5 (see package timinglib).
package nsigma

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/stats"
)

// MinSigmaLevel and MaxSigmaLevel bound the native Table-I levels. Eval
// accepts levels beyond this range (the paper's ±6σ extension) by reusing
// the ±3σ coefficient sets with the µ + nσ base term.
const (
	MinSigmaLevel = -3
	MaxSigmaLevel = 3
)

// quantileFeatures returns the Table-I regression features for sigma level
// n given moments m. The base term µ + n·σ is NOT included; it is added
// analytically, so the regression only learns the non-Gaussian correction.
//
//	|n| ≤ 1 : [σγ, γκ]          (skewness-dominated region)
//	|n| = 2 : [σγ, σκ, γκ]      (both effects visible)
//	|n| = 3 : [σκ, γκ]          (tail, kurtosis-dominated)
func quantileFeatures(n int, m stats.Moments) []float64 {
	sg := m.Std * m.Skewness
	sk := m.Std * m.Kurtosis
	gk := m.Skewness * m.Kurtosis
	switch abs(n) {
	case 0, 1:
		return []float64{sg, gk}
	case 2:
		return []float64{sg, sk, gk}
	default:
		return []float64{sk, gk}
	}
}

// FeatureNames documents the feature layout of each level's coefficients.
func FeatureNames(n int) []string {
	switch abs(n) {
	case 0, 1:
		return []string{"sigma*gamma", "gamma*kappa"}
	case 2:
		return []string{"sigma*gamma", "sigma*kappa", "gamma*kappa"}
	default:
		return []string{"sigma*kappa", "gamma*kappa"}
	}
}

func abs(n int) int {
	if n < 0 {
		return -n
	}
	return n
}

// clampLevel maps any requested level onto the coefficient set used to
// evaluate it (the ±6σ extension reuses the ±3σ coefficients).
func clampLevel(n int) int {
	if n > MaxSigmaLevel {
		return MaxSigmaLevel
	}
	if n < MinSigmaLevel {
		return MinSigmaLevel
	}
	return n
}

// QuantileModel holds the fitted A_ni/B_nj coefficients of Table I: one
// coefficient vector per sigma level -3…+3 (indexed by level+3), matching
// quantileFeatures.
type QuantileModel struct {
	Coeffs [7][]float64 `json:"coeffs"`
}

// Quantile evaluates T_c(nσ) for moments m. Levels beyond ±3 use the ±3
// coefficient sets with the µ + n·σ base (the paper's ±6σ extension).
// The features live in a fixed-size stack array (not the heap slice of
// quantileFeatures) so the timing engine's inner loop stays allocation-free;
// the accumulation order matches quantileFeatures element for element, so
// the result is bit-identical.
func (q *QuantileModel) Quantile(m stats.Moments, n int) float64 {
	base := m.Mean + float64(n)*m.Std
	cl := clampLevel(n)
	coeffs := q.Coeffs[cl+3]
	sg := m.Std * m.Skewness
	sk := m.Std * m.Kurtosis
	gk := m.Skewness * m.Kurtosis
	var feats [3]float64
	switch abs(cl) {
	case 0, 1:
		feats[0], feats[1] = sg, gk
	case 2:
		feats[0], feats[1], feats[2] = sg, sk, gk
	default:
		feats[0], feats[1] = sk, gk
	}
	for i, c := range coeffs {
		base += c * feats[i]
	}
	return base
}

// GaussianQuantile is the naive µ + n·σ estimate the paper's model corrects;
// exported for baseline comparisons and ablations.
func GaussianQuantile(m stats.Moments, n int) float64 {
	return m.Mean + float64(n)*m.Std
}

// Observation pairs measured moments with the measured quantiles they must
// reproduce — one row of the regression input set (one operating condition).
type Observation struct {
	Moments   stats.Moments
	Quantiles map[int]float64 // sigma level → golden quantile
}

// timeScaled reports which features of level n carry time units (contain
// σ); the rest (γκ) are dimensionless. Fitting normalises the time-unit
// columns by the observation set's σ scale so that degenerate-column
// detection compares like with like.
func timeScaled(n int) []bool {
	switch abs(n) {
	case 0, 1:
		return []bool{true, false} // σγ, γκ
	case 2:
		return []bool{true, true, false} // σγ, σκ, γκ
	default:
		return []bool{true, false} // σκ, γκ
	}
}

// FitQuantileModel regresses the Table-I coefficients from golden
// Monte-Carlo observations. Each sigma level is fitted independently by
// least squares of (q_golden − (µ + nσ)) on that level's features.
func FitQuantileModel(obs []Observation) (*QuantileModel, error) {
	if len(obs) == 0 {
		return nil, errors.New("nsigma: no observations")
	}
	// Natural time scale of the observation set, used to make every
	// feature column dimensionless before conditioning checks.
	var ts float64
	for _, o := range obs {
		ts += o.Moments.Std
	}
	ts /= float64(len(obs))
	if ts <= 0 {
		ts = 1
	}
	var q QuantileModel
	for _, n := range stats.SigmaLevels {
		nf := len(FeatureNames(n))
		scaleMask := timeScaled(n)
		rows := make([][]float64, 0, len(obs))
		rhs := make([]float64, 0, len(obs))
		for _, o := range obs {
			golden, ok := o.Quantiles[n]
			if !ok {
				continue
			}
			feats := quantileFeatures(n, o.Moments)
			for j := range feats {
				if scaleMask[j] {
					feats[j] /= ts
				}
			}
			rows = append(rows, feats)
			// The target is a time, scaled to the same unit system.
			rhs = append(rhs, (golden-GaussianQuantile(o.Moments, n))/ts)
		}
		if len(rows) < nf {
			return nil, fmt.Errorf("nsigma: level %+d has %d observations for %d coefficients", n, len(rows), nf)
		}
		// Characterisation data can make a feature column degenerate — e.g.
		// σγ over a grid with vanishing skewness. Such a feature carries no
		// information; its coefficient is pinned to zero and the fit runs
		// over the remaining columns.
		norms := make([]float64, nf)
		var maxNorm float64
		for j := 0; j < nf; j++ {
			for _, row := range rows {
				norms[j] += row[j] * row[j]
			}
			norms[j] = math.Sqrt(norms[j])
			if norms[j] > maxNorm {
				maxNorm = norms[j]
			}
		}
		var keep []int
		for j := 0; j < nf; j++ {
			if norms[j] > 1e-12*maxNorm {
				keep = append(keep, j)
			}
		}
		if len(keep) == 0 {
			q.Coeffs[n+3] = make([]float64, nf)
			continue
		}
		sub := make([][]float64, len(rows))
		for i, row := range rows {
			sr := make([]float64, len(keep))
			for k, j := range keep {
				sr[k] = row[j]
			}
			sub[i] = sr
		}
		coef, err := linalg.LeastSquares(linalg.FromRows(sub), rhs)
		if err != nil {
			return nil, fmt.Errorf("nsigma: level %+d: %w", n, err)
		}
		// Undo the unit scaling: with target and time features both divided
		// by ts, time-feature coefficients are already in final units while
		// dimensionless-feature coefficients absorb one factor of ts.
		full := make([]float64, nf)
		for k, j := range keep {
			if scaleMask[j] {
				full[j] = coef[k]
			} else {
				full[j] = coef[k] * ts
			}
		}
		q.Coeffs[n+3] = full
	}
	return &q, nil
}
