package nsigma

import (
	"math"
	"testing"

	"repro/internal/charlib"
	"repro/internal/rng"
	"repro/internal/stats"
)

// gaussQuantiles returns exact Gaussian quantiles for moments m.
func gaussQuantiles(m stats.Moments) map[int]float64 {
	q := map[int]float64{}
	for _, n := range stats.SigmaLevels {
		q[n] = m.Mean + float64(n)*m.Std
	}
	return q
}

func TestFitQuantileModelGaussian(t *testing.T) {
	// Gaussian observations (γ=0, κ=3): features σγ and γκ vanish, σκ
	// stays, but the target correction is 0, so every prediction must
	// reduce to µ + nσ.
	var obs []Observation
	r := rng.New(1)
	for i := 0; i < 30; i++ {
		m := stats.Moments{Mean: 1e-11 + r.Float64()*1e-11, Std: 1e-12 + r.Float64()*1e-12, Skewness: 0, Kurtosis: 3}
		obs = append(obs, Observation{Moments: m, Quantiles: gaussQuantiles(m)})
	}
	q, err := FitQuantileModel(obs)
	if err != nil {
		t.Fatal(err)
	}
	m := stats.Moments{Mean: 2e-11, Std: 1.5e-12, Skewness: 0, Kurtosis: 3}
	for _, n := range stats.SigmaLevels {
		got := q.Quantile(m, n)
		want := m.Mean + float64(n)*m.Std
		if math.Abs(got-want) > 1e-15 {
			t.Errorf("level %+d: %v want %v", n, got, want)
		}
	}
}

func TestFitQuantileModelRecoversPlantedCoefficients(t *testing.T) {
	// Synthesise observations from a known coefficient set and refit.
	want := QuantileModel{}
	want.Coeffs[0] = []float64{0.05, 2e-13}       // -3: σκ, γκ
	want.Coeffs[1] = []float64{-0.2, 0.03, 1e-13} // -2: σγ, σκ, γκ
	want.Coeffs[2] = []float64{-0.3, 5e-14}       // -1: σγ, γκ
	want.Coeffs[3] = []float64{-0.15, 2e-14}      // 0
	want.Coeffs[4] = []float64{0.25, -4e-14}      // +1
	want.Coeffs[5] = []float64{0.3, 0.08, -2e-13} // +2
	want.Coeffs[6] = []float64{0.12, 6e-13}       // +3

	r := rng.New(2)
	var obs []Observation
	for i := 0; i < 60; i++ {
		m := stats.Moments{
			Mean:     1e-11 * (1 + r.Float64()),
			Std:      1e-12 * (0.5 + r.Float64()),
			Skewness: 0.3 + 1.5*r.Float64(),
			Kurtosis: 3 + 5*r.Float64(),
		}
		qs := map[int]float64{}
		for _, n := range stats.SigmaLevels {
			qs[n] = want.Quantile(m, n)
		}
		obs = append(obs, Observation{Moments: m, Quantiles: qs})
	}
	got, err := FitQuantileModel(obs)
	if err != nil {
		t.Fatal(err)
	}
	for lvl := range want.Coeffs {
		for i := range want.Coeffs[lvl] {
			w := want.Coeffs[lvl][i]
			g := got.Coeffs[lvl][i]
			if math.Abs(g-w) > 1e-6*(math.Abs(w)+1e-13) {
				t.Errorf("level %d coeff %d: got %v want %v", lvl-3, i, g, w)
			}
		}
	}
}

func TestQuantileExtension6Sigma(t *testing.T) {
	// The ±6σ extension must reuse the ±3σ coefficients with the ±6σ base.
	var q QuantileModel
	for i := range q.Coeffs {
		q.Coeffs[i] = make([]float64, len(FeatureNames(i-3)))
	}
	q.Coeffs[6] = []float64{0.1, 0}
	m := stats.Moments{Mean: 10, Std: 1, Skewness: 1, Kurtosis: 5}
	got6 := q.Quantile(m, 6)
	want := m.Mean + 6*m.Std + 0.1*m.Std*m.Kurtosis
	if math.Abs(got6-want) > 1e-12 {
		t.Fatalf("+6σ extension: %v want %v", got6, want)
	}
	if q.Quantile(m, 6) <= q.Quantile(m, 3) {
		t.Fatal("+6σ not beyond +3σ")
	}
}

func TestFitQuantileModelErrors(t *testing.T) {
	if _, err := FitQuantileModel(nil); err == nil {
		t.Fatal("empty observations accepted")
	}
	// One observation cannot support 3 coefficients at ±2σ.
	m := stats.Moments{Mean: 1, Std: 0.1, Skewness: 1, Kurtosis: 4}
	obs := []Observation{{Moments: m, Quantiles: gaussQuantiles(m)}}
	if _, err := FitQuantileModel(obs); err == nil {
		t.Fatal("underdetermined fit accepted")
	}
}

// plantedQuantileModel is the coefficient set synthChar generates quantiles
// from, with level-appropriate feature sets.
func plantedQuantileModel() *QuantileModel {
	var pm QuantileModel
	pm.Coeffs[0] = []float64{0.04, 1e-13}
	pm.Coeffs[1] = []float64{-0.15, 0.02, 5e-14}
	pm.Coeffs[2] = []float64{-0.25, 3e-14}
	pm.Coeffs[3] = []float64{-0.1, 1e-14}
	pm.Coeffs[4] = []float64{0.2, -2e-14}
	pm.Coeffs[5] = []float64{0.25, 0.05, -1e-13}
	pm.Coeffs[6] = []float64{0.1, 4e-13}
	return &pm
}

// synthChar builds an ArcChar whose moments follow known smooth surfaces.
func synthChar() *charlib.ArcChar {
	slews := []float64{10e-12, 60e-12, 150e-12, 300e-12}
	loads := []float64{0.1e-15, 0.4e-15, 1.2e-15, 3e-15, 6e-15}
	ch := &charlib.ArcChar{Ref: charlib.Reference}
	momAt := func(s, l float64) stats.Moments {
		sp := s / 100e-12
		lp := l / 2e-15
		return stats.Moments{
			Mean:     1e-11 * (1 + 0.8*sp + 1.5*lp + 0.1*sp*lp),
			Std:      1e-12 * (1 + 0.3*sp + 0.5*lp),
			Skewness: 1.2 + 0.2*sp - 0.1*lp + 0.05*sp*sp,
			Kurtosis: 6 + 0.5*sp - 0.3*lp,
		}
	}
	pm := plantedQuantileModel()
	add := func(s, l float64) {
		m := momAt(s, l)
		qs := map[int]float64{}
		for _, n := range stats.SigmaLevels {
			qs[n] = pm.Quantile(m, n)
		}
		ch.Grid = append(ch.Grid, charlib.GridPoint{
			Op:          charlib.OpPoint{Slew: s, Load: l},
			Moments:     m,
			Quantiles:   qs,
			MeanOutSlew: 1.2*s + 5e-12 + 1e3*l,
			Samples:     1000,
		})
	}
	add(charlib.Reference.Slew, charlib.Reference.Load)
	for _, s := range slews {
		for _, l := range loads {
			if s == charlib.Reference.Slew && l == charlib.Reference.Load {
				continue
			}
			add(s, l)
		}
	}
	return ch
}

func TestBuildLUTExactAtNodes(t *testing.T) {
	ch := synthChar()
	lut, err := BuildLUT(ch)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range ch.Grid {
		m := lut.MomentsAt(g.Op.Slew, g.Op.Load)
		if math.Abs(m.Mean-g.Moments.Mean) > 1e-18 {
			t.Fatalf("LUT not exact at node S=%v C=%v: %v vs %v", g.Op.Slew, g.Op.Load, m.Mean, g.Moments.Mean)
		}
		if math.Abs(m.Kurtosis-g.Moments.Kurtosis) > 1e-9 {
			t.Fatalf("kurtosis not node-exact: %v vs %v", m.Kurtosis, g.Moments.Kurtosis)
		}
	}
}

func TestLUTInterpolatesBetweenNodes(t *testing.T) {
	ch := synthChar()
	lut, err := BuildLUT(ch)
	if err != nil {
		t.Fatal(err)
	}
	// Off-grid point: bilinear µ interpolation of a bilinear surface is
	// exact.
	s, l := 35e-12, 0.8e-15
	sp := s / 100e-12
	lp := l / 2e-15
	wantMu := 1e-11 * (1 + 0.8*sp + 1.5*lp + 0.1*sp*lp)
	got := lut.MomentsAt(s, l)
	if math.Abs(got.Mean-wantMu)/wantMu > 0.01 {
		t.Fatalf("off-grid µ %v want %v", got.Mean, wantMu)
	}
	// Clamped outside the grid: no explosion.
	far := lut.MomentsAt(5e-9, 100e-15)
	if far.Mean <= 0 || math.IsNaN(far.Kurtosis) || far.Kurtosis > 100 {
		t.Fatalf("off-grid clamp failed: %+v", far)
	}
}

func TestBuildLUTRejectsPartialGrid(t *testing.T) {
	ch := synthChar()
	ch.Grid = ch.Grid[:len(ch.Grid)-1]
	if _, err := BuildLUT(ch); err == nil {
		t.Fatal("partial cross product accepted")
	}
}

func TestFitMomentCalibSmoothSurface(t *testing.T) {
	ch := synthChar()
	mc, err := FitMomentCalib(ch)
	if err != nil {
		t.Fatal(err)
	}
	// The planted µ surface is exactly bilinear-with-cross, so the global
	// polynomial must reproduce it off grid.
	s, l := 80e-12, 2e-15
	sp := s / 100e-12
	lp := l / 2e-15
	wantMu := 1e-11 * (1 + 0.8*sp + 1.5*lp + 0.1*sp*lp)
	got := mc.MomentsAt(s, l)
	if math.Abs(got.Mean-wantMu)/wantMu > 1e-6 {
		t.Fatalf("global calib µ %v want %v", got.Mean, wantMu)
	}
	// γ surface has a quadratic term — cubic fit must capture it.
	wantGamma := 1.2 + 0.2*sp - 0.1*lp + 0.05*sp*sp
	if math.Abs(got.Skewness-wantGamma) > 1e-5 {
		t.Fatalf("global calib γ %v want %v", got.Skewness, wantGamma)
	}
}

func TestMomentCalibClampsToEnvelope(t *testing.T) {
	ch := synthChar()
	mc, err := FitMomentCalib(ch)
	if err != nil {
		t.Fatal(err)
	}
	// Far outside the grid the cubic would run away; the envelope clamp
	// must bound γ and κ.
	m := mc.MomentsAt(3e-9, 60e-15)
	if m.Skewness < mc.GammaRange[0]-1e-9 || m.Skewness > mc.GammaRange[1]+1e-9 {
		t.Fatalf("γ %v escaped envelope %v", m.Skewness, mc.GammaRange)
	}
	if m.Kurtosis < m.Skewness*m.Skewness+1-1e-9 {
		t.Fatalf("Pearson bound violated: κ=%v γ=%v", m.Kurtosis, m.Skewness)
	}
}

func TestFitSlewModel(t *testing.T) {
	ch := synthChar()
	sm, err := FitSlewModel(ch)
	if err != nil {
		t.Fatal(err)
	}
	s, l := 120e-12, 2.5e-15
	want := 1.2*s + 5e-12 + 1e3*l
	if got := sm.OutSlew(s, l); math.Abs(got-want)/want > 1e-6 {
		t.Fatalf("slew model %v want %v", got, want)
	}
	if sm.OutSlew(-1e-9, -1e-12) < 1e-13 {
		t.Fatal("slew floor not applied")
	}
}

func TestFitArcEndToEnd(t *testing.T) {
	ch := synthChar()
	am, err := FitArc(ch)
	if err != nil {
		t.Fatal(err)
	}
	// At a grid node the model must reproduce the planted quantiles.
	g := ch.Grid[3]
	for _, n := range []int{-3, 0, 3} {
		got := am.Quantile(n, g.Op.Slew, g.Op.Load)
		want := g.Quantiles[n]
		if math.Abs(got-want)/math.Abs(want) > 1e-6 {
			t.Errorf("level %+d at node: %v want %v", n, got, want)
		}
	}
	if v := am.Variability(g.Op.Slew, g.Op.Load); math.Abs(v-g.Moments.Std/g.Moments.Mean) > 1e-9 {
		t.Errorf("Variability %v", v)
	}
	// Ablation accessor must evaluate through the polynomial surface.
	if am.QuantileGlobalCalib(0, g.Op.Slew, g.Op.Load) <= 0 {
		t.Error("global-calib quantile broken")
	}
}

func TestGaussianQuantileHelper(t *testing.T) {
	m := stats.Moments{Mean: 10, Std: 2}
	if g := GaussianQuantile(m, 3); g != 16 {
		t.Fatalf("GaussianQuantile %v", g)
	}
}

func TestFitArcToleratesQuarantinedSamples(t *testing.T) {
	// Quarantine leaves grid points with slightly-short survivor vectors —
	// uneven Samples counts across the grid. The fit consumes only the
	// per-point moments and quantiles, so it must accept such a grid and
	// produce the same model as the full-count one.
	full := synthChar()
	fullModel, err := FitArc(full)
	if err != nil {
		t.Fatal(err)
	}
	short := synthChar()
	for i := range short.Grid {
		// Non-uniform survivor counts, some points several samples short.
		short.Grid[i].Samples = 1000 - (i*7)%13
	}
	shortModel, err := FitArc(short)
	if err != nil {
		t.Fatalf("fit rejected a quarantine-degraded grid: %v", err)
	}
	for _, n := range []int{-3, 0, 3} {
		a := fullModel.Quantile(n, 35e-12, 0.8e-15)
		b := shortModel.Quantile(n, 35e-12, 0.8e-15)
		if a != b {
			t.Fatalf("survivor counts changed the fitted model at n=%d: %v vs %v", n, a, b)
		}
	}
}
