package circuit

import (
	"fmt"
	"testing"

	"repro/internal/device"
)

// Simulator micro-benchmarks: the golden Monte-Carlo throughput bounds
// every experiment in this repository, so regressions here matter more
// than anywhere else.

func benchInverterChain(n int) *Circuit {
	tech := device.Default28nm()
	ck := New()
	vdd := ck.NodeByName("vdd")
	ck.AddSource(vdd, DC(tech.Vdd))
	in := ck.NodeByName("in")
	ck.AddSource(in, Ramp{T0: 5e-12, TRamp: 12.5e-12, V0: 0, V1: tech.Vdd})
	prev := in
	for i := 0; i < n; i++ {
		out := ck.NodeByName(fmt.Sprintf("n%d", i))
		ck.AddMOS(out, prev, Ground, tech.NominalParams(device.NMOS, 2*tech.Wmin))
		ck.AddMOS(out, prev, vdd, tech.NominalParams(device.PMOS, 3*tech.Wmin))
		ck.AddCapacitor(out, Ground, 0.4e-15)
		prev = out
	}
	return ck
}

func benchTransient(b *testing.B, stages int) {
	ck := benchInverterChain(stages)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ck.Transient(SimOptions{TStop: 4e-10, DT: 1e-12}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransientInverter(b *testing.B) { benchTransient(b, 1) }
func BenchmarkTransientChain5(b *testing.B)   { benchTransient(b, 5) }
func BenchmarkTransientChain20(b *testing.B)  { benchTransient(b, 20) }
func BenchmarkTransientRCLadder(b *testing.B) {
	ck := New()
	src := ck.NodeByName("src")
	ck.AddSource(src, Ramp{T0: 1e-12, TRamp: 10e-12, V0: 0, V1: 0.6})
	prev := src
	for i := 0; i < 20; i++ {
		n := ck.NodeByName(fmt.Sprintf("n%d", i))
		ck.AddResistor(prev, n, 200)
		ck.AddCapacitor(n, Ground, 0.5e-15)
		prev = n
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ck.Transient(SimOptions{TStop: 2e-10, DT: 0.5e-12}); err != nil {
			b.Fatal(err)
		}
	}
}
