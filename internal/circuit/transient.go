package circuit

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/obs"
)

// SimOptions controls a transient run.
type SimOptions struct {
	TStop float64 // simulation end time (s)
	DT    float64 // base timestep (s)

	// MaxNewton bounds Newton iterations per (sub)step. Default 40.
	MaxNewton int
	// VTol is the Newton convergence tolerance on |ΔV| (V). Default 1 µV.
	VTol float64
	// DVMax damps Newton by clamping per-iteration voltage updates (V).
	// Default 0.3 V.
	DVMax float64
	// MaxHalvings bounds local timestep subdivision on Newton failure.
	// Default 6.
	MaxHalvings int
	// Solver selects the linear-solver backend (default SolverAuto: sparse
	// with dense fallback).
	Solver SolverKind
}

func (o *SimOptions) setDefaults() {
	if o.MaxNewton == 0 {
		o.MaxNewton = 40
	}
	if o.VTol == 0 {
		o.VTol = 1e-6
	}
	if o.DVMax == 0 {
		o.DVMax = 0.3
	}
	if o.MaxHalvings == 0 {
		o.MaxHalvings = 6
	}
}

// Result holds sampled node waveforms of a transient run.
type Result struct {
	Times []float64
	// vByNode[node] is nil for ground; driven and free nodes are recorded.
	vByNode [][]float64
	names   []string
	// Solver reports which linear-solver backend produced the run.
	Solver SolverKind
}

// Waveform returns the sampled voltage trace of node n (aliasing internal
// storage; callers must not mutate it).
func (r *Result) Waveform(n Node) []float64 {
	w := r.vByNode[n]
	if w == nil {
		// ground
		w = make([]float64, len(r.Times))
		r.vByNode[n] = w
	}
	return w
}

// ErrNoConvergence reports that Newton failed even at the minimum timestep.
var ErrNoConvergence = errors.New("circuit: transient solver did not converge")

// Transient runs a Backward-Euler transient simulation and returns sampled
// waveforms at every multiple of opts.DT.
func (c *Circuit) Transient(opts SimOptions) (*Result, error) {
	return c.TransientCached(nil, opts)
}

// TransientCached is Transient with a solver cache: when cache is non-nil
// and already holds a solver compiled for this circuit's topology, the
// stamp program, sparsity pattern, symbolic factorisation and every
// workspace are reused — only element values and source waveforms are
// refreshed. This is the Monte-Carlo hot path, where each sample rebuilds
// an identical netlist with perturbed parameters. Results are bit-identical
// to an uncached run.
func (c *Circuit) TransientCached(cache *SolverCache, opts SimOptions) (*Result, error) {
	opts.setDefaults()
	if c.err != nil {
		return nil, c.err
	}
	if opts.TStop <= 0 || opts.DT <= 0 {
		return nil, errors.New("circuit: TStop and DT must be positive")
	}
	var (
		s   *solver
		err error
	)
	if cache != nil {
		s, err = cache.get(c, opts.Solver)
	} else {
		s, err = newSolver(c, opts.Solver)
	}
	if err != nil {
		return nil, err
	}
	_, span := obs.StartSpan(context.Background(), "transient")
	s.nIters, s.nNoConv, s.nHalvings = 0, 0, 0
	defer func() {
		mTransients.Inc()
		mNewtonIters.Add(s.nIters)
		mNewtonNoConv.Add(s.nNoConv)
		mStepHalvings.Add(s.nHalvings)
		span.SetAttr("solver", s.kind.String())
		span.SetAttr("newton_iters", s.nIters)
		span.End()
	}()
	nsteps := int(math.Ceil(opts.TStop/opts.DT)) + 1
	nrec := c.NumNodes() - 1
	res := &Result{
		Times:   make([]float64, 0, nsteps),
		vByNode: make([][]float64, c.NumNodes()),
		names:   c.nodeNames,
	}
	// One flat backing array for all recorded traces: a single allocation
	// sized exactly, subsliced per node with capped capacity.
	flat := make([]float64, nrec*nsteps)
	for n := 1; n <= nrec; n++ {
		off := (n - 1) * nsteps
		res.vByNode[n] = flat[off:off : off+nsteps]
	}

	if err := s.dcOperatingPoint(&opts); err != nil {
		return nil, fmt.Errorf("DC operating point: %w", err)
	}
	record := func(t float64) {
		res.Times = append(res.Times, t)
		for n := 1; n <= nrec; n++ {
			res.vByNode[n] = append(res.vByNode[n], s.voltageOf(Node(n), t))
		}
	}
	record(0)

	t := 0.0
	for t < opts.TStop-1e-21 {
		h := opts.DT
		if t+h > opts.TStop {
			h = opts.TStop - t
		}
		if err := s.advance(t, h, &opts, 0); err != nil {
			return nil, fmt.Errorf("t=%.4g: %w", t, err)
		}
		t += h
		record(t)
	}
	res.Solver = s.kind
	return res, nil
}

// voltageOf returns the voltage of any node given the accepted free-node
// solution s.x and time t (for driven nodes).
func (s *solver) voltageOf(n Node, t float64) float64 {
	if n == Ground {
		return 0
	}
	if w := s.byNode[n]; w != nil {
		return w.V(t)
	}
	return s.x[s.free[n]]
}

// assemble builds the residual f and Jacobian values at the voltages cached
// in vNow/vPrevN for the implicit step of size h. h <= 0 means a DC solve
// (capacitors open). The loop bodies are straight-line array arithmetic:
// slot and row indices were resolved at compile time, with non-free rows
// and columns redirected to trash entries.
func (s *solver) assemble(x []float64, h float64) {
	vals, f := s.vals, s.f
	for i := range vals {
		vals[i] = 0
	}
	for i := range f {
		f[i] = 0
	}
	vNow, vPrev := s.vNow, s.vPrevN

	for i := range s.res {
		st := &s.res[i]
		cur := st.g * (vNow[st.a] - vNow[st.b])
		f[st.fa] += cur
		vals[st.sAA] += st.g
		vals[st.sAB] -= st.g
		f[st.fb] -= cur
		vals[st.sBB] += st.g
		vals[st.sBA] -= st.g
	}

	// Gmin leakage on every free node.
	if s.gmin > 0 {
		for fi := 0; fi < s.nf; fi++ {
			f[fi] += s.gmin * x[fi]
			vals[s.diagSlots[fi]] += s.gmin
		}
	}

	if h > 0 {
		geq := 1 / h
		for i := range s.caps {
			st := &s.caps[i]
			// Backward Euler companion: i = C/h·((va−vb)−(vaPrev−vbPrev))
			g := st.c * geq
			cur := g * ((vNow[st.a] - vNow[st.b]) - (vPrev[st.a] - vPrev[st.b]))
			f[st.fa] += cur
			vals[st.sAA] += g
			vals[st.sAB] -= g
			f[st.fb] -= cur
			vals[st.sBB] += g
			vals[st.sBA] -= g
		}
	}

	for i := range s.mos {
		st := &s.mos[i]
		ids, dg, dd, ds := st.p.Ids(vNow[st.ng], vNow[st.nd], vNow[st.ns])
		f[st.fd] += ids
		vals[st.sDD] += dd
		vals[st.sDS] += ds
		vals[st.sDG] += dg
		f[st.fs] -= ids
		vals[st.sSS] -= ds
		vals[st.sSD] -= dd
		vals[st.sSG] -= dg
	}
}

// factorAndSolve factorises the assembled Jacobian and solves for the
// Newton update dx. On a sparse pivot failure under SolverAuto it rebinds
// the stamp program to the dense backend, re-assembles and retries.
func (s *solver) factorAndSolve(x []float64, h float64) error {
	if s.kind == SolverSparse {
		if err := s.sp.Factor(s.vals); err == nil {
			s.sp.Solve(s.f[:s.nf], s.dx)
			return nil
		} else if s.req == SolverSparse {
			return err
		}
		s.fallbackToDense()
		s.assemble(x, h)
	}
	if err := s.lu.Factor(s.jacDense); err != nil {
		return err
	}
	s.lu.Solve(s.f[:s.nf], s.dx)
	return nil
}

// newton iterates to convergence; x is used as the initial guess and
// overwritten with the solution. Driven-waveform voltages at tPrev/tNew are
// evaluated exactly once per call, into the per-node caches.
func (s *solver) newton(x, xPrev []float64, tPrev, tNew, h float64, opts *SimOptions) error {
	s.vNow[0] = 0
	s.vPrevN[0] = 0
	for i, nid := range s.drivenN {
		s.vNow[nid] = s.drivenW[i].V(tNew)
		s.vPrevN[nid] = s.drivenW[i].V(tPrev)
	}
	for fi, nid := range s.freeNodes {
		s.vPrevN[nid] = xPrev[fi]
	}
	for iter := 0; iter < opts.MaxNewton; iter++ {
		s.nIters++
		for fi, nid := range s.freeNodes {
			s.vNow[nid] = x[fi]
		}
		s.assemble(x, h)
		if err := s.factorAndSolve(x, h); err != nil {
			return fmt.Errorf("newton iteration %d: %w", iter, err)
		}
		var maxStep float64
		clamped := false
		for i := range x {
			d := s.dx[i]
			if d > opts.DVMax {
				d = opts.DVMax
				clamped = true
			} else if d < -opts.DVMax {
				d = -opts.DVMax
				clamped = true
			}
			x[i] -= d
			if a := math.Abs(d); a > maxStep {
				maxStep = a
			}
		}
		if maxStep < opts.VTol {
			return nil
		}
		// A circuit with no nonlinear devices is solved exactly by one
		// undamped Newton step: skip the confirmation iteration, which
		// would only compute a ~machine-epsilon correction.
		if len(s.mos) == 0 && !clamped {
			return nil
		}
	}
	s.nNoConv++
	return ErrNoConvergence
}

// advance integrates one step of size h from time t, recursively halving on
// Newton failure. The previous-solution snapshot lives in a depth-indexed
// scratch stack, so subdivision allocates nothing after the first visit to
// a given depth.
func (s *solver) advance(t, h float64, opts *SimOptions, depth int) error {
	for len(s.xStack) <= depth {
		s.xStack = append(s.xStack, make([]float64, s.nf))
	}
	xPrev := s.xStack[depth]
	copy(xPrev, s.x)
	copy(s.xNew, s.x)
	// Predictor: extrapolate the initial guess from the previous accepted
	// step. Newton converges to the same tolerance either way; a good guess
	// just saves an iteration of assemble/factor/solve per step.
	if s.predH > 0 && len(s.mos) > 0 {
		r := h / s.predH
		for i, xi := range s.x {
			s.xNew[i] = xi + r*(xi-s.xOld[i])
		}
	}
	err := s.newton(s.xNew, xPrev, t, t+h, h, opts)
	if err == nil {
		copy(s.xOld, xPrev)
		s.predH = h
		copy(s.x, s.xNew)
		return nil
	}
	if depth >= opts.MaxHalvings {
		return err
	}
	s.nHalvings++
	// Subdivide: two half-steps.
	if err := s.advance(t, h/2, opts, depth+1); err != nil {
		return err
	}
	return s.advance(t+h/2, h/2, opts, depth+1)
}

// dcOperatingPoint solves the t=0 steady state with capacitors open.
func (s *solver) dcOperatingPoint(opts *SimOptions) error {
	s.predH = 0 // a new run starts with no predictor history
	// Initial guess: mid-rail everywhere biases Newton away from the flat
	// sub-threshold region of every device at once.
	guess := 0.3
	for i := range s.x {
		s.x[i] = guess
	}
	dcOpts := *opts
	dcOpts.MaxNewton = 200
	if err := s.newton(s.x, s.x, 0, 0, 0, &dcOpts); err == nil {
		return nil
	}
	// Fall back to pseudo-transient ramp-up: march a few large implicit
	// steps which always converge thanks to the capacitive loading.
	for i := range s.x {
		s.x[i] = 0
	}
	h := opts.DT * 100
	for k := 0; k < 60; k++ {
		if err := s.advance(0, h, opts, 0); err != nil {
			return err
		}
	}
	return nil
}
