package circuit

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/linalg"
)

// SimOptions controls a transient run.
type SimOptions struct {
	TStop float64 // simulation end time (s)
	DT    float64 // base timestep (s)

	// MaxNewton bounds Newton iterations per (sub)step. Default 40.
	MaxNewton int
	// VTol is the Newton convergence tolerance on |ΔV| (V). Default 1 µV.
	VTol float64
	// DVMax damps Newton by clamping per-iteration voltage updates (V).
	// Default 0.3 V.
	DVMax float64
	// MaxHalvings bounds local timestep subdivision on Newton failure.
	// Default 6.
	MaxHalvings int
}

func (o *SimOptions) setDefaults() {
	if o.MaxNewton == 0 {
		o.MaxNewton = 40
	}
	if o.VTol == 0 {
		o.VTol = 1e-6
	}
	if o.DVMax == 0 {
		o.DVMax = 0.3
	}
	if o.MaxHalvings == 0 {
		o.MaxHalvings = 6
	}
}

// Result holds sampled node waveforms of a transient run.
type Result struct {
	Times []float64
	// vByNode[node] is nil for ground; driven and free nodes are recorded.
	vByNode [][]float64
	names   []string
}

// Waveform returns the sampled voltage trace of node n (aliasing internal
// storage; callers must not mutate it).
func (r *Result) Waveform(n Node) []float64 {
	w := r.vByNode[n]
	if w == nil {
		// ground
		w = make([]float64, len(r.Times))
		r.vByNode[n] = w
	}
	return w
}

// ErrNoConvergence reports that Newton failed even at the minimum timestep.
var ErrNoConvergence = errors.New("circuit: transient solver did not converge")

// Transient runs a Backward-Euler transient simulation and returns sampled
// waveforms at every multiple of opts.DT.
func (c *Circuit) Transient(opts SimOptions) (*Result, error) {
	opts.setDefaults()
	if c.err != nil {
		return nil, c.err
	}
	if opts.TStop <= 0 || opts.DT <= 0 {
		return nil, errors.New("circuit: TStop and DT must be positive")
	}
	s, err := newSolver(c)
	if err != nil {
		return nil, err
	}
	nsteps := int(math.Ceil(opts.TStop/opts.DT)) + 1
	res := &Result{
		Times:   make([]float64, 0, nsteps),
		vByNode: make([][]float64, c.NumNodes()),
		names:   c.nodeNames,
	}
	for n := 1; n < c.NumNodes(); n++ {
		res.vByNode[n] = make([]float64, 0, nsteps)
	}

	if err := s.dcOperatingPoint(&opts); err != nil {
		return nil, fmt.Errorf("DC operating point: %w", err)
	}
	record := func(t float64) {
		res.Times = append(res.Times, t)
		for n := 1; n < c.NumNodes(); n++ {
			res.vByNode[n] = append(res.vByNode[n], s.voltageOf(Node(n), t))
		}
	}
	record(0)

	t := 0.0
	for t < opts.TStop-1e-21 {
		h := opts.DT
		if t+h > opts.TStop {
			h = opts.TStop - t
		}
		if err := s.advance(t, h, &opts, 0); err != nil {
			return nil, fmt.Errorf("t=%.4g: %w", t, err)
		}
		t += h
		record(t)
	}
	return res, nil
}

// solver holds the assembled system for one circuit.
type solver struct {
	ckt *Circuit

	free   []int // node -> free index, -1 for ground/driven
	driven []Waveform
	nf     int

	x     []float64 // free-node voltages at current accepted time
	xNew  []float64 // Newton iterate
	f     []float64 // residual
	dx    []float64
	jac   *linalg.Matrix
	lu    *linalg.LU
	gcmin []capacitor // per-node Cmin capacitors (free nodes only)
}

func newSolver(c *Circuit) (*solver, error) {
	n := c.NumNodes()
	s := &solver{
		ckt:    c,
		free:   make([]int, n),
		driven: make([]Waveform, n),
	}
	for i := range s.free {
		s.free[i] = -1
	}
	for _, src := range c.sources {
		s.driven[src.n] = src.w
	}
	for i := 1; i < n; i++ {
		if s.driven[i] == nil {
			s.free[i] = s.nf
			s.nf++
		}
	}
	if s.nf == 0 {
		return nil, errors.New("circuit: no free nodes to solve")
	}
	for i := 1; i < n; i++ {
		if s.free[i] >= 0 && c.Cmin > 0 {
			s.gcmin = append(s.gcmin, capacitor{a: Node(i), b: Ground, c: c.Cmin})
		}
	}
	s.x = make([]float64, s.nf)
	s.xNew = make([]float64, s.nf)
	s.f = make([]float64, s.nf)
	s.dx = make([]float64, s.nf)
	s.jac = linalg.NewMatrix(s.nf, s.nf)
	s.lu = linalg.NewLU(s.nf)
	return s, nil
}

// voltageOf returns the voltage of any node given the accepted free-node
// solution s.x and time t (for driven nodes).
func (s *solver) voltageOf(n Node, t float64) float64 {
	if n == Ground {
		return 0
	}
	if w := s.driven[n]; w != nil {
		return w.V(t)
	}
	return s.x[s.free[n]]
}

// vAt reads a node voltage from a candidate iterate.
func (s *solver) vAt(n Node, x []float64, t float64) float64 {
	if n == Ground {
		return 0
	}
	if w := s.driven[n]; w != nil {
		return w.V(t)
	}
	return x[s.free[n]]
}

// assemble builds the residual f and Jacobian jac at candidate x for the
// implicit step from (tPrev, xPrev) to tNew with step h. h <= 0 means a DC
// solve (capacitors open).
func (s *solver) assemble(x, xPrev []float64, tPrev, tNew, h float64) {
	s.jac.Zero()
	for i := range s.f {
		s.f[i] = 0
	}
	c := s.ckt

	stampG := func(a, b Node, g float64) {
		va := s.vAt(a, x, tNew)
		vb := s.vAt(b, x, tNew)
		i := va - vb // leaving a
		if fa := s.freeOf(a); fa >= 0 {
			s.f[fa] += g * i
			s.jac.Add(fa, fa, g)
			if fb := s.freeOf(b); fb >= 0 {
				s.jac.Add(fa, fb, -g)
			}
		}
		if fb := s.freeOf(b); fb >= 0 {
			s.f[fb] -= g * i
			s.jac.Add(fb, fb, g)
			if fa := s.freeOf(a); fa >= 0 {
				s.jac.Add(fb, fa, -g)
			}
		}
	}

	for _, r := range c.resistors {
		stampG(r.a, r.b, r.g)
	}
	// Gmin leakage on every free node.
	if c.Gmin > 0 {
		for n := 1; n < c.NumNodes(); n++ {
			if fi := s.free[n]; fi >= 0 {
				s.f[fi] += c.Gmin * x[fi]
				s.jac.Add(fi, fi, c.Gmin)
			}
		}
	}

	if h > 0 {
		geq := 1 / h
		stampC := func(cp capacitor) {
			va := s.vAt(cp.a, x, tNew)
			vb := s.vAt(cp.b, x, tNew)
			vaPrev := s.vPrev(cp.a, xPrev, tPrev)
			vbPrev := s.vPrev(cp.b, xPrev, tPrev)
			// Backward Euler companion: i = C/h·((va−vb)−(vaPrev−vbPrev))
			i := cp.c * geq * ((va - vb) - (vaPrev - vbPrev))
			g := cp.c * geq
			if fa := s.freeOf(cp.a); fa >= 0 {
				s.f[fa] += i
				s.jac.Add(fa, fa, g)
				if fb := s.freeOf(cp.b); fb >= 0 {
					s.jac.Add(fa, fb, -g)
				}
			}
			if fb := s.freeOf(cp.b); fb >= 0 {
				s.f[fb] -= i
				s.jac.Add(fb, fb, g)
				if fa := s.freeOf(cp.a); fa >= 0 {
					s.jac.Add(fb, fa, -g)
				}
			}
		}
		for _, cp := range c.capacitors {
			stampC(cp)
		}
		for _, cp := range s.gcmin {
			stampC(cp)
		}
	}

	for i := range c.mosfets {
		m := &c.mosfets[i]
		vg := s.vAt(m.G, x, tNew)
		vd := s.vAt(m.D, x, tNew)
		vs := s.vAt(m.S, x, tNew)
		ids, dg, dd, ds := m.P.Ids(vg, vd, vs)
		fd := s.freeOf(m.D)
		fs := s.freeOf(m.S)
		fg := s.freeOf(m.G)
		if fd >= 0 {
			s.f[fd] += ids
			s.jac.Add(fd, fd, dd)
			if fs >= 0 {
				s.jac.Add(fd, fs, ds)
			}
			if fg >= 0 {
				s.jac.Add(fd, fg, dg)
			}
		}
		if fs >= 0 {
			s.f[fs] -= ids
			s.jac.Add(fs, fs, -ds)
			if fd >= 0 {
				s.jac.Add(fs, fd, -dd)
			}
			if fg >= 0 {
				s.jac.Add(fs, fg, -dg)
			}
		}
	}
}

func (s *solver) freeOf(n Node) int {
	if n == Ground {
		return -1
	}
	return s.free[n]
}

// vPrev reads the voltage of a node at the previous accepted time.
func (s *solver) vPrev(n Node, xPrev []float64, tPrev float64) float64 {
	if n == Ground {
		return 0
	}
	if w := s.driven[n]; w != nil {
		return w.V(tPrev)
	}
	return xPrev[s.free[n]]
}

// newton iterates to convergence; x is used as the initial guess and
// overwritten with the solution.
func (s *solver) newton(x, xPrev []float64, tPrev, tNew, h float64, opts *SimOptions) error {
	for iter := 0; iter < opts.MaxNewton; iter++ {
		s.assemble(x, xPrev, tPrev, tNew, h)
		if err := s.lu.Factor(s.jac); err != nil {
			return fmt.Errorf("newton iteration %d: %w", iter, err)
		}
		s.lu.Solve(s.f, s.dx)
		var maxStep float64
		for i := range x {
			d := s.dx[i]
			if d > opts.DVMax {
				d = opts.DVMax
			} else if d < -opts.DVMax {
				d = -opts.DVMax
			}
			x[i] -= d
			if a := math.Abs(d); a > maxStep {
				maxStep = a
			}
		}
		if maxStep < opts.VTol {
			return nil
		}
	}
	return ErrNoConvergence
}

// advance integrates one step of size h from time t, recursively halving on
// Newton failure.
func (s *solver) advance(t, h float64, opts *SimOptions, depth int) error {
	xPrev := append([]float64(nil), s.x...)
	copy(s.xNew, s.x)
	err := s.newton(s.xNew, xPrev, t, t+h, h, opts)
	if err == nil {
		copy(s.x, s.xNew)
		return nil
	}
	if depth >= opts.MaxHalvings {
		return err
	}
	// Subdivide: two half-steps.
	if err := s.advance(t, h/2, opts, depth+1); err != nil {
		return err
	}
	return s.advance(t+h/2, h/2, opts, depth+1)
}

// dcOperatingPoint solves the t=0 steady state with capacitors open.
func (s *solver) dcOperatingPoint(opts *SimOptions) error {
	// Initial guess: mid-rail everywhere biases Newton away from the flat
	// sub-threshold region of every device at once.
	guess := 0.3
	for i := range s.x {
		s.x[i] = guess
	}
	dcOpts := *opts
	dcOpts.MaxNewton = 200
	if err := s.newton(s.x, s.x, 0, 0, 0, &dcOpts); err == nil {
		return nil
	}
	// Fall back to pseudo-transient ramp-up: march a few large implicit
	// steps which always converge thanks to the capacitive loading.
	for i := range s.x {
		s.x[i] = 0
	}
	h := opts.DT * 100
	for k := 0; k < 60; k++ {
		if err := s.advance(0, h, opts, 0); err != nil {
			return err
		}
	}
	return nil
}
