package circuit

import (
	"errors"

	"repro/internal/device"
	"repro/internal/linalg"
)

// This file compiles a netlist into a stamp program: flat slices of
// resistor/capacitor/MOSFET stamps whose free-row indices and Jacobian slot
// positions are resolved once at newSolver time, so assemble becomes
// straight-line array writes with no per-stamp free/driven branching and no
// map or interface lookups. The same program drives either backend — the
// dense pivoting LU or the symbolically-factorised sparse LU — because a
// "slot" is just an index into a flat values array (row-major for dense,
// CSR position for sparse). Rows and columns that are not free unknowns are
// redirected to a trash slot past the live data, keeping the inner loop
// branch-free.

// SolverKind selects the linear-solver backend of a transient run.
type SolverKind uint8

const (
	// SolverAuto picks sparse when the symbolic factorisation stays sparse
	// enough, dense otherwise (and as the runtime fallback on a pivot
	// failure). The default.
	SolverAuto SolverKind = iota
	// SolverDense forces the dense pivoting LU (the pre-compilation path).
	SolverDense
	// SolverSparse forces the sparse no-pivot LU; a singular pivot then
	// surfaces as an error instead of falling back.
	SolverSparse
)

func (k SolverKind) String() string {
	switch k {
	case SolverDense:
		return "dense"
	case SolverSparse:
		return "sparse"
	default:
		return "auto"
	}
}

// maxSparseFill is the factor-density threshold above which SolverAuto
// compiles the dense backend instead: beyond it the compiled elimination
// schedule stops being cheaper than the cache-friendly dense kernel.
const maxSparseFill = 0.5

// minSparseUnknowns is the system size below which SolverAuto stays dense;
// a 2×2 dense solve is already optimal.
const minSparseUnknowns = 3

// gStamp is one compiled conductance stamp (resistor).
type gStamp struct {
	a, b               int32 // node indices (voltage reads)
	fa, fb             int32 // residual rows; nf = trash row
	sAA, sAB, sBA, sBB int32 // Jacobian slots; trash slot when absent
	g                  float64
}

// cStamp is one compiled capacitor stamp (Backward-Euler companion).
type cStamp struct {
	a, b               int32
	fa, fb             int32
	sAA, sAB, sBA, sBB int32
	c                  float64
}

// mStamp is one compiled MOSFET stamp.
type mStamp struct {
	nd, ng, ns                   int32 // drain/gate/source node indices
	fd, fs                       int32 // residual rows (gate draws no DC current)
	sDD, sDS, sDG, sSS, sSD, sSG int32
	p                            device.IdsFast
}

// solver holds a circuit compiled for repeated transient solves. The
// symbolic state (free mapping, stamp slots, sparsity pattern, elimination
// schedule) depends only on the netlist topology and is reusable across
// Monte-Carlo samples via rebind; the numeric state (element values, node
// voltages, factor workspaces) is refreshed per run.
type solver struct {
	n, nf int
	kind  SolverKind // resolved backend, may fall back sparse→dense
	req   SolverKind // requested backend (cache identity)
	// fellBack records a runtime sparse→dense pivot fallback. Such a solver
	// is never reused from a cache: a fresh compile would start sparse
	// again, and pooled runs must stay bit-identical to clean ones.
	fellBack bool

	free      []int32    // node -> free index, -1 for ground/driven
	freeNodes []int32    // free index -> node
	drivenN   []int32    // driven node ids (source order)
	drivenW   []Waveform // parallel waveforms
	byNode    []Waveform // node -> waveform (nil if free/ground)
	gmin      float64

	res       []gStamp
	caps      []cStamp
	mos       []mStamp
	diagSlots []int32 // per free node, slot of (fi, fi) for the Gmin stamp

	// Compile-time stamp reductions, with maps back to the source netlist so
	// rebind can verify topology and re-sum values without re-compiling:
	// stamps whose rows are all trash (elements between driven/ground nodes)
	// are dropped, and parallel capacitors sharing a node pair are merged
	// into one stamp.
	resPairs []int32 // (a,b) per source resistor
	resKeep  []int32 // source resistor -> res index, -1 if dropped
	capPairs []int32 // (a,b) per source capacitor, Cmin tail included
	capOf    []int32 // source capacitor -> merged caps index, -1 if dropped
	nGcmin   int     // number of per-free-node Cmin entries in the tail
	mosNodes []int32 // (d,g,s) per source MOSFET
	mosKeep  []int32 // source MOSFET -> mos index, -1 if dropped

	// vNow/vPrevN cache every node's voltage for the current Newton iterate
	// and the previous accepted step: driven-waveform evaluations happen
	// once per Newton step here, not once per stamp per iteration.
	vNow, vPrevN []float64

	x, xNew, dx []float64
	f           []float64 // len nf+1; the extra entry is the trash row
	vals        []float64 // Jacobian values + one trash slot at the end
	trash       int32

	pat      *linalg.CSRPattern
	sp       *linalg.SparseLU
	jacDense *linalg.Matrix // aliases vals[:nf*nf] on the dense path
	lu       *linalg.LU

	xStack [][]float64 // depth-indexed xPrev scratch for advance

	// Predictor state: the previously accepted solution and its step size,
	// used to extrapolate the Newton initial guess of the next step.
	xOld  []float64
	predH float64

	// Per-run instrumentation tallies, reset by TransientCached and flushed
	// to the obs counters once per transient (plain fields: a solver is
	// single-goroutine by contract).
	nIters, nNoConv, nHalvings uint64
}

// newSolver compiles the circuit into a stamp program and symbolic
// factorisation for the requested backend.
func newSolver(c *Circuit, req SolverKind) (*solver, error) {
	mSolverCompiles.Inc()
	n := c.NumNodes()
	s := &solver{n: n, req: req, gmin: c.Gmin}
	s.free = make([]int32, n)
	s.byNode = make([]Waveform, n)
	for i := range s.free {
		s.free[i] = -1
	}
	for _, src := range c.sources {
		s.byNode[src.n] = src.w
		s.drivenN = append(s.drivenN, int32(src.n))
		s.drivenW = append(s.drivenW, src.w)
	}
	for i := 1; i < n; i++ {
		if s.byNode[i] == nil {
			s.free[i] = int32(s.nf)
			s.freeNodes = append(s.freeNodes, int32(i))
			s.nf++
		}
	}
	if s.nf == 0 {
		return nil, errors.New("circuit: no free nodes to solve")
	}
	nf := int32(s.nf)

	row := func(nd Node) int32 {
		if nd == Ground || s.free[nd] < 0 {
			return nf // trash row
		}
		return s.free[nd]
	}
	for _, r := range c.resistors {
		s.resPairs = append(s.resPairs, int32(r.a), int32(r.b))
		fa, fb := row(r.a), row(r.b)
		if fa == nf && fb == nf {
			// Both terminals driven or ground: the stamp would only write
			// trash slots. Dropped at compile time.
			s.resKeep = append(s.resKeep, -1)
			continue
		}
		s.resKeep = append(s.resKeep, int32(len(s.res)))
		s.res = append(s.res, gStamp{a: int32(r.a), b: int32(r.b), fa: fa, fb: fb, g: r.g})
	}
	capSlot := make(map[[2]int32]int32)
	addCap := func(a, b int32, cv float64) {
		s.capPairs = append(s.capPairs, a, b)
		fa, fb := row(Node(a)), row(Node(b))
		if fa == nf && fb == nf {
			s.capOf = append(s.capOf, -1)
			return
		}
		// Parallel capacitors on one node pair collapse into a single
		// stamp: AddMOS parasitics, explicit loads and the Cmin floor
		// routinely stack three or four capacitors on the same pair.
		key := [2]int32{a, b}
		if idx, ok := capSlot[key]; ok {
			s.caps[idx].c += cv
			s.capOf = append(s.capOf, idx)
			return
		}
		idx := int32(len(s.caps))
		capSlot[key] = idx
		s.capOf = append(s.capOf, idx)
		s.caps = append(s.caps, cStamp{a: a, b: b, fa: fa, fb: fb, c: cv})
	}
	for _, cp := range c.capacitors {
		addCap(int32(cp.a), int32(cp.b), cp.c)
	}
	if c.Cmin > 0 {
		s.nGcmin = len(s.freeNodes)
		for _, nid := range s.freeNodes {
			addCap(nid, 0, c.Cmin)
		}
	}
	for _, m := range c.mosfets {
		s.mosNodes = append(s.mosNodes, int32(m.D), int32(m.G), int32(m.S))
		fd, fs := row(m.D), row(m.S)
		if fd == nf && fs == nf {
			// Rail-to-rail device (e.g. a bias transistor between driven
			// nodes): no residual row to stamp.
			s.mosKeep = append(s.mosKeep, -1)
			continue
		}
		s.mosKeep = append(s.mosKeep, int32(len(s.mos)))
		s.mos = append(s.mos, mStamp{
			nd: int32(m.D), ng: int32(m.G), ns: int32(m.S), fd: fd, fs: fs, p: m.P.Fast(),
		})
	}

	// Sparsity pattern of the Jacobian over free unknowns.
	pb := linalg.NewPatternBuilder(s.nf)
	couple := func(i, j int32) {
		if i < nf && j < nf {
			pb.Add(int(i), int(j))
			pb.Add(int(j), int(i))
		}
	}
	for i := range s.res {
		couple(s.res[i].fa, s.res[i].fb)
	}
	for i := range s.caps {
		couple(s.caps[i].fa, s.caps[i].fb)
	}
	for i := range s.mos {
		m := &s.mos[i]
		fg := row(Node(m.ng))
		couple(m.fd, m.fs)
		couple(m.fd, fg)
		couple(m.fs, fg)
	}
	s.pat = pb.Build()

	s.kind = req
	if s.kind == SolverAuto {
		s.kind = SolverSparse
	}
	if s.kind == SolverSparse {
		s.sp = linalg.NewSparseLU(s.pat)
		if req == SolverAuto && (s.nf < minSparseUnknowns || s.sp.FillRatio() > maxSparseFill) {
			s.kind, s.sp = SolverDense, nil
		}
	}
	if s.kind == SolverDense {
		s.allocDense()
	} else {
		s.vals = make([]float64, s.pat.NNZ()+1)
		s.trash = int32(s.pat.NNZ())
	}
	s.bindSlots()

	s.vNow = make([]float64, n)
	s.vPrevN = make([]float64, n)
	s.x = make([]float64, s.nf)
	s.xNew = make([]float64, s.nf)
	s.dx = make([]float64, s.nf)
	s.xOld = make([]float64, s.nf)
	s.f = make([]float64, s.nf+1)
	return s, nil
}

func (s *solver) allocDense() {
	s.vals = make([]float64, s.nf*s.nf+1)
	s.trash = int32(s.nf * s.nf)
	s.jacDense = &linalg.Matrix{Rows: s.nf, Cols: s.nf, Data: s.vals[:s.nf*s.nf]}
	s.lu = linalg.NewLU(s.nf)
}

// slot resolves the Jacobian slot of (row r, col c), redirecting anything
// outside the free block to the trash slot.
func (s *solver) slot(r, c int32) int32 {
	if r < 0 || c < 0 || int(r) >= s.nf || int(c) >= s.nf {
		return s.trash
	}
	if s.kind == SolverDense {
		return r*int32(s.nf) + c
	}
	return int32(s.pat.Pos(int(r), int(c)))
}

// bindSlots resolves every stamp's Jacobian slots for the current backend.
// Called at compile time and again on a sparse→dense fallback.
func (s *solver) bindSlots() {
	for i := range s.res {
		st := &s.res[i]
		st.sAA = s.slot(st.fa, st.fa)
		st.sAB = s.slot(st.fa, st.fb)
		st.sBA = s.slot(st.fb, st.fa)
		st.sBB = s.slot(st.fb, st.fb)
	}
	for i := range s.caps {
		st := &s.caps[i]
		st.sAA = s.slot(st.fa, st.fa)
		st.sAB = s.slot(st.fa, st.fb)
		st.sBA = s.slot(st.fb, st.fa)
		st.sBB = s.slot(st.fb, st.fb)
	}
	for i := range s.mos {
		st := &s.mos[i]
		fg := int32(-1)
		if g := Node(st.ng); g != Ground && s.free[g] >= 0 {
			fg = s.free[g]
		}
		st.sDD = s.slot(st.fd, st.fd)
		st.sDS = s.slot(st.fd, st.fs)
		st.sDG = s.slot(st.fd, fg)
		st.sSS = s.slot(st.fs, st.fs)
		st.sSD = s.slot(st.fs, st.fd)
		st.sSG = s.slot(st.fs, fg)
	}
	s.diagSlots = s.diagSlots[:0]
	for fi := int32(0); int(fi) < s.nf; fi++ {
		s.diagSlots = append(s.diagSlots, s.slot(fi, fi))
	}
}

// fallbackToDense switches a sparse-compiled solver to the dense backend
// after a numeric pivot failure, rebinding every stamp slot.
func (s *solver) fallbackToDense() {
	mSparseFallbacks.Inc()
	s.kind = SolverDense
	s.fellBack = true
	s.sp = nil
	s.allocDense()
	s.bindSlots()
}

// rebind re-targets a compiled solver at a circuit with identical topology
// but (possibly) different element values, source waveforms and Cmin/Gmin:
// the per-sample path of Monte-Carlo pooling. It verifies the topology
// element by element and reports false on any mismatch, in which case the
// caller compiles from scratch. Allocation-free on success.
func (s *solver) rebind(c *Circuit) bool {
	if c.NumNodes() != s.n ||
		2*len(c.resistors) != len(s.resPairs) ||
		2*len(c.capacitors) != len(s.capPairs)-2*s.nGcmin ||
		3*len(c.mosfets) != len(s.mosNodes) ||
		len(c.sources) != len(s.drivenN) {
		return false
	}
	if (c.Cmin > 0) != (s.nGcmin > 0) {
		return false
	}
	for i := range c.sources {
		if int32(c.sources[i].n) != s.drivenN[i] {
			return false
		}
	}
	for i := range c.resistors {
		r := &c.resistors[i]
		if int32(r.a) != s.resPairs[2*i] || int32(r.b) != s.resPairs[2*i+1] {
			return false
		}
	}
	for i := range c.capacitors {
		cp := &c.capacitors[i]
		if int32(cp.a) != s.capPairs[2*i] || int32(cp.b) != s.capPairs[2*i+1] {
			return false
		}
	}
	// The Cmin tail of capPairs derives from the free-node set, which the
	// source check above already pins down.
	for i := range c.mosfets {
		m := &c.mosfets[i]
		if int32(m.D) != s.mosNodes[3*i] || int32(m.G) != s.mosNodes[3*i+1] ||
			int32(m.S) != s.mosNodes[3*i+2] {
			return false
		}
	}
	// Topology verified: refresh the numeric state through the compile-time
	// merge/drop maps.
	for i := range c.resistors {
		if idx := s.resKeep[i]; idx >= 0 {
			s.res[idx].g = c.resistors[i].g
		}
	}
	for i := range s.caps {
		s.caps[i].c = 0
	}
	for i := range c.capacitors {
		if idx := s.capOf[i]; idx >= 0 {
			s.caps[idx].c += c.capacitors[i].c
		}
	}
	for i := len(c.capacitors); i < len(c.capacitors)+s.nGcmin; i++ {
		if idx := s.capOf[i]; idx >= 0 {
			s.caps[idx].c += c.Cmin
		}
	}
	for i := range c.mosfets {
		if idx := s.mosKeep[i]; idx >= 0 {
			s.mos[idx].p = c.mosfets[i].P.Fast()
		}
	}
	for i, src := range c.sources {
		s.drivenW[i] = src.w
		s.byNode[src.n] = src.w
	}
	s.gmin = c.Gmin
	for i := range s.x {
		s.x[i] = 0
	}
	s.predH = 0
	return true
}

// topoSignature hashes the circuit topology (node structure only, no
// element values) plus the requested backend, for solver-cache lookup.
// Cache hits are still verified structurally by rebind, so a collision can
// cost a recompile but never correctness.
func (c *Circuit) topoSignature(kind SolverKind) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(c.NumNodes()))
	mix(uint64(len(c.resistors)))
	mix(uint64(len(c.capacitors)))
	mix(uint64(len(c.mosfets)))
	mix(uint64(len(c.sources)))
	flags := uint64(kind)
	if c.Cmin > 0 {
		flags |= 1 << 8
	}
	mix(flags)
	for _, r := range c.resistors {
		mix(uint64(r.a)<<32 | uint64(r.b))
	}
	for _, cp := range c.capacitors {
		mix(uint64(cp.a)<<32 | uint64(cp.b))
	}
	for _, m := range c.mosfets {
		mix(uint64(m.D)<<42 | uint64(m.G)<<21 | uint64(m.S))
	}
	for _, src := range c.sources {
		mix(uint64(src.n))
	}
	return h
}

// SolverCache reuses compiled solvers — stamp programs, sparsity patterns,
// symbolic factorisations and all numeric workspaces — across circuits
// with identical topology, the dominant case in Monte-Carlo loops where
// every sample rebuilds the same netlist with perturbed parameters. A
// cache is NOT safe for concurrent use: give each worker goroutine its own
// (e.g. via sync.Pool) and results stay bit-identical to uncached runs.
type SolverCache struct {
	m map[uint64]*solver
}

// NewSolverCache returns an empty cache.
func NewSolverCache() *SolverCache {
	return &SolverCache{m: make(map[uint64]*solver)}
}

// Len reports the number of distinct compiled topologies held.
func (cc *SolverCache) Len() int { return len(cc.m) }

func (cc *SolverCache) get(c *Circuit, kind SolverKind) (*solver, error) {
	key := c.topoSignature(kind)
	if s := cc.m[key]; s != nil && s.req == kind && !s.fellBack && s.rebind(c) {
		mSolverRebinds.Inc()
		return s, nil
	}
	s, err := newSolver(c, kind)
	if err != nil {
		return nil, err
	}
	cc.m[key] = s
	return s, nil
}
