package circuit

import "repro/internal/obs"

// Kernel counters on the process-wide registry. The hot loops (assemble /
// newton) count into plain solver fields; TransientCached flushes them with
// a handful of atomic adds per transient, so the instrumentation cost is
// independent of step count and invisible next to a solve.
var (
	mTransients = obs.Default().Counter("circuit_transients_total",
		"Transient simulations run.")
	mNewtonIters = obs.Default().Counter("circuit_newton_iterations_total",
		"Newton iterations across all transient steps and DC solves.")
	mNewtonNoConv = obs.Default().Counter("circuit_newton_nonconverged_total",
		"Newton solves that hit MaxNewton without converging.")
	mStepHalvings = obs.Default().Counter("circuit_step_halvings_total",
		"Timestep subdivisions taken after a Newton failure.")
	mSolverCompiles = obs.Default().Counter("circuit_solver_compiles_total",
		"Stamp-program compilations (cache misses and uncached runs).")
	mSolverRebinds = obs.Default().Counter("circuit_solver_rebinds_total",
		"Solver-cache hits rebound to a fresh circuit instance.")
	mSparseFallbacks = obs.Default().Counter("circuit_sparse_fallbacks_total",
		"Runtime sparse-to-dense pivot fallbacks.")
)
