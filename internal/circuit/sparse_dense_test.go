package circuit

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/device"
)

// randomCircuit builds a randomized but well-posed netlist: an inverter
// chain with randomized device sizes, random RC interconnect hung between
// stage outputs, and random cross-coupling capacitors. Every trial has a
// different topology and different element values.
func randomCircuit(rng *rand.Rand) *Circuit {
	tech := device.Default28nm()
	ck := New()
	vdd := ck.NodeByName("vdd")
	ck.AddSource(vdd, DC(tech.Vdd))
	in := ck.NodeByName("in")
	ck.AddSource(in, Ramp{T0: 5e-12, TRamp: 10e-12 + 20e-12*rng.Float64(), V0: 0, V1: tech.Vdd})

	stages := 1 + rng.Intn(5)
	var nodes []Node
	prev := in
	for i := 0; i < stages; i++ {
		out := ck.NodeByName(fmt.Sprintf("s%d", i))
		wn := (1 + 2*rng.Float64()) * tech.Wmin
		ck.AddMOS(out, prev, Ground, tech.NominalParams(device.NMOS, wn))
		ck.AddMOS(out, prev, vdd, tech.NominalParams(device.PMOS, 1.5*wn))
		ck.AddCapacitor(out, Ground, (0.2+rng.Float64())*1e-15)
		nodes = append(nodes, out)
		// Random RC ladder between this stage and the next input.
		hops := rng.Intn(4)
		for h := 0; h < hops; h++ {
			n := ck.NodeByName(fmt.Sprintf("w%d_%d", i, h))
			ck.AddResistor(out, n, 100+900*rng.Float64())
			ck.AddCapacitor(n, Ground, (0.05+0.3*rng.Float64())*1e-15)
			nodes = append(nodes, n)
			out = n
		}
		prev = out
	}
	// Random cross-coupling capacitors between internal nodes.
	for k := 0; k < rng.Intn(4); k++ {
		a := nodes[rng.Intn(len(nodes))]
		b := nodes[rng.Intn(len(nodes))]
		if a != b {
			ck.AddCapacitor(a, b, (0.02+0.1*rng.Float64())*1e-15)
		}
	}
	return ck
}

// TestDenseSparseEquivalence is the backend cross-check demanded by the
// sparse rewrite: on randomized circuits the dense pivoting LU and the
// symbolically-factorised no-pivot sparse LU must produce the same
// waveforms to within accumulated rounding (≤ 1e-12 V), over every node
// and timestep.
func TestDenseSparseEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 12; trial++ {
		ck := randomCircuit(rng)
		opts := SimOptions{TStop: 3e-10, DT: 1e-12}
		optsD := opts
		optsD.Solver = SolverDense
		optsS := opts
		optsS.Solver = SolverSparse
		rd, err := ck.Transient(optsD)
		if err != nil {
			t.Fatalf("trial %d dense: %v", trial, err)
		}
		rs, err := ck.Transient(optsS)
		if err != nil {
			t.Fatalf("trial %d sparse: %v", trial, err)
		}
		if rd.Solver != SolverDense || rs.Solver != SolverSparse {
			t.Fatalf("trial %d: backends %v/%v, want dense/sparse", trial, rd.Solver, rs.Solver)
		}
		if len(rd.Times) != len(rs.Times) {
			t.Fatalf("trial %d: step counts differ: %d vs %d", trial, len(rd.Times), len(rs.Times))
		}
		for n := 1; n < ck.NumNodes(); n++ {
			wd, ws := rd.Waveform(Node(n)), rs.Waveform(Node(n))
			for k := range wd {
				d := wd[k] - ws[k]
				if d < 0 {
					d = -d
				}
				if d > 1e-12 {
					t.Fatalf("trial %d node %s t[%d]: dense %v sparse %v (Δ=%.3g)",
						trial, ck.NameOf(Node(n)), k, wd[k], ws[k], d)
				}
			}
		}
	}
}

// TestCachedRunsBitIdentical locks the pooling contract: a transient run
// through a warm SolverCache (compiled for the same topology by a circuit
// with different element values) must be bit-identical to a cold run.
func TestCachedRunsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 8; trial++ {
		seed := rng.Int63()
		// Two independent builds of the same topology: the warm-up run
		// compiles the solver, the target run must reuse it via rebind and
		// still match an uncached run exactly.
		build := func() *Circuit { return randomCircuit(rand.New(rand.NewSource(seed))) }
		warm := build()
		target := build()
		opts := SimOptions{TStop: 2e-10, DT: 1e-12}

		cold, err := target.Transient(opts)
		if err != nil {
			t.Fatalf("trial %d cold: %v", trial, err)
		}
		cache := NewSolverCache()
		if _, err := warm.TransientCached(cache, opts); err != nil {
			t.Fatalf("trial %d warm-up: %v", trial, err)
		}
		hot, err := target.TransientCached(cache, opts)
		if err != nil {
			t.Fatalf("trial %d hot: %v", trial, err)
		}
		if cache.Len() != 1 {
			t.Fatalf("trial %d: cache holds %d solvers, want 1 (topology reuse)", trial, cache.Len())
		}
		for n := 1; n < target.NumNodes(); n++ {
			wc, wh := cold.Waveform(Node(n)), hot.Waveform(Node(n))
			for k := range wc {
				if wc[k] != wh[k] {
					t.Fatalf("trial %d node %s t[%d]: cold %v hot %v — pooled run not bit-identical",
						trial, target.NameOf(Node(n)), k, wc[k], wh[k])
				}
			}
		}
	}
}

// TestCacheRejectsFellBackSolver: a solver that fell back to dense mid-run
// must not be served from the cache again; the next get compiles fresh.
func TestCacheRejectsFellBackSolver(t *testing.T) {
	ck := benchInverterChain(8)
	cache := NewSolverCache()
	s1, err := cache.get(ck, SolverAuto)
	if err != nil {
		t.Fatal(err)
	}
	if s1.kind != SolverSparse {
		t.Fatalf("expected a sparse solver for a %d-unknown circuit, got %v", s1.nf, s1.kind)
	}
	s1.fallbackToDense()
	if s1.kind != SolverDense || !s1.fellBack {
		t.Fatalf("fallbackToDense left kind=%v fellBack=%v", s1.kind, s1.fellBack)
	}
	s2, err := cache.get(ck, SolverAuto)
	if err != nil {
		t.Fatal(err)
	}
	if s2 == s1 {
		t.Fatal("cache returned a fellBack solver")
	}
	if s2.fellBack || s2.kind != SolverSparse {
		t.Fatalf("replacement solver kind=%v fellBack=%v, want fresh sparse", s2.kind, s2.fellBack)
	}
}

// TestFallbackSolverStillCorrect: after a forced sparse→dense fallback the
// solver must keep producing the same waveforms.
func TestFallbackSolverStillCorrect(t *testing.T) {
	ck := benchInverterChain(8)
	opts := SimOptions{TStop: 2e-10, DT: 1e-12}
	ref, err := ck.Transient(SimOptions{TStop: 2e-10, DT: 1e-12, Solver: SolverDense})
	if err != nil {
		t.Fatal(err)
	}
	s, err := newSolver(ck, SolverAuto)
	if err != nil {
		t.Fatal(err)
	}
	s.fallbackToDense()
	opts.setDefaults()
	if err := s.dcOperatingPoint(&opts); err != nil {
		t.Fatal(err)
	}
	tt := 0.0
	for k := 0; k < 200; k++ {
		if err := s.advance(tt, opts.DT, &opts, 0); err != nil {
			t.Fatal(err)
		}
		tt += opts.DT
		for n := 1; n < ck.NumNodes(); n++ {
			got := s.voltageOf(Node(n), tt)
			want := ref.Waveform(Node(n))[k+1]
			d := got - want
			if d < 0 {
				d = -d
			}
			if d > 1e-12 {
				t.Fatalf("t[%d] node %s: fallback %v dense %v", k, ck.NameOf(Node(n)), got, want)
			}
		}
	}
}

// TestRequestedSolverHonoured: explicitly requested backends are reported
// back on the Result.
func TestRequestedSolverHonoured(t *testing.T) {
	ck := benchInverterChain(2)
	for _, kind := range []SolverKind{SolverDense, SolverSparse} {
		res, err := ck.Transient(SimOptions{TStop: 1e-10, DT: 1e-12, Solver: kind})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if res.Solver != kind {
			t.Fatalf("requested %v, ran %v", kind, res.Solver)
		}
	}
	// Tiny systems auto-select dense; larger ones sparse.
	small := New()
	vdd := small.NodeByName("vdd")
	small.AddSource(vdd, DC(0.6))
	out := small.NodeByName("out")
	small.AddResistor(vdd, out, 1000)
	small.AddCapacitor(out, Ground, 1e-15)
	res, err := small.Transient(SimOptions{TStop: 1e-11, DT: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solver != SolverDense {
		t.Fatalf("1-unknown auto run used %v, want dense", res.Solver)
	}
	res, err = benchInverterChain(8).Transient(SimOptions{TStop: 1e-10, DT: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solver != SolverSparse {
		t.Fatalf("8-stage auto run used %v, want sparse", res.Solver)
	}
}

// TestAdvanceInnerLoopZeroAlloc asserts the acceptance criterion that the
// Newton inner loop allocates nothing: after the solver workspaces are
// warm, stepping the transient must not touch the heap.
func TestAdvanceInnerLoopZeroAlloc(t *testing.T) {
	for _, kind := range []SolverKind{SolverSparse, SolverDense} {
		ck := benchInverterChain(4)
		s, err := newSolver(ck, kind)
		if err != nil {
			t.Fatal(err)
		}
		opts := SimOptions{TStop: 1e-10, DT: 1e-12, Solver: kind}
		opts.setDefaults()
		if err := s.dcOperatingPoint(&opts); err != nil {
			t.Fatal(err)
		}
		tt := 0.0
		step := func() {
			if err := s.advance(tt, opts.DT, &opts, 0); err != nil {
				t.Fatal(err)
			}
			tt += opts.DT
		}
		for k := 0; k < 5; k++ {
			step() // warm the subdivision scratch stack
		}
		if allocs := testing.AllocsPerRun(100, step); allocs != 0 {
			t.Fatalf("%v advance allocates %.2f objects/step, want 0", kind, allocs)
		}
	}
}
