package circuit

import (
	"errors"
	"math"
	"testing"

	"repro/internal/device"
)

func TestRCDischargeMatchesAnalytic(t *testing.T) {
	// A 1kΩ/1fF RC from a charged cap through a resistor to ground:
	// v(t) = V0·exp(-t/RC).
	ck := New()
	ck.Gmin = 0 // keep the analytic comparison exact
	n := ck.NodeByName("n")
	src := ck.NodeByName("src")
	const (
		r  = 1e3
		c  = 1e-15
		v0 = 0.6
	)
	ck.AddResistor(n, src, r)
	ck.AddCapacitor(n, Ground, c)
	// Drive the far end: step from v0 to 0 at t=0+ so the cap discharges.
	ck.AddSource(src, Ramp{T0: 0, TRamp: 1e-15, V0: v0, V1: 0})

	tau := r * c
	res, err := ck.Transient(SimOptions{TStop: 5 * tau, DT: tau / 400})
	if err != nil {
		t.Fatal(err)
	}
	w := res.Waveform(n)
	for i, tm := range res.Times {
		if tm < 3*tau/100 {
			continue // skip the ramp transition region
		}
		want := v0 * math.Exp(-tm/tau)
		if math.Abs(w[i]-want) > 0.004*v0 {
			t.Fatalf("t=%.3g: v=%v want %v", tm, w[i], want)
		}
	}
}

func TestResistiveDividerDC(t *testing.T) {
	ck := New()
	top := ck.NodeByName("top")
	mid := ck.NodeByName("mid")
	ck.AddSource(top, DC(0.6))
	ck.AddResistor(top, mid, 1e3)
	ck.AddResistor(mid, Ground, 3e3)
	res, err := ck.Transient(SimOptions{TStop: 1e-12, DT: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Waveform(mid)[len(res.Times)-1]
	if math.Abs(got-0.45) > 1e-6 {
		t.Fatalf("divider voltage %v want 0.45", got)
	}
}

// buildInverter wires a nominal inverter driving loadC.
func buildInverter(loadC float64, in Waveform) (*Circuit, Node) {
	tech := device.Default28nm()
	ck := New()
	vdd := ck.NodeByName("vdd")
	inN := ck.NodeByName("in")
	out := ck.NodeByName("out")
	ck.AddSource(vdd, DC(tech.Vdd))
	ck.AddSource(inN, in)
	ck.AddMOS(out, inN, Ground, tech.NominalParams(device.NMOS, tech.Wmin))
	ck.AddMOS(out, inN, vdd, tech.NominalParams(device.PMOS, tech.Wmin*tech.PNRatio))
	ck.AddCapacitor(out, Ground, loadC)
	return ck, out
}

func TestInverterStaticLevels(t *testing.T) {
	tech := device.Default28nm()
	// Input low → output must settle at VDD; input high → near ground.
	for _, tc := range []struct {
		in   float64
		want float64
	}{
		{0, tech.Vdd},
		{tech.Vdd, 0},
	} {
		ck, out := buildInverter(0.4e-15, DC(tc.in))
		res, err := ck.Transient(SimOptions{TStop: 2e-10, DT: 5e-13})
		if err != nil {
			t.Fatal(err)
		}
		got := res.Waveform(out)[len(res.Times)-1]
		if math.Abs(got-tc.want) > 0.02*tech.Vdd {
			t.Fatalf("in=%v: out=%v want %v", tc.in, got, tc.want)
		}
	}
}

func TestInverterSwitches(t *testing.T) {
	tech := device.Default28nm()
	ck, out := buildInverter(0.4e-15, Ramp{T0: 5e-12, TRamp: 12.5e-12, V0: 0, V1: tech.Vdd})
	res, err := ck.Transient(SimOptions{TStop: 1.5e-10, DT: 2e-13})
	if err != nil {
		t.Fatal(err)
	}
	w := res.Waveform(out)
	if w[0] < 0.95*tech.Vdd {
		t.Fatalf("output did not start high: %v", w[0])
	}
	if last := w[len(w)-1]; last > 0.05*tech.Vdd {
		t.Fatalf("output did not fall: %v", last)
	}
}

func TestInverterDelayGrowsWithLoad(t *testing.T) {
	tech := device.Default28nm()
	cross := func(loadC float64) float64 {
		ck, out := buildInverter(loadC, Ramp{T0: 5e-12, TRamp: 12.5e-12, V0: 0, V1: tech.Vdd})
		res, err := ck.Transient(SimOptions{TStop: 1e-9, DT: 1e-12})
		if err != nil {
			t.Fatal(err)
		}
		w := res.Waveform(out)
		for i := range res.Times {
			if w[i] < tech.Vdd/2 {
				return res.Times[i]
			}
		}
		t.Fatal("output never crossed half rail")
		return 0
	}
	small := cross(0.2e-15)
	large := cross(4e-15)
	if large <= small*2 {
		t.Fatalf("20x load should slow the cell well over 2x: %v vs %v", small, large)
	}
}

func TestConstructionErrors(t *testing.T) {
	cases := map[string]func(ck *Circuit, n Node){
		"double drive":    func(ck *Circuit, n Node) { ck.AddSource(n, DC(2)) },
		"drive ground":    func(ck *Circuit, n Node) { ck.AddSource(Ground, DC(1)) },
		"zero resistance": func(ck *Circuit, n Node) { ck.AddResistor(n, Ground, 0) },
		"negative cap":    func(ck *Circuit, n Node) { ck.AddCapacitor(n, Ground, -1e-15) },
	}
	for what, breakIt := range cases {
		ck := New()
		n := ck.NodeByName("n")
		ck.AddSource(n, DC(1))
		ck.AddResistor(n, ck.NodeByName("m"), 1e3)
		if ck.Err() != nil {
			t.Fatalf("%s: well-formed prefix already errored: %v", what, ck.Err())
		}
		breakIt(ck, n)
		var cerr *ConstructionError
		if !errors.As(ck.Err(), &cerr) {
			t.Fatalf("%s: Err()=%v, want *ConstructionError", what, ck.Err())
		}
		if _, err := ck.Transient(SimOptions{TStop: 1e-12, DT: 1e-13}); !errors.As(err, &cerr) {
			t.Fatalf("%s: Transient err=%v, want *ConstructionError", what, err)
		}
	}
}

func TestAllDrivenRejected(t *testing.T) {
	ck := New()
	n := ck.NodeByName("n")
	ck.AddSource(n, DC(1))
	if _, err := ck.Transient(SimOptions{TStop: 1e-12, DT: 1e-13}); err == nil {
		t.Fatal("circuit with no free nodes must be rejected")
	}
}

func TestInvalidOptionsRejected(t *testing.T) {
	ck := New()
	n := ck.NodeByName("n")
	ck.AddResistor(n, Ground, 1e3)
	if _, err := ck.Transient(SimOptions{TStop: 0, DT: 1e-13}); err == nil {
		t.Fatal("TStop=0 accepted")
	}
	if _, err := ck.Transient(SimOptions{TStop: 1e-12, DT: 0}); err == nil {
		t.Fatal("DT=0 accepted")
	}
}

func TestNodeNames(t *testing.T) {
	ck := New()
	a := ck.NodeByName("a")
	if ck.NodeByName("a") != a {
		t.Fatal("NodeByName not idempotent")
	}
	if ck.NameOf(a) != "a" {
		t.Fatal("NameOf mismatch")
	}
	fresh := ck.NewNode("tmp")
	if fresh == a || ck.NameOf(fresh) == "" {
		t.Fatal("NewNode broken")
	}
	if ck.NumNodes() != 3 { // ground + a + tmp
		t.Fatalf("NumNodes=%d", ck.NumNodes())
	}
}

func TestRampWaveform(t *testing.T) {
	r := Ramp{T0: 1, TRamp: 2, V0: 0, V1: 1}
	cases := map[float64]float64{0: 0, 1: 0, 2: 0.5, 3: 1, 5: 1}
	for tm, want := range cases {
		if got := r.V(tm); math.Abs(got-want) > 1e-12 {
			t.Errorf("ramp V(%v)=%v want %v", tm, got, want)
		}
	}
	step := Ramp{T0: 1, TRamp: 0, V0: 0, V1: 1}
	if step.V(0.99) != 0 || step.V(1.01) != 1 {
		t.Error("zero-TRamp step broken")
	}
}

func TestChargeConservationTwoCaps(t *testing.T) {
	// Two caps joined by a resistor share charge: final voltage is the
	// charge-weighted average.
	ck := New()
	ck.Gmin = 0
	a := ck.NodeByName("a")
	b := ck.NodeByName("b")
	src := ck.NodeByName("src")
	ck.AddCapacitor(a, Ground, 1e-15)
	ck.AddCapacitor(b, Ground, 3e-15)
	ck.AddResistor(a, b, 1e4)
	// Pre-charge node a through a source that steps away… instead, drive b
	// from a source via a huge resistor is messy: drive a directly for
	// 1 ns, then the source stays: simpler variant — source drives a
	// through a resistor, b floats behind another resistor.
	ck.AddResistor(src, a, 1e3)
	ck.AddSource(src, DC(0.6))
	res, err := ck.Transient(SimOptions{TStop: 5e-10, DT: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	va := res.Waveform(a)[len(res.Times)-1]
	vb := res.Waveform(b)[len(res.Times)-1]
	if math.Abs(va-0.6) > 1e-3 || math.Abs(vb-0.6) > 1e-3 {
		t.Fatalf("caps did not equalise to the source: %v %v", va, vb)
	}
}

func TestPWLWaveform(t *testing.T) {
	p, err := NewPWL([]float64{0, 1e-12, 3e-12}, []float64{0, 0.6, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[float64]float64{
		-1e-12:  0,    // clamped left
		0:       0,    // first sample
		0.5e-12: 0.3,  // interpolated
		1e-12:   0.6,  // node
		2e-12:   0.45, // interpolated
		9e-12:   0.3,  // clamped right
	}
	for tm, want := range cases {
		if got := p.V(tm); math.Abs(got-want) > 1e-12 {
			t.Errorf("PWL V(%v) = %v want %v", tm, got, want)
		}
	}
	if p.End() != 3e-12 {
		t.Errorf("End %v", p.End())
	}
}

func TestPWLValidation(t *testing.T) {
	if _, err := NewPWL(nil, nil); err == nil {
		t.Error("empty PWL accepted")
	}
	if _, err := NewPWL([]float64{0, 1}, []float64{0}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewPWL([]float64{1, 0}, []float64{0, 1}); err == nil {
		t.Error("descending times accepted")
	}
}

func TestPWLDrivesCircuit(t *testing.T) {
	// A PWL source must behave exactly like the equivalent ramp.
	run := func(w Waveform) float64 {
		ck := New()
		n := ck.NodeByName("n")
		src := ck.NodeByName("src")
		ck.AddSource(src, w)
		ck.AddResistor(src, n, 1e3)
		ck.AddCapacitor(n, Ground, 1e-15)
		res, err := ck.Transient(SimOptions{TStop: 2e-11, DT: 2e-14})
		if err != nil {
			t.Fatal(err)
		}
		return res.Waveform(n)[len(res.Times)-1]
	}
	ramp := Ramp{T0: 1e-12, TRamp: 4e-12, V0: 0, V1: 0.6}
	pwl, err := NewPWL([]float64{0, 1e-12, 5e-12, 2e-11}, []float64{0, 0, 0.6, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	a := run(ramp)
	b := run(pwl)
	if math.Abs(a-b) > 1e-9 {
		t.Fatalf("PWL and equivalent ramp diverge: %v vs %v", a, b)
	}
}
