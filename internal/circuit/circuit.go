// Package circuit provides a transistor-level circuit representation and a
// transient simulator — the stand-in for the paper's HSPICE golden runs.
//
// The simulator performs modified nodal analysis with ideal node-to-ground
// voltage sources eliminated from the unknown vector, Backward-Euler time
// integration, and a damped Newton solve of the nonlinear device equations
// at every timestep. Circuits in this repository are small (one logic stage
// plus an RC tree, tens of nodes), so dense factorisation per Newton
// iteration is fast and robust.
package circuit

import (
	"fmt"

	"repro/internal/device"
)

// Node identifies a circuit node. Ground is always node 0.
type Node int

// Ground is the reference node.
const Ground Node = 0

// Waveform is a time-dependent source voltage.
type Waveform interface {
	// V returns the source voltage at time t (seconds).
	V(t float64) float64
}

// DC is a constant-voltage waveform.
type DC float64

// V implements Waveform.
func (d DC) V(float64) float64 { return float64(d) }

// Ramp is a saturating linear ramp from V0 to V1 starting at T0 with total
// transition time TRamp. TRamp = 0 yields an ideal step.
type Ramp struct {
	T0    float64
	TRamp float64
	V0    float64
	V1    float64
}

// V implements Waveform.
func (r Ramp) V(t float64) float64 {
	switch {
	case t <= r.T0 || r.TRamp <= 0:
		if t > r.T0 {
			return r.V1
		}
		return r.V0
	case t >= r.T0+r.TRamp:
		return r.V1
	default:
		return r.V0 + (r.V1-r.V0)*(t-r.T0)/r.TRamp
	}
}

// PWL is a piecewise-linear waveform through (Times, Values) samples,
// clamped to the end values outside the sampled span. It is how the golden
// path Monte-Carlo hands the *actual* output waveform of one stage to the
// next — a ramp reconstruction would misrepresent near-threshold
// transitions, whose fast middle and slow tails differ wildly.
type PWL struct {
	Times  []float64 // ascending
	Values []float64
}

// NewPWL validates and builds a PWL source.
func NewPWL(times, values []float64) (*PWL, error) {
	if len(times) != len(values) || len(times) == 0 {
		return nil, fmt.Errorf("circuit: PWL needs equal, non-empty samples")
	}
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			return nil, fmt.Errorf("circuit: PWL times not ascending at %d", i)
		}
	}
	return &PWL{Times: times, Values: values}, nil
}

// V implements Waveform by binary search + linear interpolation.
func (p *PWL) V(t float64) float64 {
	n := len(p.Times)
	if t <= p.Times[0] {
		return p.Values[0]
	}
	if t >= p.Times[n-1] {
		return p.Values[n-1]
	}
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if p.Times[mid] <= t {
			lo = mid
		} else {
			hi = mid
		}
	}
	t0, t1 := p.Times[lo], p.Times[hi]
	if t1 == t0 {
		return p.Values[hi]
	}
	f := (t - t0) / (t1 - t0)
	return p.Values[lo] + f*(p.Values[hi]-p.Values[lo])
}

// End returns the last sampled time.
func (p *PWL) End() float64 { return p.Times[len(p.Times)-1] }

type resistor struct {
	a, b Node
	g    float64 // conductance (S)
}

type capacitor struct {
	a, b Node
	c    float64 // farads
}

// Mosfet is a transistor instance with its (possibly variation-shifted)
// parameters.
type Mosfet struct {
	D, G, S Node
	P       device.Params
}

type source struct {
	n Node
	w Waveform
}

// Circuit is a flat transistor/R/C netlist under construction.
type Circuit struct {
	names     map[string]Node
	nodeNames []string

	resistors  []resistor
	capacitors []capacitor
	mosfets    []Mosfet
	sources    []source

	// Cmin is a small grounding capacitance added to every non-driven node
	// to keep the Backward-Euler system well conditioned even at nodes that
	// would otherwise be purely resistive. Defaults to 1 aF.
	Cmin float64
	// Gmin is a small leakage conductance to ground at every node,
	// the standard SPICE convergence aid. Defaults to 1 pS.
	Gmin float64

	// err holds the first construction error (bad element value, double
	// drive). Add* methods keep their chainable void signatures; the error
	// surfaces from Err() and from Transient before any solve starts.
	err error
}

// New returns an empty circuit containing only the ground node.
func New() *Circuit {
	return &Circuit{
		names:     map[string]Node{"0": Ground, "gnd": Ground},
		nodeNames: []string{"gnd"},
		Cmin:      1e-18,
		Gmin:      1e-12,
	}
}

// NodeByName returns the node with the given name, creating it on first use.
func (c *Circuit) NodeByName(name string) Node {
	if n, ok := c.names[name]; ok {
		return n
	}
	n := Node(len(c.nodeNames))
	c.names[name] = n
	c.nodeNames = append(c.nodeNames, name)
	return n
}

// NewNode creates an anonymous node with a generated name.
func (c *Circuit) NewNode(prefix string) Node {
	return c.NodeByName(fmt.Sprintf("%s#%d", prefix, len(c.nodeNames)))
}

// NumNodes returns the node count including ground.
func (c *Circuit) NumNodes() int { return len(c.nodeNames) }

// NameOf returns the name of node n.
func (c *Circuit) NameOf(n Node) string { return c.nodeNames[n] }

// ConstructionError reports a malformed element handed to an Add* method.
type ConstructionError struct {
	Element string
	Reason  string
}

// Error implements error.
func (e *ConstructionError) Error() string {
	return fmt.Sprintf("circuit: %s: %s", e.Element, e.Reason)
}

// fail records the first construction error; later elements still append so
// node bookkeeping stays consistent, but the circuit will refuse to solve.
func (c *Circuit) fail(element, reason string) {
	if c.err == nil {
		c.err = &ConstructionError{Element: element, Reason: reason}
	}
}

// Err returns the first construction error, or nil for a well-formed
// netlist. Transient performs the same check before solving.
func (c *Circuit) Err() error { return c.err }

// AddResistor connects a resistance of r ohms between a and b.
func (c *Circuit) AddResistor(a, b Node, r float64) {
	if r <= 0 {
		c.fail("resistor", fmt.Sprintf("resistance %g must be positive", r))
		return
	}
	c.resistors = append(c.resistors, resistor{a: a, b: b, g: 1 / r})
}

// AddCapacitor connects a capacitance of f farads between a and b.
func (c *Circuit) AddCapacitor(a, b Node, f float64) {
	if f < 0 {
		c.fail("capacitor", fmt.Sprintf("negative capacitance %g", f))
		return
	}
	if f == 0 {
		return
	}
	c.capacitors = append(c.capacitors, capacitor{a: a, b: b, c: f})
}

// AddMOS adds a transistor and stamps its parasitic capacitances: the
// overlap portion Cgd couples gate and drain (Miller), the rest of the gate
// capacitance goes gate→ground, and the junction capacitance drain→ground.
func (c *Circuit) AddMOS(d, g, s Node, p device.Params) {
	c.mosfets = append(c.mosfets, Mosfet{D: d, G: g, S: s, P: p})
	cgd := p.Cgd
	if cgd > p.Cg {
		cgd = p.Cg
	}
	c.AddCapacitor(g, Ground, p.Cg-cgd)
	c.AddCapacitor(g, d, cgd)
	c.AddCapacitor(d, Ground, p.Cd)
}

// AddSource pins node n to the ideal voltage waveform w. A node may have at
// most one source; the simulator removes driven nodes from the unknowns.
func (c *Circuit) AddSource(n Node, w Waveform) {
	if n == Ground {
		c.fail("source", "cannot drive ground")
		return
	}
	for _, s := range c.sources {
		if s.n == n {
			c.fail("source", "node driven by two sources: "+c.nodeNames[n])
			return
		}
	}
	c.sources = append(c.sources, source{n: n, w: w})
}

// Mosfets exposes the transistor list (read-only use) for diagnostics.
func (c *Circuit) Mosfets() []Mosfet { return c.mosfets }

// Stats summarises the netlist size.
func (c *Circuit) Stats() string {
	return fmt.Sprintf("%d nodes, %d MOS, %d R, %d C, %d sources",
		c.NumNodes(), len(c.mosfets), len(c.resistors), len(c.capacitors), len(c.sources))
}
