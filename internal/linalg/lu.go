package linalg

import (
	"errors"
	"math"
)

// ErrSingular is returned when a factorisation meets a (numerically)
// singular matrix.
var ErrSingular = errors.New("linalg: singular matrix")

// LU holds an in-place LU factorisation with partial pivoting (Doolittle,
// PA = LU). It is designed for repeated factor/solve cycles on a matrix of
// fixed size, as in Newton iterations: Factor reuses the backing storage.
type LU struct {
	n    int
	lu   []float64 // packed L (unit diagonal, below) and U (on/above)
	piv  []int
	work []float64
}

// NewLU allocates an LU workspace for n×n systems.
func NewLU(n int) *LU {
	return &LU{n: n, lu: make([]float64, n*n), piv: make([]int, n), work: make([]float64, n)}
}

// Factor computes the factorisation of a (which must be n×n). The contents
// of a are copied; a is left untouched.
func (f *LU) Factor(a *Matrix) error {
	n := f.n
	if a.Rows != n || a.Cols != n {
		return errors.New("linalg: LU dimension mismatch")
	}
	copy(f.lu, a.Data)
	lu := f.lu
	for i := range f.piv {
		f.piv[i] = i
	}
	for k := 0; k < n; k++ {
		// Partial pivot: largest |entry| in column k at or below the diagonal.
		p := k
		mx := math.Abs(lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu[i*n+k]); v > mx {
				mx, p = v, i
			}
		}
		if mx == 0 || math.IsNaN(mx) {
			return ErrSingular
		}
		if p != k {
			rk, rp := lu[k*n:(k+1)*n], lu[p*n:(p+1)*n]
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			f.piv[k], f.piv[p] = f.piv[p], f.piv[k]
		}
		pivVal := lu[k*n+k]
		for i := k + 1; i < n; i++ {
			m := lu[i*n+k] / pivVal
			lu[i*n+k] = m
			if m == 0 {
				continue
			}
			ri, rk := lu[i*n:(i+1)*n], lu[k*n:(k+1)*n]
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return nil
}

// Solve overwrites x with the solution of A·x = b using the current
// factorisation. b and x may alias.
func (f *LU) Solve(b, x []float64) {
	n := f.n
	if len(b) != n || len(x) != n {
		panic("linalg: LU solve dimension mismatch")
	}
	// Apply permutation into the workspace.
	for i := 0; i < n; i++ {
		f.work[i] = b[f.piv[i]]
	}
	lu := f.lu
	// Forward substitution with unit-diagonal L.
	for i := 1; i < n; i++ {
		s := f.work[i]
		row := lu[i*n : i*n+i]
		for j, v := range row {
			s -= v * f.work[j]
		}
		f.work[i] = s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		s := f.work[i]
		row := lu[i*n : (i+1)*n]
		for j := i + 1; j < n; j++ {
			s -= row[j] * f.work[j]
		}
		f.work[i] = s / row[i]
	}
	copy(x, f.work[:n])
}

// SolveSystem is a convenience one-shot solve of A·x = b.
func SolveSystem(a *Matrix, b []float64) ([]float64, error) {
	f := NewLU(a.Rows)
	if err := f.Factor(a); err != nil {
		return nil, err
	}
	x := make([]float64, len(b))
	f.Solve(b, x)
	return x, nil
}
