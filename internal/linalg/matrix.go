// Package linalg provides the small dense linear-algebra kernel used by the
// circuit simulator (LU-factorised nodal solves) and the model-fitting code
// (QR least squares). Circuit matrices in this project are tiny (tens of
// nodes), so a cache-friendly dense representation beats any sparse scheme.
package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewMatrix returns a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative matrix dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices. All rows must share a length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("linalg: ragged rows")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add accumulates v into element (i, j). This is the hot path when stamping
// MNA matrices.
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Zero resets all elements to 0 without reallocating.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MulVec computes y = m·x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic("linalg: MulVec dimension mismatch")
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns m·b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic("linalg: Mul dimension mismatch")
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			orow := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j, v := range brow {
				orow[j] += a * v
			}
		}
	}
	return out
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			fmt.Fprintf(&sb, "% .6g\t", m.At(i, j))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// MaxAbs returns the largest absolute element (0 for an empty matrix).
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}
