package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// denseFromCSR expands pattern+values into a dense Matrix for reference
// solves.
func denseFromCSR(p *CSRPattern, vals []float64) *Matrix {
	m := NewMatrix(p.N, p.N)
	for i := 0; i < p.N; i++ {
		for k := p.RowPtr[i]; k < p.RowPtr[i+1]; k++ {
			m.Set(i, int(p.Col[k]), vals[k])
		}
	}
	return m
}

func TestSparseLUSolveKnown(t *testing.T) {
	// Tridiagonal 3x3: [[4,-1,0],[-1,4,-1],[0,-1,4]].
	b := NewPatternBuilder(3)
	b.Add(0, 1)
	b.Add(1, 0)
	b.Add(1, 2)
	b.Add(2, 1)
	pat := b.Build()
	lu := NewSparseLU(pat)
	vals := make([]float64, pat.NNZ())
	set := func(i, j int, v float64) { vals[pat.Pos(i, j)] = v }
	set(0, 0, 4)
	set(0, 1, -1)
	set(1, 0, -1)
	set(1, 1, 4)
	set(1, 2, -1)
	set(2, 1, -1)
	set(2, 2, 4)
	if err := lu.Factor(vals); err != nil {
		t.Fatal(err)
	}
	rhs := []float64{1, 2, 3}
	x := make([]float64, 3)
	lu.Solve(rhs, x)
	want, err := SolveSystem(denseFromCSR(pat, vals), rhs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-14 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

// TestSparseLURandomVsDense cross-checks the no-pivot sparse factorisation
// against the pivoting dense LU on random diagonally-dominant matrices of
// random sparsity — the class of matrices Gmin/Cmin-regularised MNA
// produces.
func TestSparseLURandomVsDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(30)
		b := NewPatternBuilder(n)
		// Random symmetric structure, as produced by two-terminal stamps.
		for k := 0; k < 3*n; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			b.Add(i, j)
			b.Add(j, i)
		}
		pat := b.Build()
		lu := NewSparseLU(pat)
		for rep := 0; rep < 3; rep++ { // re-factor the same symbolic program
			vals := make([]float64, pat.NNZ())
			for i := 0; i < n; i++ {
				var rowSum float64
				for k := pat.RowPtr[i]; k < pat.RowPtr[i+1]; k++ {
					if int(pat.Col[k]) != i {
						vals[k] = rng.Float64()*2 - 1
						rowSum += math.Abs(vals[k])
					}
				}
				vals[pat.Pos(i, i)] = rowSum + 1 + rng.Float64()
			}
			if err := lu.Factor(vals); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			rhs := make([]float64, n)
			for i := range rhs {
				rhs[i] = rng.Float64()*2 - 1
			}
			x := make([]float64, n)
			lu.Solve(rhs, x)
			want, err := SolveSystem(denseFromCSR(pat, vals), rhs)
			if err != nil {
				t.Fatal(err)
			}
			for i := range x {
				if math.Abs(x[i]-want[i]) > 1e-12 {
					t.Fatalf("trial %d n=%d: x[%d] = %v, dense %v", trial, n, i, x[i], want[i])
				}
			}
		}
	}
}

// TestSparseLUSingular: a matrix that needs pivoting (zero diagonal,
// non-singular) must surface ErrSingular from the no-pivot factorisation —
// the signal the circuit solver uses to fall back to the dense pivoting LU,
// which handles the same matrix fine.
func TestSparseLUSingular(t *testing.T) {
	b := NewPatternBuilder(2)
	b.Add(0, 1)
	b.Add(1, 0)
	pat := b.Build()
	lu := NewSparseLU(pat)
	vals := make([]float64, pat.NNZ())
	vals[pat.Pos(0, 1)] = 1
	vals[pat.Pos(1, 0)] = 1
	if err := lu.Factor(vals); err != ErrSingular {
		t.Fatalf("Factor = %v, want ErrSingular", err)
	}
	// The dense pivoting LU solves the same system.
	if _, err := SolveSystem(denseFromCSR(pat, vals), []float64{1, 2}); err != nil {
		t.Fatalf("dense fallback should succeed: %v", err)
	}
	// An exactly singular matrix fails too.
	vals[pat.Pos(0, 1)] = 0
	if err := lu.Factor(vals); err != ErrSingular {
		t.Fatalf("Factor(singular) = %v, want ErrSingular", err)
	}
}

// TestSparseLUFillRatio sanity-checks the symbolic phase: a tridiagonal
// chain produces no fill at all, so the ratio must stay at nnz/n².
func TestSparseLUFillRatio(t *testing.T) {
	n := 50
	b := NewPatternBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.Add(i, i+1)
		b.Add(i+1, i)
	}
	pat := b.Build()
	lu := NewSparseLU(pat)
	wantMax := float64(pat.NNZ()) / float64(n*n)
	if r := lu.FillRatio(); r > wantMax+1e-12 {
		t.Fatalf("tridiagonal fill ratio %v, want <= %v (no fill-in)", r, wantMax)
	}
}
