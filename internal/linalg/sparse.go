package linalg

import "math"

// This file implements the sparse half of the simulator's linear-algebra
// kernel: a compressed-sparse-row pattern plus an LU factorisation whose
// symbolic work — fill-in pattern, elimination order, and the full
// multiply-add schedule — is computed once per matrix topology and then
// replayed numerically with straight-line array arithmetic. Circuit Newton
// loops re-factorise the same pattern thousands of times per transient, so
// the numeric phase is compiled down to flat opSrc/opDst index programs
// with zero allocations and no per-entry searches.

// CSRPattern is the fixed sparsity pattern of a square matrix: rowPtr/col
// in the usual compressed-sparse-row layout, values kept externally so one
// pattern can serve many numeric instances.
type CSRPattern struct {
	N      int
	RowPtr []int32 // len N+1
	Col    []int32 // len nnz, ascending within each row
}

// NNZ returns the number of structurally non-zero entries.
func (p *CSRPattern) NNZ() int { return len(p.Col) }

// PatternBuilder accumulates (row, col) positions with duplicates allowed.
type PatternBuilder struct {
	n    int
	rows [][]int32
}

// NewPatternBuilder starts a pattern for an n×n matrix with all diagonal
// positions pre-inserted (MNA matrices always have structural diagonals).
func NewPatternBuilder(n int) *PatternBuilder {
	b := &PatternBuilder{n: n, rows: make([][]int32, n)}
	for i := 0; i < n; i++ {
		b.Add(i, i)
	}
	return b
}

// Add records a structurally non-zero position.
func (b *PatternBuilder) Add(i, j int) {
	if i < 0 || j < 0 || i >= b.n || j >= b.n {
		return
	}
	b.rows[i] = append(b.rows[i], int32(j))
}

// Build sorts, dedups and freezes the pattern. Lookup returns the flat CSR
// position of (i, j), or -1 if absent.
func (b *PatternBuilder) Build() *CSRPattern {
	p := &CSRPattern{N: b.n, RowPtr: make([]int32, b.n+1)}
	for i, cols := range b.rows {
		sortInt32(cols)
		prev := int32(-1)
		for _, c := range cols {
			if c != prev {
				p.Col = append(p.Col, c)
				prev = c
			}
		}
		p.RowPtr[i+1] = int32(len(p.Col))
	}
	return p
}

// Pos returns the flat CSR index of entry (i, j), or -1 when the position
// is not in the pattern. Binary search within the row.
func (p *CSRPattern) Pos(i, j int) int {
	lo, hi := p.RowPtr[i], p.RowPtr[i+1]
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case p.Col[mid] < int32(j):
			lo = mid + 1
		case p.Col[mid] > int32(j):
			hi = mid
		default:
			return int(mid)
		}
	}
	return -1
}

func sortInt32(a []int32) {
	// Insertion sort: rows are short (MNA fan-in is small).
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// bitset is a fixed-capacity set of small non-negative integers.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i>>6] |= 1 << uint(i&63) }
func (b bitset) has(i int) bool { return b[i>>6]&(1<<uint(i&63)) != 0 }

func (b bitset) or(o bitset) {
	for i := range b {
		b[i] |= o[i]
	}
}

// orAbove merges o's bits strictly above position k into b.
func (b bitset) orAbove(o bitset, k int) {
	w := (k + 1) >> 6
	r := uint((k + 1) & 63)
	if w >= len(o) {
		return
	}
	if r == 0 {
		for i := w; i < len(b); i++ {
			b[i] |= o[i]
		}
		return
	}
	b[w] |= o[w] &^ ((1 << r) - 1)
	for i := w + 1; i < len(b); i++ {
		b[i] |= o[i]
	}
}

func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += popcount(w)
	}
	return n
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// SparseLU is a compiled no-pivot LU factorisation over a fixed sparsity
// pattern. The constructor performs the symbolic phase — a greedy
// minimum-degree ordering, exact fill-in computation over the symmetrised
// pattern, and flattening of the elimination into opSrc/opDst index
// programs. Factor then replays the program over fresh numeric values with
// no allocation, searching, or branching beyond the loop bounds.
//
// The factorisation does not pivot: it relies on the diagonal dominance of
// Gmin/Cmin-regularised MNA matrices. A (numerically) zero pivot surfaces
// as ErrSingular so the caller can fall back to the dense pivoting LU.
type SparseLU struct {
	n int

	perm  []int32 // elimination order: perm[k] = original row/col index
	iperm []int32 // inverse permutation

	// Factor storage in elimination order. Each row holds its L part
	// (cols < i, ascending), then the diagonal, then the U part.
	rowPtr []int32
	col    []int32
	vals   []float64
	diag   []int32 // flat position of each row's diagonal

	// scatter[s] is the factor position receiving input CSR value s.
	scatter []int32

	// Compiled elimination schedule: for the L entry at factor position p,
	// ops t in [opPtr[p], opPtr[p+1]) perform vals[opDst[t]] -= m*vals[opSrc[t]].
	opPtr []int32
	opSrc []int32
	opDst []int32

	work []float64
}

// NewSparseLU builds the symbolic factorisation of the given pattern.
func NewSparseLU(pat *CSRPattern) *SparseLU {
	n := pat.N
	f := &SparseLU{n: n}

	// Symmetrised adjacency as bitsets (structure only).
	adj := make([]bitset, n)
	for i := range adj {
		adj[i] = newBitset(n)
		adj[i].set(i)
	}
	for i := 0; i < n; i++ {
		for p := pat.RowPtr[i]; p < pat.RowPtr[i+1]; p++ {
			j := int(pat.Col[p])
			adj[i].set(j)
			adj[j].set(i)
		}
	}

	// Greedy minimum-degree ordering on the quotient elimination graph.
	f.perm = make([]int32, n)
	f.iperm = make([]int32, n)
	eliminated := newBitset(n)
	deg := make([]int, n)
	live := make([]bitset, n)
	for i := range live {
		live[i] = append(bitset(nil), adj[i]...)
		deg[i] = live[i].count()
	}
	for k := 0; k < n; k++ {
		best, bestDeg := -1, n+2
		for v := 0; v < n; v++ {
			if !eliminated.has(v) && deg[v] < bestDeg {
				best, bestDeg = v, deg[v]
			}
		}
		f.perm[k] = int32(best)
		f.iperm[best] = int32(k)
		eliminated.set(best)
		// Connect best's uneliminated neighbours pairwise.
		for u := 0; u < n; u++ {
			if u != best && live[best].has(u) && !eliminated.has(u) {
				live[u].or(live[best])
				d := 0
				for w := 0; w < n; w++ {
					if live[u].has(w) && !eliminated.has(w) && w != u {
						d++
					}
				}
				deg[u] = d
			}
		}
	}

	// Exact fill-in over the permuted symmetrised pattern: simulate the
	// elimination row by row with bitsets.
	rows := make([]bitset, n)
	for k := 0; k < n; k++ {
		rows[k] = newBitset(n)
		orig := int(f.perm[k])
		for j := 0; j < n; j++ {
			if adj[orig].has(j) {
				rows[k].set(int(f.iperm[j]))
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := k + 1; i < n; i++ {
			if rows[i].has(k) {
				rows[i].orAbove(rows[k], k)
			}
		}
	}

	// Freeze the factor layout.
	f.rowPtr = make([]int32, n+1)
	f.diag = make([]int32, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rows[i].has(j) {
				if j == i {
					f.diag[i] = int32(len(f.col))
				}
				f.col = append(f.col, int32(j))
			}
		}
		f.rowPtr[i+1] = int32(len(f.col))
	}
	f.vals = make([]float64, len(f.col))
	f.work = make([]float64, n)

	// Input scatter map: original CSR position -> factor position.
	f.scatter = make([]int32, pat.NNZ())
	for i := 0; i < n; i++ {
		pi := int(f.iperm[i])
		for s := pat.RowPtr[i]; s < pat.RowPtr[i+1]; s++ {
			pj := int(f.iperm[pat.Col[s]])
			f.scatter[s] = int32(f.factorPos(pi, pj))
		}
	}

	// Compile the elimination schedule.
	f.opPtr = make([]int32, len(f.col)+1)
	for i := 0; i < n; i++ {
		for p := f.rowPtr[i]; p < f.diag[i]; p++ {
			k := int(f.col[p])
			for q := f.diag[k] + 1; q < f.rowPtr[k+1]; q++ {
				f.opSrc = append(f.opSrc, q)
				f.opDst = append(f.opDst, int32(f.factorPos(i, int(f.col[q]))))
			}
			f.opPtr[p+1] = int32(len(f.opSrc))
		}
		for p := f.diag[i]; p < f.rowPtr[i+1]; p++ {
			f.opPtr[p+1] = int32(len(f.opSrc))
		}
	}
	return f
}

// factorPos returns the flat factor position of (i, j) in elimination
// coordinates; it panics if absent (a symbolic-phase bug).
func (f *SparseLU) factorPos(i, j int) int {
	lo, hi := f.rowPtr[i], f.rowPtr[i+1]
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case f.col[mid] < int32(j):
			lo = mid + 1
		case f.col[mid] > int32(j):
			hi = mid
		default:
			return int(mid)
		}
	}
	panic("linalg: sparse factor position missing")
}

// FillRatio reports factor density: nnz(L+U) / n².
func (f *SparseLU) FillRatio() float64 {
	if f.n == 0 {
		return 0
	}
	return float64(len(f.col)) / float64(f.n*f.n)
}

// Ops reports the number of multiply-add operations one numeric
// factorisation performs (the compiled schedule length).
func (f *SparseLU) Ops() int { return len(f.opSrc) }

// Factor replays the compiled elimination over the numeric values of the
// input pattern (avals must be the values slice matching the CSRPattern the
// factorisation was built from, length ≥ pattern NNZ). It allocates
// nothing. A zero or NaN pivot returns ErrSingular, leaving the caller free
// to retry with the dense pivoting LU.
func (f *SparseLU) Factor(avals []float64) error {
	vals := f.vals
	for i := range vals {
		vals[i] = 0
	}
	for s, p := range f.scatter {
		vals[p] += avals[s]
	}
	opPtr, opSrc, opDst := f.opPtr, f.opSrc, f.opDst
	for i := 0; i < f.n; i++ {
		dstart, dend := f.rowPtr[i], f.diag[i]
		for p := dstart; p < dend; p++ {
			piv := vals[f.diag[f.col[p]]]
			m := vals[p] / piv
			vals[p] = m
			if m == 0 {
				continue
			}
			for t := opPtr[p]; t < opPtr[p+1]; t++ {
				vals[opDst[t]] -= m * vals[opSrc[t]]
			}
		}
		d := vals[f.diag[i]]
		if d == 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			return ErrSingular
		}
	}
	return nil
}

// Solve overwrites x with the solution of A·x = b using the current
// numeric factorisation. b and x may alias. Allocation-free.
func (f *SparseLU) Solve(b, x []float64) {
	n := f.n
	w := f.work
	for i := 0; i < n; i++ {
		w[i] = b[f.perm[i]]
	}
	// Forward substitution with unit-diagonal L.
	for i := 0; i < n; i++ {
		s := w[i]
		for p := f.rowPtr[i]; p < f.diag[i]; p++ {
			s -= f.vals[p] * w[f.col[p]]
		}
		w[i] = s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		s := w[i]
		for p := f.diag[i] + 1; p < f.rowPtr[i+1]; p++ {
			s -= f.vals[p] * w[f.col[p]]
		}
		w[i] = s / f.vals[f.diag[i]]
	}
	for i := 0; i < n; i++ {
		x[f.perm[i]] = w[i]
	}
}
