package linalg

import (
	"errors"
	"math"
)

// LeastSquares solves min ‖A·x − b‖₂ for x via Householder QR with column
// norms checked for rank deficiency. A must have Rows ≥ Cols.
//
// Model fitting in this repository (Table-I quantile coefficients, the
// moment-calibration interpolation vectors P/Q/R/K, wire X coefficients)
// always reduces to small overdetermined systems, so a dense QR is both
// simple and numerically adequate.
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	m, n := a.Rows, a.Cols
	if len(b) != m {
		return nil, errors.New("linalg: least-squares dimension mismatch")
	}
	if m < n {
		return nil, errors.New("linalg: underdetermined least-squares system")
	}
	// Work on copies; Householder QR factorises R in place. Columns are
	// equilibrated to unit norm first — regression features in this
	// repository span many orders of magnitude (seconds next to
	// dimensionless moments), and without scaling the rank test would
	// misclassify small-but-independent columns.
	r := a.Clone()
	rhs := make([]float64, m)
	copy(rhs, b)

	colScale := make([]float64, n)
	for j := 0; j < n; j++ {
		var norm float64
		for i := 0; i < m; i++ {
			norm = math.Hypot(norm, r.At(i, j))
		}
		if norm == 0 {
			return nil, ErrSingular
		}
		colScale[j] = norm
		for i := 0; i < m; i++ {
			r.Set(i, j, r.At(i, j)/norm)
		}
	}

	// Rank-deficiency threshold: after equilibration every column has unit
	// norm, so a column whose remaining norm collapses below tol after
	// earlier reflectors is numerically dependent.
	const tol = 1e-10

	for k := 0; k < n; k++ {
		// Householder vector for column k.
		var norm float64
		for i := k; i < m; i++ {
			norm = math.Hypot(norm, r.At(i, k))
		}
		if norm <= tol {
			return nil, ErrSingular
		}
		if r.At(k, k) > 0 {
			norm = -norm
		}
		for i := k; i < m; i++ {
			r.Set(i, k, r.At(i, k)/norm)
		}
		r.Set(k, k, r.At(k, k)+1)

		// Apply the reflector to the remaining columns.
		for j := k + 1; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += r.At(i, k) * r.At(i, j)
			}
			s = -s / r.At(k, k)
			for i := k; i < m; i++ {
				r.Add(i, j, s*r.At(i, k))
			}
		}
		// Apply the reflector to the right-hand side.
		var s float64
		for i := k; i < m; i++ {
			s += r.At(i, k) * rhs[i]
		}
		s = -s / r.At(k, k)
		for i := k; i < m; i++ {
			rhs[i] += s * r.At(i, k)
		}
		// Store the diagonal of R (negated norm) in place of the v head.
		r.Set(k, k, norm)
	}

	// Back-substitute R·x = Qᵀb. The stored diagonal is -‖·‖ with the sign
	// folded in; R's true diagonal is -r[k][k].
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := rhs[i]
		for j := i + 1; j < n; j++ {
			s -= r.At(i, j) * x[j]
		}
		d := -r.At(i, i)
		if d == 0 || math.IsNaN(d) {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	// Undo the column equilibration.
	for i := range x {
		x[i] /= colScale[i]
	}
	return x, nil
}

// PolyFit fits a polynomial of the given degree to (xs, ys) by least squares
// and returns coefficients lowest-order first.
func PolyFit(xs, ys []float64, degree int) ([]float64, error) {
	if len(xs) != len(ys) {
		return nil, errors.New("linalg: PolyFit length mismatch")
	}
	if len(xs) < degree+1 {
		return nil, errors.New("linalg: PolyFit needs at least degree+1 points")
	}
	a := NewMatrix(len(xs), degree+1)
	for i, x := range xs {
		p := 1.0
		for j := 0; j <= degree; j++ {
			a.Set(i, j, p)
			p *= x
		}
	}
	return LeastSquares(a, ys)
}

// PolyEval evaluates a polynomial with coefficients lowest-order first.
func PolyEval(coeffs []float64, x float64) float64 {
	var y float64
	for i := len(coeffs) - 1; i >= 0; i-- {
		y = y*x + coeffs[i]
	}
	return y
}
