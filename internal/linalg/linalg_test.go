package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	m.Add(1, 2, 2)
	if m.At(0, 0) != 1 || m.At(1, 2) != 7 {
		t.Fatalf("set/add/at broken: %v", m)
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone aliases the original")
	}
	m.Zero()
	if m.MaxAbs() != 0 {
		t.Fatal("Zero left residue")
	}
}

func TestFromRowsPanicsOnRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged rows did not panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestMulVec(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	y := m.MulVec([]float64{5, 6})
	if y[0] != 17 || y[1] != 39 {
		t.Fatalf("MulVec wrong: %v", y)
	}
}

func TestTransposeMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.Transpose()
	if at.Rows != 3 || at.Cols != 2 || at.At(2, 1) != 6 {
		t.Fatalf("transpose wrong: %v", at)
	}
	p := a.Mul(at) // 2x2
	if p.At(0, 0) != 14 || p.At(1, 1) != 77 || p.At(0, 1) != 32 {
		t.Fatalf("Mul wrong: %v", p)
	}
}

func TestLUSolveKnown(t *testing.T) {
	a := FromRows([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	x, err := SolveSystem(a, []float64{8, -11, -3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Fatalf("solution %v, want %v", x, want)
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveSystem(a, []float64{1, 2}); err == nil {
		t.Fatal("singular matrix not detected")
	}
}

func TestLURandomRoundTrip(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(12)
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = r.NormFloat64()
		}
		// Diagonal dominance keeps the random systems well conditioned.
		for i := 0; i < n; i++ {
			a.Add(i, i, 5)
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = r.NormFloat64()
		}
		b := a.MulVec(want)
		got, err := SolveSystem(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("trial %d: x[%d]=%v want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestLUFactorReuse(t *testing.T) {
	a := FromRows([][]float64{{4, 1}, {1, 3}})
	f := NewLU(2)
	if err := f.Factor(a); err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 2)
	f.Solve([]float64{1, 2}, x)
	// Refactor a different matrix with the same workspace.
	b := FromRows([][]float64{{10, 0}, {0, 10}})
	if err := f.Factor(b); err != nil {
		t.Fatal(err)
	}
	f.Solve([]float64{5, -5}, x)
	if math.Abs(x[0]-0.5) > 1e-12 || math.Abs(x[1]+0.5) > 1e-12 {
		t.Fatalf("reused workspace solve wrong: %v", x)
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// Square, consistent system: LS must reproduce the exact solution.
	a := FromRows([][]float64{{1, 0}, {0, 2}, {1, 1}})
	want := []float64{3, -1}
	b := a.MulVec(want)
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-10 {
			t.Fatalf("x=%v want %v", x, want)
		}
	}
}

func TestLeastSquaresResidualOrthogonality(t *testing.T) {
	// The LS residual must be orthogonal to the column space.
	r := rng.New(6)
	a := NewMatrix(20, 4)
	for i := range a.Data {
		a.Data[i] = r.NormFloat64()
	}
	b := make([]float64, 20)
	for i := range b {
		b[i] = r.NormFloat64()
	}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	res := a.MulVec(x)
	for i := range res {
		res[i] = b[i] - res[i]
	}
	at := a.Transpose()
	proj := at.MulVec(res)
	for j, v := range proj {
		if math.Abs(v) > 1e-8 {
			t.Fatalf("residual not orthogonal to column %d: %v", j, v)
		}
	}
}

func TestLeastSquaresUnderdetermined(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := LeastSquares(a, []float64{1, 2}); err == nil {
		t.Fatal("underdetermined system not rejected")
	}
}

func TestLeastSquaresRankDeficient(t *testing.T) {
	a := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	if _, err := LeastSquares(a, []float64{1, 2, 3}); err == nil {
		t.Fatal("rank-deficient system not rejected")
	}
}

func TestPolyFitRecoversPolynomial(t *testing.T) {
	coeffs := []float64{2, -1, 0.5} // 2 - x + 0.5x²
	var xs, ys []float64
	for x := -3.0; x <= 3; x += 0.5 {
		xs = append(xs, x)
		ys = append(ys, PolyEval(coeffs, x))
	}
	got, err := PolyFit(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range coeffs {
		if math.Abs(got[i]-coeffs[i]) > 1e-9 {
			t.Fatalf("coeffs %v want %v", got, coeffs)
		}
	}
}

func TestPolyFitErrors(t *testing.T) {
	if _, err := PolyFit([]float64{1}, []float64{1, 2}, 1); err == nil {
		t.Fatal("length mismatch not rejected")
	}
	if _, err := PolyFit([]float64{1, 2}, []float64{1, 2}, 3); err == nil {
		t.Fatal("too few points not rejected")
	}
}

func TestPolyEvalProperty(t *testing.T) {
	// Horner evaluation must agree with the naive power sum.
	err := quick.Check(func(c0, c1, c2, xRaw float64) bool {
		x := math.Mod(xRaw, 10)
		if math.IsNaN(x) {
			return true
		}
		c := []float64{c0 / 100, c1 / 100, c2 / 100}
		naive := c[0] + c[1]*x + c[2]*x*x
		horner := PolyEval(c, x)
		return math.Abs(naive-horner) <= 1e-9*(math.Abs(naive)+1)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
