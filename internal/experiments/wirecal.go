package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/layout"
	"repro/internal/stats"
	"repro/internal/stdcell"
	"repro/internal/timinglib"
	"repro/internal/waveform"
	"repro/internal/wire"
)

// wireSamples returns the Monte-Carlo depth for wire-stage golden runs.
func (c *Context) wireSamples() int {
	switch c.Profile.Name {
	case "bench":
		return 120
	case "quick":
		return 150
	case "paper":
		return 2000
	default:
		return 800
	}
}

// wireScenario is one calibration/verification measurement.
type wireScenario struct {
	Driver, Load string
	TreeSeed     uint64
	Stage        *wire.Stage
	// Golden statistics.
	Mu, Sigma float64
	XW        float64
	Quantiles map[int]float64
	Elmore    float64 // including the load pin cap at the sink leaf
}

// buildWireStage assembles a driver→tree→load stage over a random tree.
// The tree's sink leaf gets the load cell attached as transistors (not as a
// lumped cap), so Elmore for model evaluation must add the pin cap
// explicitly — done here once and stored.
func (c *Context) buildWireStage(driver, load string, treeSeed uint64, inSlew float64) (*wireScenario, error) {
	par := layout.Default28nm()
	tree := layout.RandomTree(fmt.Sprintf("cal_%s_%s_%d", driver, load, treeSeed), 1, par, treeSeed)
	leaf := tree.NodeIndex("sink0")
	if leaf < 0 {
		return nil, fmt.Errorf("experiments: random tree has no sink leaf")
	}
	lc := c.Cfg.Lib.Cell(load)
	if lc == nil {
		return nil, fmt.Errorf("experiments: unknown load cell %q", load)
	}
	dc := c.Cfg.Lib.Cell(driver)
	if dc == nil {
		return nil, fmt.Errorf("experiments: unknown driver cell %q", driver)
	}
	// Elmore with the sink pin cap folded onto the leaf, as the layout
	// extractor would emit it.
	treeWithPin := tree.Clone()
	treeWithPin.Nodes[leaf].C += lc.PinCap(lc.Inputs[0])

	st := &wire.Stage{
		Driver:    driver,
		DriverPin: dc.Inputs[0],
		InEdge:    waveform.Rising,
		InSlew:    inSlew,
		Tree:      tree,
		Loads:     []wire.LoadSpec{{Leaf: leaf, Cell: load, Pin: lc.Inputs[0]}},
	}
	return &wireScenario{
		Driver: driver, Load: load, TreeSeed: treeSeed,
		Stage:  st,
		Elmore: treeWithPin.Elmore(leaf),
	}, nil
}

// measureWireScenario runs the golden MC of a scenario and fills its
// statistics.
func (c *Context) measureWireScenario(sc *wireScenario, samples int, seed uint64) error {
	ss, err := wire.MCStage(context.Background(), c.Cfg, sc.Stage, samples, seed)
	if err != nil {
		return fmt.Errorf("scenario %s→%s: %w", sc.Driver, sc.Load, err)
	}
	m := stats.ComputeMoments(ss.Wire)
	sc.Mu, sc.Sigma = m.Mean, m.Std
	sc.XW = m.Std / m.Mean
	sc.Quantiles = stats.SigmaQuantiles(ss.Wire)
	return nil
}

// calibrationScenarios pairs every training cell as driver and as load with
// a spread of partners — enough coverage for the X_FI/X_FO least squares
// without the full 16×16 cross product. Every cell appears opposite the
// INVx4 baseline (the FO4 sweeps Fig. 9 scores), plus shifted pairings for
// cross coverage.
func (c *Context) calibrationScenarios() [][2]string {
	cells := c.WireTrainingCells()
	seen := map[[2]string]bool{}
	var pairs [][2]string
	add := func(d, l string) {
		p := [2]string{d, l}
		if !seen[p] {
			seen[p] = true
			pairs = append(pairs, p)
		}
	}
	for _, d := range cells {
		add(d, "INVx4")
	}
	for _, l := range cells {
		add("INVx4", l)
	}
	for i, d := range cells {
		add(d, cells[(i+5)%len(cells)])
		add(d, cells[(i+11)%len(cells)])
	}
	return pairs
}

// CalibrateWires fits the X_FI/X_FO wire calibration from golden stage
// measurements (the paper's Fig. 9 fitting step). The per-scenario golden
// observations are cached for the wire-accuracy figures.
func (c *Context) CalibrateWires() (*wire.Calibration, error) {
	if c.wireCal != nil {
		return c.wireCal, nil
	}
	t0 := time.Now()
	cells := c.WireTrainingCells()
	ratios := make(map[string]float64, len(cells))
	for _, cell := range cells {
		r, err := c.FO4Ratio(cell)
		if err != nil {
			return nil, err
		}
		ratios[cell] = r
	}
	r4, ok := ratios["INVx4"]
	if !ok {
		return nil, fmt.Errorf("experiments: INVx4 baseline ratio missing")
	}

	prior := make(map[string]float64, len(cells))
	for _, cell := range cells {
		sc := c.Cfg.Lib.Cell(cell)
		prior[cell] = wire.PelgromPrior(sc.Stack, sc.Strength)
	}

	var obs []wire.Observation
	samples := c.wireSamples()
	treeSeeds := []uint64{11, 29}
	for pi, pair := range c.calibrationScenarios() {
		for _, ts := range treeSeeds {
			sc, err := c.buildWireStage(pair[0], pair[1], ts, 20e-12)
			if err != nil {
				return nil, err
			}
			seed := c.Seed ^ stdcell.KeyFromString(fmt.Sprintf("wirecal%d_%d", pi, ts))
			if err := c.measureWireScenario(sc, samples, seed); err != nil {
				return nil, err
			}
			obs = append(obs, wire.Observation{Driver: sc.Driver, Load: sc.Load, XW: sc.XW})
			c.wireObs = append(c.wireObs, sc)
		}
	}
	cal, err := wire.Fit(obs, ratios, r4, wire.FitOptions{Prior: prior})
	if err != nil {
		return nil, err
	}
	c.logf("wire calibration fitted from %d scenarios in %v",
		len(obs), time.Since(t0).Round(time.Millisecond))
	c.wireCal = cal
	return cal, nil
}

// TimingFileWithWire is a convenience: the coefficients file including the
// wire calibration (BuildTimingFile already includes it; this accessor
// exists for call sites that only need wire data).
func (c *Context) TimingFileWithWire() (*timinglib.File, error) {
	return c.BuildTimingFile()
}
