package experiments

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/charlib"
	"repro/internal/timinglib"
)

// resumeProfile is sized so characterising the whole library stays fast:
// the minimum 4x4 grid the cubic calibration accepts and a minimal legal
// sample count.
var resumeProfile = Profile{
	Name: "resume-test", CharSamples: 8, EvalSamples: 8,
	SlewGrid: []float64{charlib.Reference.Slew, 50e-12, 100e-12, 200e-12},
	LoadGrid: []float64{charlib.Reference.Load, 1e-15, 2.5e-15, 5e-15},
}

func resumeContext(seed uint64) *Context {
	c := NewContext(resumeProfile, seed)
	c.Cfg.Steps = 150
	return c
}

func sortedArcKeys(f *timinglib.File) []string {
	keys := make([]string, 0, len(f.Arcs))
	for k := range f.Arcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func TestBuildTimingFileCheckpointResume(t *testing.T) {
	const seed = 9
	ckptPath := filepath.Join(t.TempDir(), "coeffs.json")

	// Reference: one uninterrupted run.
	full, _, err := resumeContext(seed).BuildTimingFileContext(context.Background(),
		BuildFileOptions{SkipWire: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Arcs) == 0 {
		t.Fatal("uninterrupted run fitted no arcs")
	}

	// Interrupted run: checkpoint after every arc, cancel ("kill") the run
	// once a handful of checkpoints have landed on disk.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	checkpoints := 0
	_, _, err = resumeContext(seed).BuildTimingFileContext(ctx, BuildFileOptions{
		SkipWire:        true,
		CheckpointEvery: 1,
		Checkpoint: func(f *timinglib.File) error {
			if err := f.Save(ckptPath); err != nil {
				return err
			}
			checkpoints++
			if checkpoints == 5 {
				cancel()
			}
			return nil
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run returned %v, want a wrapped context.Canceled", err)
	}

	partial, err := timinglib.Load(ckptPath)
	if err != nil {
		t.Fatalf("checkpoint unreadable after kill: %v", err)
	}
	if partial.Checkpoint == nil || partial.Checkpoint.Complete {
		t.Fatalf("checkpoint metadata %+v, want incomplete with profile/seed", partial.Checkpoint)
	}
	if partial.Checkpoint.Profile != resumeProfile.Name || partial.Checkpoint.Seed != seed {
		t.Fatalf("checkpoint recorded %s/%d", partial.Checkpoint.Profile, partial.Checkpoint.Seed)
	}
	if len(partial.Arcs) == 0 || len(partial.Arcs) >= len(full.Arcs) {
		t.Fatalf("partial run persisted %d of %d arcs", len(partial.Arcs), len(full.Arcs))
	}

	// Resumed run: already-fitted arcs must never be re-simulated, and the
	// final arc set must match the uninterrupted run's.
	resumedCtx := resumeContext(seed)
	var mu sync.Mutex
	simulated := map[string]bool{}
	resumedCtx.Cfg.FaultInject = func(f charlib.Fault) error {
		mu.Lock()
		simulated[timinglib.ArcKey(f.Arc.Cell, f.Arc.Pin, f.Arc.InEdge)] = true
		mu.Unlock()
		return nil
	}
	resumed, report, err := resumedCtx.BuildTimingFileContext(context.Background(), BuildFileOptions{
		SkipWire:        true,
		Resume:          partial,
		CheckpointEvery: 1,
		Checkpoint:      func(f *timinglib.File) error { return f.Save(ckptPath) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for key := range partial.Arcs {
		if simulated[key] {
			t.Errorf("resumed run re-simulated already-fitted arc %s", key)
		}
	}
	if got, want := sortedArcKeys(resumed), sortedArcKeys(full); !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed arc set %v differs from uninterrupted run %v", got, want)
	}
	for key, m := range partial.Arcs {
		if !reflect.DeepEqual(resumed.Arcs[key], m) {
			t.Errorf("resumed run altered checkpointed arc %s", key)
		}
	}
	_, skipped, _, _, _ := report.Totals()
	if skipped != len(partial.Arcs) {
		t.Fatalf("report counts %d resumed arcs, want %d", skipped, len(partial.Arcs))
	}

	// The final checkpoint on disk is the complete file.
	final, err := timinglib.Load(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	if final.Checkpoint == nil || !final.Checkpoint.Complete {
		t.Fatal("final checkpoint not marked complete")
	}
	if !reflect.DeepEqual(sortedArcKeys(final), sortedArcKeys(full)) {
		t.Fatal("final checkpoint arc set differs from the uninterrupted run")
	}
}
