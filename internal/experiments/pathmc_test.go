package experiments

import (
	"testing"

	"repro/internal/rctree"
	"repro/internal/sta"
	"repro/internal/waveform"
)

// synthTwoStagePath builds PI → netA → (U1 NAND2x2) → netB → PO.
func synthTwoStagePath() *sta.Path {
	treeA := rctree.NewTree("netA", 0.05e-15)
	leafA := treeA.MustAddNode("pin:U1:A", 0, 100, 2.5e-15)
	treeB := rctree.NewTree("netB", 0.05e-15)
	leafB := treeB.MustAddNode("pin:PO0", 0, 120, 1.0e-15)
	return &sta.Path{
		Launch:   waveform.Rising,
		Endpoint: "netB",
		Stages: []sta.Stage{
			{
				GateIdx: -1, Net: "netA", Tree: treeA,
				InEdge: waveform.Rising, InSlew: 10e-12,
				SinkLeaf: leafA, SinkCell: "NAND2x2", SinkPin: "A", SinkPinCap: 2.2e-15,
			},
			{
				GateIdx: 0, Cell: "NAND2x2", InPin: "A", InEdge: waveform.Rising,
				InSlew: 15e-12, Net: "netB", Tree: treeB,
				SinkLeaf: leafB, SinkCell: "", SinkPin: "",
			},
		},
	}
}

func TestBuildMCStagesStructure(t *testing.T) {
	ctx := tinyCtx()
	p := synthTwoStagePath()
	stages, err := buildMCStages(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 2 {
		t.Fatalf("%d stages", len(stages))
	}
	pi := stages[0]
	if !pi.wireOnly {
		t.Fatal("PI stage not wire-only")
	}
	if pi.tmpl.Driver != "INVx4" {
		t.Fatalf("PI pad driver %q", pi.tmpl.Driver)
	}
	// The pad driver inverts: its input edge must be opposite the net edge.
	if pi.tmpl.InEdge != waveform.Falling {
		t.Fatal("PI stage input edge not inverted for the pad driver")
	}
	gate := stages[1]
	if gate.wireOnly || gate.tmpl.Driver != "NAND2x2" || gate.tmpl.DriverPin != "A" {
		t.Fatalf("gate stage template wrong: %+v", gate.tmpl)
	}
	// PO stage keeps the lumped pad load and attaches a reference cell.
	if gate.tmpl.Loads[0].Cell != "INVx4" {
		t.Fatalf("PO load cell %q", gate.tmpl.Loads[0].Cell)
	}
}

func TestBuildMCStagesCorrelationKeys(t *testing.T) {
	ctx := tinyCtx()
	p := synthTwoStagePath()
	stages, err := buildMCStages(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	// The load of the PI stage IS the driver of the gate stage: their
	// variation keys must match so one transistor set serves both sims.
	if stages[0].tmpl.Loads[0].Key != stages[1].tmpl.DriverKey {
		t.Fatal("adjacent-stage gate keys differ — cell/wire correlation broken")
	}
	if stages[0].tmpl.TreeKey == stages[1].tmpl.TreeKey {
		t.Fatal("different nets share a tree key")
	}
}

func TestBuildMCStagesRemovesLumpedPinCap(t *testing.T) {
	ctx := tinyCtx()
	p := synthTwoStagePath()
	stages, err := buildMCStages(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	// Stage 0's sink leaf had 2.5 fF including a 2.2 fF pin cap; the MC
	// template must carry only the wire's own 0.3 fF (the load cell's
	// transistors supply the rest physically).
	got := stages[0].tmpl.Tree.Nodes[p.Stages[0].SinkLeaf].C
	if got < 0.29e-15 || got > 0.31e-15 {
		t.Fatalf("leaf cap after pin-cap removal: %v", got)
	}
	// The original path tree is untouched.
	if p.Stages[0].Tree.Nodes[p.Stages[0].SinkLeaf].C != 2.5e-15 {
		t.Fatal("buildMCStages mutated the analysis tree")
	}
	// PO stage keeps its lumped load.
	if stages[1].tmpl.Tree.Nodes[p.Stages[1].SinkLeaf].C != 1.0e-15 {
		t.Fatal("PO lumped load should remain in the tree")
	}
}
