package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/baseline"
	"repro/internal/charlib"
	"repro/internal/nsigma"
	"repro/internal/stats"
	"repro/internal/stdcell"
	"repro/internal/waveform"
)

// Table2Cells are the twelve cells of the paper's Table II.
var Table2Cells = []string{
	"NOR2x1", "NOR2x2", "NOR2x4", "NOR2x8",
	"NAND2x1", "NAND2x2", "NAND2x4", "NAND2x8",
	"AOI2x1", "AOI2x2", "AOI2x4", "AOI2x8",
}

// Table2Row is one row of the reproduction: ±3σ estimation errors (%) of
// each model against the golden MC quantiles.
type Table2Row struct {
	Cell     string
	LSNm3    float64
	LSNp3    float64
	Burrm3   float64
	Burrp3   float64
	NSigmam3 float64
	NSigmap3 float64
	GoldenM3 float64 // golden -3σ delay (s), for reference
	GoldenP3 float64
	GaussM3  float64 // naive µ±3σ errors, extra baseline
	GaussP3  float64
}

// Table2Result is the full table plus averages.
type Table2Result struct {
	Rows []Table2Row
	Avg  Table2Row
}

// RunTable2 reproduces Table II: for every cell, golden MC delay samples
// under the FO4 constraint are fitted by the LSN and Burr baselines, while
// the N-sigma model evaluates its calibrated quantiles at the same
// operating point; all three are scored against the golden ±3σ quantiles.
func (c *Context) RunTable2() (*Table2Result, error) {
	res := &Table2Result{}
	for _, cellName := range Table2Cells {
		cell := c.Cfg.Lib.Cell(cellName)
		if cell == nil {
			return nil, fmt.Errorf("experiments: unknown Table II cell %q", cellName)
		}
		arc := charlib.Arc{Cell: cellName, Pin: cell.Inputs[0], InEdge: waveform.Rising}
		load := c.FO4Load(cell)

		// Golden distribution at the FO4 test point.
		smp, err := c.Cfg.MCArc(context.Background(), arc, charlib.Reference.Slew, load,
			c.Profile.EvalSamples, c.Seed^stdcell.KeyFromString("t2:"+cellName))
		if err != nil {
			return nil, err
		}
		q := smp.SigmaQuantiles()

		// Baselines fitted to the same golden samples.
		lsn, err := baseline.FitLSN(smp.Delay)
		if err != nil {
			return nil, err
		}
		burr, err := baseline.FitBurr(smp.Delay)
		if err != nil {
			return nil, err
		}

		// Our model: characterised across the operating grid, evaluated at
		// the test point through the calibrated moments.
		ch, err := c.CharacterizeArc(arc)
		if err != nil {
			return nil, err
		}
		am, err := nsigma.FitArc(ch)
		if err != nil {
			return nil, err
		}
		moms := am.MomentsAt(charlib.Reference.Slew, load)

		row := Table2Row{
			Cell:     cellName,
			GoldenM3: q[-3],
			GoldenP3: q[3],
			LSNm3:    stats.RelErr(lsn.SigmaQuantile(-3), q[-3]),
			LSNp3:    stats.RelErr(lsn.SigmaQuantile(3), q[3]),
			Burrm3:   stats.RelErr(burr.SigmaQuantile(-3), q[-3]),
			Burrp3:   stats.RelErr(burr.SigmaQuantile(3), q[3]),
			NSigmam3: stats.RelErr(am.Quantile(-3, charlib.Reference.Slew, load), q[-3]),
			NSigmap3: stats.RelErr(am.Quantile(3, charlib.Reference.Slew, load), q[3]),
			GaussM3:  stats.RelErr(nsigma.GaussianQuantile(moms, -3), q[-3]),
			GaussP3:  stats.RelErr(nsigma.GaussianQuantile(moms, 3), q[3]),
		}
		res.Rows = append(res.Rows, row)
		c.logf("table2 %-8s LSN %5.2f/%5.2f  Burr %5.2f/%5.2f  ours %5.2f/%5.2f",
			cellName, row.LSNm3, row.LSNp3, row.Burrm3, row.Burrp3, row.NSigmam3, row.NSigmap3)
	}
	n := float64(len(res.Rows))
	for _, r := range res.Rows {
		res.Avg.LSNm3 += r.LSNm3 / n
		res.Avg.LSNp3 += r.LSNp3 / n
		res.Avg.Burrm3 += r.Burrm3 / n
		res.Avg.Burrp3 += r.Burrp3 / n
		res.Avg.NSigmam3 += r.NSigmam3 / n
		res.Avg.NSigmap3 += r.NSigmap3 / n
		res.Avg.GaussM3 += r.GaussM3 / n
		res.Avg.GaussP3 += r.GaussP3 / n
	}
	res.Avg.Cell = "Avg."
	return res, nil
}

// Format renders the table in the paper's layout.
func (r *Table2Result) Format() string {
	var sb strings.Builder
	sb.WriteString("TABLE II: accuracy of estimating the +/-3sigma cell delay (errors, %)\n")
	sb.WriteString(fmt.Sprintf("%-9s %7s %7s %7s %7s %7s %7s\n",
		"Std cell", "LSN-3s", "LSN+3s", "Burr-3s", "Burr+3s", "Ours-3s", "Ours+3s"))
	for _, row := range append(r.Rows, r.Avg) {
		sb.WriteString(fmt.Sprintf("%-9s %7.2f %7.2f %7.2f %7.2f %7.2f %7.2f\n",
			row.Cell, row.LSNm3, row.LSNp3, row.Burrm3, row.Burrp3, row.NSigmam3, row.NSigmap3))
	}
	return sb.String()
}
