package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/circuit"
	"repro/internal/rng"
	"repro/internal/sta"
	"repro/internal/stats"
	"repro/internal/stdcell"
	"repro/internal/wire"
)

// PathSamples holds golden Monte-Carlo results of one critical path.
type PathSamples struct {
	Total []float64 // path delay per sample (s)
}

// Quantiles returns the sigma-level quantiles of the path delay.
func (p *PathSamples) Quantiles() map[int]float64 { return stats.SigmaQuantiles(p.Total) }

// Moments returns the sample moments of the path delay.
func (p *PathSamples) Moments() stats.Moments { return stats.ComputeMoments(p.Total) }

// PathMC is the golden reference for Table III: the critical path is
// re-simulated at transistor level, sample by sample, stage by stage. Each
// sample draws one shared global corner; each gate instance derives its
// local variation from a stable per-gate key, so the cell that loads stage
// k *is* (parameter-identical to) the cell that drives stage k+1 — the
// cell/wire interaction under study. Within a sample, the measured leaf
// slew of each stage becomes the (ramp-approximated) input of the next.
//
// This staged transistor-level MC replaces flattening the whole path into
// one matrix, which would be quadratically more expensive without changing
// the variability mechanisms being measured (see DESIGN.md).
func PathMC(ctx *Context, path *sta.Path, n int, seed uint64) (*PathSamples, error) {
	stages, err := buildMCStages(ctx, path)
	if err != nil {
		return nil, err
	}
	out := &PathSamples{Total: make([]float64, n)}
	base := rng.New(seed)
	workers := ctx.Cfg.Workers
	if workers <= 0 {
		workers = defaultMCWorkers()
	}
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One solver cache per worker: a path re-simulates the same few
			// stage topologies every sample, so after the first sample every
			// transient runs on a rebound compiled solver.
			cache := ctx.Cfg.AcquireSolvers()
			defer ctx.Cfg.ReleaseSolvers(cache)
			for i := range next {
				r := base.At(i)
				sctx := &stdcell.SampleCtx{Model: ctx.Cfg.Var, Corner: ctx.Cfg.Var.SampleCorner(r), Base: r}
				total, err := simulatePathSample(ctx, stages, path.Stages[0].InSlew, sctx, cache)
				if err != nil {
					select {
					case errCh <- fmt.Errorf("path sample %d: %w", i, err):
					default:
					}
					return
				}
				out.Total[i] = total
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	return out, nil
}

// mcStage is a prepared wire.Stage template for one path stage.
type mcStage struct {
	tmpl wire.Stage
	// wireOnly marks the PI stage: the pad driver is scaffolding and its
	// cell delay is not part of the path.
	wireOnly bool
}

// buildMCStages converts sta path stages into simulator stages. The PI
// stage (no driving cell) contributes its wire via an idealised pad driver
// (the STA's InputDriver assumption); gate stages simulate driver + net +
// on-path load cell. The sink leaf's lumped pin cap is removed from the
// tree copy because the load cell's transistors supply it physically.
func buildMCStages(ctx *Context, path *sta.Path) ([]mcStage, error) {
	var stages []mcStage
	for si, s := range path.Stages {
		var tmpl wire.Stage
		wireOnly := false
		if s.Cell == "" {
			wireOnly = true
			// PI stage: model the pad with the STA's assumed input driver.
			drv := ctx.Cfg.Lib.Cell("INVx4")
			tmpl.Driver = drv.Name
			tmpl.DriverPin = drv.Inputs[0]
			tmpl.DriverKey = stdcell.KeyFromString("pi-driver:" + s.Net)
			// The pad driver inverts; launch the opposite edge so the net
			// sees the analysis edge.
			tmpl.InEdge = s.InEdge.Opposite()
		} else {
			tmpl.Driver = s.Cell
			tmpl.DriverPin = s.InPin
			tmpl.InEdge = s.InEdge
			tmpl.DriverKey = stdcell.KeyFromString("gate:" + gateName(ctx, path, si))
		}
		tree := s.Tree.Clone()
		loadCell := s.SinkCell
		loadPin := s.SinkPin
		loadKey := stdcell.KeyFromString("gate:" + sinkGateName(ctx, path, si))
		if loadCell == "" {
			// Endpoint PO: keep the lumped pad load that is already in the
			// tree; attach a reference load cell for realism.
			loadCell = "INVx4"
			loadPin = "A"
			loadKey = stdcell.KeyFromString("po-load:" + s.Net)
		} else {
			// Remove the lumped pin cap; the transistor instance replaces it.
			tree.Nodes[s.SinkLeaf].C -= s.SinkPinCap
			if tree.Nodes[s.SinkLeaf].C < 0 {
				tree.Nodes[s.SinkLeaf].C = 0
			}
		}
		tmpl.Tree = tree
		tmpl.TreeKey = stdcell.KeyFromString("net:" + s.Net)
		tmpl.Loads = []wire.LoadSpec{{Leaf: s.SinkLeaf, Cell: loadCell, Pin: loadPin, Key: loadKey}}
		stages = append(stages, mcStage{tmpl: tmpl, wireOnly: wireOnly})
	}
	return stages, nil
}

func gateName(ctx *Context, path *sta.Path, si int) string {
	s := path.Stages[si]
	if s.GateIdx < 0 {
		return "pi:" + s.Net
	}
	return pathGate(ctx, path, si)
}

func sinkGateName(ctx *Context, path *sta.Path, si int) string {
	if si+1 < len(path.Stages) {
		return gateName(ctx, path, si+1)
	}
	return "po:" + path.Stages[si].Net
}

// pathGate names the driving gate of a stage; the Context carries no
// netlist, so the stage's net name (unique per gate output) is the stable
// identity.
func pathGate(ctx *Context, path *sta.Path, si int) string {
	return "drv:" + path.Stages[si].Net
}

// simulatePathSample runs all stages for one sample and sums cell + wire
// delays (the golden counterpart of eq. 10). Stage 0 is driven by the
// synthetic input ramp; every later stage is driven by the previous
// stage's recorded leaf waveform (PWL handoff), so the chained simulation
// tracks a flat whole-path transient closely — ramp reconstruction of
// near-threshold waveforms would not.
func simulatePathSample(ctx *Context, stages []mcStage, inSlew float64,
	sctx *stdcell.SampleCtx, cache *circuit.SolverCache) (float64, error) {
	total := 0.0
	slew := inSlew
	var wave *circuit.PWL
	for si := range stages {
		st := stages[si].tmpl // copy
		st.InSlew = slew
		st.InWave = wave
		st.CaptureLeafWave = si+1 < len(stages)
		s, err := wire.MeasureStageOnceCached(ctx.Cfg, &st, sctx, cache)
		if err != nil {
			return 0, fmt.Errorf("stage %d: %w", si, err)
		}
		if stages[si].wireOnly {
			total += s.WireDelay
		} else {
			total += s.CellDelay + s.WireDelay
		}
		slew = s.LeafSlew
		wave = s.LeafWave
	}
	return total, nil
}

func defaultMCWorkers() int { return runtime.GOMAXPROCS(0) }
