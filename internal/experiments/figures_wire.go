package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/layout"
	"repro/internal/rctree"
	"repro/internal/stats"
	"repro/internal/stdcell"
	"repro/internal/wire"
)

// --- Fig. 7: Elmore vs golden wire-delay distribution -----------------------

// Fig7Result compares the classical metrics to the golden distribution on
// one long net driven and loaded by INVx4.
type Fig7Result struct {
	Elmore    float64 // including the load pin cap
	D2M       float64
	Moments   stats.Moments
	Quantiles map[int]float64
	Centres   []float64
	Density   []float64
}

// RunFig7 reproduces Fig. 7: on a long interconnect the deterministic
// Elmore number sits near the distribution mean while the +3σ quantile is
// far above it — the miscorrelation the wire calibration corrects.
func (c *Context) RunFig7() (*Fig7Result, error) {
	sc, err := c.buildWireStage("INVx4", "INVx4", 0xf17, 20e-12)
	if err != nil {
		return nil, err
	}
	// Replace the random tree with a long 300 µm line so the wire delay is
	// in the tens of picoseconds like the paper's example.
	par := layout.Default28nm()
	tree := lineTree("fig7", par, 300, 12)
	leaf := len(tree.Nodes) - 1
	lc := c.Cfg.Lib.MustCell("INVx4")
	sc.Stage.Tree = tree
	sc.Stage.Loads[0].Leaf = leaf
	withPin := tree.Clone()
	withPin.Nodes[leaf].C += lc.PinCap("A")
	sc.Elmore = withPin.Elmore(leaf)

	samples, err := wire.MCStage(context.Background(), c.Cfg, sc.Stage, c.Profile.EvalSamples, c.Seed^0x716)
	if err != nil {
		return nil, err
	}
	lo, hi := stats.MinMax(samples.Wire)
	centres, density, err := stats.Histogram(samples.Wire, 40, lo, hi)
	if err != nil {
		return nil, err
	}
	return &Fig7Result{
		Elmore:    sc.Elmore,
		D2M:       withPin.D2M(leaf),
		Moments:   stats.ComputeMoments(samples.Wire),
		Quantiles: stats.SigmaQuantiles(samples.Wire),
		Centres:   centres,
		Density:   density,
	}, nil
}

// Format renders the comparison.
func (r *Fig7Result) Format() string {
	var sb strings.Builder
	sb.WriteString("Fig. 7: Elmore vs golden wire-delay distribution (INVx4 driver/load, 300um net)\n")
	sb.WriteString(fmt.Sprintf("Elmore  = %8.3f ps\n", r.Elmore*1e12))
	sb.WriteString(fmt.Sprintf("D2M     = %8.3f ps\n", r.D2M*1e12))
	sb.WriteString(fmt.Sprintf("mean    = %8.3f ps   sigma = %.3f ps (sigma/mu = %.3f)\n",
		r.Moments.Mean*1e12, r.Moments.Std*1e12, r.Moments.Std/r.Moments.Mean))
	sb.WriteString(fmt.Sprintf("-3sigma = %8.3f ps   +3sigma = %.3f ps\n",
		r.Quantiles[-3]*1e12, r.Quantiles[3]*1e12))
	sb.WriteString(fmt.Sprintf("Elmore error vs +3sigma quantile: %.1f%%\n",
		stats.RelErr(r.Elmore, r.Quantiles[3])))
	return sb.String()
}

// lineTree builds a uniform RC line of the given length (µm) in n segments
// (π-sections), its last node named like a RandomTree sink.
func lineTree(name string, par *layout.Parasitics, lenUm float64, n int) *rctree.Tree {
	t := rctree.NewTree(name, 0.05e-15)
	segLen := lenUm / float64(n)
	segR := par.ROhmPerUm * segLen
	segC := par.CfFPerUm * segLen
	cur := 0
	for i := 0; i < n; i++ {
		t.Nodes[cur].C += segC / 2
		nm := fmt.Sprintf("l%d", i)
		if i == n-1 {
			nm = "sink0"
		}
		cur = t.MustAddNode(nm, cur, segR, segC/2)
	}
	return t
}

// --- Fig. 8: wire delay vs driver/load strengths -----------------------------

// Fig8Cell is one (driver strength, load strength) measurement.
type Fig8Cell struct {
	DriverStrength int
	LoadStrength   int
	Mu, Sigma      float64
	XW             float64
}

// Fig8Result is the 3×3 strength sweep of the paper's Fig. 8.
type Fig8Result struct {
	Cells []Fig8Cell
}

// RunFig8 reproduces Fig. 8: the same RC tree measured with driver/load
// inverters of strength 1, 2 and 4. The paper's observations to confirm:
// σ_w/µ_w grows with the load strength and shrinks with the driver
// strength.
func (c *Context) RunFig8() (*Fig8Result, error) {
	res := &Fig8Result{}
	for _, ds := range []int{1, 2, 4} {
		for _, ls := range []int{1, 2, 4} {
			driver := fmt.Sprintf("INVx%d", ds)
			load := fmt.Sprintf("INVx%d", ls)
			sc, err := c.buildWireStage(driver, load, 0x818, 20e-12)
			if err != nil {
				return nil, err
			}
			seed := c.Seed ^ stdcell.KeyFromString(fmt.Sprintf("fig8:%d:%d", ds, ls))
			if err := c.measureWireScenario(sc, c.wireSamples(), seed); err != nil {
				return nil, err
			}
			res.Cells = append(res.Cells, Fig8Cell{
				DriverStrength: ds, LoadStrength: ls,
				Mu: sc.Mu, Sigma: sc.Sigma, XW: sc.XW,
			})
			c.logf("fig8 drv=x%d load=x%d: mu=%.3gps sigma/mu=%.3f", ds, ls, sc.Mu*1e12, sc.XW)
		}
	}
	return res, nil
}

// Format renders the sweep.
func (r *Fig8Result) Format() string {
	var sb strings.Builder
	sb.WriteString("Fig. 8: wire delay vs driver/load INV strength (same RC tree)\n")
	sb.WriteString(fmt.Sprintf("%8s %8s %10s %10s %10s\n", "driver", "load", "mu(ps)", "sigma(ps)", "sigma/mu"))
	for _, cell := range r.Cells {
		sb.WriteString(fmt.Sprintf("%8s %8s %10.3f %10.3f %10.4f\n",
			fmt.Sprintf("INVx%d", cell.DriverStrength), fmt.Sprintf("INVx%d", cell.LoadStrength),
			cell.Mu*1e12, cell.Sigma*1e12, cell.XW))
	}
	return sb.String()
}

// --- Fig. 9: errors of the fitted X_FI / X_FO coefficients ------------------

// Fig9Result reports how well the fitted linear combination (eq. 7)
// reproduces the measured wire variability on the driver sweep (X_FI role)
// and the load sweep (X_FO role).
type Fig9Result struct {
	DriverErrs map[string]float64 // per driver cell, load = INVx4
	LoadErrs   map[string]float64 // per load cell, driver = INVx4
	AvgXFIErr  float64
	AvgXFOErr  float64
}

// RunFig9 reproduces Fig. 9 from the cached calibration scenarios.
func (c *Context) RunFig9() (*Fig9Result, error) {
	cal, err := c.CalibrateWires()
	if err != nil {
		return nil, err
	}
	res := &Fig9Result{
		DriverErrs: map[string]float64{},
		LoadErrs:   map[string]float64{},
	}
	counts := map[string]int{}
	loadCounts := map[string]int{}
	for _, sc := range c.wireObs {
		pred, err := cal.XW(sc.Driver, sc.Load)
		if err != nil {
			return nil, err
		}
		e := stats.RelErr(pred, sc.XW)
		if sc.Load == "INVx4" {
			res.DriverErrs[sc.Driver] += e
			counts[sc.Driver]++
		}
		if sc.Driver == "INVx4" {
			res.LoadErrs[sc.Load] += e
			loadCounts[sc.Load]++
		}
	}
	var sumFI, sumFO float64
	for d, tot := range res.DriverErrs {
		res.DriverErrs[d] = tot / float64(counts[d])
		sumFI += res.DriverErrs[d]
	}
	for l, tot := range res.LoadErrs {
		res.LoadErrs[l] = tot / float64(loadCounts[l])
		sumFO += res.LoadErrs[l]
	}
	res.AvgXFIErr = sumFI / float64(len(res.DriverErrs))
	res.AvgXFOErr = sumFO / float64(len(res.LoadErrs))
	return res, nil
}

// Format renders the per-cell errors.
func (r *Fig9Result) Format() string {
	var sb strings.Builder
	sb.WriteString("Fig. 9: X_FI / X_FO estimation errors (% of measured sigma_w/mu_w)\n")
	sb.WriteString("driver sweep (load fixed INVx4):\n")
	for _, d := range sortedCellNames(r.DriverErrs) {
		sb.WriteString(fmt.Sprintf("  %-9s %6.2f%%\n", d, r.DriverErrs[d]))
	}
	sb.WriteString("load sweep (driver fixed INVx4):\n")
	for _, l := range sortedCellNames(r.LoadErrs) {
		sb.WriteString(fmt.Sprintf("  %-9s %6.2f%%\n", l, r.LoadErrs[l]))
	}
	sb.WriteString(fmt.Sprintf("average X_FI error = %.2f%%, average X_FO error = %.2f%%\n",
		r.AvgXFIErr, r.AvgXFOErr))
	return sb.String()
}

// --- Fig. 10: ±3σ wire delay accuracy on random RC circuits ------------------

// Fig10Row is one (tree, strength) verification point.
type Fig10Row struct {
	Tree     int
	Strength int
	ErrM3    float64 // our model, -3σ
	ErrP3    float64 // our model, +3σ
	ElmoreP3 float64 // raw Elmore vs +3σ (baseline contrast)
}

// Fig10Result is the full verification sweep plus averages.
type Fig10Result struct {
	Rows         []Fig10Row
	AvgM3, AvgP3 float64
	AvgElmoreP3  float64
}

// RunFig10 reproduces Fig. 10: five random RC interconnect circuits with
// FO1/FO2/FO4/FO8 driver/load constraints; our T_w(nσ) = (1+n·X_w)·Elmore
// against golden ±3σ, with the raw Elmore number as contrast.
func (c *Context) RunFig10() (*Fig10Result, error) {
	cal, err := c.CalibrateWires()
	if err != nil {
		return nil, err
	}
	res := &Fig10Result{}
	strengths := []int{1, 2, 4, 8}
	var n float64
	for ti := 0; ti < 5; ti++ {
		for _, s := range strengths {
			cellName := fmt.Sprintf("INVx%d", s)
			sc, err := c.buildWireStage(cellName, cellName, uint64(0xF10+ti*7), 20e-12)
			if err != nil {
				return nil, err
			}
			seed := c.Seed ^ stdcell.KeyFromString(fmt.Sprintf("fig10:%d:%d", ti, s))
			if err := c.measureWireScenario(sc, c.wireSamples(), seed); err != nil {
				return nil, err
			}
			xw, err := cal.XW(cellName, cellName)
			if err != nil {
				return nil, err
			}
			row := Fig10Row{
				Tree: ti, Strength: s,
				ErrM3:    stats.RelErr(wire.Quantile(sc.Elmore, xw, -3), sc.Quantiles[-3]),
				ErrP3:    stats.RelErr(wire.Quantile(sc.Elmore, xw, 3), sc.Quantiles[3]),
				ElmoreP3: stats.RelErr(sc.Elmore, sc.Quantiles[3]),
			}
			res.Rows = append(res.Rows, row)
			res.AvgM3 += row.ErrM3
			res.AvgP3 += row.ErrP3
			res.AvgElmoreP3 += row.ElmoreP3
			n++
			c.logf("fig10 tree=%d FO%d: ours -3s %.2f%% +3s %.2f%% (elmore vs +3s %.1f%%)",
				ti, s, row.ErrM3, row.ErrP3, row.ElmoreP3)
		}
	}
	res.AvgM3 /= n
	res.AvgP3 /= n
	res.AvgElmoreP3 /= n
	return res, nil
}

// Format renders the sweep.
func (r *Fig10Result) Format() string {
	var sb strings.Builder
	sb.WriteString("Fig. 10: +/-3sigma wire delay errors on 5 random RC circuits x FO1/2/4/8\n")
	sb.WriteString(fmt.Sprintf("%6s %6s %12s %12s %14s\n", "tree", "FO", "ours -3s(%)", "ours +3s(%)", "elmore +3s(%)"))
	for _, row := range r.Rows {
		sb.WriteString(fmt.Sprintf("%6d %6d %12.2f %12.2f %14.2f\n",
			row.Tree, row.Strength, row.ErrM3, row.ErrP3, row.ElmoreP3))
	}
	sb.WriteString(fmt.Sprintf("avg: ours -3s %.2f%%  +3s %.2f%%  | raw elmore vs +3s %.2f%%\n",
		r.AvgM3, r.AvgP3, r.AvgElmoreP3))
	return sb.String()
}
