package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/circuits"
	"repro/internal/layout"
	"repro/internal/netlist"
	"repro/internal/rctree"
	"repro/internal/sta"
	"repro/internal/stats"
	"repro/internal/stdcell"
	"repro/internal/timinglib"
)

// Table3Row is one circuit row of the paper's Table III.
type Table3Row struct {
	Name   string
	Nets   int
	Cells  int
	Stages int // critical path length

	// Golden reference (path MC).
	MCm3, MCp3 float64

	// Estimated +3σ path delay of each method.
	PT, ML, Corr float64
	OursM3       float64
	OursP3       float64

	// Errors (%) vs the golden references.
	ErrPT, ErrML, ErrCorr float64
	ErrOursM3, ErrOursP3  float64

	// Runtimes.
	TimeMC, TimeOurs time.Duration
	TimePT, TimeML   time.Duration
	TimeCorr         time.Duration
}

// Table3Result is the full reproduction of Table III.
type Table3Result struct {
	Rows []Table3Row
	// Averages of the error columns.
	AvgPT, AvgML, AvgCorr, AvgOursM3, AvgOursP3 float64
}

// circuitArtifacts bundles one benchmark prepared for timing.
type circuitArtifacts struct {
	nl    *netlist.Netlist
	trees map[string]*rctree.Tree
	timer *sta.Timer
	res   *sta.Result
	took  time.Duration
}

// prepareCircuit generates, places, extracts and times one benchmark.
func (c *Context) prepareCircuit(name string, lib *timinglib.File) (*circuitArtifacts, error) {
	nl, err := circuits.ByName(name)
	if err != nil {
		return nil, err
	}
	par := layout.Default28nm()
	pl, err := layout.Place(nl, par, c.Seed^stdcell.KeyFromString("place:"+name))
	if err != nil {
		return nil, err
	}
	trees, err := layout.Extract(nl, c.Cfg.Lib, par, pl)
	if err != nil {
		return nil, err
	}
	timer, err := sta.NewTimer(lib, nl, trees, sta.Options{})
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	res, err := timer.Analyze()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return &circuitArtifacts{nl: nl, trees: trees, timer: timer, res: res, took: time.Since(t0)}, nil
}

// trainMLWireModel trains the ML baseline on the wire calibration scenarios
// (its "sign-off training data").
func (c *Context) trainMLWireModel() (*baseline.MLWire, error) {
	if c.mlWire != nil {
		return c.mlWire, nil
	}
	if _, err := c.CalibrateWires(); err != nil {
		return nil, err
	}
	var samples []baseline.TrainSample
	for _, sc := range c.wireObs {
		dc := c.Cfg.Lib.Cell(sc.Driver)
		lc := c.Cfg.Lib.Cell(sc.Load)
		leaf := sc.Stage.Loads[0].Leaf
		withPin := sc.Stage.Tree.Clone()
		withPin.Nodes[leaf].C += lc.PinCap(lc.Inputs[0])
		feats := baseline.WireFeatures(withPin, leaf, dc.Strength, lc.PinCap(lc.Inputs[0]), sc.Stage.InSlew)
		samples = append(samples, baseline.TrainSample{
			Features: feats,
			Targets:  []float64{sc.Mu, sc.Sigma},
		})
	}
	ml, err := baseline.TrainMLWire(samples, baseline.TrainOptions{Seed: c.Seed ^ 0x317})
	if err != nil {
		return nil, err
	}
	c.mlWire = ml
	return ml, nil
}

// mlPathDelay is the ML-based method of [9] applied to a path: LUT-based
// per-stage corner cell delays plus NN-predicted wire µ+3σ.
func (c *Context) mlPathDelay(p *sta.Path, ml *baseline.MLWire) float64 {
	var sum float64
	for _, s := range p.Stages {
		if s.Cell != "" {
			sum += s.CellMoments.Mean + 3*s.CellMoments.Std
		}
		dStrength := 4
		if s.Cell != "" {
			if info, err := c.file.Cell(s.Cell); err == nil {
				dStrength = info.Strength
			}
		}
		feats := baseline.WireFeatures(s.Tree, s.SinkLeaf, dStrength, s.SinkPinCap, s.InSlew)
		wq := ml.SigmaQuantile(feats, 3)
		if wq < 0 {
			wq = 0
		}
		sum += wq
	}
	return sum
}

// RunTable3 reproduces Table III over the given circuit names (nil = all
// twelve rows). Per circuit: build → place/extract → STA critical path →
// golden path MC (reference ±3σ) → PT / ML / correction / N-sigma numbers,
// errors, and runtimes.
func (c *Context) RunTable3(names []string) (*Table3Result, error) {
	if names == nil {
		names = circuits.AllTable3Names()
	}
	lib, err := c.BuildTimingFile()
	if err != nil {
		return nil, err
	}
	ml, err := c.trainMLWireModel()
	if err != nil {
		return nil, err
	}

	res := &Table3Result{}
	var corrModel *baseline.CorrectionModel

	for _, name := range names {
		art, err := c.prepareCircuit(name, lib)
		if err != nil {
			return nil, err
		}
		path := art.res.Critical
		nSamp := c.Profile.PathSamples
		if len(path.Stages) > 500 {
			// The very deep ripple paths (ADD/SUB/MUL/DIV) cost one stage
			// transient per stage per sample; scale the golden effort down.
			nSamp = c.Profile.PathSamplesHuge
		}
		c.logf("table3 %s: %d cells, critical path %d stages, golden MC %d samples...",
			name, len(art.nl.Gates), len(path.Stages), nSamp)
		t0 := time.Now()
		golden, err := PathMC(c, path, nSamp, c.Seed^stdcell.KeyFromString("t3:"+name))
		if err != nil {
			return nil, fmt.Errorf("%s golden MC: %w", name, err)
		}
		mcTime := time.Since(t0)
		gq := golden.Quantiles()

		// Correction model is fitted once on the first circuit and applied
		// unchanged to the rest. Per the paper, the method "calibrates the
		// Elmore delay with the help of the PrimeTime report" — so the
		// calibration reference is the corner timer's number (sans its
		// global OCV margin), not golden Monte Carlo; the method inherits
		// the reference's per-stage pessimism.
		if corrModel == nil {
			ref := baseline.CornerPathDelay(path, baseline.CornerOptions{OCVMargin: 1})
			corrModel = baseline.FitCorrection(path, ref)
		}

		tPT := time.Now()
		pt := baseline.CornerPathDelay(path, baseline.CornerOptions{})
		ptTime := time.Since(tPT)
		tML := time.Now()
		mlDelay := c.mlPathDelay(path, ml)
		mlTime := time.Since(tML)
		tCorr := time.Now()
		corr := corrModel.PathDelay(path)
		corrTime := time.Since(tCorr)

		row := Table3Row{
			Name:   name,
			Nets:   art.nl.NumNets(),
			Cells:  len(art.nl.Gates),
			Stages: len(path.Stages),
			MCm3:   gq[-3], MCp3: gq[3],
			PT: pt, ML: mlDelay, Corr: corr,
			OursM3: path.Quantile(-3), OursP3: path.Quantile(3),
			TimeMC: mcTime, TimeOurs: art.took,
			TimePT: art.took + ptTime, TimeML: art.took + mlTime, TimeCorr: art.took + corrTime,
		}
		row.ErrPT = stats.RelErr(row.PT, row.MCp3)
		row.ErrML = stats.RelErr(row.ML, row.MCp3)
		row.ErrCorr = stats.RelErr(row.Corr, row.MCp3)
		row.ErrOursM3 = stats.RelErr(row.OursM3, row.MCm3)
		row.ErrOursP3 = stats.RelErr(row.OursP3, row.MCp3)
		res.Rows = append(res.Rows, row)
		c.logf("table3 %s: MC[%0.f,%0.f]ps PT %.1f%% ML %.1f%% corr %.1f%% ours %.1f/%.1f%% (MC %v, ours %v)",
			name, row.MCm3*1e12, row.MCp3*1e12, row.ErrPT, row.ErrML, row.ErrCorr,
			row.ErrOursM3, row.ErrOursP3, mcTime.Round(time.Millisecond), art.took.Round(time.Millisecond))
	}
	n := float64(len(res.Rows))
	for _, r := range res.Rows {
		res.AvgPT += r.ErrPT / n
		res.AvgML += r.ErrML / n
		res.AvgCorr += r.ErrCorr / n
		res.AvgOursM3 += r.ErrOursM3 / n
		res.AvgOursP3 += r.ErrOursP3 / n
	}
	return res, nil
}

// Format renders the table in the paper's layout.
func (r *Table3Result) Format() string {
	var sb strings.Builder
	sb.WriteString("TABLE III: path analysis on ISCAS85 + PULPino functional units\n")
	sb.WriteString(fmt.Sprintf("%-7s %6s %6s %6s | %8s %8s | %8s %8s %8s %8s %8s | %6s %6s %6s %6s %6s\n",
		"Path", "#Nets", "#Cells", "#Stg",
		"MC-3s", "MC+3s", "PT", "ML", "Corr", "Ours-3s", "Ours+3s",
		"ePT%", "eML%", "eCor%", "e-3s%", "e+3s%"))
	ps := func(x float64) string { return fmt.Sprintf("%.0f", x*1e12) }
	for _, row := range r.Rows {
		sb.WriteString(fmt.Sprintf("%-7s %6d %6d %6d | %8s %8s | %8s %8s %8s %8s %8s | %6.1f %6.1f %6.1f %6.1f %6.1f\n",
			row.Name, row.Nets, row.Cells, row.Stages,
			ps(row.MCm3), ps(row.MCp3),
			ps(row.PT), ps(row.ML), ps(row.Corr), ps(row.OursM3), ps(row.OursP3),
			row.ErrPT, row.ErrML, row.ErrCorr, row.ErrOursM3, row.ErrOursP3))
	}
	sb.WriteString(fmt.Sprintf("%-7s %6s %6s %6s | %8s %8s | %8s %8s %8s %8s %8s | %6.1f %6.1f %6.1f %6.1f %6.1f\n",
		"Avg.", "-", "-", "-", "-", "-", "-", "-", "-", "-", "-",
		r.AvgPT, r.AvgML, r.AvgCorr, r.AvgOursM3, r.AvgOursP3))
	sb.WriteString("\nRuntimes:\n")
	sb.WriteString(fmt.Sprintf("%-7s %12s %12s %12s %12s %12s %8s\n",
		"Path", "MC", "PT", "ML", "Corr", "Ours", "speedup"))
	for _, row := range r.Rows {
		speed := float64(row.TimeMC) / float64(row.TimeOurs)
		sb.WriteString(fmt.Sprintf("%-7s %12v %12v %12v %12v %12v %7.0fX\n",
			row.Name, row.TimeMC.Round(time.Millisecond), row.TimePT.Round(time.Millisecond),
			row.TimeML.Round(time.Millisecond), row.TimeCorr.Round(time.Millisecond),
			row.TimeOurs.Round(time.Millisecond), speed))
	}
	return sb.String()
}
