package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/stats"
)

// Rendering tests: every harness result must format into the table/figure
// layout cmd/repro prints, without panics and with the key fields present.

func TestTable2Format(t *testing.T) {
	r := &Table2Result{
		Rows: []Table2Row{{
			Cell: "NOR2x1", LSNm3: 5.04, LSNp3: 7.89,
			Burrm3: 11.66, Burrp3: 10.67, NSigmam3: 3.57, NSigmap3: 4.81,
		}},
		Avg: Table2Row{Cell: "Avg.", LSNm3: 5.5, NSigmap3: 2.73},
	}
	doc := r.Format()
	for _, want := range []string{"TABLE II", "NOR2x1", "Avg.", "11.66", "4.81"} {
		if !strings.Contains(doc, want) {
			t.Errorf("Table II rendering missing %q", want)
		}
	}
}

func TestTable3Format(t *testing.T) {
	r := &Table3Result{
		Rows: []Table3Row{{
			Name: "c432", Nets: 671, Cells: 655, Stages: 35,
			MCm3: 2e-9, MCp3: 3.5e-9, PT: 4.2e-9, ML: 4e-9, Corr: 3.9e-9,
			OursM3: 2.1e-9, OursP3: 3.6e-9,
			ErrPT: 20, ErrML: 14, ErrCorr: 11, ErrOursM3: 5, ErrOursP3: 3,
			TimeMC: 3 * time.Second, TimeOurs: 10 * time.Millisecond,
			TimePT: 11 * time.Millisecond, TimeML: 12 * time.Millisecond,
			TimeCorr: 13 * time.Millisecond,
		}},
		AvgPT: 20, AvgML: 14, AvgCorr: 11, AvgOursM3: 5, AvgOursP3: 3,
	}
	doc := r.Format()
	for _, want := range []string{"TABLE III", "c432", "Runtimes", "speedup", "300X"} {
		if !strings.Contains(doc, want) {
			t.Errorf("Table III rendering missing %q", want)
		}
	}
}

func TestFigureFormats(t *testing.T) {
	f2 := &Fig2Result{Series: []Fig2Series{{
		Vdd:     0.6,
		Moments: stats.Moments{Mean: 15e-12, Std: 3e-12, Skewness: 1.1, Kurtosis: 5},
		Quantiles: map[int]float64{
			-3: 9e-12, -2: 10e-12, -1: 12e-12, 0: 14e-12, 1: 17e-12, 2: 21e-12, 3: 27e-12,
		},
	}}}
	if doc := f2.Format(); !strings.Contains(doc, "0.60") || !strings.Contains(doc, "Fig. 2") {
		t.Error("Fig2 rendering broken")
	}

	f7 := &Fig7Result{
		Elmore: 22e-12, D2M: 18e-12,
		Moments:   stats.Moments{Mean: 23e-12, Std: 3e-12},
		Quantiles: map[int]float64{-3: 16e-12, 3: 31.65e-12},
	}
	doc := f7.Format()
	if !strings.Contains(doc, "31.650") || !strings.Contains(doc, "Elmore") {
		t.Errorf("Fig7 rendering broken:\n%s", doc)
	}

	f8 := &Fig8Result{Cells: []Fig8Cell{{DriverStrength: 1, LoadStrength: 4, Mu: 2e-12, Sigma: 0.3e-12, XW: 0.15}}}
	if doc := f8.Format(); !strings.Contains(doc, "INVx1") || !strings.Contains(doc, "0.1500") {
		t.Error("Fig8 rendering broken")
	}

	f9 := &Fig9Result{
		DriverErrs: map[string]float64{"INVx1": 1.9},
		LoadErrs:   map[string]float64{"NAND2x2": 3.3},
		AvgXFIErr:  1.92, AvgXFOErr: 3.31,
	}
	if doc := f9.Format(); !strings.Contains(doc, "X_FI") || !strings.Contains(doc, "1.92") {
		t.Error("Fig9 rendering broken")
	}

	f10 := &Fig10Result{
		Rows:  []Fig10Row{{Tree: 0, Strength: 4, ErrM3: 1.6, ErrP3: 2.4, ElmoreP3: 30}},
		AvgM3: 1.61, AvgP3: 2.39, AvgElmoreP3: 30,
	}
	if doc := f10.Format(); !strings.Contains(doc, "1.61") || !strings.Contains(doc, "elmore") {
		t.Error("Fig10 rendering broken")
	}

	f11 := &Fig11Result{Wires: []Fig11Wire{{
		Index: 1, Net: "n42", GoldenP3: 3e-12, OursP3: 3.1e-12, Elmore: 2.2e-12,
		ErrOurs: 3.3, ErrElm: 26.7,
	}}}
	if doc := f11.Format(); !strings.Contains(doc, "n42") || !strings.Contains(doc, "26.70") {
		t.Error("Fig11 rendering broken")
	}

	ac := &AblationCalibResult{LUTErrM3: 2, LUTErrP3: 3, PolyErrM3: 5, PolyErrP3: 8, Probes: 4}
	if doc := ac.Format(); !strings.Contains(doc, "polynomial") {
		t.Error("calibration ablation rendering broken")
	}
	aw := &AblationWireResult{FittedErr: 3, PriorOnlyErr: 9, DriverOnlyErr: 14, Scenarios: 10}
	if doc := aw.Format(); !strings.Contains(doc, "Pelgrom") {
		t.Error("wire ablation rendering broken")
	}
}

func TestCSVEmitters(t *testing.T) {
	t2 := &Table2Result{Rows: []Table2Row{{Cell: "NOR2x1", LSNm3: 5, GoldenP3: 3e-11}}}
	var buf strings.Builder
	if err := t2.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cell,lsn_m3_pct") || !strings.Contains(buf.String(), "NOR2x1") {
		t.Fatalf("table2 csv:\n%s", buf.String())
	}

	t3 := &Table3Result{Rows: []Table3Row{{
		Name: "c432", Nets: 1, Cells: 2, Stages: 3,
		TimeMC: 2 * time.Second, TimeOurs: 9 * time.Millisecond,
	}}}
	buf.Reset()
	if err := t3.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[1], "c432,1,2,3") {
		t.Fatalf("table3 csv:\n%s", buf.String())
	}

	f10 := &Fig10Result{Rows: []Fig10Row{{Tree: 1, Strength: 4, ErrM3: 1.5}}}
	buf.Reset()
	if err := f10.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1,4,1.5") {
		t.Fatalf("fig10 csv:\n%s", buf.String())
	}
}
