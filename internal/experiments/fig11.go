package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/stats"
	"repro/internal/stdcell"
	"repro/internal/wire"
)

// Fig11Wire is one wire of the c432 critical path with the +3σ delay of
// each estimator.
type Fig11Wire struct {
	Index    int
	Net      string
	GoldenP3 float64
	OursP3   float64
	Elmore   float64
	ErrOurs  float64
	ErrElm   float64
}

// Fig11Result compares per-wire +3σ estimates along the c432 critical path.
type Fig11Result struct {
	Wires []Fig11Wire
}

// RunFig11 reproduces Fig. 11: for every wire on the c432 critical path,
// the +3σ wire delay from golden stage MC vs the N-sigma wire model vs raw
// Elmore (which, carrying no variability, undershoots the +3σ point).
func (c *Context) RunFig11() (*Fig11Result, error) {
	lib, err := c.BuildTimingFile()
	if err != nil {
		return nil, err
	}
	art, err := c.prepareCircuit("c432", lib)
	if err != nil {
		return nil, err
	}
	path := art.res.Critical
	stages, err := buildMCStages(c, path)
	if err != nil {
		return nil, err
	}
	res := &Fig11Result{}
	maxWires := 10 // the paper plots ~10 wires of the path
	for si, s := range path.Stages {
		if len(res.Wires) >= maxWires {
			break
		}
		if s.Elmore <= 0 {
			continue
		}
		st := stages[si].tmpl
		st.InSlew = s.InSlew
		ss, err := wire.MCStage(context.Background(), c.Cfg, &st, c.wireSamples(),
			c.Seed^stdcell.KeyFromString(fmt.Sprintf("fig11:%d", si)))
		if err != nil {
			return nil, fmt.Errorf("fig11 stage %d: %w", si, err)
		}
		gq := stats.SigmaQuantiles(ss.Wire)
		ours := (1 + 3*s.XW) * s.Elmore
		w := Fig11Wire{
			Index:    len(res.Wires) + 1,
			Net:      s.Net,
			GoldenP3: gq[3],
			OursP3:   ours,
			Elmore:   s.Elmore,
			ErrOurs:  stats.RelErr(ours, gq[3]),
			ErrElm:   stats.RelErr(s.Elmore, gq[3]),
		}
		res.Wires = append(res.Wires, w)
		c.logf("fig11 wire%d (%s): golden +3s %.3fps ours %.3fps (%.1f%%) elmore %.3fps (%.1f%%)",
			w.Index, w.Net, w.GoldenP3*1e12, w.OursP3*1e12, w.ErrOurs, w.Elmore*1e12, w.ErrElm)
	}
	return res, nil
}

// Format renders the per-wire comparison.
func (r *Fig11Result) Format() string {
	var sb strings.Builder
	sb.WriteString("Fig. 11: +3sigma prediction error per wire on the c432 critical path\n")
	sb.WriteString(fmt.Sprintf("%6s %-14s %12s %12s %12s %10s %10s\n",
		"wire", "net", "golden(ps)", "ours(ps)", "elmore(ps)", "ours err%", "elm err%"))
	for _, w := range r.Wires {
		sb.WriteString(fmt.Sprintf("%6d %-14s %12.3f %12.3f %12.3f %10.2f %10.2f\n",
			w.Index, w.Net, w.GoldenP3*1e12, w.OursP3*1e12, w.Elmore*1e12, w.ErrOurs, w.ErrElm))
	}
	return sb.String()
}
