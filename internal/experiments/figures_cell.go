package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"repro/internal/charlib"
	"repro/internal/device"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/stdcell"
	"repro/internal/waveform"
)

// --- Fig. 2: inverter delay PDFs across supply voltages ---------------------

// Fig2Series is the delay distribution of the inverter at one supply.
type Fig2Series struct {
	Vdd       float64
	Moments   stats.Moments
	Quantiles map[int]float64
	// Histogram (bin centres in seconds, normalised density).
	Centres []float64
	Density []float64
}

// Fig2Result collects all voltage series.
type Fig2Result struct {
	Series []Fig2Series
}

// RunFig2 reproduces Fig. 2: the INVx1 delay distribution at V_dd from
// 0.5 V to 0.8 V (25 °C), showing the growing skew and tail as the supply
// approaches the threshold voltage.
func (c *Context) RunFig2() (*Fig2Result, error) {
	res := &Fig2Result{}
	for _, vdd := range []float64{0.5, 0.6, 0.7, 0.8} {
		tech := device.Default28nm()
		tech.Vdd = vdd
		cfg := &charlib.Config{
			Tech:    tech,
			Lib:     stdcell.NewLibrary(tech),
			Var:     c.Cfg.Var,
			Steps:   c.Cfg.Steps,
			Workers: c.Cfg.Workers,
		}
		cell := cfg.Lib.MustCell("INVx1")
		arc := charlib.Arc{Cell: "INVx1", Pin: "A", InEdge: waveform.Rising}
		smp, err := cfg.MCArc(context.Background(), arc, charlib.Reference.Slew, 4*cell.PinCap("A"),
			c.Profile.EvalSamples, c.Seed^uint64(vdd*1000))
		if err != nil {
			return nil, fmt.Errorf("fig2 vdd=%.2f: %w", vdd, err)
		}
		lo, hi := stats.MinMax(smp.Delay)
		centres, density, err := stats.Histogram(smp.Delay, 40, lo, hi)
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, Fig2Series{
			Vdd:       vdd,
			Moments:   smp.Moments(),
			Quantiles: smp.SigmaQuantiles(),
			Centres:   centres,
			Density:   density,
		})
		c.logf("fig2 vdd=%.2f: mu=%.3gps sigma=%.3gps skew=%.2f kurt=%.2f",
			vdd, smp.Moments().Mean*1e12, smp.Moments().Std*1e12,
			smp.Moments().Skewness, smp.Moments().Kurtosis)
	}
	return res, nil
}

// Format renders the per-voltage summary (the figure's content in numbers).
func (r *Fig2Result) Format() string {
	var sb strings.Builder
	sb.WriteString("Fig. 2: INVx1 delay distribution vs supply voltage (FO4 load, 25C)\n")
	sb.WriteString(fmt.Sprintf("%6s %10s %10s %8s %8s %10s %10s %10s\n",
		"Vdd", "mu(ps)", "sigma(ps)", "skew", "kurt", "-2s(ps)", "median", "+3s(ps)"))
	for _, s := range r.Series {
		sb.WriteString(fmt.Sprintf("%6.2f %10.3f %10.3f %8.2f %8.2f %10.3f %10.3f %10.3f\n",
			s.Vdd, s.Moments.Mean*1e12, s.Moments.Std*1e12,
			s.Moments.Skewness, s.Moments.Kurtosis,
			s.Quantiles[-2]*1e12, s.Quantiles[0]*1e12, s.Quantiles[3]*1e12))
	}
	return sb.String()
}

// --- Fig. 3: effect of skewness and kurtosis on the quantiles ---------------

// Fig3Point is one synthetic distribution with its quantile offsets from
// the Gaussian µ + nσ positions (in units of σ).
type Fig3Point struct {
	Label    string
	Skewness float64
	Kurtosis float64
	// Offset[level+3] = (q_level − (µ + level·σ))/σ
	Offset [7]float64
}

// Fig3Result sweeps skewness (at κ≈3) and kurtosis (at γ≈0).
type Fig3Result struct {
	SkewSweep []Fig3Point
	KurtSweep []Fig3Point
}

// RunFig3 reproduces Fig. 3: how nonzero skewness shifts the inner
// quantiles (±2σ inward) and excess kurtosis swings the ±3σ tails, using
// synthetic skew-normal (γ sweep) and Student-t (κ sweep) samples.
func (c *Context) RunFig3() (*Fig3Result, error) {
	const n = 200000
	r := rng.New(c.Seed ^ 0xf193)
	res := &Fig3Result{}

	sample := func(gen func(*rng.Stream) float64, label string) Fig3Point {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = gen(r)
		}
		m := stats.ComputeMoments(xs)
		q := stats.SigmaQuantiles(xs)
		var p Fig3Point
		p.Label = label
		p.Skewness = m.Skewness
		p.Kurtosis = m.Kurtosis
		for _, lvl := range stats.SigmaLevels {
			p.Offset[lvl+3] = (q[lvl] - (m.Mean + float64(lvl)*m.Std)) / m.Std
		}
		return p
	}

	// Skewness sweep: skew-normal via the delta representation.
	for _, alpha := range []float64{0, 2, 5} {
		delta := alpha / math.Sqrt(1+alpha*alpha)
		gen := func(rs *rng.Stream) float64 {
			z0 := rs.NormFloat64()
			z1 := rs.NormFloat64()
			return delta*math.Abs(z0) + math.Sqrt(1-delta*delta)*z1
		}
		res.SkewSweep = append(res.SkewSweep, sample(gen, fmt.Sprintf("skew-normal alpha=%.0f", alpha)))
	}
	// Kurtosis sweep: Student-t with decreasing dof (κ = 3 + 6/(ν−4)).
	for _, nu := range []int{60, 10, 6} {
		gen := func(rs *rng.Stream) float64 {
			var chi2 float64
			for i := 0; i < nu; i++ {
				z := rs.NormFloat64()
				chi2 += z * z
			}
			return rs.NormFloat64() / math.Sqrt(chi2/float64(nu))
		}
		res.KurtSweep = append(res.KurtSweep, sample(gen, fmt.Sprintf("student-t nu=%d", nu)))
	}
	return res, nil
}

// Format renders the quantile offsets.
func (r *Fig3Result) Format() string {
	var sb strings.Builder
	sb.WriteString("Fig. 3: quantile offsets (q_n - (mu+n*sigma))/sigma for synthetic distributions\n")
	hdr := fmt.Sprintf("%-24s %6s %6s |", "distribution", "skew", "kurt")
	for _, lvl := range stats.SigmaLevels {
		hdr += fmt.Sprintf(" %+d sig", lvl)
	}
	sb.WriteString(hdr + "\n")
	row := func(p Fig3Point) {
		line := fmt.Sprintf("%-24s %6.2f %6.2f |", p.Label, p.Skewness, p.Kurtosis)
		for _, lvl := range stats.SigmaLevels {
			line += fmt.Sprintf(" %+.3f", p.Offset[lvl+3])
		}
		sb.WriteString(line + "\n")
	}
	for _, p := range r.SkewSweep {
		row(p)
	}
	for _, p := range r.KurtSweep {
		row(p)
	}
	return sb.String()
}

// --- Fig. 4: moments vs operating conditions --------------------------------

// Fig4Point is the four moments at one operating condition.
type Fig4Point struct {
	Op      charlib.OpPoint
	Moments stats.Moments
}

// Fig4Result holds the two sweeps of the paper's Fig. 4.
type Fig4Result struct {
	SlewSweep []Fig4Point // load fixed at 0.4 fF
	LoadSweep []Fig4Point // slew fixed at 10 ps
}

// RunFig4 reproduces Fig. 4: the INVx1 delay moments as functions of the
// input slew (10–300 ps at 0.4 fF) and of the output load (0.1–6 fF at
// 10 ps); µ and σ respond near-linearly while γ and κ bend, motivating the
// bilinear/cubic split of eqs. (2)–(3).
func (c *Context) RunFig4() (*Fig4Result, error) {
	arc := charlib.Arc{Cell: "INVx1", Pin: "A", InEdge: waveform.Rising}
	res := &Fig4Result{}
	measure := func(slew, load float64, tag string) (Fig4Point, error) {
		smp, err := c.Cfg.MCArc(context.Background(), arc, slew, load, c.Profile.CharSamples,
			c.Seed^stdcell.KeyFromString(fmt.Sprintf("fig4:%s:%g:%g", tag, slew, load)))
		if err != nil {
			return Fig4Point{}, err
		}
		return Fig4Point{Op: charlib.OpPoint{Slew: slew, Load: load}, Moments: smp.Moments()}, nil
	}
	for _, s := range []float64{10e-12, 50e-12, 100e-12, 150e-12, 200e-12, 250e-12, 300e-12} {
		p, err := measure(s, 0.4e-15, "s")
		if err != nil {
			return nil, err
		}
		res.SlewSweep = append(res.SlewSweep, p)
	}
	for _, l := range []float64{0.1e-15, 0.5e-15, 1e-15, 2e-15, 3e-15, 4.5e-15, 6e-15} {
		p, err := measure(10e-12, l, "c")
		if err != nil {
			return nil, err
		}
		res.LoadSweep = append(res.LoadSweep, p)
	}
	return res, nil
}

// Format renders both sweeps.
func (r *Fig4Result) Format() string {
	var sb strings.Builder
	sb.WriteString("Fig. 4: INVx1 delay moments vs operating conditions\n")
	sb.WriteString("slew sweep (load = 0.4 fF):\n")
	sb.WriteString(fmt.Sprintf("%10s %10s %10s %8s %8s\n", "slew(ps)", "mu(ps)", "sigma(ps)", "skew", "kurt"))
	for _, p := range r.SlewSweep {
		sb.WriteString(fmt.Sprintf("%10.0f %10.3f %10.3f %8.3f %8.3f\n",
			p.Op.Slew*1e12, p.Moments.Mean*1e12, p.Moments.Std*1e12, p.Moments.Skewness, p.Moments.Kurtosis))
	}
	sb.WriteString("load sweep (slew = 10 ps):\n")
	sb.WriteString(fmt.Sprintf("%10s %10s %10s %8s %8s\n", "load(fF)", "mu(ps)", "sigma(ps)", "skew", "kurt"))
	for _, p := range r.LoadSweep {
		sb.WriteString(fmt.Sprintf("%10.2f %10.3f %10.3f %8.3f %8.3f\n",
			p.Op.Load*1e15, p.Moments.Mean*1e12, p.Moments.Std*1e12, p.Moments.Skewness, p.Moments.Kurtosis))
	}
	return sb.String()
}
