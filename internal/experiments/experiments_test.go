package experiments

import (
	"strings"
	"testing"

	"repro/internal/charlib"
	"repro/internal/waveform"
)

// tiny is an ultra-small profile so experiment plumbing tests finish in
// seconds; statistical tightness is covered by the Monte-Carlo tests of the
// lower-level packages.
var tiny = Profile{
	Name: "quick", CharSamples: 150, EvalSamples: 150,
	PathSamples: 6, PathSamplesHuge: 4,
	SlewGrid: []float64{10e-12, 100e-12, 300e-12, 600e-12},
	LoadGrid: []float64{0.1e-15, 0.4e-15, 3e-15, 10e-15},
}

func tinyCtx() *Context {
	ctx := NewContext(tiny, 3)
	ctx.Cfg.Steps = 220
	return ctx
}

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"quick", "standard", "paper", ""} {
		if _, err := ProfileByName(name); err != nil {
			t.Errorf("profile %q: %v", name, err)
		}
	}
	if _, err := ProfileByName("warp"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestCharacterizeArcCachesAndScalesLoads(t *testing.T) {
	ctx := tinyCtx()
	arc := charlib.Arc{Cell: "INVx4", Pin: "A", InEdge: waveform.Rising}
	a, err := ctx.CharacterizeArc(arc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ctx.CharacterizeArc(arc)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("characterisation not cached")
	}
	// Load axis must be scaled by strength 4 (plus the unscaled reference).
	var maxLoad float64
	for _, g := range a.Grid {
		if g.Op.Load > maxLoad {
			maxLoad = g.Op.Load
		}
	}
	if maxLoad < 4*10e-15*0.99 {
		t.Fatalf("x4 load axis tops at %v, want 40 fF", maxLoad)
	}
}

func TestFO4RatioPlausible(t *testing.T) {
	ctx := tinyCtx()
	r, err := ctx.FO4Ratio("INVx4")
	if err != nil {
		t.Fatal(err)
	}
	if r <= 0.01 || r > 1 {
		t.Fatalf("FO4 sigma/mu ratio %v implausible", r)
	}
	// Pelgrom ordering at cell level: the weak cell varies more.
	r1, err := ctx.FO4Ratio("INVx1")
	if err != nil {
		t.Fatal(err)
	}
	if r1 <= r {
		t.Errorf("INVx1 ratio %v not above INVx4 ratio %v", r1, r)
	}
}

func TestRunFig3Shape(t *testing.T) {
	ctx := tinyCtx()
	res, err := ctx.RunFig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SkewSweep) != 3 || len(res.KurtSweep) != 3 {
		t.Fatalf("sweep sizes: %d, %d", len(res.SkewSweep), len(res.KurtSweep))
	}
	// Higher alpha ⇒ more skew; quantile offsets grow in the +3σ tail.
	if !(res.SkewSweep[2].Skewness > res.SkewSweep[1].Skewness) {
		t.Error("skew sweep not increasing")
	}
	// Heavier tails ⇒ the ±3σ offsets move outward symmetrically.
	heavy := res.KurtSweep[2]
	if !(heavy.Offset[6] > 0.3 && heavy.Offset[0] < -0.3) {
		t.Errorf("kurtosis effect on ±3σ missing: %+v", heavy.Offset)
	}
	if !strings.Contains(res.Format(), "student-t") {
		t.Error("Format lost series labels")
	}
}

func TestWireScenarioAndCalibrationPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("golden MC pipeline")
	}
	ctx := tinyCtx()
	sc, err := ctx.buildWireStage("INVx2", "INVx4", 11, 20e-12)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Elmore <= 0 {
		t.Fatal("scenario Elmore not positive")
	}
	if err := ctx.measureWireScenario(sc, 60, 5); err != nil {
		t.Fatal(err)
	}
	if sc.Mu <= 0 || sc.XW <= 0 || len(sc.Quantiles) != 7 {
		t.Fatalf("scenario stats: %+v", sc)
	}
}

func TestCalibrationScenarioCoverage(t *testing.T) {
	ctx := tinyCtx()
	pairs := ctx.calibrationScenarios()
	cells := ctx.WireTrainingCells()
	haveDrv := map[string]bool{}
	haveLoad := map[string]bool{}
	vsINVx4Drv := map[string]bool{}
	vsINVx4Load := map[string]bool{}
	seen := map[[2]string]bool{}
	for _, p := range pairs {
		if seen[p] {
			t.Fatalf("duplicate scenario %v", p)
		}
		seen[p] = true
		haveDrv[p[0]] = true
		haveLoad[p[1]] = true
		if p[1] == "INVx4" {
			vsINVx4Drv[p[0]] = true
		}
		if p[0] == "INVx4" {
			vsINVx4Load[p[1]] = true
		}
	}
	for _, c := range cells {
		if !haveDrv[c] || !haveLoad[c] {
			t.Errorf("cell %s missing from driver or load role", c)
		}
		if !vsINVx4Drv[c] || !vsINVx4Load[c] {
			t.Errorf("cell %s missing from the FO4 sweeps (Fig. 9 needs them)", c)
		}
	}
}

func TestPrepareCircuitSmallRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("characterises a mini library")
	}
	// Full pipeline on a tiny circuit: characterise only the arcs a tiny
	// library needs would still be all 64, so this test is the expensive
	// one; keep the profile minimal.
	ctx := tinyCtx()
	lib, err := ctx.BuildTimingFile()
	if err != nil {
		t.Fatal(err)
	}
	if len(lib.Arcs) != 64 {
		t.Fatalf("library has %d arcs want 64", len(lib.Arcs))
	}
	art, err := ctx.prepareCircuit("c432", lib)
	if err != nil {
		t.Fatal(err)
	}
	p := art.res.Critical
	if len(p.Stages) < 5 {
		t.Fatalf("critical path suspiciously short: %d stages", len(p.Stages))
	}
	// At this sample count the per-level quantile fits are noisy; assert
	// the coarse ordering only (tight ordering is covered by the synthetic
	// nsigma tests and the quick-profile runs).
	if p.Quantile(3) <= p.Quantile(-3) || p.Quantile(0) <= 0 {
		t.Fatalf("path quantiles degenerate: -3s=%v 0s=%v +3s=%v",
			p.Quantile(-3), p.Quantile(0), p.Quantile(3))
	}
	// Golden path MC at token depth: just proves the chain simulates.
	golden, err := PathMC(ctx, p, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range golden.Total {
		if v <= 0 {
			t.Fatalf("golden path sample %v", v)
		}
	}
}
