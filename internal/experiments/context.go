// Package experiments contains the harnesses that regenerate every table
// and figure of the paper's evaluation (Table II, Table III, Figs. 2–4 and
// 7–11), shared by cmd/repro and the top-level benchmarks. Each harness
// returns a typed result plus a formatted text rendering that mirrors the
// paper's presentation, and EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/baseline"
	"repro/internal/charlib"
	"repro/internal/nsigma"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/stdcell"
	"repro/internal/timinglib"
	"repro/internal/waveform"
	"repro/internal/wire"
)

// Profile scales the Monte-Carlo effort of every experiment.
type Profile struct {
	Name string
	// CharSamples per characterisation grid point (paper: 10k).
	CharSamples int
	// EvalSamples for golden verification distributions.
	EvalSamples int
	// PathSamples for golden critical-path Monte Carlo.
	PathSamples int
	// PathSamplesHuge for the very deep MUL/DIV paths.
	PathSamplesHuge int
	// SlewGrid / LoadGrid axes for characterisation.
	SlewGrid []float64
	LoadGrid []float64
}

// Profiles selectable from the command line.
var (
	// Quick is sized for CI smoke runs: minutes, noisy tails.
	Quick = Profile{
		Name: "quick", CharSamples: 500, EvalSamples: 1000,
		PathSamples: 150, PathSamplesHuge: 30,
		SlewGrid: []float64{10e-12, 100e-12, 300e-12, 600e-12},
		LoadGrid: []float64{0.1e-15, 0.4e-15, 2e-15, 6e-15, 10e-15},
	}
	// Standard is the default reproduction profile.
	Standard = Profile{
		Name: "standard", CharSamples: 2500, EvalSamples: 4000,
		PathSamples: 500, PathSamplesHuge: 120,
		SlewGrid: charlib.DefaultSlewGrid(),
		LoadGrid: charlib.DefaultLoadGrid(),
	}
	// Paper matches the paper's 10k-sample characterisation.
	Paper = Profile{
		Name: "paper", CharSamples: 10000, EvalSamples: 10000,
		PathSamples: 1000, PathSamplesHuge: 250,
		SlewGrid: charlib.DefaultSlewGrid(),
		LoadGrid: charlib.DefaultLoadGrid(),
	}
)

// ProfileByName resolves a profile name.
func ProfileByName(name string) (Profile, error) {
	switch name {
	case "quick":
		return Quick, nil
	case "", "standard":
		return Standard, nil
	case "paper":
		return Paper, nil
	}
	return Profile{}, fmt.Errorf("experiments: unknown profile %q", name)
}

// Context owns the shared artefacts — the characterisation config and a
// lazily built coefficients file — so the table/figure harnesses don't
// re-characterise the library each time.
type Context struct {
	Cfg     *charlib.Config
	Profile Profile
	Seed    uint64
	// Log receives progress lines (nil silences them).
	Log io.Writer

	file     *timinglib.File
	arcChars map[string]*charlib.ArcChar
	// fo4Ratio caches σ/µ per cell under the FO4 constraint.
	fo4Ratio map[string]float64
	wireCal  *wire.Calibration
	// wireObs caches the golden calibration scenarios for the wire figures.
	wireObs []*wireScenario
	mlWire  *baseline.MLWire
}

// NewContext builds a Context over the default technology.
func NewContext(p Profile, seed uint64) *Context {
	return &Context{
		Cfg:      charlib.DefaultConfig(),
		Profile:  p,
		Seed:     seed,
		arcChars: make(map[string]*charlib.ArcChar),
		fo4Ratio: make(map[string]float64),
	}
}

func (c *Context) logf(format string, args ...any) {
	if c.Log != nil {
		fmt.Fprintf(c.Log, format+"\n", args...)
	}
}

// CharacterizeArc characterises (and caches) one arc over the profile grid.
// The load axis is scaled by the cell's drive strength so every cell covers
// its own FO1–FO8 range.
func (c *Context) CharacterizeArc(arc charlib.Arc) (*charlib.ArcChar, error) {
	return c.CharacterizeArcContext(context.Background(), arc)
}

// CharacterizeArcContext is CharacterizeArc under a cancelable context.
func (c *Context) CharacterizeArcContext(ctx context.Context, arc charlib.Arc) (*charlib.ArcChar, error) {
	key := timinglib.ArcKey(arc.Cell, arc.Pin, arc.InEdge)
	if ch, ok := c.arcChars[key]; ok {
		return ch, nil
	}
	loads := c.Profile.LoadGrid
	if cell := c.Cfg.Lib.Cell(arc.Cell); cell != nil {
		loads = charlib.ScaleLoads(loads, cell.Strength)
	}
	t0 := time.Now()
	ctx, span := obs.StartSpan(ctx, "characterize_arc",
		obs.A("arc", key), obs.A("samples", c.Profile.CharSamples))
	ch, err := c.Cfg.CharacterizeArc(ctx, arc, c.Profile.SlewGrid, loads,
		c.Profile.CharSamples, c.Seed^stdcell.KeyFromString(key))
	span.End()
	if err != nil {
		return nil, err
	}
	c.logf("characterized %s (%d points, %d samples/point) in %v",
		key, len(ch.Grid), c.Profile.CharSamples, time.Since(t0).Round(time.Millisecond))
	c.arcChars[key] = ch
	return ch, nil
}

// FO4Load returns the FO4 output load of a cell: four copies of its first
// input pin capacitance (the paper's "FO4 constraint").
func (c *Context) FO4Load(cell *stdcell.Cell) float64 {
	return 4 * cell.PinCap(cell.Inputs[0])
}

// FO4Ratio measures (and caches) σ/µ of a cell's delay under the FO4
// constraint at the reference input slew — the per-cell variability ratio
// the wire model's eq. (6) scales.
func (c *Context) FO4Ratio(cellName string) (float64, error) {
	if r, ok := c.fo4Ratio[cellName]; ok {
		return r, nil
	}
	cell := c.Cfg.Lib.Cell(cellName)
	if cell == nil {
		return 0, fmt.Errorf("experiments: unknown cell %q", cellName)
	}
	arc := charlib.Arc{Cell: cellName, Pin: cell.Inputs[0], InEdge: waveform.Rising}
	smp, err := c.Cfg.MCArc(context.Background(), arc, charlib.Reference.Slew, c.FO4Load(cell),
		c.Profile.EvalSamples, c.Seed^stdcell.KeyFromString("fo4:"+cellName))
	if err != nil {
		return 0, err
	}
	m := smp.Moments()
	r := m.Std / m.Mean
	c.fo4Ratio[cellName] = r
	return r, nil
}

// BuildTimingFile characterises every arc of the library and calibrates the
// wire model, producing the coefficients file. It is idempotent and cached.
func (c *Context) BuildTimingFile() (*timinglib.File, error) {
	f, _, err := c.BuildTimingFileContext(context.Background(), BuildFileOptions{})
	return f, err
}

// BuildFileOptions controls a fault-tolerant BuildTimingFileContext run.
type BuildFileOptions struct {
	// Resume, when non-nil, is a previously checkpointed coefficients file:
	// arcs already fitted there are copied over and not re-simulated.
	Resume *timinglib.File
	// CheckpointEvery, when > 0, invokes Checkpoint after every that many
	// newly fitted arcs (and once more after wire calibration completes).
	CheckpointEvery int
	// Checkpoint persists a partial coefficients file. It must be crash-safe
	// (timinglib.File.Save writes atomically). Errors abort the build.
	Checkpoint func(f *timinglib.File) error
	// SkipWire omits the wire X_FI/X_FO calibration — for diagnostics and
	// tests that only exercise the arc pipeline. The file's Wire stays nil.
	SkipWire bool
	// MaxArcs, when > 0, stops after that many newly fitted arcs — a bounded
	// smoke run for CI and tracing demos. The truncated file skips wire
	// calibration, keeps Checkpoint.Complete false (so a later run resumes
	// past the fitted arcs) and is not cached on the Context.
	MaxArcs int
}

// BuildTimingFileContext characterises every arc of the library and
// calibrates the wire model under a cancelable context, optionally resuming
// from a checkpointed file and checkpointing progress as it goes. It
// returns the coefficients file plus a structured resilience report
// (per-arc retries, quarantined samples, degraded grid points, skipped
// arcs, wall time). The result is cached on the Context; a cached file is
// returned with an empty report.
func (c *Context) BuildTimingFileContext(ctx context.Context, opts BuildFileOptions) (*timinglib.File, *resilience.Report, error) {
	report := &resilience.Report{}
	if c.file != nil {
		return c.file, report, nil
	}
	t0 := time.Now()
	ctx, span := obs.StartSpan(ctx, "build_timing_file",
		obs.A("profile", c.Profile.Name))
	defer span.End()
	f := timinglib.New(c.Cfg.Lib)
	f.Checkpoint = &timinglib.Checkpoint{Profile: c.Profile.Name, Seed: c.Seed}
	sinceCheckpoint := 0
	checkpoint := func(force bool) error {
		if opts.Checkpoint == nil || opts.CheckpointEvery <= 0 {
			return nil
		}
		if !force && sinceCheckpoint < opts.CheckpointEvery {
			return nil
		}
		sinceCheckpoint = 0
		return opts.Checkpoint(f)
	}
	fitted := 0
cells:
	for _, cell := range c.Cfg.Lib.Cells() {
		for _, pin := range cell.Inputs {
			for _, edge := range []waveform.Edge{waveform.Rising, waveform.Falling} {
				if err := ctx.Err(); err != nil {
					return nil, report, resilience.Wrap("build timing file", err)
				}
				key := timinglib.ArcKey(cell.Name, pin, edge)
				if opts.Resume != nil {
					if m, ok := opts.Resume.Arcs[key]; ok {
						f.Arcs[key] = m
						report.AddArc(&resilience.ArcReport{Arc: key, Skipped: true})
						continue
					}
				}
				ch, err := c.CharacterizeArcContext(ctx, charlib.Arc{Cell: cell.Name, Pin: pin, InEdge: edge})
				if err != nil {
					return nil, report, err
				}
				m, err := nsigma.FitArc(ch)
				if err != nil {
					return nil, report, err
				}
				f.AddArc(m)
				report.AddArc(ch.Report)
				sinceCheckpoint++
				if err := checkpoint(false); err != nil {
					return nil, report, fmt.Errorf("experiments: checkpoint: %w", err)
				}
				fitted++
				if opts.MaxArcs > 0 && fitted >= opts.MaxArcs {
					break cells
				}
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, report, resilience.Wrap("build timing file", err)
	}
	span.SetAttr("arcs_fitted", fitted)
	truncated := opts.MaxArcs > 0 && fitted >= opts.MaxArcs
	if truncated {
		// A bounded smoke run: the file is deliberately partial, so leave
		// Checkpoint.Complete false for resumability and keep the Context
		// uncached.
		if err := checkpoint(true); err != nil {
			return nil, report, fmt.Errorf("experiments: checkpoint: %w", err)
		}
		report.Wall = time.Since(t0)
		return f, report, nil
	}
	if !opts.SkipWire {
		_, wspan := obs.StartSpan(ctx, "wire_cal")
		cal, err := c.CalibrateWires()
		wspan.End()
		if err != nil {
			return nil, report, err
		}
		f.Wire = cal
	}
	f.Checkpoint.Complete = true
	if err := checkpoint(true); err != nil {
		return nil, report, fmt.Errorf("experiments: checkpoint: %w", err)
	}
	report.Wall = time.Since(t0)
	c.file = f
	return f, report, nil
}

// UseTimingFile injects a pre-built coefficients file (e.g. loaded from
// disk by cmd/repro) so experiments skip characterisation.
func (c *Context) UseTimingFile(f *timinglib.File) { c.file = f }

// sortedCellNames is a small helper for deterministic iteration.
func sortedCellNames(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// WireTrainingCells are the driver/load cells the wire calibration is
// fitted over: the inverter strength ladder (the paper constrains
// driver/load cells to FO1–FO8) plus one representative stacked cell per
// kind so X coefficients exist for every library cell.
func (c *Context) WireTrainingCells() []string {
	return []string{
		"INVx1", "INVx2", "INVx4", "INVx8",
		"NAND2x1", "NAND2x2", "NAND2x4", "NAND2x8",
		"NOR2x1", "NOR2x2", "NOR2x4", "NOR2x8",
		"AOI2x1", "AOI2x2", "AOI2x4", "AOI2x8",
	}
}
