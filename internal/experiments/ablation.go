package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/charlib"
	"repro/internal/nsigma"
	"repro/internal/stats"
	"repro/internal/stdcell"
	"repro/internal/waveform"
	"repro/internal/wire"
)

// AblationCalibResult compares the LUT moment calibration against the
// global polynomial form of eqs. (2)–(3) at off-grid operating points.
type AblationCalibResult struct {
	// Mean absolute ±3σ errors (%) vs golden MC across the probes.
	LUTErrM3, LUTErrP3   float64
	PolyErrM3, PolyErrP3 float64
	Probes               int
}

// RunAblationCalibration quantifies the design choice DESIGN.md calls out:
// storing the calibration as a LUT with local interpolation versus fitting
// eqs. (2)–(3) as one global response surface.
func (c *Context) RunAblationCalibration() (*AblationCalibResult, error) {
	res := &AblationCalibResult{}
	arcs := []charlib.Arc{
		{Cell: "INVx1", Pin: "A", InEdge: waveform.Rising},
		{Cell: "NAND2x2", Pin: "A", InEdge: waveform.Falling},
	}
	probes := []charlib.OpPoint{
		{Slew: 75e-12, Load: 0.8e-15},
		{Slew: 180e-12, Load: 4e-15},
	}
	for _, arc := range arcs {
		ch, err := c.CharacterizeArc(arc)
		if err != nil {
			return nil, err
		}
		am, err := nsigma.FitArc(ch)
		if err != nil {
			return nil, err
		}
		for pi, op := range probes {
			load := op.Load * float64(c.Cfg.Lib.MustCell(arc.Cell).Strength)
			smp, err := c.Cfg.MCArc(context.Background(), arc, op.Slew, load, c.Profile.EvalSamples,
				c.Seed^stdcell.KeyFromString(fmt.Sprintf("abl:%s:%d", arc, pi)))
			if err != nil {
				return nil, err
			}
			q := smp.SigmaQuantiles()
			res.LUTErrM3 += stats.RelErr(am.Quantile(-3, op.Slew, load), q[-3])
			res.LUTErrP3 += stats.RelErr(am.Quantile(3, op.Slew, load), q[3])
			res.PolyErrM3 += stats.RelErr(am.QuantileGlobalCalib(-3, op.Slew, load), q[-3])
			res.PolyErrP3 += stats.RelErr(am.QuantileGlobalCalib(3, op.Slew, load), q[3])
			res.Probes++
		}
	}
	n := float64(res.Probes)
	res.LUTErrM3 /= n
	res.LUTErrP3 /= n
	res.PolyErrM3 /= n
	res.PolyErrP3 /= n
	return res, nil
}

// Format renders the comparison.
func (r *AblationCalibResult) Format() string {
	var sb strings.Builder
	sb.WriteString("Ablation: LUT vs global-polynomial moment calibration (off-grid probes)\n")
	sb.WriteString(fmt.Sprintf("  LUT        -3s %.2f%%  +3s %.2f%%\n", r.LUTErrM3, r.LUTErrP3))
	sb.WriteString(fmt.Sprintf("  polynomial -3s %.2f%%  +3s %.2f%%\n", r.PolyErrM3, r.PolyErrP3))
	return sb.String()
}

// AblationWireResult compares the fitted wire model against its
// simplifications on the calibration scenarios.
type AblationWireResult struct {
	FittedErr     float64 // fitted X_FI/X_FO linear combination (eq. 7)
	PriorOnlyErr  float64 // Pelgrom prior, no fitting (eq. 5 used directly)
	DriverOnlyErr float64 // load term dropped (doubled driver half)
	Scenarios     int
}

// RunAblationWire quantifies what the fit and the load term buy over the
// closed-form Pelgrom prior.
func (c *Context) RunAblationWire() (*AblationWireResult, error) {
	cal, err := c.CalibrateWires()
	if err != nil {
		return nil, err
	}
	res := &AblationWireResult{}
	for _, sc := range c.wireObs {
		fitted, err := cal.XW(sc.Driver, sc.Load)
		if err != nil {
			return nil, err
		}
		dInfo := c.Cfg.Lib.MustCell(sc.Driver)
		lInfo := c.Cfg.Lib.MustCell(sc.Load)
		// Prior-only: each side contributes half its Pelgrom-predicted
		// variability ratio (prior × FO4 baseline).
		prior := 0.5*pelgrom(dInfo)*cal.R4 + 0.5*pelgrom(lInfo)*cal.R4
		// Driver-only: the fitted driver half doubled.
		driverOnly := 2 * cal.XFI[sc.Driver] * cal.CellRatio[sc.Driver]

		res.FittedErr += stats.RelErr(fitted, sc.XW)
		res.PriorOnlyErr += stats.RelErr(prior, sc.XW)
		res.DriverOnlyErr += stats.RelErr(driverOnly, sc.XW)
		res.Scenarios++
	}
	n := float64(res.Scenarios)
	res.FittedErr /= n
	res.PriorOnlyErr /= n
	res.DriverOnlyErr /= n
	return res, nil
}

func pelgrom(cell *stdcell.Cell) float64 {
	return wire.PelgromPrior(cell.Stack, cell.Strength)
}

// Format renders the comparison.
func (r *AblationWireResult) Format() string {
	var sb strings.Builder
	sb.WriteString("Ablation: wire variability model vs simplifications\n")
	sb.WriteString(fmt.Sprintf("  fitted X_FI/X_FO (eq.7)   %.2f%%\n", r.FittedErr))
	sb.WriteString(fmt.Sprintf("  Pelgrom prior only (eq.5) %.2f%%\n", r.PriorOnlyErr))
	sb.WriteString(fmt.Sprintf("  driver-only (no X_FO)     %.2f%%\n", r.DriverOnlyErr))
	sb.WriteString(fmt.Sprintf("  over %d golden scenarios\n", r.Scenarios))
	return sb.String()
}
