package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// CSV emitters so downstream tooling (plots, regression tracking) can
// consume the reproduction results without scraping the formatted tables.

// WriteCSV renders Table II as CSV.
func (r *Table2Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"cell", "lsn_m3_pct", "lsn_p3_pct", "burr_m3_pct", "burr_p3_pct",
		"nsigma_m3_pct", "nsigma_p3_pct", "gauss_m3_pct", "gauss_p3_pct",
		"golden_m3_s", "golden_p3_s",
	}); err != nil {
		return err
	}
	for _, row := range append(r.Rows, r.Avg) {
		rec := []string{
			row.Cell,
			f(row.LSNm3), f(row.LSNp3), f(row.Burrm3), f(row.Burrp3),
			f(row.NSigmam3), f(row.NSigmap3), f(row.GaussM3), f(row.GaussP3),
			f(row.GoldenM3), f(row.GoldenP3),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV renders Table III as CSV.
func (r *Table3Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"circuit", "nets", "cells", "stages",
		"mc_m3_s", "mc_p3_s", "pt_s", "ml_s", "corr_s", "ours_m3_s", "ours_p3_s",
		"err_pt_pct", "err_ml_pct", "err_corr_pct", "err_ours_m3_pct", "err_ours_p3_pct",
		"time_mc", "time_ours",
	}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		rec := []string{
			row.Name, strconv.Itoa(row.Nets), strconv.Itoa(row.Cells), strconv.Itoa(row.Stages),
			f(row.MCm3), f(row.MCp3), f(row.PT), f(row.ML), f(row.Corr), f(row.OursM3), f(row.OursP3),
			f(row.ErrPT), f(row.ErrML), f(row.ErrCorr), f(row.ErrOursM3), f(row.ErrOursP3),
			durStr(row.TimeMC), durStr(row.TimeOurs),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV renders the Fig. 10 sweep as CSV.
func (r *Fig10Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"tree", "strength", "ours_m3_pct", "ours_p3_pct", "elmore_p3_pct"}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		rec := []string{
			strconv.Itoa(row.Tree), strconv.Itoa(row.Strength),
			f(row.ErrM3), f(row.ErrP3), f(row.ElmoreP3),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return fmt.Sprintf("%.6g", v) }

func durStr(d time.Duration) string { return d.String() }
