package netlist

import "fmt"

// Index is the stable name→structure lookup an ECO flow edits through. Cell
// swaps and resizes change only a gate's Cell field — never connectivity —
// so an Index built once stays valid across any sequence of such edits,
// which is what lets the incremental timing engine address gates and nets
// by name in O(1) without re-walking the netlist.
type Index struct {
	nl      *Netlist
	gates   map[string]int
	drivers map[string]int
	fanout  map[string][]Sink
	inputs  map[string]bool
}

// BuildIndex constructs the lookup maps. Duplicate gate names are rejected:
// a netlist that cannot be addressed unambiguously cannot be edited safely.
func (n *Netlist) BuildIndex() (*Index, error) {
	idx := &Index{
		nl:      n,
		gates:   make(map[string]int, len(n.Gates)),
		drivers: n.DriverMap(),
		fanout:  n.FanoutMap(),
		inputs:  make(map[string]bool, len(n.Inputs)),
	}
	for gi := range n.Gates {
		name := n.Gates[gi].Name
		if prev, dup := idx.gates[name]; dup {
			return nil, fmt.Errorf("netlist %s: gates %d and %d share the name %q",
				n.Name, prev, gi, name)
		}
		idx.gates[name] = gi
	}
	for _, in := range n.Inputs {
		idx.inputs[in] = true
	}
	return idx, nil
}

// Gate returns the index of the named gate.
func (x *Index) Gate(name string) (int, bool) {
	gi, ok := x.gates[name]
	return gi, ok
}

// Driver returns the index of the gate driving net (absent for primary
// inputs).
func (x *Index) Driver(net string) (int, bool) {
	gi, ok := x.drivers[net]
	return gi, ok
}

// Fanout returns the sinks of a net in deterministic order.
func (x *Index) Fanout(net string) []Sink { return x.fanout[net] }

// IsInput reports whether net is a primary input.
func (x *Index) IsInput(net string) bool { return x.inputs[net] }

// HasNet reports whether net exists in the design (driven by a gate, or a
// primary input).
func (x *Index) HasNet(net string) bool {
	if _, ok := x.drivers[net]; ok {
		return true
	}
	return x.inputs[net]
}

// HasPOSink reports whether net directly feeds a primary output pad.
func (x *Index) HasPOSink(net string) bool {
	for _, s := range x.fanout[net] {
		if s.Gate < 0 {
			return true
		}
	}
	return false
}
