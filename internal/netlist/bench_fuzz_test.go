package netlist

import (
	"errors"
	"strings"
	"testing"
)

// FuzzParseBench pins the parser's robustness contract: arbitrary input
// never panics, every rejection is a typed *ParseError, and every accepted
// document yields a structurally valid (acyclic, fully driven) netlist.
func FuzzParseBench(f *testing.F) {
	seeds := []string{
		"INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n",
		"INPUT(G1)\nINPUT(G3)\nOUTPUT(G10)\nG10 = NAND(G1, G3)\n",
		"INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n",
		"INPUT(a)\nOUTPUT(y)\ny = AND(a, a, a, a, a)\n",
		"INPUT(a)\nOUTPUT(y)\ny = BUF(a)\n# trailing comment",
		"y = NAND(a b",
		"INPUT(",
		"OUTPUT)",
		"x = FROB(a)",
		"x = NAND()",
		"= NOT(a)",
		"INPUT(a)\nOUTPUT(a)\n",
		"INPUT(a)\nOUTPUT(y)\ny = NOT(y)\n",
		"INPUT(a)\na = NOT(a)\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		nl, err := ParseBench(strings.NewReader(src), "fuzz", nil)
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("ParseBench returned a non-typed error %T: %v", err, err)
			}
			return
		}
		if err := nl.Validate(); err != nil {
			t.Fatalf("accepted netlist fails validation: %v", err)
		}
	})
}
