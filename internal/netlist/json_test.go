package netlist

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	nl := chain()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nl); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(nl, got) {
		t.Fatalf("round trip changed the netlist:\n%+v\n%+v", nl, got)
	}
}

func TestJSONRejectsInvalid(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{nope")); err == nil {
		t.Fatal("garbage accepted")
	}
	// Structurally invalid (undriven output) must fail validation on read.
	bad := `{"name":"x","inputs":["a"],"outputs":["ghost"],"gates":[]}`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Fatal("invalid netlist accepted")
	}
	// And on write.
	nl := chain()
	nl.Outputs = append(nl.Outputs, "ghost")
	if err := WriteJSON(&bytes.Buffer{}, nl); err == nil {
		t.Fatal("invalid netlist serialised")
	}
}
