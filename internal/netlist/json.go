package netlist

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON serialises the netlist as indented JSON (the repository's
// native interchange format; see also WriteVerilog).
func WriteJSON(w io.Writer, nl *Netlist) error {
	if err := nl.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(nl)
}

// ReadJSON parses and validates a JSON netlist.
func ReadJSON(r io.Reader) (*Netlist, error) {
	var nl Netlist
	if err := json.NewDecoder(r).Decode(&nl); err != nil {
		return nil, fmt.Errorf("netlist: %w", err)
	}
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	return &nl, nil
}
