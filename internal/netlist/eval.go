package netlist

import (
	"fmt"
	"strings"
)

// Evaluate computes the boolean function of the netlist for one input
// assignment — the functional check that the structural generators (adder,
// multiplier, divider…) implement the arithmetic they claim. Cell logic is
// derived from the cell name's kind prefix (INV/NAND2/NOR2/AOI2).
func (n *Netlist) Evaluate(inputs map[string]bool) (map[string]bool, error) {
	values := make(map[string]bool, n.NumNets())
	for _, in := range n.Inputs {
		v, ok := inputs[in]
		if !ok {
			return nil, fmt.Errorf("netlist %s: missing input %s", n.Name, in)
		}
		values[in] = v
	}
	order, err := n.Levelize()
	if err != nil {
		return nil, err
	}
	for _, gi := range order {
		g := &n.Gates[gi]
		get := func(pin string) (bool, error) {
			net, ok := g.Pins[pin]
			if !ok {
				return false, fmt.Errorf("gate %s: missing pin %s", g.Name, pin)
			}
			v, ok := values[net]
			if !ok {
				return false, fmt.Errorf("gate %s: input net %s unevaluated", g.Name, net)
			}
			return v, nil
		}
		var out bool
		switch kind := kindOf(g.Cell); kind {
		case "INV":
			a, err := get("A")
			if err != nil {
				return nil, err
			}
			out = !a
		case "NAND2":
			a, err := get("A")
			if err != nil {
				return nil, err
			}
			b, err := get("B")
			if err != nil {
				return nil, err
			}
			out = !(a && b)
		case "NOR2":
			a, err := get("A")
			if err != nil {
				return nil, err
			}
			b, err := get("B")
			if err != nil {
				return nil, err
			}
			out = !(a || b)
		case "AOI2":
			a, err := get("A")
			if err != nil {
				return nil, err
			}
			b, err := get("B")
			if err != nil {
				return nil, err
			}
			cc, err := get("C")
			if err != nil {
				return nil, err
			}
			out = !((a && b) || cc)
		default:
			return nil, fmt.Errorf("gate %s: unknown cell kind %q", g.Name, g.Cell)
		}
		values[g.Output()] = out
	}
	outs := make(map[string]bool, len(n.Outputs))
	for _, o := range n.Outputs {
		outs[o] = values[o]
	}
	return outs, nil
}

// kindOf strips the strength suffix of a cell name (NAND2x4 → NAND2).
func kindOf(cell string) string {
	if i := strings.LastIndexByte(cell, 'x'); i > 0 {
		return cell[:i]
	}
	return cell
}
