package netlist

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/rng"
)

func TestVerilogRoundTripChain(t *testing.T) {
	nl := chain()
	var buf bytes.Buffer
	if err := WriteVerilog(&buf, nl); err != nil {
		t.Fatal(err)
	}
	got, err := ParseVerilog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != nl.Name || len(got.Gates) != len(nl.Gates) {
		t.Fatalf("round trip lost structure: %+v", got)
	}
	// Function must survive the round trip.
	for _, in := range []bool{false, true} {
		a, err := nl.Evaluate(map[string]bool{"in": in})
		if err != nil {
			t.Fatal(err)
		}
		b, err := got.Evaluate(map[string]bool{"in": in})
		if err != nil {
			t.Fatal(err)
		}
		if a["out"] != b["out"] {
			t.Fatalf("function changed for in=%v", in)
		}
	}
}

func TestVerilogRoundTripRandomFunction(t *testing.T) {
	// A bigger netlist with every cell kind: round-trip and compare the
	// boolean function on random vectors.
	src := `
module blob (a, b, c, y1, y2);
  input a, b, c;
  output y1, y2;
  wire w1, w2, w3;

  NAND2x2 U1 (.A(a), .B(b), .Y(w1));
  NOR2x1 U2 (.A(w1), .B(c), .Y(w2));
  AOI2x4 U3 (.A(a), .B(w2), .C(c), .Y(w3));
  INVx8 U4 (.A(w3), .Y(y1));
  NAND2x1 U5 (.A(w3), .B(w1), .Y(y2));
endmodule
`
	nl, err := ParseVerilog(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteVerilog(&buf, nl); err != nil {
		t.Fatal(err)
	}
	back, err := ParseVerilog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	for trial := 0; trial < 16; trial++ {
		in := map[string]bool{
			"a": r.Float64() < 0.5,
			"b": r.Float64() < 0.5,
			"c": r.Float64() < 0.5,
		}
		x, err := nl.Evaluate(in)
		if err != nil {
			t.Fatal(err)
		}
		y, err := back.Evaluate(in)
		if err != nil {
			t.Fatal(err)
		}
		if x["y1"] != y["y1"] || x["y2"] != y["y2"] {
			t.Fatalf("function mismatch on %v", in)
		}
	}
}

func TestVerilogMultiLineStatements(t *testing.T) {
	src := `
module m (a,
          y);
  input a;
  output y;
  INVx1 U1 (.A(a),
            .Y(y));
endmodule
`
	nl, err := ParseVerilog(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(nl.Gates) != 1 || nl.Gates[0].Pins["A"] != "a" {
		t.Fatalf("multi-line parse wrong: %+v", nl.Gates)
	}
}

func TestVerilogComments(t *testing.T) {
	src := `
module m (a, y); // ports
  input a;  // the input
  output y;
  INVx1 U1 (.A(a), .Y(y)); // an inverter
endmodule
`
	if _, err := ParseVerilog(strings.NewReader(src)); err != nil {
		t.Fatal(err)
	}
}

func TestVerilogRejects(t *testing.T) {
	cases := []string{
		// positional connections
		"module m (a, y);\n input a;\n output y;\n INVx1 U1 (a, y);\nendmodule\n",
		// behavioural content
		"module m (a, y);\n input a;\n output y;\n assign y = ~a;\nendmodule\n",
		// no module
		"INVx1 U1 (.A(a), .Y(y));\n",
		// no output pin
		"module m (a, y);\n input a;\n output y;\n INVx1 U1 (.A(a));\nendmodule\n",
		// duplicate pin
		"module m (a, y);\n input a;\n output y;\n INVx1 U1 (.A(a), .A(a), .Y(y));\nendmodule\n",
	}
	for _, src := range cases {
		if _, err := ParseVerilog(strings.NewReader(src)); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestSanitizeID(t *testing.T) {
	if sanitizeID("_map1") != "_map1" {
		t.Error("clean name mangled")
	}
	if got := sanitizeID("3bad"); got != "n3bad" {
		t.Errorf("leading digit: %q", got)
	}
	if got := sanitizeID("a.b:c"); got != "a_b_c" {
		t.Errorf("punctuation: %q", got)
	}
}
