// Package netlist represents gate-level combinational netlists mapped onto
// the stdcell library, with an ISCAS85 .bench reader (including technology
// mapping of AND/OR/XOR/BUF onto the inverting cell set) and structural
// utilities: levelisation, fan-out maps and validation.
package netlist

import (
	"fmt"
	"sort"
)

// Gate is one cell instance. Pins maps the cell's pin names (inputs and
// "Y") to net names.
type Gate struct {
	Name string            `json:"name"`
	Cell string            `json:"cell"`
	Pins map[string]string `json:"pins"`
}

// Output returns the net driven by the gate.
func (g *Gate) Output() string { return g.Pins["Y"] }

// InputNets returns the nets feeding the gate's input pins, sorted by pin
// name for determinism.
func (g *Gate) InputNets() []string {
	pins := make([]string, 0, len(g.Pins)-1)
	for p := range g.Pins {
		if p != "Y" {
			pins = append(pins, p)
		}
	}
	sort.Strings(pins)
	nets := make([]string, len(pins))
	for i, p := range pins {
		nets[i] = g.Pins[p]
	}
	return nets
}

// Netlist is a combinational gate-level circuit.
type Netlist struct {
	Name    string   `json:"name"`
	Inputs  []string `json:"inputs"`  // primary input nets
	Outputs []string `json:"outputs"` // primary output nets
	Gates   []Gate   `json:"gates"`
}

// NumNets counts distinct nets (primary inputs plus gate outputs).
func (n *Netlist) NumNets() int {
	seen := make(map[string]bool)
	for _, in := range n.Inputs {
		seen[in] = true
	}
	for i := range n.Gates {
		seen[n.Gates[i].Output()] = true
	}
	return len(seen)
}

// Sink is one fan-out endpoint of a net.
type Sink struct {
	Gate int    // index into Gates, or -1 for a primary output
	Pin  string // input pin on that gate ("" for a primary output)
}

// FanoutMap returns, for every net, its sinks in deterministic order.
func (n *Netlist) FanoutMap() map[string][]Sink {
	m := make(map[string][]Sink)
	for gi := range n.Gates {
		g := &n.Gates[gi]
		pins := make([]string, 0, len(g.Pins))
		for p := range g.Pins {
			if p != "Y" {
				pins = append(pins, p)
			}
		}
		sort.Strings(pins)
		for _, p := range pins {
			net := g.Pins[p]
			m[net] = append(m[net], Sink{Gate: gi, Pin: p})
		}
	}
	for _, out := range n.Outputs {
		m[out] = append(m[out], Sink{Gate: -1})
	}
	return m
}

// DriverMap returns the index of the gate driving each net (primary inputs
// are absent).
func (n *Netlist) DriverMap() map[string]int {
	m := make(map[string]int, len(n.Gates))
	for gi := range n.Gates {
		m[n.Gates[gi].Output()] = gi
	}
	return m
}

// Validate checks the structural invariants a timing flow relies on:
// single driver per net, every gate input driven, no combinational cycles,
// driven primary outputs.
func (n *Netlist) Validate() error {
	driven := make(map[string]string) // net -> driver description
	for _, in := range n.Inputs {
		if d, ok := driven[in]; ok {
			return fmt.Errorf("netlist %s: input %s conflicts with %s", n.Name, in, d)
		}
		driven[in] = "primary input"
	}
	for gi := range n.Gates {
		g := &n.Gates[gi]
		out := g.Output()
		if out == "" {
			return fmt.Errorf("netlist %s: gate %s has no output net", n.Name, g.Name)
		}
		if d, ok := driven[out]; ok {
			return fmt.Errorf("netlist %s: net %s driven by both %s and gate %s", n.Name, out, d, g.Name)
		}
		driven[out] = "gate " + g.Name
	}
	for gi := range n.Gates {
		for _, net := range n.Gates[gi].InputNets() {
			if _, ok := driven[net]; !ok {
				return fmt.Errorf("netlist %s: gate %s input net %s is undriven",
					n.Name, n.Gates[gi].Name, net)
			}
		}
	}
	for _, out := range n.Outputs {
		if _, ok := driven[out]; !ok {
			return fmt.Errorf("netlist %s: primary output %s is undriven", n.Name, out)
		}
	}
	if _, err := n.Levelize(); err != nil {
		return err
	}
	return nil
}

// Levelize returns gate indices in topological order (inputs before the
// gates they feed). It fails on combinational cycles.
func (n *Netlist) Levelize() ([]int, error) {
	drv := n.DriverMap()
	indeg := make([]int, len(n.Gates))
	succ := make([][]int, len(n.Gates))
	for gi := range n.Gates {
		for _, net := range n.Gates[gi].InputNets() {
			if di, ok := drv[net]; ok {
				succ[di] = append(succ[di], gi)
				indeg[gi]++
			}
		}
	}
	queue := make([]int, 0, len(n.Gates))
	for gi := range n.Gates {
		if indeg[gi] == 0 {
			queue = append(queue, gi)
		}
	}
	order := make([]int, 0, len(n.Gates))
	for len(queue) > 0 {
		gi := queue[0]
		queue = queue[1:]
		order = append(order, gi)
		for _, s := range succ[gi] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != len(n.Gates) {
		return nil, fmt.Errorf("netlist %s: combinational cycle detected", n.Name)
	}
	return order, nil
}

// Levels returns the logic depth of every gate (longest path from a primary
// input, in gate counts) and the overall depth.
func (n *Netlist) Levels() (map[int]int, int, error) {
	order, err := n.Levelize()
	if err != nil {
		return nil, 0, err
	}
	drv := n.DriverMap()
	lv := make(map[int]int, len(n.Gates))
	depth := 0
	for _, gi := range order {
		l := 0
		for _, net := range n.Gates[gi].InputNets() {
			if di, ok := drv[net]; ok {
				if cand := lv[di] + 1; cand > l {
					l = cand
				}
			}
		}
		lv[gi] = l
		if l+1 > depth {
			depth = l + 1
		}
	}
	return lv, depth, nil
}
