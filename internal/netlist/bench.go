package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// This file reads the ISCAS85 .bench netlist format:
//
//	INPUT(G1)
//	OUTPUT(G17)
//	G10 = NAND(G1, G3)
//	G11 = NOT(G10)
//
// and technology-maps it onto the stdcell library. The library is
// inverting-only (INV/NAND2/NOR2/AOI2), so non-inverting and wide gates are
// decomposed:
//
//	BUF      → INV·INV
//	AND(a,b) → INV(NAND2(a,b))
//	OR(a,b)  → INV(NOR2(a,b))
//	XOR(a,b) → NAND2(NAND2(a,m), NAND2(b,m)), m = NAND2(a,b)
//	XNOR     → XOR → INV
//	k-input  → balanced tree of 2-input gates
//
// Mapped gates default to the given drive strength.

// ParseError is the typed rejection of malformed netlist text input. The
// parser never panics on arbitrary input: every failure — bad syntax, an
// unsupported gate, a structurally invalid result — surfaces as a
// *ParseError (pinned down by FuzzParseBench).
type ParseError struct {
	Format string // input dialect, e.g. "bench"
	Line   int    // 1-based input line; 0 when not line-specific
	Reason string
}

// Error implements error.
func (e *ParseError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("%s line %d: %s", e.Format, e.Line, e.Reason)
	}
	return fmt.Sprintf("%s: %s", e.Format, e.Reason)
}

func benchErr(line int, format string, args ...any) *ParseError {
	return &ParseError{Format: "bench", Line: line, Reason: fmt.Sprintf(format, args...)}
}

// BenchOptions controls .bench technology mapping.
type BenchOptions struct {
	// Strength selects the drive strength of mapped cells (default 2).
	Strength int
}

// ParseBench reads a .bench document and returns the mapped netlist.
func ParseBench(r io.Reader, name string, opt *BenchOptions) (*Netlist, error) {
	strength := 2
	if opt != nil && opt.Strength > 0 {
		strength = opt.Strength
	}
	nl := &Netlist{Name: name}
	m := &mapper{nl: nl, strength: strength}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	lineNum := 0
	for sc.Scan() {
		lineNum++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(strings.ToUpper(line), "INPUT("):
			netName, err := insideParens(line)
			if err != nil {
				return nil, benchErr(lineNum, "%v", err)
			}
			nl.Inputs = append(nl.Inputs, netName)
		case strings.HasPrefix(strings.ToUpper(line), "OUTPUT("):
			netName, err := insideParens(line)
			if err != nil {
				return nil, benchErr(lineNum, "%v", err)
			}
			nl.Outputs = append(nl.Outputs, netName)
		default:
			if err := m.mapAssignment(line, lineNum); err != nil {
				return nil, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, benchErr(0, "read: %v", err)
	}
	if err := nl.Validate(); err != nil {
		return nil, benchErr(0, "%v", err)
	}
	return nl, nil
}

func insideParens(line string) (string, error) {
	open := strings.IndexByte(line, '(')
	closeIdx := strings.LastIndexByte(line, ')')
	if open < 0 || closeIdx <= open {
		return "", fmt.Errorf("malformed declaration %q", line)
	}
	return strings.TrimSpace(line[open+1 : closeIdx]), nil
}

type mapper struct {
	nl       *Netlist
	strength int
	auto     int
}

func (m *mapper) freshNet() string {
	m.auto++
	return fmt.Sprintf("_map%d", m.auto)
}

func (m *mapper) addGate(kind string, out string, ins ...string) {
	cell := fmt.Sprintf("%sx%d", kind, m.strength)
	pins := map[string]string{"Y": out}
	pinNames := []string{"A", "B", "C"}
	for i, in := range ins {
		pins[pinNames[i]] = in
	}
	m.nl.Gates = append(m.nl.Gates, Gate{
		Name: fmt.Sprintf("U%d", len(m.nl.Gates)+1),
		Cell: cell,
		Pins: pins,
	})
}

// inv emits an inverter driving a fresh (or given) net and returns the net.
func (m *mapper) inv(in, out string) string {
	if out == "" {
		out = m.freshNet()
	}
	m.addGate("INV", out, in)
	return out
}

// nand2 emits NAND2 and returns the output net.
func (m *mapper) nand2(a, b, out string) string {
	if out == "" {
		out = m.freshNet()
	}
	m.addGate("NAND2", out, a, b)
	return out
}

func (m *mapper) nor2(a, b, out string) string {
	if out == "" {
		out = m.freshNet()
	}
	m.addGate("NOR2", out, a, b)
	return out
}

// reduceTree folds a k-ary associative op into a balanced 2-input tree,
// where pair(a,b,out) emits one 2-input stage. The final stage drives out.
func (m *mapper) reduceTree(ins []string, out string, pair func(a, b, out string) string) string {
	if len(ins) == 1 {
		// Degenerate: single input; callers handle separately.
		return ins[0]
	}
	for len(ins) > 2 {
		var next []string
		for i := 0; i+1 < len(ins); i += 2 {
			next = append(next, pair(ins[i], ins[i+1], ""))
		}
		if len(ins)%2 == 1 {
			next = append(next, ins[len(ins)-1])
		}
		ins = next
	}
	return pair(ins[0], ins[1], out)
}

func (m *mapper) mapAssignment(line string, lineNum int) error {
	eq := strings.IndexByte(line, '=')
	if eq < 0 {
		return benchErr(lineNum, "expected assignment, got %q", line)
	}
	out := strings.TrimSpace(line[:eq])
	rhs := strings.TrimSpace(line[eq+1:])
	open := strings.IndexByte(rhs, '(')
	closeIdx := strings.LastIndexByte(rhs, ')')
	if open < 0 || closeIdx <= open {
		return benchErr(lineNum, "malformed gate %q", rhs)
	}
	op := strings.ToUpper(strings.TrimSpace(rhs[:open]))
	var ins []string
	for _, f := range strings.Split(rhs[open+1:closeIdx], ",") {
		f = strings.TrimSpace(f)
		if f != "" {
			ins = append(ins, f)
		}
	}
	if len(ins) == 0 {
		return benchErr(lineNum, "gate with no inputs")
	}

	switch op {
	case "NOT", "INV":
		m.inv(ins[0], out)
	case "BUF", "BUFF":
		m.inv(m.inv(ins[0], ""), out)
	case "NAND":
		if len(ins) == 1 {
			m.inv(ins[0], out)
			break
		}
		if len(ins) == 2 {
			m.nand2(ins[0], ins[1], out)
			break
		}
		// NAND(k) = NOT(AND(k)): AND-tree then final NAND on last pair.
		andOf := m.reduceTree(ins[:len(ins)-1], "", func(a, b, o string) string {
			return m.inv(m.nand2(a, b, ""), o)
		})
		m.nand2(andOf, ins[len(ins)-1], out)
	case "AND":
		if len(ins) == 1 {
			m.inv(m.inv(ins[0], ""), out)
			break
		}
		and2 := func(a, b, o string) string { return m.inv(m.nand2(a, b, ""), o) }
		m.reduceTree(ins, out, and2)
	case "NOR":
		if len(ins) == 1 {
			m.inv(ins[0], out)
			break
		}
		if len(ins) == 2 {
			m.nor2(ins[0], ins[1], out)
			break
		}
		orOf := m.reduceTree(ins[:len(ins)-1], "", func(a, b, o string) string {
			return m.inv(m.nor2(a, b, ""), o)
		})
		m.nor2(orOf, ins[len(ins)-1], out)
	case "OR":
		if len(ins) == 1 {
			m.inv(m.inv(ins[0], ""), out)
			break
		}
		or2 := func(a, b, o string) string { return m.inv(m.nor2(a, b, ""), o) }
		m.reduceTree(ins, out, or2)
	case "XOR":
		m.reduceTree(ins, out, m.xor2)
	case "XNOR":
		x := m.reduceTree(ins, "", m.xor2)
		m.inv(x, out)
	default:
		return benchErr(lineNum, "unsupported gate %q", op)
	}
	return nil
}

// xor2 maps a XOR b onto four NAND2 cells.
func (m *mapper) xor2(a, b, out string) string {
	if out == "" {
		out = m.freshNet()
	}
	mid := m.nand2(a, b, "")
	am := m.nand2(a, mid, "")
	bm := m.nand2(b, mid, "")
	m.nand2(am, bm, out)
	return out
}
