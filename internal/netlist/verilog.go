package netlist

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// This file reads and writes gate-level structural Verilog — the exchange
// format a Design-Compiler-style flow (the paper's netlist source) emits:
//
//	module c432 (pi0, pi1, ..., n42, n43);
//	  input pi0, pi1;
//	  output n42, n43;
//	  wire w1, w2;
//	  NAND2x2 U1 (.A(pi0), .B(pi1), .Y(w1));
//	endmodule
//
// The supported subset is instances of library cells with named port
// connections plus input/output/wire declarations; behavioural constructs
// are rejected.

// WriteVerilog serialises the netlist as structural Verilog.
func WriteVerilog(w io.Writer, nl *Netlist) error {
	if err := nl.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	ports := append(append([]string{}, nl.Inputs...), nl.Outputs...)
	fmt.Fprintf(bw, "module %s (%s);\n", sanitizeID(nl.Name), strings.Join(mapIDs(ports), ", "))
	fmt.Fprintf(bw, "  input %s;\n", strings.Join(mapIDs(nl.Inputs), ", "))
	fmt.Fprintf(bw, "  output %s;\n", strings.Join(mapIDs(nl.Outputs), ", "))

	// Internal wires: every gate output that is not a primary output.
	onPort := map[string]bool{}
	for _, p := range ports {
		onPort[p] = true
	}
	var wires []string
	for i := range nl.Gates {
		if out := nl.Gates[i].Output(); !onPort[out] {
			wires = append(wires, out)
		}
	}
	sort.Strings(wires)
	if len(wires) > 0 {
		fmt.Fprintf(bw, "  wire %s;\n", strings.Join(mapIDs(wires), ", "))
	}
	fmt.Fprintln(bw)
	for i := range nl.Gates {
		g := &nl.Gates[i]
		pins := make([]string, 0, len(g.Pins))
		for p := range g.Pins {
			pins = append(pins, p)
		}
		sort.Strings(pins)
		conns := make([]string, len(pins))
		for j, p := range pins {
			conns[j] = fmt.Sprintf(".%s(%s)", p, sanitizeID(g.Pins[p]))
		}
		fmt.Fprintf(bw, "  %s %s (%s);\n", g.Cell, sanitizeID(g.Name), strings.Join(conns, ", "))
	}
	fmt.Fprintf(bw, "endmodule\n")
	return bw.Flush()
}

// sanitizeID maps net/instance names onto Verilog identifiers; names
// emitted by this repository are already clean, but generated map names
// (e.g. "_map1") and dotted names get escaped-by-substitution.
func sanitizeID(s string) string {
	var sb strings.Builder
	for i, r := range s {
		ok := r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9'
		if i == 0 && r >= '0' && r <= '9' {
			sb.WriteByte('n') // identifiers cannot start with a digit
		}
		if ok {
			sb.WriteRune(r)
		} else {
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

func mapIDs(ss []string) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = sanitizeID(s)
	}
	return out
}

// ParseVerilog reads one structural Verilog module.
func ParseVerilog(r io.Reader) (*Netlist, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)

	// Join statements: Verilog statements end at ';' (or the module
	// header's ');'), so accumulate lines until one completes.
	var statements []string
	var cur strings.Builder
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		cur.WriteString(line)
		cur.WriteByte(' ')
		for {
			s := cur.String()
			i := strings.IndexByte(s, ';')
			if i < 0 {
				break
			}
			statements = append(statements, strings.TrimSpace(s[:i]))
			cur.Reset()
			cur.WriteString(s[i+1:])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if tail := strings.TrimSpace(cur.String()); tail != "" && tail != "endmodule" {
		return nil, fmt.Errorf("verilog: trailing content %q", tail)
	}

	nl := &Netlist{}
	for _, st := range statements {
		fields := strings.Fields(st)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "module":
			rest := strings.TrimSpace(st[len("module"):])
			if i := strings.IndexByte(rest, '('); i >= 0 {
				rest = rest[:i]
			}
			nl.Name = strings.TrimSpace(rest)
		case "input":
			nl.Inputs = append(nl.Inputs, splitIDList(st[len("input"):])...)
		case "output":
			nl.Outputs = append(nl.Outputs, splitIDList(st[len("output"):])...)
		case "wire":
			// declarations only; connectivity comes from instances
		case "endmodule":
		default:
			g, err := parseInstance(st)
			if err != nil {
				return nil, err
			}
			nl.Gates = append(nl.Gates, *g)
		}
	}
	if nl.Name == "" {
		return nil, fmt.Errorf("verilog: no module declaration")
	}
	return nl, nl.Validate()
}

func splitIDList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f != "" {
			out = append(out, f)
		}
	}
	return out
}

// parseInstance parses `CELL name (.A(n1), .B(n2), .Y(n3))`.
func parseInstance(st string) (*Gate, error) {
	open := strings.IndexByte(st, '(')
	if open < 0 || !strings.HasSuffix(strings.TrimSpace(st), ")") {
		return nil, fmt.Errorf("verilog: unsupported statement %q", st)
	}
	head := strings.Fields(st[:open])
	if len(head) != 2 {
		return nil, fmt.Errorf("verilog: malformed instance header %q", st[:open])
	}
	g := &Gate{Cell: head[0], Name: head[1], Pins: map[string]string{}}
	body := strings.TrimSpace(st[open+1:])
	body = strings.TrimSuffix(body, ")")
	for _, conn := range strings.Split(body, ",") {
		conn = strings.TrimSpace(conn)
		if conn == "" {
			continue
		}
		if !strings.HasPrefix(conn, ".") {
			return nil, fmt.Errorf("verilog: only named connections supported, got %q", conn)
		}
		p := strings.IndexByte(conn, '(')
		q := strings.LastIndexByte(conn, ')')
		if p < 0 || q <= p {
			return nil, fmt.Errorf("verilog: malformed connection %q", conn)
		}
		pin := strings.TrimSpace(conn[1:p])
		net := strings.TrimSpace(conn[p+1 : q])
		if pin == "" || net == "" {
			return nil, fmt.Errorf("verilog: empty pin or net in %q", conn)
		}
		if _, dup := g.Pins[pin]; dup {
			return nil, fmt.Errorf("verilog: duplicate pin %s on %s", pin, g.Name)
		}
		g.Pins[pin] = net
	}
	if _, ok := g.Pins["Y"]; !ok {
		return nil, fmt.Errorf("verilog: instance %s has no output pin Y", g.Name)
	}
	return g, nil
}
