package netlist

import (
	"strings"
	"testing"
)

// chain builds in → U1(INV) → m → U2(INV) → out.
func chain() *Netlist {
	return &Netlist{
		Name:    "chain",
		Inputs:  []string{"in"},
		Outputs: []string{"out"},
		Gates: []Gate{
			{Name: "U1", Cell: "INVx1", Pins: map[string]string{"A": "in", "Y": "m"}},
			{Name: "U2", Cell: "INVx1", Pins: map[string]string{"A": "m", "Y": "out"}},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := chain().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateMultiDriver(t *testing.T) {
	nl := chain()
	nl.Gates = append(nl.Gates, Gate{Name: "U3", Cell: "INVx1",
		Pins: map[string]string{"A": "in", "Y": "m"}})
	if err := nl.Validate(); err == nil || !strings.Contains(err.Error(), "driven by both") {
		t.Fatalf("multi-driver not caught: %v", err)
	}
}

func TestValidateUndrivenInput(t *testing.T) {
	nl := chain()
	nl.Gates[1].Pins["A"] = "ghost"
	if err := nl.Validate(); err == nil || !strings.Contains(err.Error(), "undriven") {
		t.Fatalf("undriven input not caught: %v", err)
	}
}

func TestValidateUndrivenOutput(t *testing.T) {
	nl := chain()
	nl.Outputs = append(nl.Outputs, "phantom")
	if err := nl.Validate(); err == nil {
		t.Fatal("undriven PO not caught")
	}
}

func TestValidateCycle(t *testing.T) {
	nl := &Netlist{
		Name:    "cyc",
		Inputs:  []string{"in"},
		Outputs: []string{"b"},
		Gates: []Gate{
			{Name: "U1", Cell: "NAND2x1", Pins: map[string]string{"A": "in", "B": "b", "Y": "a"}},
			{Name: "U2", Cell: "INVx1", Pins: map[string]string{"A": "a", "Y": "b"}},
		},
	}
	if err := nl.Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle not caught: %v", err)
	}
}

func TestLevelizeOrderProperty(t *testing.T) {
	nl := chain()
	order, err := nl.Levelize()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[int]int{}
	for i, gi := range order {
		pos[gi] = i
	}
	drv := nl.DriverMap()
	for gi := range nl.Gates {
		for _, net := range nl.Gates[gi].InputNets() {
			if di, ok := drv[net]; ok && pos[di] >= pos[gi] {
				t.Fatalf("gate %d scheduled before its driver %d", gi, di)
			}
		}
	}
}

func TestLevels(t *testing.T) {
	nl := chain()
	lv, depth, err := nl.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if depth != 2 || lv[0] != 0 || lv[1] != 1 {
		t.Fatalf("levels %v depth %d", lv, depth)
	}
}

func TestFanoutAndDriverMaps(t *testing.T) {
	nl := chain()
	fan := nl.FanoutMap()
	if len(fan["in"]) != 1 || fan["in"][0].Gate != 0 || fan["in"][0].Pin != "A" {
		t.Fatalf("fanout of in: %v", fan["in"])
	}
	if len(fan["out"]) != 1 || fan["out"][0].Gate != -1 {
		t.Fatalf("PO sink missing: %v", fan["out"])
	}
	drv := nl.DriverMap()
	if drv["m"] != 0 || drv["out"] != 1 {
		t.Fatalf("driver map %v", drv)
	}
}

func TestNumNets(t *testing.T) {
	if n := chain().NumNets(); n != 3 {
		t.Fatalf("NumNets %d want 3", n)
	}
}

func TestEvaluateChain(t *testing.T) {
	out, err := chain().Evaluate(map[string]bool{"in": true})
	if err != nil {
		t.Fatal(err)
	}
	if out["out"] != true { // two inversions
		t.Fatalf("chain(true) = %v", out["out"])
	}
}

func TestEvaluateGateFunctions(t *testing.T) {
	mk := func(cell string, ins ...string) *Netlist {
		pins := map[string]string{"Y": "y"}
		names := []string{"A", "B", "C"}
		for i, in := range ins {
			pins[names[i]] = in
		}
		return &Netlist{
			Name: "g", Inputs: ins, Outputs: []string{"y"},
			Gates: []Gate{{Name: "U1", Cell: cell, Pins: pins}},
		}
	}
	type tc struct {
		cell string
		ins  []string
		in   map[string]bool
		want bool
	}
	cases := []tc{
		{"INVx2", []string{"a"}, map[string]bool{"a": false}, true},
		{"NAND2x1", []string{"a", "b"}, map[string]bool{"a": true, "b": true}, false},
		{"NAND2x1", []string{"a", "b"}, map[string]bool{"a": true, "b": false}, true},
		{"NOR2x4", []string{"a", "b"}, map[string]bool{"a": false, "b": false}, true},
		{"NOR2x4", []string{"a", "b"}, map[string]bool{"a": true, "b": false}, false},
		{"AOI2x1", []string{"a", "b", "c"}, map[string]bool{"a": true, "b": true, "c": false}, false},
		{"AOI2x1", []string{"a", "b", "c"}, map[string]bool{"a": true, "b": false, "c": false}, true},
		{"AOI2x1", []string{"a", "b", "c"}, map[string]bool{"a": false, "b": false, "c": true}, false},
	}
	for _, c := range cases {
		out, err := mk(c.cell, c.ins...).Evaluate(c.in)
		if err != nil {
			t.Fatal(err)
		}
		if out["y"] != c.want {
			t.Errorf("%s(%v) = %v want %v", c.cell, c.in, out["y"], c.want)
		}
	}
}

func TestEvaluateMissingInput(t *testing.T) {
	if _, err := chain().Evaluate(map[string]bool{}); err == nil {
		t.Fatal("missing input accepted")
	}
}

const c17Bench = `
# ISCAS85 c17
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
`

func TestParseBenchC17(t *testing.T) {
	nl, err := ParseBench(strings.NewReader(c17Bench), "c17", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(nl.Gates) != 6 {
		t.Fatalf("c17 mapped to %d gates, want 6 NAND2", len(nl.Gates))
	}
	if len(nl.Inputs) != 5 || len(nl.Outputs) != 2 {
		t.Fatalf("c17 IO: %d in %d out", len(nl.Inputs), len(nl.Outputs))
	}
	// Functional spot checks against the known c17 truth table.
	eval := func(v1, v2, v3, v6, v7 bool) (bool, bool) {
		out, err := nl.Evaluate(map[string]bool{"1": v1, "2": v2, "3": v3, "6": v6, "7": v7})
		if err != nil {
			t.Fatal(err)
		}
		return out["22"], out["23"]
	}
	// All zeros: 10=1, 11=1, 16=1, 19=1 → 22=NAND(1,1)=0, 23=0.
	if o22, o23 := eval(false, false, false, false, false); o22 || o23 {
		t.Fatalf("c17(00000) = %v %v want 0 0", o22, o23)
	}
	// 3=1, 6=1 → 11=0 → 16=1, 19=1; 1=0 → 10=1 → 22=NAND(1,1)=0.
	if o22, _ := eval(false, false, true, true, false); o22 {
		t.Fatal("c17 logic mismatch on pattern 00110")
	}
}

func TestParseBenchXORDecomposition(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
OUTPUT(y)
y = XOR(a, b)
`
	nl, err := ParseBench(strings.NewReader(src), "x", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(nl.Gates) != 4 {
		t.Fatalf("XOR should map to 4 NAND2, got %d gates", len(nl.Gates))
	}
	for _, tc := range []struct{ a, b, want bool }{
		{false, false, false}, {true, false, true}, {false, true, true}, {true, true, false},
	} {
		out, err := nl.Evaluate(map[string]bool{"a": tc.a, "b": tc.b})
		if err != nil {
			t.Fatal(err)
		}
		if out["y"] != tc.want {
			t.Fatalf("XOR(%v,%v)=%v", tc.a, tc.b, out["y"])
		}
	}
}

func TestParseBenchWideGatesAndBuf(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(y)
OUTPUT(z)
OUTPUT(w)
y = AND(a, b, c, d)
z = BUF(a)
w = XNOR(a, b)
`
	nl, err := ParseBench(strings.NewReader(src), "wide", nil)
	if err != nil {
		t.Fatal(err)
	}
	truth := func(in map[string]bool) map[string]bool {
		out, err := nl.Evaluate(in)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	all := map[string]bool{"a": true, "b": true, "c": true, "d": true}
	if out := truth(all); !out["y"] || !out["z"] || !out["w"] {
		t.Fatalf("wide gates wrong on all-ones: %v", out)
	}
	one := map[string]bool{"a": true, "b": false, "c": true, "d": true}
	if out := truth(one); out["y"] || !out["z"] || out["w"] {
		t.Fatalf("wide gates wrong: %v", out)
	}
}

func TestParseBenchStrengthOption(t *testing.T) {
	src := "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n"
	nl, err := ParseBench(strings.NewReader(src), "s", &BenchOptions{Strength: 4})
	if err != nil {
		t.Fatal(err)
	}
	if nl.Gates[0].Cell != "INVx4" {
		t.Fatalf("strength option ignored: %s", nl.Gates[0].Cell)
	}
}

func TestParseBenchErrors(t *testing.T) {
	for _, src := range []string{
		"INPUT(a)\ny = FROB(a)\n",
		"INPUT(a\n",
		"garbage line\n",
	} {
		if _, err := ParseBench(strings.NewReader(src), "bad", nil); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}
