package timinglib

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/wal/faultfs"
)

// loadImage reads and parses a coefficients file out of a crash image.
func loadImage(t *testing.T, img *faultfs.FS, path string) *File {
	t.Helper()
	data, err := img.ReadFile(path)
	if err != nil {
		t.Fatalf("crash image has no %s: %v", path, err)
	}
	f, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("crash image %s does not parse: %v", path, err)
	}
	return f
}

// TestSaveSurvivesPowerLossAfterReturn is the regression test for the
// missing parent-directory fsync: once Save returns, the file must survive
// an immediate power loss even under the strict "unsynced data is lost"
// durability reading. Without the SyncDir after the rename, the freshly
// created name never reaches the disk and the whole file vanishes at the
// crash image.
func TestSaveSurvivesPowerLossAfterReturn(t *testing.T) {
	fs := faultfs.New()
	if err := fs.MkdirAll("lib", 0o755); err != nil {
		t.Fatal(err)
	}
	f := sampleFile()
	f.Checkpoint = &Checkpoint{Profile: "standard", Seed: 41}
	if err := f.SaveFS(fs, "lib/coeffs.json"); err != nil {
		t.Fatal(err)
	}
	fs.SetDropUnsynced(true) // strict reading: anything not fsynced is gone
	fs.CrashNow()
	got := loadImage(t, fs, "lib/coeffs.json")
	if len(got.Arcs) != len(f.Arcs) || got.Vdd != f.Vdd || got.Checkpoint.Seed != 41 {
		t.Fatal("file recovered from power loss lost data")
	}
}

// TestSaveCrashMidWriteKeepsOldVersion: a crash during the temp-file write
// of a newer version must leave the previous version fully intact at the
// target path, with no temp debris surviving the remount.
func TestSaveCrashMidWriteKeepsOldVersion(t *testing.T) {
	fs := faultfs.New()
	if err := fs.MkdirAll("lib", 0o755); err != nil {
		t.Fatal(err)
	}
	v1 := sampleFile()
	v1.Checkpoint = &Checkpoint{Profile: "standard", Seed: 1}
	if err := v1.SaveFS(fs, "lib/coeffs.json"); err != nil {
		t.Fatal(err)
	}

	v2 := sampleFile()
	v2.Checkpoint = &Checkpoint{Profile: "standard", Seed: 2}
	fs.CrashAfterWrites(fs.Writes()+1, 7) // tear the next write after 7 bytes
	if err := v2.SaveFS(fs, "lib/coeffs.json"); !errors.Is(err, faultfs.ErrCrashed) {
		t.Fatalf("crashing Save returned %v", err)
	}

	img := fs.Image()
	got := loadImage(t, img, "lib/coeffs.json")
	if got.Checkpoint == nil || got.Checkpoint.Seed != 1 {
		t.Fatalf("surviving file is not v1: %+v", got.Checkpoint)
	}
	names, err := img.ReadDir("lib")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "coeffs.json" {
		t.Fatalf("temp debris survived the crash: %v", names)
	}
}

// TestSaveSurfacesFsyncFailure: an fsync error must fail the Save (silently
// swallowing it would report durability that does not exist) and leave any
// previous version in place.
func TestSaveSurfacesFsyncFailure(t *testing.T) {
	fs := faultfs.New()
	if err := fs.MkdirAll("lib", 0o755); err != nil {
		t.Fatal(err)
	}
	v1 := sampleFile()
	v1.Checkpoint = &Checkpoint{Profile: "standard", Seed: 1}
	if err := v1.SaveFS(fs, "lib/coeffs.json"); err != nil {
		t.Fatal(err)
	}
	fs.FailNthSync(fs.SyncsSeen() + 1) // the temp-file fsync of the next Save
	if err := v1.SaveFS(fs, "lib/coeffs.json"); !errors.Is(err, faultfs.ErrSyncFailed) {
		t.Fatalf("Save with failing fsync returned %v", err)
	}
	got := loadImage(t, fs.Image(), "lib/coeffs.json")
	if got.Checkpoint == nil || got.Checkpoint.Seed != 1 {
		t.Fatalf("previous version damaged by failed Save: %+v", got.Checkpoint)
	}
}
