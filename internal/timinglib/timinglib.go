// Package timinglib defines the single serialisable artefact the timing
// flow consumes — the paper's Fig. 5 "coefficients file": per-arc N-sigma
// models (moment LUT + Table-I quantile coefficients + slew surface), the
// wire X_FI/X_FO calibration, and the structural cell data (pin caps, stack,
// strength) STA needs to compute loads.
//
// Characterisation (cmd/characterize) writes this file once per technology;
// every analysis afterwards runs from the file alone, with no simulator in
// the loop — exactly the separation the paper draws between its
// characterisation flow and its timing flow.
package timinglib

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/nsigma"
	"repro/internal/stdcell"
	"repro/internal/wal"
	"repro/internal/waveform"
	"repro/internal/wire"
)

// CellInfo carries the structural cell facts STA and the wire model use.
type CellInfo struct {
	Stack     int                `json:"stack"`
	Strength  int                `json:"strength"`
	Inputs    []string           `json:"inputs"`
	PinCaps   map[string]float64 `json:"pinCaps"`
	OutputCap float64            `json:"outputCap"`
}

// Checkpoint identifies a (possibly partial) characterisation run, so a
// resumed run can verify it is continuing compatible work. Complete is set
// once every arc is fitted and the wire calibration is present.
type Checkpoint struct {
	Profile  string `json:"profile,omitempty"`
	Seed     uint64 `json:"seed"`
	Complete bool   `json:"complete"`
}

// File is the coefficients file.
type File struct {
	Vdd   float64                     `json:"vdd"`
	Arcs  map[string]*nsigma.ArcModel `json:"arcs"` // key: ArcKey
	Wire  *wire.Calibration           `json:"wire,omitempty"`
	Cells map[string]*CellInfo        `json:"cells"`
	// Checkpoint is present on files written by fault-tolerant
	// characterisation runs; nil on hand-built or pre-checkpoint files.
	Checkpoint *Checkpoint `json:"checkpoint,omitempty"`
}

// ArcKey composes the map key of a timing arc.
func ArcKey(cell, pin string, inEdge waveform.Edge) string {
	return fmt.Sprintf("%s/%s/%s", cell, pin, inEdge)
}

// New returns an empty coefficients file for the given library.
func New(lib *stdcell.Library) *File {
	f := &File{
		Vdd:   lib.Tech.Vdd,
		Arcs:  make(map[string]*nsigma.ArcModel),
		Cells: make(map[string]*CellInfo),
	}
	for _, c := range lib.Cells() {
		info := &CellInfo{
			Stack:     c.Stack,
			Strength:  c.Strength,
			Inputs:    append([]string(nil), c.Inputs...),
			PinCaps:   make(map[string]float64, len(c.Inputs)),
			OutputCap: c.OutputCap(),
		}
		for _, p := range c.Inputs {
			info.PinCaps[p] = c.PinCap(p)
		}
		f.Cells[c.Name] = info
	}
	return f
}

// AddArc registers a fitted arc model.
func (f *File) AddArc(m *nsigma.ArcModel) {
	f.Arcs[ArcKey(m.Arc.Cell, m.Arc.Pin, m.Arc.InEdge)] = m
}

// Arc returns the model of the given arc.
func (f *File) Arc(cell, pin string, inEdge waveform.Edge) (*nsigma.ArcModel, error) {
	m, ok := f.Arcs[ArcKey(cell, pin, inEdge)]
	if !ok {
		return nil, fmt.Errorf("timinglib: no arc model for %s", ArcKey(cell, pin, inEdge))
	}
	return m, nil
}

// Cell returns structural info of a cell.
func (f *File) Cell(name string) (*CellInfo, error) {
	c, ok := f.Cells[name]
	if !ok {
		return nil, fmt.Errorf("timinglib: unknown cell %q", name)
	}
	return c, nil
}

// PinCap returns the input capacitance of cell/pin.
func (f *File) PinCap(cell, pin string) (float64, error) {
	c, err := f.Cell(cell)
	if err != nil {
		return 0, err
	}
	pc, ok := c.PinCaps[pin]
	if !ok {
		return 0, fmt.Errorf("timinglib: cell %s has no pin %q", cell, pin)
	}
	return pc, nil
}

// Write serialises the file as JSON.
func (f *File) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// Read parses a coefficients file.
func Read(r io.Reader) (*File, error) {
	var f File
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("timinglib: %w", err)
	}
	if f.Arcs == nil || f.Cells == nil {
		return nil, fmt.Errorf("timinglib: file missing arcs or cells")
	}
	return &f, nil
}

// Save writes the file to path crash-safely: the document is written to a
// temporary file in the same directory, fsynced, renamed into place, and the
// parent directory entry is fsynced, so a run killed mid-write never leaves
// a truncated or corrupt coefficients file behind — the previous version (if
// any) survives intact, and a freshly created file cannot vanish after a
// power loss (the directory fsync is what pins the rename). This is what
// makes periodic characterisation checkpoints safe.
func (f *File) Save(path string) error {
	return f.SaveFS(wal.OS(), path)
}

// SaveFS is Save over an explicit filesystem — the seam the fault-injection
// tests use to prove the crash-safety claim byte by byte.
func (f *File) SaveFS(fsys wal.FS, path string) error {
	return wal.AtomicWrite(fsys, path, f.Write)
}

// Load reads the file at path.
func Load(path string) (*File, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	return Read(fh)
}
