package timinglib

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/charlib"
	"repro/internal/device"
	"repro/internal/nsigma"
	"repro/internal/stdcell"
	"repro/internal/waveform"
	"repro/internal/wire"
)

func sampleFile() *File {
	lib := stdcell.NewLibrary(device.Default28nm())
	f := New(lib)
	var quant nsigma.QuantileModel
	for i := range quant.Coeffs {
		quant.Coeffs[i] = make([]float64, len(nsigma.FeatureNames(i-3)))
		for j := range quant.Coeffs[i] {
			quant.Coeffs[i][j] = float64(i*10 + j)
		}
	}
	f.AddArc(&nsigma.ArcModel{
		Arc: charlib.Arc{Cell: "INVx1", Pin: "A", InEdge: waveform.Rising},
		LUT: nsigma.MomentLUT{
			Slews:   []float64{1e-12, 1e-10},
			Loads:   []float64{1e-16, 1e-14},
			Mu:      [][]float64{{1e-11, 2e-11}, {1.5e-11, 3e-11}},
			Sigma:   [][]float64{{1e-12, 2e-12}, {1e-12, 2e-12}},
			Gamma:   [][]float64{{1, 1}, {1, 1}},
			Kappa:   [][]float64{{5, 5}, {5, 5}},
			OutSlew: [][]float64{{2e-11, 4e-11}, {2e-11, 4e-11}},
		},
		Quant: quant,
	})
	f.Wire = &wire.Calibration{
		R4:        0.11,
		CellRatio: map[string]float64{"INVx1": 0.2},
		XFI:       map[string]float64{"INVx1": 0.6},
		XFO:       map[string]float64{"INVx1": 0.4},
	}
	return f
}

func TestNewPopulatesCellData(t *testing.T) {
	f := sampleFile()
	if len(f.Cells) != 16 {
		t.Fatalf("cells: %d want 16", len(f.Cells))
	}
	info, err := f.Cell("NAND2x4")
	if err != nil {
		t.Fatal(err)
	}
	if info.Stack != 2 || info.Strength != 4 || len(info.Inputs) != 2 {
		t.Fatalf("NAND2x4 info: %+v", info)
	}
	pc, err := f.PinCap("NAND2x4", "B")
	if err != nil || pc <= 0 {
		t.Fatalf("pin cap: %v %v", pc, err)
	}
	if _, err := f.PinCap("NAND2x4", "Z"); err == nil {
		t.Fatal("unknown pin accepted")
	}
	if _, err := f.Cell("GHOSTx1"); err == nil {
		t.Fatal("unknown cell accepted")
	}
}

func TestArcLookup(t *testing.T) {
	f := sampleFile()
	if _, err := f.Arc("INVx1", "A", waveform.Rising); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Arc("INVx1", "A", waveform.Falling); err == nil {
		t.Fatal("missing arc accepted")
	}
}

func TestArcKeyFormat(t *testing.T) {
	if k := ArcKey("NAND2x4", "B", waveform.Falling); k != "NAND2x4/B/fall" {
		t.Fatalf("ArcKey %q", k)
	}
}

func TestRoundTripBuffer(t *testing.T) {
	f := sampleFile()
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f.Wire, got.Wire) {
		t.Fatal("wire calibration did not round-trip")
	}
	a0 := f.Arcs["INVx1/A/rise"]
	a1 := got.Arcs["INVx1/A/rise"]
	if !reflect.DeepEqual(a0.LUT, a1.LUT) || !reflect.DeepEqual(a0.Quant, a1.Quant) {
		t.Fatal("arc model did not round-trip")
	}
	// The reloaded model must evaluate identically.
	if a0.Quantile(3, 5e-12, 5e-15) != a1.Quantile(3, 5e-12, 5e-15) {
		t.Fatal("reloaded model evaluates differently")
	}
}

func TestSaveLoadFile(t *testing.T) {
	f := sampleFile()
	path := filepath.Join(t.TempDir(), "coeffs.json")
	if err := f.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Arcs) != len(f.Arcs) || got.Vdd != f.Vdd {
		t.Fatal("file round-trip lost data")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewBufferString("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Read(bytes.NewBufferString(`{"vdd":0.6}`)); err == nil {
		t.Fatal("missing sections accepted")
	}
}

func TestSaveOverwritesPartialWrite(t *testing.T) {
	// A crashed earlier run may have left a truncated or corrupt document at
	// the target path. Atomic Save must replace it wholesale so the next
	// Load round-trips cleanly, and must leave no temp files behind.
	dir := t.TempDir()
	path := filepath.Join(dir, "coeffs.json")
	f := sampleFile()
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	truncated := buf.Bytes()[:buf.Len()/2]
	if err := os.WriteFile(path, truncated, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("truncated file unexpectedly parsed — test premise broken")
	}

	f.Checkpoint = &Checkpoint{Profile: "standard", Seed: 77}
	if err := f.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("load after overwriting partial write: %v", err)
	}
	if len(got.Arcs) != len(f.Arcs) || got.Vdd != f.Vdd {
		t.Fatal("round-trip after partial write lost data")
	}
	if !reflect.DeepEqual(got.Checkpoint, f.Checkpoint) {
		t.Fatalf("checkpoint metadata %+v did not round-trip", got.Checkpoint)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "coeffs.json" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("stray files after Save: %v", names)
	}
}

func TestSaveFailureLeavesOriginalIntact(t *testing.T) {
	// If Save cannot complete (unwritable directory), any pre-existing file
	// must survive untouched.
	dir := t.TempDir()
	path := filepath.Join(dir, "coeffs.json")
	if err := sampleFile().Save(path); err != nil {
		t.Fatal(err)
	}
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	if err := sampleFile().Save(path); err == nil {
		t.Skip("directory still writable (running as root?)")
	}
	if _, err := Load(path); err != nil {
		t.Fatalf("failed Save corrupted the original: %v", err)
	}
}
