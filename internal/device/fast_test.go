package device

import (
	"math"
	"math/rand"
	"testing"
)

// TestSplogHalfMatchesComposition pins the fused softplus/logistic kernel
// to the straightforward composition across the full argument range,
// including both deep cutoff and strong inversion.
func TestSplogHalfMatchesComposition(t *testing.T) {
	for x := -120.0; x <= 120.0; x += 0.0625 {
		sp, lg := splogHalf(x)
		wantSp := softplusHalf(x)
		wantLg := logisticHalf(x)
		if relDiff(sp, wantSp) > 1e-13 {
			t.Fatalf("splogHalf(%g).sp = %v, softplusHalf = %v", x, sp, wantSp)
		}
		if relDiff(lg, wantLg) > 1e-13 {
			t.Fatalf("splogHalf(%g).lg = %v, logisticHalf = %v", x, lg, wantLg)
		}
	}
}

// TestIdsFastMatchesIds checks the precomputed-coefficient evaluator
// against the reference Params.Ids over random parameters and bias points
// of both polarities.
func TestIdsFastMatchesIds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tech := Default28nm()
	for trial := 0; trial < 500; trial++ {
		pol := NMOS
		if trial%2 == 1 {
			pol = PMOS
		}
		p := tech.NominalParams(pol, tech.Wmin*(0.5+3*rng.Float64()))
		p.Vth *= 0.8 + 0.4*rng.Float64() // variation-shifted
		p.KP *= 0.8 + 0.4*rng.Float64()
		fast := p.Fast()
		for k := 0; k < 20; k++ {
			vg := -0.1 + 0.8*rng.Float64()
			vd := -0.1 + 0.8*rng.Float64()
			vs := -0.1 + 0.8*rng.Float64()
			i0, g0, d0, s0 := p.Ids(vg, vd, vs)
			i1, g1, d1, s1 := fast.Ids(vg, vd, vs)
			for _, pair := range [][2]float64{{i0, i1}, {g0, g1}, {d0, d1}, {s0, s1}} {
				if relDiff(pair[0], pair[1]) > 1e-12 {
					t.Fatalf("trial %d %s (%g,%g,%g): reference %v fast %v",
						trial, pol, vg, vd, vs, pair[0], pair[1])
				}
			}
		}
	}
}

func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1e-300 {
		return d
	}
	return d / scale
}
