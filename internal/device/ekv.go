// Package device implements a compact MOSFET current model in the spirit of
// EKV (Enz-Krummenacher-Vittoz). The EKV interpolation function is smooth
// and accurate from weak (sub-threshold) through strong inversion, which is
// exactly the property a near-threshold (V_dd ≈ 0.6 V, |V_th| ≈ 0.35 V)
// study needs: around V_dd ≈ V_th + 5·U_T the drain current — and hence cell
// delay — responds exponentially to threshold-voltage variation, producing
// the skewed, heavy-tailed delay distributions the N-sigma model targets.
//
// The model is symmetric in source/drain, has continuous derivatives
// (Newton-friendly), and deliberately omits second-order effects (DIBL,
// velocity saturation) that change absolute currents but not the
// variability mechanism under study.
package device

import "math"

// Polarity distinguishes NMOS from PMOS devices.
type Polarity int

// Device polarities.
const (
	NMOS Polarity = iota
	PMOS
)

func (p Polarity) String() string {
	if p == PMOS {
		return "PMOS"
	}
	return "NMOS"
}

// Params is the electrical parameter set of one transistor instance, after
// process variation has been applied.
type Params struct {
	Polarity Polarity
	W        float64 // channel width (m)
	L        float64 // channel length (m)
	Vth      float64 // threshold voltage magnitude (V), > 0 for both polarities
	KP       float64 // transconductance factor µ·Cox (A/V²)
	N        float64 // subthreshold slope factor (≈1.3)
	Ut       float64 // thermal voltage kT/q (V)
	Cg       float64 // total gate capacitance (F), used for loading
	Cgd      float64 // gate-drain overlap portion of Cg (F), Miller coupling
	Cd       float64 // drain junction capacitance (F)
}

// Tech is a synthetic 28-nm-class technology card. All Monte-Carlo
// instances derive from one Tech plus variation draws.
type Tech struct {
	L        float64 // drawn channel length (m)
	Wmin     float64 // unit-strength NMOS width (m)
	PNRatio  float64 // PMOS/NMOS width ratio for balanced rise/fall
	VthN     float64 // nominal NMOS threshold (V)
	VthP     float64 // nominal PMOS threshold magnitude (V)
	KPN      float64 // NMOS µ·Cox (A/V²)
	KPP      float64 // PMOS µ·Cox (A/V²)
	SlopeN   float64 // subthreshold slope factor
	Ut       float64 // thermal voltage at operating temperature (V)
	CoxArea  float64 // gate oxide capacitance per area (F/m²)
	CovWidth float64 // overlap/fringe capacitance per width (F/m)
	CjWidth  float64 // drain junction capacitance per width (F/m)
	Vdd      float64 // nominal supply (V)
}

// Default28nm returns the technology card used throughout the repository:
// a 28-nm-class low-power flavour operated at 0.6 V / 25 °C like the paper.
func Default28nm() *Tech {
	return &Tech{
		L:        30e-9,
		Wmin:     100e-9,
		PNRatio:  1.5,
		VthN:     0.36,
		VthP:     0.34,
		KPN:      260e-6,
		KPP:      120e-6,
		SlopeN:   1.32,
		Ut:       0.02585, // 25 °C
		CoxArea:  0.028,   // 28 fF/µm² ≈ EOT ~1.2 nm
		CovWidth: 0.35e-9, // 0.35 fF/µm
		CjWidth:  0.45e-9, // 0.45 fF/µm
		Vdd:      0.6,
	}
}

// GateCap returns the gate capacitance of a device of width w (m).
func (t *Tech) GateCap(w float64) float64 {
	return t.CoxArea*w*t.L + t.CovWidth*w
}

// DrainCap returns the drain parasitic capacitance of a device of width w.
func (t *Tech) DrainCap(w float64) float64 { return t.CjWidth * w }

// NominalParams instantiates variation-free device parameters for a device
// of the given polarity and width.
func (t *Tech) NominalParams(pol Polarity, w float64) Params {
	p := Params{
		Polarity: pol,
		W:        w,
		L:        t.L,
		N:        t.SlopeN,
		Ut:       t.Ut,
		Cg:       t.GateCap(w),
		Cgd:      t.CovWidth * w,
		Cd:       t.DrainCap(w),
	}
	if pol == NMOS {
		p.Vth = t.VthN
		p.KP = t.KPN
	} else {
		p.Vth = t.VthP
		p.KP = t.KPP
	}
	return p
}

// ekvF is the EKV interpolation function F(x) = ln²(1 + e^{x/2}).
func ekvF(x float64) float64 {
	l := softplusHalf(x)
	return l * l
}

// ekvFPrime is dF/dx = ln(1+e^{x/2}) · σ(x/2) where σ is the logistic
// function.
func ekvFPrime(x float64) float64 {
	l := softplusHalf(x)
	return l * logisticHalf(x)
}

// softplusHalf computes ln(1 + e^{x/2}) without overflow.
func softplusHalf(x float64) float64 {
	h := x / 2
	if h > 30 {
		return h // e^{-h} negligible
	}
	return math.Log1p(math.Exp(h))
}

// logisticHalf computes 1/(1+e^{-x/2}) without overflow.
func logisticHalf(x float64) float64 {
	h := x / 2
	if h > 30 {
		return 1
	}
	if h < -30 {
		return math.Exp(h)
	}
	return 1 / (1 + math.Exp(-h))
}

// ln1pSmall computes ln(1+u) for u ∈ [0, 0.01) by a 7-term alternating
// series (relative error ≲ u⁷/8 ≤ 2e-15). math.Log(1+u) would lose
// relative precision here — forming 1+u rounds away low bits of u, an
// error of order eps/u relative — and math.Log1p has no assembly fast path
// on this platform.
func ln1pSmall(u float64) float64 {
	return u * (1 - u*(1.0/2-u*(1.0/3-u*(1.0/4-u*(1.0/5-u*(1.0/6-u/7))))))
}

// splogHalf returns (softplusHalf(x), logisticHalf(x)) from a single
// exponential. Ids needs both functions at the same argument twice per
// call, and the straightforward composition costs six math.Exp plus four
// math.Log1p evaluations; sharing the exponential and using the identity
// ln(1+e^h) = h + ln(1+e^{-h}) (h ≥ 0) cuts that to two Exp and at most
// two Log. For arguments below 0.01 the ln1pSmall series replaces the Log
// — that regime is exactly an off device, the most common case in a logic
// stage, so the cutoff branches are also the cheapest.
func splogHalf(x float64) (sp, lg float64) {
	h := 0.5 * x
	switch {
	case h > 30:
		return h, 1 // e^{-h} negligible
	case h >= 0:
		t := math.Exp(-h) // in (0, 1]
		var l float64
		if t < 0.01 {
			l = ln1pSmall(t)
		} else {
			l = math.Log(1 + t)
		}
		return h + l, 1 / (1 + t)
	case h < -30:
		t := math.Exp(h) // both functions ≈ e^h in deep cutoff
		return t * (1 - 0.5*t), t
	default:
		u := math.Exp(h) // in (~1e-13, 1)
		var l float64
		if u < 0.01 {
			l = ln1pSmall(u)
		} else {
			l = math.Log(1 + u)
		}
		return l, u / (1 + u)
	}
}

// Ids returns the drain-source current and its partial derivatives with
// respect to the terminal voltages (all referred to ground, the simulator's
// reference). For NMOS the current flows drain→source when positive; for
// PMOS terminal voltages are mirrored internally and the returned current
// keeps the drain→source sign convention so the simulator can stamp both
// polarities identically.
func (p *Params) Ids(vg, vd, vs float64) (ids, dIdVg, dIdVd, dIdVs float64) {
	sign := 1.0
	if p.Polarity == PMOS {
		// Mirror: a PMOS with terminals (g,d,s) behaves like an NMOS with
		// voltages negated.
		vg, vd, vs = -vg, -vd, -vs
		sign = -1.0
	}
	// The EKV forward/reverse decomposition is symmetric in source and
	// drain, so no terminal ordering is required: reversing vd and vs just
	// flips the sign of ids.
	is := 2 * p.N * p.KP * (p.W / p.L) * p.Ut * p.Ut
	vp := (vg - p.Vth) / p.N // pinch-off voltage
	xf := (vp - vs) / p.Ut
	xr := (vp - vd) / p.Ut
	// F(x) = softplus², F'(x) = softplus·logistic; one fused evaluation per
	// argument supplies both.
	spf, lgf := splogHalf(xf)
	spr, lgr := splogHalf(xr)
	fpf := spf * lgf
	fpr := spr * lgr
	ids = is * (spf*spf - spr*spr)
	dF := is / p.Ut
	dIdVg = dF * (fpf - fpr) / p.N
	dIdVs = -dF * fpf
	dIdVd = dF * fpr
	if sign < 0 {
		// PMOS: ids_p(v) = -ids_n(-v), so by the chain rule each partial
		// derivative keeps the NMOS value while the current flips sign.
		ids = -ids
	}
	return ids, dIdVg, dIdVd, dIdVs
}

// IdsFast is an Ids evaluator with the per-device constants (specific
// current, reciprocal slope factor and thermal voltage) hoisted out of the
// per-call arithmetic. A transient solver evaluates Ids millions of times
// per device with fixed parameters, and the six divisions the plain method
// spends deriving these constants are pure overhead there.
type IdsFast struct {
	neg             bool    // PMOS terminal mirroring
	vth             float64 // threshold magnitude (V)
	invN, invUt     float64
	is, isInvUtInvN float64
	isInvUt         float64
}

// Fast returns the precomputed evaluator for p. It is a value type: stamp
// programs embed it by value and rebuild it with this method when a new
// Monte-Carlo sample rebinds fresh parameters.
func (p *Params) Fast() IdsFast {
	is := 2 * p.N * p.KP * (p.W / p.L) * p.Ut * p.Ut
	return IdsFast{
		neg:         p.Polarity == PMOS,
		vth:         p.Vth,
		invN:        1 / p.N,
		invUt:       1 / p.Ut,
		is:          is,
		isInvUt:     is / p.Ut,
		isInvUtInvN: is / p.Ut / p.N,
	}
}

// Ids is Params.Ids with precomputed coefficients; it returns identical
// values up to floating-point association of the hoisted products.
func (c *IdsFast) Ids(vg, vd, vs float64) (ids, dIdVg, dIdVd, dIdVs float64) {
	if c.neg {
		vg, vd, vs = -vg, -vd, -vs
	}
	vp := (vg - c.vth) * c.invN
	spf, lgf := splogHalf((vp - vs) * c.invUt)
	spr, lgr := splogHalf((vp - vd) * c.invUt)
	fpf := spf * lgf
	fpr := spr * lgr
	ids = c.is * (spf*spf - spr*spr)
	dIdVg = c.isInvUtInvN * (fpf - fpr)
	dIdVs = -c.isInvUt * fpf
	dIdVd = c.isInvUt * fpr
	if c.neg {
		ids = -ids
	}
	return ids, dIdVg, dIdVd, dIdVs
}

// OnCurrent is a convenience returning |Ids| with the device fully on at
// supply vdd (gate and drain at the rails), used by tests and sizing sanity
// checks.
func (p *Params) OnCurrent(vdd float64) float64 {
	var i float64
	if p.Polarity == NMOS {
		i, _, _, _ = p.Ids(vdd, vdd, 0)
	} else {
		i, _, _, _ = p.Ids(0, 0, vdd)
	}
	return math.Abs(i)
}
