package device

import (
	"math"
	"testing"
	"testing/quick"
)

func nmosUnit() Params {
	t := Default28nm()
	return t.NominalParams(NMOS, t.Wmin)
}

func pmosUnit() Params {
	t := Default28nm()
	return t.NominalParams(PMOS, t.Wmin*t.PNRatio)
}

func TestZeroVdsZeroCurrent(t *testing.T) {
	p := nmosUnit()
	for _, vg := range []float64{0, 0.3, 0.6} {
		ids, _, _, _ := p.Ids(vg, 0.25, 0.25)
		if math.Abs(ids) > 1e-18 {
			t.Errorf("vg=%v vds=0: ids=%v", vg, ids)
		}
	}
}

func TestDrainSourceAntiSymmetry(t *testing.T) {
	p := nmosUnit()
	err := quick.Check(func(vgRaw, vdRaw, vsRaw float64) bool {
		vg := math.Mod(math.Abs(vgRaw), 0.6)
		vd := math.Mod(math.Abs(vdRaw), 0.6)
		vs := math.Mod(math.Abs(vsRaw), 0.6)
		i1, _, _, _ := p.Ids(vg, vd, vs)
		i2, _, _, _ := p.Ids(vg, vs, vd)
		return math.Abs(i1+i2) <= 1e-12*(math.Abs(i1)+1e-15)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestNMOSOnOffRatio(t *testing.T) {
	p := nmosUnit()
	on, _, _, _ := p.Ids(0.6, 0.6, 0)
	off, _, _, _ := p.Ids(0, 0.6, 0)
	if on <= 0 {
		t.Fatalf("on current %v not positive", on)
	}
	if off <= 0 {
		t.Fatalf("subthreshold leakage %v not positive", off)
	}
	if on/off < 1e3 {
		t.Fatalf("on/off ratio %v too small for Vth=0.36 at 0.6V", on/off)
	}
}

func TestPMOSPullUpDirection(t *testing.T) {
	p := pmosUnit()
	// Gate low, source at VDD, drain (output) at 0: current must flow
	// source→drain, i.e. ids (drain→source convention) negative.
	ids, _, _, _ := p.Ids(0, 0, 0.6)
	if ids >= 0 {
		t.Fatalf("PMOS pull-up ids=%v, want negative (current into drain node)", ids)
	}
}

func TestGateMonotonicityNMOS(t *testing.T) {
	p := nmosUnit()
	prev := -1.0
	for vg := 0.0; vg <= 0.61; vg += 0.05 {
		ids, _, _, _ := p.Ids(vg, 0.6, 0)
		if ids <= prev {
			t.Fatalf("Ids not increasing in vg at vg=%v: %v <= %v", vg, ids, prev)
		}
		prev = ids
	}
}

func TestDerivativesMatchFiniteDifference(t *testing.T) {
	for _, p := range []Params{nmosUnit(), pmosUnit()} {
		const h = 1e-7
		for _, v := range [][3]float64{
			{0.3, 0.5, 0}, {0.6, 0.6, 0}, {0.2, 0.1, 0.05}, {0.5, 0.05, 0.3},
		} {
			vg, vd, vs := v[0], v[1], v[2]
			_, dg, dd, ds := p.Ids(vg, vd, vs)
			num := func(f func(float64) float64) float64 {
				return (f(h) - f(-h)) / (2 * h)
			}
			ng := num(func(e float64) float64 { i, _, _, _ := p.Ids(vg+e, vd, vs); return i })
			nd := num(func(e float64) float64 { i, _, _, _ := p.Ids(vg, vd+e, vs); return i })
			ns := num(func(e float64) float64 { i, _, _, _ := p.Ids(vg, vd, vs+e); return i })
			scale := math.Abs(ng) + math.Abs(nd) + math.Abs(ns) + 1e-12
			if math.Abs(dg-ng)/scale > 1e-4 {
				t.Errorf("%v at %v: dIdVg analytic %v numeric %v", p.Polarity, v, dg, ng)
			}
			if math.Abs(dd-nd)/scale > 1e-4 {
				t.Errorf("%v at %v: dIdVd analytic %v numeric %v", p.Polarity, v, dd, nd)
			}
			if math.Abs(ds-ns)/scale > 1e-4 {
				t.Errorf("%v at %v: dIdVs analytic %v numeric %v", p.Polarity, v, ds, ns)
			}
		}
	}
}

func TestOnCurrentScalesWithWidth(t *testing.T) {
	tech := Default28nm()
	p1 := tech.NominalParams(NMOS, tech.Wmin)
	p4 := tech.NominalParams(NMOS, 4*tech.Wmin)
	r := p4.OnCurrent(tech.Vdd) / p1.OnCurrent(tech.Vdd)
	if math.Abs(r-4) > 1e-9 {
		t.Fatalf("on-current width scaling %v, want 4", r)
	}
}

func TestVthSensitivityNearThreshold(t *testing.T) {
	// Near threshold, a +30 mV Vth shift must cut the on current by a
	// factor ≳1.5 — the exponential sensitivity the study depends on.
	tech := Default28nm()
	p := tech.NominalParams(NMOS, tech.Wmin)
	base := p.OnCurrent(tech.Vdd)
	p.Vth += 0.030
	shifted := p.OnCurrent(tech.Vdd)
	if ratio := base / shifted; ratio < 1.2 {
		t.Fatalf("Vth sensitivity too weak: +30mV only scales current by %v", ratio)
	}
}

func TestCapacitancesPositive(t *testing.T) {
	tech := Default28nm()
	for _, pol := range []Polarity{NMOS, PMOS} {
		p := tech.NominalParams(pol, 2*tech.Wmin)
		if p.Cg <= 0 || p.Cd <= 0 || p.Cgd <= 0 {
			t.Errorf("%v caps: %+v", pol, p)
		}
		if p.Cgd >= p.Cg {
			t.Errorf("%v overlap cap exceeds total gate cap", pol)
		}
	}
}

func TestGateCapScalesWithWidth(t *testing.T) {
	tech := Default28nm()
	if r := tech.GateCap(4*tech.Wmin) / tech.GateCap(tech.Wmin); math.Abs(r-4) > 1e-9 {
		t.Fatalf("gate cap width scaling %v", r)
	}
}

func TestPolarityString(t *testing.T) {
	if NMOS.String() != "NMOS" || PMOS.String() != "PMOS" {
		t.Fatal("Polarity.String broken")
	}
}
