// Package waveform measures timing quantities — propagation delay and
// transition time (slew) — from sampled transient waveforms, mirroring the
// .MEASURE statements of a SPICE deck.
//
// Conventions used throughout the repository:
//   - propagation delay is measured between the 50 % V_dd crossings of the
//     input and output waveforms;
//   - an input "slew" parameter S produces a linear ramp of total duration
//     S/0.8 (i.e. a ramp whose 10-90 time is S);
//   - a measured "slew" is the effective-ramp metric of MeasureSlew: the
//     30-70 crossing interval × slewExtrapolation. The pair (generate from
//     S, measure S') is calibrated so that chained ramp-based analysis of
//     multi-stage paths matches a flat whole-path transient (cmd/fullchain
//     verifies this) — the role slew_derate plays in Liberty flows. A
//     measured slew is therefore *not* the literal 10-90 time of a tailed
//     near-threshold waveform, by design.
package waveform

import (
	"errors"
	"math"
)

// SlewFraction relates a 10-90 slew to the underlying full linear ramp.
const SlewFraction = 0.8

// RampTimeForSlew converts a 10-90 slew target into the total 0-100 ramp
// time of a linear source.
func RampTimeForSlew(slew float64) float64 { return slew / SlewFraction }

// ErrNoCrossing reports that a waveform never crossed the requested level.
var ErrNoCrossing = errors.New("waveform: level not crossed")

// CrossTime returns the first time ≥ after at which the sampled waveform
// (times, vals) crosses level in the requested direction, using linear
// interpolation between samples.
func CrossTime(times, vals []float64, level float64, rising bool, after float64) (float64, error) {
	if len(times) != len(vals) {
		panic("waveform: times/vals length mismatch")
	}
	for i := 1; i < len(times); i++ {
		if times[i] < after {
			continue
		}
		v0, v1 := vals[i-1], vals[i]
		var hit bool
		if rising {
			hit = v0 < level && v1 >= level
		} else {
			hit = v0 > level && v1 <= level
		}
		if !hit {
			continue
		}
		if v1 == v0 {
			return times[i], nil
		}
		frac := (level - v0) / (v1 - v0)
		t := times[i-1] + frac*(times[i]-times[i-1])
		if t >= after {
			return t, nil
		}
	}
	return 0, ErrNoCrossing
}

// LastValue returns the final sample of the waveform.
func LastValue(vals []float64) float64 {
	if len(vals) == 0 {
		return math.NaN()
	}
	return vals[len(vals)-1]
}

// Edge describes a transition direction.
type Edge bool

// Edge directions.
const (
	Rising  Edge = true
	Falling Edge = false
)

func (e Edge) String() string {
	if e == Rising {
		return "rise"
	}
	return "fall"
}

// Opposite returns the inverted edge.
func (e Edge) Opposite() Edge { return !e }

// MeasureSlew returns the *effective-ramp* 10-90 transition time of the
// edge of the sampled waveform that transitions at or after `after`: the
// 30 %–70 % crossing interval extrapolated to the 10-90 span (×2). For an
// ideal ramp this IS the 10-90 time; for the tailed waveforms of
// near-threshold logic it is the ramp whose mid-swing slope matches the
// waveform — the slope downstream switching actually responds to. (This is
// the standard Liberty slew-derate convention; characterising and
// propagating raw 10-90 times of tailed waveforms makes chained analyses
// diverge from flat-circuit truth.)
func MeasureSlew(times, vals []float64, vdd float64, edge Edge, after float64) (float64, error) {
	lo, hi := 0.3*vdd, 0.7*vdd
	var t1, t2 float64
	var err error
	if edge == Rising {
		t1, err = CrossTime(times, vals, lo, true, after)
		if err != nil {
			return 0, err
		}
		t2, err = CrossTime(times, vals, hi, true, t1)
	} else {
		t1, err = CrossTime(times, vals, hi, false, after)
		if err != nil {
			return 0, err
		}
		t2, err = CrossTime(times, vals, lo, false, t1)
	}
	if err != nil {
		return 0, err
	}
	return (t2 - t1) * slewExtrapolation, nil
}

// slewExtrapolation maps the measured 30-70 interval to the reported
// "10-90-equivalent" slew. The geometric factor is 2 (0.8/0.4); the value
// used here is calibrated so that ramp-reconstructed chained analysis
// matches a flat whole-path transient on inverter chains (cmd/fullchain) —
// the same role slew_derate plays in Liberty flows.
const slewExtrapolation = 3.0

// TrimTransition cuts a sampled waveform down to its transition span (with
// small lead-in/settle pads) and shifts time so the span starts near zero.
// The golden path Monte-Carlo hands stage-output waveforms to the next
// stage this way; without trimming, simulation windows would grow
// cumulatively along the path.
func TrimTransition(times, vals []float64, vdd float64) (outT, outV []float64) {
	if len(times) == 0 {
		return nil, nil
	}
	v0 := vals[0]
	vEnd := vals[len(vals)-1]
	tol := 0.02 * vdd
	start := 0
	for i, v := range vals {
		if math.Abs(v-v0) > tol {
			start = i
			break
		}
		start = i
	}
	end := len(vals) - 1
	for i := len(vals) - 1; i >= 0; i-- {
		if math.Abs(vals[i]-vEnd) > tol {
			end = i
			break
		}
		end = i
	}
	// Pads: one sample span before, a few after.
	const leadPad = 3e-12
	const tailPad = 10e-12
	tA := times[start] - leadPad
	tB := times[end] + tailPad
	lo := 0
	for lo < len(times)-1 && times[lo+1] < tA {
		lo++
	}
	hi := len(times) - 1
	for hi > 0 && times[hi-1] > tB {
		hi--
	}
	shift := times[lo] - 2e-12
	outT = make([]float64, 0, hi-lo+1)
	outV = make([]float64, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		outT = append(outT, times[i]-shift)
		outV = append(outV, vals[i])
	}
	return outT, outV
}

// StageMeasurement is the outcome of measuring one logic stage transition.
type StageMeasurement struct {
	Delay   float64 // 50 %→50 % propagation delay (s)
	OutSlew float64 // 10-90 output transition time (s)
	Settled bool    // output reached within 5 % of its rail by the end
}

// MeasureStage measures the delay between an input edge and the resulting
// output edge, plus the output slew. The output crossing is searched from
// searchFrom (typically the stimulus start), NOT from the input midpoint:
// with slow near-threshold inputs a fast cell legitimately switches before
// the input reaches 50 %, producing a negative — but physical — stage
// delay.
//
// inTimes/inVals may be nil, in which case inCross50 (a precomputed input
// 50 % crossing time) is used directly — handy when the input is an ideal
// ramp whose crossing is analytic.
func MeasureStage(inTimes, inVals []float64, inCross50 float64, inEdge Edge,
	outTimes, outVals []float64, outEdge Edge, vdd, searchFrom float64) (StageMeasurement, error) {
	var m StageMeasurement
	tin := inCross50
	if inVals != nil {
		var err error
		tin, err = CrossTime(inTimes, inVals, vdd/2, bool(inEdge), searchFrom)
		if err != nil {
			return m, err
		}
	}
	tout, err := CrossTime(outTimes, outVals, vdd/2, bool(outEdge), searchFrom)
	if err != nil {
		return m, err
	}
	m.Delay = tout - tin
	m.OutSlew, err = MeasureSlew(outTimes, outVals, vdd, outEdge, searchFrom)
	if err != nil {
		return m, err
	}
	final := LastValue(outVals)
	if outEdge == Rising {
		m.Settled = final > 0.95*vdd
	} else {
		m.Settled = final < 0.05*vdd
	}
	return m, nil
}
