package waveform

import (
	"math"
	"testing"
)

func ramp(times []float64, t0, tr, v0, v1 float64) []float64 {
	out := make([]float64, len(times))
	for i, t := range times {
		switch {
		case t <= t0:
			out[i] = v0
		case t >= t0+tr:
			out[i] = v1
		default:
			out[i] = v0 + (v1-v0)*(t-t0)/tr
		}
	}
	return out
}

func linspace(t0, t1 float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = t0 + (t1-t0)*float64(i)/float64(n-1)
	}
	return out
}

func TestCrossTimeInterpolates(t *testing.T) {
	times := []float64{0, 1, 2}
	vals := []float64{0, 0, 1}
	got, err := CrossTime(times, vals, 0.25, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1.25) > 1e-12 {
		t.Fatalf("crossing at %v want 1.25", got)
	}
}

func TestCrossTimeDirection(t *testing.T) {
	times := linspace(0, 10, 101)
	// Rises then falls: the falling search must find the later crossing.
	vals := make([]float64, len(times))
	for i, tm := range times {
		if tm < 5 {
			vals[i] = tm / 5
		} else {
			vals[i] = (10 - tm) / 5
		}
	}
	up, err := CrossTime(times, vals, 0.5, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	down, err := CrossTime(times, vals, 0.5, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(up-2.5) > 1e-9 || math.Abs(down-7.5) > 1e-9 {
		t.Fatalf("up=%v down=%v", up, down)
	}
}

func TestCrossTimeAfter(t *testing.T) {
	times := linspace(0, 4, 401)
	vals := make([]float64, len(times))
	for i, tm := range times {
		// Two rising crossings of 0.5: near t=0.5 and t=2.5.
		vals[i] = math.Abs(math.Sin(tm * math.Pi / 2))
	}
	first, err := CrossTime(times, vals, 0.5, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	second, err := CrossTime(times, vals, 0.5, true, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if second <= first || second < 1.5 {
		t.Fatalf("after filter broken: first=%v second=%v", first, second)
	}
}

func TestCrossTimeNoCrossing(t *testing.T) {
	times := []float64{0, 1}
	vals := []float64{0, 0.1}
	if _, err := CrossTime(times, vals, 0.5, true, 0); err == nil {
		t.Fatal("missing crossing not reported")
	}
}

func TestMeasureSlewIdealRamp(t *testing.T) {
	const vdd = 1.0
	times := linspace(0, 10e-12, 2001)
	vals := ramp(times, 1e-12, 5e-12, 0, vdd)
	slew, err := MeasureSlew(times, vals, vdd, Rising, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The 30-70 interval of a 5 ps full ramp is 2 ps; the effective-ramp
	// metric scales it by slewExtrapolation.
	want := 2e-12 * slewExtrapolation
	if math.Abs(slew-want) > 1e-14 {
		t.Fatalf("slew %v want %v", slew, want)
	}
	// Falling edge symmetry.
	fvals := ramp(times, 1e-12, 5e-12, vdd, 0)
	fslew, err := MeasureSlew(times, fvals, vdd, Falling, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fslew-slew) > 1e-14 {
		t.Fatalf("falling slew %v != rising %v", fslew, slew)
	}
}

func TestRampTimeForSlew(t *testing.T) {
	if got := RampTimeForSlew(8e-12); math.Abs(got-1e-11) > 1e-20 {
		t.Fatalf("RampTimeForSlew: %v", got)
	}
}

func TestMeasureStageDelay(t *testing.T) {
	const vdd = 1.0
	times := linspace(0, 40e-12, 4001)
	out := ramp(times, 10e-12, 8e-12, vdd, 0) // falls, 50% at 14 ps
	m, err := MeasureStage(nil, nil, 6e-12, Rising, times, out, Falling, vdd, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Delay-8e-12) > 1e-14 {
		t.Fatalf("delay %v want 8e-12", m.Delay)
	}
	if !m.Settled {
		t.Fatal("fully fallen output not marked settled")
	}
}

func TestMeasureStageNegativeDelay(t *testing.T) {
	// Output crosses before the input midpoint: the delay must come out
	// negative rather than being missed (near-threshold slow-slew case).
	const vdd = 1.0
	times := linspace(0, 40e-12, 4001)
	out := ramp(times, 2e-12, 4e-12, vdd, 0) // 50% at 4 ps
	m, err := MeasureStage(nil, nil, 10e-12, Rising, times, out, Falling, vdd, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Delay >= 0 {
		t.Fatalf("expected negative delay, got %v", m.Delay)
	}
	if math.Abs(m.Delay+6e-12) > 1e-14 {
		t.Fatalf("delay %v want -6e-12", m.Delay)
	}
}

func TestMeasureStageUnsettled(t *testing.T) {
	const vdd = 1.0
	times := linspace(0, 40e-12, 401)
	// Falls to 7% of vdd: crosses both slew thresholds but ends above the
	// 5% settling band.
	out := ramp(times, 10e-12, 8e-12, vdd, 0.07*vdd)
	m, err := MeasureStage(nil, nil, 6e-12, Rising, times, out, Falling, vdd, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Settled {
		t.Fatal("7%-rail output marked settled")
	}
}

func TestEdgeHelpers(t *testing.T) {
	if Rising.String() != "rise" || Falling.String() != "fall" {
		t.Fatal("Edge.String broken")
	}
	if Rising.Opposite() != Falling || Falling.Opposite() != Rising {
		t.Fatal("Edge.Opposite broken")
	}
}

func TestLastValue(t *testing.T) {
	if v := LastValue([]float64{1, 2, 3}); v != 3 {
		t.Fatalf("LastValue %v", v)
	}
	if !math.IsNaN(LastValue(nil)) {
		t.Fatal("LastValue(nil) should be NaN")
	}
}

func TestTrimTransition(t *testing.T) {
	const vdd = 1.0
	times := linspace(0, 100e-12, 1001)
	vals := ramp(times, 40e-12, 10e-12, 0, vdd)
	tt, vv := TrimTransition(times, vals, vdd)
	if len(tt) == 0 || len(tt) != len(vv) {
		t.Fatal("trim produced nothing")
	}
	// The span must be far shorter than the original but still contain the
	// full transition.
	if tt[len(tt)-1]-tt[0] > 40e-12 {
		t.Fatalf("trimmed span %v too long", tt[len(tt)-1]-tt[0])
	}
	if vv[0] > 0.05*vdd || vv[len(vv)-1] < 0.95*vdd {
		t.Fatalf("transition endpoints lost: %v..%v", vv[0], vv[len(vv)-1])
	}
	// Time must be rebased near zero.
	if tt[0] < 0 || tt[0] > 5e-12 {
		t.Fatalf("trim did not rebase time: starts at %v", tt[0])
	}
	// Crossing times relative to the span must be preserved: the 50%% point
	// sits in the middle of the 10ps ramp.
	cross, err := CrossTime(tt, vv, vdd/2, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	origCross, _ := CrossTime(times, vals, vdd/2, true, 0)
	lo, _ := CrossTime(tt, vv, 0.1*vdd, true, 0)
	origLo, _ := CrossTime(times, vals, 0.1*vdd, true, 0)
	if math.Abs((cross-lo)-(origCross-origLo)) > 1e-15 {
		t.Fatal("trim distorted intra-waveform intervals")
	}
}

func TestTrimTransitionEmpty(t *testing.T) {
	tt, vv := TrimTransition(nil, nil, 1)
	if tt != nil || vv != nil {
		t.Fatal("empty input should yield empty output")
	}
}
