package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
}

func TestSeedSeparation(t *testing.T) {
	// Adjacent seeds must not produce correlated first draws.
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds shared %d of 100 draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(13)
	const n = 400000
	var sum, sum2, sum3 float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sum2 += x * x
		sum3 += x * x * x
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	skew := sum3 / n
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean %v", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance %v", variance)
	}
	if math.Abs(skew) > 0.03 {
		t.Errorf("normal third moment %v", skew)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(17)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for b, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("bucket %d count %d outside uniform expectation", b, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestSplitIndependence(t *testing.T) {
	parent := New(23)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	c1again := parent.Split(1)
	// Same label: identical stream. Different label: different stream.
	if c1.Uint64() != c1again.Uint64() {
		t.Fatal("Split with equal labels produced different streams")
	}
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("Split with different labels produced equal draws")
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a := New(29)
	b := New(29)
	_ = a.Split(5)
	_ = a.Split(6)
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split advanced the parent stream")
		}
	}
}

func TestAtMatchesWorkerScheduling(t *testing.T) {
	base := New(31)
	// Values drawn via At(i) must not depend on the order of At calls.
	want := make([]uint64, 16)
	for i := range want {
		want[i] = base.At(i).Uint64()
	}
	for i := len(want) - 1; i >= 0; i-- {
		if got := base.At(i).Uint64(); got != want[i] {
			t.Fatalf("At(%d) depends on call order: got %d want %d", i, got, want[i])
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(37)
	err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestLogNormPositive(t *testing.T) {
	r := New(41)
	for i := 0; i < 10000; i++ {
		if v := r.LogNormFloat64(-25, 0.5); v <= 0 {
			t.Fatalf("lognormal produced non-positive %v", v)
		}
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced degenerate stream")
	}
}
