// Package rng provides a deterministic, splittable pseudo-random number
// generator for Monte-Carlo simulation.
//
// Every stochastic component in this repository draws from an rng.Stream
// seeded explicitly by the caller, and large Monte-Carlo runs derive one
// independent sub-stream per sample via Split or At. This makes results
// bit-reproducible regardless of goroutine scheduling: sample i always sees
// the same variates no matter how many workers execute the run.
//
// The core generator is xoshiro256** (Blackman & Vigna), seeded through
// SplitMix64 so that correlated user seeds (0, 1, 2, ...) still yield
// well-separated states.
package rng

import "math"

// Stream is a deterministic random number stream. It is not safe for
// concurrent use; derive one Stream per goroutine with Split or At.
type Stream struct {
	s [4]uint64

	// cached second variate of the Box-Muller pair.
	haveGauss bool
	gauss     float64
}

// splitMix64 advances a SplitMix64 state and returns the next output.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Stream seeded from seed.
func New(seed uint64) *Stream {
	var st Stream
	sm := seed
	for i := range st.s {
		st.s[i] = splitMix64(&sm)
	}
	// xoshiro must not start from the all-zero state; SplitMix64 cannot
	// produce four zero outputs in a row, but guard anyway.
	if st.s[0]|st.s[1]|st.s[2]|st.s[3] == 0 {
		st.s[0] = 0x9e3779b97f4a7c15
	}
	return &st
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Stream) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform variate in [0, 1).
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling would be overkill for
	// simulation workloads; modulo bias at n << 2^64 is negligible but we
	// still reject to keep streams exactly uniform.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// NormFloat64 returns a standard normal variate (polar Box-Muller).
func (r *Stream) NormFloat64() float64 {
	if r.haveGauss {
		r.haveGauss = false
		return r.gauss
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.gauss = v * f
		r.haveGauss = true
		return u * f
	}
}

// LogNormFloat64 returns exp(mu + sigma*Z) for a standard normal Z.
func (r *Stream) LogNormFloat64(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Split derives an independent child stream labelled by label. Distinct
// labels on the same parent yield decorrelated streams; the parent is not
// advanced, so splitting is itself deterministic.
func (r *Stream) Split(label uint64) *Stream {
	// Mix the parent state with the label through SplitMix64.
	sm := r.s[0] ^ rotl(r.s[2], 13) ^ (label * 0xd1342543de82ef95)
	var child Stream
	for i := range child.s {
		child.s[i] = splitMix64(&sm)
	}
	if child.s[0]|child.s[1]|child.s[2]|child.s[3] == 0 {
		child.s[0] = 1
	}
	return &child
}

// At is shorthand for deriving the i-th per-sample stream of a Monte-Carlo
// run. It is what simulation loops use so that sample i is reproducible
// independent of worker scheduling.
func (r *Stream) At(i int) *Stream { return r.Split(uint64(i) + 0x5851f42d4c957f2d) }

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (r *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
