package wal_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/wal"
	"repro/internal/wal/faultfs"
)

type rec struct {
	seq     uint64
	payload string
}

// collect returns a replay callback appending into dst.
func collect(dst *[]rec) func(uint64, []byte) error {
	return func(seq uint64, payload []byte) error {
		*dst = append(*dst, rec{seq, string(payload)})
		return nil
	}
}

func mustOpen(t *testing.T, path string, o wal.Options, replay func(uint64, []byte) error) (*wal.Log, wal.OpenResult) {
	t.Helper()
	l, res, err := wal.Open(path, o, replay)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	return l, res
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d", "wal.log")
	l, res := mustOpen(t, path, wal.Options{}, nil)
	if res.Records != 0 || res.LastSeq != 0 {
		t.Fatalf("fresh log scanned %+v", res)
	}
	const n = 25
	for i := 0; i < n; i++ {
		seq, err := l.Append([]byte(fmt.Sprintf("edit-%03d", i)))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("append %d: seq %d", i, seq)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var got []rec
	l2, res2 := mustOpen(t, path, wal.Options{}, collect(&got))
	defer l2.Close()
	if res2.Records != n || res2.LastSeq != n || res2.TruncatedBytes != 0 {
		t.Fatalf("reopen scanned %+v", res2)
	}
	for i, r := range got {
		if r.seq != uint64(i+1) || r.payload != fmt.Sprintf("edit-%03d", i) {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
	if l2.LastSeq() != n {
		t.Fatalf("LastSeq = %d", l2.LastSeq())
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := mustOpen(t, path, wal.Options{}, nil)
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	goodSize := l.Size()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: garbage half-record at the tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x21, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var got []rec
	l2, res := mustOpen(t, path, wal.Options{}, collect(&got))
	if res.Records != 5 || res.TruncatedBytes != 6 {
		t.Fatalf("scan after tear: %+v", res)
	}
	if l2.Size() != goodSize {
		t.Fatalf("size after truncation %d, want %d", l2.Size(), goodSize)
	}
	// The log must be appendable again, contiguously.
	seq, err := l2.Append([]byte("after-tear"))
	if err != nil || seq != 6 {
		t.Fatalf("append after tear: seq %d err %v", seq, err)
	}
	l2.Close()

	got = nil
	l3, res3 := mustOpen(t, path, wal.Options{}, collect(&got))
	defer l3.Close()
	if res3.Records != 6 || res3.TruncatedBytes != 0 {
		t.Fatalf("final scan: %+v", res3)
	}
	if got[5].payload != "after-tear" {
		t.Fatalf("final record %+v", got[5])
	}
}

func TestCorruptRecordDropsTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := mustOpen(t, path, wal.Options{}, nil)
	for i := 0; i < 8; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("p%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Flip one payload byte of record 4 (0-based): records 0..3 survive.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recSize := len(raw) / 8
	raw[4*recSize+16] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	var got []rec
	l2, res := mustOpen(t, path, wal.Options{}, collect(&got))
	defer l2.Close()
	if res.Records != 4 {
		t.Fatalf("recovered %d records, want 4 (%+v)", res.Records, res)
	}
	if res.TruncatedBytes != int64(4*recSize) {
		t.Fatalf("truncated %d bytes, want %d", res.TruncatedBytes, 4*recSize)
	}
	for i, r := range got {
		if r.payload != fmt.Sprintf("p%d", i) {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
}

func TestCompactionKeepsSeqMonotonic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := mustOpen(t, path, wal.Options{}, nil)
	for i := 0; i < 10; i++ {
		if _, err := l.Append([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.TruncateAll(); err != nil {
		t.Fatal(err)
	}
	if l.Size() != 0 {
		t.Fatalf("size after compaction %d", l.Size())
	}
	seq, err := l.Append([]byte("post-compaction"))
	if err != nil || seq != 11 {
		t.Fatalf("append after compaction: seq %d err %v", seq, err)
	}
	l.Close()

	// A compacted log restarts its scan at seq 11; the first record sets the
	// base, so nothing is treated as torn.
	var got []rec
	l2, res := mustOpen(t, path, wal.Options{}, collect(&got))
	if res.Records != 1 || res.LastSeq != 11 || res.TruncatedBytes != 0 {
		t.Fatalf("scan: %+v", res)
	}
	// EnsureSeq raises, never lowers.
	l2.EnsureSeq(5)
	if l2.LastSeq() != 11 {
		t.Fatalf("EnsureSeq lowered to %d", l2.LastSeq())
	}
	l2.EnsureSeq(20)
	if seq, _ := l2.Append([]byte("y")); seq != 21 {
		t.Fatalf("append after EnsureSeq: seq %d", seq)
	}
	l2.Close()
}

// TestKillDuringAppendEveryPrefix is the wal-level half of the
// kill-after-every-record property: for every crash point (each append's
// write, at several torn-prefix lengths), the remounted log must recover
// exactly the records fully appended before the crash.
func TestKillDuringAppendEveryPrefix(t *testing.T) {
	const n = 6
	payload := func(i int) []byte { return []byte(fmt.Sprintf("record-%d-%s", i, "0123456789abcdef")) }
	recLen := 16 + len(payload(0))

	for crashWrite := 1; crashWrite <= n; crashWrite++ {
		for _, keep := range []int{0, 1, 4, 15, 16, recLen - 1} {
			ffs := faultfs.New()
			l, _, err := wal.Open("data/wal.log", wal.Options{FS: ffs}, nil)
			if err != nil {
				t.Fatal(err)
			}
			ffs.CrashAfterWrites(crashWrite, keep)
			appended := 0
			for i := 0; i < n; i++ {
				if _, err := l.Append(payload(i)); err != nil {
					break
				}
				appended++
			}
			if appended != crashWrite-1 {
				t.Fatalf("crash@%d keep=%d: %d appends succeeded", crashWrite, keep, appended)
			}

			var got []rec
			l2, res, err := wal.Open("data/wal.log", wal.Options{FS: ffs.Image()}, collect(&got))
			if err != nil {
				t.Fatalf("crash@%d keep=%d: remount: %v", crashWrite, keep, err)
			}
			if res.Records != appended {
				t.Fatalf("crash@%d keep=%d: recovered %d records, want %d",
					crashWrite, keep, res.Records, appended)
			}
			if wantTorn := int64(keep); res.TruncatedBytes != wantTorn {
				t.Fatalf("crash@%d keep=%d: torn %d bytes, want %d",
					crashWrite, keep, res.TruncatedBytes, wantTorn)
			}
			for i, r := range got {
				if !bytes.Equal([]byte(r.payload), payload(i)) || r.seq != uint64(i+1) {
					t.Fatalf("crash@%d keep=%d: record %d = %+v", crashWrite, keep, i, r)
				}
			}
			// The survivor must accept appends at the next seq.
			if seq, err := l2.Append([]byte("resumed")); err != nil || seq != uint64(appended+1) {
				t.Fatalf("crash@%d keep=%d: resume append seq %d err %v", crashWrite, keep, seq, err)
			}
			l2.Close()
		}
	}
}

func TestFsyncFailureSurfaces(t *testing.T) {
	ffs := faultfs.New()
	l, _, err := wal.Open("wal.log", wal.Options{FS: ffs}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	ffs.FailNthSync(ffs.SyncsSeen() + 1)
	if _, err := l.Append([]byte("doomed")); !errors.Is(err, faultfs.ErrSyncFailed) {
		t.Fatalf("append with failing fsync: %v", err)
	}
	// The failure is one-shot; the log keeps working.
	if _, err := l.Append([]byte("recovered")); err != nil {
		t.Fatalf("append after fsync failure: %v", err)
	}
}

func TestSyncIntervalPolicy(t *testing.T) {
	ffs := faultfs.New()
	l, _, err := wal.Open("wal.log", wal.Options{FS: ffs, Policy: wal.SyncInterval, Interval: 5 * time.Millisecond}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("buffered")); err != nil {
		t.Fatal(err)
	}
	// The background flusher makes it durable without an explicit Sync.
	deadline := time.Now().Add(2 * time.Second)
	for {
		ffs.SetDropUnsynced(true)
		img := ffs.Image()
		ffs.SetDropUnsynced(false)
		if data, err := img.ReadFile("wal.log"); err == nil && len(data) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("interval flusher never made the append durable")
		}
		time.Sleep(time.Millisecond)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestAtomicWriteCrashSafety(t *testing.T) {
	ffs := faultfs.New()
	if err := ffs.MkdirAll("snaps", 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(content string) func(io.Writer) error {
		return func(w io.Writer) error {
			_, err := w.Write([]byte(content))
			return err
		}
	}
	// A completed AtomicWrite survives a crash immediately after it returns:
	// the dir fsync pinned the rename.
	if err := wal.AtomicWrite(ffs, "snaps/s.json", write("v1")); err != nil {
		t.Fatal(err)
	}
	ffs.CrashNow()
	img := ffs.Image()
	if data, err := img.ReadFile("snaps/s.json"); err != nil || string(data) != "v1" {
		t.Fatalf("after crash: %q, %v", data, err)
	}

	// A crash during the replacement write leaves the old content intact.
	img.CrashAfterWrites(img.Writes()+1, 1)
	if err := wal.AtomicWrite(img, "snaps/s.json", write("v2-much-longer")); err == nil {
		t.Fatal("AtomicWrite during crash succeeded")
	}
	img2 := img.Image()
	if data, err := img2.ReadFile("snaps/s.json"); err != nil || string(data) != "v1" {
		t.Fatalf("old content lost: %q, %v", data, err)
	}
}
