package wal

import "repro/internal/obs"

// Process-wide WAL metrics, aggregated across every open log (the timing
// server keeps one per loaded design).
var (
	mAppends = obs.Default().Counter("wal_appends_total",
		"Records appended across all write-ahead logs.")
	mAppendBytes = obs.Default().Counter("wal_append_bytes_total",
		"Bytes appended (headers included) across all write-ahead logs.")
	mTruncations = obs.Default().Counter("wal_truncations_total",
		"Compactions: logs truncated after their records were folded into a durable snapshot.")
	mTornTailBytes = obs.Default().Counter("wal_torn_tail_bytes_total",
		"Bytes dropped as torn or corrupt tails during log open/recovery.")
	hFsyncSeconds = obs.Default().Histogram("wal_fsync_seconds",
		"Wall time of one WAL fsync.")
)
