// Package wal is the per-design durability layer of the timing service: an
// append-only write-ahead log of length-prefixed, CRC-protected records with
// a configurable fsync policy, plus the small filesystem abstraction (FS)
// that lets the fault-injection harness (internal/wal/faultfs) simulate
// short writes, fsync failures and power loss at every byte boundary.
//
// The crash-safety contract every consumer builds on:
//
//   - A record is durable once Append returns under SyncAlways (under
//     SyncInterval, once the interval flusher has run).
//   - Open truncates a torn tail — a partial or CRC-corrupt final record
//     left by a crash mid-append — and recovers every record before it.
//   - AtomicWrite replaces a file so that after a crash either the old or
//     the new content is present, never a mix and never neither: temp file
//     write, file fsync, rename, parent-directory fsync.
package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
)

// File is the open-file surface the log and AtomicWrite need. *os.File
// satisfies it; faultfs.FS hands out fault-injecting implementations.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file's content to stable storage (fsync).
	Sync() error
	// Truncate cuts the file to size bytes (used to drop a torn tail and to
	// compact a fully-snapshotted log).
	Truncate(size int64) error
	// Seek repositions the read/write offset.
	Seek(offset int64, whence int) (int64, error)
}

// FS is the filesystem slice the durability layer runs on. The OS
// implementation is OS(); faultfs provides the injectable in-memory one.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics for the flags used
	// here: O_RDWR|O_CREATE (log segments), O_WRONLY|O_CREATE|O_TRUNC
	// (temp files), O_RDONLY (recovery reads).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath (POSIX rename).
	Rename(oldpath, newpath string) error
	// Remove unlinks name.
	Remove(name string) error
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string, perm os.FileMode) error
	// ReadDir lists the names (files and directories) directly under dir,
	// sorted. A missing directory returns an error satisfying os.IsNotExist
	// via errors.Is(err, os.ErrNotExist).
	ReadDir(dir string) ([]string, error)
	// SyncDir fsyncs the directory entry itself, making previously created,
	// renamed or removed names under dir durable.
	SyncDir(dir string) error
}

// osFS is the real filesystem.
type osFS struct{}

// OS returns the operating-system FS.
func OS() FS { return osFS{} }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) MkdirAll(dir string, perm os.FileMode) error {
	return os.MkdirAll(dir, perm)
}

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name()
	}
	return names, nil
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// tmpSeq disambiguates concurrent AtomicWrite temp files for one target.
var tmpSeq atomic.Uint64

// AtomicWrite replaces path with the bytes produced by write, crash-safely:
// the content goes to a temporary file in the same directory, the file is
// fsynced and closed, renamed over path, and the parent directory entry is
// fsynced. After a power loss the path holds either the complete old or the
// complete new content — a freshly created file cannot vanish (the
// directory fsync is what pins the rename; without it the new entry may
// never reach the disk even though the data blocks did).
func AtomicWrite(fsys FS, path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp := fmt.Sprintf("%s.tmp.%d.%d", path, os.Getpid(), tmpSeq.Add(1))
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	defer fsys.Remove(tmp) // no-op after a successful rename
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return err
	}
	return fsys.SyncDir(dir)
}
