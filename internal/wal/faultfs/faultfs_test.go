package faultfs_test

import (
	"errors"
	"io"
	"os"
	"testing"

	"repro/internal/wal"
	"repro/internal/wal/faultfs"
)

func write(t *testing.T, f wal.File, s string) {
	t.Helper()
	if _, err := f.Write([]byte(s)); err != nil {
		t.Fatal(err)
	}
}

// TestRenameWithoutDirSyncVanishes pins the durability model the
// atomic-save regression test relies on: a file renamed into place but
// whose directory entry was never fsynced does not survive a power loss.
func TestRenameWithoutDirSyncVanishes(t *testing.T) {
	fs := faultfs.New()
	if err := fs.MkdirAll("d", 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := fs.OpenFile("d/x.tmp", os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	write(t, f, "content")
	if err := f.Sync(); err != nil { // content fsynced — but the entry is not
		t.Fatal(err)
	}
	f.Close()
	if err := fs.Rename("d/x.tmp", "d/x"); err != nil {
		t.Fatal(err)
	}
	fs.CrashNow()
	img := fs.Image()
	if _, err := img.ReadFile("d/x"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("un-synced rename survived the crash: %v", err)
	}

	// Same sequence with the directory fsync: the file survives.
	fs2 := faultfs.New()
	fs2.MkdirAll("d", 0o755)
	f2, _ := fs2.OpenFile("d/x.tmp", os.O_WRONLY|os.O_CREATE, 0o644)
	write(t, f2, "content")
	f2.Sync()
	f2.Close()
	fs2.Rename("d/x.tmp", "d/x")
	if err := fs2.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	fs2.CrashNow()
	if data, err := fs2.Image().ReadFile("d/x"); err != nil || string(data) != "content" {
		t.Fatalf("synced rename lost: %q, %v", data, err)
	}
}

func TestDropUnsyncedRollsBackContent(t *testing.T) {
	fs := faultfs.New()
	f, _ := fs.OpenFile("x", os.O_WRONLY|os.O_CREATE, 0o644)
	write(t, f, "durable-")
	f.Sync()
	write(t, f, "volatile")
	fs.SyncDir(".")
	fs.SetDropUnsynced(true)
	fs.CrashNow()
	if data, _ := fs.Image().ReadFile("x"); string(data) != "durable-" {
		t.Fatalf("DropUnsynced image = %q", data)
	}
	fs.SetDropUnsynced(false)
	if data, _ := fs.Image().ReadFile("x"); string(data) != "durable-volatile" {
		t.Fatalf("default image = %q", data)
	}
}

func TestCrashPointShortWrite(t *testing.T) {
	fs := faultfs.New()
	f, _ := fs.OpenFile("x", os.O_WRONLY|os.O_CREATE, 0o644)
	fs.CrashAfterWrites(1, 3)
	if _, err := f.Write([]byte("abcdef")); !errors.Is(err, faultfs.ErrCrashed) {
		t.Fatalf("armed write: %v", err)
	}
	if !fs.Crashed() {
		t.Fatal("crash point did not fire")
	}
	if _, err := fs.OpenFile("y", os.O_RDONLY, 0); !errors.Is(err, faultfs.ErrCrashed) {
		t.Fatalf("post-crash op: %v", err)
	}
	// The torn prefix is visible in the image (the entry existed durably
	// only if dir-synced; "." is durable from construction — sync it first).
	img := fs.Image()
	if _, err := img.ReadFile("x"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("never-dir-synced file survived: %v", err)
	}
}

func TestReadDirAndNestedNames(t *testing.T) {
	fs := faultfs.New()
	fs.MkdirAll("root/designs/a", 0o755)
	fs.MkdirAll("root/designs/b", 0o755)
	f, _ := fs.OpenFile("root/designs/a/wal.log", os.O_WRONLY|os.O_CREATE, 0o644)
	f.Close()
	names, err := fs.ReadDir("root/designs")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("ReadDir = %v", names)
	}
	if _, err := fs.ReadDir("root/missing"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing dir: %v", err)
	}
}

func TestSeekReadWrite(t *testing.T) {
	fs := faultfs.New()
	f, _ := fs.OpenFile("x", os.O_RDWR|os.O_CREATE, 0o644)
	write(t, f, "hello world")
	if _, err := f.Seek(6, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(f, buf); err != nil || string(buf) != "world" {
		t.Fatalf("read %q, %v", buf, err)
	}
	if err := f.Truncate(5); err != nil {
		t.Fatal(err)
	}
	if data, _ := fs.ReadFile("x"); string(data) != "hello" {
		t.Fatalf("after truncate: %q", data)
	}
}
