// Package faultfs is an in-memory wal.FS with byte-level fault injection:
// short writes, fsync failures, and crash points that freeze the filesystem
// and yield the durable image a power loss would leave behind. It drives
// the kill-after-every-record recovery property tests and the atomic-save
// regression tests.
//
// Durability model (a deliberate worst-case reading of POSIX):
//
//   - File *content* written before the crash survives as written — except
//     the write the crash lands on, which keeps only its configured prefix
//     (a torn write). Callers that need the stricter "unsynced data is
//     lost" reading can set DropUnsynced, which rolls every file back to
//     its last fsynced length.
//   - A file's *name* survives only if the directory entry was made durable
//     by a SyncDir after the last create/rename/remove affecting it. A file
//     created (or renamed into place) without a directory sync vanishes
//     entirely at the crash image, whatever was fsynced into it.
//
// After the crash point fires, every subsequent operation returns
// ErrCrashed; Image() then builds the surviving filesystem to remount.
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/wal"
)

// ErrCrashed is returned by every operation after the crash point fired.
var ErrCrashed = errors.New("faultfs: simulated crash")

// ErrSyncFailed is the injected fsync failure.
var ErrSyncFailed = errors.New("faultfs: injected fsync failure")

// inode is one file's content, shared by every name and handle that
// references it.
type inode struct {
	data   []byte
	synced int // durable length as of the last File.Sync
}

// FS implements wal.FS in memory with fault injection. The zero value is
// not usable; create with New.
type FS struct {
	mu     sync.Mutex
	inodes map[string]*inode // live namespace: name → inode
	dirs   map[string]bool   // live directories
	// durable mirrors the namespace as of the relevant SyncDir calls.
	durableNames map[string]*inode
	durableDirs  map[string]bool

	writes       int // Write ops seen so far
	crashAtWr    int // crash on the Nth write (1-based; 0 = disarmed)
	crashKeep    int // bytes of the crashing write that still land
	crashed      bool
	dropUnsynced bool

	syncs     int // Sync ops seen so far
	failSyncN int // fail the Nth sync (1-based; 0 = disarmed)
}

// New returns an empty fault-injection filesystem with no faults armed.
func New() *FS {
	return &FS{
		inodes:       map[string]*inode{},
		dirs:         map[string]bool{"/": true, ".": true},
		durableNames: map[string]*inode{},
		durableDirs:  map[string]bool{"/": true, ".": true},
	}
}

// CrashAfterWrites arms the crash point: the nth Write (1-based, counted
// across all files) keeps only keep bytes and every operation afterwards
// returns ErrCrashed.
func (f *FS) CrashAfterWrites(n, keep int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashAtWr, f.crashKeep = n, keep
}

// FailNthSync arms a one-shot fsync failure on the nth Sync call (1-based),
// without crashing the filesystem.
func (f *FS) FailNthSync(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failSyncN = n
}

// SetDropUnsynced selects the strict durability reading: at the crash
// image, file content rolls back to the last fsynced length instead of
// keeping completed-but-unsynced writes.
func (f *FS) SetDropUnsynced(v bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dropUnsynced = v
}

// CrashNow triggers the crash point immediately.
func (f *FS) CrashNow() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashed = true
}

// Crashed reports whether the crash point has fired.
func (f *FS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Writes returns the number of Write operations seen so far — the basis
// for enumerating crash points.
func (f *FS) Writes() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writes
}

// SyncsSeen returns the number of Sync/SyncDir operations seen so far — the
// basis for aiming FailNthSync.
func (f *FS) SyncsSeen() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.syncs
}

// Image returns the filesystem a remount after the crash would see: only
// durably-linked names, with the content each inode carries under the
// durability model. The image is a fresh, fault-free FS (arm new faults
// explicitly). Calling Image before a crash yields the would-be image of a
// crash at this instant.
func (f *FS) Image() *FS {
	f.mu.Lock()
	defer f.mu.Unlock()
	img := New()
	for d := range f.durableDirs {
		img.dirs[d] = true
		img.durableDirs[d] = true
	}
	for name, ino := range f.durableNames {
		data := ino.data
		if f.dropUnsynced {
			data = data[:min(ino.synced, len(data))]
		}
		cp := &inode{data: append([]byte(nil), data...)}
		cp.synced = len(cp.data)
		img.inodes[name] = cp
		img.durableNames[name] = cp
		// Parent dirs of surviving names exist on remount.
		for d := filepath.Dir(name); d != "." && d != "/"; d = filepath.Dir(d) {
			img.dirs[d] = true
			img.durableDirs[d] = true
		}
	}
	return img
}

// ReadFile returns the live content of name (test convenience).
func (f *FS) ReadFile(name string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	ino, ok := f.inodes[cleanPath(name)]
	if !ok {
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	}
	return append([]byte(nil), ino.data...), nil
}

func cleanPath(p string) string { return filepath.Clean(p) }

func (f *FS) checkCrashed() error {
	if f.crashed {
		return ErrCrashed
	}
	return nil
}

// --- wal.FS implementation ---

// OpenFile implements wal.FS.
func (f *FS) OpenFile(name string, flag int, perm os.FileMode) (wal.File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.checkCrashed(); err != nil {
		return nil, err
	}
	name = cleanPath(name)
	dir := filepath.Dir(name)
	if !f.dirs[dir] {
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	}
	ino, ok := f.inodes[name]
	if !ok {
		if flag&os.O_CREATE == 0 {
			return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
		}
		ino = &inode{}
		f.inodes[name] = ino
	} else if flag&os.O_TRUNC != 0 {
		ino.data = nil
		ino.synced = 0
	}
	h := &handle{fs: f, ino: ino, name: name}
	if flag&os.O_APPEND != 0 {
		h.off = int64(len(ino.data))
	}
	return h, nil
}

// Rename implements wal.FS. The rename is atomic in the live namespace but
// durable only after a SyncDir of the parent directory.
func (f *FS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.checkCrashed(); err != nil {
		return err
	}
	oldpath, newpath = cleanPath(oldpath), cleanPath(newpath)
	ino, ok := f.inodes[oldpath]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldpath, Err: os.ErrNotExist}
	}
	delete(f.inodes, oldpath)
	f.inodes[newpath] = ino
	return nil
}

// Remove implements wal.FS.
func (f *FS) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.checkCrashed(); err != nil {
		return err
	}
	name = cleanPath(name)
	if _, ok := f.inodes[name]; !ok {
		if !f.dirs[name] {
			return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
		}
		// Directories mirror MkdirAll's coarse model: creation and removal of
		// the entry are durable immediately (files are the fault surface).
		delete(f.dirs, name)
		delete(f.durableDirs, name)
		return nil
	}
	delete(f.inodes, name)
	return nil
}

// MkdirAll implements wal.FS. Directory creation is treated as durable
// immediately — the interesting fault surface here is files, not mkdir.
func (f *FS) MkdirAll(dir string, perm os.FileMode) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.checkCrashed(); err != nil {
		return err
	}
	dir = cleanPath(dir)
	for d := dir; ; d = filepath.Dir(d) {
		f.dirs[d] = true
		f.durableDirs[d] = true
		if d == "." || d == "/" || filepath.Dir(d) == d {
			break
		}
	}
	return nil
}

// ReadDir implements wal.FS.
func (f *FS) ReadDir(dir string) ([]string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.checkCrashed(); err != nil {
		return nil, err
	}
	dir = cleanPath(dir)
	if !f.dirs[dir] {
		return nil, &os.PathError{Op: "readdir", Path: dir, Err: os.ErrNotExist}
	}
	seen := map[string]bool{}
	collect := func(name string) {
		if filepath.Dir(name) == dir {
			seen[filepath.Base(name)] = true
			return
		}
		// Deeper entries surface as their first component under dir.
		if rel, err := filepath.Rel(dir, name); err == nil && !strings.HasPrefix(rel, "..") {
			if i := strings.IndexByte(rel, filepath.Separator); i > 0 {
				seen[rel[:i]] = true
			}
		}
	}
	for name := range f.inodes {
		collect(name)
	}
	for d := range f.dirs {
		if d != dir {
			collect(d)
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// SyncDir implements wal.FS: the directory's current name set becomes
// durable.
func (f *FS) SyncDir(dir string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.checkCrashed(); err != nil {
		return err
	}
	f.syncs++
	if f.failSyncN > 0 && f.syncs == f.failSyncN {
		f.failSyncN = 0
		return fmt.Errorf("syncdir %s: %w", dir, ErrSyncFailed)
	}
	dir = cleanPath(dir)
	for name, ino := range f.inodes {
		if filepath.Dir(name) == dir {
			f.durableNames[name] = ino
		}
	}
	for name := range f.durableNames {
		if filepath.Dir(name) == dir {
			if _, live := f.inodes[name]; !live {
				delete(f.durableNames, name)
			}
		}
	}
	return nil
}

// --- file handles ---

// handle is one open file descriptor over an inode.
type handle struct {
	fs     *FS
	ino    *inode
	name   string
	off    int64
	closed bool
}

// Read implements io.Reader.
func (h *handle) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.fs.checkCrashed(); err != nil {
		return 0, err
	}
	if h.closed {
		return 0, os.ErrClosed
	}
	if h.off >= int64(len(h.ino.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.ino.data[h.off:])
	h.off += int64(n)
	return n, nil
}

// Write implements io.Writer with the crash point: the armed write keeps
// only its configured prefix and trips the crash.
func (h *handle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.fs.checkCrashed(); err != nil {
		return 0, err
	}
	if h.closed {
		return 0, os.ErrClosed
	}
	h.fs.writes++
	n := len(p)
	crash := h.fs.crashAtWr > 0 && h.fs.writes == h.fs.crashAtWr
	if crash {
		n = h.fs.crashKeep
		if n > len(p) {
			n = len(p)
		}
	}
	end := h.off + int64(n)
	if end > int64(len(h.ino.data)) {
		grown := make([]byte, end)
		copy(grown, h.ino.data)
		h.ino.data = grown
	}
	copy(h.ino.data[h.off:end], p[:n])
	h.off = end
	if crash {
		h.fs.crashed = true
		return n, fmt.Errorf("write %s: %w", h.name, ErrCrashed)
	}
	return n, nil
}

// Sync implements wal.File.
func (h *handle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.fs.checkCrashed(); err != nil {
		return err
	}
	if h.closed {
		return os.ErrClosed
	}
	h.fs.syncs++
	if h.fs.failSyncN > 0 && h.fs.syncs == h.fs.failSyncN {
		h.fs.failSyncN = 0
		return fmt.Errorf("sync %s: %w", h.name, ErrSyncFailed)
	}
	h.ino.synced = len(h.ino.data)
	return nil
}

// Truncate implements wal.File.
func (h *handle) Truncate(size int64) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.fs.checkCrashed(); err != nil {
		return err
	}
	if h.closed {
		return os.ErrClosed
	}
	if size < 0 {
		return fmt.Errorf("truncate %s: negative size %d", h.name, size)
	}
	if size <= int64(len(h.ino.data)) {
		h.ino.data = h.ino.data[:size]
	} else {
		grown := make([]byte, size)
		copy(grown, h.ino.data)
		h.ino.data = grown
	}
	if h.ino.synced > len(h.ino.data) {
		h.ino.synced = len(h.ino.data)
	}
	return nil
}

// Seek implements io.Seeker.
func (h *handle) Seek(offset int64, whence int) (int64, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.fs.checkCrashed(); err != nil {
		return 0, err
	}
	if h.closed {
		return 0, os.ErrClosed
	}
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = h.off
	case io.SeekEnd:
		base = int64(len(h.ino.data))
	default:
		return 0, fmt.Errorf("seek %s: bad whence %d", h.name, whence)
	}
	if base+offset < 0 {
		return 0, fmt.Errorf("seek %s: negative offset", h.name)
	}
	h.off = base + offset
	return h.off, nil
}

// Close implements io.Closer. Closing is allowed after a crash (drivers
// unwind); it just marks the handle dead.
func (h *handle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return os.ErrClosed
	}
	h.closed = true
	return nil
}
