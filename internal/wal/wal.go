package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// SyncPolicy selects when appended records reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acknowledged record is
	// durable. This is the default and the policy the recovery property
	// tests assume.
	SyncAlways SyncPolicy = iota
	// SyncInterval batches fsyncs on a background timer: appends return
	// after the buffered write, and up to Interval worth of acknowledged
	// records may be lost on power failure. Crash *consistency* is
	// unaffected — recovery still yields a clean record prefix.
	SyncInterval
)

// ParsePolicy maps the -fsync flag values onto a SyncPolicy.
func ParsePolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (want always or interval)", s)
	}
}

// Options tune Open.
type Options struct {
	// FS is the filesystem to run on (nil = the real one).
	FS FS
	// Policy is the fsync policy (default SyncAlways).
	Policy SyncPolicy
	// Interval is the background fsync period under SyncInterval
	// (default 100ms).
	Interval time.Duration
}

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// Record framing: a fixed 16-byte header followed by the payload.
//
//	[0:4)  uint32 LE  length of seq+payload (8 + len(payload))
//	[4:8)  uint32 LE  CRC-32 (IEEE) of bytes [8 : 8+length)
//	[8:16) uint64 LE  sequence number
//	[16:…) payload
//
// The CRC covers the sequence number and the payload, so a record replayed
// from a recycled offset with a stale length field cannot pass validation.
const headerSize = 16

// maxRecordBytes bounds one record (64 MiB) — a corrupt length field must
// not drive recovery into allocating the torn garbage as one giant record.
const maxRecordBytes = 64 << 20

// Log is a single-file append-only record log. Append/Sync/TruncateAll/
// Close are safe for concurrent use; one Log owns its file exclusively.
type Log struct {
	mu      sync.Mutex
	fsys    FS
	path    string
	f       File
	policy  SyncPolicy
	lastSeq uint64
	size    int64 // current file size (end offset for appends)
	dirty   bool  // unsynced appends pending (SyncInterval)
	closed  bool

	flushStop chan struct{} // nil unless a background flusher runs
	flushDone chan struct{}
}

// OpenResult reports what Open found in an existing log file.
type OpenResult struct {
	// Records is the number of valid records scanned (and replayed).
	Records int
	// LastSeq is the highest sequence number seen (0 for an empty log).
	LastSeq uint64
	// TruncatedBytes is the size of the torn tail dropped from the file —
	// non-zero after recovery from a crash mid-append.
	TruncatedBytes int64
}

// Open opens (creating if missing) the log at path, validates every record,
// truncates a torn or corrupt tail, and streams the valid records through
// replay in append order. It returns with the log positioned for appends.
// A nil replay skips delivery but still validates and truncates.
//
// A torn tail is expected after a crash; anything that parses as a framing
// violation mid-file is indistinguishable from one and is likewise dropped
// together with everything after it (the count is reported in OpenResult
// and the wal_torn_tail_bytes metric).
func Open(path string, o Options, replay func(seq uint64, payload []byte) error) (*Log, OpenResult, error) {
	var res OpenResult
	fsys := o.FS
	if fsys == nil {
		fsys = OS()
	}
	if o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
	if err := fsys.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, res, err
	}
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, res, err
	}
	// Pin the log file's directory entry: a log created and synced but whose
	// directory was never fsynced can vanish with the first power loss.
	if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, res, err
	}

	l := &Log{fsys: fsys, path: path, f: f, policy: o.Policy}
	good, err := l.scan(replay, &res)
	if err != nil {
		f.Close()
		return nil, res, err
	}
	if res.TruncatedBytes > 0 {
		mTornTailBytes.Add(uint64(res.TruncatedBytes))
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, res, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, res, err
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, res, err
	}
	l.size = good
	l.lastSeq = res.LastSeq
	if o.Policy == SyncInterval {
		l.flushStop = make(chan struct{})
		l.flushDone = make(chan struct{})
		go l.flushLoop(o.Interval)
	}
	return l, res, nil
}

// scan reads the file from the start, validating and delivering records.
// It returns the offset just past the last valid record.
func (l *Log) scan(replay func(uint64, []byte) error, res *OpenResult) (int64, error) {
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return 0, err
	}
	br := bufio.NewReader(l.f)
	var good int64
	var hdr [headerSize]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return good, nil
			}
			if err == io.ErrUnexpectedEOF {
				res.TruncatedBytes += tailSize(l, good)
				return good, nil
			}
			return 0, err
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		seq := binary.LittleEndian.Uint64(hdr[8:16])
		// The first record establishes the sequence base (compaction keeps
		// numbering monotonic across truncations, so a compacted log does not
		// restart at 1); every later record must follow contiguously.
		badSeq := seq == 0 || (res.Records > 0 && seq != res.LastSeq+1)
		if length < 8 || length > maxRecordBytes || badSeq {
			// Framing violation: torn header bytes, a corrupt length, or a
			// stale record from a recycled region. Drop the tail.
			res.TruncatedBytes += tailSize(l, good)
			return good, nil
		}
		payload := make([]byte, length-8)
		if _, err := io.ReadFull(br, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				res.TruncatedBytes += tailSize(l, good)
				return good, nil
			}
			return 0, err
		}
		h := crc32.NewIEEE()
		h.Write(hdr[8:16])
		h.Write(payload)
		if h.Sum32() != crc {
			res.TruncatedBytes += tailSize(l, good)
			return good, nil
		}
		if replay != nil {
			if err := replay(seq, payload); err != nil {
				return 0, err
			}
		}
		res.Records++
		res.LastSeq = seq
		good += int64(headerSize) + int64(len(payload))
	}
}

// tailSize measures how many bytes follow offset good — the torn tail the
// caller is about to truncate.
func tailSize(l *Log, good int64) int64 {
	end, err := l.f.Seek(0, io.SeekEnd)
	if err != nil {
		return 0
	}
	// Restore the scan position; the caller re-seeks before appending.
	l.f.Seek(good, io.SeekStart)
	if end < good {
		return 0
	}
	return end - good
}

// Append writes one record and returns its sequence number. Under
// SyncAlways the record is durable when Append returns; under SyncInterval
// it is durable after the next background flush (or Sync call).
func (l *Log) Append(payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if len(payload) > maxRecordBytes-8 {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds the %d-byte limit", len(payload), maxRecordBytes-8)
	}
	seq := l.lastSeq + 1
	buf := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(8+len(payload)))
	binary.LittleEndian.PutUint64(buf[8:16], seq)
	copy(buf[headerSize:], payload)
	h := crc32.NewIEEE()
	h.Write(buf[8:16])
	h.Write(buf[headerSize:])
	binary.LittleEndian.PutUint32(buf[4:8], h.Sum32())

	if _, err := l.f.Write(buf); err != nil {
		// A short or failed write leaves a torn tail; the next Open truncates
		// it. The log itself stays unusable for further appends only if the
		// caller keeps going — reposition so a retry overwrites the tear.
		if _, serr := l.f.Seek(l.size, io.SeekStart); serr == nil {
			l.f.Truncate(l.size)
		}
		return 0, err
	}
	l.size += int64(len(buf))
	l.lastSeq = seq
	mAppends.Inc()
	mAppendBytes.Add(uint64(len(buf)))
	if l.policy == SyncAlways {
		t0 := time.Now()
		if err := l.f.Sync(); err != nil {
			return 0, err
		}
		hFsyncSeconds.ObserveSince(t0)
	} else {
		l.dirty = true
	}
	return seq, nil
}

// Sync forces everything appended so far to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.closed {
		return ErrClosed
	}
	if l.policy == SyncAlways && !l.dirty {
		return nil
	}
	t0 := time.Now()
	if err := l.f.Sync(); err != nil {
		return err
	}
	hFsyncSeconds.ObserveSince(t0)
	l.dirty = false
	return nil
}

// flushLoop is the SyncInterval background fsync.
func (l *Log) flushLoop(interval time.Duration) {
	defer close(l.flushDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-l.flushStop:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed && l.dirty {
				if err := l.f.Sync(); err == nil {
					l.dirty = false
				}
			}
			l.mu.Unlock()
		}
	}
}

// TruncateAll drops every record — the compaction step after the records
// have been folded into a durable snapshot. The sequence counter is NOT
// reset: later appends continue the monotonic numbering, so a snapshot
// high-water mark stays unambiguous across compactions.
func (l *Log) TruncateAll() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.f.Truncate(0); err != nil {
		return err
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.size = 0
	l.dirty = false
	mTruncations.Inc()
	return nil
}

// LastSeq returns the sequence number of the most recent record (0 before
// the first append on a fresh log).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSeq
}

// EnsureSeq raises the sequence counter to at least seq. Recovery calls
// this with the snapshot's high-water mark after a compaction emptied the
// file, so new appends never reuse a folded-in number.
func (l *Log) EnsureSeq(seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq > l.lastSeq {
		l.lastSeq = seq
	}
}

// Size returns the current log file size in bytes.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Close flushes pending appends and closes the file.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	var syncErr error
	if l.dirty {
		syncErr = l.f.Sync()
		l.dirty = false
	}
	l.closed = true
	stop := l.flushStop
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-l.flushDone
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	return syncErr
}
