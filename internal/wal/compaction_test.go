package wal_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"repro/internal/wal"
	"repro/internal/wal/faultfs"
)

// compactSnap is the checkpoint artifact the property test persists — the
// same shape the server's design snapshots reduce to for the compaction
// invariant: a durably recorded WAL high-water mark.
type compactSnap struct {
	Seq uint64 `json:"seq"`
}

// TestCompactionNeverLosesAckedEdit is the compaction durability property
// test: a single writer interleaves fsynced appends with checkpoints
// (snapshot the current LastSeq, then TruncateAll — exactly the discipline
// design.persist runs on the server's writer goroutine), the filesystem
// crashes at a random write under the strict drop-unsynced model, and the
// remounted image must account for every acknowledged append: either its
// sequence is covered by the surviving snapshot's high-water mark, or the
// record replays byte-identically from the WAL. Afterwards EnsureSeq plus a
// fresh append must never reuse an acknowledged number.
func TestCompactionNeverLosesAckedEdit(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			fs := faultfs.New()
			fs.SetDropUnsynced(true)
			// Crash somewhere inside the op stream, possibly mid-write.
			fs.CrashAfterWrites(1+rng.Intn(120), rng.Intn(24))

			const dir = "data"
			walPath := dir + "/wal.log"
			snapPath := dir + "/snap.json"

			log, _, err := wal.Open(walPath, wal.Options{FS: fs, Policy: wal.SyncAlways}, nil)
			if errors.Is(err, faultfs.ErrCrashed) {
				verifyCompactionImage(t, fs, nil, 0)
				return
			}
			if err != nil {
				t.Fatal(err)
			}

			checkpoint := func() error {
				// Mirrors design.persist: capture the high-water mark, make the
				// snapshot durable, only then drop the folded-in records.
				seq := log.LastSeq()
				err := wal.AtomicWrite(fs, snapPath, func(w io.Writer) error {
					return json.NewEncoder(w).Encode(compactSnap{Seq: seq})
				})
				if err != nil {
					return err
				}
				return log.TruncateAll()
			}

			// acked maps every acknowledged sequence number to its payload;
			// maxAcked tracks the reuse bound for the post-recovery append.
			acked := map[uint64]string{}
			var maxAcked uint64
			crashed := false
			for op := 0; op < 60 && !crashed; op++ {
				if rng.Intn(4) == 0 {
					if err := checkpoint(); err != nil {
						if !errors.Is(err, faultfs.ErrCrashed) {
							t.Fatalf("checkpoint: %v", err)
						}
						crashed = true
					}
					continue
				}
				payload := fmt.Sprintf("edit-%d-%d", seed, op)
				seq, err := log.Append([]byte(payload))
				if err != nil {
					if !errors.Is(err, faultfs.ErrCrashed) {
						t.Fatalf("append: %v", err)
					}
					crashed = true
					continue
				}
				acked[seq] = payload
				if seq > maxAcked {
					maxAcked = seq
				}
			}
			if !crashed {
				// The op stream outran the crash point: crash now, at an
				// arbitrary quiescent instant. Still a valid crash image.
				fs.CrashNow()
			}
			verifyCompactionImage(t, fs, acked, maxAcked)
		})
	}
}

// verifyCompactionImage remounts the crash image and checks the property.
func verifyCompactionImage(t *testing.T, fs *faultfs.FS, acked map[uint64]string, maxAcked uint64) {
	t.Helper()
	img := fs.Image()

	// The snapshot is atomic: the image holds either a complete former
	// checkpoint or none at all — never a torn one.
	var snapSeq uint64
	if raw, err := img.ReadFile("data/snap.json"); err == nil {
		var snap compactSnap
		if err := json.Unmarshal(raw, &snap); err != nil {
			t.Fatalf("snapshot on crash image is torn: %v (%q)", err, raw)
		}
		snapSeq = snap.Seq
	}

	replayed := map[uint64]string{}
	log, _, err := wal.Open("data/wal.log", wal.Options{FS: img, Policy: wal.SyncAlways},
		func(seq uint64, payload []byte) error {
			replayed[seq] = string(payload)
			return nil
		})
	if err != nil {
		t.Fatalf("reopen crash image: %v", err)
	}
	defer log.Close()

	for seq, want := range acked {
		if seq <= snapSeq {
			continue // folded into the durable checkpoint
		}
		got, ok := replayed[seq]
		if !ok {
			t.Fatalf("acked edit seq=%d lost: snapshot covers <=%d and the WAL replayed %d records", seq, snapSeq, len(replayed))
		}
		if got != want {
			t.Fatalf("acked edit seq=%d replayed as %q, want %q", seq, got, want)
		}
	}

	// Recovery raises the counter past the checkpoint; the next acknowledged
	// sequence number must be new.
	log.EnsureSeq(snapSeq)
	seq, err := log.Append([]byte("post-recovery"))
	if err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	if seq <= maxAcked {
		t.Fatalf("post-recovery append reused seq %d (max acked %d)", seq, maxAcked)
	}
}
