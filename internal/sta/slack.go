package sta

import (
	"fmt"
	"math"
	"sort"
)

// SlackReport summarises a max-delay (setup) check of every timed endpoint
// against a clock period, at one sigma level — the signoff question the
// paper's 99.86 % quantile exists to answer.
type SlackReport struct {
	Period     float64
	Level      int
	WNS        float64 // worst slack (negative = violated)
	TNS        float64 // total negative slack (≤ 0)
	Violations int
	Endpoints  int
	// Worst is the endpoint key ("net/edge") with the worst slack.
	Worst string
}

// Slack evaluates setup slacks from a Result's endpoint arrivals.
func (r *Result) Slack(period float64, level int) (*SlackReport, error) {
	if len(r.EndpointArrivals) == 0 {
		return nil, fmt.Errorf("sta: result carries no endpoint arrivals")
	}
	rep := &SlackReport{Period: period, Level: level, WNS: math.Inf(1)}
	keys := make([]string, 0, len(r.EndpointArrivals))
	for k := range r.EndpointArrivals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		arr, ok := r.EndpointArrivals[k][level]
		if !ok {
			return nil, fmt.Errorf("sta: endpoint %s has no %+dσ arrival", k, level)
		}
		slack := period - arr
		rep.Endpoints++
		if slack < rep.WNS {
			rep.WNS = slack
			rep.Worst = k
		}
		if slack < 0 {
			rep.Violations++
			rep.TNS += slack
		}
	}
	return rep, nil
}

// MinPeriod returns the smallest clock period meeting every endpoint at the
// given sigma level — the statistical F_max question.
func (r *Result) MinPeriod(level int) (float64, error) {
	rep, err := r.Slack(0, level)
	if err != nil {
		return 0, err
	}
	// With period 0 every slack is −arrival, so WNS = −max arrival.
	return -rep.WNS, nil
}
