package sta

import (
	"fmt"
	"math"

	"repro/internal/netlist"
	"repro/internal/nsigma"
	"repro/internal/rctree"
	"repro/internal/stats"
	"repro/internal/timinglib"
	"repro/internal/waveform"
)

// This file is the shared evaluation core of the timing engine: the per-gate
// eq. 10 propagation step, the primary-input initialisation, the endpoint
// transport and the critical-path selection, each exposed as a standalone
// method on Timer. The batch analyzer (analyzeInternal) and the incremental
// engine (internal/incsta) are both thin drivers over these methods, which
// is what makes incremental results bit-identical to a fresh analysis: there
// is exactly one implementation of every arithmetic step.

// NetState is the propagated timing state at a net root for one edge: the
// per-sigma-level arrival, the root slew, and the winning-arc bookkeeping
// backtracking needs.
type NetState struct {
	Arr   map[int]float64 // per sigma level
	Slew  float64         // at the net root
	Valid bool
	Moms  stats.Moments // calibrated moments of the driving arc
	Quant map[int]float64
	InPin  string // winning input pin of the driving gate
	InEdge waveform.Edge
	InSlew float64
	Load   float64
	// WinSinkIdx backtracks the winning fanin: sink index on the input net
	// that fed the winning pin.
	WinSinkIdx int
}

// EdgeIdx maps an edge to its slot in a [2]NetState (falling = 0, rising = 1).
func EdgeIdx(e waveform.Edge) int {
	if e == waveform.Rising {
		return 1
	}
	return 0
}

// StateMap holds the per-net propagated state of an analysis, indexed by net
// name then EdgeIdx.
type StateMap map[string]*[2]NetState

// At returns the state slot of a net, creating an invalid zero entry on
// first access.
func (m StateMap) At(net string) *[2]NetState {
	s, ok := m[net]
	if !ok {
		s = &[2]NetState{}
		m[net] = s
	}
	return s
}

// Clone returns a copy of the map whose slots are independent of the
// receiver's. The inner Arr/Quant maps are shared: evaluation always builds
// fresh inner maps and never mutates stored ones, so a clone is a consistent
// immutable snapshot as long as that discipline holds.
func (m StateMap) Clone() StateMap {
	out := make(StateMap, len(m))
	for net, s := range m {
		cp := *s
		out[net] = &cp
	}
	return out
}

// InputState computes the primary-input state of a net for both edges:
// zero arrival at every sigma level and the pad-driver root slew.
func (t *Timer) InputState(net string) [2]NetState {
	var out [2]NetState
	for _, e := range []waveform.Edge{waveform.Falling, waveform.Rising} {
		st := &out[EdgeIdx(e)]
		st.Valid = true
		st.Slew = t.inputRootSlew(net, e)
		st.Arr = make(map[int]float64, len(t.opt.Levels))
		for _, n := range t.opt.Levels {
			st.Arr[n] = 0
		}
	}
	return out
}

// EvalGate evaluates one gate from the states of its input nets: for each
// output edge it transports every input-pin arrival across the input wire
// (wire quantile model + PERI slew degradation), adds the cell arc's
// T_c(nσ) from the coefficients file, and keeps the per-level max with the
// level-0 winner carrying the backtracking metadata. Input pins are visited
// in sorted order, so ties resolve deterministically. arcs counts the cell
// arcs timed (the paper's runtime driver). It is the single-corner view of
// EvalGateBatch under the timer's own corner.
func (t *Timer) EvalGate(gi int, state StateMap) (out [2]NetState, arcs int, err error) {
	outs, arcs, err := t.EvalGateBatch(gi, []StateMap{state}, []Corner{t.corner})
	if err != nil {
		return out, arcs, err
	}
	return outs[0], arcs, nil
}

// EvalGateBatch evaluates one gate under several corners in a single
// structural pass. The per-pin structural work — sink-leaf resolution, the
// raw Elmore delay, the wire variability X_w and the cell-arc lookup — does
// not depend on the corner, so it is computed once and shared; only the
// corner-marginal arithmetic (cap derate, wire transport, PERI slew, moment
// interpolation, quantiles) runs per corner. states[i] is the propagated
// state of corners[i]; outs[i] is its output-net state. The arithmetic per
// corner is exactly EvalGate's, in the same order, so a batch result is
// bit-identical to evaluating each corner alone. arcs counts structurally
// timed cell arcs (corner-independent).
func (t *Timer) EvalGateBatch(gi int, states []StateMap, corners []Corner) (outs [][2]NetState, arcs int, err error) {
	if len(states) != len(corners) {
		return nil, 0, fmt.Errorf("sta: EvalGateBatch: %d states for %d corners", len(states), len(corners))
	}
	g := &t.nl.Gates[gi]
	outNet := g.Output()
	tree := t.trees[outNet]
	if tree == nil {
		return nil, 0, fmt.Errorf("sta: gate %s output net %s has no tree", g.Name, outNet)
	}
	totalCap := tree.TotalCap()
	pins := t.pinsOf[gi]
	outs = make([][2]NetState, len(corners))
	best := make([]NetState, len(corners))
	// Scratch for the corner-marginal loop: per-corner running maxima and the
	// winner's quantiles accumulate in level-indexed slices, and the maps a
	// NetState carries are materialised once per (corner, edge) after the pin
	// loop — losing pins and superseded winners allocate nothing. li0 locates
	// sigma level 0, the winner-selection level.
	levels := t.opt.Levels
	nlev := len(levels)
	cand := make([]float64, nlev)
	qs := make([]float64, nlev)
	bestArr := make([]float64, len(corners)*nlev)
	bestQ := make([]float64, len(corners)*nlev)
	bestArc := make([]*nsigma.ArcModel, len(corners))
	li0 := -1
	for li, n := range levels {
		if n == 0 {
			li0 = li
		}
	}
	const ln9 = 2.1972245773362196
	for _, outEdge := range []waveform.Edge{waveform.Falling, waveform.Rising} {
		inEdge := outEdge.Opposite()
		for ci := range best {
			best[ci] = NetState{}
		}
		for _, pin := range pins {
			inNet := g.Pins[pin]
			// Validity is structural (which fanin cones have propagated), so
			// it agrees across corners; skip the structural work when no
			// corner has a valid state on this pin.
			anyValid := false
			for _, state := range states {
				if state.At(inNet)[EdgeIdx(inEdge)].Valid {
					anyValid = true
					break
				}
			}
			if !anyValid {
				continue
			}
			// Corner-independent structural work, computed once per pin.
			sinkIdx, leaf, err := t.sinkLeaf(inNet, gi, pin)
			if err != nil {
				return outs, arcs, err
			}
			rawElmore := t.trees[inNet].Elmore(leaf)
			xw, err := t.xwFor(inNet, gi)
			if err != nil {
				return outs, arcs, err
			}
			arc, err := t.lib.Arc(g.Cell, pin, inEdge)
			if err != nil {
				return outs, arcs, err
			}
			arcs++
			// Corner-marginal arithmetic — EvalGate's exact sequence.
			for ci, c := range corners {
				inSt := states[ci].At(inNet)[EdgeIdx(inEdge)]
				if !inSt.Valid {
					continue
				}
				elmore := c.scaled(rawElmore)
				load := c.scaled(totalCap)
				pinSlew := math.Sqrt(inSt.Slew*inSt.Slew + (ln9*elmore)*(ln9*elmore))
				moms := arc.MomentsAt(pinSlew, load)
				base := ci * nlev
				for li, n := range levels {
					q := arc.Quant.Quantile(moms, n)
					qs[li] = q
					// Same association as the classic per-pin map build:
					// (arrival + wire transport) + cell quantile.
					cand[li] = (inSt.Arr[n] + (1+float64(n)*xw)*elmore) + q
				}
				var cand0, best0 float64
				if li0 >= 0 {
					cand0 = cand[li0]
					best0 = bestArr[base+li0]
				}
				if !best[ci].Valid || cand0 > best0 {
					copy(bestArr[base:base+nlev], cand)
					copy(bestQ[base:base+nlev], qs)
					bestArc[ci] = arc
					best[ci] = NetState{
						Valid:      true,
						Moms:       moms,
						InPin:      pin,
						InEdge:     inEdge,
						InSlew:     pinSlew,
						Load:       load,
						WinSinkIdx: sinkIdx,
					}
				} else {
					// Keep the per-level max even when level 0 loses.
					for li := range levels {
						if cand[li] > bestArr[base+li] {
							bestArr[base+li] = cand[li]
						}
					}
				}
			}
		}
		// Materialise the per-corner winners: one Arr/Quant map pair per
		// (corner, edge), holding the winner's quantiles and the merged
		// per-level maxima, with the winner's output slew.
		for ci := range corners {
			st := best[ci]
			if st.Valid {
				base := ci * nlev
				arr := make(map[int]float64, nlev)
				quant := make(map[int]float64, nlev)
				for li, n := range levels {
					arr[n] = bestArr[base+li]
					quant[n] = bestQ[base+li]
				}
				st.Arr = arr
				st.Quant = quant
				st.Slew = bestArc[ci].OutSlew(st.InSlew, st.Load)
			}
			outs[ci][EdgeIdx(outEdge)] = st
		}
	}
	return outs, arcs, nil
}

// EndpointEntry is one timed endpoint of a primary-output net: the
// Result.EndpointArrivals key ("net/edge"), the edge, and the arrival
// quantiles transported to the PO leaf.
type EndpointEntry struct {
	Key  string
	Edge waveform.Edge
	Arr  map[int]float64
}

// EndpointsForNet transports a primary-output net's root state to each of
// its PO leaves, in the deterministic order the batch analyzer uses (sink
// index, then falling before rising). Invalid edges produce no entry.
func (t *Timer) EndpointsForNet(po string, state StateMap) ([]EndpointEntry, error) {
	var entries []EndpointEntry
	for si, s := range t.fan[po] {
		if s.Gate >= 0 {
			continue
		}
		leaf, err := t.poLeaf(po, si)
		if err != nil {
			return nil, err
		}
		for _, e := range []waveform.Edge{waveform.Falling, waveform.Rising} {
			st := state.At(po)[EdgeIdx(e)]
			if !st.Valid {
				continue
			}
			arr, _, err := t.atLeaf(po, &st, leaf, -1)
			if err != nil {
				return nil, err
			}
			entries = append(entries, EndpointEntry{
				Key:  fmt.Sprintf("%s/%s", po, e),
				Edge: e,
				Arr:  arr,
			})
		}
	}
	return entries, nil
}

// ResultFrom assembles a Result from a propagated state and per-net
// endpoint entries: it selects the critical endpoint exactly as the batch
// analyzer does (primary outputs in declaration order, strict level-0 max)
// and backtracks the critical path. GatesTimed is left zero for the caller.
func (t *Timer) ResultFrom(state StateMap, ep map[string][]EndpointEntry) (*Result, error) {
	res := &Result{EndpointArrivals: make(map[string]map[int]float64)}
	bestMean := math.Inf(-1)
	var bestNet string
	var bestEdge waveform.Edge
	var bestArr map[int]float64
	for _, po := range t.nl.Outputs {
		for _, e := range ep[po] {
			res.Endpoints++
			res.EndpointArrivals[e.Key] = e.Arr
			if e.Arr[0] > bestMean {
				bestMean = e.Arr[0]
				bestNet, bestEdge, bestArr = po, e.Edge, e.Arr
			}
		}
	}
	if bestNet == "" {
		return nil, fmt.Errorf("sta: no timed endpoints")
	}
	res.ArrivalQ = bestArr
	path, err := t.backtrack(state, bestNet, bestEdge)
	if err != nil {
		return nil, err
	}
	res.Critical = path
	return res, nil
}

// BacktrackPath reconstructs the worst path ending at the given endpoint
// net/edge from a propagated state.
func (t *Timer) BacktrackPath(state StateMap, endNet string, endEdge waveform.Edge) (*Path, error) {
	return t.backtrack(state, endNet, endEdge)
}

// WithTrees returns a Timer sharing this one's library, netlist, options and
// structural maps but reading parasitics from trees — the snapshot primitive
// of the incremental engine. Every net with fanout must still have a tree.
func (t *Timer) WithTrees(trees map[string]*rctree.Tree) (*Timer, error) {
	for net, sinks := range t.fan {
		if len(sinks) > 0 && trees[net] == nil {
			return nil, fmt.Errorf("sta: net %s has no parasitic tree", net)
		}
	}
	cp := *t
	cp.trees = trees
	cp.compiled = &graphCache{}
	return &cp, nil
}

// WithNetlist returns a Timer reading gate cells from a different netlist
// value with the same connectivity — the immutable-snapshot hook of the
// incremental engine, whose ECO edits change Cell fields but never
// structure. The structural maps are shared, so the netlists must have the
// same gate count.
func (t *Timer) WithNetlist(nl *netlist.Netlist) (*Timer, error) {
	if len(nl.Gates) != len(t.nl.Gates) {
		return nil, fmt.Errorf("sta: netlist has %d gates, timer was built for %d",
			len(nl.Gates), len(t.nl.Gates))
	}
	cp := *t
	cp.nl = nl
	cp.compiled = &graphCache{}
	return &cp, nil
}

// WithOptions returns a Timer sharing this one's inputs under different
// (validated) options.
func (t *Timer) WithOptions(opt Options) (*Timer, error) {
	opt.setDefaults()
	if err := opt.validate(t.lib, t.nl); err != nil {
		return nil, err
	}
	cp := *t
	cp.opt = opt
	cp.compiled = &graphCache{}
	return &cp, nil
}

// Netlist returns the analyzed netlist.
func (t *Timer) Netlist() *netlist.Netlist { return t.nl }

// Lib returns the coefficients file the timer evaluates against.
func (t *Timer) Lib() *timinglib.File { return t.lib }

// Options returns the effective (defaulted) analysis options.
func (t *Timer) Options() Options { return t.opt }

// Trees returns the parasitic trees keyed by net.
func (t *Timer) Trees() map[string]*rctree.Tree { return t.trees }

// Driver returns the index of the gate driving net, if any.
func (t *Timer) Driver(net string) (int, bool) {
	gi, ok := t.drv[net]
	return gi, ok
}

// Fanout returns the sinks of a net in deterministic order.
func (t *Timer) Fanout(net string) []netlist.Sink { return t.fan[net] }
