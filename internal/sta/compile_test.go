package sta

import (
	"context"
	"fmt"
	"reflect"
	"testing"
)

// This file pins the correctness anchor of the data-oriented eval core: the
// compiled SoA engine must reproduce the legacy map-based engine bit for
// bit — every result, every propagated state field, every backtracked path
// — across circuits, corner sets and worker counts; and its steady-state
// per-gate loop must not allocate.

// assertStateMapsIdentical compares two propagated states bitwise, net by
// net and field by field.
func assertStateMapsIdentical(t *testing.T, label string, want, got StateMap) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: state has %d nets, want %d", label, len(got), len(want))
	}
	for net, ws := range want {
		gs, ok := got[net]
		if !ok {
			t.Fatalf("%s: state missing net %s", label, net)
		}
		for ei := 0; ei < 2; ei++ {
			if !reflect.DeepEqual(ws[ei], gs[ei]) {
				t.Fatalf("%s: net %s edge %d:\n got %+v\nwant %+v", label, net, ei, gs[ei], ws[ei])
			}
		}
	}
}

// TestCompiledMatchesLegacyBitwise is the compiled-vs-legacy equivalence
// property: for several circuits, corner sets and worker counts, the
// compiled engine returns results, states and top-k paths bit-identical to
// the retained legacy engine.
func TestCompiledMatchesLegacyBitwise(t *testing.T) {
	cornerSets := map[string]CornerSet{
		"neutral": {},
		"multi": {Corners: []Corner{
			{Name: "typ"},
			{Name: "fastin", InputSlew: 20e-12},
			{Name: "slowext", CapScale: 1.15},
			{Name: "worst", InputSlew: 120e-12, CapScale: 1.3},
		}},
		"levels": {Levels: []int{-3, 0, 3}, Corners: []Corner{
			{Name: "typ"}, {Name: "derated", CapScale: 1.2},
		}},
	}
	ctx := context.Background()
	for _, circuit := range []string{"c432", "c1355", "c1908"} {
		timer := benchTimer(t, circuit)
		for csName, cs := range cornerSets {
			wantRes, wantStates, err := timer.analyzeCornersLegacy(ctx, AnalyzeOptions{Corners: cs})
			if err != nil {
				t.Fatalf("%s/%s legacy: %v", circuit, csName, err)
			}
			for _, par := range []int{1, 4} {
				label := fmt.Sprintf("%s/%s par=%d", circuit, csName, par)
				gotRes, gotStates, err := timer.analyzeCorners(ctx, AnalyzeOptions{Corners: cs, Parallelism: par})
				if err != nil {
					t.Fatalf("%s compiled: %v", label, err)
				}
				if len(gotRes) != len(wantRes) {
					t.Fatalf("%s: %d results vs %d", label, len(gotRes), len(wantRes))
				}
				for ci := range wantRes {
					cl := fmt.Sprintf("%s corner=%d", label, ci)
					assertResultsIdentical(t, cl, wantRes[ci], gotRes[ci])
					assertStateMapsIdentical(t, cl, wantStates[ci], gotStates[ci])
				}
			}
		}
	}
}

// TestTopPathsFlatMatchesLegacy compares the compiled top-k extraction
// (flat-state ranking + array backtracking) against the legacy
// TopPathsFrom over the same analysis.
func TestTopPathsFlatMatchesLegacy(t *testing.T) {
	timer := benchTimer(t, "c1355")
	ctx := context.Background()
	corner := Corner{Name: "worst", InputSlew: 40e-12, CapScale: 1.1}
	opts := AnalyzeOptions{Corners: CornerSet{Corners: []Corner{corner}}}

	wantRes, wantStates, err := timer.analyzeCornersLegacy(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := timer.WithCorner(corner)
	if err != nil {
		t.Fatal(err)
	}
	wantPaths, err := ct.TopPathsFrom(wantStates[0], wantRes[0], 12)
	if err != nil {
		t.Fatal(err)
	}

	g, flat, gotRes, err := timer.AnalyzeAllFlat(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	gotPaths, err := g.TopPathsFlat(flat[0], corner, gotRes[0], 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotPaths) != len(wantPaths) {
		t.Fatalf("got %d paths, want %d", len(gotPaths), len(wantPaths))
	}
	for i := range wantPaths {
		if !reflect.DeepEqual(wantPaths[i], gotPaths[i]) {
			t.Fatalf("path %d diverges:\n got %+v\nwant %+v", i, gotPaths[i], wantPaths[i])
		}
	}
}

// TestCompiledEvalLoopZeroAlloc is the allocation regression guard for the
// steady-state eval loop: with the graph compiled, the states seeded and
// the per-worker scratch/output buffers in hand, sweeping every gate of the
// design under a 4-corner batch must allocate nothing.
func TestCompiledEvalLoopZeroAlloc(t *testing.T) {
	timer := benchTimer(t, "c432")
	corners := []Corner{
		{Name: "typ"},
		{Name: "fastin", InputSlew: 20e-12},
		{Name: "slowext", CapScale: 1.15},
		{Name: "worst", InputSlew: 120e-12, CapScale: 1.3},
	}
	g, err := timer.Compile()
	if err != nil {
		t.Fatal(err)
	}
	states := make([]*FlatState, len(corners))
	for ci, c := range corners {
		states[ci] = g.NewState()
		g.InitPI(states[ci], c)
	}
	sc := g.NewScratch(len(corners))
	out := g.NewGateOut(len(corners))
	sweep := func() {
		for _, gi := range g.order {
			g.EvalGateInto(int(gi), states, corners, sc, out)
			g.CommitGate(int(gi), states, out)
		}
	}
	sweep() // settle the states so re-sweeps are pure steady state
	if allocs := testing.AllocsPerRun(10, sweep); allocs != 0 {
		t.Fatalf("steady-state eval sweep allocates %.1f objects per run, want 0", allocs)
	}
}
