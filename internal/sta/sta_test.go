package sta

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/charlib"
	"repro/internal/netlist"
	"repro/internal/nsigma"
	"repro/internal/rctree"
	"repro/internal/stats"
	"repro/internal/timinglib"
	"repro/internal/waveform"
	"repro/internal/wire"
)

// synthArc builds an arc model whose delay is constant `mu` with std
// `sigma` everywhere (flat LUT), and whose output slew is constant outSlew.
func synthArc(cell, pin string, edge waveform.Edge, mu, sigma, outSlew float64) *nsigma.ArcModel {
	plane := func(v float64) [][]float64 {
		return [][]float64{{v, v}, {v, v}}
	}
	lut := nsigma.MomentLUT{
		Slews:   []float64{1e-12, 1e-9},
		Loads:   []float64{1e-16, 1e-13},
		Mu:      plane(mu),
		Sigma:   plane(sigma),
		Gamma:   plane(0),
		Kappa:   plane(3),
		OutSlew: plane(outSlew),
	}
	var quant nsigma.QuantileModel
	for i := range quant.Coeffs {
		quant.Coeffs[i] = make([]float64, len(nsigma.FeatureNames(i-3)))
	}
	return &nsigma.ArcModel{
		Arc:   charlib.Arc{Cell: cell, Pin: pin, InEdge: edge},
		LUT:   lut,
		Quant: quant,
	}
}

// synthLib builds a coefficients file for INVx1 (delay muA) and NAND2x1
// (delay muB on pin A, muB2 on pin B) with trivially flat surfaces.
func synthLib() *timinglib.File {
	f := &timinglib.File{
		Vdd:   0.6,
		Arcs:  map[string]*nsigma.ArcModel{},
		Cells: map[string]*timinglib.CellInfo{},
	}
	add := func(m *nsigma.ArcModel) { f.Arcs[timinglib.ArcKey(m.Arc.Cell, m.Arc.Pin, m.Arc.InEdge)] = m }
	for _, e := range []waveform.Edge{waveform.Rising, waveform.Falling} {
		add(synthArc("INVx1", "A", e, 10e-12, 1e-12, 20e-12))
		add(synthArc("NAND2x1", "A", e, 15e-12, 1.5e-12, 25e-12))
		add(synthArc("NAND2x1", "B", e, 18e-12, 2e-12, 25e-12))
		add(synthArc("INVx4", "A", e, 8e-12, 0.8e-12, 15e-12))
	}
	f.Cells["INVx1"] = &timinglib.CellInfo{Stack: 1, Strength: 1, Inputs: []string{"A"},
		PinCaps: map[string]float64{"A": 1e-15}, OutputCap: 0.5e-15}
	f.Cells["NAND2x1"] = &timinglib.CellInfo{Stack: 2, Strength: 1, Inputs: []string{"A", "B"},
		PinCaps: map[string]float64{"A": 2e-15, "B": 2e-15}, OutputCap: 0.8e-15}
	f.Cells["INVx4"] = &timinglib.CellInfo{Stack: 1, Strength: 4, Inputs: []string{"A"},
		PinCaps: map[string]float64{"A": 4e-15}, OutputCap: 2e-15}
	f.Wire = &wire.Calibration{
		R4:        0.1,
		CellRatio: map[string]float64{"INVx1": 0.1, "NAND2x1": 0.12, "INVx4": 0.08},
		XFI:       map[string]float64{"INVx1": 0.5, "NAND2x1": 0.5, "INVx4": 0.5},
		XFO:       map[string]float64{"INVx1": 0.5, "NAND2x1": 0.5, "INVx4": 0.5},
	}
	return f
}

// diamond builds in → U1(INV) → {m};  m → U2(INV) → a;  {in,a} → U3(NAND2) → out.
// The path through U2 is longer, so the critical path must route through it.
func diamond() *netlist.Netlist {
	return &netlist.Netlist{
		Name:    "diamond",
		Inputs:  []string{"in"},
		Outputs: []string{"out"},
		Gates: []netlist.Gate{
			{Name: "U1", Cell: "INVx1", Pins: map[string]string{"A": "in", "Y": "m"}},
			{Name: "U2", Cell: "INVx1", Pins: map[string]string{"A": "m", "Y": "a"}},
			{Name: "U3", Cell: "NAND2x1", Pins: map[string]string{"A": "a", "B": "in", "Y": "out"}},
		},
	}
}

// flatTrees builds a trivial single-segment tree per net with the sink pin
// caps at the leaves, mirroring the layout extractor's naming convention.
func flatTrees(nl *netlist.Netlist, lib *timinglib.File) map[string]*rctree.Tree {
	fan := nl.FanoutMap()
	out := map[string]*rctree.Tree{}
	for net, sinks := range fan {
		t := rctree.NewTree(net, 0.05e-15)
		for si, s := range sinks {
			var name string
			var pc float64
			if s.Gate >= 0 {
				name = fmt.Sprintf("pin:%s:%s", nl.Gates[s.Gate].Name, s.Pin)
				pc, _ = lib.PinCap(nl.Gates[s.Gate].Cell, s.Pin)
			} else {
				name = fmt.Sprintf("pin:PO%d", si)
				pc = 0.8e-15
			}
			t.MustAddNode(name, 0, 50, 0.2e-15+pc)
		}
		out[net] = t
	}
	return out
}

func newTestTimer(t *testing.T) (*Timer, *netlist.Netlist, map[string]*rctree.Tree) {
	t.Helper()
	lib := synthLib()
	nl := diamond()
	trees := flatTrees(nl, lib)
	timer, err := NewTimer(lib, nl, trees, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return timer, nl, trees
}

func TestAnalyzeCriticalPathRoute(t *testing.T) {
	timer, _, _ := newTestTimer(t)
	res, err := timer.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	p := res.Critical
	// Critical path: in → U1 → U2 → U3 → out = PI stage + 3 cell stages.
	if len(p.Stages) != 4 {
		t.Fatalf("critical path has %d stages, want 4", len(p.Stages))
	}
	wantCells := []string{"", "INVx1", "INVx1", "NAND2x1"}
	for i, s := range p.Stages {
		if s.Cell != wantCells[i] {
			t.Fatalf("stage %d cell %q want %q", i, s.Cell, wantCells[i])
		}
	}
	// The NAND arc must be through pin A (fed by U2), not the short B path.
	if p.Stages[3].InPin != "A" {
		t.Fatalf("critical arc through pin %s want A", p.Stages[3].InPin)
	}
	if res.Endpoints == 0 || res.GatesTimed == 0 {
		t.Fatal("bookkeeping empty")
	}
}

func TestPathQuantileIsEquation10(t *testing.T) {
	timer, _, _ := newTestTimer(t)
	res, err := timer.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	p := res.Critical
	for _, n := range stats.SigmaLevels {
		var want float64
		for _, s := range p.Stages {
			if s.CellQ != nil {
				want += s.CellQ[n]
			}
			want += (1 + float64(n)*s.XW) * s.Elmore
		}
		if got := p.Quantile(n); math.Abs(got-want) > 1e-20 {
			t.Fatalf("Quantile(%d) = %v want %v", n, got, want)
		}
	}
	// With flat surfaces: mean cell delays 10+10+15 = 35ps plus wires.
	cellSum := 35e-12
	var wireSum float64
	for _, s := range p.Stages {
		wireSum += s.Elmore
	}
	if got := p.Quantile(0); math.Abs(got-(cellSum+wireSum)) > 1e-15 {
		t.Fatalf("0σ path %v want %v", got, cellSum+wireSum)
	}
}

func TestQuantilesOrdered(t *testing.T) {
	timer, _, _ := newTestTimer(t)
	res, err := timer.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	p := res.Critical
	prev := math.Inf(-1)
	for _, n := range stats.SigmaLevels {
		q := p.Quantile(n)
		if q <= prev {
			t.Fatalf("quantiles not increasing at %+d: %v <= %v", n, q, prev)
		}
		prev = q
	}
	// Propagated arrival must be at least the path sum at every level
	// (max-propagation can only add pessimism).
	for _, n := range stats.SigmaLevels {
		if res.ArrivalQ[n] < p.Quantile(n)-1e-20 {
			t.Fatalf("arrival %v below path sum %v at %+d", res.ArrivalQ[n], p.Quantile(n), n)
		}
	}
}

func TestWireQuantitiesOnPath(t *testing.T) {
	timer, _, trees := newTestTimer(t)
	res, err := timer.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Critical.Stages {
		if s.Elmore <= 0 {
			t.Fatalf("stage %s: Elmore %v", s.Net, s.Elmore)
		}
		if s.XW <= 0 {
			t.Fatalf("stage %s: XW %v", s.Net, s.XW)
		}
		if s.Tree != trees[s.Net] {
			t.Fatalf("stage %s: tree mismatch", s.Net)
		}
		if s.LeafSlew < s.OutSlew {
			t.Fatalf("stage %s: slew shrank across the wire", s.Net)
		}
	}
}

func TestMissingTreeRejected(t *testing.T) {
	lib := synthLib()
	nl := diamond()
	trees := flatTrees(nl, lib)
	delete(trees, "m")
	if _, err := NewTimer(lib, nl, trees, Options{}); err == nil {
		t.Fatal("missing parasitic tree accepted")
	}
}

func TestMissingArcSurfaces(t *testing.T) {
	lib := synthLib()
	delete(lib.Arcs, timinglib.ArcKey("NAND2x1", "B", waveform.Rising))
	nl := diamond()
	timer, err := NewTimer(lib, nl, flatTrees(nl, lib), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// NewTimer doesn't look up arcs; Analyze must fail.
	if _, err := timer.Analyze(); err == nil {
		t.Fatal("missing arc model not reported")
	}
}

func TestInputSlewOption(t *testing.T) {
	lib := synthLib()
	nl := diamond()
	trees := flatTrees(nl, lib)
	timer, err := NewTimer(lib, nl, trees, Options{InputSlew: 50e-12})
	if err != nil {
		t.Fatal(err)
	}
	res, err := timer.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if res.Critical.Stages[0].InSlew != 50e-12 {
		t.Fatalf("input slew option ignored: %v", res.Critical.Stages[0].InSlew)
	}
}

func TestNilWireCalibration(t *testing.T) {
	lib := synthLib()
	lib.Wire = nil // timing without a wire model: Xw must fall back to 0
	nl := diamond()
	timer, err := NewTimer(lib, nl, flatTrees(nl, lib), Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := timer.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Critical.Stages {
		if s.XW != 0 {
			t.Fatalf("stage %s has Xw %v without a wire calibration", s.Net, s.XW)
		}
	}
	// Quantiles then differ only through the cells.
	p := res.Critical
	spread := p.Quantile(3) - p.Quantile(-3)
	if spread <= 0 {
		t.Fatal("cell-only spread must still be positive")
	}
}

func TestPadDriverSlewAtInputs(t *testing.T) {
	// The PI net root slew must come from the pad-driver arc, not the raw
	// input slew: with a heavily loaded input net they differ.
	timer, _, trees := newTestTimer(t)
	res, err := timer.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	first := res.Critical.Stages[0]
	if first.Cell != "" {
		t.Fatal("first stage should be the PI stage")
	}
	// synthLib's INVx4 arc reports a flat 15 ps output slew.
	if first.OutSlew != 15e-12 {
		t.Fatalf("PI root slew %v, want the pad driver's 15 ps", first.OutSlew)
	}
	_ = trees
}

func TestAnalyzeContextCancellation(t *testing.T) {
	timer, _, _ := newTestTimer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before analysis starts
	if _, err := timer.AnalyzeContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want a wrapped context.Canceled", err)
	}
	// The timer stays usable after a canceled run.
	if _, err := timer.Analyze(); err != nil {
		t.Fatalf("analysis after cancellation: %v", err)
	}
}
