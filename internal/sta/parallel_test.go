package sta

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/circuits"
	"repro/internal/libsynth"
	"repro/internal/netlist"
	"repro/internal/rctree"
	"repro/internal/timinglib"
)

// benchTrees builds one flat RC tree per net with the layout extractor's
// leaf-naming convention and per-sink resistances that vary by position, so
// corner cap-derates shift Elmore delays differently per sink.
func benchTrees(nl *netlist.Netlist, lib *timinglib.File) map[string]*rctree.Tree {
	fan := nl.FanoutMap()
	out := map[string]*rctree.Tree{}
	for net, sinks := range fan {
		t := rctree.NewTree(net, 0.05e-15)
		for si, s := range sinks {
			var name string
			var pc float64
			if s.Gate >= 0 {
				name = fmt.Sprintf("pin:%s:%s", nl.Gates[s.Gate].Name, s.Pin)
				pc, _ = lib.PinCap(nl.Gates[s.Gate].Cell, s.Pin)
			} else {
				name = fmt.Sprintf("pin:PO%d", si)
				pc = 0.8e-15
			}
			t.MustAddNode(name, 0, 40+10*float64(si), 0.3e-15+pc)
		}
		out[net] = t
	}
	return out
}

// benchTimer builds a timer over one ISCAS85-style benchmark with the full
// synthetic coefficients library.
func benchTimer(t testing.TB, circuit string) *Timer {
	t.Helper()
	nl, err := circuits.ByName(circuit)
	if err != nil {
		t.Fatal(err)
	}
	circuits.SizeByFanout(nl)
	lib := libsynth.File()
	timer, err := NewTimer(lib, nl, benchTrees(nl, lib), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return timer
}

// assertResultsIdentical compares two results bitwise: every arrival
// quantile, every endpoint, and the critical path stage by stage.
func assertResultsIdentical(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if want.Endpoints != got.Endpoints {
		t.Fatalf("%s: endpoints %d vs %d", label, got.Endpoints, want.Endpoints)
	}
	if want.GatesTimed != got.GatesTimed {
		t.Fatalf("%s: gates timed %d vs %d", label, got.GatesTimed, want.GatesTimed)
	}
	for n, v := range want.ArrivalQ {
		if got.ArrivalQ[n] != v {
			t.Fatalf("%s: critical arrival %+dσ: %v vs %v", label, n, got.ArrivalQ[n], v)
		}
	}
	if len(want.EndpointArrivals) != len(got.EndpointArrivals) {
		t.Fatalf("%s: endpoint key count %d vs %d", label,
			len(got.EndpointArrivals), len(want.EndpointArrivals))
	}
	for key, wa := range want.EndpointArrivals {
		ga, ok := got.EndpointArrivals[key]
		if !ok {
			t.Fatalf("%s: endpoint %s missing", label, key)
		}
		for n, v := range wa {
			if ga[n] != v {
				t.Fatalf("%s: endpoint %s %+dσ: %v vs %v", label, key, n, ga[n], v)
			}
		}
	}
	w, g := want.Critical, got.Critical
	if w.Endpoint != g.Endpoint || w.Launch != g.Launch || len(w.Stages) != len(g.Stages) {
		t.Fatalf("%s: critical %s/%s (%d stages) vs %s/%s (%d stages)", label,
			g.Endpoint, g.Launch, len(g.Stages), w.Endpoint, w.Launch, len(w.Stages))
	}
	for i := range w.Stages {
		ws, gs := &w.Stages[i], &g.Stages[i]
		if ws.Cell != gs.Cell || ws.InPin != gs.InPin || ws.InEdge != gs.InEdge || ws.Net != gs.Net {
			t.Fatalf("%s: critical stage %d route %s/%s/%s@%s vs %s/%s/%s@%s", label, i,
				gs.Cell, gs.InPin, gs.InEdge, gs.Net, ws.Cell, ws.InPin, ws.InEdge, ws.Net)
		}
		if ws.InSlew != gs.InSlew || ws.Load != gs.Load || ws.Elmore != gs.Elmore || ws.XW != gs.XW {
			t.Fatalf("%s: critical stage %d numerics diverge", label, i)
		}
	}
	for n := range want.ArrivalQ {
		if w.Quantile(n) != g.Quantile(n) {
			t.Fatalf("%s: critical path %+dσ: %v vs %v", label, n, g.Quantile(n), w.Quantile(n))
		}
	}
}

// TestParallelBitIdenticalToSequential is the scheduler's determinism
// property: for several circuits, corner batches and worker counts, a
// parallel wavefront analysis returns results bit-identical to the
// sequential one.
func TestParallelBitIdenticalToSequential(t *testing.T) {
	cornerSets := map[string]CornerSet{
		"neutral": {},
		"multi": {Corners: []Corner{
			{Name: "typ"},
			{Name: "fastin", InputSlew: 20e-12},
			{Name: "slowext", CapScale: 1.15},
			{Name: "worst", InputSlew: 120e-12, CapScale: 1.3},
		}},
	}
	ctx := context.Background()
	for _, circuit := range []string{"c432", "c1355", "c1908"} {
		timer := benchTimer(t, circuit)
		for csName, cs := range cornerSets {
			seq, err := timer.AnalyzeAll(ctx, AnalyzeOptions{Corners: cs, Parallelism: 1})
			if err != nil {
				t.Fatalf("%s/%s sequential: %v", circuit, csName, err)
			}
			for _, par := range []int{2, 3, 4, 8} {
				got, err := timer.AnalyzeAll(ctx, AnalyzeOptions{Corners: cs, Parallelism: par})
				if err != nil {
					t.Fatalf("%s/%s par=%d: %v", circuit, csName, par, err)
				}
				if len(got) != len(seq) {
					t.Fatalf("%s/%s par=%d: %d results vs %d", circuit, csName, par, len(got), len(seq))
				}
				for ci := range seq {
					assertResultsIdentical(t,
						fmt.Sprintf("%s/%s par=%d corner=%d", circuit, csName, par, ci),
						seq[ci], got[ci])
				}
			}
		}
	}
}

// TestNeutralBatchMatchesPlainAnalyze pins the compatibility contract: the
// zero AnalyzeOptions path through the batched engine returns exactly what
// the classic sequential Analyze returns.
func TestNeutralBatchMatchesPlainAnalyze(t *testing.T) {
	timer := benchTimer(t, "c1908")
	plain, err := timer.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	batch, err := timer.AnalyzeAll(context.Background(), AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 1 {
		t.Fatalf("neutral batch returned %d results", len(batch))
	}
	assertResultsIdentical(t, "neutral", plain, batch[0])
}

// TestCornerSemantics checks the corner knobs do what they claim: a cap
// derate strictly slows the design, an input-slew corner only changes
// boundary transitions, and per-net overrides beat the corner operating
// point.
func TestCornerSemantics(t *testing.T) {
	timer := benchTimer(t, "c432")
	ctx := context.Background()
	res, err := timer.AnalyzeAll(ctx, AnalyzeOptions{Corners: CornerSet{Corners: []Corner{
		{Name: "typ"},
		{Name: "derated", CapScale: 1.25},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res[1].ArrivalQ[0], res[0].ArrivalQ[0]; got <= want {
		t.Fatalf("cap-derated corner should be slower: %v vs %v", got, want)
	}

	// A per-net InputSlews override must win over the corner's InputSlew at
	// that net: pin every input, and the corner operating point becomes a
	// no-op.
	nl := timer.Netlist()
	opt := timer.Options()
	opt.InputSlews = map[string]float64{}
	for _, in := range nl.Inputs {
		opt.InputSlews[in] = 33e-12
	}
	pinned, err := timer.WithOptions(opt)
	if err != nil {
		t.Fatal(err)
	}
	both, err := pinned.AnalyzeAll(ctx, AnalyzeOptions{Corners: CornerSet{Corners: []Corner{
		{Name: "typ"},
		{Name: "fastin", InputSlew: 5e-12},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, "pinned-slew", both[0], both[1])
}

// TestCornerSetValidation rejects non-physical corners and duplicate names
// up front, through both AnalyzeAll and WithCorner.
func TestCornerSetValidation(t *testing.T) {
	timer := benchTimer(t, "c432")
	ctx := context.Background()
	bad := []CornerSet{
		{Corners: []Corner{{InputSlew: -1e-12}}},
		{Corners: []Corner{{CapScale: -0.5}}},
		{Corners: []Corner{{Name: "x"}, {Name: "x"}}},
	}
	for i, cs := range bad {
		if _, err := timer.AnalyzeAll(ctx, AnalyzeOptions{Corners: cs}); err == nil {
			t.Fatalf("bad corner set %d accepted", i)
		}
	}
	if _, err := timer.WithCorner(Corner{CapScale: -1}); err == nil {
		t.Fatal("WithCorner accepted a negative cap scale")
	}
}

// TestParallelCancellation checks a canceled context aborts a parallel
// analysis with a context error instead of hanging or panicking.
func TestParallelCancellation(t *testing.T) {
	timer := benchTimer(t, "c1355")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := timer.AnalyzeAll(ctx, AnalyzeOptions{Parallelism: 4}); err == nil {
		t.Fatal("canceled analysis returned no error")
	}
}
