package sta

import (
	"context"
	"testing"
)

// fourCorners is the PR 5 benchmark operating-point set: a typical corner,
// a fast-input corner, a cap-derated corner, and a pessimistic combination.
var fourCorners = []Corner{
	{Name: "typ"},
	{Name: "fastin", InputSlew: 20e-12},
	{Name: "slowext", CapScale: 1.15},
	{Name: "worst", InputSlew: 120e-12, CapScale: 1.3},
}

// benchAnalyzeCorners measures one full multi-corner analysis of the
// largest synthetic benchmark, either batched (one traversal evaluates all
// corners per gate, sharing sink lookup, raw Elmore and arc resolution) or
// as independent per-corner traversals — the pre-batching strategy.
func benchAnalyzeCorners(b *testing.B, batched bool) {
	timer := benchTimer(b, "c7552")
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if batched {
			res, err := timer.AnalyzeAll(ctx, AnalyzeOptions{
				Corners: CornerSet{Corners: fourCorners},
			})
			if err != nil {
				b.Fatal(err)
			}
			if len(res) != len(fourCorners) {
				b.Fatalf("batched analysis returned %d results", len(res))
			}
		} else {
			for _, c := range fourCorners {
				if _, err := timer.AnalyzeAll(ctx, AnalyzeOptions{
					Corners: CornerSet{Corners: []Corner{c}},
				}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

func BenchmarkCorners4Separate(b *testing.B) { benchAnalyzeCorners(b, false) }
func BenchmarkCorners4Batched(b *testing.B)  { benchAnalyzeCorners(b, true) }

// eightCorners widens the PR 5 set with intermediate slew/cap points — the
// corner count a signoff sweep typically batches per run.
var eightCorners = []Corner{
	{Name: "typ"},
	{Name: "fastin", InputSlew: 20e-12},
	{Name: "slowin", InputSlew: 160e-12},
	{Name: "slowext", CapScale: 1.15},
	{Name: "fastext", CapScale: 0.9},
	{Name: "worst", InputSlew: 120e-12, CapScale: 1.3},
	{Name: "best", InputSlew: 20e-12, CapScale: 0.9},
	{Name: "mid", InputSlew: 80e-12, CapScale: 1.1},
}

// BenchmarkCorners8Batched stresses the compiled eval core's per-corner
// state planes: eight corners share one compiled graph and one wavefront
// traversal, so the marginal corner cost is pure plane arithmetic.
func BenchmarkCorners8Batched(b *testing.B) {
	timer := benchTimer(b, "c7552")
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := timer.AnalyzeAll(ctx, AnalyzeOptions{
			Corners: CornerSet{Corners: eightCorners},
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != len(eightCorners) {
			b.Fatalf("batched analysis returned %d results", len(res))
		}
	}
}

// BenchmarkCorners4BatchedParallel adds the wavefront worker pool on top of
// corner batching. On a single-CPU host this measures scheduling overhead
// rather than speedup; on multi-core machines it compounds with batching.
func BenchmarkCorners4BatchedParallel(b *testing.B) {
	timer := benchTimer(b, "c7552")
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := timer.AnalyzeAll(ctx, AnalyzeOptions{
			Corners:     CornerSet{Corners: fourCorners},
			Parallelism: 4,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
