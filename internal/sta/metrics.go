package sta

import "repro/internal/obs"

// Full-analysis metrics on the process-wide registry (the incremental
// engine's re-propagation counters live in internal/incsta).
var (
	mAnalyses = obs.Default().Counter("sta_analyses_total",
		"Full statistical timing analyses run.")
	mGatesEvaluated = obs.Default().Counter("sta_gates_evaluated_total",
		"Gate-arc evaluations performed by full analyses.")
	hAnalyzeSeconds = obs.Default().Histogram("sta_analyze_seconds",
		"Wall time of one full timing analysis.")
)
