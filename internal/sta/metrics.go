package sta

import "repro/internal/obs"

// Full-analysis metrics on the process-wide registry (the incremental
// engine's re-propagation counters live in internal/incsta).
var (
	mAnalyses = obs.Default().Counter("sta_analyses_total",
		"Full statistical timing analyses run.")
	mGatesEvaluated = obs.Default().Counter("sta_gates_evaluated_total",
		"Gate-arc evaluations performed by full analyses.")
	hAnalyzeSeconds = obs.Default().Histogram("sta_analyze_seconds",
		"Wall time of one full timing analysis.")
	gWorkersBusy = obs.Default().Gauge("sta_workers_busy",
		"Wavefront worker goroutines currently evaluating gates.")
	hLevelParallelism = obs.Default().Histogram("sta_level_parallelism",
		"Workers used per wavefront level (min of Parallelism and level width).")
	mCornerBatches = obs.Default().Counter("sta_corner_batches_total",
		"Analyses that batched more than one corner through a single traversal.")
	mCornerGateEvals = obs.Default().Counter("sta_corner_gate_evals_total",
		"Per-corner gate evaluations (gates × corners) across all analyses.")
)
