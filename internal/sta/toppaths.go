package sta

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/waveform"
)

// AnalyzeTopPaths times the design and extracts the worst path of each of
// the k slowest endpoints (one path per endpoint, ranked by mean arrival) —
// the `report_timing -max_paths k` view. The first returned path is the
// critical path of Analyze.
func (t *Timer) AnalyzeTopPaths(k int) (*Result, []*Path, error) {
	return t.AnalyzeTopPathsContext(context.Background(), k)
}

// AnalyzeTopPathsContext is AnalyzeTopPaths under a cancelable context.
func (t *Timer) AnalyzeTopPathsContext(ctx context.Context, k int) (*Result, []*Path, error) {
	res, state, err := t.analyze(ctx)
	if err != nil {
		return nil, nil, err
	}
	paths, err := t.TopPathsFrom(state, res, k)
	if err != nil {
		return nil, nil, err
	}
	return res, paths, nil
}

// TopPathsFrom ranks a result's endpoints (mean arrival descending, then
// endpoint key for deterministic tie-breaking) and backtracks the worst
// path of each of the k slowest through the given state. It is the query
// half of AnalyzeTopPaths, reused by incremental snapshots.
func (t *Timer) TopPathsFrom(state StateMap, res *Result, k int) ([]*Path, error) {
	if k <= 0 {
		return nil, fmt.Errorf("sta: k must be positive")
	}
	type endpoint struct {
		key  string
		arr  float64
		net  string
		edge waveform.Edge
	}
	eps := make([]endpoint, 0, len(res.EndpointArrivals))
	for key, arr := range res.EndpointArrivals {
		i := strings.LastIndexByte(key, '/')
		net := key[:i]
		edge := waveform.Falling
		if key[i+1:] == waveform.Rising.String() {
			edge = waveform.Rising
		}
		eps = append(eps, endpoint{key: key, arr: arr[0], net: net, edge: edge})
	}
	sort.Slice(eps, func(i, j int) bool {
		if eps[i].arr != eps[j].arr {
			return eps[i].arr > eps[j].arr
		}
		return eps[i].key < eps[j].key
	})
	if k > len(eps) {
		k = len(eps)
	}
	paths := make([]*Path, 0, k)
	for _, ep := range eps[:k] {
		p, err := t.backtrack(state, ep.net, ep.edge)
		if err != nil {
			return nil, err
		}
		paths = append(paths, p)
	}
	return paths, nil
}

// analyze is the shared implementation behind Analyze and AnalyzeTopPaths,
// returning the propagated state for further backtracking.
func (t *Timer) analyze(ctx context.Context) (*Result, StateMap, error) {
	res, state, err := t.analyzeInternal(ctx)
	return res, state, err
}
