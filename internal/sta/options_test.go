package sta

import (
	"errors"
	"testing"
)

// optErr asserts NewTimer rejects opt with an *OptionsError naming field.
func optErr(t *testing.T, opt Options, field string) {
	t.Helper()
	lib := synthLib()
	nl := diamond()
	_, err := NewTimer(lib, nl, flatTrees(nl, lib), opt)
	if err == nil {
		t.Fatalf("options %+v accepted", opt)
	}
	var oe *OptionsError
	if !errors.As(err, &oe) {
		t.Fatalf("got %T (%v), want *OptionsError", err, err)
	}
	if oe.Field != field {
		t.Fatalf("error names field %q, want %q (%v)", oe.Field, field, err)
	}
}

func TestOptionsRejectUnsortedLevels(t *testing.T) {
	optErr(t, Options{Levels: []int{0, 2, 1, 3}}, "Levels")
}

func TestOptionsRejectDuplicateLevels(t *testing.T) {
	optErr(t, Options{Levels: []int{-1, 0, 0, 1}}, "Levels")
}

func TestOptionsRejectLevelsWithoutZero(t *testing.T) {
	optErr(t, Options{Levels: []int{1, 2, 3}}, "Levels")
}

func TestOptionsRejectNegativeInputSlew(t *testing.T) {
	optErr(t, Options{InputSlew: -1e-12}, "InputSlew")
}

func TestOptionsRejectUnknownInputDriver(t *testing.T) {
	optErr(t, Options{InputDriver: "BUFx9"}, "InputDriver")
}

func TestOptionsRejectUnknownPOLoadCell(t *testing.T) {
	optErr(t, Options{POLoadCell: "DFFx1"}, "POLoadCell")
}

func TestOptionsRejectBadInputSlews(t *testing.T) {
	// Not a primary input.
	optErr(t, Options{InputSlews: map[string]float64{"m": 5e-12}}, "InputSlews")
	// Non-positive override.
	optErr(t, Options{InputSlews: map[string]float64{"in": 0}}, "InputSlews")
}

func TestOptionsValidAccepted(t *testing.T) {
	lib := synthLib()
	nl := diamond()
	opt := Options{
		Levels:     []int{-3, 0, 3},
		InputSlews: map[string]float64{"in": 25e-12},
	}
	timer, err := NewTimer(lib, nl, flatTrees(nl, lib), opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := timer.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	// The subset of levels must propagate, and the per-net slew must land
	// on the PI stage.
	for _, n := range []int{-3, 0, 3} {
		if _, ok := res.ArrivalQ[n]; !ok {
			t.Fatalf("level %+d missing from arrivals", n)
		}
	}
	if got := res.Critical.Stages[0].InSlew; got != 25e-12 {
		t.Fatalf("PI stage slew %v, want the 25 ps override", got)
	}
}

// TestInputSlewOverrideChangesTiming pins the override to actually feed the
// pad-driver evaluation, not just the report.
func TestInputSlewOverrideChangesTiming(t *testing.T) {
	lib := synthLib()
	// Make the pad driver's output slew depend on its input slew.
	for _, key := range []string{"INVx4/A/rise", "INVx4/A/fall"} {
		m := lib.Arcs[key]
		m.LUT.OutSlew = [][]float64{{10e-12, 10e-12}, {80e-12, 80e-12}}
	}
	nl := diamond()
	base, err := NewTimer(lib, nl, flatTrees(nl, lib), Options{})
	if err != nil {
		t.Fatal(err)
	}
	resBase, err := base.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	over, err := NewTimer(lib, nl, flatTrees(nl, lib),
		Options{InputSlews: map[string]float64{"in": 900e-12}})
	if err != nil {
		t.Fatal(err)
	}
	resOver, err := over.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if resBase.Critical.Stages[0].OutSlew == resOver.Critical.Stages[0].OutSlew {
		t.Fatal("input-slew override did not reach the pad-driver evaluation")
	}
}
