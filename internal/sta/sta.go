// Package sta is the statistical static timing engine: it propagates
// N-sigma arrival times (eq. 10 of the paper) through a gate-level netlist
// with extracted RC parasitics, using only the coefficients file — per-arc
// moment LUTs and Table-I quantile coefficients for cells, Elmore × X_w for
// wires — exactly the flow of the paper's Fig. 1.
package sta

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/netlist"
	"repro/internal/rctree"
	"repro/internal/stats"
	"repro/internal/timinglib"
	"repro/internal/waveform"
)

// Options configures an analysis.
type Options struct {
	// Levels are the sigma levels to propagate (default stats.SigmaLevels).
	// They must be strictly increasing and include level 0, which drives
	// max-propagation and critical-path selection.
	Levels []int
	// InputSlew is the transition time at primary inputs (default 10 ps).
	InputSlew float64
	// InputSlews overrides InputSlew for individual primary-input nets —
	// the per-port `set_input_transition` of an SDC file, and the state the
	// incremental engine's SetInputSlew edit mutates. Keys must be primary
	// inputs of the analyzed netlist, values positive.
	InputSlews map[string]float64
	// InputDriver is the cell assumed to drive primary-input nets when
	// evaluating wire variability (default INVx4, an FO4 pad driver).
	InputDriver string
	// POLoadCell is the cell assumed to load primary outputs for wire
	// variability (default INVx4).
	POLoadCell string
}

func (o *Options) setDefaults() {
	if len(o.Levels) == 0 {
		o.Levels = stats.SigmaLevels
	}
	if o.InputSlew == 0 {
		o.InputSlew = 10e-12
	}
	if o.InputDriver == "" {
		o.InputDriver = "INVx4"
	}
	if o.POLoadCell == "" {
		o.POLoadCell = "INVx4"
	}
}


// Stage is one link of a timing path: a driving cell arc (absent for the
// primary-input stage) followed by its output net up to the next pin. It
// carries everything baselines and golden Monte-Carlo need to re-evaluate
// the same path.
type Stage struct {
	GateIdx int    // index into the netlist, -1 for the PI stage
	Cell    string // driving cell name ("" for the PI stage)
	InPin   string
	InEdge  waveform.Edge
	InSlew  float64
	Load    float64 // total output-net load seen by the cell (F)

	Net        string
	Tree       *rctree.Tree
	SinkLeaf   int     // leaf toward the next stage (or PO)
	SinkIdx    int     // index of the sink within the net's fanout list
	SinkCell   string  // cell loading that leaf ("" for a PO)
	SinkPin    string  // pin on the sink cell
	SinkPinCap float64 // its pin capacitance (already inside the tree leaf)

	CellMoments stats.Moments   // calibrated moments at (InSlew, Load)
	CellQ       map[int]float64 // T_c(nσ)
	OutSlew     float64         // slew at the tree root
	Elmore      float64         // T_Elmore root→SinkLeaf (includes pin caps)
	XW          float64         // wire variability σ_w/µ_w
	LeafSlew    float64         // slew at the leaf (next stage's InSlew)
}

// Path is an extracted timing path.
type Path struct {
	Launch   waveform.Edge // edge at the primary input
	Endpoint string        // endpoint description (net / PO)
	Stages   []Stage
}

// Quantile evaluates the paper's eq. (10): the nσ path delay is the sum of
// the cells' T_c(nσ) and the wires' T_w(nσ).
func (p *Path) Quantile(n int) float64 {
	var sum float64
	for _, s := range p.Stages {
		if s.CellQ != nil {
			sum += s.CellQ[n]
		}
		sum += (1 + float64(n)*s.XW) * s.Elmore
	}
	return sum
}

// Mean returns the nominal (0σ-free) mean path delay: Σµ_cell + ΣElmore.
func (p *Path) Mean() float64 {
	var sum float64
	for _, s := range p.Stages {
		sum += s.CellMoments.Mean + s.Elmore
	}
	return sum
}

// Result is the outcome of an analysis.
type Result struct {
	// Critical is the path with the largest mean arrival at any endpoint.
	Critical *Path
	// ArrivalQ is the propagated (max-per-level) arrival at the critical
	// endpoint.
	ArrivalQ map[int]float64
	// Endpoints is the number of timed endpoints.
	Endpoints int
	// GatesTimed counts evaluated cell arcs (the runtime driver the paper
	// notes is "in direct proportion to the number of cells").
	GatesTimed int
	// EndpointArrivals holds the propagated arrival quantiles of every
	// timed endpoint, keyed "net/edge" — the input to slack analysis.
	EndpointArrivals map[string]map[int]float64
}

// Timer runs analyses of one netlist + parasitics against a coefficients
// file.
type Timer struct {
	lib   *timinglib.File
	nl    *netlist.Netlist
	trees map[string]*rctree.Tree
	opt   Options

	// corner is the operating condition this timer evaluates under; the
	// zero value is the neutral corner (no perturbation). Multi-corner
	// batching derives one timer per corner via WithCorner.
	corner Corner

	fan map[string][]netlist.Sink
	drv map[string]int
	// pinsOf[gi] is gate gi's input pins in sorted order — structural, like
	// fan/drv: ECO resizes swap cells within a footprint but never pins, so
	// WithNetlist/WithTrees/WithCorner copies share it.
	pinsOf [][]string

	// compiled caches the timer's compiled graph (compile.go). The cache
	// key is the compile inputs — netlist, trees, options, library — so
	// WithNetlist/WithTrees/WithOptions copies start a fresh cache while
	// WithCorner copies share it (corners are evaluation-time state, not
	// compiled in). Held by pointer so timer copies see one cache.
	compiled *graphCache
}

// graphCache memoizes one compiled graph per (netlist, trees, options)
// generation of a timer.
type graphCache struct {
	mu sync.Mutex
	g  *Graph
}

// NewTimer validates inputs and builds the structural maps.
func NewTimer(lib *timinglib.File, nl *netlist.Netlist, trees map[string]*rctree.Tree, opt Options) (*Timer, error) {
	opt.setDefaults()
	if err := opt.validate(lib, nl); err != nil {
		return nil, err
	}
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	t := &Timer{lib: lib, nl: nl, trees: trees, opt: opt,
		fan: nl.FanoutMap(), drv: nl.DriverMap(), compiled: &graphCache{}}
	t.pinsOf = make([][]string, len(nl.Gates))
	for gi := range nl.Gates {
		g := &nl.Gates[gi]
		pins := make([]string, 0, len(g.Pins)-1)
		for pin := range g.Pins {
			if pin != "Y" {
				pins = append(pins, pin)
			}
		}
		sort.Strings(pins)
		t.pinsOf[gi] = pins
	}
	for net, sinks := range t.fan {
		if len(sinks) > 0 && trees[net] == nil {
			return nil, fmt.Errorf("sta: net %s has no parasitic tree", net)
		}
	}
	return t, nil
}

// Analyze times the whole design and extracts the critical path.
func (t *Timer) Analyze() (*Result, error) {
	return t.AnalyzeContext(context.Background())
}

// AnalyzeContext is Analyze under a cancelable context: cancellation (or a
// deadline) stops the propagation between gates and returns a classified
// error, so a long analysis of a large design can be aborted promptly.
func (t *Timer) AnalyzeContext(ctx context.Context) (*Result, error) {
	res, _, err := t.analyzeInternal(ctx)
	return res, err
}

// analyzeInternal runs the propagation and also returns the per-net state
// so callers (AnalyzeTopPaths) can backtrack additional paths. It is the
// single-corner sequential driver over the wavefront engine in parallel.go
// — exactly the same code path the parallel multi-corner analysis runs, at
// parallelism 1 with the timer's own corner.
func (t *Timer) analyzeInternal(ctx context.Context) (*Result, StateMap, error) {
	results, states, err := t.analyzeCorners(ctx, AnalyzeOptions{})
	if err != nil {
		return nil, nil, err
	}
	return results[0], states[0], nil
}

// levelGroups partitions a topological order into logic levels: a gate's
// level is one past the deepest level among its fanin drivers. Each group is
// internally in `order` order, and concatenating the groups is again a valid
// topological order.
func (t *Timer) levelGroups(order []int) [][]int {
	lv := make([]int, len(t.nl.Gates))
	maxL := 0
	for _, gi := range order {
		l := 0
		for _, net := range t.nl.Gates[gi].InputNets() {
			if di, ok := t.drv[net]; ok && lv[di]+1 > l {
				l = lv[di] + 1
			}
		}
		lv[gi] = l
		if l > maxL {
			maxL = l
		}
	}
	groups := make([][]int, maxL+1)
	for _, gi := range order {
		groups[lv[gi]] = append(groups[lv[gi]], gi)
	}
	return groups
}

// inputRootSlew models the transition time at a primary-input net root for
// the given edge: the assumed pad driver (Options.InputDriver) driving the
// net's total load — matching what the golden path Monte Carlo simulates.
// Designs timed against a library without the pad-driver arc fall back to
// the raw input slew.
func (t *Timer) inputRootSlew(net string, e waveform.Edge) float64 {
	inSlew := t.effInputSlew(net)
	tree := t.trees[net]
	if tree == nil {
		return inSlew
	}
	info, err := t.lib.Cell(t.opt.InputDriver)
	if err != nil || len(info.Inputs) == 0 {
		return inSlew
	}
	arc, err := t.lib.Arc(t.opt.InputDriver, info.Inputs[0], e.Opposite())
	if err != nil {
		return inSlew
	}
	return arc.OutSlew(inSlew, t.corner.scaled(tree.TotalCap()))
}

// sinkLeaf finds the fanout index and tree leaf of gate gi's pin on net.
func (t *Timer) sinkLeaf(net string, gi int, pin string) (sinkIdx, leaf int, err error) {
	tree := t.trees[net]
	for si, s := range t.fan[net] {
		if s.Gate == gi && s.Pin == pin {
			name := fmt.Sprintf("pin:%s:%s", t.nl.Gates[gi].Name, pin)
			leaf := tree.NodeIndex(name)
			if leaf < 0 {
				return 0, 0, fmt.Errorf("sta: tree %s has no leaf %q", net, name)
			}
			return si, leaf, nil
		}
	}
	return 0, 0, fmt.Errorf("sta: net %s does not feed gate %d pin %s", net, gi, pin)
}

// poLeaf finds the tree leaf of a primary-output sink.
func (t *Timer) poLeaf(net string, sinkIdx int) (int, error) {
	tree := t.trees[net]
	name := fmt.Sprintf("pin:PO%d", sinkIdx)
	leaf := tree.NodeIndex(name)
	if leaf < 0 {
		return 0, fmt.Errorf("sta: tree %s has no PO leaf %q", net, name)
	}
	return leaf, nil
}

// atLeaf transports a net-root state to a leaf: arrival via the wire
// quantile model, slew via the PERI degradation rule
// (leaf² = root² + (ln9·Elmore)²).
func (t *Timer) atLeaf(net string, st *NetState, leaf int, sinkGate int) (map[int]float64, float64, error) {
	tree := t.trees[net]
	elmore := t.corner.scaled(tree.Elmore(leaf))
	xw, err := t.xwFor(net, sinkGate)
	if err != nil {
		return nil, 0, err
	}
	arr := make(map[int]float64, len(st.Arr))
	for n, a := range st.Arr {
		arr[n] = a + (1+float64(n)*xw)*elmore
	}
	const ln9 = 2.1972245773362196
	slew := math.Sqrt(st.Slew*st.Slew + (ln9*elmore)*(ln9*elmore))
	return arr, slew, nil
}

// xwFor evaluates the wire variability of a net toward a sink gate (or a PO
// when sinkGate < 0).
func (t *Timer) xwFor(net string, sinkGate int) (float64, error) {
	if t.lib.Wire == nil {
		return 0, nil
	}
	driver := t.opt.InputDriver
	if gi, ok := t.drv[net]; ok {
		driver = t.nl.Gates[gi].Cell
	}
	load := t.opt.POLoadCell
	if sinkGate >= 0 {
		load = t.nl.Gates[sinkGate].Cell
	}
	return t.lib.Wire.XW(driver, load)
}

// backtrack reconstructs the critical path ending at the PO net/edge.
func (t *Timer) backtrack(state StateMap, endNet string, endEdge waveform.Edge) (*Path, error) {
	type link struct {
		net  string
		edge waveform.Edge
	}
	var rev []link
	cur := link{net: endNet, edge: endEdge}
	for {
		rev = append(rev, cur)
		gi, ok := t.drv[cur.net]
		if !ok {
			break // reached a primary input
		}
		st := state[cur.net][EdgeIdx(cur.edge)]
		if !st.Valid {
			return nil, fmt.Errorf("sta: backtrack through invalid state at %s", cur.net)
		}
		cur = link{net: t.nl.Gates[gi].Pins[st.InPin], edge: st.InEdge}
	}
	// rev is endpoint→PI; build stages PI→endpoint.
	p := &Path{Endpoint: endNet}
	for i := len(rev) - 1; i >= 0; i-- {
		l := rev[i]
		stg := Stage{GateIdx: -1, Net: l.net, Tree: t.trees[l.net], SinkLeaf: -1}
		if gi, ok := t.drv[l.net]; ok {
			st := state[l.net][EdgeIdx(l.edge)]
			g := &t.nl.Gates[gi]
			stg.GateIdx = gi
			stg.Cell = g.Cell
			stg.InPin = st.InPin
			stg.InEdge = st.InEdge
			stg.InSlew = st.InSlew
			stg.Load = st.Load
			stg.CellMoments = st.Moms
			stg.CellQ = st.Quant
			stg.OutSlew = st.Slew
		} else {
			p.Launch = l.edge
			stg.InEdge = l.edge
			stg.InSlew = t.effInputSlew(l.net)
			st := state[l.net][EdgeIdx(l.edge)]
			stg.OutSlew = st.Slew
		}
		// Wire segment toward the next stage (or the endpoint PO).
		if i > 0 {
			nextNet := rev[i-1].net
			ngi := t.drv[nextNet]
			ng := &t.nl.Gates[ngi]
			nst := state[nextNet][EdgeIdx(rev[i-1].edge)]
			sinkIdx, leaf, err := t.sinkLeaf(l.net, ngi, nst.InPin)
			if err != nil {
				return nil, err
			}
			stg.SinkIdx = sinkIdx
			stg.SinkLeaf = leaf
			stg.SinkCell = ng.Cell
			stg.SinkPin = nst.InPin
			pc, err := t.lib.PinCap(ng.Cell, nst.InPin)
			if err != nil {
				return nil, err
			}
			stg.SinkPinCap = pc
		} else {
			// Endpoint: PO leaf.
			for si, s := range t.fan[l.net] {
				if s.Gate < 0 {
					leaf, err := t.poLeaf(l.net, si)
					if err != nil {
						return nil, err
					}
					stg.SinkIdx = si
					stg.SinkLeaf = leaf
					break
				}
			}
			if stg.SinkLeaf < 0 {
				return nil, fmt.Errorf("sta: endpoint %s has no PO leaf", l.net)
			}
		}
		stg.Elmore = t.corner.scaled(stg.Tree.Elmore(stg.SinkLeaf))
		sinkGate := -1
		if i > 0 {
			sinkGate = t.drv[rev[i-1].net]
		}
		xw, err := t.xwFor(l.net, sinkGate)
		if err != nil {
			return nil, err
		}
		stg.XW = xw
		const ln9 = 2.1972245773362196
		stg.LeafSlew = math.Sqrt(stg.OutSlew*stg.OutSlew + (ln9*stg.Elmore)*(ln9*stg.Elmore))
		p.Stages = append(p.Stages, stg)
	}
	return p, nil
}
