package sta

import (
	"fmt"

	"repro/internal/netlist"
	"repro/internal/timinglib"
)

// OptionsError is the typed rejection of a malformed Options value. STA
// configuration errors used to surface deep inside propagation (as a missing
// arc, a zero-level map lookup, or a silent fallback); NewTimer now rejects
// them up front so callers can distinguish a bad request from a bad design.
type OptionsError struct {
	Field  string // the Options field at fault
	Reason string
}

// Error implements error.
func (e *OptionsError) Error() string {
	return fmt.Sprintf("sta: invalid Options.%s: %s", e.Field, e.Reason)
}

// validate checks a defaulted Options value against the coefficients file
// and the netlist. Levels must be strictly increasing (sorted, duplicate
// free) and include level 0, which drives max-propagation and critical-path
// selection. The assumed boundary cells must exist in the library, and
// per-net input-slew overrides must name primary inputs.
func (o *Options) validate(lib *timinglib.File, nl *netlist.Netlist) error {
	if len(o.Levels) == 0 {
		return &OptionsError{Field: "Levels", Reason: "no sigma levels"}
	}
	hasZero := false
	for i, n := range o.Levels {
		if i > 0 && n <= o.Levels[i-1] {
			return &OptionsError{Field: "Levels",
				Reason: fmt.Sprintf("levels must be strictly increasing, got %d after %d", n, o.Levels[i-1])}
		}
		if n == 0 {
			hasZero = true
		}
	}
	if !hasZero {
		return &OptionsError{Field: "Levels",
			Reason: "level 0 is required (it drives max-propagation and path selection)"}
	}
	if o.InputSlew <= 0 {
		return &OptionsError{Field: "InputSlew",
			Reason: fmt.Sprintf("must be positive, got %g", o.InputSlew)}
	}
	if lib != nil {
		if _, err := lib.Cell(o.InputDriver); err != nil {
			return &OptionsError{Field: "InputDriver",
				Reason: fmt.Sprintf("unknown cell %q", o.InputDriver)}
		}
		if _, err := lib.Cell(o.POLoadCell); err != nil {
			return &OptionsError{Field: "POLoadCell",
				Reason: fmt.Sprintf("unknown cell %q", o.POLoadCell)}
		}
	}
	if len(o.InputSlews) > 0 && nl != nil {
		pi := make(map[string]bool, len(nl.Inputs))
		for _, in := range nl.Inputs {
			pi[in] = true
		}
		for net, slew := range o.InputSlews {
			if !pi[net] {
				return &OptionsError{Field: "InputSlews",
					Reason: fmt.Sprintf("net %q is not a primary input", net)}
			}
			if slew <= 0 {
				return &OptionsError{Field: "InputSlews",
					Reason: fmt.Sprintf("net %q slew must be positive, got %g", net, slew)}
			}
		}
	}
	return nil
}
