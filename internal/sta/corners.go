package sta

import "fmt"

// Corner is one operating condition of a multi-corner analysis: a boundary
// input-slew operating point and a parasitic-capacitance derate. The zero
// Corner is the neutral corner — it changes nothing, and every analysis of
// it is bit-identical to a plain single-condition run.
//
// Corners deliberately perturb only the two knobs the paper's evaluation
// sweeps (input transition and load): the moment LUTs and Table-I quantile
// coefficients are functions of (slew, load), so one coefficients file
// serves every corner and a batched traversal can reuse all structural
// intermediates (sink leaves, Elmore delays, X_w, arc lookups) across the
// whole set.
type Corner struct {
	// Name identifies the corner in results and over the query API.
	// Optional for a single-corner run; must be unique within a CornerSet.
	Name string `json:"name,omitempty"`
	// InputSlew overrides Options.InputSlew for this corner (seconds,
	// 0 = keep the analysis default). Per-net Options.InputSlews overrides
	// still win: an SDC-style per-port constraint applies at every corner.
	InputSlew float64 `json:"input_slew,omitempty"`
	// CapScale derates every parasitic capacitance this corner sees — the
	// cell load (total net cap) and the wire Elmore delays, both linear in
	// C. 0 means 1.0 (no derate); 1.1 is a classic slow-extraction corner.
	CapScale float64 `json:"cap_scale,omitempty"`
}

// capScale returns the effective capacitance derate (0 ⇒ 1).
func (c Corner) capScale() float64 {
	if c.CapScale == 0 {
		return 1
	}
	return c.CapScale
}

// scaled applies the corner's capacitance derate to a cap-linear quantity.
// The neutral corner performs no arithmetic at all, so its values keep the
// exact bits of a single-condition analysis.
func (c Corner) scaled(v float64) float64 {
	if s := c.capScale(); s != 1 {
		return v * s
	}
	return v
}

// Label returns the corner's display name, synthesizing "corner<i>" for
// unnamed corners at position i.
func (c Corner) Label(i int) string {
	if c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("corner%d", i)
}

// validate rejects non-physical corner parameters.
func (c Corner) validate(i int) error {
	if c.InputSlew < 0 {
		return &OptionsError{Field: "Corners",
			Reason: fmt.Sprintf("corner %s: input slew must be non-negative, got %g", c.Label(i), c.InputSlew)}
	}
	if c.CapScale < 0 {
		return &OptionsError{Field: "Corners",
			Reason: fmt.Sprintf("corner %s: cap scale must be non-negative, got %g", c.Label(i), c.CapScale)}
	}
	return nil
}

// CornerSet is the batched multi-corner request: the sigma levels to
// propagate crossed with the operating points to evaluate them at. One
// topological traversal of the design evaluates every corner of the set.
type CornerSet struct {
	// Levels optionally overrides Options.Levels for the whole set (nil =
	// keep). The same validation applies: strictly increasing, containing 0.
	Levels []int `json:"levels,omitempty"`
	// Corners are the operating points. Empty means the single neutral
	// corner (plain single-condition analysis).
	Corners []Corner `json:"corners,omitempty"`
}

// normalized returns the effective corner list: at least the neutral corner.
func (cs CornerSet) normalized() []Corner {
	if len(cs.Corners) == 0 {
		return []Corner{{}}
	}
	return cs.Corners
}

// Validate checks the set: valid per-corner parameters and unique labels.
// Exposed for callers (the incremental engine, the server) that accept
// corner sets from external input and want to reject them up front.
func (cs CornerSet) Validate() error { return cs.validate() }

// validate checks the set: valid per-corner parameters and unique labels.
func (cs CornerSet) validate() error {
	seen := make(map[string]bool, len(cs.Corners))
	for i, c := range cs.Corners {
		if err := c.validate(i); err != nil {
			return err
		}
		l := c.Label(i)
		if seen[l] {
			return &OptionsError{Field: "Corners",
				Reason: fmt.Sprintf("duplicate corner name %q", l)}
		}
		seen[l] = true
	}
	return nil
}

// AnalyzeOptions configures one AnalyzeAll call: which corners to batch and
// how many workers to spread each wavefront level across. The zero value is
// a plain sequential single-condition analysis.
type AnalyzeOptions struct {
	// Corners is the operating-condition batch (empty = neutral corner).
	Corners CornerSet
	// Parallelism is the wavefront worker count: gates within a logic level
	// are independent, so each level is evaluated by up to Parallelism
	// goroutines and committed by a single index-ordered reduction. Results
	// are bit-identical at every value (including 0/1 = sequential).
	Parallelism int
}

// WithCorner returns a Timer evaluating under the given operating corner.
// The structural maps, library, netlist and parasitics are shared; only the
// corner differs. The zero corner returns an equivalent neutral timer.
func (t *Timer) WithCorner(c Corner) (*Timer, error) {
	if err := c.validate(0); err != nil {
		return nil, err
	}
	cp := *t
	cp.corner = c
	return &cp, nil
}

// Corner returns the operating corner the timer evaluates under (zero value
// = neutral).
func (t *Timer) Corner() Corner { return t.corner }

// effInputSlew is the effective transition at a primary-input net under the
// timer's corner: per-net override first (an SDC-style constraint applies at
// every corner), then the corner's operating point, then the global default.
func (t *Timer) effInputSlew(net string) float64 {
	if s, ok := t.opt.InputSlews[net]; ok {
		return s
	}
	if t.corner.InputSlew > 0 {
		return t.corner.InputSlew
	}
	return t.opt.InputSlew
}
