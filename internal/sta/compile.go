package sta

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/nsigma"
	"repro/internal/rctree"
	"repro/internal/stats"
	"repro/internal/timinglib"
	"repro/internal/waveform"
)

// This file is the data-oriented eval core: a one-time Compile step lowers
// the levelized netlist + parasitics into flat structure-of-arrays — dense
// net/gate ids, CSR fanin/fanout index slices, precomputed sink leaves,
// raw Elmore delays, wire-variability factors, pin caps and LUT handles —
// and per-corner timing state lives in contiguous float64 planes
// (FlatState) instead of the name-keyed map-of-structs StateMap. The
// wavefront sweep becomes a linear scan over these arrays with zero
// steady-state allocations; name-keyed Results are marshalled only at the
// boundary (endpoints, critical paths). Every arithmetic step is the exact
// sequence of the legacy EvalGateBatch, in the same order, so compiled
// results are bit-identical to the legacy path (compile_test.go pins this
// across circuits, corner sets and worker counts).
//
// The Graph is immutable during evaluation. The incremental engine mutates
// it copy-on-write: CloneForEdit copies the derived arrays (cells, arcs,
// Elmore, X_w, trees, caps) and shares the structural ones (ids, CSR
// topology, names), so a published snapshot keeps a consistent frozen view
// while later edits refresh a private clone.

// Graph is the compiled form of one design under one coefficients file:
// the structural skeleton (dense ids, CSR adjacency) plus the derived
// per-pin evaluation operands the inner loop reads linearly.
type Graph struct {
	lib *timinglib.File
	opt Options

	levels []int
	li0    int // index of sigma level 0 in levels

	// Nets: dense ids. Primary inputs come first (in declaration order),
	// then gate outputs in gate-index order.
	netNames []string
	netIDs   map[string]int
	drvOf    []int32 // net -> driving gate, -1 for a primary input
	treeOf   []*rctree.Tree
	totalCap []float64 // raw TotalCap of the net's tree (0 when treeless)

	inputs  []int32 // PI net ids in netlist declaration order
	outputs []int32 // PO net ids in netlist declaration order

	// Gates.
	gateNames []string
	cellOf    []string
	outNetOf  []int32

	// Levelized order: order[levOff[l]:levOff[l+1]] is logic level l, each
	// group internally in topological order; posOf is the inverse (gate →
	// position in order).
	order  []int32
	levOff []int32
	posOf  []int32

	// Fanin pins, CSR by gate: pin entries in sorted pin-name order (the
	// deterministic visit order of the legacy eval). A pin entry id is the
	// stable handle the winner bookkeeping stores.
	pinOff     []int32
	pinName    []string
	pinNet     []int32
	pinSinkIdx []int32 // index within the input net's fanout list
	pinLeaf    []int32 // sink leaf in the input net's tree
	pinElmore  []float64
	pinXW      []float64
	pinCap     []float64
	pinArc     [][2]*nsigma.ArcModel // by EdgeIdx(inEdge)

	// Fanout, CSR by net: sink gate ids, -1 marking a primary-output pad.
	fanOff  []int32
	fanGate []int32

	// Primary-output transport entries, CSR by net (empty for non-PO nets):
	// the precomputed atLeaf operands of each PO pad, in fanout order.
	poOff     []int32
	poSinkIdx []int32
	poLeaf    []int32
	poElmore  []float64
	poXW      []float64

	// padArc[EdgeIdx(e)] is the Options.InputDriver arc evaluated by the
	// PI root-slew model for edge e (nil when the library lacks it).
	padArc [2]*nsigma.ArcModel
}

// NumNets returns the number of distinct nets.
func (g *Graph) NumNets() int { return len(g.netNames) }

// NumGates returns the number of gates.
func (g *Graph) NumGates() int { return len(g.cellOf) }

// Levels returns the propagated sigma levels.
func (g *Graph) Levels() []int { return g.levels }

// NetID resolves a net name to its dense id.
func (g *Graph) NetID(name string) (int, bool) {
	id, ok := g.netIDs[name]
	return id, ok
}

// NetName returns the name of a net id.
func (g *Graph) NetName(id int) string { return g.netNames[id] }

// Driver returns the gate driving a net, or -1 for a primary input.
func (g *Graph) Driver(net int) int { return int(g.drvOf[net]) }

// OutNet returns the output net id of a gate.
func (g *Graph) OutNet(gi int) int { return int(g.outNetOf[gi]) }

// FanoutGates returns the sink gate ids of a net (-1 entries are
// primary-output pads). The slice aliases the graph; do not mutate.
func (g *Graph) FanoutGates(net int) []int32 {
	return g.fanGate[g.fanOff[net]:g.fanOff[net+1]]
}

// LevelOf returns the logic level of a gate (position of its group in the
// levelized order).
func (g *Graph) LevelOf(gi int) int {
	// Levels are only needed by schedulers that already track them; derive
	// lazily from the order via binary search over levOff.
	pos := g.posOf[gi]
	return sort.Search(len(g.levOff)-1, func(l int) bool { return g.levOff[l+1] > pos })
}

// Compiled returns the timer's compiled graph, building it on first use
// and memoizing it for the life of this (netlist, trees, options)
// generation — WithTrees/WithNetlist/WithOptions copies compile afresh,
// WithCorner copies share the cache. The returned graph is immutable;
// concurrent analyses share it. Callers that will mutate the graph (the
// incremental engine's copy-on-write edits) must Compile their own.
func (t *Timer) Compiled() (*Graph, error) {
	t.compiled.mu.Lock()
	defer t.compiled.mu.Unlock()
	if t.compiled.g == nil {
		g, err := t.Compile()
		if err != nil {
			return nil, err
		}
		t.compiled.g = g
	}
	return t.compiled.g, nil
}

// Compile lowers the timer's design into the flat evaluation form. The
// structural work the legacy eval repeats per analysis — sink-leaf
// resolution, raw Elmore delays, wire variability, arc lookups — runs once
// here; anything that can fail (missing trees, leaves, arcs, wire
// coverage) fails at compile time instead of mid-propagation.
func (t *Timer) Compile() (*Graph, error) {
	order, err := t.nl.Levelize()
	if err != nil {
		return nil, err
	}
	groups := t.levelGroups(order)

	g := &Graph{
		lib:    t.lib,
		opt:    t.opt,
		levels: t.opt.Levels,
		li0:    -1,
	}
	for li, n := range g.levels {
		if n == 0 {
			g.li0 = li
		}
	}

	// Net ids: PIs first, then gate outputs in gate order.
	g.netIDs = make(map[string]int, t.nl.NumNets())
	addNet := func(name string, drv int32) int {
		if id, ok := g.netIDs[name]; ok {
			return id
		}
		id := len(g.netNames)
		g.netIDs[name] = id
		g.netNames = append(g.netNames, name)
		g.drvOf = append(g.drvOf, drv)
		return id
	}
	for _, in := range t.nl.Inputs {
		g.inputs = append(g.inputs, int32(addNet(in, -1)))
	}
	for gi := range t.nl.Gates {
		addNet(t.nl.Gates[gi].Output(), int32(gi))
	}
	for _, po := range t.nl.Outputs {
		id, ok := g.netIDs[po]
		if !ok {
			return nil, fmt.Errorf("sta: compile: output net %s is not driven", po)
		}
		g.outputs = append(g.outputs, int32(id))
	}
	nn := len(g.netNames)
	g.treeOf = make([]*rctree.Tree, nn)
	g.totalCap = make([]float64, nn)
	for id, name := range g.netNames {
		if tree := t.trees[name]; tree != nil {
			g.treeOf[id] = tree
			g.totalCap[id] = tree.TotalCap()
		}
	}

	// Gates and the levelized order.
	ng := len(t.nl.Gates)
	g.gateNames = make([]string, ng)
	g.cellOf = make([]string, ng)
	g.outNetOf = make([]int32, ng)
	for gi := range t.nl.Gates {
		gate := &t.nl.Gates[gi]
		g.gateNames[gi] = gate.Name
		g.cellOf[gi] = gate.Cell
		g.outNetOf[gi] = int32(g.netIDs[gate.Output()])
		if g.treeOf[g.outNetOf[gi]] == nil {
			return nil, fmt.Errorf("sta: gate %s output net %s has no tree", gate.Name, gate.Output())
		}
	}
	g.order = make([]int32, 0, ng)
	g.levOff = make([]int32, 0, len(groups)+1)
	g.levOff = append(g.levOff, 0)
	for _, grp := range groups {
		for _, gi := range grp {
			g.order = append(g.order, int32(gi))
		}
		g.levOff = append(g.levOff, int32(len(g.order)))
	}
	g.posOf = make([]int32, ng)
	for p, gi := range g.order {
		g.posOf[gi] = int32(p)
	}

	// Fanin pin entries (sorted pin order, matching t.pinsOf) and the
	// fanout/PO CSR. Pin entry resolution mirrors the legacy sinkLeaf and
	// xwFor lookups exactly, so the stored operands carry the same bits the
	// legacy path recomputes per analysis.
	g.pinOff = make([]int32, ng+1)
	for gi := 0; gi < ng; gi++ {
		g.pinOff[gi+1] = g.pinOff[gi] + int32(len(t.pinsOf[gi]))
	}
	np := int(g.pinOff[ng])
	g.pinName = make([]string, np)
	g.pinNet = make([]int32, np)
	g.pinSinkIdx = make([]int32, np)
	g.pinLeaf = make([]int32, np)
	g.pinElmore = make([]float64, np)
	g.pinXW = make([]float64, np)
	g.pinCap = make([]float64, np)
	g.pinArc = make([][2]*nsigma.ArcModel, np)
	for gi := 0; gi < ng; gi++ {
		gate := &t.nl.Gates[gi]
		base := int(g.pinOff[gi])
		for pi, pin := range t.pinsOf[gi] {
			p := base + pi
			inNet := gate.Pins[pin]
			id, ok := g.netIDs[inNet]
			if !ok {
				return nil, fmt.Errorf("sta: compile: gate %s pin %s reads undriven net %s", gate.Name, pin, inNet)
			}
			g.pinName[p] = pin
			g.pinNet[p] = int32(id)
			sinkIdx, leaf, err := t.sinkLeaf(inNet, gi, pin)
			if err != nil {
				return nil, err
			}
			g.pinSinkIdx[p] = int32(sinkIdx)
			g.pinLeaf[p] = int32(leaf)
			g.pinElmore[p] = g.treeOf[id].Elmore(leaf)
			xw, err := t.xwFor(inNet, gi)
			if err != nil {
				return nil, err
			}
			g.pinXW[p] = xw
			pc, err := t.lib.PinCap(gate.Cell, pin)
			if err != nil {
				return nil, err
			}
			g.pinCap[p] = pc
			for _, e := range []waveform.Edge{waveform.Falling, waveform.Rising} {
				arc, err := t.lib.Arc(gate.Cell, pin, e)
				if err != nil {
					return nil, err
				}
				g.pinArc[p][EdgeIdx(e)] = arc
			}
		}
	}

	g.fanOff = make([]int32, nn+1)
	g.poOff = make([]int32, nn+1)
	for id, name := range g.netNames {
		sinks := t.fan[name]
		g.fanOff[id+1] = int32(len(sinks))
		for _, s := range sinks {
			if s.Gate < 0 {
				g.poOff[id+1]++
			}
		}
	}
	for id := 0; id < nn; id++ {
		g.fanOff[id+1] += g.fanOff[id]
		g.poOff[id+1] += g.poOff[id]
	}
	g.fanGate = make([]int32, g.fanOff[nn])
	nPO := int(g.poOff[nn])
	g.poSinkIdx = make([]int32, 0, nPO)
	g.poLeaf = make([]int32, 0, nPO)
	g.poElmore = make([]float64, 0, nPO)
	g.poXW = make([]float64, 0, nPO)
	for id, name := range g.netNames {
		sinks := t.fan[name]
		for si, s := range sinks {
			g.fanGate[int(g.fanOff[id])+si] = int32(s.Gate)
			if s.Gate >= 0 {
				continue
			}
			leaf, err := t.poLeaf(name, si)
			if err != nil {
				return nil, err
			}
			xw, err := t.xwFor(name, -1)
			if err != nil {
				return nil, err
			}
			g.poSinkIdx = append(g.poSinkIdx, int32(si))
			g.poLeaf = append(g.poLeaf, int32(leaf))
			g.poElmore = append(g.poElmore, g.treeOf[id].Elmore(leaf))
			g.poXW = append(g.poXW, xw)
		}
	}

	// Pad-driver arcs for the PI root-slew model (best-effort, like the
	// legacy inputRootSlew fallbacks).
	if info, err := t.lib.Cell(t.opt.InputDriver); err == nil && len(info.Inputs) > 0 {
		for _, e := range []waveform.Edge{waveform.Falling, waveform.Rising} {
			if arc, err := t.lib.Arc(t.opt.InputDriver, info.Inputs[0], e.Opposite()); err == nil {
				g.padArc[EdgeIdx(e)] = arc
			}
		}
	}
	return g, nil
}

// pinEntry resolves the pin entry id of (gate, pin name); -1 when absent.
func (g *Graph) pinEntry(gi int, pin string) int {
	for p := int(g.pinOff[gi]); p < int(g.pinOff[gi+1]); p++ {
		if g.pinName[p] == pin {
			return p
		}
	}
	return -1
}

// ---------------------------------------------------------------------------
// Flat per-corner state

// FlatState is the propagated timing state of one corner stored as
// contiguous planes indexed by dense net id and edge: arrival and winner
// quantiles as [net][edge][level] float64 planes, scalars as [net][edge]
// slices. It replaces the map-of-structs StateMap in the hot path; the
// name-keyed view is materialised only at the boundary (StateMapOf).
type FlatState struct {
	nn, nlev int
	arr      []float64 // [(net*2+edge)*nlev + levelIdx]
	quant    []float64
	slew     []float64 // [net*2+edge]
	inSlew   []float64
	load     []float64
	moms     []stats.Moments
	winPin   []int32 // winning pin entry id, -1 for PIs
	valid    []bool
}

// NewState allocates a zeroed state sized for the graph. All nets start
// invalid with no winner.
func (g *Graph) NewState() *FlatState {
	nn, nlev := len(g.netNames), len(g.levels)
	st := &FlatState{
		nn: nn, nlev: nlev,
		arr:    make([]float64, nn*2*nlev),
		quant:  make([]float64, nn*2*nlev),
		slew:   make([]float64, nn*2),
		inSlew: make([]float64, nn*2),
		load:   make([]float64, nn*2),
		moms:   make([]stats.Moments, nn*2),
		winPin: make([]int32, nn*2),
		valid:  make([]bool, nn*2),
	}
	for i := range st.winPin {
		st.winPin[i] = -1
	}
	return st
}

// Clone returns an independent copy — a handful of memcpys, the cheap
// snapshot primitive the incremental engine publishes.
func (s *FlatState) Clone() *FlatState {
	cp := &FlatState{nn: s.nn, nlev: s.nlev,
		arr:    append([]float64(nil), s.arr...),
		quant:  append([]float64(nil), s.quant...),
		slew:   append([]float64(nil), s.slew...),
		inSlew: append([]float64(nil), s.inSlew...),
		load:   append([]float64(nil), s.load...),
		moms:   append([]stats.Moments(nil), s.moms...),
		winPin: append([]int32(nil), s.winPin...),
		valid:  append([]bool(nil), s.valid...),
	}
	return cp
}

// Valid reports whether the (net, edge) slot holds propagated state.
func (s *FlatState) Valid(net int, e waveform.Edge) bool { return s.valid[net*2+EdgeIdx(e)] }

// Arr returns the arrival plane row of (net, edge): one value per sigma
// level, aliasing the state.
func (s *FlatState) Arr(net int, e waveform.Edge) []float64 {
	off := (net*2 + EdgeIdx(e)) * s.nlev
	return s.arr[off : off+s.nlev]
}

// Slew returns the root slew of (net, edge).
func (s *FlatState) Slew(net int, e waveform.Edge) float64 { return s.slew[net*2+EdgeIdx(e)] }

// effInputSlew mirrors Timer.effInputSlew for a compiled graph under an
// explicit corner.
func (g *Graph) effInputSlew(net int, c Corner) float64 {
	if s, ok := g.opt.InputSlews[g.netNames[net]]; ok {
		return s
	}
	if c.InputSlew > 0 {
		return c.InputSlew
	}
	return g.opt.InputSlew
}

// PISlews computes the primary-input root slews of a net for both edges
// under a corner — the compiled InputState. Index by EdgeIdx.
func (g *Graph) PISlews(net int, c Corner) [2]float64 {
	var out [2]float64
	for ei := 0; ei < 2; ei++ {
		inSlew := g.effInputSlew(net, c)
		if g.treeOf[net] == nil || g.padArc[ei] == nil {
			out[ei] = inSlew
			continue
		}
		out[ei] = g.padArc[ei].OutSlew(inSlew, c.scaled(g.totalCap[net]))
	}
	return out
}

// InitPI seeds every primary input of the state: zero arrival at every
// sigma level and the pad-driver root slew, both edges.
func (g *Graph) InitPI(st *FlatState, c Corner) {
	for _, net := range g.inputs {
		slews := g.PISlews(int(net), c)
		g.CommitPI(st, int(net), slews)
	}
}

// CommitPI installs freshly computed PI root slews into the state.
func (g *Graph) CommitPI(st *FlatState, net int, slews [2]float64) {
	for ei := 0; ei < 2; ei++ {
		si := net*2 + ei
		st.valid[si] = true
		st.winPin[si] = -1
		st.slew[si] = slews[ei]
		// Arrivals and quantiles stay zero; a PI slot only ever carries a
		// root slew (legacy InputState semantics).
		off := si * st.nlev
		for li := 0; li < st.nlev; li++ {
			st.arr[off+li] = 0
			st.quant[off+li] = 0
		}
	}
}

// PIMatches reports whether the cached PI state of net equals the given
// root slews under the incremental engine's early-termination rule: bitwise
// at eps 0, within eps otherwise.
func (s *FlatState) PIMatches(net int, slews [2]float64, eps float64) bool {
	for ei := 0; ei < 2; ei++ {
		si := net*2 + ei
		if !s.valid[si] || s.winPin[si] != -1 {
			return false
		}
		if eps == 0 {
			if s.slew[si] != slews[ei] {
				return false
			}
		} else if math.Abs(s.slew[si]-slews[ei]) > eps {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Compiled gate evaluation

// EvalScratch holds the reusable per-worker buffers of the compiled eval
// loop. One scratch serves any number of sequential EvalGateInto calls with
// zero steady-state allocations.
type EvalScratch struct {
	cand, qs       []float64 // per level
	bestArr, bestQ []float64 // per corner × level
	bestArc        []*nsigma.ArcModel
}

// NewScratch sizes a scratch for nc corners.
func (g *Graph) NewScratch(nc int) *EvalScratch {
	nlev := len(g.levels)
	return &EvalScratch{
		cand:    make([]float64, nlev),
		qs:      make([]float64, nlev),
		bestArr: make([]float64, nc*nlev),
		bestQ:   make([]float64, nc*nlev),
		bestArc: make([]*nsigma.ArcModel, nc),
	}
}

// GateOut buffers one gate's evaluated output state for all corners and
// both edges, so callers can compare before committing (the incremental
// cut test) or commit directly (the batch sweep). Slots are indexed
// edge-major: oi = EdgeIdx(edge)*nc + ci.
type GateOut struct {
	nc, nlev int
	arr      []float64 // [oi*nlev + levelIdx]
	quant    []float64
	slew     []float64
	inSlew   []float64
	load     []float64
	moms     []stats.Moments
	winPin   []int32
	valid    []bool
	// Arcs counts the structurally timed cell arcs of the evaluation
	// (corner-independent), matching the legacy arcs counter.
	Arcs int
}

// NewGateOut sizes an output buffer for nc corners.
func (g *Graph) NewGateOut(nc int) *GateOut {
	nlev := len(g.levels)
	return &GateOut{
		nc: nc, nlev: nlev,
		arr:    make([]float64, 2*nc*nlev),
		quant:  make([]float64, 2*nc*nlev),
		slew:   make([]float64, 2*nc),
		inSlew: make([]float64, 2*nc),
		load:   make([]float64, 2*nc),
		moms:   make([]stats.Moments, 2*nc),
		winPin: make([]int32, 2*nc),
		valid:  make([]bool, 2*nc),
	}
}

const ln9 = 2.1972245773362196

// EvalGateInto evaluates one gate under every corner into out — the
// compiled EvalGateBatch. The arithmetic per corner is exactly the legacy
// sequence in the same order (wire transport, PERI slew, LUT moments,
// Table-I quantiles, per-level max with the level-0 winner), so the buffered
// result is bit-identical to the legacy map-based evaluation; only the
// operand loads differ (array indexing instead of map lookups and lazy
// structural resolution). It performs no allocations.
func (g *Graph) EvalGateInto(gi int, states []*FlatState, corners []Corner, sc *EvalScratch, out *GateOut) {
	nc := len(corners)
	nlev := len(g.levels)
	outNet := int(g.outNetOf[gi])
	totalCap := g.totalCap[outNet]
	pinLo, pinHi := int(g.pinOff[gi]), int(g.pinOff[gi+1])
	out.Arcs = 0
	for ei := 0; ei < 2; ei++ { // outEdge: falling, rising (legacy order)
		ie := 1 - ei // input edge = opposite
		for ci := 0; ci < nc; ci++ {
			out.valid[ei*nc+ci] = false
		}
		for p := pinLo; p < pinHi; p++ {
			inNet := int(g.pinNet[p])
			inSlot := inNet*2 + ie
			anyValid := false
			for ci := range states {
				if states[ci].valid[inSlot] {
					anyValid = true
					break
				}
			}
			if !anyValid {
				continue
			}
			rawElmore := g.pinElmore[p]
			xw := g.pinXW[p]
			arc := g.pinArc[p][ie]
			out.Arcs++
			for ci := range corners {
				st := states[ci]
				if !st.valid[inSlot] {
					continue
				}
				c := corners[ci]
				elmore := c.scaled(rawElmore)
				load := c.scaled(totalCap)
				inSlew := st.slew[inSlot]
				pinSlew := math.Sqrt(inSlew*inSlew + (ln9*elmore)*(ln9*elmore))
				moms := arc.MomentsAt(pinSlew, load)
				base := ci * nlev
				arrIn := st.arr[inSlot*nlev : inSlot*nlev+nlev]
				for li, n := range g.levels {
					q := arc.Quant.Quantile(moms, n)
					sc.qs[li] = q
					// Same association as the legacy per-pin step:
					// (arrival + wire transport) + cell quantile.
					sc.cand[li] = (arrIn[li] + (1+float64(n)*xw)*elmore) + q
				}
				oi := ei*nc + ci
				var cand0, best0 float64
				if g.li0 >= 0 {
					cand0 = sc.cand[g.li0]
					best0 = sc.bestArr[base+g.li0]
				}
				if !out.valid[oi] || cand0 > best0 {
					copy(sc.bestArr[base:base+nlev], sc.cand)
					copy(sc.bestQ[base:base+nlev], sc.qs)
					sc.bestArc[ci] = arc
					out.valid[oi] = true
					out.moms[oi] = moms
					out.winPin[oi] = int32(p)
					out.inSlew[oi] = pinSlew
					out.load[oi] = load
				} else {
					for li := 0; li < nlev; li++ {
						if sc.cand[li] > sc.bestArr[base+li] {
							sc.bestArr[base+li] = sc.cand[li]
						}
					}
				}
			}
		}
		for ci := range corners {
			oi := ei*nc + ci
			if !out.valid[oi] {
				continue
			}
			base := ci * nlev
			copy(out.arr[oi*nlev:oi*nlev+nlev], sc.bestArr[base:base+nlev])
			copy(out.quant[oi*nlev:oi*nlev+nlev], sc.bestQ[base:base+nlev])
			out.slew[oi] = sc.bestArc[ci].OutSlew(out.inSlew[oi], out.load[oi])
		}
	}
}

// CommitGate installs a buffered evaluation into the per-corner states.
// Distinct gates write distinct output-net slots, so same-level commits may
// run concurrently from different workers.
func (g *Graph) CommitGate(gi int, states []*FlatState, out *GateOut) {
	outNet := int(g.outNetOf[gi])
	nc := out.nc
	nlev := out.nlev
	for ci, st := range states {
		for ei := 0; ei < 2; ei++ {
			oi := ei*nc + ci
			si := outNet*2 + ei
			st.valid[si] = out.valid[oi]
			if !out.valid[oi] {
				st.winPin[si] = -1
				continue
			}
			st.winPin[si] = out.winPin[oi]
			st.slew[si] = out.slew[oi]
			st.inSlew[si] = out.inSlew[oi]
			st.load[si] = out.load[oi]
			st.moms[si] = out.moms[oi]
			copy(st.arr[si*nlev:si*nlev+nlev], out.arr[oi*nlev:oi*nlev+nlev])
			copy(st.quant[si*nlev:si*nlev+nlev], out.quant[oi*nlev:oi*nlev+nlev])
		}
	}
}

// OutMatches reports whether a buffered evaluation equals the cached state
// of the gate's output net across every corner, under the incremental
// engine's early-termination rule: the winning-arc topology must match
// exactly; at eps 0 every numeric field must be bit-equal; at positive eps
// the arrivals and root slew may drift by up to eps.
func (g *Graph) OutMatches(gi int, states []*FlatState, out *GateOut, eps float64) bool {
	outNet := int(g.outNetOf[gi])
	nc := out.nc
	nlev := out.nlev
	for ci, st := range states {
		for ei := 0; ei < 2; ei++ {
			oi := ei*nc + ci
			si := outNet*2 + ei
			if st.valid[si] != out.valid[oi] {
				return false
			}
			if !out.valid[oi] {
				continue
			}
			if st.winPin[si] != out.winPin[oi] {
				return false
			}
			if eps == 0 {
				if st.slew[si] != out.slew[oi] || st.inSlew[si] != out.inSlew[oi] ||
					st.load[si] != out.load[oi] || st.moms[si] != out.moms[oi] {
					return false
				}
				for li := 0; li < nlev; li++ {
					if st.arr[si*nlev+li] != out.arr[oi*nlev+li] ||
						st.quant[si*nlev+li] != out.quant[oi*nlev+li] {
						return false
					}
				}
				continue
			}
			if math.Abs(st.slew[si]-out.slew[oi]) > eps {
				return false
			}
			for li := 0; li < nlev; li++ {
				if math.Abs(st.arr[si*nlev+li]-out.arr[oi*nlev+li]) > eps {
					return false
				}
			}
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Boundary marshalling: endpoints, results, paths, state maps

// EndpointsForNet transports a primary-output net's root state to each of
// its PO leaves under one corner, in the legacy deterministic order (sink
// index, then falling before rising).
func (g *Graph) EndpointsForNet(po int, st *FlatState, c Corner) []EndpointEntry {
	var entries []EndpointEntry
	for k := int(g.poOff[po]); k < int(g.poOff[po+1]); k++ {
		elmore := c.scaled(g.poElmore[k])
		xw := g.poXW[k]
		for ei := 0; ei < 2; ei++ {
			si := po*2 + ei
			if !st.valid[si] {
				continue
			}
			arr := make(map[int]float64, st.nlev)
			for li, n := range g.levels {
				arr[n] = st.arr[si*st.nlev+li] + (1+float64(n)*xw)*elmore
			}
			e := waveform.Edge(ei == 1)
			entries = append(entries, EndpointEntry{
				Key:  fmt.Sprintf("%s/%s", g.netNames[po], e),
				Edge: e,
				Arr:  arr,
			})
		}
	}
	return entries
}

// ResultFromFlat assembles a Result from flat state and per-net endpoint
// entries: critical-endpoint selection exactly as the legacy ResultFrom
// (primary outputs in declaration order, strict level-0 max), with the
// critical path backtracked through the compiled arrays. GatesTimed is left
// zero for the caller.
func (g *Graph) ResultFromFlat(st *FlatState, c Corner, ep map[string][]EndpointEntry) (*Result, error) {
	res := &Result{EndpointArrivals: make(map[string]map[int]float64)}
	bestMean := math.Inf(-1)
	bestNet := -1
	var bestEdge waveform.Edge
	var bestArr map[int]float64
	for _, po := range g.outputs {
		name := g.netNames[po]
		for _, e := range ep[name] {
			res.Endpoints++
			res.EndpointArrivals[e.Key] = e.Arr
			if e.Arr[0] > bestMean {
				bestMean = e.Arr[0]
				bestNet, bestEdge, bestArr = int(po), e.Edge, e.Arr
			}
		}
	}
	if bestNet < 0 {
		return nil, fmt.Errorf("sta: no timed endpoints")
	}
	res.ArrivalQ = bestArr
	path, err := g.backtrackFlat(st, c, bestNet, bestEdge)
	if err != nil {
		return nil, err
	}
	res.Critical = path
	return res, nil
}

// backtrackFlat reconstructs the worst path ending at a PO net/edge from
// flat state — the compiled Timer.backtrack, producing an identical Path.
func (g *Graph) backtrackFlat(st *FlatState, c Corner, endNet int, endEdge waveform.Edge) (*Path, error) {
	type link struct {
		net  int
		edge waveform.Edge
	}
	var rev []link
	cur := link{net: endNet, edge: endEdge}
	for {
		rev = append(rev, cur)
		if g.drvOf[cur.net] < 0 {
			break // reached a primary input
		}
		si := cur.net*2 + EdgeIdx(cur.edge)
		if !st.valid[si] {
			return nil, fmt.Errorf("sta: backtrack through invalid state at %s", g.netNames[cur.net])
		}
		wp := st.winPin[si]
		cur = link{net: int(g.pinNet[wp]), edge: cur.edge.Opposite()}
	}
	p := &Path{Endpoint: g.netNames[endNet]}
	nlev := st.nlev
	for i := len(rev) - 1; i >= 0; i-- {
		l := rev[i]
		si := l.net*2 + EdgeIdx(l.edge)
		stg := Stage{GateIdx: -1, Net: g.netNames[l.net], Tree: g.treeOf[l.net], SinkLeaf: -1}
		if gi := g.drvOf[l.net]; gi >= 0 {
			wp := st.winPin[si]
			stg.GateIdx = int(gi)
			stg.Cell = g.cellOf[gi]
			stg.InPin = g.pinName[wp]
			stg.InEdge = l.edge.Opposite()
			stg.InSlew = st.inSlew[si]
			stg.Load = st.load[si]
			stg.CellMoments = st.moms[si]
			quant := make(map[int]float64, nlev)
			for li, n := range g.levels {
				quant[n] = st.quant[si*nlev+li]
			}
			stg.CellQ = quant
			stg.OutSlew = st.slew[si]
		} else {
			p.Launch = l.edge
			stg.InEdge = l.edge
			stg.InSlew = g.effInputSlew(l.net, c)
			stg.OutSlew = st.slew[si]
		}
		var rawElmore float64
		if i > 0 {
			next := rev[i-1]
			nsi := next.net*2 + EdgeIdx(next.edge)
			nwp := st.winPin[nsi]
			ngi := g.drvOf[next.net]
			stg.SinkIdx = int(g.pinSinkIdx[nwp])
			stg.SinkLeaf = int(g.pinLeaf[nwp])
			stg.SinkCell = g.cellOf[ngi]
			stg.SinkPin = g.pinName[nwp]
			stg.SinkPinCap = g.pinCap[nwp]
			rawElmore = g.pinElmore[nwp]
			stg.XW = g.pinXW[nwp]
		} else {
			if g.poOff[l.net] == g.poOff[l.net+1] {
				return nil, fmt.Errorf("sta: endpoint %s has no PO leaf", g.netNames[l.net])
			}
			k := int(g.poOff[l.net])
			stg.SinkIdx = int(g.poSinkIdx[k])
			stg.SinkLeaf = int(g.poLeaf[k])
			rawElmore = g.poElmore[k]
			stg.XW = g.poXW[k]
		}
		stg.Elmore = c.scaled(rawElmore)
		stg.LeafSlew = math.Sqrt(stg.OutSlew*stg.OutSlew + (ln9*stg.Elmore)*(ln9*stg.Elmore))
		p.Stages = append(p.Stages, stg)
	}
	return p, nil
}

// TopPathsFlat ranks a result's endpoints (mean arrival descending, then
// endpoint key) and backtracks the worst path of each of the k slowest —
// the compiled TopPathsFrom.
func (g *Graph) TopPathsFlat(st *FlatState, c Corner, res *Result, k int) ([]*Path, error) {
	if k <= 0 {
		return nil, fmt.Errorf("sta: k must be positive")
	}
	type endpoint struct {
		key  string
		arr  float64
		net  string
		edge waveform.Edge
	}
	eps := make([]endpoint, 0, len(res.EndpointArrivals))
	for key, arr := range res.EndpointArrivals {
		i := strings.LastIndexByte(key, '/')
		net := key[:i]
		edge := waveform.Falling
		if key[i+1:] == waveform.Rising.String() {
			edge = waveform.Rising
		}
		eps = append(eps, endpoint{key: key, arr: arr[0], net: net, edge: edge})
	}
	sort.Slice(eps, func(i, j int) bool {
		if eps[i].arr != eps[j].arr {
			return eps[i].arr > eps[j].arr
		}
		return eps[i].key < eps[j].key
	})
	if k > len(eps) {
		k = len(eps)
	}
	paths := make([]*Path, 0, k)
	for _, ep := range eps[:k] {
		id, ok := g.netIDs[ep.net]
		if !ok {
			return nil, fmt.Errorf("sta: unknown endpoint net %s", ep.net)
		}
		p, err := g.backtrackFlat(st, c, id, ep.edge)
		if err != nil {
			return nil, err
		}
		paths = append(paths, p)
	}
	return paths, nil
}

// StateMapOf materialises the name-keyed legacy StateMap view of a flat
// state — the boundary marshalling AnalyzeAllStates preserves for callers
// that backtrack through the legacy API.
func (g *Graph) StateMapOf(st *FlatState) StateMap {
	out := make(StateMap, len(g.netNames))
	nlev := st.nlev
	for net := range g.netNames {
		slot := &[2]NetState{}
		for ei := 0; ei < 2; ei++ {
			si := net*2 + ei
			ns := &slot[ei]
			ns.Valid = st.valid[si]
			if !ns.Valid {
				continue
			}
			ns.Slew = st.slew[si]
			ns.Arr = make(map[int]float64, nlev)
			for li, n := range g.levels {
				ns.Arr[n] = st.arr[si*nlev+li]
			}
			if wp := st.winPin[si]; wp >= 0 {
				ns.InPin = g.pinName[wp]
				ns.InEdge = waveform.Edge(ei == 1).Opposite()
				ns.InSlew = st.inSlew[si]
				ns.Load = st.load[si]
				ns.Moms = st.moms[si]
				ns.WinSinkIdx = int(g.pinSinkIdx[wp])
				ns.Quant = make(map[int]float64, nlev)
				for li, n := range g.levels {
					ns.Quant[n] = st.quant[si*nlev+li]
				}
			}
		}
		out[g.netNames[net]] = slot
	}
	return out
}

// ---------------------------------------------------------------------------
// Copy-on-write refresh (the incremental engine's edit hooks)

// CloneForEdit returns a graph sharing the structural skeleton (ids, CSR
// topology, names, order) with private copies of every derived array an
// edit can touch — cells, arcs, pin caps, X_w, Elmore delays, leaves, trees
// and total caps. Published snapshots referencing the receiver keep a
// frozen consistent view.
func (g *Graph) CloneForEdit() *Graph {
	cp := *g
	cp.cellOf = append([]string(nil), g.cellOf...)
	cp.treeOf = append([]*rctree.Tree(nil), g.treeOf...)
	cp.totalCap = append([]float64(nil), g.totalCap...)
	cp.pinLeaf = append([]int32(nil), g.pinLeaf...)
	cp.pinElmore = append([]float64(nil), g.pinElmore...)
	cp.pinXW = append([]float64(nil), g.pinXW...)
	cp.pinCap = append([]float64(nil), g.pinCap...)
	cp.pinArc = append([][2]*nsigma.ArcModel(nil), g.pinArc...)
	cp.poLeaf = append([]int32(nil), g.poLeaf...)
	cp.poElmore = append([]float64(nil), g.poElmore...)
	cp.poXW = append([]float64(nil), g.poXW...)
	return &cp
}

// SetOptions installs refreshed analysis options (input-slew overrides).
// The sigma levels must be unchanged — they size every state plane.
func (g *Graph) SetOptions(opt Options) error {
	if len(opt.Levels) != len(g.levels) {
		return fmt.Errorf("sta: graph options: levels changed")
	}
	for i, n := range opt.Levels {
		if g.levels[i] != n {
			return fmt.Errorf("sta: graph options: levels changed")
		}
	}
	g.opt = opt
	return nil
}

// SetGateCell refreshes every derived operand that depends on a gate's
// cell: its fanin arcs, pin caps and wire variability (the gate is the
// load), and the wire variability of its output net's sinks and PO pads
// (the gate is the driver). The caller has already validated the cell
// (arcs and wire coverage exist).
func (g *Graph) SetGateCell(gi int, cell string) error {
	g.cellOf[gi] = cell
	for p := int(g.pinOff[gi]); p < int(g.pinOff[gi+1]); p++ {
		for _, e := range []waveform.Edge{waveform.Falling, waveform.Rising} {
			arc, err := g.lib.Arc(cell, g.pinName[p], e)
			if err != nil {
				return err
			}
			g.pinArc[p][EdgeIdx(e)] = arc
		}
		pc, err := g.lib.PinCap(cell, g.pinName[p])
		if err != nil {
			return err
		}
		g.pinCap[p] = pc
		if err := g.refreshPinXW(p, gi); err != nil {
			return err
		}
	}
	// The gate drives its output net: refresh X_w toward every sink.
	outNet := int(g.outNetOf[gi])
	return g.refreshNetXW(outNet)
}

// refreshPinXW recomputes the wire variability of pin entry p (input net →
// gate gi).
func (g *Graph) refreshPinXW(p, gi int) error {
	if g.lib.Wire == nil {
		g.pinXW[p] = 0
		return nil
	}
	driver := g.opt.InputDriver
	if di := g.drvOf[g.pinNet[p]]; di >= 0 {
		driver = g.cellOf[di]
	}
	xw, err := g.lib.Wire.XW(driver, g.cellOf[gi])
	if err != nil {
		return err
	}
	g.pinXW[p] = xw
	return nil
}

// refreshNetXW recomputes the wire variability of every sink pin and PO
// pad of a net (used when the net's driver cell changes).
func (g *Graph) refreshNetXW(net int) error {
	if g.lib.Wire == nil {
		return nil
	}
	driver := g.opt.InputDriver
	if di := g.drvOf[net]; di >= 0 {
		driver = g.cellOf[di]
	}
	for k := int(g.fanOff[net]); k < int(g.fanOff[net+1]); k++ {
		sg := g.fanGate[k]
		if sg < 0 {
			continue
		}
		xw, err := g.lib.Wire.XW(driver, g.cellOf[sg])
		if err != nil {
			return err
		}
		// Refresh every pin of the sink gate that reads this net: a gate can
		// read one net on several pins, and each pin entry carries its own
		// copy of the (identical) wire variability.
		found := false
		for p := int(g.pinOff[sg]); p < int(g.pinOff[sg+1]); p++ {
			if int(g.pinNet[p]) == net {
				g.pinXW[p] = xw
				found = true
			}
		}
		if !found {
			return fmt.Errorf("sta: graph: net %s has no pin entry on gate %d", g.netNames[net], sg)
		}
	}
	for k := int(g.poOff[net]); k < int(g.poOff[net+1]); k++ {
		xw, err := g.lib.Wire.XW(driver, g.opt.POLoadCell)
		if err != nil {
			return err
		}
		g.poXW[k] = xw
	}
	return nil
}

// SetNetTree re-binds a net to a new parasitic tree, refreshing the total
// cap and every sink leaf/Elmore operand. The tree must carry the
// extractor's pin leaves (validated by the caller).
func (g *Graph) SetNetTree(net int, tree *rctree.Tree) error {
	g.treeOf[net] = tree
	g.totalCap[net] = tree.TotalCap()
	for k := int(g.fanOff[net]); k < int(g.fanOff[net+1]); k++ {
		sg := g.fanGate[k]
		if sg < 0 {
			continue
		}
		// Re-resolve every pin of the sink gate that reads this net (a gate
		// can read one net on several pins; each pin has its own leaf).
		for p := int(g.pinOff[sg]); p < int(g.pinOff[sg+1]); p++ {
			if int(g.pinNet[p]) != net {
				continue
			}
			name := fmt.Sprintf("pin:%s:%s", g.gateNames[sg], g.pinName[p])
			leaf := tree.NodeIndex(name)
			if leaf < 0 {
				return fmt.Errorf("sta: tree %s has no leaf %q", g.netNames[net], name)
			}
			g.pinLeaf[p] = int32(leaf)
			g.pinElmore[p] = tree.Elmore(leaf)
		}
	}
	poIdx := int(g.poOff[net])
	for k := int(g.fanOff[net]); k < int(g.fanOff[net+1]); k++ {
		if g.fanGate[k] >= 0 {
			continue
		}
		si := k - int(g.fanOff[net])
		name := fmt.Sprintf("pin:PO%d", si)
		leaf := tree.NodeIndex(name)
		if leaf < 0 {
			return fmt.Errorf("sta: tree %s has no PO leaf %q", g.netNames[net], name)
		}
		g.poSinkIdx[poIdx] = int32(si)
		g.poLeaf[poIdx] = int32(leaf)
		g.poElmore[poIdx] = tree.Elmore(leaf)
		poIdx++
	}
	return nil
}

// Tree returns the parasitic tree of a net (nil for treeless nets).
func (g *Graph) Tree(net int) *rctree.Tree { return g.treeOf[net] }

// CellOf returns the current cell of a gate.
func (g *Graph) CellOf(gi int) string { return g.cellOf[gi] }
