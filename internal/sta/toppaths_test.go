package sta

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/netlist"
)

// fanout2 builds a design with two endpoints of different depth:
//
//	in → U1(INV) → m → U2(INV) → o1 (PO)
//	               m → U3(INV) → p → U4(INV) → o2 (PO)
//
// so o2 (three cell stages) is strictly slower than o1 (two).
func fanout2() *netlist.Netlist {
	return &netlist.Netlist{
		Name:    "fanout2",
		Inputs:  []string{"in"},
		Outputs: []string{"o1", "o2"},
		Gates: []netlist.Gate{
			{Name: "U1", Cell: "INVx1", Pins: map[string]string{"A": "in", "Y": "m"}},
			{Name: "U2", Cell: "INVx1", Pins: map[string]string{"A": "m", "Y": "o1"}},
			{Name: "U3", Cell: "INVx1", Pins: map[string]string{"A": "m", "Y": "p"}},
			{Name: "U4", Cell: "INVx1", Pins: map[string]string{"A": "p", "Y": "o2"}},
		},
	}
}

func newFanout2Timer(t *testing.T) *Timer {
	t.Helper()
	lib := synthLib()
	nl := fanout2()
	timer, err := NewTimer(lib, nl, flatTrees(nl, lib), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return timer
}

func TestTopPathsOrdering(t *testing.T) {
	timer := newFanout2Timer(t)
	res, paths, err := timer.AnalyzeTopPaths(4)
	if err != nil {
		t.Fatal(err)
	}
	// 2 PO nets × 2 edges = 4 endpoints, each contributing one path.
	if len(paths) != 4 {
		t.Fatalf("got %d paths, want 4", len(paths))
	}
	// The first path must be the critical path of Analyze.
	if paths[0].Endpoint != res.Critical.Endpoint || paths[0].Launch != res.Critical.Launch {
		t.Fatalf("paths[0] endpoint %s/%s, critical %s/%s",
			paths[0].Endpoint, paths[0].Launch, res.Critical.Endpoint, res.Critical.Launch)
	}
	// Mean arrivals must be non-increasing across the ranking.
	key := func(p *Path) string { return fmt.Sprintf("%s/%s", p.Endpoint, p.Stages[len(p.Stages)-1].InEdge) }
	for i := 1; i < len(paths); i++ {
		a := res.EndpointArrivals[endpointKeyOf(t, res, paths[i-1])][0]
		b := res.EndpointArrivals[endpointKeyOf(t, res, paths[i])][0]
		if b > a {
			t.Fatalf("path %d (%s) arrival %g above path %d (%s) arrival %g",
				i, key(paths[i]), b, i-1, key(paths[i-1]), a)
		}
	}
	// The two deep o2 paths must rank above the two shallow o1 paths.
	if paths[0].Endpoint != "o2" || paths[1].Endpoint != "o2" {
		t.Fatalf("deep endpoint o2 not ranked first: %s, %s", paths[0].Endpoint, paths[1].Endpoint)
	}
	if paths[2].Endpoint != "o1" || paths[3].Endpoint != "o1" {
		t.Fatalf("shallow endpoint o1 not ranked last: %s, %s", paths[2].Endpoint, paths[3].Endpoint)
	}
}

// endpointKeyOf reconstructs the EndpointArrivals key of a path's endpoint,
// verifying it exists in the result.
func endpointKeyOf(t *testing.T, res *Result, p *Path) string {
	t.Helper()
	last := p.Stages[len(p.Stages)-1]
	// The endpoint edge is the output edge of the last gate (opposite of
	// its input edge), or the launch edge for a wire-only path.
	edge := p.Launch
	if last.Cell != "" {
		edge = last.InEdge.Opposite()
	}
	key := fmt.Sprintf("%s/%s", p.Endpoint, edge)
	if _, ok := res.EndpointArrivals[key]; !ok {
		t.Fatalf("endpoint key %q not in result", key)
	}
	return key
}

func TestTopPathsKLargerThanEndpointCount(t *testing.T) {
	timer := newFanout2Timer(t)
	_, paths, err := timer.AnalyzeTopPaths(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 4 {
		t.Fatalf("k=100 returned %d paths, want all 4 endpoints", len(paths))
	}
}

func TestTopPathsRejectsNonPositiveK(t *testing.T) {
	timer := newFanout2Timer(t)
	for _, k := range []int{0, -3} {
		if _, _, err := timer.AnalyzeTopPaths(k); err == nil {
			t.Fatalf("k=%d accepted", k)
		}
	}
}

// TestTopPathsTieBreakDeterminism times a design whose two endpoints are
// exactly symmetric (identical arrivals): the ranking must fall back to the
// endpoint key and be identical across repeated runs.
func TestTopPathsTieBreakDeterminism(t *testing.T) {
	lib := synthLib()
	nl := &netlist.Netlist{
		Name:    "tie",
		Inputs:  []string{"in"},
		Outputs: []string{"oa", "ob"},
		Gates: []netlist.Gate{
			{Name: "U1", Cell: "INVx1", Pins: map[string]string{"A": "in", "Y": "oa"}},
			{Name: "U2", Cell: "INVx1", Pins: map[string]string{"A": "in", "Y": "ob"}},
		},
	}
	var first []string
	for run := 0; run < 5; run++ {
		timer, err := NewTimer(lib, nl, flatTrees(nl, lib), Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, paths, err := timer.AnalyzeTopPaths(4)
		if err != nil {
			t.Fatal(err)
		}
		keys := make([]string, len(paths))
		for i, p := range paths {
			keys[i] = endpointKeyOf(t, res, p)
		}
		if run == 0 {
			first = keys
			// Ties must resolve by ascending endpoint key.
			for i := 1; i < len(keys); i++ {
				a := res.EndpointArrivals[keys[i-1]][0]
				b := res.EndpointArrivals[keys[i]][0]
				if a == b && keys[i-1] >= keys[i] {
					t.Fatalf("tied endpoints out of key order: %q before %q", keys[i-1], keys[i])
				}
			}
			continue
		}
		if !reflect.DeepEqual(first, keys) {
			t.Fatalf("run %d ranking %v differs from first run %v", run, keys, first)
		}
	}
}
