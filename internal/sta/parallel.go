package sta

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/resilience"
)

// This file is the wavefront scheduler — the one propagation engine behind
// every analysis. The levelized netlist is evaluated level by level: gates
// within a level have no data dependencies (a gate's level is one past its
// deepest fanin driver, so same-level gates never read each other's
// outputs), which makes each level an embarrassingly parallel wavefront.
// Workers buffer their per-gate outputs; after a per-level join a single
// goroutine commits them in slice-index order. Because every gate's
// arithmetic is self-contained (no cross-gate floating-point accumulation),
// the committed values are bit-identical at any worker count — parallelism
// changes only the wall-clock, never a single bit of the result.

// AnalyzeAll times the design under every corner of the set in one
// levelized traversal, optionally spreading each wavefront level across a
// bounded worker pool. results[i] belongs to opts.Corners.Corners[i] (one
// neutral/timer-corner result when the set is empty). Results are
// bit-identical to running each corner through a sequential Analyze, at any
// Parallelism.
func (t *Timer) AnalyzeAll(ctx context.Context, opts AnalyzeOptions) ([]*Result, error) {
	results, _, err := t.analyzeCorners(ctx, opts)
	return results, err
}

// AnalyzeAllStates is AnalyzeAll also returning the per-corner propagated
// states, for callers that backtrack further paths (top-k reporting,
// incremental snapshots).
func (t *Timer) AnalyzeAllStates(ctx context.Context, opts AnalyzeOptions) ([]*Result, []StateMap, error) {
	return t.analyzeCorners(ctx, opts)
}

// analyzeCorners is the wavefront engine proper.
func (t *Timer) analyzeCorners(ctx context.Context, opts AnalyzeOptions) ([]*Result, []StateMap, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	t0 := time.Now()
	if err := opts.Corners.validate(); err != nil {
		return nil, nil, err
	}
	// The evaluation timer: the receiver, with the set's Levels override
	// applied when present.
	et := t
	if len(opts.Corners.Levels) > 0 {
		o := t.opt
		o.Levels = opts.Corners.Levels
		var err error
		et, err = t.WithOptions(o)
		if err != nil {
			return nil, nil, err
		}
	}
	corners := []Corner{t.corner}
	if len(opts.Corners.Corners) > 0 {
		corners = opts.Corners.Corners
	}
	timers := make([]*Timer, len(corners))
	for ci, c := range corners {
		tc, err := et.WithCorner(c)
		if err != nil {
			return nil, nil, err
		}
		timers[ci] = tc
	}
	par := opts.Parallelism
	if par < 1 {
		par = 1
	}
	order, err := t.nl.Levelize()
	if err != nil {
		return nil, nil, err
	}
	groups := t.levelGroups(order)
	ctx, span := obs.StartSpan(ctx, "sta_analyze",
		obs.A("gates", len(order)), obs.A("corners", len(corners)),
		obs.A("parallelism", par))
	defer span.End()

	// Pre-seed every net the propagation touches, so worker goroutines only
	// ever read existing StateMap entries — a lazy At() insertion from a
	// worker would be a concurrent map write. Primary inputs get their
	// corner-specific boundary state; gate outputs get invalid placeholders
	// the per-level commits fill in.
	states := make([]StateMap, len(corners))
	for ci, tc := range timers {
		state := make(StateMap, t.nl.NumNets())
		for _, in := range t.nl.Inputs {
			*state.At(in) = tc.InputState(in)
		}
		for gi := range t.nl.Gates {
			state.At(t.nl.Gates[gi].Output())
		}
		states[ci] = state
	}

	type gateOut struct {
		outs [][2]NetState
		arcs int
	}
	gatesTimed := 0
	// Cancellation granularity: every 64 gates (and before the first), per
	// evaluating goroutine. Gate evaluation is cheap LUT lookups, so this
	// bounds cancel latency without a branch-heavy hot loop.
	checkEvery := 1
	for lvl, grp := range groups {
		if len(grp) == 0 {
			continue
		}
		workers := par
		if workers > len(grp) {
			workers = len(grp)
		}
		lctx, lspan := obs.StartSpan(ctx, "sta_level",
			obs.A("level", lvl), obs.A("gates", len(grp)), obs.A("workers", workers))
		hLevelParallelism.Observe(float64(workers))
		buf := make([]gateOut, len(grp))
		var lerr error
		if workers == 1 {
			for i, gi := range grp {
				checkEvery--
				if checkEvery <= 0 {
					checkEvery = 64
					if err := lctx.Err(); err != nil {
						lerr = resilience.Wrap("sta: analyze", err)
						break
					}
				}
				outs, arcs, err := et.EvalGateBatch(gi, states, corners)
				if err != nil {
					lerr = err
					break
				}
				buf[i] = gateOut{outs: outs, arcs: arcs}
			}
		} else {
			errs := make([]error, len(grp))
			var next atomic.Int64
			var stop atomic.Bool
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					gWorkersBusy.Add(1)
					defer gWorkersBusy.Add(-1)
					countdown := 1
					for {
						i := int(next.Add(1)) - 1
						if i >= len(grp) || stop.Load() {
							return
						}
						countdown--
						if countdown <= 0 {
							countdown = 64
							if err := lctx.Err(); err != nil {
								errs[i] = resilience.Wrap("sta: analyze", err)
								stop.Store(true)
								return
							}
						}
						outs, arcs, err := et.EvalGateBatch(grp[i], states, corners)
						if err != nil {
							errs[i] = err
							stop.Store(true)
							return
						}
						buf[i] = gateOut{outs: outs, arcs: arcs}
					}
				}()
			}
			wg.Wait()
			// Lowest-index error wins, so the reported failure does not
			// depend on goroutine scheduling.
			for _, err := range errs {
				if err != nil {
					lerr = err
					break
				}
			}
		}
		lspan.End()
		if lerr != nil {
			return nil, nil, lerr
		}
		// Deterministic reduction: commit the buffered outputs in slice
		// order on this goroutine. Same-level gates never read each other's
		// outputs, so ordering cannot change any value — it pins the write
		// sequence so the whole analysis is one deterministic trace.
		for i, gi := range grp {
			outNet := t.nl.Gates[gi].Output()
			for ci := range states {
				*states[ci].At(outNet) = buf[i].outs[ci]
			}
			gatesTimed += buf[i].arcs
		}
	}

	// Endpoints and per-corner results.
	results := make([]*Result, len(corners))
	for ci, tc := range timers {
		ep := make(map[string][]EndpointEntry, len(t.nl.Outputs))
		for _, po := range t.nl.Outputs {
			if _, done := ep[po]; done {
				continue
			}
			entries, err := tc.EndpointsForNet(po, states[ci])
			if err != nil {
				return nil, nil, err
			}
			ep[po] = entries
		}
		res, err := tc.ResultFrom(states[ci], ep)
		if err != nil {
			return nil, nil, err
		}
		res.GatesTimed = gatesTimed
		results[ci] = res
	}
	mAnalyses.Inc()
	mGatesEvaluated.Add(uint64(gatesTimed))
	mCornerGateEvals.Add(uint64(gatesTimed * len(corners)))
	if len(corners) > 1 {
		mCornerBatches.Inc()
	}
	hAnalyzeSeconds.ObserveSince(t0)
	return results, states, nil
}
