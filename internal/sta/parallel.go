package sta

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/resilience"
)

// This file is the wavefront scheduler — the one propagation engine behind
// every analysis. The levelized netlist is evaluated level by level: gates
// within a level have no data dependencies (a gate's level is one past its
// deepest fanin driver, so same-level gates never read each other's
// outputs), which makes each level an embarrassingly parallel wavefront.
//
// The engine runs on the compiled graph (compile.go): one Compile lowers
// the design into flat arrays, then each level is a linear scan of
// EvalGateInto calls over per-worker scratch buffers, committed straight
// into the per-corner float64 planes. Distinct gates drive distinct output
// nets, so same-level workers write disjoint plane slots and need no
// buffered reduction; and because every gate's arithmetic is self-contained
// (no cross-gate floating-point accumulation), the committed values are
// bit-identical at any worker count — parallelism changes only the
// wall-clock, never a single bit of the result. The pre-compiled legacy
// engine is retained below (analyzeCornersLegacy) as the reference
// implementation the equivalence suite pins the compiled path against.

// AnalyzeAll times the design under every corner of the set in one
// levelized traversal, optionally spreading each wavefront level across a
// bounded worker pool. results[i] belongs to opts.Corners.Corners[i] (one
// neutral/timer-corner result when the set is empty). Results are
// bit-identical to running each corner through a sequential Analyze, at any
// Parallelism.
func (t *Timer) AnalyzeAll(ctx context.Context, opts AnalyzeOptions) ([]*Result, error) {
	_, _, results, err := t.analyzeCornersFlat(ctx, opts)
	return results, err
}

// AnalyzeAllStates is AnalyzeAll also returning the per-corner propagated
// states, for callers that backtrack further paths (top-k reporting,
// incremental snapshots). The name-keyed maps are materialised from the
// flat planes at this boundary.
func (t *Timer) AnalyzeAllStates(ctx context.Context, opts AnalyzeOptions) ([]*Result, []StateMap, error) {
	return t.analyzeCorners(ctx, opts)
}

// AnalyzeAllFlat is AnalyzeAll returning the compiled graph and the flat
// per-corner states — the allocation-free surface the incremental engine
// and flat-state queries build on.
func (t *Timer) AnalyzeAllFlat(ctx context.Context, opts AnalyzeOptions) (*Graph, []*FlatState, []*Result, error) {
	return t.analyzeCornersFlat(ctx, opts)
}

// analyzeCorners drives the compiled engine and marshals the flat states
// back into the legacy name-keyed StateMaps.
func (t *Timer) analyzeCorners(ctx context.Context, opts AnalyzeOptions) ([]*Result, []StateMap, error) {
	g, flat, results, err := t.analyzeCornersFlat(ctx, opts)
	if err != nil {
		return nil, nil, err
	}
	states := make([]StateMap, len(flat))
	for ci, st := range flat {
		states[ci] = g.StateMapOf(st)
	}
	return results, states, nil
}

// analyzeCornersFlat is the compiled wavefront engine proper.
func (t *Timer) analyzeCornersFlat(ctx context.Context, opts AnalyzeOptions) (*Graph, []*FlatState, []*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	t0 := time.Now()
	if err := opts.Corners.validate(); err != nil {
		return nil, nil, nil, err
	}
	// The evaluation timer: the receiver, with the set's Levels override
	// applied when present.
	et := t
	if len(opts.Corners.Levels) > 0 {
		o := t.opt
		o.Levels = opts.Corners.Levels
		var err error
		et, err = t.WithOptions(o)
		if err != nil {
			return nil, nil, nil, err
		}
	}
	corners := []Corner{t.corner}
	if len(opts.Corners.Corners) > 0 {
		corners = opts.Corners.Corners
	}
	g, err := et.Compiled()
	if err != nil {
		return nil, nil, nil, err
	}
	par := opts.Parallelism
	if par < 1 {
		par = 1
	}
	ctx, span := obs.StartSpan(ctx, "sta_analyze",
		obs.A("gates", g.NumGates()), obs.A("corners", len(corners)),
		obs.A("parallelism", par))
	defer span.End()

	states := make([]*FlatState, len(corners))
	for ci, c := range corners {
		states[ci] = g.NewState()
		g.InitPI(states[ci], c)
	}
	gatesTimed, err := g.Propagate(ctx, states, corners, par)
	if err != nil {
		return nil, nil, nil, err
	}

	// Endpoints and per-corner results.
	results := make([]*Result, len(corners))
	for ci, c := range corners {
		ep := make(map[string][]EndpointEntry, len(g.outputs))
		for _, po := range g.outputs {
			name := g.netNames[po]
			if _, done := ep[name]; done {
				continue
			}
			ep[name] = g.EndpointsForNet(int(po), states[ci], c)
		}
		res, err := g.ResultFromFlat(states[ci], c, ep)
		if err != nil {
			return nil, nil, nil, err
		}
		res.GatesTimed = gatesTimed
		results[ci] = res
	}
	mAnalyses.Inc()
	mGatesEvaluated.Add(uint64(gatesTimed))
	mCornerGateEvals.Add(uint64(gatesTimed * len(corners)))
	if len(corners) > 1 {
		mCornerBatches.Inc()
	}
	hAnalyzeSeconds.ObserveSince(t0)
	return g, states, results, nil
}

// Propagate sweeps the levelized order, evaluating every gate under every
// corner into the flat states with up to par workers per level. The
// steady-state loop performs no allocations: workers reuse one scratch and
// one output buffer each and commit straight into the per-corner planes
// (distinct gates → disjoint output-net slots). Returns the structural
// cell-arc count (Result.GatesTimed).
func (g *Graph) Propagate(ctx context.Context, states []*FlatState, corners []Corner, par int) (int, error) {
	nc := len(corners)
	workers := par
	if workers < 1 {
		workers = 1
	}
	scratch := make([]*EvalScratch, workers)
	outBuf := make([]*GateOut, workers)
	for w := 0; w < workers; w++ {
		scratch[w] = g.NewScratch(nc)
		outBuf[w] = g.NewGateOut(nc)
	}
	gatesTimed := 0
	// Cancellation granularity: every 64 gates (and before the first), per
	// evaluating goroutine. Gate evaluation is cheap LUT lookups, so this
	// bounds cancel latency without a branch-heavy hot loop.
	checkEvery := 1
	nLevels := len(g.levOff) - 1
	for lvl := 0; lvl < nLevels; lvl++ {
		grp := g.order[g.levOff[lvl]:g.levOff[lvl+1]]
		if len(grp) == 0 {
			continue
		}
		lw := workers
		if lw > len(grp) {
			lw = len(grp)
		}
		lctx, lspan := obs.StartSpan(ctx, "sta_level",
			obs.A("level", lvl), obs.A("gates", len(grp)), obs.A("workers", lw))
		hLevelParallelism.Observe(float64(lw))
		var lerr error
		if lw == 1 {
			sc, out := scratch[0], outBuf[0]
			for _, gi := range grp {
				checkEvery--
				if checkEvery <= 0 {
					checkEvery = 64
					if err := lctx.Err(); err != nil {
						lerr = resilience.Wrap("sta: analyze", err)
						break
					}
				}
				g.EvalGateInto(int(gi), states, corners, sc, out)
				g.CommitGate(int(gi), states, out)
				gatesTimed += out.Arcs
			}
		} else {
			errs := make([]error, lw)
			arcs := make([]int, lw)
			var next atomic.Int64
			var stop atomic.Bool
			var wg sync.WaitGroup
			for w := 0; w < lw; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					gWorkersBusy.Add(1)
					defer gWorkersBusy.Add(-1)
					sc, out := scratch[w], outBuf[w]
					countdown := 1
					for {
						i := int(next.Add(1)) - 1
						if i >= len(grp) || stop.Load() {
							return
						}
						countdown--
						if countdown <= 0 {
							countdown = 64
							if err := lctx.Err(); err != nil {
								errs[w] = resilience.Wrap("sta: analyze", err)
								stop.Store(true)
								return
							}
						}
						gi := int(grp[i])
						// Direct commit: this gate's output-net slots are
						// written by no other worker this level, and the
						// post-level wg.Wait orders the writes before any
						// next-level read.
						g.EvalGateInto(gi, states, corners, sc, out)
						g.CommitGate(gi, states, out)
						arcs[w] += out.Arcs
					}
				}(w)
			}
			wg.Wait()
			for w := 0; w < lw; w++ {
				if errs[w] != nil && lerr == nil {
					lerr = errs[w]
				}
				gatesTimed += arcs[w]
			}
		}
		lspan.End()
		if lerr != nil {
			return 0, lerr
		}
	}
	return gatesTimed, nil
}

// analyzeCornersLegacy is the pre-compiled wavefront engine over the
// name-keyed StateMaps — retained verbatim as the reference implementation:
// the equivalence suite requires the compiled engine above to reproduce its
// results bit for bit on every circuit, corner set and worker count.
func (t *Timer) analyzeCornersLegacy(ctx context.Context, opts AnalyzeOptions) ([]*Result, []StateMap, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := opts.Corners.validate(); err != nil {
		return nil, nil, err
	}
	et := t
	if len(opts.Corners.Levels) > 0 {
		o := t.opt
		o.Levels = opts.Corners.Levels
		var err error
		et, err = t.WithOptions(o)
		if err != nil {
			return nil, nil, err
		}
	}
	corners := []Corner{t.corner}
	if len(opts.Corners.Corners) > 0 {
		corners = opts.Corners.Corners
	}
	timers := make([]*Timer, len(corners))
	for ci, c := range corners {
		tc, err := et.WithCorner(c)
		if err != nil {
			return nil, nil, err
		}
		timers[ci] = tc
	}
	par := opts.Parallelism
	if par < 1 {
		par = 1
	}
	order, err := t.nl.Levelize()
	if err != nil {
		return nil, nil, err
	}
	groups := t.levelGroups(order)

	// Pre-seed every net the propagation touches, so worker goroutines only
	// ever read existing StateMap entries — a lazy At() insertion from a
	// worker would be a concurrent map write. Primary inputs get their
	// corner-specific boundary state; gate outputs get invalid placeholders
	// the per-level commits fill in.
	states := make([]StateMap, len(corners))
	for ci, tc := range timers {
		state := make(StateMap, t.nl.NumNets())
		for _, in := range t.nl.Inputs {
			*state.At(in) = tc.InputState(in)
		}
		for gi := range t.nl.Gates {
			state.At(t.nl.Gates[gi].Output())
		}
		states[ci] = state
	}

	type gateOut struct {
		outs [][2]NetState
		arcs int
	}
	gatesTimed := 0
	checkEvery := 1
	for _, grp := range groups {
		if len(grp) == 0 {
			continue
		}
		workers := par
		if workers > len(grp) {
			workers = len(grp)
		}
		buf := make([]gateOut, len(grp))
		var lerr error
		if workers == 1 {
			for i, gi := range grp {
				checkEvery--
				if checkEvery <= 0 {
					checkEvery = 64
					if err := ctx.Err(); err != nil {
						lerr = resilience.Wrap("sta: analyze", err)
						break
					}
				}
				outs, arcs, err := et.EvalGateBatch(gi, states, corners)
				if err != nil {
					lerr = err
					break
				}
				buf[i] = gateOut{outs: outs, arcs: arcs}
			}
		} else {
			errs := make([]error, len(grp))
			var next atomic.Int64
			var stop atomic.Bool
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					countdown := 1
					for {
						i := int(next.Add(1)) - 1
						if i >= len(grp) || stop.Load() {
							return
						}
						countdown--
						if countdown <= 0 {
							countdown = 64
							if err := ctx.Err(); err != nil {
								errs[i] = resilience.Wrap("sta: analyze", err)
								stop.Store(true)
								return
							}
						}
						outs, arcs, err := et.EvalGateBatch(grp[i], states, corners)
						if err != nil {
							errs[i] = err
							stop.Store(true)
							return
						}
						buf[i] = gateOut{outs: outs, arcs: arcs}
					}
				}()
			}
			wg.Wait()
			// Lowest-index error wins, so the reported failure does not
			// depend on goroutine scheduling.
			for _, err := range errs {
				if err != nil {
					lerr = err
					break
				}
			}
		}
		if lerr != nil {
			return nil, nil, lerr
		}
		// Deterministic reduction: commit the buffered outputs in slice
		// order on this goroutine.
		for i, gi := range grp {
			outNet := t.nl.Gates[gi].Output()
			for ci := range states {
				*states[ci].At(outNet) = buf[i].outs[ci]
			}
			gatesTimed += buf[i].arcs
		}
	}

	// Endpoints and per-corner results.
	results := make([]*Result, len(corners))
	for ci, tc := range timers {
		ep := make(map[string][]EndpointEntry, len(t.nl.Outputs))
		for _, po := range t.nl.Outputs {
			if _, done := ep[po]; done {
				continue
			}
			entries, err := tc.EndpointsForNet(po, states[ci])
			if err != nil {
				return nil, nil, err
			}
			ep[po] = entries
		}
		res, err := tc.ResultFrom(states[ci], ep)
		if err != nil {
			return nil, nil, err
		}
		res.GatesTimed = gatesTimed
		results[ci] = res
	}
	return results, states, nil
}
