package sta

import (
	"math"
	"testing"
)

func analyzedResult(t *testing.T) *Result {
	t.Helper()
	timer, _, _ := newTestTimer(t)
	res, err := timer.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSlackMetEverywhere(t *testing.T) {
	res := analyzedResult(t)
	rep, err := res.Slack(1e-9, 3) // 1 ns period is generous here
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations != 0 || rep.TNS != 0 {
		t.Fatalf("violations at a loose period: %+v", rep)
	}
	if rep.WNS <= 0 {
		t.Fatalf("WNS %v should be positive", rep.WNS)
	}
	if rep.Endpoints != res.Endpoints {
		t.Fatalf("endpoint count mismatch: %d vs %d", rep.Endpoints, res.Endpoints)
	}
}

func TestSlackViolations(t *testing.T) {
	res := analyzedResult(t)
	rep, err := res.Slack(1e-12, 3) // 1 ps period fails everywhere
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations != rep.Endpoints {
		t.Fatalf("expected all endpoints violated: %+v", rep)
	}
	if rep.TNS >= 0 || rep.WNS >= 0 {
		t.Fatalf("negative-slack bookkeeping wrong: %+v", rep)
	}
	if rep.Worst == "" {
		t.Fatal("worst endpoint not recorded")
	}
}

func TestMinPeriodConsistency(t *testing.T) {
	res := analyzedResult(t)
	for _, level := range []int{-3, 0, 3} {
		p, err := res.MinPeriod(level)
		if err != nil {
			t.Fatal(err)
		}
		if p <= 0 {
			t.Fatalf("min period %v at %+dσ", p, level)
		}
		// At exactly the min period the worst slack is ~0 and nothing is
		// properly negative.
		rep, err := res.Slack(p, level)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(rep.WNS) > 1e-18 {
			t.Fatalf("WNS %v at the min period", rep.WNS)
		}
	}
	// Higher sigma levels need longer periods.
	p0, _ := res.MinPeriod(0)
	p3, _ := res.MinPeriod(3)
	if p3 <= p0 {
		t.Fatalf("min period at +3σ (%v) not above 0σ (%v)", p3, p0)
	}
}

func TestSlackWithoutArrivals(t *testing.T) {
	empty := &Result{}
	if _, err := empty.Slack(1e-9, 0); err == nil {
		t.Fatal("empty result accepted")
	}
}

func TestAnalyzeTopPaths(t *testing.T) {
	timer, _, _ := newTestTimer(t)
	res, paths, err := timer.AnalyzeTopPaths(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no paths returned")
	}
	// Path 0 must match the critical path of Analyze (same endpoint and
	// mean delay).
	if paths[0].Endpoint != res.Critical.Endpoint {
		t.Fatalf("top path endpoint %s vs critical %s", paths[0].Endpoint, res.Critical.Endpoint)
	}
	// Paths come in non-increasing mean-arrival order.
	prev := paths[0].Quantile(0)
	for _, p := range paths[1:] {
		q := p.Quantile(0)
		if q > prev+1e-20 {
			t.Fatalf("paths out of order: %v after %v", q, prev)
		}
		prev = q
	}
	// k larger than the endpoint count clamps.
	_, all, err := timer.AnalyzeTopPaths(1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != res.Endpoints {
		t.Fatalf("clamped path count %d want %d", len(all), res.Endpoints)
	}
	if _, _, err := timer.AnalyzeTopPaths(0); err == nil {
		t.Fatal("k=0 accepted")
	}
}
