package incsta

import (
	"context"
	"errors"
	"sync"
	"testing"
)

func verifyOK(t *testing.T, eng *Engine) {
	t.Helper()
	if err := eng.VerifyFull(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestInitialStateMatchesFresh(t *testing.T) {
	eng, _ := newTestEngine(t, diamond(), Config{})
	verifyOK(t, eng)
	if got := eng.Snapshot().Version(); got != 1 {
		t.Fatalf("initial snapshot version = %d, want 1", got)
	}
	if st := eng.Stats(); st.FullPasses != 1 || st.Edits != 0 {
		t.Fatalf("initial stats = %+v, want one full pass and no edits", st)
	}
}

func TestResizeReachesFreshState(t *testing.T) {
	eng, _ := newTestEngine(t, diamond(), Config{})
	before := eng.Snapshot().Result().ArrivalQ[0]
	rep, err := eng.ResizeCell("U2", 8)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reevaluated == 0 {
		t.Fatal("resize re-evaluated no gates")
	}
	after := eng.Snapshot().Result().ArrivalQ[0]
	if after == before {
		t.Fatal("resize of a critical-path gate left the critical arrival unchanged")
	}
	verifyOK(t, eng)
}

func TestResizeUpdatesTreeLeafCaps(t *testing.T) {
	eng, lib := newTestEngine(t, diamond(), Config{})
	if _, err := eng.ResizeCell("U2", 8); err != nil {
		t.Fatal(err)
	}
	_, trees := eng.CopyDesign()
	tr := trees["m"]
	leaf := tr.NodeIndex("pin:U2:A")
	if leaf < 0 {
		t.Fatal("tree m lost the U2:A leaf")
	}
	pc, err := lib.PinCap("INVx8", "A")
	if err != nil {
		t.Fatal(err)
	}
	want := 0.3e-15 + pc
	if got := tr.Nodes[leaf].C; got != want {
		t.Fatalf("leaf cap after resize = %g, want %g", got, want)
	}
}

func TestResizeRepropagatesOnlyTheCone(t *testing.T) {
	eng, _ := newTestEngine(t, chain(30), Config{})
	rep, err := eng.ResizeCell("U15", 4)
	if err != nil {
		t.Fatal(err)
	}
	// Resizing U15 dirties its fanin net (load of U14) and its own cone; the
	// first 13 gates of the chain must stay cached.
	if rep.Reevaluated >= 30 {
		t.Fatalf("resize re-evaluated %d of 30 gates — no incremental saving", rep.Reevaluated)
	}
	if st := eng.Stats(); st.CacheHitRatio() <= 0 {
		t.Fatalf("cache hit ratio = %g after a mid-chain resize, want > 0", st.CacheHitRatio())
	}
	verifyOK(t, eng)
}

func TestNoOpResizePublishesWithoutWork(t *testing.T) {
	eng, _ := newTestEngine(t, diamond(), Config{})
	v := eng.Snapshot().Version()
	rep, err := eng.ResizeCell("U1", 1) // already INVx1
	if err != nil {
		t.Fatal(err)
	}
	if rep.Seeded != 0 || rep.Reevaluated != 0 {
		t.Fatalf("no-op resize did work: %+v", rep)
	}
	if got := eng.Snapshot().Version(); got != v+1 {
		t.Fatalf("no-op resize version %d, want %d", got, v+1)
	}
	if st := eng.Stats(); st.Edits != 1 {
		t.Fatalf("no-op resize not counted: %+v", st)
	}
}

func TestSwapToWiderCellAccepted(t *testing.T) {
	// NAND2's pins {A,B} are a subset of AOI2's {A,B,C}: the swap is legal
	// and must still agree with a fresh analysis of the edited design.
	eng, _ := newTestEngine(t, diamond(), Config{})
	if _, err := eng.SwapCell("U3", "AOI2x2"); err != nil {
		t.Fatal(err)
	}
	verifyOK(t, eng)
}

func TestEditRejectionsAreTypedAndLeaveStateIntact(t *testing.T) {
	eng, _ := newTestEngine(t, diamond(), Config{})
	v := eng.Snapshot().Version()
	cases := []struct {
		name string
		run  func() error
	}{
		{"unknown gate", func() error { _, err := eng.ResizeCell("UX", 2); return err }},
		{"bad strength", func() error { _, err := eng.ResizeCell("U1", -1); return err }},
		{"unknown cell", func() error { _, err := eng.SwapCell("U1", "BUFx1"); return err }},
		{"missing pin", func() error { _, err := eng.SwapCell("U3", "INVx1"); return err }},
		{"non-input slew", func() error { _, err := eng.SetInputSlew("m", 10e-12); return err }},
		{"negative slew", func() error { _, err := eng.SetInputSlew("in", -1); return err }},
		{"unknown net", func() error { _, err := eng.SetNetParasitics("zz", nil); return err }},
		{"nil tree", func() error { _, err := eng.SetNetParasitics("m", nil); return err }},
	}
	for _, tc := range cases {
		err := tc.run()
		var ee *EditError
		if !errors.As(err, &ee) {
			t.Fatalf("%s: error %v is not an *EditError", tc.name, err)
		}
	}
	if got := eng.Snapshot().Version(); got != v {
		t.Fatalf("rejected edits moved the version %d → %d", v, got)
	}
	if st := eng.Stats(); st.Edits != 0 {
		t.Fatalf("rejected edits were counted: %+v", st)
	}
	verifyOK(t, eng)
}

func TestSetNetParasiticsRejectsMissingLeaf(t *testing.T) {
	eng, _ := newTestEngine(t, diamond(), Config{})
	_, trees := eng.CopyDesign()
	tr := trees["m"].Clone()
	tr.Nodes[tr.NodeIndex("pin:U2:A")].Name = "pin:somewhere:else"
	_, err := eng.SetNetParasitics("m", tr)
	var ee *EditError
	if !errors.As(err, &ee) {
		t.Fatalf("missing-leaf tree accepted: %v", err)
	}
	verifyOK(t, eng)
}

func TestSetNetParasiticsRepropagates(t *testing.T) {
	eng, _ := newTestEngine(t, diamond(), Config{})
	before := eng.Snapshot().Result().ArrivalQ[0]
	_, trees := eng.CopyDesign()
	tr := trees["m"].Clone()
	for i := range tr.Nodes {
		tr.Nodes[i].R *= 3
		tr.Nodes[i].C *= 2
	}
	if _, err := eng.SetNetParasitics("m", tr); err != nil {
		t.Fatal(err)
	}
	if after := eng.Snapshot().Result().ArrivalQ[0]; after == before {
		t.Fatal("tripling net m parasitics left the critical arrival unchanged")
	}
	verifyOK(t, eng)
}

func TestSetInputSlewRepropagates(t *testing.T) {
	eng, _ := newTestEngine(t, diamond(), Config{})
	before := eng.Snapshot().Result().ArrivalQ[0]
	if _, err := eng.SetInputSlew("in", 120e-12); err != nil {
		t.Fatal(err)
	}
	if got := eng.Options().InputSlews["in"]; got != 120e-12 {
		t.Fatalf("input-slew override not recorded in Options: %g", got)
	}
	if after := eng.Snapshot().Result().ArrivalQ[0]; after == before {
		t.Fatal("a 12x input-slew change left the critical arrival unchanged")
	}
	verifyOK(t, eng)
}

func TestEpsilonCutsConeAtTheCostOfExactness(t *testing.T) {
	// A huge epsilon accepts any numeric drift: the edit's cone must
	// terminate at the seeded gates, and the cached state must now diverge
	// from a fresh analysis (the documented accuracy trade).
	eng, _ := newTestEngine(t, chain(20), Config{Epsilon: 1})
	rep, err := eng.ResizeCell("U1", 8)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reevaluated > rep.Seeded {
		t.Fatalf("epsilon=1 still grew the cone: %+v", rep)
	}
	if rep.Cut == 0 {
		t.Fatalf("epsilon=1 cut nothing: %+v", rep)
	}
	if err := eng.VerifyFull(context.Background()); err == nil {
		t.Fatal("state still bit-identical after an epsilon-cut edit that changed real delays")
	}
	// Rebuild restores exactness.
	if err := eng.Rebuild(); err != nil {
		t.Fatal(err)
	}
	verifyOK(t, eng)
}

func TestNegativeEpsilonRejected(t *testing.T) {
	lib := fullLib()
	nl := diamond()
	_, err := New(lib, nl, buildTrees(nl, lib), Config{Epsilon: -1e-12})
	var ee *EditError
	if !errors.As(err, &ee) {
		t.Fatalf("negative epsilon accepted: %v", err)
	}
}

func TestSnapshotIsolationAcrossEdits(t *testing.T) {
	eng, _ := newTestEngine(t, diamond(), Config{})
	s1 := eng.Snapshot()
	arr1 := s1.Result().ArrivalQ[0]
	paths1, err := s1.WorstPaths(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ResizeCell("U2", 8); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.SetInputSlew("in", 60e-12); err != nil {
		t.Fatal(err)
	}
	if got := s1.Result().ArrivalQ[0]; got != arr1 {
		t.Fatalf("edit mutated an already-published snapshot: %g → %g", arr1, got)
	}
	paths1b, err := s1.WorstPaths(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range paths1 {
		if paths1[i].Endpoint != paths1b[i].Endpoint || paths1[i].Quantile(0) != paths1b[i].Quantile(0) {
			t.Fatalf("old snapshot's worst paths changed after later edits")
		}
	}
	if s2 := eng.Snapshot(); s2.Result().ArrivalQ[0] == arr1 {
		t.Fatal("two real edits left the live arrival unchanged")
	}
}

// TestOldSnapshotStableUnderConcurrentEdits pins a snapshot, then keeps
// querying it from several goroutines while an edit stream mutates the
// engine: every answer from the old snapshot must stay bitwise identical to
// the answers it gave before the edits started. Snapshots share the
// engine's compiled graph by pointer, so this is the regression test for
// the copy-on-write discipline (run it under -race).
func TestOldSnapshotStableUnderConcurrentEdits(t *testing.T) {
	eng, _ := newTestEngine(t, chain(12), Config{})
	old := eng.Snapshot()
	wantArr := old.Result().ArrivalQ[0]
	wantPaths, err := old.WorstPaths(3)
	if err != nil {
		t.Fatal(err)
	}
	wantSlacks, err := old.EndpointSlacks(1e-9, 0)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if got := old.Result().ArrivalQ[0]; got != wantArr {
					t.Errorf("old snapshot arrival drifted: %g → %g", wantArr, got)
					return
				}
				paths, err := old.WorstPaths(3)
				if err != nil {
					t.Error(err)
					return
				}
				for j := range wantPaths {
					if paths[j].Endpoint != wantPaths[j].Endpoint ||
						paths[j].Quantile(0) != wantPaths[j].Quantile(0) {
						t.Errorf("old snapshot path %d drifted after later edits", j)
						return
					}
				}
				slacks, err := old.EndpointSlacks(1e-9, 0)
				if err != nil {
					t.Error(err)
					return
				}
				for key, want := range wantSlacks {
					if slacks[key] != want {
						t.Errorf("old snapshot slack %s drifted: %g → %g", key, want, slacks[key])
						return
					}
				}
			}
		}()
	}

	strengths := []int{8, 1, 4, 2}
	for i := 0; i < 30; i++ {
		if _, err := eng.ResizeCell("U6", strengths[i%len(strengths)]); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.SetInputSlew("in", float64(20+i)*1e-12); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if eng.Snapshot().Version() == old.Version() {
		t.Fatal("edits published no new snapshot")
	}
	verifyOK(t, eng)
}

func TestWorstPathsMatchFreshTopPaths(t *testing.T) {
	eng, lib := newTestEngine(t, diamond(), Config{})
	if _, err := eng.ResizeCell("U1", 4); err != nil {
		t.Fatal(err)
	}
	assertWorstPathsMatchFresh(t, eng, lib, 3)
}

func TestConcurrentQueriesDuringEdits(t *testing.T) {
	eng, _ := newTestEngine(t, chain(12), Config{})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := eng.Snapshot()
				if s.Result().ArrivalQ[0] <= 0 {
					t.Error("non-positive critical arrival from snapshot")
					return
				}
				if _, err := s.WorstPaths(2); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	strengths := []int{1, 2, 4, 8}
	for i := 0; i < 40; i++ {
		if _, err := eng.ResizeCell("U6", strengths[i%len(strengths)]); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	verifyOK(t, eng)
}
