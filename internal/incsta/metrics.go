package incsta

import "repro/internal/obs"

// Process-wide incremental-STA metrics. These aggregate across every engine
// in the process (the timing server hosts one per loaded design); the
// per-engine cumulative counters remain available through Engine.Stats.
var (
	mEdits = obs.Default().Counter("incsta_edits_total",
		"ECO edits applied across all incremental engines.")
	mFullPasses = obs.Default().Counter("incsta_full_passes_total",
		"Full propagations (engine construction and rebuilds).")
	hDirtyCone = obs.Default().Histogram("incsta_dirty_cone_gates",
		"Gates re-evaluated per edit — the size of the dirty downstream cone.")
	hEpsilonCut = obs.Default().Histogram("incsta_epsilon_cut_gates",
		"Re-evaluated gates per edit whose cone the epsilon rule cut early.")
	hEditSeconds = obs.Default().Histogram("incsta_edit_seconds",
		"Wall time of one applied edit, re-propagation included.")
)
