package incsta

import (
	"context"
	"encoding/json"
	"testing"
)

// TestApplyEditMatchesTypedCalls drives the same script through ApplyEdit
// (after a JSON round trip, as WAL replay would see it) and through the
// typed methods on a second engine, and requires bit-identical results —
// the determinism WAL recovery stands on. Rejected edits must be rejected
// on both sides with *EditError and leave state untouched.
func TestApplyEditMatchesTypedCalls(t *testing.T) {
	a, _ := newTestEngine(t, diamond(), Config{})
	b, _ := newTestEngine(t, diamond(), Config{})

	script := []Edit{
		{Op: OpResize, Gate: "U1", Strength: 4},
		{Op: OpSetInputSlew, Net: "in", Slew: 18e-12},
		{Op: OpSwap, Gate: "U2", Cell: "INVx2"},
		{Op: OpResize, Gate: "nope", Strength: 2}, // rejected: unknown gate
		{Op: OpSetInputSlew, Net: "in", Slew: -1}, // rejected: non-positive slew
		{Op: OpSwap, Gate: "U1", Cell: "NAND2x1"}, // rejected: pin mismatch
		{Op: "unknown_op"},                        // rejected: unknown op
		{Op: OpResize, Gate: "U3", Strength: 8},
		{Op: OpSetInputSlew, Net: "in", Slew: 9e-12},
	}
	typed := []func() (*Report, error){
		func() (*Report, error) { return b.ResizeCell("U1", 4) },
		func() (*Report, error) { return b.SetInputSlew("in", 18e-12) },
		func() (*Report, error) { return b.SwapCell("U2", "INVx2") },
		func() (*Report, error) { return b.ResizeCell("nope", 2) },
		func() (*Report, error) { return b.SetInputSlew("in", -1) },
		func() (*Report, error) { return b.SwapCell("U1", "NAND2x1") },
		func() (*Report, error) { return nil, &EditError{Op: "unknown_op", Reason: "unknown edit op"} },
		func() (*Report, error) { return b.ResizeCell("U3", 8) },
		func() (*Report, error) { return b.SetInputSlew("in", 9e-12) },
	}

	for i, ed := range script {
		raw, err := json.Marshal(ed)
		if err != nil {
			t.Fatalf("edit %d: marshal: %v", i, err)
		}
		var decoded Edit
		if err := json.Unmarshal(raw, &decoded); err != nil {
			t.Fatalf("edit %d: unmarshal: %v", i, err)
		}
		_, errA := a.ApplyEdit(decoded)
		_, errB := typed[i]()
		if (errA == nil) != (errB == nil) {
			t.Fatalf("edit %d (%s): ApplyEdit err %v, typed err %v", i, ed.Op, errA, errB)
		}
		if errA != nil {
			if _, ok := errA.(*EditError); !ok {
				t.Fatalf("edit %d (%s): rejection is %T, want *EditError", i, ed.Op, errA)
			}
		}
	}

	levels := a.Options().Levels
	ra, rb := a.Snapshot().Result(), b.Snapshot().Result()
	for _, n := range levels {
		if ra.ArrivalQ[n] != rb.ArrivalQ[n] {
			t.Fatalf("level %+d: ApplyEdit arrival %v vs typed %v", n, ra.ArrivalQ[n], rb.ArrivalQ[n])
		}
	}
	if len(ra.EndpointArrivals) != len(rb.EndpointArrivals) {
		t.Fatalf("endpoint count %d vs %d", len(ra.EndpointArrivals), len(rb.EndpointArrivals))
	}
	for key, av := range ra.EndpointArrivals {
		bv, ok := rb.EndpointArrivals[key]
		if !ok {
			t.Fatalf("endpoint %s missing from typed-run result", key)
		}
		for _, n := range levels {
			if av[n] != bv[n] {
				t.Fatalf("endpoint %s level %+d: %v vs %v", key, n, av[n], bv[n])
			}
		}
	}
	if err := a.VerifyFull(context.Background()); err != nil {
		t.Fatalf("VerifyFull after replayed script: %v", err)
	}
}

// TestApplyEditSetNetParasitics exercises the tree-carrying op through the
// JSON round trip (trees serialize by value in the Edit record).
func TestApplyEditSetNetParasitics(t *testing.T) {
	eng, _ := newTestEngine(t, diamond(), Config{})
	_, trees := eng.CopyDesign()
	tree := trees["m"]
	tree.Nodes[1].R *= 3
	tree.Nodes[1].C *= 2

	raw, err := json.Marshal(Edit{Op: OpSetNetParasitics, Net: "m", Tree: tree})
	if err != nil {
		t.Fatal(err)
	}
	var ed Edit
	if err := json.Unmarshal(raw, &ed); err != nil {
		t.Fatal(err)
	}
	before := eng.Snapshot().Result().ArrivalQ[0]
	if _, err := eng.ApplyEdit(ed); err != nil {
		t.Fatalf("ApplyEdit: %v", err)
	}
	if after := eng.Snapshot().Result().ArrivalQ[0]; after == before {
		t.Fatal("tripling a critical segment R moved nothing")
	}
	if err := eng.VerifyFull(context.Background()); err != nil {
		t.Fatalf("VerifyFull after replayed tree edit: %v", err)
	}
}
