package incsta

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/circuits"
	"repro/internal/sta"
	"repro/internal/stdcell"
)

// editOp is one deterministic ECO edit, applicable to any engine over the
// same design — the two engines under comparison receive identical ops.
type editOp func(e *Engine) error

// randomEditOps derives a reproducible ≥60-edit ECO sequence over the given
// name pools: resizes, input-slew overrides and parasitic re-bindings.
func randomEditOps(gates, inputs, nets []string, seed int64, n int) []editOp {
	rng := rand.New(rand.NewSource(seed))
	strengths := stdcell.Strengths
	ops := make([]editOp, 0, n)
	for i := 0; i < n; i++ {
		switch rng.Intn(4) {
		case 0, 1:
			g := gates[rng.Intn(len(gates))]
			s := strengths[rng.Intn(len(strengths))]
			ops = append(ops, func(e *Engine) error { _, err := e.ResizeCell(g, s); return err })
		case 2:
			in := inputs[rng.Intn(len(inputs))]
			slew := (5 + 120*rng.Float64()) * 1e-12
			ops = append(ops, func(e *Engine) error { _, err := e.SetInputSlew(in, slew); return err })
		case 3:
			net := nets[rng.Intn(len(nets))]
			scale := 0.5 + 1.5*rng.Float64()
			ops = append(ops, func(e *Engine) error {
				_, cur := e.CopyDesign()
				tr := cur[net]
				for j := range tr.Nodes {
					tr.Nodes[j].R *= scale
					tr.Nodes[j].C *= scale
				}
				_, err := e.SetNetParasitics(net, tr)
				return err
			})
		}
	}
	return ops
}

// namePools extracts the stable gate/input/net name pools of a benchmark.
func namePools(t *testing.T, circuit string) (gates, inputs, nets []string, build func(cfg Config) *Engine) {
	t.Helper()
	nl, err := circuits.ByName(circuit)
	if err != nil {
		t.Fatal(err)
	}
	circuits.SizeByFanout(nl)
	lib := fullLib()
	trees := buildTrees(nl, lib)
	gates = make([]string, len(nl.Gates))
	nets = make([]string, 0, len(nl.Gates))
	for i, g := range nl.Gates {
		gates[i] = g.Name
		nets = append(nets, g.Output())
	}
	return gates, nl.Inputs, nets, func(cfg Config) *Engine {
		e, err := New(lib, nl, trees, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
}

// assertSnapshotsIdentical compares every corner of two snapshots bitwise.
func assertSnapshotsIdentical(t *testing.T, after string, a, b *Snapshot) {
	t.Helper()
	if len(a.Corners()) != len(b.Corners()) {
		t.Fatalf("%s: corner count %d vs %d", after, len(a.Corners()), len(b.Corners()))
	}
	for ci := range a.Corners() {
		ra, _ := a.ResultAt(ci)
		rb, _ := b.ResultAt(ci)
		for n, v := range ra.ArrivalQ {
			if rb.ArrivalQ[n] != v {
				t.Fatalf("%s corner %d: arrival %+dσ: %v vs %v", after, ci, n, rb.ArrivalQ[n], v)
			}
		}
		if len(ra.EndpointArrivals) != len(rb.EndpointArrivals) {
			t.Fatalf("%s corner %d: endpoint count %d vs %d", after, ci,
				len(rb.EndpointArrivals), len(ra.EndpointArrivals))
		}
		for key, wa := range ra.EndpointArrivals {
			for n, v := range wa {
				if rb.EndpointArrivals[key][n] != v {
					t.Fatalf("%s corner %d: endpoint %s %+dσ: %v vs %v", after, ci, key, n,
						rb.EndpointArrivals[key][n], v)
				}
			}
		}
	}
}

// TestParallelEngineBitIdentical runs the same ≥60-edit random ECO sequence
// through a sequential engine and a 4-worker engine and requires every
// snapshot along the way to be bit-identical.
func TestParallelEngineBitIdentical(t *testing.T) {
	gates, inputs, nets, build := namePools(t, "c432")
	seq := build(Config{})
	par := build(Config{Parallelism: 4})

	ops := randomEditOps(gates, inputs, nets, 7, 60)
	assertSnapshotsIdentical(t, "initial", seq.Snapshot(), par.Snapshot())
	for i, op := range ops {
		if err := op(seq); err != nil {
			t.Fatalf("edit %d (sequential): %v", i, err)
		}
		if err := op(par); err != nil {
			t.Fatalf("edit %d (parallel): %v", i, err)
		}
		assertSnapshotsIdentical(t, "edit", seq.Snapshot(), par.Snapshot())
	}
	if err := par.VerifyFull(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestMultiCornerEngineMatchesIndependentCorners checks a batched
// multi-corner engine against one independent single-corner engine per
// operating point, through a random ECO sequence: per-corner results must
// be bit-identical — batching is an optimization, never an approximation.
func TestMultiCornerEngineMatchesIndependentCorners(t *testing.T) {
	corners := []sta.Corner{
		{Name: "typ"},
		{Name: "fastin", InputSlew: 20e-12},
		{Name: "slowext", CapScale: 1.2},
	}
	gates, inputs, nets, build := namePools(t, "c432")
	batched := build(Config{
		Corners:     sta.CornerSet{Corners: corners},
		Parallelism: 2,
	})
	singles := make([]*Engine, len(corners))
	for ci, c := range corners {
		singles[ci] = build(Config{Corners: sta.CornerSet{Corners: []sta.Corner{c}}})
	}

	check := func(after string) {
		t.Helper()
		snap := batched.Snapshot()
		for ci := range corners {
			want := singles[ci].Snapshot().Result()
			got, err := snap.ResultAt(ci)
			if err != nil {
				t.Fatal(err)
			}
			for n, v := range want.ArrivalQ {
				if got.ArrivalQ[n] != v {
					t.Fatalf("%s corner %s: arrival %+dσ: batched %v vs independent %v",
						after, corners[ci].Name, n, got.ArrivalQ[n], v)
				}
			}
			for key, wa := range want.EndpointArrivals {
				for n, v := range wa {
					if got.EndpointArrivals[key][n] != v {
						t.Fatalf("%s corner %s: endpoint %s %+dσ: batched %v vs independent %v",
							after, corners[ci].Name, key, n, got.EndpointArrivals[key][n], v)
					}
				}
			}
		}
	}

	check("initial")
	ops := randomEditOps(gates, inputs, nets, 11, 60)
	for i, op := range ops {
		if err := op(batched); err != nil {
			t.Fatalf("edit %d (batched): %v", i, err)
		}
		for ci := range singles {
			if err := op(singles[ci]); err != nil {
				t.Fatalf("edit %d (corner %d): %v", i, ci, err)
			}
		}
		if (i+1)%10 == 0 {
			check("edit")
		}
	}
	check("final")
	if err := batched.VerifyFull(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestCornerAccessors covers the snapshot's corner query surface used by
// the server: label resolution, per-corner worst paths and slacks.
func TestCornerAccessors(t *testing.T) {
	_, _, _, build := namePools(t, "c432")
	eng := build(Config{Corners: sta.CornerSet{Corners: []sta.Corner{
		{Name: "typ"}, {InputSlew: 40e-12},
	}}})
	snap := eng.Snapshot()
	if got := eng.Corners(); len(got) != 2 {
		t.Fatalf("engine corners: %d", len(got))
	}
	if ci, ok := snap.CornerIndex("typ"); !ok || ci != 0 {
		t.Fatalf("CornerIndex(typ) = %d, %v", ci, ok)
	}
	if ci, ok := snap.CornerIndex("corner1"); !ok || ci != 1 {
		t.Fatalf("CornerIndex(corner1) = %d, %v", ci, ok)
	}
	if _, ok := snap.CornerIndex("nope"); ok {
		t.Fatal("CornerIndex resolved an unknown label")
	}
	if ci, ok := snap.CornerIndex(""); !ok || ci != 0 {
		t.Fatalf("CornerIndex(\"\") = %d, %v", ci, ok)
	}
	if _, err := snap.ResultAt(2); err == nil {
		t.Fatal("ResultAt(2) out of range accepted")
	}
	p0, err := snap.WorstPathsAt(1, 3)
	if err != nil || len(p0) == 0 {
		t.Fatalf("WorstPathsAt: %v (%d paths)", err, len(p0))
	}
	if _, err := snap.EndpointSlacksAt(1, 6e-9, 3); err != nil {
		t.Fatal(err)
	}
}
