package incsta

import (
	"context"
	"fmt"
	"math"

	"repro/internal/netlist"
	"repro/internal/rctree"
	"repro/internal/sta"
)

// Snapshot is an immutable, internally consistent view of the engine's
// timing state at one edit version. Queries on a snapshot are lock-free and
// safe to run concurrently with further edits: the compiled graph, flat
// state planes and endpoint entries it references are never mutated after
// publication — edits mutate a copy-on-write clone of the graph and commit
// into the engine's private planes, never through a published snapshot.
type Snapshot struct {
	corners []sta.Corner
	graph   *sta.Graph
	flat    []*sta.FlatState
	eps     []map[string][]sta.EndpointEntry
	results []*sta.Result
	stats   Stats
	version uint64
}

// publishLocked assembles and installs a fresh snapshot from the engine's
// current state. Called with e.mu held. Publication is cheap: the compiled
// graph is shared by pointer (edits clone before mutating), the endpoint
// maps are shallow-copied (entry slices are replaced wholesale, never
// appended to), and only the flat per-corner planes are copied.
func (e *Engine) publishLocked() error {
	flat := make([]*sta.FlatState, len(e.corners))
	eps := make([]map[string][]sta.EndpointEntry, len(e.corners))
	results := make([]*sta.Result, len(e.corners))
	for ci, c := range e.corners {
		flat[ci] = e.flat[ci].Clone()
		ep := make(map[string][]sta.EndpointEntry, len(e.epts[ci]))
		for net, entries := range e.epts[ci] {
			ep[net] = entries
		}
		eps[ci] = ep
		res, err := e.graph.ResultFromFlat(flat[ci], c, eps[ci])
		if err != nil {
			return err
		}
		results[ci] = res
	}
	e.version++
	e.snap.Store(&Snapshot{
		corners: e.corners, graph: e.graph, flat: flat, eps: eps,
		results: results, stats: e.stats, version: e.version,
	})
	return nil
}

// Version is the edit sequence number of the snapshot (1 = initial full
// analysis; each edit and rebuild increments it).
func (s *Snapshot) Version() uint64 { return s.version }

// Stats returns the cumulative engine counters at publication time.
func (s *Snapshot) Stats() Stats { return s.stats }

// Result returns the primary-corner analysis result at this version:
// critical path, propagated arrival quantiles and per-endpoint arrivals.
// The result is shared by all callers of this snapshot and must not be
// mutated. Result.GatesTimed is zero: an incremental state has no
// single-pass arc count (see Stats for the cumulative counters).
func (s *Snapshot) Result() *sta.Result { return s.results[0] }

// Corners returns the operating corners this snapshot carries results for
// (at least the neutral corner at index 0). The slice is shared; do not
// mutate.
func (s *Snapshot) Corners() []sta.Corner { return s.corners }

// CornerIndex resolves a corner by its label (Corner.Label: explicit name
// or "corner<i>"). The empty string resolves to the primary corner 0.
func (s *Snapshot) CornerIndex(name string) (int, bool) {
	if name == "" {
		return 0, true
	}
	for i, c := range s.corners {
		if c.Label(i) == name {
			return i, true
		}
	}
	return 0, false
}

// ResultAt returns the analysis result of one corner by index.
func (s *Snapshot) ResultAt(ci int) (*sta.Result, error) {
	if ci < 0 || ci >= len(s.results) {
		return nil, fmt.Errorf("incsta: corner index %d out of range [0,%d)", ci, len(s.results))
	}
	return s.results[ci], nil
}

// WorstPaths ranks the primary corner's endpoints by mean arrival (ties by
// endpoint key) and backtracks the worst path of each of the k slowest —
// identical to sta.AnalyzeTopPaths of the edited design.
func (s *Snapshot) WorstPaths(k int) ([]*sta.Path, error) {
	return s.graph.TopPathsFlat(s.flat[0], s.corners[0], s.results[0], k)
}

// WorstPathsAt is WorstPaths for one corner by index.
func (s *Snapshot) WorstPathsAt(ci, k int) ([]*sta.Path, error) {
	if ci < 0 || ci >= len(s.results) {
		return nil, fmt.Errorf("incsta: corner index %d out of range [0,%d)", ci, len(s.results))
	}
	return s.graph.TopPathsFlat(s.flat[ci], s.corners[ci], s.results[ci], k)
}

// Slack runs a setup check of every primary-corner endpoint against period
// at one sigma level.
func (s *Snapshot) Slack(period float64, level int) (*sta.SlackReport, error) {
	return s.results[0].Slack(period, level)
}

// EndpointSlacks returns the primary corner's per-endpoint slack at one
// sigma level, keyed "net/edge" — the per-endpoint view behind the server's
// query API.
func (s *Snapshot) EndpointSlacks(period float64, level int) (map[string]float64, error) {
	return s.EndpointSlacksAt(0, period, level)
}

// EndpointSlacksAt is EndpointSlacks for one corner by index.
func (s *Snapshot) EndpointSlacksAt(ci int, period float64, level int) (map[string]float64, error) {
	if ci < 0 || ci >= len(s.results) {
		return nil, fmt.Errorf("incsta: corner index %d out of range [0,%d)", ci, len(s.results))
	}
	res := s.results[ci]
	out := make(map[string]float64, len(res.EndpointArrivals))
	for key, arr := range res.EndpointArrivals {
		a, ok := arr[level]
		if !ok {
			return nil, fmt.Errorf("incsta: endpoint %s has no %+dσ arrival", key, level)
		}
		out[key] = period - a
	}
	return out, nil
}

// CopyDesign returns deep copies of the engine's current netlist and
// parasitic trees — the inputs a fresh batch analysis needs to reproduce
// the incremental state (property tests, server-side verification).
func (e *Engine) CopyDesign() (*netlist.Netlist, map[string]*rctree.Tree) {
	e.mu.Lock()
	defer e.mu.Unlock()
	trees := make(map[string]*rctree.Tree, len(e.trees))
	for net, t := range e.trees {
		trees[net] = t.Clone()
	}
	return copyNetlist(e.nl), trees
}

// VerifyFull runs a fresh batch analysis of the engine's current design —
// every corner, through the same wavefront engine — and compares it against
// the incremental state. It returns nil when the two agree exactly — the
// consistency guarantee at Epsilon 0 — and a descriptive error on the first
// divergence. Edits are blocked for the duration.
func (e *Engine) VerifyFull(ctx context.Context) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	snap := e.snap.Load()
	fresh, err := sta.NewTimer(e.lib, e.nl, e.trees, e.timer.Options())
	if err != nil {
		return fmt.Errorf("incsta: verify: %w", err)
	}
	results, err := fresh.AnalyzeAll(ctx, sta.AnalyzeOptions{
		Corners:     sta.CornerSet{Corners: e.corners},
		Parallelism: e.par,
	})
	if err != nil {
		return fmt.Errorf("incsta: verify: %w", err)
	}
	levels := e.timer.Options().Levels
	for ci := range e.corners {
		if err := compareResults(results[ci], snap.results[ci], levels); err != nil {
			return fmt.Errorf("corner %s: %w", e.corners[ci].Label(ci), err)
		}
	}
	return nil
}

// compareResults checks a fresh batch result against an incremental one.
func compareResults(fresh, inc *sta.Result, levels []int) error {
	if fresh.Endpoints != inc.Endpoints {
		return fmt.Errorf("incsta: verify: endpoint count %d vs fresh %d", inc.Endpoints, fresh.Endpoints)
	}
	if len(fresh.EndpointArrivals) != len(inc.EndpointArrivals) {
		return fmt.Errorf("incsta: verify: endpoint key count %d vs fresh %d",
			len(inc.EndpointArrivals), len(fresh.EndpointArrivals))
	}
	for key, fa := range fresh.EndpointArrivals {
		ia, ok := inc.EndpointArrivals[key]
		if !ok {
			return fmt.Errorf("incsta: verify: endpoint %s missing from incremental state", key)
		}
		for _, n := range levels {
			if fa[n] != ia[n] {
				return fmt.Errorf("incsta: verify: endpoint %s level %+d: incremental %v vs fresh %v (Δ %g)",
					key, n, ia[n], fa[n], math.Abs(fa[n]-ia[n]))
			}
		}
	}
	for _, n := range levels {
		if fresh.ArrivalQ[n] != inc.ArrivalQ[n] {
			return fmt.Errorf("incsta: verify: critical arrival level %+d: incremental %v vs fresh %v",
				n, inc.ArrivalQ[n], fresh.ArrivalQ[n])
		}
	}
	return comparePaths(fresh.Critical, inc.Critical)
}

// comparePaths checks two critical paths stage by stage.
func comparePaths(fresh, inc *sta.Path) error {
	if fresh.Endpoint != inc.Endpoint || fresh.Launch != inc.Launch {
		return fmt.Errorf("incsta: verify: critical endpoint %s/%s vs fresh %s/%s",
			inc.Endpoint, inc.Launch, fresh.Endpoint, fresh.Launch)
	}
	if len(fresh.Stages) != len(inc.Stages) {
		return fmt.Errorf("incsta: verify: critical path %d stages vs fresh %d",
			len(inc.Stages), len(fresh.Stages))
	}
	for i := range fresh.Stages {
		f, c := &fresh.Stages[i], &inc.Stages[i]
		if f.Cell != c.Cell || f.InPin != c.InPin || f.InEdge != c.InEdge || f.Net != c.Net {
			return fmt.Errorf("incsta: verify: stage %d route %s/%s/%s@%s vs fresh %s/%s/%s@%s",
				i, c.Cell, c.InPin, c.InEdge, c.Net, f.Cell, f.InPin, f.InEdge, f.Net)
		}
		if f.InSlew != c.InSlew || f.Load != c.Load || f.Elmore != c.Elmore || f.XW != c.XW {
			return fmt.Errorf("incsta: verify: stage %d numerics diverge", i)
		}
	}
	return nil
}
