package incsta

import (
	"context"
	"fmt"
	"math"

	"repro/internal/netlist"
	"repro/internal/rctree"
	"repro/internal/sta"
)

// Snapshot is an immutable, internally consistent view of the engine's
// timing state at one edit version. Queries on a snapshot are lock-free and
// safe to run concurrently with further edits: the state map, endpoint
// entries and parasitic trees it references are never mutated after
// publication (edits replace, never write through).
type Snapshot struct {
	timer   *sta.Timer
	state   sta.StateMap
	ep      map[string][]sta.EndpointEntry
	res     *sta.Result
	stats   Stats
	version uint64
}

// publishLocked assembles and installs a fresh snapshot from the engine's
// current state. Called with e.mu held.
func (e *Engine) publishLocked() error {
	trees := make(map[string]*rctree.Tree, len(e.trees))
	for net, t := range e.trees {
		trees[net] = t
	}
	timer, err := e.timer.WithTrees(trees)
	if err != nil {
		return err
	}
	// The snapshot must not see later in-place Cell edits: give its timer a
	// private copy of the netlist (connectivity is shared read-only).
	timer, err = timer.WithNetlist(copyNetlist(e.nl))
	if err != nil {
		return err
	}
	ep := make(map[string][]sta.EndpointEntry, len(e.ep))
	for net, entries := range e.ep {
		ep[net] = entries
	}
	state := e.state.Clone()
	res, err := timer.ResultFrom(state, ep)
	if err != nil {
		return err
	}
	e.version++
	e.snap.Store(&Snapshot{
		timer: timer, state: state, ep: ep, res: res,
		stats: e.stats, version: e.version,
	})
	return nil
}

// Version is the edit sequence number of the snapshot (1 = initial full
// analysis; each edit and rebuild increments it).
func (s *Snapshot) Version() uint64 { return s.version }

// Stats returns the cumulative engine counters at publication time.
func (s *Snapshot) Stats() Stats { return s.stats }

// Result returns the analysis result at this version: critical path,
// propagated arrival quantiles and per-endpoint arrivals. The result is
// shared by all callers of this snapshot and must not be mutated.
// Result.GatesTimed is zero: an incremental state has no single-pass arc
// count (see Stats for the cumulative counters).
func (s *Snapshot) Result() *sta.Result { return s.res }

// WorstPaths ranks the endpoints by mean arrival (ties by endpoint key) and
// backtracks the worst path of each of the k slowest — identical to
// sta.AnalyzeTopPaths of the edited design.
func (s *Snapshot) WorstPaths(k int) ([]*sta.Path, error) {
	return s.timer.TopPathsFrom(s.state, s.res, k)
}

// Slack runs a setup check of every endpoint against period at one sigma
// level.
func (s *Snapshot) Slack(period float64, level int) (*sta.SlackReport, error) {
	return s.res.Slack(period, level)
}

// EndpointSlacks returns the per-endpoint slack at one sigma level, keyed
// "net/edge" — the per-endpoint view behind the server's query API.
func (s *Snapshot) EndpointSlacks(period float64, level int) (map[string]float64, error) {
	out := make(map[string]float64, len(s.res.EndpointArrivals))
	for key, arr := range s.res.EndpointArrivals {
		a, ok := arr[level]
		if !ok {
			return nil, fmt.Errorf("incsta: endpoint %s has no %+dσ arrival", key, level)
		}
		out[key] = period - a
	}
	return out, nil
}

// CopyDesign returns deep copies of the engine's current netlist and
// parasitic trees — the inputs a fresh batch analysis needs to reproduce
// the incremental state (property tests, server-side verification).
func (e *Engine) CopyDesign() (*netlist.Netlist, map[string]*rctree.Tree) {
	e.mu.Lock()
	defer e.mu.Unlock()
	trees := make(map[string]*rctree.Tree, len(e.trees))
	for net, t := range e.trees {
		trees[net] = t.Clone()
	}
	return copyNetlist(e.nl), trees
}

// VerifyFull runs a fresh batch analysis of the engine's current design and
// compares it against the incremental state. It returns nil when the two
// agree exactly — the consistency guarantee at Epsilon 0 — and a
// descriptive error on the first divergence. Edits are blocked for the
// duration.
func (e *Engine) VerifyFull(ctx context.Context) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	snap := e.snap.Load()
	fresh, err := sta.NewTimer(e.lib, e.nl, e.trees, e.timer.Options())
	if err != nil {
		return fmt.Errorf("incsta: verify: %w", err)
	}
	res, err := fresh.AnalyzeContext(ctx)
	if err != nil {
		return fmt.Errorf("incsta: verify: %w", err)
	}
	return compareResults(res, snap.res, e.timer.Options().Levels)
}

// compareResults checks a fresh batch result against an incremental one.
func compareResults(fresh, inc *sta.Result, levels []int) error {
	if fresh.Endpoints != inc.Endpoints {
		return fmt.Errorf("incsta: verify: endpoint count %d vs fresh %d", inc.Endpoints, fresh.Endpoints)
	}
	if len(fresh.EndpointArrivals) != len(inc.EndpointArrivals) {
		return fmt.Errorf("incsta: verify: endpoint key count %d vs fresh %d",
			len(inc.EndpointArrivals), len(fresh.EndpointArrivals))
	}
	for key, fa := range fresh.EndpointArrivals {
		ia, ok := inc.EndpointArrivals[key]
		if !ok {
			return fmt.Errorf("incsta: verify: endpoint %s missing from incremental state", key)
		}
		for _, n := range levels {
			if fa[n] != ia[n] {
				return fmt.Errorf("incsta: verify: endpoint %s level %+d: incremental %v vs fresh %v (Δ %g)",
					key, n, ia[n], fa[n], math.Abs(fa[n]-ia[n]))
			}
		}
	}
	for _, n := range levels {
		if fresh.ArrivalQ[n] != inc.ArrivalQ[n] {
			return fmt.Errorf("incsta: verify: critical arrival level %+d: incremental %v vs fresh %v",
				n, inc.ArrivalQ[n], fresh.ArrivalQ[n])
		}
	}
	return comparePaths(fresh.Critical, inc.Critical)
}

// comparePaths checks two critical paths stage by stage.
func comparePaths(fresh, inc *sta.Path) error {
	if fresh.Endpoint != inc.Endpoint || fresh.Launch != inc.Launch {
		return fmt.Errorf("incsta: verify: critical endpoint %s/%s vs fresh %s/%s",
			inc.Endpoint, inc.Launch, fresh.Endpoint, fresh.Launch)
	}
	if len(fresh.Stages) != len(inc.Stages) {
		return fmt.Errorf("incsta: verify: critical path %d stages vs fresh %d",
			len(inc.Stages), len(fresh.Stages))
	}
	for i := range fresh.Stages {
		f, c := &fresh.Stages[i], &inc.Stages[i]
		if f.Cell != c.Cell || f.InPin != c.InPin || f.InEdge != c.InEdge || f.Net != c.Net {
			return fmt.Errorf("incsta: verify: stage %d route %s/%s/%s@%s vs fresh %s/%s/%s@%s",
				i, c.Cell, c.InPin, c.InEdge, c.Net, f.Cell, f.InPin, f.InEdge, f.Net)
		}
		if f.InSlew != c.InSlew || f.Load != c.Load || f.Elmore != c.Elmore || f.XW != c.XW {
			return fmt.Errorf("incsta: verify: stage %d numerics diverge", i)
		}
	}
	return nil
}
