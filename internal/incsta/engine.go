// Package incsta is the incremental N-sigma statistical STA engine: it
// keeps the levelized per-net arrival/slew state of a design resident and,
// after an ECO edit (cell resize/swap, net re-extraction, input-slew
// change), re-propagates eq. 10 only through the edit's downstream cone,
// cutting the cone early where recomputed quantiles match the cached state.
//
// This is the block-level caching idea of Li et al.'s hierarchical SSTA
// brought to the paper's quantile-sum model: statistical arrival state is
// cached at every net and re-derived only where an edit can have changed
// it. The engine runs on internal/sta's compiled graph: the design is
// lowered once into flat structure-of-arrays (sta.Graph) and the cached
// state lives in per-corner float64 planes (sta.FlatState), so dirty-cone
// re-propagation indexes arrays instead of hashing net names. All
// arithmetic is the shared compiled evaluation core (Graph.EvalGateInto,
// Graph.EndpointsForNet, Graph.ResultFromFlat), so with Epsilon = 0 the
// incremental state is bit-identical to a fresh sta analysis of the edited
// design — the consistency guarantee the property tests pin down.
//
// Concurrency model: edits are serialized on an internal mutex and publish
// an immutable Snapshot; queries read the latest snapshot lock-free (see
// Snapshot), which is what the long-lived timing server builds on. Edits
// mutate the compiled graph copy-on-write (CloneForEdit), so a published
// snapshot keeps a frozen consistent graph while later edits refresh a
// private clone.
package incsta

import (
	"container/heap"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/rctree"
	"repro/internal/sta"
	"repro/internal/timinglib"
)

// Config tunes an Engine.
type Config struct {
	// Options are the sta analysis options (validated by sta.NewTimer).
	Options sta.Options
	// Epsilon is the early-termination cutoff: re-propagation stops at a
	// gate whose recomputed arrival quantiles and root slew all lie within
	// Epsilon (seconds) of the cached state. 0 (the default) demands exact
	// equality and preserves bit-identity with a fresh analysis; a positive
	// value trades per-endpoint accuracy (bounded by path depth × Epsilon)
	// for smaller re-propagation cones. With multiple corners the cone cuts
	// only where every corner matches its cache.
	Epsilon float64
	// Corners batches multiple operating corners through the engine: every
	// edit re-propagates all of them in one pass over the dirty cone, and
	// each snapshot carries a per-corner result. Empty means the single
	// neutral corner; corner 0 is the primary one Snapshot.Result serves.
	// A Levels override in the set applies to the whole engine.
	Corners sta.CornerSet
	// Parallelism is the wavefront worker count used by full passes and
	// dirty-cone re-propagation (≤1 = sequential). Results are bit-identical
	// at any value: same-level gates are independent and commits are ordered.
	Parallelism int
}

// Stats are the cumulative re-propagation counters of an engine — the
// numbers behind the server's /metrics and the incremental-vs-full
// comparison of examples/incremental.
type Stats struct {
	// Edits counts applied edits (including no-ops).
	Edits uint64
	// GatesReevaluated counts gate evaluations performed by edit
	// re-propagation (full rebuilds excluded).
	GatesReevaluated uint64
	// GatesCut counts re-evaluated gates whose state matched the cache
	// within Epsilon, terminating their cone early.
	GatesCut uint64
	// EndpointsRecomputed counts endpoint entries re-transported.
	EndpointsRecomputed uint64
	// FullPasses counts full propagations (construction and Rebuild).
	FullPasses uint64
	// GateCount is the design size a full pass would evaluate.
	GateCount uint64
}

// CacheHitRatio is the fraction of gate evaluations the incremental engine
// avoided versus running a full analysis per edit: 1 − reevaluated/(edits ×
// gates). 0 until the first edit.
func (s Stats) CacheHitRatio() float64 {
	denom := float64(s.Edits) * float64(s.GateCount)
	if denom == 0 {
		return 0
	}
	r := 1 - float64(s.GatesReevaluated)/denom
	if r < 0 {
		return 0
	}
	return r
}

// Engine is an incremental timing view of one design. All exported methods
// are safe for concurrent use: edits serialize on an internal mutex,
// queries go through immutable snapshots.
type Engine struct {
	mu    sync.Mutex // serializes edits and rebuilds
	lib   *timinglib.File
	nl    *netlist.Netlist // engine-owned copy; edits mutate Cell fields only
	idx   *netlist.Index
	trees map[string]*rctree.Tree // entries replaced on edit, trees never mutated
	timer *sta.Timer
	eps   float64

	order []int // topological gate order
	pos   []int // gate index → position in order
	lvl   []int // gate index → logic level (same-level gates are independent)

	corners []sta.Corner // normalized corner batch; corner 0 is primary
	par     int          // wavefront worker count (≥1)

	// graph is the engine's compiled design; edits replace it with a
	// copy-on-write clone before mutating, so snapshots holding the old
	// pointer stay frozen. flat is the resident per-corner propagated state
	// over graph's dense net ids; snapshots publish plane clones.
	graph *sta.Graph
	flat  []*sta.FlatState

	// Reusable evaluation buffers of the dirty-cone loop: one scratch per
	// worker, one output buffer per batch slot (grown on demand). Sized by
	// (corner count, level count), both fixed for the engine's life.
	scratch []*sta.EvalScratch
	outs    []*sta.GateOut

	epts []map[string][]sta.EndpointEntry // per-corner endpoint entries

	stats   Stats
	version uint64
	snap    atomic.Pointer[Snapshot]
}

// New builds an engine over a copy of the netlist and parasitics (the
// caller's values are never mutated) and runs the initial full propagation.
func New(lib *timinglib.File, nl *netlist.Netlist, trees map[string]*rctree.Tree, cfg Config) (*Engine, error) {
	if cfg.Epsilon < 0 {
		return nil, &EditError{Op: "new", Reason: fmt.Sprintf("negative epsilon %g", cfg.Epsilon)}
	}
	if err := cfg.Corners.Validate(); err != nil {
		return nil, err
	}
	opt := cfg.Options
	if len(cfg.Corners.Levels) > 0 {
		opt.Levels = cfg.Corners.Levels
	}
	nlCopy := copyNetlist(nl)
	treeCopy := make(map[string]*rctree.Tree, len(trees))
	for net, t := range trees {
		treeCopy[net] = t
	}
	timer, err := sta.NewTimer(lib, nlCopy, treeCopy, opt)
	if err != nil {
		return nil, err
	}
	idx, err := nlCopy.BuildIndex()
	if err != nil {
		return nil, err
	}
	order, err := nlCopy.Levelize()
	if err != nil {
		return nil, err
	}
	pos := make([]int, len(nlCopy.Gates))
	for p, gi := range order {
		pos[gi] = p
	}
	lvl := make([]int, len(nlCopy.Gates))
	for _, gi := range order {
		l := 0
		for _, net := range nlCopy.Gates[gi].InputNets() {
			if di, ok := idx.Driver(net); ok && lvl[di]+1 > l {
				l = lvl[di] + 1
			}
		}
		lvl[gi] = l
	}
	corners := cfg.Corners.Corners
	if len(corners) == 0 {
		corners = []sta.Corner{{}}
	}
	par := cfg.Parallelism
	if par < 1 {
		par = 1
	}
	e := &Engine{
		lib: lib, nl: nlCopy, idx: idx, trees: treeCopy, timer: timer,
		eps: cfg.Epsilon, order: order, pos: pos, lvl: lvl,
		corners: corners, par: par,
		stats: Stats{GateCount: uint64(len(nlCopy.Gates))},
	}
	if err := e.rebuildLocked(); err != nil {
		return nil, err
	}
	return e, nil
}

// copyNetlist deep-copies the parts of a netlist edits mutate (the gate
// slice and pin maps); name slices are shared read-only.
func copyNetlist(nl *netlist.Netlist) *netlist.Netlist {
	out := &netlist.Netlist{
		Name:    nl.Name,
		Inputs:  nl.Inputs,
		Outputs: nl.Outputs,
		Gates:   make([]netlist.Gate, len(nl.Gates)),
	}
	for i, g := range nl.Gates {
		pins := make(map[string]string, len(g.Pins))
		for p, n := range g.Pins {
			pins[p] = n
		}
		out.Gates[i] = netlist.Gate{Name: g.Name, Cell: g.Cell, Pins: pins}
	}
	return out
}

// Rebuild discards the cached state and re-propagates the whole design —
// recovery after external corruption, and the baseline the property tests
// compare against.
func (e *Engine) Rebuild() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.rebuildLocked()
}

// rebuildLocked recompiles the design and runs a full compiled propagation.
func (e *Engine) rebuildLocked() error {
	ctx, span := obs.StartSpan(context.Background(), "incsta_rebuild",
		obs.A("gates", len(e.nl.Gates)), obs.A("corners", len(e.corners)))
	defer span.End()
	// A private Compile (not the timer's shared Compiled cache): the engine
	// mutates its graph copy-on-write across edits, and the netlist/tree
	// values the timer sees change in place under the engine lock.
	g, err := e.timer.Compile()
	if err != nil {
		return err
	}
	flat := make([]*sta.FlatState, len(e.corners))
	for ci, c := range e.corners {
		flat[ci] = g.NewState()
		g.InitPI(flat[ci], c)
	}
	if _, err := g.Propagate(ctx, flat, e.corners, e.par); err != nil {
		return err
	}
	e.graph = g
	e.flat = flat
	if e.scratch == nil {
		workers := e.par
		if workers < 1 {
			workers = 1
		}
		e.scratch = make([]*sta.EvalScratch, workers)
		for w := range e.scratch {
			e.scratch[w] = g.NewScratch(len(e.corners))
		}
	}
	eps := make([]map[string][]sta.EndpointEntry, len(e.corners))
	for ci, c := range e.corners {
		ep := make(map[string][]sta.EndpointEntry, len(e.nl.Outputs))
		for _, po := range e.nl.Outputs {
			if _, done := ep[po]; done {
				continue
			}
			id, ok := g.NetID(po)
			if !ok {
				return fmt.Errorf("incsta: output net %s not compiled", po)
			}
			ep[po] = g.EndpointsForNet(id, flat[ci], c)
		}
		eps[ci] = ep
	}
	e.epts = eps
	e.stats.FullPasses++
	mFullPasses.Inc()
	return e.publishLocked()
}

// ensureOuts grows the per-batch-slot output buffers to at least n.
func (e *Engine) ensureOuts(n int) {
	for len(e.outs) < n {
		e.outs = append(e.outs, e.graph.NewGateOut(len(e.corners)))
	}
}

// evalBatchFlat evaluates a batch of same-level gates under every corner
// into e.outs[0:len(batch)]. Same-level gates never read each other's
// outputs, so evaluation order is irrelevant; the caller compares/commits
// in batch order, which keeps the whole pass bit-identical to a sequential
// per-gate evaluation at any worker count. Compiled evaluation cannot fail:
// every structural lookup was resolved at compile time.
func (e *Engine) evalBatchFlat(batch []int) {
	e.ensureOuts(len(batch))
	if e.par <= 1 || len(batch) == 1 {
		sc := e.scratch[0]
		for i, gi := range batch {
			e.graph.EvalGateInto(gi, e.flat, e.corners, sc, e.outs[i])
		}
		return
	}
	workers := e.par
	if workers > len(batch) {
		workers = len(batch)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := e.scratch[w]
			for {
				i := int(next.Add(1)) - 1
				if i >= len(batch) {
					return
				}
				e.graph.EvalGateInto(batch[i], e.flat, e.corners, sc, e.outs[i])
			}
		}(w)
	}
	wg.Wait()
}

// dirtySet collects the frontier of an edit before propagation.
type dirtySet struct {
	gates     map[int]struct{}
	inputs    map[string]struct{}
	endpoints map[string]struct{}
}

func newDirtySet() *dirtySet {
	return &dirtySet{
		gates:     make(map[int]struct{}),
		inputs:    make(map[string]struct{}),
		endpoints: make(map[string]struct{}),
	}
}

// touchNet marks every consumer of a net whose parasitics (or root state)
// changed: the driving gate (its load changed), every sink gate (their pin
// arrival changed), the PI initialisation when the net is a primary input,
// and the endpoint transport when the net feeds a primary output.
func (e *Engine) touchNet(d *dirtySet, net string) {
	if gi, ok := e.idx.Driver(net); ok {
		d.gates[gi] = struct{}{}
	}
	if e.idx.IsInput(net) {
		d.inputs[net] = struct{}{}
	}
	for _, s := range e.idx.Fanout(net) {
		if s.Gate >= 0 {
			d.gates[s.Gate] = struct{}{}
		} else {
			d.endpoints[net] = struct{}{}
		}
	}
}

// gateHeap pops dirty gates in topological order, so every gate is
// evaluated at most once per edit and always after its dirty predecessors.
type gateHeap struct {
	items []int
	pos   []int
}

func (h *gateHeap) Len() int           { return len(h.items) }
func (h *gateHeap) Less(i, j int) bool { return h.pos[h.items[i]] < h.pos[h.items[j]] }
func (h *gateHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *gateHeap) Push(x any)         { h.items = append(h.items, x.(int)) }
func (h *gateHeap) Pop() any {
	n := len(h.items) - 1
	x := h.items[n]
	h.items = h.items[:n]
	return x
}

// propagate re-derives the timing state downstream of the dirty frontier.
// It mutates the resident flat state in place (snapshots hold their own
// plane copies) and returns the per-edit counters.
func (e *Engine) propagate(d *dirtySet) *Report {
	rep := &Report{Seeded: len(d.gates) + len(d.inputs)}
	g := e.graph

	// Re-derive dirty primary inputs first; their change feeds the gate
	// frontier exactly like a gate-state change. A corner set is updated as
	// a unit: the cached state is kept only when every corner matches.
	for net := range d.inputs {
		id, ok := g.NetID(net)
		if !ok {
			continue
		}
		slews := make([][2]float64, len(e.corners))
		changed := false
		for ci, c := range e.corners {
			slews[ci] = g.PISlews(id, c)
			if !e.flat[ci].PIMatches(id, slews[ci], e.eps) {
				changed = true
			}
		}
		if !changed {
			continue
		}
		for ci := range e.corners {
			g.CommitPI(e.flat[ci], id, slews[ci])
		}
		for _, s := range e.idx.Fanout(net) {
			if s.Gate >= 0 {
				d.gates[s.Gate] = struct{}{}
			} else {
				d.endpoints[net] = struct{}{}
			}
		}
	}

	h := &gateHeap{pos: e.pos, items: make([]int, 0, len(d.gates))}
	queued := make(map[int]struct{}, len(d.gates))
	push := func(gi int) {
		if _, ok := queued[gi]; ok {
			return
		}
		queued[gi] = struct{}{}
		heap.Push(h, gi)
	}
	for gi := range d.gates {
		push(gi)
	}
	var batch []int
	for h.Len() > 0 {
		// Pop the frontier's whole current level: same-level gates are
		// independent, so they form one (possibly parallel) batch, and their
		// fanouts land at strictly deeper levels, preserving heap order.
		batch = append(batch[:0], heap.Pop(h).(int))
		for h.Len() > 0 && e.lvl[h.items[0]] == e.lvl[batch[0]] {
			batch = append(batch, heap.Pop(h).(int))
		}
		e.evalBatchFlat(batch)
		for i, gi := range batch {
			rep.Reevaluated++
			out := e.outs[i]
			if g.OutMatches(gi, e.flat, out, e.eps) {
				rep.Cut++
				continue // cone terminates: downstream state cannot change
			}
			g.CommitGate(gi, e.flat, out)
			outNet := g.OutNet(gi)
			for _, sg := range g.FanoutGates(outNet) {
				if sg >= 0 {
					push(int(sg))
				} else {
					d.endpoints[g.NetName(outNet)] = struct{}{}
				}
			}
		}
	}

	for net := range d.endpoints {
		id, ok := g.NetID(net)
		if !ok {
			continue
		}
		for ci, c := range e.corners {
			entries := g.EndpointsForNet(id, e.flat[ci], c)
			e.epts[ci][net] = entries
			if ci == 0 {
				// Report.Endpoints stays the structural (primary-corner)
				// entry count, independent of how many corners are batched.
				rep.Endpoints += len(entries)
			}
		}
	}
	return rep
}

// finishEdit runs propagation for a prepared dirty set, updates counters
// and publishes a fresh snapshot. Compiled propagation cannot fail (all
// structural resolution happened at compile time), so an edit that passed
// validation always completes.
func (e *Engine) finishEdit(op string, d *dirtySet) (*Report, error) {
	t0 := time.Now()
	_, span := obs.StartSpan(context.Background(), "incsta_edit", obs.A("op", op))
	defer span.End()
	rep := e.propagate(d)
	rep.Op = op
	e.stats.Edits++
	e.stats.GatesReevaluated += uint64(rep.Reevaluated)
	e.stats.GatesCut += uint64(rep.Cut)
	e.stats.EndpointsRecomputed += uint64(rep.Endpoints)
	mEdits.Inc()
	hDirtyCone.Observe(float64(rep.Reevaluated))
	hEpsilonCut.Observe(float64(rep.Cut))
	hEditSeconds.ObserveSince(t0)
	span.SetAttr("reevaluated", rep.Reevaluated)
	span.SetAttr("cut", rep.Cut)
	span.SetAttr("endpoints", rep.Endpoints)
	if err := e.publishLocked(); err != nil {
		return nil, err
	}
	return rep, nil
}

// Stats returns the cumulative counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// GateCount returns the number of gates in the design.
func (e *Engine) GateCount() int { return len(e.nl.Gates) }

// Epsilon returns the engine's early-termination cutoff (0 = bit-exact) —
// part of the configuration a persisted snapshot needs to rebuild an
// equivalent engine.
func (e *Engine) Epsilon() float64 { return e.eps }

// Corners returns the engine's operating-corner batch (at least the neutral
// corner at index 0). The slice is shared; do not mutate.
func (e *Engine) Corners() []sta.Corner { return e.corners }

// Parallelism returns the engine's effective wavefront worker count (≥1).
func (e *Engine) Parallelism() int { return e.par }

// Snapshot returns the latest published immutable view. It never returns
// nil on an engine built by New.
func (e *Engine) Snapshot() *Snapshot { return e.snap.Load() }
