// Package incsta is the incremental N-sigma statistical STA engine: it
// keeps the levelized per-net arrival/slew state of a design resident and,
// after an ECO edit (cell resize/swap, net re-extraction, input-slew
// change), re-propagates eq. 10 only through the edit's downstream cone,
// cutting the cone early where recomputed quantiles match the cached state.
//
// This is the block-level caching idea of Li et al.'s hierarchical SSTA
// brought to the paper's quantile-sum model: statistical arrival state is
// cached at every net and re-derived only where an edit can have changed
// it. All arithmetic is the shared evaluation core of internal/sta
// (Timer.EvalGate, Timer.EndpointsForNet, Timer.ResultFrom), so with
// Epsilon = 0 the incremental state is bit-identical to a fresh
// sta.AnalyzeContext of the edited design — the consistency guarantee the
// property tests pin down.
//
// Concurrency model: edits are serialized on an internal mutex and publish
// an immutable Snapshot; queries read the latest snapshot lock-free (see
// Snapshot), which is what the long-lived timing server builds on.
package incsta

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/rctree"
	"repro/internal/sta"
	"repro/internal/timinglib"
)

// Config tunes an Engine.
type Config struct {
	// Options are the sta analysis options (validated by sta.NewTimer).
	Options sta.Options
	// Epsilon is the early-termination cutoff: re-propagation stops at a
	// gate whose recomputed arrival quantiles and root slew all lie within
	// Epsilon (seconds) of the cached state. 0 (the default) demands exact
	// equality and preserves bit-identity with a fresh analysis; a positive
	// value trades per-endpoint accuracy (bounded by path depth × Epsilon)
	// for smaller re-propagation cones. With multiple corners the cone cuts
	// only where every corner matches its cache.
	Epsilon float64
	// Corners batches multiple operating corners through the engine: every
	// edit re-propagates all of them in one pass over the dirty cone, and
	// each snapshot carries a per-corner result. Empty means the single
	// neutral corner; corner 0 is the primary one Snapshot.Result serves.
	// A Levels override in the set applies to the whole engine.
	Corners sta.CornerSet
	// Parallelism is the wavefront worker count used by full passes and
	// dirty-cone re-propagation (≤1 = sequential). Results are bit-identical
	// at any value: same-level gates are independent and commits are ordered.
	Parallelism int
}

// Stats are the cumulative re-propagation counters of an engine — the
// numbers behind the server's /metrics and the incremental-vs-full
// comparison of examples/incremental.
type Stats struct {
	// Edits counts applied edits (including no-ops).
	Edits uint64
	// GatesReevaluated counts gate evaluations performed by edit
	// re-propagation (full rebuilds excluded).
	GatesReevaluated uint64
	// GatesCut counts re-evaluated gates whose state matched the cache
	// within Epsilon, terminating their cone early.
	GatesCut uint64
	// EndpointsRecomputed counts endpoint entries re-transported.
	EndpointsRecomputed uint64
	// FullPasses counts full propagations (construction and Rebuild).
	FullPasses uint64
	// GateCount is the design size a full pass would evaluate.
	GateCount uint64
}

// CacheHitRatio is the fraction of gate evaluations the incremental engine
// avoided versus running a full analysis per edit: 1 − reevaluated/(edits ×
// gates). 0 until the first edit.
func (s Stats) CacheHitRatio() float64 {
	denom := float64(s.Edits) * float64(s.GateCount)
	if denom == 0 {
		return 0
	}
	r := 1 - float64(s.GatesReevaluated)/denom
	if r < 0 {
		return 0
	}
	return r
}

// Engine is an incremental timing view of one design. All exported methods
// are safe for concurrent use: edits serialize on an internal mutex,
// queries go through immutable snapshots.
type Engine struct {
	mu    sync.Mutex // serializes edits and rebuilds
	lib   *timinglib.File
	nl    *netlist.Netlist // engine-owned copy; edits mutate Cell fields only
	idx   *netlist.Index
	trees map[string]*rctree.Tree // entries replaced on edit, trees never mutated
	timer *sta.Timer
	eps   float64

	order []int // topological gate order
	pos   []int // gate index → position in order
	lvl   []int // gate index → logic level (same-level gates are independent)

	corners []sta.Corner // normalized corner batch; corner 0 is primary
	par     int          // wavefront worker count (≥1)
	timers  []*sta.Timer // e.timer specialized per corner

	states []sta.StateMap                    // per-corner propagated state
	epts   []map[string][]sta.EndpointEntry // per-corner endpoint entries

	stats   Stats
	version uint64
	snap    atomic.Pointer[Snapshot]
}

// New builds an engine over a copy of the netlist and parasitics (the
// caller's values are never mutated) and runs the initial full propagation.
func New(lib *timinglib.File, nl *netlist.Netlist, trees map[string]*rctree.Tree, cfg Config) (*Engine, error) {
	if cfg.Epsilon < 0 {
		return nil, &EditError{Op: "new", Reason: fmt.Sprintf("negative epsilon %g", cfg.Epsilon)}
	}
	if err := cfg.Corners.Validate(); err != nil {
		return nil, err
	}
	opt := cfg.Options
	if len(cfg.Corners.Levels) > 0 {
		opt.Levels = cfg.Corners.Levels
	}
	nlCopy := copyNetlist(nl)
	treeCopy := make(map[string]*rctree.Tree, len(trees))
	for net, t := range trees {
		treeCopy[net] = t
	}
	timer, err := sta.NewTimer(lib, nlCopy, treeCopy, opt)
	if err != nil {
		return nil, err
	}
	idx, err := nlCopy.BuildIndex()
	if err != nil {
		return nil, err
	}
	order, err := nlCopy.Levelize()
	if err != nil {
		return nil, err
	}
	pos := make([]int, len(nlCopy.Gates))
	for p, gi := range order {
		pos[gi] = p
	}
	lvl := make([]int, len(nlCopy.Gates))
	for _, gi := range order {
		l := 0
		for _, net := range nlCopy.Gates[gi].InputNets() {
			if di, ok := idx.Driver(net); ok && lvl[di]+1 > l {
				l = lvl[di] + 1
			}
		}
		lvl[gi] = l
	}
	corners := cfg.Corners.Corners
	if len(corners) == 0 {
		corners = []sta.Corner{{}}
	}
	par := cfg.Parallelism
	if par < 1 {
		par = 1
	}
	e := &Engine{
		lib: lib, nl: nlCopy, idx: idx, trees: treeCopy, timer: timer,
		eps: cfg.Epsilon, order: order, pos: pos, lvl: lvl,
		corners: corners, par: par,
		stats: Stats{GateCount: uint64(len(nlCopy.Gates))},
	}
	if err := e.refreshTimersLocked(); err != nil {
		return nil, err
	}
	if err := e.rebuildLocked(); err != nil {
		return nil, err
	}
	return e, nil
}

// refreshTimersLocked re-derives the per-corner timers from the base timer;
// called whenever e.timer is replaced (construction, input-slew edits).
func (e *Engine) refreshTimersLocked() error {
	timers := make([]*sta.Timer, len(e.corners))
	for ci, c := range e.corners {
		tc, err := e.timer.WithCorner(c)
		if err != nil {
			return err
		}
		timers[ci] = tc
	}
	e.timers = timers
	return nil
}

// copyNetlist deep-copies the parts of a netlist edits mutate (the gate
// slice and pin maps); name slices are shared read-only.
func copyNetlist(nl *netlist.Netlist) *netlist.Netlist {
	out := &netlist.Netlist{
		Name:    nl.Name,
		Inputs:  nl.Inputs,
		Outputs: nl.Outputs,
		Gates:   make([]netlist.Gate, len(nl.Gates)),
	}
	for i, g := range nl.Gates {
		pins := make(map[string]string, len(g.Pins))
		for p, n := range g.Pins {
			pins[p] = n
		}
		out.Gates[i] = netlist.Gate{Name: g.Name, Cell: g.Cell, Pins: pins}
	}
	return out
}

// Rebuild discards the cached state and re-propagates the whole design —
// the recovery path after a failed edit, and the baseline the property
// tests compare against.
func (e *Engine) Rebuild() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.rebuildLocked()
}

func (e *Engine) rebuildLocked() error {
	_, span := obs.StartSpan(context.Background(), "incsta_rebuild",
		obs.A("gates", len(e.nl.Gates)), obs.A("corners", len(e.corners)))
	defer span.End()
	// Pre-seed every net (PIs with boundary state, gate outputs as invalid
	// placeholders) so parallel batch workers only ever read existing map
	// entries — a lazy At() insertion from a worker would race.
	states := make([]sta.StateMap, len(e.corners))
	for ci, tc := range e.timers {
		state := make(sta.StateMap, e.nl.NumNets())
		for _, in := range e.nl.Inputs {
			*state.At(in) = tc.InputState(in)
		}
		for gi := range e.nl.Gates {
			state.At(e.nl.Gates[gi].Output())
		}
		states[ci] = state
	}
	e.states = states
	// Evaluate wavefront by wavefront: e.order is level-sorted within the
	// topological order, so each maximal run of equal-level gates is one
	// independent batch.
	for lo := 0; lo < len(e.order); {
		hi := lo + 1
		for hi < len(e.order) && e.lvl[e.order[hi]] == e.lvl[e.order[lo]] {
			hi++
		}
		buf, err := e.evalBatch(e.order[lo:hi])
		if err != nil {
			return err
		}
		for i, gi := range e.order[lo:hi] {
			outNet := e.nl.Gates[gi].Output()
			for ci := range e.states {
				*e.states[ci].At(outNet) = buf[i][ci]
			}
		}
		lo = hi
	}
	eps := make([]map[string][]sta.EndpointEntry, len(e.corners))
	for ci, tc := range e.timers {
		ep := make(map[string][]sta.EndpointEntry, len(e.nl.Outputs))
		for _, po := range e.nl.Outputs {
			if _, done := ep[po]; done {
				continue
			}
			entries, err := tc.EndpointsForNet(po, e.states[ci])
			if err != nil {
				return err
			}
			ep[po] = entries
		}
		eps[ci] = ep
	}
	e.epts = eps
	e.stats.FullPasses++
	mFullPasses.Inc()
	return e.publishLocked()
}

// evalBatch evaluates a batch of same-level gates under every corner and
// returns the buffered outputs in batch order (indexed [gate][corner]).
// Same-level gates never read each other's outputs, so evaluation order is
// irrelevant; the caller commits in batch order, which keeps the whole pass
// bit-identical to a sequential per-gate evaluation at any worker count.
func (e *Engine) evalBatch(batch []int) ([][][2]sta.NetState, error) {
	buf := make([][][2]sta.NetState, len(batch))
	if e.par <= 1 || len(batch) == 1 {
		for i, gi := range batch {
			outs, _, err := e.timer.EvalGateBatch(gi, e.states, e.corners)
			if err != nil {
				return nil, err
			}
			buf[i] = outs
		}
		return buf, nil
	}
	workers := e.par
	if workers > len(batch) {
		workers = len(batch)
	}
	errs := make([]error, len(batch))
	var next atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(batch) || stop.Load() {
					return
				}
				outs, _, err := e.timer.EvalGateBatch(batch[i], e.states, e.corners)
				if err != nil {
					errs[i] = err
					stop.Store(true)
					return
				}
				buf[i] = outs
			}
		}()
	}
	wg.Wait()
	// Lowest-index error wins, independent of goroutine scheduling.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// dirtySet collects the frontier of an edit before propagation.
type dirtySet struct {
	gates     map[int]struct{}
	inputs    map[string]struct{}
	endpoints map[string]struct{}
}

func newDirtySet() *dirtySet {
	return &dirtySet{
		gates:     make(map[int]struct{}),
		inputs:    make(map[string]struct{}),
		endpoints: make(map[string]struct{}),
	}
}

// touchNet marks every consumer of a net whose parasitics (or root state)
// changed: the driving gate (its load changed), every sink gate (their pin
// arrival changed), the PI initialisation when the net is a primary input,
// and the endpoint transport when the net feeds a primary output.
func (e *Engine) touchNet(d *dirtySet, net string) {
	if gi, ok := e.idx.Driver(net); ok {
		d.gates[gi] = struct{}{}
	}
	if e.idx.IsInput(net) {
		d.inputs[net] = struct{}{}
	}
	for _, s := range e.idx.Fanout(net) {
		if s.Gate >= 0 {
			d.gates[s.Gate] = struct{}{}
		} else {
			d.endpoints[net] = struct{}{}
		}
	}
}

// gateHeap pops dirty gates in topological order, so every gate is
// evaluated at most once per edit and always after its dirty predecessors.
type gateHeap struct {
	items []int
	pos   []int
}

func (h *gateHeap) Len() int            { return len(h.items) }
func (h *gateHeap) Less(i, j int) bool  { return h.pos[h.items[i]] < h.pos[h.items[j]] }
func (h *gateHeap) Swap(i, j int)       { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *gateHeap) Push(x any)          { h.items = append(h.items, x.(int)) }
func (h *gateHeap) Pop() any {
	n := len(h.items) - 1
	x := h.items[n]
	h.items = h.items[:n]
	return x
}

// propagate re-derives the timing state downstream of the dirty frontier.
// It mutates engine state in place (snapshots hold their own copies) and
// returns the per-edit counters.
func (e *Engine) propagate(d *dirtySet) (*Report, error) {
	rep := &Report{Seeded: len(d.gates) + len(d.inputs)}
	levels := e.timer.Options().Levels

	// Re-derive dirty primary inputs first; their change feeds the gate
	// frontier exactly like a gate-state change. A corner set is updated as
	// a unit: the cached state is kept only when every corner matches.
	for net := range d.inputs {
		nss := make([][2]sta.NetState, len(e.timers))
		changed := false
		for ci, tc := range e.timers {
			nss[ci] = tc.InputState(net)
			if !statePairEqual(e.states[ci].At(net), &nss[ci], levels, e.eps) {
				changed = true
			}
		}
		if !changed {
			continue
		}
		for ci := range e.timers {
			*e.states[ci].At(net) = nss[ci]
		}
		for _, s := range e.idx.Fanout(net) {
			if s.Gate >= 0 {
				d.gates[s.Gate] = struct{}{}
			} else {
				d.endpoints[net] = struct{}{}
			}
		}
	}

	h := &gateHeap{pos: e.pos, items: make([]int, 0, len(d.gates))}
	queued := make(map[int]struct{}, len(d.gates))
	push := func(gi int) {
		if _, ok := queued[gi]; ok {
			return
		}
		queued[gi] = struct{}{}
		heap.Push(h, gi)
	}
	for gi := range d.gates {
		push(gi)
	}
	var batch []int
	for h.Len() > 0 {
		// Pop the frontier's whole current level: same-level gates are
		// independent, so they form one (possibly parallel) batch, and their
		// fanouts land at strictly deeper levels, preserving heap order.
		batch = append(batch[:0], heap.Pop(h).(int))
		for h.Len() > 0 && e.lvl[h.items[0]] == e.lvl[batch[0]] {
			batch = append(batch, heap.Pop(h).(int))
		}
		buf, err := e.evalBatch(batch)
		if err != nil {
			return rep, err
		}
		for i, gi := range batch {
			rep.Reevaluated++
			outNet := e.nl.Gates[gi].Output()
			equal := true
			for ci := range e.states {
				if !statePairEqual(e.states[ci].At(outNet), &buf[i][ci], levels, e.eps) {
					equal = false
					break
				}
			}
			if equal {
				rep.Cut++
				continue // cone terminates: downstream state cannot change
			}
			for ci := range e.states {
				*e.states[ci].At(outNet) = buf[i][ci]
			}
			for _, s := range e.idx.Fanout(outNet) {
				if s.Gate >= 0 {
					push(s.Gate)
				} else {
					d.endpoints[outNet] = struct{}{}
				}
			}
		}
	}

	for net := range d.endpoints {
		for ci, tc := range e.timers {
			entries, err := tc.EndpointsForNet(net, e.states[ci])
			if err != nil {
				return rep, err
			}
			e.epts[ci][net] = entries
			if ci == 0 {
				// Report.Endpoints stays the structural (primary-corner)
				// entry count, independent of how many corners are batched.
				rep.Endpoints += len(entries)
			}
		}
	}
	return rep, nil
}

// statePairEqual compares both edges of a net state under the engine's
// early-termination rule.
func statePairEqual(a, b *[2]sta.NetState, levels []int, eps float64) bool {
	return stateEqual(&a[0], &b[0], levels, eps) && stateEqual(&a[1], &b[1], levels, eps)
}

// stateEqual reports whether a recomputed state matches the cache closely
// enough to cut the cone. The winning-arc topology (pin, edge, fanin) must
// always match exactly — backtracked paths stay correct at any epsilon. At
// epsilon 0 every numeric field must be bit-equal (the consistency
// guarantee); at positive epsilon the arrival quantiles and root slew may
// drift by up to eps while the cached bookkeeping values are retained.
func stateEqual(a, b *sta.NetState, levels []int, eps float64) bool {
	if a.Valid != b.Valid {
		return false
	}
	if !a.Valid {
		return true
	}
	if a.InPin != b.InPin || a.InEdge != b.InEdge || a.WinSinkIdx != b.WinSinkIdx {
		return false
	}
	if eps == 0 {
		if a.Slew != b.Slew || a.InSlew != b.InSlew || a.Load != b.Load || a.Moms != b.Moms {
			return false
		}
		for _, n := range levels {
			if a.Arr[n] != b.Arr[n] || a.Quant[n] != b.Quant[n] {
				return false
			}
		}
		return true
	}
	if math.Abs(a.Slew-b.Slew) > eps {
		return false
	}
	for _, n := range levels {
		if math.Abs(a.Arr[n]-b.Arr[n]) > eps {
			return false
		}
	}
	return true
}

// finishEdit runs propagation for a prepared dirty set, updates counters
// and publishes a fresh snapshot. On a propagation failure the cached state
// may be part-updated; the engine rebuilds from scratch to stay consistent.
func (e *Engine) finishEdit(op string, d *dirtySet) (*Report, error) {
	t0 := time.Now()
	_, span := obs.StartSpan(context.Background(), "incsta_edit", obs.A("op", op))
	defer span.End()
	rep, err := e.propagate(d)
	if err != nil {
		if rerr := e.rebuildLocked(); rerr != nil {
			return nil, fmt.Errorf("incsta: %s failed (%w) and rebuild failed: %v", op, err, rerr)
		}
		return nil, fmt.Errorf("incsta: %s: %w", op, err)
	}
	rep.Op = op
	e.stats.Edits++
	e.stats.GatesReevaluated += uint64(rep.Reevaluated)
	e.stats.GatesCut += uint64(rep.Cut)
	e.stats.EndpointsRecomputed += uint64(rep.Endpoints)
	mEdits.Inc()
	hDirtyCone.Observe(float64(rep.Reevaluated))
	hEpsilonCut.Observe(float64(rep.Cut))
	hEditSeconds.ObserveSince(t0)
	span.SetAttr("reevaluated", rep.Reevaluated)
	span.SetAttr("cut", rep.Cut)
	span.SetAttr("endpoints", rep.Endpoints)
	if err := e.publishLocked(); err != nil {
		return nil, err
	}
	return rep, nil
}

// Stats returns the cumulative counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// GateCount returns the number of gates in the design.
func (e *Engine) GateCount() int { return len(e.nl.Gates) }

// Epsilon returns the engine's early-termination cutoff (0 = bit-exact) —
// part of the configuration a persisted snapshot needs to rebuild an
// equivalent engine.
func (e *Engine) Epsilon() float64 { return e.eps }

// Corners returns the engine's operating-corner batch (at least the neutral
// corner at index 0). The slice is shared; do not mutate.
func (e *Engine) Corners() []sta.Corner { return e.corners }

// Parallelism returns the engine's effective wavefront worker count (≥1).
func (e *Engine) Parallelism() int { return e.par }

// Snapshot returns the latest published immutable view. It never returns
// nil on an engine built by New.
func (e *Engine) Snapshot() *Snapshot { return e.snap.Load() }
