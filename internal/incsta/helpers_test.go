package incsta

import (
	"fmt"
	"testing"

	"repro/internal/libsynth"
	"repro/internal/netlist"
	"repro/internal/rctree"
	"repro/internal/timinglib"
)

// fullLib is the shared synthetic coefficients file: every stdcell kind at
// every strength, with slew/load-dependent (non-flat) LUT planes — flat
// planes would make every re-propagation cut trivially and the tests would
// prove nothing.
func fullLib() *timinglib.File { return libsynth.File() }

// buildTrees makes one flat RC tree per net with the layout extractor's
// leaf-naming convention and per-sink resistances that vary by position, so
// changing sink pin caps shifts Elmore delays differently per sink.
func buildTrees(nl *netlist.Netlist, lib *timinglib.File) map[string]*rctree.Tree {
	fan := nl.FanoutMap()
	out := map[string]*rctree.Tree{}
	for net, sinks := range fan {
		t := rctree.NewTree(net, 0.05e-15)
		for si, s := range sinks {
			var name string
			var pc float64
			if s.Gate >= 0 {
				name = fmt.Sprintf("pin:%s:%s", nl.Gates[s.Gate].Name, s.Pin)
				pc, _ = lib.PinCap(nl.Gates[s.Gate].Cell, s.Pin)
			} else {
				name = fmt.Sprintf("pin:PO%d", si)
				pc = 0.8e-15
			}
			t.MustAddNode(name, 0, 40+10*float64(si), 0.3e-15+pc)
		}
		out[net] = t
	}
	return out
}

// chain builds a linear chain of INVx1 gates: in → U1 → … → Un → out.
func chain(n int) *netlist.Netlist {
	nl := &netlist.Netlist{Name: "chain", Inputs: []string{"in"}}
	prev := "in"
	for i := 1; i <= n; i++ {
		out := fmt.Sprintf("n%d", i)
		nl.Gates = append(nl.Gates, netlist.Gate{
			Name: fmt.Sprintf("U%d", i), Cell: "INVx1",
			Pins: map[string]string{"A": prev, "Y": out},
		})
		prev = out
	}
	nl.Outputs = []string{prev}
	return nl
}

// diamond builds in → U1(INV) → m; m → U2(INV) → a; {a,in} → U3(NAND2) → out,
// the same shape the sta package tests use.
func diamond() *netlist.Netlist {
	return &netlist.Netlist{
		Name:    "diamond",
		Inputs:  []string{"in"},
		Outputs: []string{"out"},
		Gates: []netlist.Gate{
			{Name: "U1", Cell: "INVx1", Pins: map[string]string{"A": "in", "Y": "m"}},
			{Name: "U2", Cell: "INVx1", Pins: map[string]string{"A": "m", "Y": "a"}},
			{Name: "U3", Cell: "NAND2x1", Pins: map[string]string{"A": "a", "B": "in", "Y": "out"}},
		},
	}
}

func newTestEngine(t *testing.T, nl *netlist.Netlist, cfg Config) (*Engine, *timinglib.File) {
	t.Helper()
	lib := fullLib()
	trees := buildTrees(nl, lib)
	eng, err := New(lib, nl, trees, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, lib
}
