package incsta

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/circuits"
	"repro/internal/sta"
	"repro/internal/stdcell"
	"repro/internal/timinglib"
)

// assertWorstPathsMatchFresh checks the snapshot's K-worst paths and
// arrival quantiles bitwise against a fresh batch AnalyzeTopPaths of the
// engine's current design.
func assertWorstPathsMatchFresh(t *testing.T, eng *Engine, lib *timinglib.File, k int) {
	t.Helper()
	nl, trees := eng.CopyDesign()
	timer, err := sta.NewTimer(lib, nl, trees, eng.Options())
	if err != nil {
		t.Fatal(err)
	}
	res, fresh, err := timer.AnalyzeTopPaths(k)
	if err != nil {
		t.Fatal(err)
	}
	snap := eng.Snapshot()
	levels := eng.Options().Levels
	for _, n := range levels {
		if snap.Result().ArrivalQ[n] != res.ArrivalQ[n] {
			t.Fatalf("critical arrival %+dσ: incremental %v vs fresh %v",
				n, snap.Result().ArrivalQ[n], res.ArrivalQ[n])
		}
	}
	inc, err := snap.WorstPaths(k)
	if err != nil {
		t.Fatal(err)
	}
	if len(inc) != len(fresh) {
		t.Fatalf("worst paths: incremental returned %d, fresh %d", len(inc), len(fresh))
	}
	for i := range fresh {
		f, c := fresh[i], inc[i]
		if f.Endpoint != c.Endpoint || f.Launch != c.Launch || len(f.Stages) != len(c.Stages) {
			t.Fatalf("worst path %d: incremental %s/%s (%d stages) vs fresh %s/%s (%d stages)",
				i, c.Endpoint, c.Launch, len(c.Stages), f.Endpoint, f.Launch, len(f.Stages))
		}
		for _, n := range levels {
			if f.Quantile(n) != c.Quantile(n) {
				t.Fatalf("worst path %d %+dσ: incremental %v vs fresh %v",
					i, n, c.Quantile(n), f.Quantile(n))
			}
		}
	}
}

// TestPropertyRandomECOSequence is the issue's acceptance property: after a
// random sequence of ≥ 50 ECO edits on an ISCAS85-style netlist, the
// incremental arrival times and worst paths are bit-identical to a fresh
// sta.AnalyzeContext of the edited design.
func TestPropertyRandomECOSequence(t *testing.T) {
	nl, err := circuits.ByName("c432")
	if err != nil {
		t.Fatal(err)
	}
	circuits.SizeByFanout(nl)
	lib := fullLib()
	trees := buildTrees(nl, lib)
	eng, err := New(lib, nl, trees, Config{})
	if err != nil {
		t.Fatal(err)
	}
	verifyOK(t, eng)

	// Stable name pools for the edit generator.
	gates := make([]string, len(nl.Gates))
	nets := make([]string, 0, len(nl.Gates))
	for i, g := range nl.Gates {
		gates[i] = g.Name
		nets = append(nets, g.Output())
	}
	inputs := nl.Inputs
	strengths := stdcell.Strengths

	rng := rand.New(rand.NewSource(42))
	const edits = 60
	for i := 0; i < edits; i++ {
		var err error
		switch rng.Intn(5) {
		case 0, 1:
			_, err = eng.ResizeCell(gates[rng.Intn(len(gates))], strengths[rng.Intn(len(strengths))])
		case 2:
			// SwapCell path: same kind, random strength.
			g := gates[rng.Intn(len(gates))]
			gi, _ := eng.idx.Gate(g)
			cell := eng.nl.Gates[gi].Cell
			kind := cell[:strings.LastIndexByte(cell, 'x')]
			_, err = eng.SwapCell(g, stdcell.CellName(stdcell.Kind(kind), strengths[rng.Intn(len(strengths))]))
		case 3:
			_, err = eng.SetInputSlew(inputs[rng.Intn(len(inputs))], (5+120*rng.Float64())*1e-12)
		case 4:
			net := nets[rng.Intn(len(nets))]
			_, cur := eng.CopyDesign()
			tr := cur[net]
			scale := 0.5 + 1.5*rng.Float64()
			for j := range tr.Nodes {
				tr.Nodes[j].R *= scale
				tr.Nodes[j].C *= scale
			}
			_, err = eng.SetNetParasitics(net, tr)
		}
		if err != nil {
			t.Fatalf("edit %d: %v", i, err)
		}
		if (i+1)%15 == 0 {
			if err := eng.VerifyFull(context.Background()); err != nil {
				t.Fatalf("after edit %d: %v", i, err)
			}
		}
	}

	if err := eng.VerifyFull(context.Background()); err != nil {
		t.Fatalf("after %d edits: %v", edits, err)
	}
	assertWorstPathsMatchFresh(t, eng, lib, 10)

	st := eng.Stats()
	if st.Edits != edits {
		t.Fatalf("edit count %d, want %d", st.Edits, edits)
	}
	if st.GatesReevaluated >= st.Edits*st.GateCount {
		t.Fatalf("incremental engine did no better than %d full passes: %+v", edits, st)
	}
	if st.CacheHitRatio() <= 0 {
		t.Fatalf("cache hit ratio %g, want > 0 after %d edits", st.CacheHitRatio(), edits)
	}
	t.Logf("stats after %d edits on %d gates: reevaluated=%d cut=%d hit-ratio=%.3f",
		edits, st.GateCount, st.GatesReevaluated, st.GatesCut, st.CacheHitRatio())
}
