package incsta

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/rctree"
	"repro/internal/sta"
	"repro/internal/waveform"
)

// EditError is the typed rejection of a malformed ECO edit. Validation runs
// before any state is touched, so a rejected edit leaves the engine exactly
// as it was.
type EditError struct {
	Op     string // "resize", "swap", "set-net-parasitics", "set-input-slew"
	Target string // gate or net name
	Reason string
}

// Error implements error.
func (e *EditError) Error() string {
	if e.Target == "" {
		return fmt.Sprintf("incsta: %s: %s", e.Op, e.Reason)
	}
	return fmt.Sprintf("incsta: %s %q: %s", e.Op, e.Target, e.Reason)
}

// Edit op names — the Op values of the serialized Edit record and the
// EditError.Op tags of their rejections.
const (
	OpResize           = "resize"
	OpSwap             = "swap"
	OpSetNetParasitics = "set_net_parasitics"
	OpSetInputSlew     = "set_input_slew"
)

// Edit is the stable serialized form of one ECO edit — the record a
// write-ahead log appends and replays. Op selects the edit; the other
// fields mirror the arguments of the corresponding typed method
// (ResizeCell, SwapCell, SetNetParasitics, SetInputSlew). All quantities
// are engine-native SI units (Slew in seconds).
//
// The encoding is JSON with omitted zero fields; replaying the same Edit
// value against the same engine state is deterministic, which is what makes
// a logged edit history a faithful reconstruction of the engine.
type Edit struct {
	Op       string       `json:"op"`
	Gate     string       `json:"gate,omitempty"`
	Strength int          `json:"strength,omitempty"`
	Cell     string       `json:"cell,omitempty"`
	Net      string       `json:"net,omitempty"`
	Slew     float64      `json:"slew,omitempty"` // seconds
	Tree     *rctree.Tree `json:"tree,omitempty"`
}

// ApplyEdit dispatches a serialized Edit to its typed method — the single
// replay entry point WAL recovery and edit queues drive. Rejections are the
// same *EditError values the typed methods return, so a replayer can skip
// exactly the edits the original submission rejected.
func (e *Engine) ApplyEdit(ed Edit) (*Report, error) {
	switch ed.Op {
	case OpResize:
		return e.ResizeCell(ed.Gate, ed.Strength)
	case OpSwap:
		return e.SwapCell(ed.Gate, ed.Cell)
	case OpSetNetParasitics:
		return e.SetNetParasitics(ed.Net, ed.Tree)
	case OpSetInputSlew:
		return e.SetInputSlew(ed.Net, ed.Slew)
	default:
		return nil, &EditError{Op: ed.Op, Reason: "unknown edit op"}
	}
}

// Report describes what one edit's re-propagation did.
type Report struct {
	Op string
	// Seeded is the size of the initial dirty frontier (gates + PIs).
	Seeded int
	// Reevaluated counts gate evaluations performed.
	Reevaluated int
	// Cut counts gates whose recomputed state matched the cache within
	// epsilon, terminating their downstream cone.
	Cut int
	// Endpoints counts endpoint entries re-transported.
	Endpoints int
}

// ResizeCell swaps a gate to a different drive strength of the same kind
// ("INVx1" → "INVx4"), following the library's "<kind>x<strength>" naming.
func (e *Engine) ResizeCell(gate string, strength int) (*Report, error) {
	if strength <= 0 {
		return nil, &EditError{Op: "resize", Target: gate,
			Reason: fmt.Sprintf("strength must be positive, got %d", strength)}
	}
	e.mu.Lock()
	gi, ok := e.idx.Gate(gate)
	if !ok {
		e.mu.Unlock()
		return nil, &EditError{Op: "resize", Target: gate, Reason: "unknown gate"}
	}
	cell := e.nl.Gates[gi].Cell
	e.mu.Unlock()
	x := strings.LastIndexByte(cell, 'x')
	if x <= 0 {
		return nil, &EditError{Op: "resize", Target: gate,
			Reason: fmt.Sprintf("cell %q has no x<strength> suffix", cell)}
	}
	if _, err := strconv.Atoi(cell[x+1:]); err != nil {
		return nil, &EditError{Op: "resize", Target: gate,
			Reason: fmt.Sprintf("cell %q has no x<strength> suffix", cell)}
	}
	return e.swap("resize", gate, fmt.Sprintf("%sx%d", cell[:x], strength))
}

// SwapCell replaces a gate's cell with another library cell exposing the
// same input pins (e.g. a NAND2 of a different VT flavour or strength).
func (e *Engine) SwapCell(gate, newCell string) (*Report, error) {
	return e.swap("swap", gate, newCell)
}

func (e *Engine) swap(op, gate, newCell string) (*Report, error) {
	e.mu.Lock()
	defer e.mu.Unlock()

	gi, ok := e.idx.Gate(gate)
	if !ok {
		return nil, &EditError{Op: op, Target: gate, Reason: "unknown gate"}
	}
	g := &e.nl.Gates[gi]
	oldCell := g.Cell
	if newCell == oldCell {
		e.stats.Edits++
		rep := &Report{Op: op}
		if err := e.publishLocked(); err != nil {
			return nil, err
		}
		return rep, nil
	}

	// Validate everything before touching state: the new cell must exist,
	// expose every input pin with arcs for both edges, and be covered by
	// the wire-variability calibration.
	info, err := e.lib.Cell(newCell)
	if err != nil {
		return nil, &EditError{Op: op, Target: gate,
			Reason: fmt.Sprintf("unknown cell %q", newCell)}
	}
	pins := make([]string, 0, len(g.Pins)-1)
	for p := range g.Pins {
		if p != "Y" {
			pins = append(pins, p)
		}
	}
	sort.Strings(pins)
	for _, p := range pins {
		if _, ok := info.PinCaps[p]; !ok {
			return nil, &EditError{Op: op, Target: gate,
				Reason: fmt.Sprintf("cell %q has no input pin %q", newCell, p)}
		}
		for _, edge := range []waveform.Edge{waveform.Falling, waveform.Rising} {
			if _, err := e.lib.Arc(newCell, p, edge); err != nil {
				return nil, &EditError{Op: op, Target: gate,
					Reason: fmt.Sprintf("cell %q has no %s arc on pin %q", newCell, edge, p)}
			}
		}
	}
	if e.lib.Wire != nil {
		if _, err := e.lib.Wire.XW(newCell, newCell); err != nil {
			return nil, &EditError{Op: op, Target: gate,
				Reason: fmt.Sprintf("cell %q not covered by the wire calibration: %v", newCell, err)}
		}
	}

	// Stage the input-net tree updates (pin-cap deltas at this gate's
	// leaves) so validation failures leave the engine untouched.
	type treePatch struct {
		net  string
		tree *rctree.Tree
	}
	var patches []treePatch
	staged := make(map[string]*rctree.Tree)
	for _, p := range pins {
		net := g.Pins[p]
		oldPC, err := e.lib.PinCap(oldCell, p)
		if err != nil {
			return nil, &EditError{Op: op, Target: gate,
				Reason: fmt.Sprintf("current cell %q: %v", oldCell, err)}
		}
		newPC := info.PinCaps[p]
		delta := newPC - oldPC
		if delta == 0 {
			continue
		}
		src, ok := staged[net]
		if !ok {
			src = e.trees[net].Clone()
			staged[net] = src
			patches = append(patches, treePatch{net: net, tree: src})
		}
		leafName := fmt.Sprintf("pin:%s:%s", g.Name, p)
		leaf := src.NodeIndex(leafName)
		if leaf < 0 {
			return nil, &EditError{Op: op, Target: gate,
				Reason: fmt.Sprintf("tree %s has no leaf %q", net, leafName)}
		}
		if src.Nodes[leaf].C+delta < 0 {
			return nil, &EditError{Op: op, Target: gate,
				Reason: fmt.Sprintf("pin-cap delta %g would make leaf %q capacitance negative", delta, leafName)}
		}
		src.Nodes[leaf].C += delta
	}

	// Apply to a copy-on-write clone of the compiled graph first: a clone
	// failure (it re-resolves arcs, pin caps and X_w) leaves the engine —
	// netlist, trees and graph alike — exactly as it was.
	g2 := e.graph.CloneForEdit()
	if err := g2.SetGateCell(gi, newCell); err != nil {
		return nil, &EditError{Op: op, Target: gate, Reason: err.Error()}
	}
	for _, p := range patches {
		id, ok := g2.NetID(p.net)
		if !ok {
			return nil, &EditError{Op: op, Target: gate,
				Reason: fmt.Sprintf("net %s not compiled", p.net)}
		}
		if err := g2.SetNetTree(id, p.tree); err != nil {
			return nil, &EditError{Op: op, Target: gate, Reason: err.Error()}
		}
	}

	// Commit: swap the cell, install the patched trees and the new graph,
	// seed the frontier.
	g.Cell = newCell
	e.graph = g2
	d := newDirtySet()
	d.gates[gi] = struct{}{}
	e.touchNet(d, g.Output())
	for _, p := range patches {
		e.trees[p.net] = p.tree
		e.touchNet(d, p.net)
	}
	return e.finishEdit(op, d)
}

// SetNetParasitics re-binds a net to a new RC tree — the ECO that follows a
// re-route or a fresh extraction. The tree must be structurally valid and
// carry a leaf for every sink pin of the net (the extractor's
// "pin:<gate>:<pin>" / "pin:PO<i>" convention).
func (e *Engine) SetNetParasitics(net string, tree *rctree.Tree) (*Report, error) {
	e.mu.Lock()
	defer e.mu.Unlock()

	if !e.idx.HasNet(net) {
		return nil, &EditError{Op: "set-net-parasitics", Target: net, Reason: "unknown net"}
	}
	if tree == nil {
		return nil, &EditError{Op: "set-net-parasitics", Target: net, Reason: "nil tree"}
	}
	if err := tree.Validate(); err != nil {
		return nil, &EditError{Op: "set-net-parasitics", Target: net, Reason: err.Error()}
	}
	for si, s := range e.idx.Fanout(net) {
		var leafName string
		if s.Gate >= 0 {
			leafName = fmt.Sprintf("pin:%s:%s", e.nl.Gates[s.Gate].Name, s.Pin)
		} else {
			leafName = fmt.Sprintf("pin:PO%d", si)
		}
		if tree.NodeIndex(leafName) < 0 {
			return nil, &EditError{Op: "set-net-parasitics", Target: net,
				Reason: fmt.Sprintf("tree has no leaf %q", leafName)}
		}
	}

	owned := tree.Clone()
	owned.Net = net
	g2 := e.graph.CloneForEdit()
	id, ok := g2.NetID(net)
	if !ok {
		return nil, &EditError{Op: "set-net-parasitics", Target: net, Reason: "net not compiled"}
	}
	if err := g2.SetNetTree(id, owned); err != nil {
		return nil, &EditError{Op: "set-net-parasitics", Target: net, Reason: err.Error()}
	}
	e.trees[net] = owned
	e.graph = g2
	d := newDirtySet()
	e.touchNet(d, net)
	return e.finishEdit("set-net-parasitics", d)
}

// SetInputSlew overrides the input transition of one primary-input net (the
// per-port set_input_transition ECO). The override lands in
// sta.Options.InputSlews, so a fresh analysis with the engine's Options
// sees the identical boundary condition.
func (e *Engine) SetInputSlew(net string, slew float64) (*Report, error) {
	e.mu.Lock()
	defer e.mu.Unlock()

	if !e.idx.IsInput(net) {
		return nil, &EditError{Op: "set-input-slew", Target: net, Reason: "not a primary input"}
	}
	if slew <= 0 {
		return nil, &EditError{Op: "set-input-slew", Target: net,
			Reason: fmt.Sprintf("slew must be positive, got %g", slew)}
	}
	opt := e.timer.Options()
	slews := make(map[string]float64, len(opt.InputSlews)+1)
	for k, v := range opt.InputSlews {
		slews[k] = v
	}
	slews[net] = slew
	opt.InputSlews = slews
	timer, err := e.timer.WithOptions(opt)
	if err != nil {
		return nil, &EditError{Op: "set-input-slew", Target: net, Reason: err.Error()}
	}
	g2 := e.graph.CloneForEdit()
	if err := g2.SetOptions(opt); err != nil {
		return nil, &EditError{Op: "set-input-slew", Target: net, Reason: err.Error()}
	}
	e.timer = timer
	e.graph = g2

	d := newDirtySet()
	d.inputs[net] = struct{}{}
	return e.finishEdit("set-input-slew", d)
}

// Options returns the engine's effective analysis options (including
// accumulated input-slew overrides) — what a fresh analysis needs to
// reproduce the engine's state.
func (e *Engine) Options() sta.Options {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.timer.Options()
}
