package incsta

import (
	"testing"

	"repro/internal/circuits"
	"repro/internal/sta"
	"repro/internal/stdcell"
)

// benchECOBurst measures a 24-edit resize burst against a four-corner view
// of c5315, either through one batched multi-corner engine or through four
// independent single-corner engines — the pre-batching strategy, where
// every edit's dirty cone is re-propagated once per corner-engine.
func benchECOBurst(b *testing.B, batched bool) {
	corners := []sta.Corner{
		{Name: "typ"},
		{Name: "fastin", InputSlew: 20e-12},
		{Name: "slowext", CapScale: 1.15},
		{Name: "worst", InputSlew: 120e-12, CapScale: 1.3},
	}
	nl, err := circuits.ByName("c5315")
	if err != nil {
		b.Fatal(err)
	}
	circuits.SizeByFanout(nl)
	lib := fullLib()
	trees := buildTrees(nl, lib)
	build := func(cs []sta.Corner) *Engine {
		e, err := New(lib, nl, trees, Config{Corners: sta.CornerSet{Corners: cs}})
		if err != nil {
			b.Fatal(err)
		}
		return e
	}
	var engines []*Engine
	if batched {
		engines = []*Engine{build(corners)}
	} else {
		for _, c := range corners {
			engines = append(engines, build([]sta.Corner{c}))
		}
	}
	strengths := stdcell.Strengths
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < 24; k++ {
			g := nl.Gates[(i*24+k)*37%len(nl.Gates)].Name
			s := strengths[k%len(strengths)]
			for _, e := range engines {
				if _, err := e.ResizeCell(g, s); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

func BenchmarkECOBurst4CornersSeparate(b *testing.B) { benchECOBurst(b, false) }
func BenchmarkECOBurst4CornersBatched(b *testing.B)  { benchECOBurst(b, true) }
