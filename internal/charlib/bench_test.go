package charlib

import (
	"context"
	"testing"

	"repro/internal/waveform"
)

// Monte-Carlo throughput benchmarks: MCArc is the unit of work every
// characterisation grid point pays, so its ns/op bounds the whole
// library-characterisation wall clock.

func benchMCArc(b *testing.B, cell string, samples int) {
	cfg := DefaultConfig()
	arc := Arc{Cell: cell, Pin: "A", InEdge: waveform.Rising}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.MCArc(context.Background(), arc, 20e-12, 2e-15, samples, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMCArc(b *testing.B)     { benchMCArc(b, "INVx2", 64) }
func BenchmarkMCArcNAND(b *testing.B) { benchMCArc(b, "NAND2x2", 64) }
func BenchmarkMeasureArcOnce(b *testing.B) {
	cfg := DefaultConfig()
	arc := Arc{Cell: "INVx2", Pin: "A", InEdge: waveform.Rising}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.MeasureArcOnce(arc, 20e-12, 2e-15, nil); err != nil {
			b.Fatal(err)
		}
	}
}
