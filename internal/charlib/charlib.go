// Package charlib characterises standard cells by Monte-Carlo transient
// simulation, playing the role of the paper's HSPICE + LVF characterisation
// flow: for a timing arc (cell, input pin, edge) at an operating condition
// (input slew S, output load C) it produces delay/slew samples, their first
// four moments and the empirical nσ quantiles that the N-sigma model is
// fitted against.
package charlib

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/stdcell"
	"repro/internal/variation"
	"repro/internal/waveform"
)

// Arc identifies a timing arc: a cell, the switching input pin, and the
// input edge direction. All library cells invert, so the output edge is
// always the opposite of InEdge.
type Arc struct {
	Cell   string        `json:"cell"`
	Pin    string        `json:"pin"`
	InEdge waveform.Edge `json:"inEdge"`
}

func (a Arc) String() string {
	return fmt.Sprintf("%s/%s (%s in)", a.Cell, a.Pin, a.InEdge)
}

// Config bundles the technology, library, variation model and simulator
// detail knobs shared by all characterisation runs.
type Config struct {
	Tech *device.Tech
	Lib  *stdcell.Library
	Var  *variation.Model

	// Steps is the number of base timesteps per transient (default 400).
	Steps int
	// Workers bounds Monte-Carlo parallelism (default GOMAXPROCS).
	Workers int
}

// DefaultConfig returns a Config over the default 28-nm-class technology.
func DefaultConfig() *Config {
	tech := device.Default28nm()
	return &Config{
		Tech: tech,
		Lib:  stdcell.NewLibrary(tech),
		Var:  variation.Default28nm(),
	}
}

func (c *Config) steps() int {
	if c.Steps <= 0 {
		return 400
	}
	return c.Steps
}

func (c *Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// inputStartTime is the quiet interval before the input ramp begins, giving
// the DC operating point room to settle numerically.
const inputStartTime = 5e-12

// estimateTau returns a crude nominal time constant of the arc, used only
// to size the simulation window.
func (c *Config) estimateTau(cell *stdcell.Cell, loadC float64) float64 {
	// Effective drive current: a unit inverter's on current scaled by the
	// cell strength, derated by the stack depth.
	nUnit := c.Tech.NominalParams(device.NMOS, c.Tech.Wmin)
	ion := nUnit.OnCurrent(c.Tech.Vdd) * float64(cell.Strength) / float64(cell.Stack)
	ctot := loadC + cell.OutputCap() + 2e-16
	return ctot * c.Tech.Vdd / ion
}

// MeasureArcOnce runs a single transient of one arc instance and measures
// delay and output slew. sampler may be nil for a nominal run. extraTau
// stretches the simulation window (used on settle-failure retries).
func (c *Config) MeasureArcOnce(arc Arc, slew, loadC float64, sampler *stdcell.Sampler) (waveform.StageMeasurement, error) {
	cell := c.Lib.Cell(arc.Cell)
	if cell == nil {
		return waveform.StageMeasurement{}, fmt.Errorf("charlib: unknown cell %q", arc.Cell)
	}
	if !cell.HasInput(arc.Pin) {
		return waveform.StageMeasurement{}, fmt.Errorf("charlib: %s has no pin %q", arc.Cell, arc.Pin)
	}
	tau := c.estimateTau(cell, loadC)
	window := 30 * tau
	for attempt := 0; attempt < 4; attempt++ {
		m, err := c.measureAttempt(cell, arc, slew, loadC, sampler, window)
		if err == nil && m.Settled {
			return m, nil
		}
		if err != nil && attempt == 3 {
			return m, fmt.Errorf("charlib: %s S=%.3g C=%.3g: %w", arc, slew, loadC, err)
		}
		window *= 3
	}
	return waveform.StageMeasurement{}, fmt.Errorf("charlib: %s did not settle", arc)
}

func (c *Config) measureAttempt(cell *stdcell.Cell, arc Arc, slew, loadC float64,
	sampler *stdcell.Sampler, window float64) (waveform.StageMeasurement, error) {
	ck := circuit.New()
	vdd := ck.NodeByName("vdd")
	ck.AddSource(vdd, circuit.DC(c.Tech.Vdd))
	out := ck.NodeByName("out")
	in := ck.NodeByName("in")

	ramp := circuit.Ramp{T0: inputStartTime, TRamp: waveform.RampTimeForSlew(slew)}
	if arc.InEdge == waveform.Rising {
		ramp.V0, ramp.V1 = 0, c.Tech.Vdd
	} else {
		ramp.V0, ramp.V1 = c.Tech.Vdd, 0
	}
	ck.AddSource(in, ramp)

	pins := map[string]circuit.Node{"vdd": vdd, "Y": out, arc.Pin: in}
	for pin, level := range cell.SensitizingLevels(arc.Pin) {
		n := ck.NodeByName("bias_" + pin)
		if level {
			ck.AddSource(n, circuit.DC(c.Tech.Vdd))
		} else {
			ck.AddSource(n, circuit.DC(0))
		}
		pins[pin] = n
	}
	cell.Build(ck, pins, sampler)
	ck.AddCapacitor(out, circuit.Ground, loadC)

	tstop := inputStartTime + ramp.TRamp + window
	res, err := ck.Transient(circuit.SimOptions{TStop: tstop, DT: tstop / float64(c.steps())})
	if err != nil {
		return waveform.StageMeasurement{}, err
	}
	// The input is an ideal ramp: its 50 % crossing is analytic. The output
	// search starts at the ramp onset so early (negative-delay) switches of
	// fast cells under slow inputs are still captured.
	inCross := inputStartTime + 0.5*ramp.TRamp
	outEdge := arc.InEdge.Opposite()
	return waveform.MeasureStage(nil, nil, inCross, arc.InEdge,
		res.Times, res.Waveform(out), outEdge, c.Tech.Vdd, inputStartTime)
}

// Samples holds Monte-Carlo measurements of one arc at one operating point.
type Samples struct {
	Delay   []float64
	OutSlew []float64
}

// Moments returns the first four moments of the delay samples.
func (s *Samples) Moments() stats.Moments { return stats.ComputeMoments(s.Delay) }

// SigmaQuantiles returns the empirical delay quantiles at the seven paper
// sigma levels.
func (s *Samples) SigmaQuantiles() map[int]float64 { return stats.SigmaQuantiles(s.Delay) }

// MCArc runs n Monte-Carlo samples of the arc at (slew, loadC). Sample i
// derives its variation draws from seed's i-th sub-stream, so results are
// independent of worker count. Rare non-settling samples are retried with a
// longer window inside MeasureArcOnce; hard failures abort the run.
func (c *Config) MCArc(arc Arc, slew, loadC float64, n int, seed uint64) (*Samples, error) {
	out := &Samples{Delay: make([]float64, n), OutSlew: make([]float64, n)}
	base := rng.New(seed)
	var wg sync.WaitGroup
	errCh := make(chan error, c.workers())
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	for w := 0; w < c.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				r := base.At(i)
				sampler := &stdcell.Sampler{
					Model:  c.Var,
					Corner: c.Var.SampleCorner(r),
					R:      r,
				}
				m, err := c.MeasureArcOnce(arc, slew, loadC, sampler)
				if err != nil {
					select {
					case errCh <- fmt.Errorf("sample %d: %w", i, err):
					default:
					}
					return
				}
				out.Delay[i] = m.Delay
				out.OutSlew[i] = m.OutSlew
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	return out, nil
}
