// Package charlib characterises standard cells by Monte-Carlo transient
// simulation, playing the role of the paper's HSPICE + LVF characterisation
// flow: for a timing arc (cell, input pin, edge) at an operating condition
// (input slew S, output load C) it produces delay/slew samples, their first
// four moments and the empirical nσ quantiles that the N-sigma model is
// fitted against.
//
// Characterisation is the most expensive and failure-prone stage of the
// pipeline, so it is fault-tolerant at sample granularity: a hard-failed
// sample is retried under the configured resilience.RetryPolicy (fresh RNG
// sub-stream, exponentially widened simulation window) and, if it still
// fails, quarantined — the moments are computed over the survivors, subject
// to the Config.MaxFailFraction budget. Worker panics are captured and
// classified; cancellation via context stops all workers promptly.
package charlib

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/stdcell"
	"repro/internal/variation"
	"repro/internal/waveform"
)

// Arc identifies a timing arc: a cell, the switching input pin, and the
// input edge direction. All library cells invert, so the output edge is
// always the opposite of InEdge.
type Arc struct {
	Cell   string        `json:"cell"`
	Pin    string        `json:"pin"`
	InEdge waveform.Edge `json:"inEdge"`
}

func (a Arc) String() string {
	return fmt.Sprintf("%s/%s (%s in)", a.Cell, a.Pin, a.InEdge)
}

// Fault describes one Monte-Carlo sample attempt to the fault-injection
// hook.
type Fault struct {
	Arc     Arc
	Slew    float64
	Load    float64
	Sample  int
	Attempt int
}

// Config bundles the technology, library, variation model and simulator
// detail knobs shared by all characterisation runs.
type Config struct {
	Tech *device.Tech
	Lib  *stdcell.Library
	Var  *variation.Model

	// Steps is the number of base timesteps per transient (default 400).
	Steps int
	// Workers bounds Monte-Carlo parallelism (default GOMAXPROCS).
	Workers int

	// Retry bounds per-sample retries (zero value: resilience defaults —
	// four attempts, 3x window backoff, perturbed RNG sub-streams).
	Retry resilience.RetryPolicy
	// MaxFailFraction is the per-grid-point quarantine budget: the largest
	// fraction of samples that may fail after retries before the run is
	// aborted with a *resilience.BudgetError. Zero means the default
	// (DefaultMaxFailFraction); a negative value forbids any quarantine.
	MaxFailFraction float64
	// MCTol enables adaptive Monte-Carlo early termination: when positive,
	// MCArc draws samples in deterministic blocks and stops as soon as the
	// 95 % confidence half-widths of both the delay mean and the delay σ
	// fall below MCTol × mean delay — or at the requested ceiling,
	// whichever comes first. 0 (the default) disables adaptation: every run
	// draws its full budget. For a fixed (seed, tolerance) the stopping
	// point is deterministic and independent of Workers, and the drawn
	// samples are a bit-identical prefix of the full-budget run (sample i
	// always derives from seed's i-th sub-stream).
	MCTol float64
	// MCFloor is the minimum sample count adaptive runs draw before
	// convergence is first tested (default DefaultMCFloor, clamped to the
	// requested count). Ignored when MCTol is 0.
	MCFloor int

	// FaultInject, when non-nil, is consulted before every sample attempt;
	// a non-nil return fails that attempt with the returned error. It
	// exists so tests can exercise quarantine, retry and budget paths
	// deterministically.
	FaultInject func(Fault) error

	// solvers pools compiled-solver caches (circuit.SolverCache) across
	// Monte-Carlo workers: each worker checks one out for the duration of
	// its sample loop, so the stamp program and symbolic factorisation of a
	// topology are compiled once per worker instead of once per transient.
	// The zero value works, so struct-literal Configs pool too.
	solvers sync.Pool
}

// AcquireSolvers checks a compiled-solver cache out of the Config's pool
// for one worker's exclusive use (a SolverCache is not safe for concurrent
// use). Return it with ReleaseSolvers so later workers inherit the compiled
// stamp programs. Simulations run through a pooled cache produce
// bit-identical results to uncached runs.
func (c *Config) AcquireSolvers() *circuit.SolverCache {
	if sc, ok := c.solvers.Get().(*circuit.SolverCache); ok {
		return sc
	}
	return circuit.NewSolverCache()
}

// ReleaseSolvers returns a cache obtained from AcquireSolvers to the pool.
func (c *Config) ReleaseSolvers(sc *circuit.SolverCache) {
	if sc != nil {
		c.solvers.Put(sc)
	}
}

// DefaultMaxFailFraction is the quarantine budget used when
// Config.MaxFailFraction is zero: 2 % of samples per grid point.
const DefaultMaxFailFraction = 0.02

// DefaultMCFloor is the minimum adaptive Monte-Carlo sample count before
// convergence is first tested (Config.MCFloor = 0).
const DefaultMCFloor = 64

// mcBlock is the sample increment between convergence re-tests once the
// floor has been drawn. Fixed block boundaries keep the stopping point
// deterministic regardless of worker count.
const mcBlock = 32

// mcZ is the normal z-score of the two-sided 95 % confidence interval the
// adaptive stopping rule uses.
const mcZ = 1.96

// DefaultConfig returns a Config over the default 28-nm-class technology.
func DefaultConfig() *Config {
	tech := device.Default28nm()
	return &Config{
		Tech: tech,
		Lib:  stdcell.NewLibrary(tech),
		Var:  variation.Default28nm(),
	}
}

func (c *Config) steps() int {
	if c.Steps <= 0 {
		return 400
	}
	return c.Steps
}

func (c *Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// maxFailBudget returns the largest tolerated quarantine count out of n.
func (c *Config) maxFailBudget(n int) int {
	frac := c.MaxFailFraction
	if frac == 0 {
		frac = DefaultMaxFailFraction
	}
	if frac < 0 {
		return 0
	}
	return int(frac * float64(n))
}

// mcFloor returns the effective adaptive floor for an n-sample budget.
func (c *Config) mcFloor(n int) int {
	floor := c.MCFloor
	if floor <= 0 {
		floor = DefaultMCFloor
	}
	if floor > n {
		floor = n
	}
	return floor
}

// mcConverged applies the adaptive stopping rule to the surviving delay
// samples drawn so far (in sample-index order): both the mean's and the
// standard deviation's 95 % confidence half-widths must fall below
// tol × mean delay. Fewer than eight survivors never converge — the four
// downstream moments need meaningful support.
func mcConverged(delays []float64, tol float64) bool {
	m := len(delays)
	if m < 8 {
		return false
	}
	mom := stats.ComputeMoments(delays)
	if !(mom.Mean > 0) {
		return false
	}
	lim := tol * mom.Mean
	meanHW := mcZ * mom.Std / math.Sqrt(float64(m))
	sigmaHW := mcZ * mom.Std / math.Sqrt(2*float64(m-1))
	return meanHW <= lim && sigmaHW <= lim
}

func (c *Config) failFraction() float64 {
	if c.MaxFailFraction == 0 {
		return DefaultMaxFailFraction
	}
	if c.MaxFailFraction < 0 {
		return 0
	}
	return c.MaxFailFraction
}

// inputStartTime is the quiet interval before the input ramp begins, giving
// the DC operating point room to settle numerically.
const inputStartTime = 5e-12

// estimateTau returns a crude nominal time constant of the arc, used only
// to size the simulation window.
func (c *Config) estimateTau(cell *stdcell.Cell, loadC float64) float64 {
	// Effective drive current: a unit inverter's on current scaled by the
	// cell strength, derated by the stack depth.
	nUnit := c.Tech.NominalParams(device.NMOS, c.Tech.Wmin)
	ion := nUnit.OnCurrent(c.Tech.Vdd) * float64(cell.Strength) / float64(cell.Stack)
	ctot := loadC + cell.OutputCap() + 2e-16
	return ctot * c.Tech.Vdd / ion
}

// arcCell resolves and validates the arc's cell and pin, classifying
// failures as input errors (never retried).
func (c *Config) arcCell(arc Arc) (*stdcell.Cell, error) {
	cell := c.Lib.Cell(arc.Cell)
	if cell == nil {
		return nil, resilience.WrapClass(resilience.ClassInput, arc.String(),
			fmt.Errorf("charlib: unknown cell %q", arc.Cell))
	}
	if !cell.HasInput(arc.Pin) {
		return nil, resilience.WrapClass(resilience.ClassInput, arc.String(),
			fmt.Errorf("charlib: %s has no pin %q", arc.Cell, arc.Pin))
	}
	return cell, nil
}

// measureArcAttempt runs exactly one transient of the arc with the
// simulation window scaled by windowScale, returning a classified
// resilience.ErrNonSettle when the output fails to reach its rail.
func (c *Config) measureArcAttempt(arc Arc, slew, loadC float64,
	sampler *stdcell.Sampler, windowScale float64, cache *circuit.SolverCache) (waveform.StageMeasurement, error) {
	cell, err := c.arcCell(arc)
	if err != nil {
		return waveform.StageMeasurement{}, err
	}
	window := 30 * c.estimateTau(cell, loadC) * windowScale
	m, err := c.measureAttempt(cell, arc, slew, loadC, sampler, window, cache)
	if err != nil {
		return m, err
	}
	if !m.Settled {
		return m, resilience.ErrNonSettle
	}
	return m, nil
}

// MeasureArcOnce runs a single transient of one arc instance and measures
// delay and output slew, retrying per Config.Retry with an exponentially
// widened simulation window. sampler may be nil for a nominal run; it is
// reused as-is across attempts (RNG perturbation applies only to the
// Monte-Carlo loop, which owns the sampler's sub-streams).
func (c *Config) MeasureArcOnce(arc Arc, slew, loadC float64, sampler *stdcell.Sampler) (waveform.StageMeasurement, error) {
	cache := c.AcquireSolvers()
	defer c.ReleaseSolvers(cache)
	pol := c.Retry
	var m waveform.StageMeasurement
	var err error
	for attempt := 0; attempt < pol.Attempts(); attempt++ {
		m, err = c.measureArcAttempt(arc, slew, loadC, sampler, pol.WindowScale(attempt), cache)
		if err == nil {
			return m, nil
		}
		if !resilience.Classify(err).Retryable() {
			break
		}
	}
	return m, fmt.Errorf("charlib: %s S=%.3g C=%.3g: %w", arc, slew, loadC, err)
}

func (c *Config) measureAttempt(cell *stdcell.Cell, arc Arc, slew, loadC float64,
	sampler *stdcell.Sampler, window float64, cache *circuit.SolverCache) (waveform.StageMeasurement, error) {
	ck := circuit.New()
	vdd := ck.NodeByName("vdd")
	ck.AddSource(vdd, circuit.DC(c.Tech.Vdd))
	out := ck.NodeByName("out")
	in := ck.NodeByName("in")

	ramp := circuit.Ramp{T0: inputStartTime, TRamp: waveform.RampTimeForSlew(slew)}
	if arc.InEdge == waveform.Rising {
		ramp.V0, ramp.V1 = 0, c.Tech.Vdd
	} else {
		ramp.V0, ramp.V1 = c.Tech.Vdd, 0
	}
	ck.AddSource(in, ramp)

	pins := map[string]circuit.Node{"vdd": vdd, "Y": out, arc.Pin: in}
	for pin, level := range cell.SensitizingLevels(arc.Pin) {
		n := ck.NodeByName("bias_" + pin)
		if level {
			ck.AddSource(n, circuit.DC(c.Tech.Vdd))
		} else {
			ck.AddSource(n, circuit.DC(0))
		}
		pins[pin] = n
	}
	cell.Build(ck, pins, sampler)
	ck.AddCapacitor(out, circuit.Ground, loadC)

	tstop := inputStartTime + ramp.TRamp + window
	res, err := ck.TransientCached(cache, circuit.SimOptions{TStop: tstop, DT: tstop / float64(c.steps())})
	if err != nil {
		return waveform.StageMeasurement{}, err
	}
	// The input is an ideal ramp: its 50 % crossing is analytic. The output
	// search starts at the ramp onset so early (negative-delay) switches of
	// fast cells under slow inputs are still captured.
	inCross := inputStartTime + 0.5*ramp.TRamp
	outEdge := arc.InEdge.Opposite()
	return waveform.MeasureStage(nil, nil, inCross, arc.InEdge,
		res.Times, res.Waveform(out), outEdge, c.Tech.Vdd, inputStartTime)
}

// Samples holds Monte-Carlo measurements of one arc at one operating point.
// Delay and OutSlew contain the surviving samples only, in sample-index
// order; quarantined samples are listed in Quarantined.
type Samples struct {
	Delay   []float64
	OutSlew []float64

	// Requested is the sample count the run was asked for (the adaptive
	// ceiling).
	Requested int
	// Drawn is the sample count actually attempted — equal to Requested
	// unless adaptive Monte-Carlo (Config.MCTol) stopped early.
	Drawn int
	// Converged reports that the adaptive stopping rule fired before the
	// ceiling; always false when Config.MCTol is 0.
	Converged bool
	// Retried counts samples that failed at least once but eventually
	// succeeded.
	Retried int
	// Quarantined lists the samples dropped after exhausting retries.
	Quarantined []resilience.SampleFailure
}

// Moments returns the first four moments of the surviving delay samples.
func (s *Samples) Moments() stats.Moments { return stats.ComputeMoments(s.Delay) }

// SigmaQuantiles returns the empirical delay quantiles at the seven paper
// sigma levels.
func (s *Samples) SigmaQuantiles() map[int]float64 { return stats.SigmaQuantiles(s.Delay) }

// sampleOutcome is the per-sample result a worker records.
type sampleOutcome struct {
	delay, outSlew float64
	attempts       int
	ok             bool
	err            error
}

// measureSample runs one Monte-Carlo sample with bounded retries: attempt k
// uses a fresh variation sub-stream (per the retry policy) and a simulation
// window widened by WindowBackoff^k. Panics from the solver stack are
// captured and classified rather than propagated.
func (c *Config) measureSample(ctx context.Context, arc Arc, slew, loadC float64,
	base *rng.Stream, i int, cache *circuit.SolverCache) sampleOutcome {
	pol := c.Retry
	var out sampleOutcome
	for attempt := 0; attempt < pol.Attempts(); attempt++ {
		out.attempts = attempt + 1
		if err := ctx.Err(); err != nil {
			out.err = resilience.Wrap(fmt.Sprintf("sample %d", i), err)
			return out
		}
		r := base.At(i)
		if lbl := pol.RNGLabel(attempt); lbl != 0 {
			r = r.Split(lbl)
		}
		var m waveform.StageMeasurement
		err := resilience.Safely(fmt.Sprintf("sample %d attempt %d", i, attempt), func() error {
			if c.FaultInject != nil {
				if ferr := c.FaultInject(Fault{Arc: arc, Slew: slew, Load: loadC, Sample: i, Attempt: attempt}); ferr != nil {
					return ferr
				}
			}
			sampler := &stdcell.Sampler{
				Model:  c.Var,
				Corner: c.Var.SampleCorner(r),
				R:      r,
			}
			var merr error
			m, merr = c.measureArcAttempt(arc, slew, loadC, sampler, pol.WindowScale(attempt), cache)
			return merr
		})
		if err == nil {
			out.delay, out.outSlew, out.ok = m.Delay, m.OutSlew, true
			if attempt > 0 {
				out.err = nil
			}
			return out
		}
		out.err = err
		class := resilience.Classify(err)
		if class == resilience.ClassPanic && attempt+1 < pol.Attempts() {
			continue // a panic on one variate draw may not recur on a perturbed one
		}
		if !class.Retryable() {
			return out
		}
	}
	return out
}

// MCArc runs up to n Monte-Carlo samples of the arc at (slew, loadC).
// Sample i derives its variation draws from seed's i-th sub-stream, so
// results are independent of worker count. A failed sample is retried per
// Config.Retry and quarantined if it keeps failing; the run aborts early
// only when the context is canceled, when the quarantine budget
// (Config.MaxFailFraction, measured against the requested n) is exceeded,
// or on a non-retryable input error.
//
// With Config.MCTol set, sampling is adaptive: blocks are drawn until the
// delay mean and σ confidence intervals converge (see Config.MCTol), so an
// easy arc may stop well under n. The drawn samples are always a
// bit-identical prefix of the full-budget run with the same seed.
func (c *Config) MCArc(ctx context.Context, arc Arc, slew, loadC float64, n int, seed uint64) (*Samples, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if _, err := c.arcCell(arc); err != nil {
		return nil, err
	}
	var span *obs.Span
	if obs.Trace.Enabled() {
		ctx, span = obs.StartSpan(ctx, "mc_arc",
			obs.A("arc", arc.String()), obs.A("slew", slew), obs.A("load", loadC), obs.A("samples", n))
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	base := rng.New(seed)
	delays := make([]float64, n)
	slews := make([]float64, n)
	ok := make([]bool, n)
	budget := c.maxFailBudget(n)

	var (
		mu       sync.Mutex
		failures []resilience.SampleFailure
		retried  int
		fatalErr error
	)
	t0 := time.Now()
	defer func() {
		mu.Lock()
		nRetried, nQuar := retried, len(failures)
		mu.Unlock()
		hMCArcSeconds.ObserveSince(t0)
		hMCArcRetries.Observe(float64(nRetried))
		mMCRetried.Add(uint64(nRetried))
		mMCQuarantined.Add(uint64(nQuar))
		span.SetAttr("retried", nRetried)
		span.SetAttr("quarantined", nQuar)
		span.End()
	}()
	fatal := func(err error) {
		mu.Lock()
		if fatalErr == nil {
			fatalErr = err
		}
		mu.Unlock()
		cancel() // stop the other workers promptly: the run is doomed
	}

	// runBlock draws samples [lo, hi) through the worker pool. Each block is
	// a barrier: the adaptive loop only tests convergence on completed,
	// index-contiguous prefixes, which is what makes the stopping point
	// independent of worker scheduling.
	runBlock := func(lo, hi int) {
		next := make(chan int, hi-lo)
		for i := lo; i < hi; i++ {
			next <- i
		}
		close(next)
		var wg sync.WaitGroup
		for w := 0; w < c.workers(); w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				cache := c.AcquireSolvers()
				defer c.ReleaseSolvers(cache)
				for i := range next {
					if runCtx.Err() != nil {
						return
					}
					ts := time.Now()
					out := c.measureSample(runCtx, arc, slew, loadC, base, i, cache)
					hMCSampleSeconds.ObserveSince(ts)
					if out.ok {
						mMCSamples.Inc()
						delays[i], slews[i], ok[i] = out.delay, out.outSlew, true
						if out.attempts > 1 {
							mu.Lock()
							retried++
							mu.Unlock()
						}
						continue
					}
					class := resilience.Classify(out.err)
					switch class {
					case resilience.ClassCanceled:
						return
					case resilience.ClassInput:
						fatal(out.err)
						return
					}
					mu.Lock()
					failures = append(failures, resilience.SampleFailure{
						Index:    i,
						Attempts: out.attempts,
						Class:    class,
						Err:      out.err.Error(),
					})
					overBudget := len(failures) > budget
					nFailed := len(failures)
					mu.Unlock()
					if overBudget {
						fatal(&resilience.BudgetError{
							Op:              fmt.Sprintf("%s S=%.3g C=%.3g", arc, slew, loadC),
							Failed:          nFailed,
							Total:           n,
							MaxFailFraction: c.failFraction(),
						})
						return
					}
				}
			}()
		}
		wg.Wait()
	}
	aborted := func() bool {
		if runCtx.Err() != nil {
			return true
		}
		mu.Lock()
		defer mu.Unlock()
		return fatalErr != nil
	}

	drawn, converged := 0, false
	if c.MCTol <= 0 {
		runBlock(0, n)
		drawn = n
	} else {
		var prefix []float64
		for drawn < n {
			target := drawn + mcBlock
			if drawn == 0 {
				target = c.mcFloor(n)
			}
			if target > n {
				target = n
			}
			runBlock(drawn, target)
			drawn = target
			if aborted() {
				break
			}
			prefix = prefix[:0]
			for i := 0; i < drawn; i++ {
				if ok[i] {
					prefix = append(prefix, delays[i])
				}
			}
			if mcConverged(prefix, c.MCTol) {
				converged = true
				break
			}
		}
	}
	hMCArcDrawn.Observe(float64(drawn))
	if converged {
		mMCEarlyStops.Inc()
	}
	span.SetAttr("drawn", drawn)
	span.SetAttr("converged", converged)

	if err := ctx.Err(); err != nil {
		return nil, resilience.Wrap(fmt.Sprintf("%s S=%.3g C=%.3g", arc, slew, loadC), err)
	}
	if fatalErr != nil {
		return nil, fatalErr
	}

	out := &Samples{
		Delay:       make([]float64, 0, drawn),
		OutSlew:     make([]float64, 0, drawn),
		Requested:   n,
		Drawn:       drawn,
		Converged:   converged,
		Retried:     retried,
		Quarantined: failures,
	}
	sort.Slice(out.Quarantined, func(a, b int) bool {
		return out.Quarantined[a].Index < out.Quarantined[b].Index
	})
	for i := 0; i < drawn; i++ {
		if ok[i] {
			out.Delay = append(out.Delay, delays[i])
			out.OutSlew = append(out.OutSlew, slews[i])
		}
	}
	if len(out.Delay) < 2 {
		// Unreachable under a sane budget, but guard the moment math.
		return nil, &resilience.BudgetError{
			Op:              fmt.Sprintf("%s S=%.3g C=%.3g", arc, slew, loadC),
			Failed:          drawn - len(out.Delay),
			Total:           n,
			MaxFailFraction: c.failFraction(),
		}
	}
	return out, nil
}
