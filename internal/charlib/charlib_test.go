package charlib

import (
	"context"
	"math"
	"reflect"
	"testing"

	"repro/internal/waveform"
)

// smallCfg shrinks the simulator detail so MC tests stay fast.
func smallCfg() *Config {
	cfg := DefaultConfig()
	cfg.Steps = 250
	return cfg
}

func TestMeasureArcOnceNominal(t *testing.T) {
	cfg := smallCfg()
	arc := Arc{Cell: "INVx1", Pin: "A", InEdge: waveform.Rising}
	m, err := cfg.MeasureArcOnce(arc, Reference.Slew, Reference.Load, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Unit inverter at the paper's reference point: delay in the ~5–50 ps
	// band for a 0.6 V near-threshold 28-nm-class cell.
	if m.Delay < 5e-12 || m.Delay > 50e-12 {
		t.Fatalf("nominal INVx1 delay %v out of expected band", m.Delay)
	}
	if m.OutSlew <= 0 {
		t.Fatalf("output slew %v", m.OutSlew)
	}
	if !m.Settled {
		t.Fatal("nominal run did not settle")
	}
}

func TestMeasureArcBothEdges(t *testing.T) {
	cfg := smallCfg()
	for _, e := range []waveform.Edge{waveform.Rising, waveform.Falling} {
		arc := Arc{Cell: "NAND2x2", Pin: "B", InEdge: e}
		m, err := cfg.MeasureArcOnce(arc, 20e-12, 1e-15, nil)
		if err != nil {
			t.Fatalf("%s: %v", e, err)
		}
		if m.Delay <= -20e-12 || m.Delay > 100e-12 {
			t.Fatalf("%s delay %v implausible", e, m.Delay)
		}
	}
}

func TestMeasureArcValidation(t *testing.T) {
	cfg := smallCfg()
	if _, err := cfg.MeasureArcOnce(Arc{Cell: "GHOSTx1", Pin: "A"}, 1e-11, 1e-15, nil); err == nil {
		t.Fatal("unknown cell accepted")
	}
	if _, err := cfg.MeasureArcOnce(Arc{Cell: "INVx1", Pin: "Q"}, 1e-11, 1e-15, nil); err == nil {
		t.Fatal("unknown pin accepted")
	}
}

func TestMCArcDeterministicAcrossWorkers(t *testing.T) {
	arc := Arc{Cell: "INVx1", Pin: "A", InEdge: waveform.Rising}
	run := func(workers int) *Samples {
		cfg := smallCfg()
		cfg.Workers = workers
		s, err := cfg.MCArc(context.Background(), arc, Reference.Slew, Reference.Load, 24, 42)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a := run(1)
	b := run(8)
	if !reflect.DeepEqual(a.Delay, b.Delay) {
		t.Fatal("MC results depend on worker count")
	}
	c := run(4)
	if !reflect.DeepEqual(a.OutSlew, c.OutSlew) {
		t.Fatal("slew samples depend on worker count")
	}
}

func TestMCArcSeedSensitivity(t *testing.T) {
	cfg := smallCfg()
	arc := Arc{Cell: "INVx1", Pin: "A", InEdge: waveform.Rising}
	a, err := cfg.MCArc(context.Background(), arc, Reference.Slew, Reference.Load, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cfg.MCArc(context.Background(), arc, Reference.Slew, Reference.Load, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Delay, b.Delay) {
		t.Fatal("different seeds produced identical samples")
	}
}

func TestMCArcDistributionShape(t *testing.T) {
	cfg := smallCfg()
	arc := Arc{Cell: "INVx1", Pin: "A", InEdge: waveform.Rising}
	s, err := cfg.MCArc(context.Background(), arc, Reference.Slew, Reference.Load, 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	m := s.Moments()
	if m.Mean <= 0 || m.Std <= 0 {
		t.Fatalf("degenerate moments %+v", m)
	}
	// Near-threshold delay must be right-skewed — the premise of the whole
	// paper. (The kurtosis bound is loose: its sampling error at 400
	// samples is a few tenths.)
	if m.Skewness < 0.2 {
		t.Errorf("skewness %v: near-threshold delay should lean right", m.Skewness)
	}
	if m.Kurtosis < 2.5 {
		t.Errorf("kurtosis %v implausibly light-tailed", m.Kurtosis)
	}
	q := s.SigmaQuantiles()
	if !(q[-3] < q[0] && q[0] < q[3]) {
		t.Fatalf("quantiles not ordered: %v", q)
	}
	// Positive skew ⇒ the +3σ tail stretches further than the -3σ tail.
	if (q[3] - q[0]) <= (q[0] - q[-3]) {
		t.Errorf("tail asymmetry missing: %v", q)
	}
}

func TestDelayIncreasesWithSlewAndLoad(t *testing.T) {
	cfg := smallCfg()
	arc := Arc{Cell: "INVx1", Pin: "A", InEdge: waveform.Rising}
	base, err := cfg.MeasureArcOnce(arc, 10e-12, 0.4e-15, nil)
	if err != nil {
		t.Fatal(err)
	}
	slower, err := cfg.MeasureArcOnce(arc, 300e-12, 0.4e-15, nil)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := cfg.MeasureArcOnce(arc, 10e-12, 6e-15, nil)
	if err != nil {
		t.Fatal(err)
	}
	if slower.Delay <= base.Delay {
		t.Errorf("slew 300ps delay %v not above base %v", slower.Delay, base.Delay)
	}
	if loaded.Delay <= 2*base.Delay {
		t.Errorf("6fF load delay %v not well above base %v", loaded.Delay, base.Delay)
	}
	if loaded.OutSlew <= base.OutSlew {
		t.Errorf("loaded output slew %v not above base %v", loaded.OutSlew, base.OutSlew)
	}
}

func TestCharacterizeArcGrid(t *testing.T) {
	cfg := smallCfg()
	arc := Arc{Cell: "INVx1", Pin: "A", InEdge: waveform.Rising}
	ch, err := cfg.CharacterizeArc(context.Background(), arc,
		[]float64{10e-12, 100e-12},
		[]float64{0.4e-15, 2e-15},
		60, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Grid[0].Op != Reference {
		t.Fatalf("grid[0] is %+v, want the reference point", ch.Grid[0].Op)
	}
	if len(ch.Grid) != 4 {
		t.Fatalf("grid has %d points want 4 (2x2 with ref included)", len(ch.Grid))
	}
	for _, g := range ch.Grid {
		if g.Moments.Mean <= 0 || g.Samples != 60 {
			t.Fatalf("bad grid point %+v", g)
		}
		if len(g.Quantiles) != 7 {
			t.Fatalf("grid point missing quantiles: %v", g.Quantiles)
		}
	}
}

func TestCharacterizeArcUnionsReference(t *testing.T) {
	cfg := smallCfg()
	arc := Arc{Cell: "INVx1", Pin: "A", InEdge: waveform.Rising}
	// Axes that do NOT contain the reference values.
	ch, err := cfg.CharacterizeArc(context.Background(), arc, []float64{50e-12}, []float64{1e-15}, 40, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Axes become {50, 10(ref)} × {1, 0.4(ref)} = 4 points.
	if len(ch.Grid) != 4 {
		t.Fatalf("reference union failed: %d points", len(ch.Grid))
	}
}

func TestCharacterizeArcRejectsTinySampleCount(t *testing.T) {
	cfg := smallCfg()
	arc := Arc{Cell: "INVx1", Pin: "A", InEdge: waveform.Rising}
	if _, err := cfg.CharacterizeArc(context.Background(), arc, []float64{1e-11}, []float64{1e-15}, 4, 1); err == nil {
		t.Fatal("4 samples accepted for four-moment characterisation")
	}
}

func TestScaleLoads(t *testing.T) {
	in := []float64{1e-15, 2e-15}
	if got := ScaleLoads(in, 1); &got[0] != &in[0] {
		t.Fatal("strength 1 should return the input unchanged")
	}
	got := ScaleLoads(in, 4)
	if math.Abs(got[1]-8e-15) > 1e-27 || in[1] != 2e-15 {
		t.Fatal("scaling wrong or mutated input")
	}
}
