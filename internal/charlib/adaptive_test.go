package charlib

import (
	"context"
	"testing"

	"repro/internal/waveform"
)

var adaptiveArc = Arc{Cell: "INVx1", Pin: "A", InEdge: waveform.Rising}

// TestAdaptiveMCStopsEarlyOnEasyArc: a unit inverter at the reference point
// has a tight delay distribution, so a loose tolerance must converge well
// under the ceiling.
func TestAdaptiveMCStopsEarlyOnEasyArc(t *testing.T) {
	cfg := smallCfg()
	cfg.MCTol = 0.05
	s, err := cfg.MCArc(context.Background(), adaptiveArc, Reference.Slew, Reference.Load, 512, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Converged {
		t.Fatal("easy arc did not converge before the 512-sample ceiling")
	}
	if s.Drawn >= 256 {
		t.Fatalf("easy arc drew %d of 512 samples; expected well under half", s.Drawn)
	}
	if s.Drawn < DefaultMCFloor {
		t.Fatalf("converged below the %d-sample floor: drew %d", DefaultMCFloor, s.Drawn)
	}
	if s.Requested != 512 {
		t.Fatalf("Requested = %d, want the 512 ceiling", s.Requested)
	}
	if len(s.Delay) != s.Drawn {
		t.Fatalf("%d survivors of %d drawn (no faults injected)", len(s.Delay), s.Drawn)
	}
}

// TestAdaptiveMCIsPrefixOfFullRun: the adaptive run's samples must be a
// bit-identical prefix of the full-budget run with the same seed — sample i
// always derives from the same RNG sub-stream.
func TestAdaptiveMCIsPrefixOfFullRun(t *testing.T) {
	const n, seed = 256, 7
	full, err := smallCfg().MCArc(context.Background(), adaptiveArc, Reference.Slew, Reference.Load, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	if full.Drawn != n || full.Converged {
		t.Fatalf("MCTol=0 run must draw the full budget: drawn %d converged %v", full.Drawn, full.Converged)
	}
	cfg := smallCfg()
	cfg.MCTol = 0.06
	cfg.MCFloor = 32
	adp, err := cfg.MCArc(context.Background(), adaptiveArc, Reference.Slew, Reference.Load, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	if !adp.Converged || adp.Drawn >= n {
		t.Fatalf("adaptive run did not stop early: drawn %d", adp.Drawn)
	}
	for i := range adp.Delay {
		if adp.Delay[i] != full.Delay[i] || adp.OutSlew[i] != full.OutSlew[i] {
			t.Fatalf("sample %d diverges from the full-budget run", i)
		}
	}
}

// TestAdaptiveMCDeterministicAcrossWorkers: block boundaries are fixed, so
// the stopping point and every sample are worker-count independent.
func TestAdaptiveMCDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) *Samples {
		cfg := smallCfg()
		cfg.MCTol = 0.06
		cfg.MCFloor = 32
		cfg.Workers = workers
		s, err := cfg.MCArc(context.Background(), adaptiveArc, Reference.Slew, Reference.Load, 256, 9)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := run(1), run(4)
	if a.Drawn != b.Drawn || a.Converged != b.Converged {
		t.Fatalf("stopping point depends on workers: %d/%v vs %d/%v", a.Drawn, a.Converged, b.Drawn, b.Converged)
	}
	if len(a.Delay) != len(b.Delay) {
		t.Fatalf("survivor count differs: %d vs %d", len(a.Delay), len(b.Delay))
	}
	for i := range a.Delay {
		if a.Delay[i] != b.Delay[i] || a.OutSlew[i] != b.OutSlew[i] {
			t.Fatalf("sample %d differs across worker counts", i)
		}
	}
}

// TestAdaptiveMCTolZeroBitIdentical: tolerance 0 disables adaptation
// entirely — two full-budget runs with the same seed are bit-identical and
// never report convergence.
func TestAdaptiveMCTolZeroBitIdentical(t *testing.T) {
	run := func() *Samples {
		s, err := smallCfg().MCArc(context.Background(), adaptiveArc, Reference.Slew, Reference.Load, 96, 3)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := run(), run()
	if a.Drawn != 96 || a.Converged {
		t.Fatalf("MCTol=0: drawn %d converged %v", a.Drawn, a.Converged)
	}
	for i := range a.Delay {
		if a.Delay[i] != b.Delay[i] || a.OutSlew[i] != b.OutSlew[i] {
			t.Fatalf("sample %d not deterministic", i)
		}
	}
}

// TestAdaptiveMCFloorRespected: convergence is never tested before the
// floor, even under an absurdly loose tolerance.
func TestAdaptiveMCFloorRespected(t *testing.T) {
	cfg := smallCfg()
	cfg.MCTol = 10 // converges at the first test
	cfg.MCFloor = 48
	s, err := cfg.MCArc(context.Background(), adaptiveArc, Reference.Slew, Reference.Load, 256, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Converged || s.Drawn != 48 {
		t.Fatalf("want convergence exactly at the 48-sample floor, got drawn %d converged %v", s.Drawn, s.Converged)
	}
}
