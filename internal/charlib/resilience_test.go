package charlib

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"repro/internal/circuit"
	"repro/internal/resilience"
	"repro/internal/waveform"
)

var testArc = Arc{Cell: "INVx1", Pin: "A", InEdge: waveform.Rising}

// failSamples returns a fault injector that fails the given sample indices
// on every attempt.
func failSamples(indices ...int) func(Fault) error {
	bad := map[int]bool{}
	for _, i := range indices {
		bad[i] = true
	}
	return func(f Fault) error {
		if bad[f.Sample] {
			return circuit.ErrNoConvergence
		}
		return nil
	}
}

func TestMCArcQuarantineContract(t *testing.T) {
	// The acceptance contract: with k < MaxFailFraction·n samples forced to
	// fail, MCArc completes, the report lists exactly the quarantined
	// samples, and the surviving samples are bit-identical to the clean
	// run's at the same indices.
	const n = 60
	clean, err := smallCfg().MCArc(context.Background(), testArc, Reference.Slew, Reference.Load, n, 42)
	if err != nil {
		t.Fatal(err)
	}

	cfg := smallCfg()
	cfg.MaxFailFraction = 0.1 // budget 6
	cfg.FaultInject = failSamples(3, 17)
	got, err := cfg.MCArc(context.Background(), testArc, Reference.Slew, Reference.Load, n, 42)
	if err != nil {
		t.Fatal(err)
	}

	if len(got.Quarantined) != 2 || got.Quarantined[0].Index != 3 || got.Quarantined[1].Index != 17 {
		t.Fatalf("quarantined %+v, want exactly samples 3 and 17", got.Quarantined)
	}
	for _, q := range got.Quarantined {
		if q.Class != resilience.ClassConvergence {
			t.Errorf("sample %d classified %v, want convergence", q.Index, q.Class)
		}
		if q.Attempts != resilience.DefaultRetryPolicy.MaxAttempts {
			t.Errorf("sample %d gave up after %d attempts, want %d",
				q.Index, q.Attempts, resilience.DefaultRetryPolicy.MaxAttempts)
		}
	}
	if got.Requested != n || len(got.Delay) != n-2 {
		t.Fatalf("survivors %d/%d, want %d", len(got.Delay), got.Requested, n-2)
	}
	// Survivors must match the clean run exactly with indices 3, 17 removed:
	// quarantine may not disturb any other sample's variation draws.
	want := make([]float64, 0, n-2)
	for i, d := range clean.Delay {
		if i != 3 && i != 17 {
			want = append(want, d)
		}
	}
	if !reflect.DeepEqual(got.Delay, want) {
		t.Fatal("surviving samples differ from the clean run")
	}
	// Moments over 58 of 60 samples stay within a few percent of the clean
	// run's.
	cm, qm := clean.Moments(), got.Moments()
	if rel := (qm.Mean - cm.Mean) / cm.Mean; rel > 0.05 || rel < -0.05 {
		t.Errorf("quarantine shifted the mean by %.1f%%", rel*100)
	}
}

func TestMCArcRetryThenSucceed(t *testing.T) {
	cfg := smallCfg()
	var mu sync.Mutex
	attemptsSeen := map[int]int{}
	cfg.FaultInject = func(f Fault) error {
		mu.Lock()
		attemptsSeen[f.Sample]++
		mu.Unlock()
		if f.Sample == 5 && f.Attempt == 0 {
			return resilience.ErrNonSettle
		}
		return nil
	}
	got, err := cfg.MCArc(context.Background(), testArc, Reference.Slew, Reference.Load, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Quarantined) != 0 {
		t.Fatalf("retry-then-succeed quarantined %+v", got.Quarantined)
	}
	if got.Retried != 1 {
		t.Fatalf("Retried=%d, want 1", got.Retried)
	}
	if len(got.Delay) != 20 {
		t.Fatalf("survivors %d, want all 20", len(got.Delay))
	}
	if attemptsSeen[5] != 2 {
		t.Fatalf("sample 5 ran %d attempts, want 2", attemptsSeen[5])
	}
}

func TestMCArcBudgetExceeded(t *testing.T) {
	cfg := smallCfg()
	cfg.MaxFailFraction = 0.05 // budget 3 out of 60
	cfg.FaultInject = failSamples(1, 5, 9, 13, 21, 33)
	_, err := cfg.MCArc(context.Background(), testArc, Reference.Slew, Reference.Load, 60, 3)
	var be *resilience.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("got %v, want *resilience.BudgetError", err)
	}
	if resilience.Classify(err) != resilience.ClassBudget {
		t.Fatalf("budget error classified %v", resilience.Classify(err))
	}
}

func TestMCArcNoQuarantineWhenForbidden(t *testing.T) {
	cfg := smallCfg()
	cfg.MaxFailFraction = -1 // any persistent failure is fatal
	cfg.FaultInject = failSamples(4)
	_, err := cfg.MCArc(context.Background(), testArc, Reference.Slew, Reference.Load, 30, 3)
	var be *resilience.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("got %v, want *resilience.BudgetError", err)
	}
}

func TestMCArcPanicCapturedAndQuarantined(t *testing.T) {
	cfg := smallCfg()
	cfg.MaxFailFraction = 0.2
	cfg.FaultInject = func(f Fault) error {
		if f.Sample == 7 {
			panic("synthetic solver blow-up")
		}
		return nil
	}
	got, err := cfg.MCArc(context.Background(), testArc, Reference.Slew, Reference.Load, 30, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Quarantined) != 1 || got.Quarantined[0].Index != 7 {
		t.Fatalf("quarantined %+v, want sample 7", got.Quarantined)
	}
	if got.Quarantined[0].Class != resilience.ClassPanic {
		t.Fatalf("panic classified %v", got.Quarantined[0].Class)
	}
}

func TestMCArcCancellationMidRun(t *testing.T) {
	cfg := smallCfg()
	cfg.Workers = 2
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	var mu sync.Mutex
	seen := 0
	cfg.FaultInject = func(Fault) error {
		mu.Lock()
		seen++
		trip := seen >= 10
		mu.Unlock()
		if trip {
			once.Do(cancel)
		}
		return nil
	}
	_, err := cfg.MCArc(ctx, testArc, Reference.Slew, Reference.Load, 200, 5)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want a wrapped context.Canceled", err)
	}
	if resilience.Classify(err) != resilience.ClassCanceled {
		t.Fatalf("cancellation classified %v", resilience.Classify(err))
	}
	// Prompt shutdown: nowhere near all 200 samples may have started.
	mu.Lock()
	defer mu.Unlock()
	if seen > 100 {
		t.Fatalf("%d samples started after cancellation, workers did not stop promptly", seen)
	}
}

func TestCharacterizeArcDegradedPointReport(t *testing.T) {
	cfg := smallCfg()
	cfg.MaxFailFraction = 0.2
	cfg.FaultInject = failSamples(2)
	ch, err := cfg.CharacterizeArc(context.Background(), testArc,
		[]float64{Reference.Slew}, []float64{Reference.Load}, 12, 9)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Report == nil {
		t.Fatal("characterisation carries no report")
	}
	if len(ch.Grid) != 1 {
		t.Fatalf("grid %d points, want the lone reference point", len(ch.Grid))
	}
	if ch.Grid[0].Samples != 11 {
		t.Fatalf("grid point records %d survivors, want 11", ch.Grid[0].Samples)
	}
	if ch.Report.Quarantined != 1 {
		t.Fatalf("report counts %d quarantined, want 1", ch.Report.Quarantined)
	}
	if dp := ch.Report.DegradedPoints(); len(dp) != 1 {
		t.Fatalf("degraded points %v, want one", dp)
	}
	if ch.Grid[0].Moments.Mean <= 0 {
		t.Fatal("moments over survivors degenerate")
	}
}

func TestMCArcInputErrorNotRetried(t *testing.T) {
	cfg := smallCfg()
	calls := 0
	cfg.FaultInject = func(Fault) error { calls++; return nil }
	_, err := cfg.MCArc(context.Background(), Arc{Cell: "GHOSTx1", Pin: "A"}, 1e-11, 1e-15, 16, 1)
	if resilience.Classify(err) != resilience.ClassInput {
		t.Fatalf("unknown cell classified %v (%v)", resilience.Classify(err), err)
	}
	if calls != 0 {
		t.Fatalf("input validation ran %d sample attempts", calls)
	}
}
