package charlib

import (
	"testing"

	"repro/internal/waveform"
)

// TestMCArcPooledDeterministic is the pooling half of the RNG contract:
// sample i draws from seed's i-th sub-stream, so the results must be
// bit-identical whether one worker (one long-lived solver cache) or many
// workers (pool churn, caches migrating between goroutines) run the
// samples. Under -race this doubles as the concurrency check on the pooled
// caches.
func TestMCArcPooledDeterministic(t *testing.T) {
	arc := Arc{Cell: "INVx2", Pin: "A", InEdge: waveform.Rising}
	run := func(workers int) *Samples {
		cfg := DefaultConfig()
		cfg.Workers = workers
		s, err := cfg.MCArc(nil, arc, 20e-12, 2e-15, 24, 7)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return s
	}
	one := run(1)
	eight := run(8)
	if len(one.Delay) != len(eight.Delay) {
		t.Fatalf("sample counts differ: %d vs %d", len(one.Delay), len(eight.Delay))
	}
	for i := range one.Delay {
		if one.Delay[i] != eight.Delay[i] || one.OutSlew[i] != eight.OutSlew[i] {
			t.Fatalf("sample %d: 1-worker (%v, %v) vs 8-worker (%v, %v) — pooled MC not bit-identical",
				i, one.Delay[i], one.OutSlew[i], eight.Delay[i], eight.OutSlew[i])
		}
	}
}

// TestMeasureArcOnceColdVsWarmCache: the first call compiles its solvers,
// later calls on the same Config rebind pooled ones; the measurements must
// agree exactly.
func TestMeasureArcOnceColdVsWarmCache(t *testing.T) {
	cfg := DefaultConfig()
	arc := Arc{Cell: "NAND2x2", Pin: "A", InEdge: waveform.Falling}
	cold, err := cfg.MeasureArcOnce(arc, 15e-12, 1.5e-15, nil)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := cfg.MeasureArcOnce(arc, 15e-12, 1.5e-15, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Delay != warm.Delay || cold.OutSlew != warm.OutSlew {
		t.Fatalf("cold (%v, %v) vs warm (%v, %v): pooled solver changed the measurement",
			cold.Delay, cold.OutSlew, warm.Delay, warm.OutSlew)
	}
}
