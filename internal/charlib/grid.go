package charlib

import (
	"context"
	"fmt"
	"time"

	"repro/internal/resilience"
	"repro/internal/stats"
)

// OpPoint is an operating condition: input slew and output load.
type OpPoint struct {
	Slew float64 `json:"slew"` // seconds (10-90)
	Load float64 `json:"load"` // farads
}

// Reference operating condition of the paper: S_ref = 10 ps, C_ref = 0.4 fF.
var Reference = OpPoint{Slew: 10e-12, Load: 0.4e-15}

// GridPoint is the characterisation outcome at one operating condition.
type GridPoint struct {
	Op          OpPoint         `json:"op"`
	Moments     stats.Moments   `json:"moments"`
	Quantiles   map[int]float64 `json:"quantiles"` // sigma level → delay (s)
	MeanOutSlew float64         `json:"meanOutSlew"`
	Samples     int             `json:"samples"`
}

// ArcChar is the full Monte-Carlo characterisation of one timing arc over
// an operating-condition grid. Grid[0] is always the reference point.
type ArcChar struct {
	Arc  Arc         `json:"arc"`
	Ref  OpPoint     `json:"ref"`
	Grid []GridPoint `json:"grid"`
	// Report records the fault handling of this characterisation (retries,
	// quarantined samples, degraded points, wall time).
	Report *resilience.ArcReport `json:"report,omitempty"`
}

// RefPoint returns the reference grid point.
func (a *ArcChar) RefPoint() *GridPoint { return &a.Grid[0] }

// DefaultSlewGrid spans the paper's Fig. 4 sweep (10 ps … 300 ps) extended
// to 600 ps: near-threshold slews on deep paths exceed the paper's plotted
// range and the LUT must cover what STA will look up.
func DefaultSlewGrid() []float64 {
	return []float64{10e-12, 40e-12, 100e-12, 200e-12, 350e-12, 600e-12}
}

// DefaultLoadGrid spans the paper's Fig. 4 sweep (0.1 fF … 6 fF) for a
// unit-strength cell. Characterisation scales this axis by the cell's drive
// strength (ScaleLoads) so every cell is tabulated over its own realistic
// FO1–FO8 operating range.
func DefaultLoadGrid() []float64 {
	return []float64{0.1e-15, 0.4e-15, 1.2e-15, 3.0e-15, 6.0e-15, 10.0e-15}
}

// ScaleLoads multiplies a load axis by a cell strength.
func ScaleLoads(loads []float64, strength int) []float64 {
	if strength <= 1 {
		return loads
	}
	out := make([]float64, len(loads))
	for i, l := range loads {
		out[i] = l * float64(strength)
	}
	return out
}

// withValue returns xs with v appended unless already present.
func withValue(xs []float64, v float64) []float64 {
	for _, x := range xs {
		if x == v {
			return xs
		}
	}
	return append(append([]float64(nil), xs...), v)
}

// CharacterizeArc measures the arc at the reference point and at every
// (slew, load) pair from the two axis grids, with n Monte-Carlo samples per
// point. The resulting grid is the cross product, so it supports fitting
// the cross terms ΔS·ΔC of eqs. (2)–(3). Sample-level faults are retried
// and quarantined per Config (see MCArc); the outcome is recorded on the
// returned ArcChar's Report, and GridPoint.Samples reflects the surviving
// count of each point.
func (c *Config) CharacterizeArc(ctx context.Context, arc Arc, slews, loads []float64, n int, seed uint64) (*ArcChar, error) {
	if n < 8 {
		return nil, resilience.WrapClass(resilience.ClassInput, arc.String(),
			fmt.Errorf("charlib: %d samples cannot support four moments", n))
	}
	t0 := time.Now()
	out := &ArcChar{Arc: arc, Ref: Reference, Report: &resilience.ArcReport{Arc: arc.String()}}
	// The grid must contain the reference point and be a full cross
	// product (the LUT requires it), so union the reference values into
	// the axes.
	slews = withValue(slews, Reference.Slew)
	loads = withValue(loads, Reference.Load)
	points := []OpPoint{Reference}
	for _, s := range slews {
		for _, l := range loads {
			if s == Reference.Slew && l == Reference.Load {
				continue
			}
			points = append(points, OpPoint{Slew: s, Load: l})
		}
	}
	for i, op := range points {
		// Decorrelate points while keeping each deterministic.
		smp, err := c.MCArc(ctx, arc, op.Slew, op.Load, n, seed+uint64(i)*0x9e37)
		if err != nil {
			return nil, fmt.Errorf("charlib: point S=%.3g C=%.3g: %w", op.Slew, op.Load, err)
		}
		out.Grid = append(out.Grid, GridPoint{
			Op:          op,
			Moments:     smp.Moments(),
			Quantiles:   smp.SigmaQuantiles(),
			MeanOutSlew: stats.Mean(smp.OutSlew),
			Samples:     len(smp.Delay),
		})
		// Samples is what the point actually drew: under adaptive early
		// stopping (MCTol > 0) converging below the budget is success, not
		// degradation, so the survivor ratio is judged against Drawn.
		out.Report.AddPoint(resilience.PointReport{
			Slew:        op.Slew,
			Load:        op.Load,
			Samples:     smp.Drawn,
			Survivors:   len(smp.Delay),
			Retried:     smp.Retried,
			Quarantined: smp.Quarantined,
		})
	}
	out.Report.Wall = time.Since(t0)
	return out, nil
}
