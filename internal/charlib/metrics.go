package charlib

import "repro/internal/obs"

// Characterisation metrics on the process-wide registry. Sample-granular
// counters are single atomic adds; the histograms are observed once per
// sample / grid point, far off the transient-solver hot loop.
var (
	mMCSamples = obs.Default().Counter("charlib_mc_samples_total",
		"Monte-Carlo samples that produced a measurement.")
	mMCRetried = obs.Default().Counter("charlib_mc_retries_total",
		"Samples that failed at least once but succeeded on retry.")
	mMCQuarantined = obs.Default().Counter("charlib_mc_quarantined_total",
		"Samples quarantined after exhausting their retries.")
	hMCSampleSeconds = obs.Default().Histogram("charlib_mc_sample_seconds",
		"Wall time of one Monte-Carlo sample, retries included.")
	hMCArcSeconds = obs.Default().Histogram("charlib_mc_arc_seconds",
		"Wall time of one MCArc grid-point run.")
	hMCArcRetries = obs.Default().Histogram("charlib_mc_arc_retries",
		"Retried samples per MCArc grid-point run.")
	mMCEarlyStops = obs.Default().Counter("charlib_mc_early_stops_total",
		"MCArc runs that converged before the full sample budget.")
	hMCArcDrawn = obs.Default().Histogram("charlib_mc_arc_drawn_samples",
		"Samples drawn per MCArc grid-point run (early stops included).")
)
