package stats

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestRunningMatchesBatch(t *testing.T) {
	r := rng.New(61)
	xs := make([]float64, 5000)
	var run Running
	for i := range xs {
		// A deliberately skewed, shifted sample.
		xs[i] = 1e-11 + 2e-12*math.Exp(0.5*r.NormFloat64())
		run.Add(xs[i])
	}
	batch := ComputeMoments(xs)
	got := run.Moments()
	if math.Abs(got.Mean-batch.Mean) > 1e-18 {
		t.Errorf("mean %v vs %v", got.Mean, batch.Mean)
	}
	if math.Abs(got.Std-batch.Std)/batch.Std > 1e-10 {
		t.Errorf("std %v vs %v", got.Std, batch.Std)
	}
	if math.Abs(got.Skewness-batch.Skewness) > 1e-8 {
		t.Errorf("skew %v vs %v", got.Skewness, batch.Skewness)
	}
	if math.Abs(got.Kurtosis-batch.Kurtosis) > 1e-8 {
		t.Errorf("kurt %v vs %v", got.Kurtosis, batch.Kurtosis)
	}
	if run.N() != len(xs) {
		t.Errorf("N %d", run.N())
	}
}

func TestRunningMergeEqualsSequential(t *testing.T) {
	r := rng.New(62)
	var all, a, b Running
	for i := 0; i < 3000; i++ {
		x := r.NormFloat64()*2 + 7
		all.Add(x)
		if i%3 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	ma, mall := a.Moments(), all.Moments()
	if math.Abs(ma.Mean-mall.Mean) > 1e-12 ||
		math.Abs(ma.Std-mall.Std) > 1e-12 ||
		math.Abs(ma.Skewness-mall.Skewness) > 1e-9 ||
		math.Abs(ma.Kurtosis-mall.Kurtosis) > 1e-9 {
		t.Fatalf("merge diverged: %+v vs %+v", ma, mall)
	}
}

func TestRunningMergeEdgeCases(t *testing.T) {
	var a, b Running
	b.Add(1)
	b.Add(2)
	a.Merge(&b) // merge into empty
	if a.N() != 2 {
		t.Fatal("merge into empty lost data")
	}
	var empty Running
	a.Merge(&empty) // merge empty into non-empty
	if a.N() != 2 {
		t.Fatal("merging an empty accumulator changed the count")
	}
}

func TestRunningPanicsOnTiny(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic with one sample")
		}
	}()
	var r Running
	r.Add(1)
	r.Moments()
}
