package stats

import "math"

// Running accumulates the first four central moments incrementally
// (Welford / Pébay update), letting Monte-Carlo drivers track moments
// without retaining samples — useful for long runs where only the moments
// (not quantiles) are needed, e.g. convergence monitoring.
type Running struct {
	n          float64
	mean       float64
	m2, m3, m4 float64
}

// Add folds one observation into the accumulator.
func (r *Running) Add(x float64) {
	n1 := r.n
	r.n++
	delta := x - r.mean
	deltaN := delta / r.n
	deltaN2 := deltaN * deltaN
	term1 := delta * deltaN * n1
	r.mean += deltaN
	r.m4 += term1*deltaN2*(r.n*r.n-3*r.n+3) + 6*deltaN2*r.m2 - 4*deltaN*r.m3
	r.m3 += term1*deltaN*(r.n-2) - 3*deltaN*r.m2
	r.m2 += term1
}

// N returns the number of observations.
func (r *Running) N() int { return int(r.n) }

// Moments returns the accumulated [µ, σ, γ, κ]. It panics with fewer than
// two observations, matching ComputeMoments.
func (r *Running) Moments() Moments {
	if r.n < 2 {
		panic("stats: moments need at least two samples")
	}
	variance := r.m2 / r.n
	std := math.Sqrt(variance)
	m := Moments{Mean: r.mean, Std: std}
	if std > 0 {
		m.Skewness = (r.m3 / r.n) / (variance * std)
		m.Kurtosis = (r.m4 / r.n) / (variance * variance)
	} else {
		m.Kurtosis = 3
	}
	return m
}

// Merge combines another accumulator into this one (parallel reduction),
// using the pairwise update of Pébay (2008).
func (r *Running) Merge(o *Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = *o
		return
	}
	n := r.n + o.n
	delta := o.mean - r.mean
	d2 := delta * delta
	d3 := d2 * delta
	d4 := d3 * delta
	na, nb := r.n, o.n

	m2 := r.m2 + o.m2 + d2*na*nb/n
	m3 := r.m3 + o.m3 + d3*na*nb*(na-nb)/(n*n) +
		3*delta*(na*o.m2-nb*r.m2)/n
	m4 := r.m4 + o.m4 + d4*na*nb*(na*na-na*nb+nb*nb)/(n*n*n) +
		6*d2*(na*na*o.m2+nb*nb*r.m2)/(n*n) +
		4*delta*(na*o.m3-nb*r.m3)/n

	r.mean += delta * nb / n
	r.n = n
	r.m2, r.m3, r.m4 = m2, m3, m4
}
