// Package stats implements the descriptive statistics the N-sigma model is
// built on: the first four moments (mean, standard deviation, skewness,
// kurtosis), empirical quantiles at the paper's sigma levels, histograms and
// distribution-distance measures used to validate fitted models.
package stats

import (
	"errors"
	"math"
	"sort"
)

// Moments holds the first four standardised moments of a sample:
// mean μ, standard deviation σ, skewness γ, and kurtosis κ.
// Kurtosis follows the paper's convention (Pearson, not excess): a Gaussian
// has κ = 3.
type Moments struct {
	Mean     float64 `json:"mean"`
	Std      float64 `json:"std"`
	Skewness float64 `json:"skewness"`
	Kurtosis float64 `json:"kurtosis"`
}

// ComputeMoments returns the sample moments of xs. It panics on fewer than
// two samples because σ (and everything built on it) is undefined there.
func ComputeMoments(xs []float64) Moments {
	n := len(xs)
	if n < 2 {
		panic("stats: moments need at least two samples")
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(n)
	var m2, m3, m4 float64
	for _, x := range xs {
		d := x - mean
		d2 := d * d
		m2 += d2
		m3 += d2 * d
		m4 += d2 * d2
	}
	m2 /= float64(n)
	m3 /= float64(n)
	m4 /= float64(n)
	std := math.Sqrt(m2)
	var skew, kurt float64
	if std > 0 {
		skew = m3 / (m2 * std)
		kurt = m4 / (m2 * m2)
	} else {
		kurt = 3 // degenerate point mass: treat as Gaussian-like
	}
	return Moments{Mean: mean, Std: std, Skewness: skew, Kurtosis: kurt}
}

// Quantile returns the p-quantile (0 ≤ p ≤ 1) of xs using linear
// interpolation between order statistics (Hyndman-Fan type 7, the default of
// R/NumPy and what MC quantile extraction in the paper amounts to).
// xs need not be sorted.
func Quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: quantile of empty sample")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return QuantileSorted(sorted, p)
}

// QuantileSorted is Quantile for an already ascending-sorted sample.
func QuantileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		panic("stats: quantile of empty sample")
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	h := p * float64(n-1)
	lo := int(math.Floor(h))
	frac := h - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// SigmaLevels are the paper's seven sigma levels, -3σ…+3σ.
var SigmaLevels = []int{-3, -2, -1, 0, 1, 2, 3}

// SigmaProbability returns the Gaussian CDF value Φ(n) that defines the
// "nσ quantile" naming convention of the paper (Table I: 0.14 %, 2.28 %,
// 15.87 %, 50 %, 84.13 %, 97.72 %, 99.86 % for n = -3…+3).
func SigmaProbability(n float64) float64 {
	return 0.5 * (1 + math.Erf(n/math.Sqrt2))
}

// SigmaQuantiles extracts the empirical quantiles of xs at each of the seven
// sigma levels, keyed by level index -3…+3.
func SigmaQuantiles(xs []float64) map[int]float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make(map[int]float64, len(SigmaLevels))
	for _, n := range SigmaLevels {
		out[n] = QuantileSorted(sorted, SigmaProbability(float64(n)))
	}
	return out
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 {
	return ComputeMoments(xs).Std
}

// MinMax returns the extrema of xs.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// RelErr returns |est−ref|/|ref| as a percentage, the error metric used
// throughout the paper's tables. A zero reference yields NaN unless the
// estimate is also zero.
func RelErr(est, ref float64) float64 {
	if ref == 0 {
		if est == 0 {
			return 0
		}
		return math.NaN()
	}
	return math.Abs(est-ref) / math.Abs(ref) * 100
}

// ErrNotEnoughSamples reports an operation attempted with too few samples.
var ErrNotEnoughSamples = errors.New("stats: not enough samples")

// Histogram bins xs into nbins equal-width bins over [lo, hi] and returns
// bin centres and normalised densities (integrating to 1). It is the basis
// of the Fig. 2 / Fig. 7 PDF plots.
func Histogram(xs []float64, nbins int, lo, hi float64) (centres, density []float64, err error) {
	if len(xs) == 0 {
		return nil, nil, ErrNotEnoughSamples
	}
	if nbins <= 0 || hi <= lo {
		return nil, nil, errors.New("stats: invalid histogram bounds")
	}
	width := (hi - lo) / float64(nbins)
	counts := make([]float64, nbins)
	var total float64
	for _, x := range xs {
		if x < lo || x > hi {
			continue
		}
		b := int((x - lo) / width)
		if b >= nbins {
			b = nbins - 1
		}
		counts[b]++
		total++
	}
	if total == 0 {
		return nil, nil, ErrNotEnoughSamples
	}
	centres = make([]float64, nbins)
	density = make([]float64, nbins)
	for i := range counts {
		centres[i] = lo + (float64(i)+0.5)*width
		density[i] = counts[i] / (total * width)
	}
	return centres, density, nil
}

// KSDistance computes the two-sample Kolmogorov-Smirnov statistic, used by
// tests to check that fitted distributions track the golden MC samples.
func KSDistance(a, b []float64) float64 {
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	var i, j int
	var d float64
	for i < len(as) && j < len(bs) {
		// Advance past ties on both sides together so equal samples never
		// register a spurious CDF gap.
		va, vb := as[i], bs[j]
		if va <= vb {
			i++
		}
		if vb <= va {
			j++
		}
		fa := float64(i) / float64(len(as))
		fb := float64(j) / float64(len(bs))
		if diff := math.Abs(fa - fb); diff > d {
			d = diff
		}
	}
	return d
}

// NormalQuantile returns the standard normal inverse CDF Φ⁻¹(p) using the
// Acklam rational approximation (relative error < 1.15e-9), good enough for
// every quantile transform in this repository.
func NormalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const plow = 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > 1-plow:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// NormalCDF is the standard normal CDF Φ(x).
func NormalCDF(x float64) float64 { return 0.5 * (1 + math.Erf(x/math.Sqrt2)) }
