package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestMomentsGaussian(t *testing.T) {
	r := rng.New(1)
	xs := make([]float64, 400000)
	for i := range xs {
		xs[i] = 5 + 2*r.NormFloat64()
	}
	m := ComputeMoments(xs)
	if math.Abs(m.Mean-5) > 0.02 {
		t.Errorf("mean %v", m.Mean)
	}
	if math.Abs(m.Std-2) > 0.02 {
		t.Errorf("std %v", m.Std)
	}
	if math.Abs(m.Skewness) > 0.03 {
		t.Errorf("skewness %v", m.Skewness)
	}
	if math.Abs(m.Kurtosis-3) > 0.08 {
		t.Errorf("kurtosis %v (want 3: Pearson convention)", m.Kurtosis)
	}
}

func TestMomentsExponentialSkew(t *testing.T) {
	// Exponential: skewness 2, kurtosis 9.
	r := rng.New(2)
	xs := make([]float64, 400000)
	for i := range xs {
		xs[i] = -math.Log(1 - r.Float64())
	}
	m := ComputeMoments(xs)
	if math.Abs(m.Skewness-2) > 0.1 {
		t.Errorf("exponential skewness %v want 2", m.Skewness)
	}
	if math.Abs(m.Kurtosis-9) > 0.6 {
		t.Errorf("exponential kurtosis %v want 9", m.Kurtosis)
	}
}

func TestMomentsPanicsOnTiny(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("single sample did not panic")
		}
	}()
	ComputeMoments([]float64{1})
}

func TestMomentsDegenerate(t *testing.T) {
	m := ComputeMoments([]float64{3, 3, 3, 3})
	if m.Std != 0 || m.Kurtosis != 3 {
		t.Fatalf("degenerate moments: %+v", m)
	}
}

func TestQuantileSmall(t *testing.T) {
	xs := []float64{3, 1, 2}
	if q := Quantile(xs, 0); q != 1 {
		t.Errorf("p=0 → %v", q)
	}
	if q := Quantile(xs, 1); q != 3 {
		t.Errorf("p=1 → %v", q)
	}
	if q := Quantile(xs, 0.5); q != 2 {
		t.Errorf("median → %v", q)
	}
	// Type-7: p=0.25 over {1,2,3} → 1.5
	if q := Quantile(xs, 0.25); math.Abs(q-1.5) > 1e-12 {
		t.Errorf("p=0.25 → %v want 1.5", q)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	r := rng.New(3)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	err := quick.Check(func(aRaw, bRaw float64) bool {
		a := math.Mod(math.Abs(aRaw), 1)
		b := math.Mod(math.Abs(bRaw), 1)
		if a > b {
			a, b = b, a
		}
		return Quantile(xs, a) <= Quantile(xs, b)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSigmaProbabilityTableI(t *testing.T) {
	// The paper's Table I percent-defective column.
	cases := map[int]float64{
		-3: 0.0013499, -2: 0.0227501, -1: 0.1586553, 0: 0.5,
		1: 0.8413447, 2: 0.9772499, 3: 0.9986501,
	}
	for n, want := range cases {
		if got := SigmaProbability(float64(n)); math.Abs(got-want) > 5e-6 {
			t.Errorf("SigmaProbability(%d) = %v want %v", n, got, want)
		}
	}
}

func TestSigmaQuantilesGaussian(t *testing.T) {
	r := rng.New(4)
	xs := make([]float64, 300000)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	q := SigmaQuantiles(xs)
	for _, n := range SigmaLevels {
		if math.Abs(q[n]-float64(n)) > 0.08 {
			t.Errorf("Gaussian %+dσ quantile %v", n, q[n])
		}
	}
}

func TestRelErr(t *testing.T) {
	if e := RelErr(110, 100); math.Abs(e-10) > 1e-12 {
		t.Errorf("RelErr(110,100)=%v", e)
	}
	if e := RelErr(90, 100); math.Abs(e-10) > 1e-12 {
		t.Errorf("RelErr(90,100)=%v", e)
	}
	if e := RelErr(0, 0); e != 0 {
		t.Errorf("RelErr(0,0)=%v", e)
	}
	if !math.IsNaN(RelErr(1, 0)) {
		t.Error("RelErr(1,0) should be NaN")
	}
}

func TestHistogramIntegratesToOne(t *testing.T) {
	r := rng.New(5)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	lo, hi := MinMax(xs)
	centres, density, err := Histogram(xs, 32, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	width := centres[1] - centres[0]
	var area float64
	for _, d := range density {
		area += d * width
	}
	if math.Abs(area-1) > 1e-9 {
		t.Fatalf("histogram area %v", area)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, _, err := Histogram(nil, 4, 0, 1); err == nil {
		t.Error("empty sample accepted")
	}
	if _, _, err := Histogram([]float64{1}, 0, 0, 1); err == nil {
		t.Error("zero bins accepted")
	}
	if _, _, err := Histogram([]float64{1}, 4, 1, 0); err == nil {
		t.Error("inverted bounds accepted")
	}
}

func TestKSDistance(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if d := KSDistance(a, a); d > 1e-12 {
		t.Errorf("KS of identical samples %v", d)
	}
	b := []float64{100, 101, 102}
	if d := KSDistance(a, b); math.Abs(d-1) > 1e-12 {
		t.Errorf("KS of disjoint samples %v want 1", d)
	}
}

func TestNormalQuantileInverseProperty(t *testing.T) {
	err := quick.Check(func(pRaw float64) bool {
		p := math.Mod(math.Abs(pRaw), 0.998) + 0.001
		x := NormalQuantile(p)
		return math.Abs(NormalCDF(x)-p) < 1e-8
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestNormalQuantileKnown(t *testing.T) {
	if q := NormalQuantile(0.5); math.Abs(q) > 1e-9 {
		t.Errorf("median %v", q)
	}
	if q := NormalQuantile(0.9986501); math.Abs(q-3) > 1e-4 {
		t.Errorf("+3σ point %v", q)
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("extreme probabilities should map to infinities")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = %v, %v", lo, hi)
	}
	lo, hi = MinMax(nil)
	if lo != 0 || hi != 0 {
		t.Fatalf("MinMax(nil) = %v, %v", lo, hi)
	}
}

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); math.Abs(m-5) > 1e-12 {
		t.Errorf("mean %v", m)
	}
	if s := Std(xs); math.Abs(s-2) > 1e-12 {
		t.Errorf("std %v", s)
	}
}
