package stdcell

import (
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/rng"
	"repro/internal/variation"
)

func lib() *Library { return NewLibrary(device.Default28nm()) }

func TestLibraryComplete(t *testing.T) {
	l := lib()
	if got := len(l.Names()); got != len(Kinds)*len(Strengths) {
		t.Fatalf("library has %d cells, want %d", got, len(Kinds)*len(Strengths))
	}
	for _, k := range Kinds {
		for _, s := range Strengths {
			c := l.Cell(CellName(k, s))
			if c == nil {
				t.Fatalf("missing %s", CellName(k, s))
			}
			if c.Kind != k || c.Strength != s {
				t.Fatalf("cell %s mislabeled: %+v", c.Name, c)
			}
		}
	}
	if l.Cell("BOGUSx1") != nil {
		t.Fatal("unknown cell should be nil")
	}
}

func TestStackDepths(t *testing.T) {
	l := lib()
	want := map[Kind]int{INV: 1, NAND2: 2, NOR2: 2, AOI2: 2}
	for k, stack := range want {
		if c := l.MustCell(CellName(k, 1)); c.Stack != stack {
			t.Errorf("%s stack %d want %d", k, c.Stack, stack)
		}
	}
}

func TestPinCapScalesWithStrength(t *testing.T) {
	l := lib()
	c1 := l.MustCell("INVx1").PinCap("A")
	c4 := l.MustCell("INVx4").PinCap("A")
	if math.Abs(c4/c1-4) > 1e-9 {
		t.Fatalf("INV pin cap scaling %v want 4", c4/c1)
	}
	if c1 <= 0 {
		t.Fatal("pin cap must be positive")
	}
}

func TestPinCapUnknownPinPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown pin")
		}
	}()
	lib().MustCell("INVx1").PinCap("Z")
}

func TestOutputCapPositive(t *testing.T) {
	for _, c := range lib().Cells() {
		if c.OutputCap() <= 0 {
			t.Errorf("%s output cap %v", c.Name, c.OutputCap())
		}
	}
}

func TestSensitizingLevels(t *testing.T) {
	l := lib()
	// NAND: other inputs high; NOR: low.
	if lv := l.MustCell("NAND2x1").SensitizingLevels("A"); lv["B"] != true {
		t.Error("NAND2 sensitization wrong")
	}
	if lv := l.MustCell("NOR2x1").SensitizingLevels("B"); lv["A"] != false {
		t.Error("NOR2 sensitization wrong")
	}
	// AOI2 (Y = !(A·B + C)).
	aoi := l.MustCell("AOI2x1")
	if lv := aoi.SensitizingLevels("A"); lv["B"] != true || lv["C"] != false {
		t.Errorf("AOI2/A sensitization: %v", lv)
	}
	if lv := aoi.SensitizingLevels("C"); lv["A"] != false || lv["B"] != false {
		t.Errorf("AOI2/C sensitization: %v", lv)
	}
	// Unknown pin panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("unknown pin did not panic")
			}
		}()
		aoi.SensitizingLevels("Q")
	}()
}

func TestBuildDeviceCounts(t *testing.T) {
	l := lib()
	counts := map[Kind]int{INV: 2, NAND2: 4, NOR2: 4, AOI2: 6}
	for k, want := range counts {
		ck := circuit.New()
		vdd := ck.NodeByName("vdd")
		out := ck.NodeByName("out")
		pins := map[string]circuit.Node{"vdd": vdd, "Y": out}
		cell := l.MustCell(CellName(k, 2))
		for _, in := range cell.Inputs {
			pins[in] = ck.NodeByName("in_" + in)
		}
		cell.Build(ck, pins, nil)
		if got := len(ck.Mosfets()); got != want {
			t.Errorf("%s built %d devices want %d", k, got, want)
		}
	}
}

func TestBuildMissingPinPanics(t *testing.T) {
	l := lib()
	ck := circuit.New()
	pins := map[string]circuit.Node{"vdd": ck.NodeByName("vdd"), "Y": ck.NodeByName("out")}
	defer func() {
		if recover() == nil {
			t.Fatal("missing input pin did not panic")
		}
	}()
	l.MustCell("NAND2x1").Build(ck, pins, nil)
}

func TestSamplerNilIsNominal(t *testing.T) {
	l := lib()
	ck := circuit.New()
	pins := map[string]circuit.Node{
		"vdd": ck.NodeByName("vdd"), "Y": ck.NodeByName("out"), "A": ck.NodeByName("a"),
	}
	l.MustCell("INVx1").Build(ck, pins, nil)
	tech := device.Default28nm()
	for _, m := range ck.Mosfets() {
		if m.P.Polarity == device.NMOS && m.P.Vth != tech.VthN {
			t.Fatalf("nominal build shifted Vth: %v", m.P.Vth)
		}
	}
}

func TestSampleCtxKeyedDeterminism(t *testing.T) {
	model := variation.Default28nm()
	build := func(key uint64) []device.Params {
		r := rng.New(77)
		ctx := &SampleCtx{Model: model, Corner: model.SampleCorner(r), Base: r}
		ck := circuit.New()
		pins := map[string]circuit.Node{
			"vdd": ck.NodeByName("vdd"), "Y": ck.NodeByName("out"), "A": ck.NodeByName("a"),
		}
		lib().MustCell("INVx2").Build(ck, pins, ctx.SamplerFor(key))
		var out []device.Params
		for _, m := range ck.Mosfets() {
			out = append(out, m.P)
		}
		return out
	}
	a := build(5)
	b := build(5)
	c := build(6)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same key produced different device parameters")
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different keys produced identical device parameters")
	}
}

func TestSampleCtxNil(t *testing.T) {
	var ctx *SampleCtx
	if ctx.SamplerFor(3) != nil {
		t.Fatal("nil ctx must yield nil sampler")
	}
}

func TestKeyFromString(t *testing.T) {
	if KeyFromString("a") == KeyFromString("b") {
		t.Fatal("distinct strings collided")
	}
	if KeyFromString("x") == 0 || KeyFromString("") == 0 {
		t.Fatal("keys must be nonzero")
	}
	if KeyFromString("gate:U7") != KeyFromString("gate:U7") {
		t.Fatal("key not stable")
	}
}

func TestSamplerVariesCaps(t *testing.T) {
	model := variation.Default28nm()
	r := rng.New(123)
	s := &Sampler{Model: model, Corner: model.SampleCorner(r), R: r}
	tech := device.Default28nm()
	base := tech.NominalParams(device.NMOS, tech.Wmin)
	varied := s.sampleParams(base)
	if varied.Cg == base.Cg {
		t.Fatal("sampler left gate cap unchanged — load-cell wire variability (X_FO) would vanish")
	}
	ratio := varied.Cgd / base.Cgd
	if math.Abs(varied.Cg/base.Cg-ratio) > 1e-12 {
		t.Fatal("cap multipliers inconsistent between Cg and Cgd")
	}
}
