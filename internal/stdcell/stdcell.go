// Package stdcell defines a synthetic transistor-level standard-cell
// library playing the role of the paper's TSMC 28 nm cells: INV, NAND2,
// NOR2 and AOI2 (an AOI21 topology) at drive strengths x1, x2, x4 and x8.
//
// Two structural properties matter to the wire-variability model of the
// paper (eqs. 5–7) and are therefore explicit on every cell: the drive
// Strength (width multiple of the unit inverter) and the Stack depth (the
// number of series transistors in the switching path), because Pelgrom
// averaging makes delay variability shrink as 1/√(stack·strength).
package stdcell

import (
	"fmt"
	"sort"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/rng"
	"repro/internal/variation"
)

// Kind enumerates supported cell topologies.
type Kind string

// Supported cell kinds.
const (
	INV   Kind = "INV"
	NAND2 Kind = "NAND2"
	NOR2  Kind = "NOR2"
	AOI2  Kind = "AOI2" // AOI21: Y = !(A·B + C)
)

// Kinds lists every topology in library order.
var Kinds = []Kind{INV, NAND2, NOR2, AOI2}

// Strengths are the drive strengths built for every kind.
var Strengths = []int{1, 2, 4, 8}

// devSpec describes one transistor of a cell template with symbolic nodes.
type devSpec struct {
	pol     device.Polarity
	wMult   float64 // multiple of the polarity's unit width
	d, g, s string
}

// Cell is one library cell (a specific kind at a specific strength).
type Cell struct {
	Name     string
	Kind     Kind
	Strength int
	Inputs   []string
	Output   string
	// Stack is the worst-case number of series transistors in the
	// switching path (1 for INV, 2 for the two-input gates).
	Stack int

	tech    *device.Tech
	devices []devSpec
}

// Library is the full synthetic cell library for one technology.
type Library struct {
	Tech  *device.Tech
	cells map[string]*Cell
}

// CellName composes the canonical "KINDxS" cell name.
func CellName(k Kind, strength int) string { return fmt.Sprintf("%sx%d", k, strength) }

// NewLibrary builds every kind × strength combination for tech.
func NewLibrary(tech *device.Tech) *Library {
	lib := &Library{Tech: tech, cells: make(map[string]*Cell)}
	for _, k := range Kinds {
		for _, s := range Strengths {
			c := newCell(tech, k, s)
			lib.cells[c.Name] = c
		}
	}
	return lib
}

// Cell returns the named cell or nil.
func (l *Library) Cell(name string) *Cell { return l.cells[name] }

// MustCell returns the named cell, panicking if absent — for internal
// wiring where the name is a compile-time constant.
func (l *Library) MustCell(name string) *Cell {
	c := l.cells[name]
	if c == nil {
		panic("stdcell: unknown cell " + name)
	}
	return c
}

// Names returns all cell names in deterministic order.
func (l *Library) Names() []string {
	names := make([]string, 0, len(l.cells))
	for n := range l.cells {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Cells returns all cells in deterministic (name) order.
func (l *Library) Cells() []*Cell {
	names := l.Names()
	out := make([]*Cell, len(names))
	for i, n := range names {
		out[i] = l.cells[n]
	}
	return out
}

func newCell(tech *device.Tech, k Kind, strength int) *Cell {
	c := &Cell{
		Name:     CellName(k, strength),
		Kind:     k,
		Strength: strength,
		Output:   "Y",
		tech:     tech,
	}
	s := float64(strength)
	pn := tech.PNRatio
	switch k {
	case INV:
		c.Inputs = []string{"A"}
		c.Stack = 1
		c.devices = []devSpec{
			{device.NMOS, s, "Y", "A", "gnd"},
			{device.PMOS, s * pn, "Y", "A", "vdd"},
		}
	case NAND2:
		c.Inputs = []string{"A", "B"}
		c.Stack = 2
		// Series NMOS doubled in width to match unit pull-down resistance.
		c.devices = []devSpec{
			{device.NMOS, 2 * s, "Y", "A", "n1"},
			{device.NMOS, 2 * s, "n1", "B", "gnd"},
			{device.PMOS, s * pn, "Y", "A", "vdd"},
			{device.PMOS, s * pn, "Y", "B", "vdd"},
		}
	case NOR2:
		c.Inputs = []string{"A", "B"}
		c.Stack = 2
		c.devices = []devSpec{
			{device.NMOS, s, "Y", "A", "gnd"},
			{device.NMOS, s, "Y", "B", "gnd"},
			{device.PMOS, 2 * s * pn, "Y", "A", "p1"},
			{device.PMOS, 2 * s * pn, "p1", "B", "vdd"},
		}
	case AOI2:
		// AOI21: Y = !(A·B + C).
		c.Inputs = []string{"A", "B", "C"}
		c.Stack = 2
		c.devices = []devSpec{
			{device.NMOS, 2 * s, "Y", "A", "n1"},
			{device.NMOS, 2 * s, "n1", "B", "gnd"},
			{device.NMOS, s, "Y", "C", "gnd"},
			{device.PMOS, 2 * s * pn, "p1", "A", "vdd"},
			{device.PMOS, 2 * s * pn, "p1", "B", "vdd"},
			{device.PMOS, 2 * s * pn, "Y", "C", "p1"},
		}
	default:
		panic("stdcell: unknown kind " + string(k))
	}
	return c
}

// width returns the physical width of a template device.
func (c *Cell) width(d devSpec) float64 {
	w := c.tech.Wmin * d.wMult
	return w
}

// PinCap returns the nominal input capacitance of pin (F): the summed gate
// capacitance of every transistor driven by it. This is the load a cell
// presents to its fan-in net, used by STA and the layout extractor.
func (c *Cell) PinCap(pin string) float64 {
	var sum float64
	for _, d := range c.devices {
		if d.g == pin {
			sum += c.tech.GateCap(c.width(d))
		}
	}
	if sum == 0 {
		panic(fmt.Sprintf("stdcell: %s has no pin %q", c.Name, pin))
	}
	return sum
}

// OutputCap returns the nominal parasitic capacitance at the cell output
// (drain junctions of devices whose drain is the output).
func (c *Cell) OutputCap() float64 {
	var sum float64
	for _, d := range c.devices {
		if d.d == c.Output {
			sum += c.tech.DrainCap(c.width(d))
		}
	}
	return sum
}

// SensitizingLevels returns, for a timing arc through the given input pin,
// the static logic levels the remaining inputs must hold so that the output
// is the inversion of the pin (all library cells are inverting and unate in
// every input).
func (c *Cell) SensitizingLevels(pin string) map[string]bool {
	lv := make(map[string]bool)
	switch c.Kind {
	case INV:
	case NAND2:
		for _, in := range c.Inputs {
			if in != pin {
				lv[in] = true // non-controlling for NAND
			}
		}
	case NOR2:
		for _, in := range c.Inputs {
			if in != pin {
				lv[in] = false // non-controlling for NOR
			}
		}
	case AOI2:
		// Y = !(A·B + C)
		switch pin {
		case "A":
			lv["B"] = true
			lv["C"] = false
		case "B":
			lv["A"] = true
			lv["C"] = false
		case "C":
			lv["A"] = false
			lv["B"] = false
		default:
			panic(fmt.Sprintf("stdcell: %s has no pin %q", c.Name, pin))
		}
	}
	if pin != "" && !c.HasInput(pin) {
		panic(fmt.Sprintf("stdcell: %s has no pin %q", c.Name, pin))
	}
	return lv
}

// HasInput reports whether pin is an input of the cell.
func (c *Cell) HasInput(pin string) bool {
	for _, in := range c.Inputs {
		if in == pin {
			return true
		}
	}
	return false
}

// Sampler bundles everything needed to draw one Monte-Carlo instance of a
// cell: the variation model, the per-sample global corner and the local
// random stream. A nil *Sampler instantiates nominal devices.
type Sampler struct {
	Model  *variation.Model
	Corner variation.Corner
	R      *rng.Stream
}

// SampleCtx is one Monte-Carlo sample of a whole circuit: a shared global
// corner plus a base stream from which each element (gate instance, RC
// tree) derives its local-variation sub-stream by a stable key. Keys make
// draws position-independent: the same gate gets the same transistor
// parameters whether it is simulated as the load of one stage or the driver
// of the next — the correlation the paper's cell/wire interaction study
// depends on. A nil *SampleCtx yields nominal instances.
type SampleCtx struct {
	Model  *variation.Model
	Corner variation.Corner
	Base   *rng.Stream
}

// SamplerFor derives the element sampler for a stable key.
func (c *SampleCtx) SamplerFor(key uint64) *Sampler {
	if c == nil {
		return nil
	}
	return &Sampler{Model: c.Model, Corner: c.Corner, R: c.Base.Split(key)}
}

// KeyFromString hashes an element name into a sampler key (FNV-1a).
func KeyFromString(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	if h == 0 {
		h = 1
	}
	return h
}

// sampleParams applies global + local variation to nominal parameters.
func (s *Sampler) sampleParams(p device.Params) device.Params {
	if s == nil {
		return p
	}
	if p.Polarity == device.NMOS {
		p.Vth += s.Corner.DVthN + s.Model.SampleLocalVth(s.R, p.W, p.L)
		p.KP *= s.Corner.BetaN * s.Model.SampleLocalBeta(s.R, p.W, p.L)
	} else {
		p.Vth += s.Corner.DVthP + s.Model.SampleLocalVth(s.R, p.W, p.L)
		p.KP *= s.Corner.BetaP * s.Model.SampleLocalBeta(s.R, p.W, p.L)
	}
	capMult := s.Corner.Cap * s.Model.SampleLocalCap(s.R, p.W, p.L)
	p.Cg *= capMult
	p.Cgd *= capMult
	p.Cd *= capMult
	return p
}

// Build instantiates the cell into ck. pins maps the cell's interface nodes
// — "vdd", "gnd", every input pin, and the output "Y" — to circuit nodes;
// missing entries panic. Internal nodes are created fresh per instance.
func (c *Cell) Build(ck *circuit.Circuit, pins map[string]circuit.Node, s *Sampler) {
	internal := make(map[string]circuit.Node)
	resolve := func(name string) circuit.Node {
		if n, ok := pins[name]; ok {
			return n
		}
		switch name {
		case "gnd":
			return circuit.Ground
		case "vdd", "Y":
			panic("stdcell: Build missing required pin " + name)
		}
		if c.HasInput(name) {
			panic("stdcell: Build missing input pin " + name)
		}
		n, ok := internal[name]
		if !ok {
			n = ck.NewNode(c.Name + "." + name)
			internal[name] = n
		}
		return n
	}
	for _, d := range c.devices {
		p := c.tech.NominalParams(d.pol, c.width(d))
		p = s.sampleParams(p)
		ck.AddMOS(resolve(d.d), resolve(d.g), resolve(d.s), p)
	}
}
