// Package libsynth builds synthetic coefficient libraries for tests and
// tooling that need a full-coverage timinglib.File without running the
// (minutes-long) Monte-Carlo characterisation. The numbers are invented but
// structurally honest: every stdcell kind at every drive strength, moment
// LUTs that genuinely depend on input slew and output load, and a complete
// wire-variability calibration — so load changes, slew changes and cell
// swaps all move real numbers through an analysis.
//
// Not for silicon correlation: experiments and examples that reproduce the
// paper's tables must characterise a real library (internal/charlib).
package libsynth

import (
	"math"

	"repro/internal/charlib"
	"repro/internal/nsigma"
	"repro/internal/stdcell"
	"repro/internal/timinglib"
	"repro/internal/waveform"
	"repro/internal/wire"
)

// slopedArc builds an arc model whose moments depend on input slew and
// output load (non-flat LUT planes).
func slopedArc(cell, pin string, edge waveform.Edge, base float64) *nsigma.ArcModel {
	plane := func(k float64) [][]float64 {
		// rows: slew axis, cols: load axis — growing in both.
		return [][]float64{
			{k, 2.1 * k},
			{1.45 * k, 3.2 * k},
		}
	}
	lut := nsigma.MomentLUT{
		Slews:   []float64{1e-12, 150e-12},
		Loads:   []float64{1e-16, 80e-15},
		Mu:      plane(base),
		Sigma:   plane(0.09 * base),
		Gamma:   [][]float64{{0.12, 0.2}, {0.16, 0.28}},
		Kappa:   [][]float64{{3.0, 3.3}, {3.1, 3.6}},
		OutSlew: plane(1.6 * base),
	}
	var quant nsigma.QuantileModel
	for i := range quant.Coeffs {
		names := nsigma.FeatureNames(i - 3)
		c := make([]float64, len(names))
		for j, name := range names {
			if name == "gamma*kappa" {
				c[j] = 1.5e-13 // dimensionless feature: coefficient carries seconds
			} else {
				c[j] = 0.04 + 0.01*float64(j) // σ-scaled features: dimensionless coefficient
			}
		}
		quant.Coeffs[i] = c
	}
	return &nsigma.ArcModel{
		Arc:   charlib.Arc{Cell: cell, Pin: pin, InEdge: edge},
		LUT:   lut,
		Quant: quant,
	}
}

// File builds a coefficients file covering every stdcell kind at every
// drive strength, with strength-dependent pin caps and delays so resizes
// move real numbers through the fanin and fanout cones.
func File() *timinglib.File {
	f := &timinglib.File{
		Vdd:   0.6,
		Arcs:  map[string]*nsigma.ArcModel{},
		Cells: map[string]*timinglib.CellInfo{},
		Wire: &wire.Calibration{
			R4:        0.1,
			CellRatio: map[string]float64{},
			XFI:       map[string]float64{},
			XFO:       map[string]float64{},
		},
	}
	allPins := []string{"A", "B", "C"}
	for ki, k := range stdcell.Kinds {
		nin := 1
		switch k {
		case stdcell.NAND2, stdcell.NOR2:
			nin = 2
		case stdcell.AOI2:
			nin = 3
		}
		for si, s := range stdcell.Strengths {
			cell := stdcell.CellName(k, s)
			drive := float64(s)
			inputs := allPins[:nin]
			caps := make(map[string]float64, nin)
			for pi, p := range inputs {
				caps[p] = (0.8 + 0.2*float64(pi)) * 1e-15 * drive
				base := (6 + 3*float64(ki) + 1.5*float64(pi)) * 1e-12 / math.Sqrt(drive)
				for _, e := range []waveform.Edge{waveform.Falling, waveform.Rising} {
					b := base
					if e == waveform.Rising {
						b *= 1.07
					}
					f.Arcs[timinglib.ArcKey(cell, p, e)] = slopedArc(cell, p, e, b)
				}
			}
			f.Cells[cell] = &timinglib.CellInfo{
				Stack: nin, Strength: s, Inputs: inputs,
				PinCaps: caps, OutputCap: 0.4e-15 * drive,
			}
			f.Wire.CellRatio[cell] = 0.06 + 0.01*float64(ki) + 0.005*float64(si)
			f.Wire.XFI[cell] = 0.4 + 0.02*float64(ki)
			f.Wire.XFO[cell] = 0.45 + 0.015*float64(si)
		}
	}
	return f
}
