package rctree

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file implements a pragmatic subset of the Standard Parasitic
// Exchange Format: a header plus *D_NET blocks with *CAP and *RES sections.
// It is what the layout extractor emits and what the STA flow consumes —
// the same role SPEF files from IC Compiler play in the paper's flow.
//
// Units follow the emitted header: *T_UNIT 1 PS, *C_UNIT 1 FF, *R_UNIT 1 OHM.
// In-memory trees are always SI (seconds, farads, ohms).

const (
	spefCapUnit = 1e-15 // fF
	spefResUnit = 1.0   // ohm
)

// WriteSPEF serialises the given trees as a SPEF subset document.
func WriteSPEF(w io.Writer, design string, trees []*Tree) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "*SPEF \"IEEE 1481 subset\"\n*DESIGN \"%s\"\n", design)
	fmt.Fprintf(bw, "*T_UNIT 1 PS\n*C_UNIT 1 FF\n*R_UNIT 1 OHM\n\n")
	for _, t := range trees {
		if err := t.Validate(); err != nil {
			return err
		}
		fmt.Fprintf(bw, "*D_NET %s %.6g\n", t.Net, t.TotalCap()/spefCapUnit)
		fmt.Fprintf(bw, "*CAP\n")
		for i, n := range t.Nodes {
			if n.C != 0 {
				fmt.Fprintf(bw, "%d %s:%s %.6g\n", i+1, t.Net, n.Name, n.C/spefCapUnit)
			}
		}
		fmt.Fprintf(bw, "*RES\n")
		idx := 1
		for i := 1; i < len(t.Nodes); i++ {
			n := t.Nodes[i]
			fmt.Fprintf(bw, "%d %s:%s %s:%s %.6g\n", idx,
				t.Net, t.Nodes[n.Parent].Name, t.Net, n.Name, n.R/spefResUnit)
			idx++
		}
		fmt.Fprintf(bw, "*END\n\n")
	}
	return bw.Flush()
}

// SPEFError is the typed rejection of malformed SPEF input. The parser
// never panics on arbitrary input: every failure — bad syntax, bad numbers,
// disconnected or cyclic parasitics — surfaces as a *SPEFError (pinned down
// by FuzzParseSPEF).
type SPEFError struct {
	Line   int    // 1-based input line; 0 when not line-specific
	Net    string // net being parsed, when known
	Reason string
}

// Error implements error.
func (e *SPEFError) Error() string {
	msg := "spef"
	if e.Line > 0 {
		msg = fmt.Sprintf("%s line %d", msg, e.Line)
	}
	if e.Net != "" {
		msg = fmt.Sprintf("%s net %s", msg, e.Net)
	}
	return msg + ": " + e.Reason
}

func spefErr(line int, net, format string, args ...any) *SPEFError {
	return &SPEFError{Line: line, Net: net, Reason: fmt.Sprintf(format, args...)}
}

// ParseSPEF reads a SPEF subset document and reconstructs the RC trees,
// keyed by net name. Only *D_NET/*CAP/*RES/*END blocks are interpreted;
// header lines are validated for the units this package emits.
func ParseSPEF(r io.Reader) (map[string]*Tree, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	trees := make(map[string]*Tree)

	var (
		curNet  string
		caps    map[string]float64
		edges   []resPair
		lineNum int
	)
	flush := func() error {
		if curNet == "" {
			return nil
		}
		t, err := assembleTree(curNet, caps, edges)
		if err != nil {
			return err
		}
		trees[curNet] = t
		curNet, caps, edges = "", nil, nil
		return nil
	}
	section := ""
	for sc.Scan() {
		lineNum++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		switch {
		case strings.HasPrefix(line, "*D_NET"):
			if err := flush(); err != nil {
				return nil, err
			}
			fields := strings.Fields(line)
			if len(fields) < 2 {
				return nil, spefErr(lineNum, "", "malformed *D_NET")
			}
			curNet = fields[1]
			caps = make(map[string]float64)
			section = ""
		case line == "*CAP":
			section = "cap"
		case line == "*RES":
			section = "res"
		case line == "*END":
			if err := flush(); err != nil {
				return nil, err
			}
			section = ""
		case strings.HasPrefix(line, "*"):
			// Header directives; only sanity-check the units we rely on.
			fields := strings.Fields(line)
			unit := ""
			if len(fields) >= 3 {
				unit = strings.ToUpper(fields[len(fields)-1])
			}
			if strings.HasPrefix(line, "*C_UNIT") && unit != "FF" {
				return nil, spefErr(lineNum, "", "unsupported C unit %q", line)
			}
			if strings.HasPrefix(line, "*R_UNIT") && unit != "OHM" {
				return nil, spefErr(lineNum, "", "unsupported R unit %q", line)
			}
		default:
			if section != "" && curNet == "" {
				return nil, spefErr(lineNum, "", "%s entry outside a *D_NET block", section)
			}
			fields := strings.Fields(line)
			switch section {
			case "cap":
				if len(fields) != 3 {
					return nil, spefErr(lineNum, curNet, "malformed cap entry")
				}
				v, err := strconv.ParseFloat(fields[2], 64)
				if err != nil {
					return nil, spefErr(lineNum, curNet, "bad capacitance: %v", err)
				}
				caps[nodePart(fields[1])] += v * spefCapUnit
			case "res":
				if len(fields) != 4 {
					return nil, spefErr(lineNum, curNet, "malformed res entry")
				}
				v, err := strconv.ParseFloat(fields[3], 64)
				if err != nil {
					return nil, spefErr(lineNum, curNet, "bad resistance: %v", err)
				}
				edges = append(edges, resPair{a: nodePart(fields[1]), b: nodePart(fields[2]), r: v * spefResUnit})
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, spefErr(0, "", "read: %v", err)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return trees, nil
}

// nodePart strips the "net:" prefix of a SPEF node reference. Only the
// first colon separates net from node — node names themselves may contain
// colons (the extractor emits leaves like "pin:U1:A").
func nodePart(ref string) string {
	if i := strings.IndexByte(ref, ':'); i >= 0 {
		return ref[i+1:]
	}
	return ref
}

type resPair struct {
	a, b string
	r    float64
}

// assembleTree rebuilds a Tree from node capacitances and resistor edges.
// The node named "root" anchors the tree; edges may appear in any order and
// orientation.
func assembleTree(net string, caps map[string]float64, edges []resPair) (*Tree, error) {
	adj := make(map[string][]resPair)
	names := make(map[string]bool)
	for _, e := range edges {
		adj[e.a] = append(adj[e.a], e)
		adj[e.b] = append(adj[e.b], resPair{a: e.b, b: e.a, r: e.r})
		names[e.a] = true
		names[e.b] = true
	}
	for n := range caps {
		names[n] = true
	}
	if !names["root"] {
		return nil, spefErr(0, net, "no node named root")
	}
	t := NewTree(net, caps["root"])
	// BFS from root; deterministic order via sorted adjacency.
	for n := range adj {
		sort.Slice(adj[n], func(i, j int) bool { return adj[n][i].b < adj[n][j].b })
	}
	index := map[string]int{"root": 0}
	queue := []string{"root"}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range adj[cur] {
			if _, seen := index[e.b]; seen {
				continue
			}
			idx, err := t.AddNode(e.b, index[cur], e.r, caps[e.b])
			if err != nil {
				return nil, spefErr(0, net, "%v", err)
			}
			index[e.b] = idx
			queue = append(queue, e.b)
		}
	}
	if len(index) != len(names) {
		return nil, spefErr(0, net, "disconnected parasitics (%d of %d nodes reachable)",
			len(index), len(names))
	}
	if len(t.Nodes) != len(edges)+1 {
		return nil, spefErr(0, net, "parasitics contain loops")
	}
	if err := t.Validate(); err != nil {
		return nil, spefErr(0, net, "%v", err)
	}
	return t, nil
}
