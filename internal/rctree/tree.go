// Package rctree models interconnect parasitics as RC trees and computes
// their classical delay metrics: the Elmore delay (first moment of the
// impulse response, eq. 4 of the paper) and the two-moment D2M metric used
// as an additional baseline. Trees can be instantiated into the transistor-
// level simulator (with process variation on every segment) and round-trip
// through a SPEF subset.
package rctree

import (
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/rng"
	"repro/internal/variation"
)

// TNode is one node of an RC tree. The root (index 0) is the driver output;
// every other node hangs off its parent through a resistance R and carries a
// grounded capacitance C.
type TNode struct {
	Name   string  `json:"name"`
	Parent int     `json:"parent"` // -1 for the root
	R      float64 `json:"r"`      // ohms, segment from parent (0 for root)
	C      float64 `json:"c"`      // farads to ground
}

// Tree is an RC tree for one net.
type Tree struct {
	Net   string  `json:"net"`
	Nodes []TNode `json:"nodes"`
}

// NewTree returns a tree containing only the root node with the given
// grounded capacitance.
func NewTree(net string, rootCap float64) *Tree {
	return &Tree{Net: net, Nodes: []TNode{{Name: "root", Parent: -1, C: rootCap}}}
}

// NodeError is the typed error for malformed tree construction — segment
// data that can arrive from external input (SPEF files, extracted
// parasitics) and must therefore be rejected, not panicked on.
type NodeError struct {
	Net    string
	Name   string
	Reason string
}

// Error implements error.
func (e *NodeError) Error() string {
	return fmt.Sprintf("rctree %s: node %q: %s", e.Net, e.Name, e.Reason)
}

// AddNode grows the tree: a new node hangs off parent through r ohms and
// carries c farads. It returns the new node's index, or a *NodeError when
// the segment is malformed (dangling parent, non-positive resistance,
// negative capacitance). Trusted programmatic builders may use MustAddNode.
func (t *Tree) AddNode(name string, parent int, r, c float64) (int, error) {
	if parent < 0 || parent >= len(t.Nodes) {
		return 0, &NodeError{Net: t.Net, Name: name,
			Reason: fmt.Sprintf("parent %d out of range [0, %d)", parent, len(t.Nodes))}
	}
	if r <= 0 {
		return 0, &NodeError{Net: t.Net, Name: name,
			Reason: fmt.Sprintf("segment resistance %g must be positive", r)}
	}
	if c < 0 {
		return 0, &NodeError{Net: t.Net, Name: name,
			Reason: fmt.Sprintf("negative capacitance %g", c)}
	}
	t.Nodes = append(t.Nodes, TNode{Name: name, Parent: parent, R: r, C: c})
	return len(t.Nodes) - 1, nil
}

// MustAddNode is AddNode for programmatic builders whose inputs are correct
// by construction (generators, tests); it panics on a malformed segment,
// which there is a programmer error rather than bad input.
func (t *Tree) MustAddNode(name string, parent int, r, c float64) int {
	i, err := t.AddNode(name, parent, r, c)
	if err != nil {
		panic(err)
	}
	return i
}

// Root returns the root index (always 0).
func (t *Tree) Root() int { return 0 }

// Leaves returns the indices of all leaf nodes in index order.
func (t *Tree) Leaves() []int {
	hasChild := make([]bool, len(t.Nodes))
	for _, n := range t.Nodes[1:] {
		hasChild[n.Parent] = true
	}
	var out []int
	for i := 1; i < len(t.Nodes); i++ {
		if !hasChild[i] {
			out = append(out, i)
		}
	}
	if len(out) == 0 && len(t.Nodes) == 1 {
		out = []int{0} // degenerate: a lone root is its own leaf
	}
	return out
}

// NodeIndex returns the index of the named node, or -1.
func (t *Tree) NodeIndex(name string) int {
	for i, n := range t.Nodes {
		if n.Name == name {
			return i
		}
	}
	return -1
}

// TotalCap returns the summed grounded capacitance of the tree — the lumped
// load a driver sees in the classical "total cap" approximation.
func (t *Tree) TotalCap() float64 {
	var s float64
	for _, n := range t.Nodes {
		s += n.C
	}
	return s
}

// pathToRoot returns the node indices from i up to (and including) the root.
func (t *Tree) pathToRoot(i int) []int {
	var path []int
	for i >= 0 {
		path = append(path, i)
		i = t.Nodes[i].Parent
	}
	return path
}

// sharedResistance returns the resistance of the common portion of the
// root→i and root→k paths — the R_pk of the Elmore sum.
func (t *Tree) sharedResistance(i, k int) float64 {
	onPathI := make(map[int]bool)
	for _, n := range t.pathToRoot(i) {
		onPathI[n] = true
	}
	// Walk k up to the root; the first node also on path(i) starts the
	// shared segment. Sum R of shared edges.
	var shared float64
	for n := k; n >= 0; n = t.Nodes[n].Parent {
		if onPathI[n] && n != 0 {
			// edge from parent(n) to n is shared iff n is on both paths
			shared += t.Nodes[n].R
		} else if onPathI[n] {
			break
		}
	}
	return shared
}

// Elmore returns the Elmore delay (first moment, eq. 4) from the root to
// node i: Σ_k R_shared(i,k)·C_k.
func (t *Tree) Elmore(i int) float64 {
	var m1 float64
	for k := range t.Nodes {
		if c := t.Nodes[k].C; c != 0 {
			m1 += t.sharedResistance(i, k) * c
		}
	}
	return m1
}

// SecondMoment returns the second moment of the impulse response at node i:
// m2(i) = Σ_k R_shared(i,k)·C_k·m1(k).
func (t *Tree) SecondMoment(i int) float64 {
	m1 := make([]float64, len(t.Nodes))
	for k := range t.Nodes {
		m1[k] = t.Elmore(k)
	}
	var m2 float64
	for k := range t.Nodes {
		if c := t.Nodes[k].C; c != 0 {
			m2 += t.sharedResistance(i, k) * c * m1[k]
		}
	}
	return m2
}

// D2M returns the two-moment delay metric ln2·m1²/√m2 (Alpert et al.),
// implemented as an extra baseline next to Elmore.
func (t *Tree) D2M(i int) float64 {
	m1 := t.Elmore(i)
	m2 := t.SecondMoment(i)
	if m2 <= 0 {
		return m1 * math.Ln2
	}
	return math.Ln2 * m1 * m1 / math.Sqrt(m2)
}

// Clone returns a deep copy of the tree.
func (t *Tree) Clone() *Tree {
	out := &Tree{Net: t.Net, Nodes: append([]TNode(nil), t.Nodes...)}
	return out
}

// Validate checks structural invariants: parent ordering, positive R,
// non-negative C, single root.
func (t *Tree) Validate() error {
	if len(t.Nodes) == 0 {
		return fmt.Errorf("rctree %s: empty tree", t.Net)
	}
	if t.Nodes[0].Parent != -1 {
		return fmt.Errorf("rctree %s: node 0 must be the root", t.Net)
	}
	for i, n := range t.Nodes[1:] {
		idx := i + 1
		if n.Parent < 0 || n.Parent >= idx {
			return fmt.Errorf("rctree %s: node %d parent %d must precede it", t.Net, idx, n.Parent)
		}
		if n.R <= 0 {
			return fmt.Errorf("rctree %s: node %d has non-positive R", t.Net, idx)
		}
		if n.C < 0 {
			return fmt.Errorf("rctree %s: node %d has negative C", t.Net, idx)
		}
	}
	return nil
}

// BuildOptions controls instantiating a tree into the simulator.
type BuildOptions struct {
	// Variation, Corner, R: when Variation is non-nil every segment gets
	// per-sample R and C multipliers (global corner × local mismatch).
	Variation *variation.Model
	Corner    variation.Corner
	R         *rng.Stream
}

// Build adds the tree's resistors and capacitors to ck. The tree root maps
// to the supplied root node; every other tree node gets a fresh circuit
// node. It returns the circuit node of each tree node.
func (t *Tree) Build(ck *circuit.Circuit, root circuit.Node, opt *BuildOptions) []circuit.Node {
	nodes := make([]circuit.Node, len(t.Nodes))
	nodes[0] = root
	rootCMult := 1.0
	if opt != nil && opt.Variation != nil {
		_, rootCMult = opt.Variation.SampleWireSegment(opt.R, opt.Corner)
	}
	if c := t.Nodes[0].C * rootCMult; c > 0 {
		ck.AddCapacitor(root, circuit.Ground, c)
	}
	for i := 1; i < len(t.Nodes); i++ {
		n := t.Nodes[i]
		cn := ck.NewNode(t.Net + "." + n.Name)
		nodes[i] = cn
		rMult, cMult := 1.0, 1.0
		if opt != nil && opt.Variation != nil {
			rMult, cMult = opt.Variation.SampleWireSegment(opt.R, opt.Corner)
		}
		ck.AddResistor(nodes[n.Parent], cn, n.R*rMult)
		if c := n.C * cMult; c > 0 {
			ck.AddCapacitor(cn, circuit.Ground, c)
		}
	}
	return nodes
}
