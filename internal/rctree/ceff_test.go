package rctree

import (
	"math"
	"testing"
)

func TestEffectiveCapBounds(t *testing.T) {
	tr, _, _ := ladder(500, 2e-15, 800, 3e-15)
	tot := tr.TotalCap()
	for _, tr8 := range []float64{1e-12, 10e-12, 100e-12} {
		ceff := tr.EffectiveCap(tr8)
		if ceff <= 0 || ceff > tot+1e-30 {
			t.Fatalf("Ceff %v outside (0, %v] at T=%v", ceff, tot, tr8)
		}
	}
}

func TestEffectiveCapMonotoneInTransition(t *testing.T) {
	tr, _, _ := ladder(500, 2e-15, 800, 3e-15)
	prev := 0.0
	for _, tr8 := range []float64{1e-12, 5e-12, 20e-12, 100e-12, 1e-9} {
		ceff := tr.EffectiveCap(tr8)
		if ceff < prev {
			t.Fatalf("Ceff not increasing with transition time at %v", tr8)
		}
		prev = ceff
	}
	// Slow transitions see essentially the whole load.
	if f := tr.ShieldingFactor(1e-8); f < 0.99 {
		t.Fatalf("slow-transition shielding factor %v", f)
	}
}

func TestEffectiveCapShieldsDistantLoad(t *testing.T) {
	// Same total cap, but one tree hides it behind 10 kΩ: at fast
	// transitions the shielded tree must present less load.
	near := NewTree("near", 0)
	near.MustAddNode("a", 0, 1, 5e-15)
	far := NewTree("far", 0)
	far.MustAddNode("a", 0, 10e3, 5e-15)
	const tr8 = 5e-12
	if far.EffectiveCap(tr8) >= near.EffectiveCap(tr8) {
		t.Fatalf("resistive shielding missing: far %v vs near %v",
			far.EffectiveCap(tr8), near.EffectiveCap(tr8))
	}
}

func TestEffectiveCapDegenerate(t *testing.T) {
	tr, _, _ := ladder(500, 2e-15, 800, 3e-15)
	if got := tr.EffectiveCap(0); math.Abs(got-tr.TotalCap()) > 1e-30 {
		t.Fatal("zero transition should fall back to total cap")
	}
	empty := NewTree("e", 0)
	if f := empty.ShieldingFactor(1e-12); f != 1 {
		t.Fatalf("empty-tree shielding factor %v", f)
	}
}
