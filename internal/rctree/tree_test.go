package rctree

import (
	"errors"
	"math"
	"testing"

	"repro/internal/circuit"
)

// ladder builds root -R1- n1 -R2- n2 with caps c1, c2.
func ladder(r1, c1, r2, c2 float64) (*Tree, int, int) {
	t := NewTree("lad", 0)
	n1 := t.MustAddNode("n1", 0, r1, c1)
	n2 := t.MustAddNode("n2", n1, r2, c2)
	return t, n1, n2
}

func TestElmoreLadder(t *testing.T) {
	tr, n1, n2 := ladder(100, 1e-15, 200, 2e-15)
	// Elmore(n2) = R1·(C1+C2) + R2·C2
	want2 := 100*(3e-15) + 200*2e-15
	if got := tr.Elmore(n2); math.Abs(got-want2) > 1e-25 {
		t.Fatalf("Elmore(n2)=%v want %v", got, want2)
	}
	// Elmore(n1) = R1·(C1+C2): downstream cap through the shared segment.
	want1 := 100 * 3e-15
	if got := tr.Elmore(n1); math.Abs(got-want1) > 1e-25 {
		t.Fatalf("Elmore(n1)=%v want %v", got, want1)
	}
}

func TestElmoreBranchShielding(t *testing.T) {
	// A side branch off the root must contribute its cap only through the
	// shared path (none, for a root branch).
	tr := NewTree("b", 0)
	a := tr.MustAddNode("a", 0, 100, 1e-15)
	side := tr.MustAddNode("side", 0, 500, 10e-15)
	_ = side
	if got, want := tr.Elmore(a), 100*1e-15; math.Abs(got-want) > 1e-25 {
		t.Fatalf("side branch leaked into Elmore: %v want %v", got, want)
	}
}

func TestSecondMomentSinglePole(t *testing.T) {
	// One-pole RC: m1 = RC, m2 = (RC)² — D2M = ln2·RC (exact 50% delay).
	tr := NewTree("p", 0)
	n := tr.MustAddNode("n", 0, 1000, 1e-15)
	rc := 1000 * 1e-15
	if got := tr.Elmore(n); math.Abs(got-rc) > 1e-25 {
		t.Fatalf("m1 %v", got)
	}
	if got := tr.SecondMoment(n); math.Abs(got-rc*rc)/(rc*rc) > 1e-12 {
		t.Fatalf("m2 %v want %v", got, rc*rc)
	}
	if got, want := tr.D2M(n), math.Ln2*rc; math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("D2M %v want %v", got, want)
	}
}

func TestD2MBelowElmoreOnLadders(t *testing.T) {
	tr, _, n2 := ladder(100, 1e-15, 200, 2e-15)
	if tr.D2M(n2) >= tr.Elmore(n2) {
		t.Fatal("D2M should undershoot Elmore on monotone RC ladders")
	}
}

func TestLeaves(t *testing.T) {
	tr := NewTree("l", 0)
	a := tr.MustAddNode("a", 0, 1, 0)
	b := tr.MustAddNode("b", a, 1, 0)
	c := tr.MustAddNode("c", a, 1, 0)
	leaves := tr.Leaves()
	if len(leaves) != 2 || leaves[0] != b || leaves[1] != c {
		t.Fatalf("leaves %v", leaves)
	}
	lone := NewTree("lone", 1e-15)
	if ls := lone.Leaves(); len(ls) != 1 || ls[0] != 0 {
		t.Fatalf("lone-root leaves %v", ls)
	}
}

func TestTotalCap(t *testing.T) {
	tr, _, _ := ladder(100, 1e-15, 200, 2e-15)
	if got := tr.TotalCap(); math.Abs(got-3e-15) > 1e-27 {
		t.Fatalf("TotalCap %v", got)
	}
}

func TestValidate(t *testing.T) {
	tr, _, _ := ladder(100, 1e-15, 200, 2e-15)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Tree{Net: "bad", Nodes: []TNode{{Parent: -1}, {Parent: 0, R: -5}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative R accepted")
	}
	fwd := &Tree{Net: "fwd", Nodes: []TNode{{Parent: -1}, {Parent: 2, R: 1}, {Parent: 0, R: 1}}}
	if err := fwd.Validate(); err == nil {
		t.Fatal("forward parent reference accepted")
	}
	empty := &Tree{Net: "empty"}
	if err := empty.Validate(); err == nil {
		t.Fatal("empty tree accepted")
	}
}

func TestAddNodeErrors(t *testing.T) {
	tr := NewTree("p", 0)
	var nodeErr *NodeError
	if _, err := tr.AddNode("x", 5, 1, 0); !errors.As(err, &nodeErr) {
		t.Fatalf("dangling parent: got %v, want *NodeError", err)
	}
	if _, err := tr.AddNode("x", 0, 0, 0); !errors.As(err, &nodeErr) {
		t.Fatalf("zero resistance: got %v, want *NodeError", err)
	}
	if _, err := tr.AddNode("x", 0, 1, -1e-15); !errors.As(err, &nodeErr) {
		t.Fatalf("negative cap: got %v, want *NodeError", err)
	}
	if len(tr.Nodes) != 1 {
		t.Fatalf("failed AddNode mutated the tree: %d nodes", len(tr.Nodes))
	}
	mustPanic(t, func() { tr.MustAddNode("x", 5, 1, 0) })
}

func TestCloneIndependent(t *testing.T) {
	tr, _, n2 := ladder(100, 1e-15, 200, 2e-15)
	cl := tr.Clone()
	cl.Nodes[n2].C *= 10
	if tr.Nodes[n2].C == cl.Nodes[n2].C {
		t.Fatal("Clone aliases nodes")
	}
}

func TestNodeIndex(t *testing.T) {
	tr, n1, _ := ladder(100, 1e-15, 200, 2e-15)
	if tr.NodeIndex("n1") != n1 {
		t.Fatal("NodeIndex wrong")
	}
	if tr.NodeIndex("zzz") != -1 {
		t.Fatal("missing node should be -1")
	}
}

func TestBuildIntoCircuit(t *testing.T) {
	tr, _, n2 := ladder(100, 1e-15, 200, 2e-15)
	ck := circuit.New()
	ck.Gmin = 0
	root := ck.NodeByName("root")
	src := ck.NodeByName("src")
	ck.AddSource(src, circuit.Ramp{T0: 0, TRamp: 1e-15, V0: 0, V1: 1})
	ck.AddResistor(src, root, 1) // near-ideal drive
	nodes := tr.Build(ck, root, nil)
	if len(nodes) != 3 || nodes[0] != root {
		t.Fatalf("Build node map %v", nodes)
	}
	// The leaf must charge to the source value with roughly the Elmore
	// timescale.
	res, err := ck.Transient(circuit.SimOptions{TStop: 10 * tr.Elmore(n2), DT: tr.Elmore(n2) / 200})
	if err != nil {
		t.Fatal(err)
	}
	leaf := res.Waveform(nodes[n2])
	if final := leaf[len(leaf)-1]; math.Abs(final-1) > 0.01 {
		t.Fatalf("leaf settled at %v", final)
	}
	half := 0
	for i, v := range leaf {
		if v >= 0.5 {
			half = i
			break
		}
	}
	t50 := res.Times[half]
	elm := tr.Elmore(n2)
	// 50% step response of an RC ladder lands within [0.3, 1.1]×Elmore.
	if t50 < 0.3*elm || t50 > 1.1*elm {
		t.Fatalf("simulated 50%% delay %v vs Elmore %v out of expected band", t50, elm)
	}
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
