package rctree

import "math"

// EffectiveCap returns an effective-capacitance approximation of the load
// a driver sees from this tree: total capacitance derated for resistive
// shielding, in the spirit of the O'Brien/Savarino two-π reduction the
// LVF flow the paper cites uses ("the effective capacitance is added to
// the output load of cells").
//
// The derating uses the ratio of the tree's intrinsic time constant to the
// driver's transition time: capacitance hidden behind wire resistance that
// cannot charge within the transition does not load the driver.
//
//	Ceff = Croot + Σ_k C_k / (1 + m·τ_k/T)
//
// where τ_k is the RC time constant from the root to node k and T the
// transition time. m = 2 fits the classic two-π behaviour: τ_k ≪ T →
// full loading; τ_k ≫ T → shielded.
func (t *Tree) EffectiveCap(transition float64) float64 {
	if transition <= 0 {
		return t.TotalCap()
	}
	// Resistance from root to each node.
	rUp := make([]float64, len(t.Nodes))
	for i := 1; i < len(t.Nodes); i++ {
		rUp[i] = rUp[t.Nodes[i].Parent] + t.Nodes[i].R
	}
	const m = 2.0
	var ceff float64
	for i, n := range t.Nodes {
		tau := rUp[i] * n.C
		ceff += n.C / (1 + m*tau/transition)
	}
	if ceff > t.TotalCap() {
		return t.TotalCap()
	}
	return ceff
}

// ShieldingFactor reports how much of the total capacitance the driver
// actually sees at the given transition time (Ceff/Ctotal ∈ (0, 1]).
func (t *Tree) ShieldingFactor(transition float64) float64 {
	tot := t.TotalCap()
	if tot <= 0 {
		return 1
	}
	f := t.EffectiveCap(transition) / tot
	if math.IsNaN(f) {
		return 1
	}
	return f
}
