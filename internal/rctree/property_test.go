package rctree

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// randomTreeFrom builds a random valid tree with n extra nodes.
func randomTreeFrom(r *rng.Stream, n int) *Tree {
	t := NewTree("p", r.Float64()*1e-15)
	for i := 0; i < n; i++ {
		parent := r.Intn(len(t.Nodes))
		t.MustAddNode("", parent, 10+900*r.Float64(), r.Float64()*3e-15)
	}
	return t
}

func TestElmoreScalingProperty(t *testing.T) {
	// Elmore is bilinear: scaling every R by a scales every Elmore by a;
	// same for C.
	r := rng.New(31)
	err := quick.Check(func(seed uint64, kRaw float64) bool {
		k := 0.1 + math.Mod(math.Abs(kRaw), 10)
		rr := r.Split(seed)
		tr := randomTreeFrom(rr, 1+rr.Intn(12))
		scaledR := tr.Clone()
		scaledC := tr.Clone()
		for i := range scaledR.Nodes {
			if i > 0 {
				scaledR.Nodes[i].R *= k
			}
			scaledC.Nodes[i].C *= k
		}
		for i := 1; i < len(tr.Nodes); i++ {
			base := tr.Elmore(i)
			if base == 0 {
				continue
			}
			if math.Abs(scaledR.Elmore(i)-k*base) > 1e-9*k*base {
				return false
			}
			if math.Abs(scaledC.Elmore(i)-k*base) > 1e-9*k*base {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

func TestElmoreMonotoneAlongPathProperty(t *testing.T) {
	// Elmore can only grow walking away from the root.
	r := rng.New(32)
	err := quick.Check(func(seed uint64) bool {
		rr := r.Split(seed)
		tr := randomTreeFrom(rr, 1+rr.Intn(15))
		for i := 1; i < len(tr.Nodes); i++ {
			if tr.Elmore(i) < tr.Elmore(tr.Nodes[i].Parent)-1e-30 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}

func TestD2MNeverExceedsElmoreProperty(t *testing.T) {
	// For RC trees, m2 ≥ m1² (Cauchy-Schwarz over the impulse response),
	// so D2M = ln2·m1²/√m2 ≤ ln2·m1 < m1.
	r := rng.New(33)
	err := quick.Check(func(seed uint64) bool {
		rr := r.Split(seed)
		tr := randomTreeFrom(rr, 1+rr.Intn(15))
		for i := 1; i < len(tr.Nodes); i++ {
			if tr.Elmore(i) == 0 {
				continue
			}
			if tr.D2M(i) > tr.Elmore(i)*(1+1e-12) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEffectiveCapBoundedProperty(t *testing.T) {
	r := rng.New(34)
	err := quick.Check(func(seed uint64, trRaw float64) bool {
		rr := r.Split(seed)
		tr := randomTreeFrom(rr, 1+rr.Intn(15))
		T := math.Mod(math.Abs(trRaw), 1e-10) + 1e-13
		ceff := tr.EffectiveCap(T)
		return ceff > 0 && ceff <= tr.TotalCap()+1e-30
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}
