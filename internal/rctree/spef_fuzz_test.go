package rctree

import (
	"errors"
	"strings"
	"testing"
)

// FuzzParseSPEF pins the parser's robustness contract: arbitrary input
// never panics, every rejection is a typed *SPEFError, and every accepted
// document yields structurally valid trees.
func FuzzParseSPEF(f *testing.F) {
	tr := NewTree("n1", 0.05e-15)
	a := tr.MustAddNode("a", 0, 50, 1e-15)
	tr.MustAddNode("pin:U1:A", a, 25, 2e-15)
	var b strings.Builder
	if err := WriteSPEF(&b, "fuzz", []*Tree{tr}); err != nil {
		f.Fatal(err)
	}
	seeds := []string{
		b.String(),
		"*D_NET",
		"*D_NET n 1\n*CAP\n1 n:root x\n*END\n",
		"*D_NET n 1\n*RES\n1 n:a n:b nope\n*END\n",
		"*C_UNIT 1 PF\n",
		"*R_UNIT 1 KOHM\n",
		"*D_NET n 1\n*CAP\n1 n:a 2\n*END\n",                           // no root
		"*D_NET n 1\n*RES\n1 n:root n:a 10\n2 n:a n:root 10\n*END\n", // loop
		"*D_NET n 1\n*RES\n1 n:root n:a -5\n*END\n",                  // negative R
		"*D_NET n 1\n*CAP\n1 n:root 0.05\n*RES\n",                    // unterminated
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		trees, err := ParseSPEF(strings.NewReader(src))
		if err != nil {
			var se *SPEFError
			if !errors.As(err, &se) {
				t.Fatalf("ParseSPEF returned a non-typed error %T: %v", err, err)
			}
			return
		}
		for net, tr := range trees {
			if err := tr.Validate(); err != nil {
				t.Fatalf("accepted tree %s fails validation: %v", net, err)
			}
		}
	})
}
