package rctree

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func sampleTrees() []*Tree {
	a := NewTree("net_a", 0.05e-15)
	n1 := a.MustAddNode("n1", 0, 120, 0.7e-15)
	a.MustAddNode("pin:U1:A", n1, 80, 1.3e-15)
	a.MustAddNode("pin:U2:B", n1, 95, 0.9e-15)

	b := NewTree("net_b", 0)
	b.MustAddNode("pin:U3:A", 0, 240, 2.1e-15)
	return []*Tree{a, b}
}

func TestSPEFRoundTrip(t *testing.T) {
	trees := sampleTrees()
	var buf bytes.Buffer
	if err := WriteSPEF(&buf, "testdesign", trees); err != nil {
		t.Fatal(err)
	}
	got, err := ParseSPEF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(trees) {
		t.Fatalf("parsed %d nets want %d", len(got), len(trees))
	}
	for _, want := range trees {
		g := got[want.Net]
		if g == nil {
			t.Fatalf("net %s missing", want.Net)
		}
		// Topology may be re-ordered by BFS; compare the timing-relevant
		// invariants per leaf instead of node order.
		if math.Abs(g.TotalCap()-want.TotalCap()) > 1e-21 {
			t.Fatalf("net %s total cap %v want %v", want.Net, g.TotalCap(), want.TotalCap())
		}
		for _, leaf := range want.Leaves() {
			name := want.Nodes[leaf].Name
			gLeaf := g.NodeIndex(name)
			if gLeaf < 0 {
				t.Fatalf("net %s leaf %s missing after round trip", want.Net, name)
			}
			// SPEF text carries 6 significant digits.
			if math.Abs(g.Elmore(gLeaf)-want.Elmore(leaf)) > 1e-5*want.Elmore(leaf) {
				t.Fatalf("net %s leaf %s Elmore %v want %v",
					want.Net, name, g.Elmore(gLeaf), want.Elmore(leaf))
			}
		}
	}
}

func TestParseSPEFRejectsLoops(t *testing.T) {
	doc := `*SPEF "x"
*C_UNIT 1 FF
*R_UNIT 1 OHM
*D_NET loopy 1.0
*CAP
1 loopy:root 0.5
2 loopy:a 0.5
*RES
1 loopy:root loopy:a 100
2 loopy:a loopy:root 100
*END
`
	if _, err := ParseSPEF(strings.NewReader(doc)); err == nil {
		t.Fatal("looped parasitics accepted")
	}
}

func TestParseSPEFRejectsDisconnected(t *testing.T) {
	doc := `*D_NET island 1.0
*CAP
1 island:root 0.5
2 island:far 0.5
*RES
1 island:a island:b 100
*END
`
	if _, err := ParseSPEF(strings.NewReader(doc)); err == nil {
		t.Fatal("disconnected parasitics accepted")
	}
}

func TestParseSPEFRejectsMissingRoot(t *testing.T) {
	doc := `*D_NET norootnet 1.0
*CAP
1 norootnet:a 0.5
*RES
1 norootnet:a norootnet:b 100
*END
`
	if _, err := ParseSPEF(strings.NewReader(doc)); err == nil {
		t.Fatal("net without root accepted")
	}
}

func TestParseSPEFUnitValidation(t *testing.T) {
	doc := "*C_UNIT 1 PF\n"
	if _, err := ParseSPEF(strings.NewReader(doc)); err == nil {
		t.Fatal("wrong cap unit accepted")
	}
	doc = "*R_UNIT 1 KOHM\n"
	if _, err := ParseSPEF(strings.NewReader(doc)); err == nil {
		t.Fatal("wrong res unit accepted")
	}
}

func TestParseSPEFMalformedEntries(t *testing.T) {
	for _, doc := range []string{
		"*D_NET\n",
		"*D_NET n 1\n*CAP\n1 n:a\n*END\n",
		"*D_NET n 1\n*CAP\n1 n:a notanumber\n*END\n",
		"*D_NET n 1\n*RES\n1 n:a n:b\n*END\n",
	} {
		if _, err := ParseSPEF(strings.NewReader(doc)); err == nil {
			t.Errorf("accepted %q", doc)
		}
	}
}

func TestWriteSPEFValidates(t *testing.T) {
	bad := &Tree{Net: "bad", Nodes: []TNode{{Parent: -1}, {Parent: 0, R: -1}}}
	var buf bytes.Buffer
	if err := WriteSPEF(&buf, "d", []*Tree{bad}); err == nil {
		t.Fatal("invalid tree serialised")
	}
}
