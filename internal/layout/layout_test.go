package layout

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/circuits"
	"repro/internal/device"
	"repro/internal/netlist"
	"repro/internal/rctree"
	"repro/internal/stdcell"
)

type design struct {
	nl    *netlist.Netlist
	trees map[string]*rctree.Tree
}

func testDesign(t *testing.T) (*stdcell.Library, *Parasitics, *Placement, design) {
	t.Helper()
	lib := stdcell.NewLibrary(device.Default28nm())
	nl, err := circuits.Random("t", circuits.RandomOptions{Cells: 120, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	par := Default28nm()
	pl, err := Place(nl, par, 7)
	if err != nil {
		t.Fatal(err)
	}
	trees, err := Extract(nl, lib, par, pl)
	if err != nil {
		t.Fatal(err)
	}
	return lib, par, pl, design{nl: nl, trees: trees}
}

func TestPlaceCoversEverything(t *testing.T) {
	_, _, pl, d := testDesign(t)
	for gi := range d.nl.Gates {
		if _, ok := pl.GateXY[gi]; !ok {
			t.Fatalf("gate %d unplaced", gi)
		}
	}
	for _, in := range d.nl.Inputs {
		if _, ok := pl.InputXY[in]; !ok {
			t.Fatalf("input %s unplaced", in)
		}
	}
}

func TestExtractTreesStructurallySound(t *testing.T) {
	lib, _, _, d := testDesign(t)
	fan := d.nl.FanoutMap()
	for net, sinks := range fan {
		tree := d.trees[net]
		if tree == nil {
			t.Fatalf("net %s missing tree", net)
		}
		if err := tree.Validate(); err != nil {
			t.Fatal(err)
		}
		// Every sink must map to a distinct leaf carrying its pin cap.
		for si, s := range sinks {
			leaf, err := LeafFor(tree, d.nl, s, si)
			if err != nil {
				t.Fatal(err)
			}
			var pinCap float64
			if s.Gate >= 0 {
				pinCap = lib.MustCell(d.nl.Gates[s.Gate].Cell).PinCap(s.Pin)
			} else {
				pinCap = 0.8e-15
			}
			if tree.Nodes[leaf].C < pinCap {
				t.Fatalf("net %s leaf %d carries %v < pin cap %v", net, leaf, tree.Nodes[leaf].C, pinCap)
			}
			if e := tree.Elmore(leaf); e <= 0 {
				t.Fatalf("net %s leaf %d: non-positive Elmore %v", net, leaf, e)
			}
		}
	}
}

func TestExtractDeterministic(t *testing.T) {
	_, _, _, a := testDesign(t)
	_, _, _, b := testDesign(t)
	if !reflect.DeepEqual(a.trees, b.trees) {
		t.Fatal("extraction not deterministic")
	}
}

func TestLeafForUnknown(t *testing.T) {
	_, _, _, d := testDesign(t)
	fan := d.nl.FanoutMap()
	for net, sinks := range fan {
		tree := d.trees[net]
		if _, err := LeafFor(tree, d.nl, sinks[0], 9999); err == nil && sinks[0].Gate < 0 {
			t.Fatalf("net %s: bogus PO sink index accepted", net)
		}
		break
	}
}

func TestRandomTreeProperties(t *testing.T) {
	par := Default28nm()
	for seed := uint64(0); seed < 8; seed++ {
		tr := RandomTree(fmt.Sprintf("t%d", seed), 3, par, seed)
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
		for s := 0; s < 3; s++ {
			leaf := tr.NodeIndex(fmt.Sprintf("sink%d", s))
			if leaf < 0 {
				t.Fatalf("seed %d: sink%d missing", seed, s)
			}
			if tr.Elmore(leaf) <= 0 {
				t.Fatalf("seed %d: sink%d Elmore non-positive", seed, s)
			}
		}
	}
	a := RandomTree("x", 2, par, 42)
	b := RandomTree("x", 2, par, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("RandomTree not deterministic")
	}
}

func TestParasiticScalesSane(t *testing.T) {
	par := Default28nm()
	// A 10 µm route should land in the tens-of-ohms / few-fF regime.
	r := par.ROhmPerUm * 10
	c := par.CfFPerUm * 10
	if r < 5 || r > 200 {
		t.Errorf("10um wire resistance %v out of 28nm-class band", r)
	}
	if c < 0.5e-15 || c > 10e-15 {
		t.Errorf("10um wire capacitance %v out of 28nm-class band", c)
	}
}
