// Package layout plays the role of the paper's place-and-route + extraction
// flow (IC Compiler emitting SPEF): it assigns cells of a netlist to
// positions on a row grid, estimates per-net wirelengths from the placement,
// and synthesises an RC tree for every net from a 28-nm-class parasitic
// table. Leaf nodes of each tree coincide with sink pins, and the sink pin
// capacitance is attached there, so Elmore on the emitted tree is the full
// net delay metric.
//
// The placement is intentionally simple (topological-order rows with
// seeded jitter): what the timing experiments need from it is a realistic
// *distribution* of wire lengths and fanouts, not a legal 28-nm layout.
package layout

import (
	"fmt"
	"math"

	"repro/internal/netlist"
	"repro/internal/rctree"
	"repro/internal/rng"
	"repro/internal/stdcell"
)

// Parasitics is the per-unit-length RC table of the synthetic technology's
// default routing layer, plus geometry constants for the toy placement.
type Parasitics struct {
	ROhmPerUm float64 // wire resistance per µm
	CfFPerUm  float64 // wire capacitance per µm (farads per µm)

	CellPitchUm float64 // placement grid pitch
	MaxSegUm    float64 // max RC segment length before subdividing
}

// Default28nm returns interconnect constants representative of an
// intermediate 28-nm metal layer.
func Default28nm() *Parasitics {
	return &Parasitics{
		ROhmPerUm:   2.2,
		CfFPerUm:    0.19e-15,
		CellPitchUm: 1.4,
		MaxSegUm:    25,
	}
}

// Placement maps gate index → (x, y) in µm; primary inputs get synthetic
// positions on the left edge.
type Placement struct {
	GateXY  map[int][2]float64
	InputXY map[string][2]float64
}

// Place assigns positions: gates in topological order fill a near-square
// grid row by row, with seeded jitter so net lengths vary like a real
// placement (short nets dominate, a tail of long nets remains).
func Place(nl *netlist.Netlist, par *Parasitics, seed uint64) (*Placement, error) {
	order, err := nl.Levelize()
	if err != nil {
		return nil, err
	}
	r := rng.New(seed ^ 0x91ac)
	side := int(math.Ceil(math.Sqrt(float64(len(order) + len(nl.Inputs)))))
	if side < 2 {
		side = 2
	}
	p := &Placement{
		GateXY:  make(map[int][2]float64, len(order)),
		InputXY: make(map[string][2]float64, len(nl.Inputs)),
	}
	pitch := par.CellPitchUm
	for i, in := range nl.Inputs {
		p.InputXY[in] = [2]float64{0, float64(i%side) * pitch}
	}
	for i, gi := range order {
		x := float64(1+i/side) * pitch
		y := float64(i%side) * pitch
		// Jitter breaks the perfect grid correlation between topological
		// distance and geometric distance.
		x += (r.Float64() - 0.5) * pitch * 3
		y += (r.Float64() - 0.5) * pitch * 3
		p.GateXY[gi] = [2]float64{x, y}
	}
	return p, nil
}

// pinCapOf returns the input capacitance a sink presents.
func pinCapOf(lib *stdcell.Library, nl *netlist.Netlist, s netlist.Sink) (float64, error) {
	if s.Gate < 0 {
		// Primary output: model a fixed pad/flop load.
		return 0.8e-15, nil
	}
	g := &nl.Gates[s.Gate]
	cell := lib.Cell(g.Cell)
	if cell == nil {
		return 0, fmt.Errorf("layout: gate %s uses unknown cell %q", g.Name, g.Cell)
	}
	return cell.PinCap(s.Pin), nil
}

// Extract synthesises one RC tree per net as a star of π-ladder routes: an
// independent route leaves the driver towards each sink, subdivided into
// π-sections of at most MaxSegUm, with length set by the placed Manhattan
// distance. Sink pin capacitance is placed on the leaf named after the sink
// ("pin:<gate>:<pin>" / "pin:PO<i>"), so tree leaves correspond 1:1 to
// fanout pins.
func Extract(nl *netlist.Netlist, lib *stdcell.Library, par *Parasitics, pl *Placement) (map[string]*rctree.Tree, error) {
	fan := nl.FanoutMap()
	drv := nl.DriverMap()
	trees := make(map[string]*rctree.Tree, len(fan))
	for net, sinks := range fan {
		if len(sinks) == 0 {
			continue
		}
		var src [2]float64
		if gi, ok := drv[net]; ok {
			src = pl.GateXY[gi]
		} else if xy, ok := pl.InputXY[net]; ok {
			src = xy
		} else {
			return nil, fmt.Errorf("layout: net %s has no placed driver", net)
		}
		t := rctree.NewTree(net, 0.05e-15) // small root (via/pin) cap
		for si, s := range sinks {
			var dst [2]float64
			var leafName string
			if s.Gate >= 0 {
				dst = pl.GateXY[s.Gate]
				leafName = fmt.Sprintf("pin:%s:%s", nl.Gates[s.Gate].Name, s.Pin)
			} else {
				dst = [2]float64{src[0] + 2*par.CellPitchUm, src[1]}
				leafName = fmt.Sprintf("pin:PO%d", si)
			}
			lenUm := math.Abs(dst[0]-src[0]) + math.Abs(dst[1]-src[1])
			if lenUm < 0.5 {
				lenUm = 0.5 // minimum route to a neighbouring pin
			}
			pc, err := pinCapOf(lib, nl, s)
			if err != nil {
				return nil, err
			}
			if err := attachRoute(t, 0, leafName, lenUm, pc, par); err != nil {
				return nil, err
			}
		}
		trees[net] = t
	}
	return trees, nil
}

// attachRoute adds a π-ladder of total length lenUm from `from` to a new
// leaf carrying cap pinCap.
func attachRoute(t *rctree.Tree, from int, leafName string, lenUm, pinCap float64, par *Parasitics) error {
	nseg := int(math.Ceil(lenUm / par.MaxSegUm))
	if nseg < 1 {
		nseg = 1
	}
	segLen := lenUm / float64(nseg)
	segR := par.ROhmPerUm * segLen
	segC := par.CfFPerUm * segLen
	cur := from
	for i := 0; i < nseg; i++ {
		name := fmt.Sprintf("%s.s%d", leafName, i)
		c := segC
		if i == nseg-1 {
			name = leafName
			c = segC/2 + pinCap
		}
		// π-model: half the segment cap at each end; the upstream half
		// accumulates onto the parent.
		t.Nodes[cur].C += segC / 2
		var err error
		if i == nseg-1 {
			cur, err = t.AddNode(name, cur, segR, c)
		} else {
			cur, err = t.AddNode(name, cur, segR, segC/2)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// LeafFor returns the tree leaf index carrying the given sink's pin, using
// the naming convention of Extract.
func LeafFor(t *rctree.Tree, nl *netlist.Netlist, s netlist.Sink, sinkIdx int) (int, error) {
	var name string
	if s.Gate >= 0 {
		name = fmt.Sprintf("pin:%s:%s", nl.Gates[s.Gate].Name, s.Pin)
	} else {
		name = fmt.Sprintf("pin:PO%d", sinkIdx)
	}
	idx := t.NodeIndex(name)
	if idx < 0 {
		return 0, fmt.Errorf("layout: tree %s has no leaf %q", t.Net, name)
	}
	return idx, nil
}

// RandomTree synthesises a standalone random RC tree (the paper's "five
// examples of RC interconnect circuits... randomly chosen from the
// parasitic files", §V-C): nSinks branches of random length off a random
// trunk. Sink pin caps are NOT included; callers attach load cells.
func RandomTree(name string, nSinks int, par *Parasitics, seed uint64) *rctree.Tree {
	r := rng.New(seed ^ 0x7ee5)
	t := rctree.NewTree(name, 0.05e-15)
	trunkLen := 4 + r.Float64()*40 // µm
	nTrunk := 2 + r.Intn(3)
	cur := 0
	for i := 0; i < nTrunk; i++ {
		segLen := trunkLen / float64(nTrunk)
		cur = t.MustAddNode(fmt.Sprintf("t%d", i), cur, par.ROhmPerUm*segLen, par.CfFPerUm*segLen)
	}
	trunk := make([]int, 0, len(t.Nodes))
	for i := range t.Nodes {
		trunk = append(trunk, i)
	}
	for s := 0; s < nSinks; s++ {
		at := trunk[r.Intn(len(trunk))]
		branchLen := 1 + r.Float64()*15
		nb := 1 + r.Intn(2)
		cur := at
		for i := 0; i < nb; i++ {
			segLen := branchLen / float64(nb)
			nm := fmt.Sprintf("b%d_%d", s, i)
			if i == nb-1 {
				nm = fmt.Sprintf("sink%d", s)
			}
			cur = t.MustAddNode(nm, cur, par.ROhmPerUm*segLen, par.CfFPerUm*segLen)
		}
	}
	return t
}
