// Package liberty exports the characterised library as a Liberty (.lib)
// document with LVF-style variation tables. The paper positions the
// N-sigma model against the industry's Liberty Variation Format ("it
// calculates delay variation by indexing the input slew and the output
// load"); this exporter shows the characterisation artefacts of this
// repository are exactly LVF-shaped: per-arc cell_rise/cell_fall delay
// tables plus ocv_sigma tables on the same (slew, load) axes, with the
// higher moments carried as ocv_skewness / ocv_kurtosis extensions.
//
// The emitted subset is structural Liberty: enough for a reader to index
// and interpolate, not a drop-in for commercial signoff (no power, no
// constraint arcs).
package liberty

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/nsigma"
	"repro/internal/timinglib"
	"repro/internal/waveform"
)

// Export writes the coefficients file as a Liberty document.
func Export(w io.Writer, libName string, f *timinglib.File) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "library (%s) {\n", libName)
	fmt.Fprintf(bw, "  delay_model : table_lookup;\n")
	fmt.Fprintf(bw, "  time_unit : \"1ps\";\n")
	fmt.Fprintf(bw, "  capacitive_load_unit (1, ff);\n")
	fmt.Fprintf(bw, "  voltage_unit : \"1V\";\n")
	fmt.Fprintf(bw, "  nom_voltage : %.3g;\n", f.Vdd)
	fmt.Fprintf(bw, "  slew_derate_from_library : 1.0;\n")
	fmt.Fprintf(bw, "  default_max_transition : 600;\n\n")

	// Template declarations: one per distinct axis pair.
	type axes struct{ slews, loads string }
	templates := map[axes]string{}
	tmplOrder := []string{}
	tmplFor := func(lut *nsigma.MomentLUT) string {
		a := axes{joinPS(lut.Slews, 1e12), joinPS(lut.Loads, 1e15)}
		if name, ok := templates[a]; ok {
			return name
		}
		name := fmt.Sprintf("tmpl_%d", len(templates)+1)
		templates[a] = name
		tmplOrder = append(tmplOrder, name)
		fmt.Fprintf(bw, "  lu_table_template (%s) {\n", name)
		fmt.Fprintf(bw, "    variable_1 : input_net_transition;\n")
		fmt.Fprintf(bw, "    variable_2 : total_output_net_capacitance;\n")
		fmt.Fprintf(bw, "    index_1 (\"%s\");\n", a.slews)
		fmt.Fprintf(bw, "    index_2 (\"%s\");\n", a.loads)
		fmt.Fprintf(bw, "  }\n")
		return name
	}

	// Pre-declare templates in a deterministic pass.
	cellNames := make([]string, 0, len(f.Cells))
	for name := range f.Cells {
		cellNames = append(cellNames, name)
	}
	sort.Strings(cellNames)
	for _, cellName := range cellNames {
		info := f.Cells[cellName]
		for _, pin := range info.Inputs {
			for _, e := range []waveform.Edge{waveform.Rising, waveform.Falling} {
				if m, err := f.Arc(cellName, pin, e); err == nil {
					tmplFor(&m.LUT)
				}
			}
		}
	}
	fmt.Fprintln(bw)

	for _, cellName := range cellNames {
		info := f.Cells[cellName]
		fmt.Fprintf(bw, "  cell (%s) {\n", cellName)
		for _, pin := range info.Inputs {
			fmt.Fprintf(bw, "    pin (%s) {\n", pin)
			fmt.Fprintf(bw, "      direction : input;\n")
			fmt.Fprintf(bw, "      capacitance : %.6g;\n", info.PinCaps[pin]*1e15)
			fmt.Fprintf(bw, "    }\n")
		}
		fmt.Fprintf(bw, "    pin (Y) {\n")
		fmt.Fprintf(bw, "      direction : output;\n")
		for _, pin := range info.Inputs {
			// Timing groups per related input pin. All library cells
			// invert, so a rising input produces cell_fall and vice versa.
			rise, errR := f.Arc(cellName, pin, waveform.Falling) // output rise
			fall, errF := f.Arc(cellName, pin, waveform.Rising)  // output fall
			if errR != nil && errF != nil {
				continue
			}
			fmt.Fprintf(bw, "      timing () {\n")
			fmt.Fprintf(bw, "        related_pin : \"%s\";\n", pin)
			fmt.Fprintf(bw, "        timing_sense : negative_unate;\n")
			if errR == nil {
				writeTables(bw, "cell_rise", "rise_transition", tmplFor(&rise.LUT), &rise.LUT)
				writeOCV(bw, "rise", tmplFor(&rise.LUT), &rise.LUT)
			}
			if errF == nil {
				writeTables(bw, "cell_fall", "fall_transition", tmplFor(&fall.LUT), &fall.LUT)
				writeOCV(bw, "fall", tmplFor(&fall.LUT), &fall.LUT)
			}
			fmt.Fprintf(bw, "      }\n")
		}
		fmt.Fprintf(bw, "    }\n")
		fmt.Fprintf(bw, "  }\n\n")
	}
	fmt.Fprintf(bw, "}\n")
	return bw.Flush()
}

// writeTables emits the delay (µ) and transition tables of one arc.
func writeTables(w io.Writer, delayGroup, slewGroup, tmpl string, lut *nsigma.MomentLUT) {
	writeTable(w, delayGroup, tmpl, lut.Slews, lut.Mu, 1e12)
	writeTable(w, slewGroup, tmpl, lut.Slews, lut.OutSlew, 1e12)
}

// writeOCV emits the LVF-style variation tables: the σ table plus the
// higher-moment extensions the N-sigma model adds.
func writeOCV(w io.Writer, edge, tmpl string, lut *nsigma.MomentLUT) {
	writeTable(w, fmt.Sprintf("ocv_sigma_cell_%s", edge), tmpl, lut.Slews, lut.Sigma, 1e12)
	writeTable(w, fmt.Sprintf("ocv_skewness_cell_%s", edge), tmpl, lut.Slews, lut.Gamma, 1)
	writeTable(w, fmt.Sprintf("ocv_kurtosis_cell_%s", edge), tmpl, lut.Slews, lut.Kappa, 1)
}

func writeTable(w io.Writer, group, tmpl string, slews []float64, plane [][]float64, scale float64) {
	fmt.Fprintf(w, "        %s (%s) {\n", group, tmpl)
	fmt.Fprintf(w, "          values ( \\\n")
	for i := range slews {
		row := make([]string, len(plane[i]))
		for j, v := range plane[i] {
			row[j] = fmt.Sprintf("%.6g", v*scale)
		}
		sep := ", \\"
		if i == len(slews)-1 {
			sep = " \\"
		}
		fmt.Fprintf(w, "            \"%s\"%s\n", strings.Join(row, ", "), sep)
	}
	fmt.Fprintf(w, "          );\n")
	fmt.Fprintf(w, "        }\n")
}

func joinPS(vals []float64, scale float64) string {
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = fmt.Sprintf("%.6g", v*scale)
	}
	return strings.Join(out, ", ")
}
