package liberty

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/charlib"
	"repro/internal/device"
	"repro/internal/nsigma"
	"repro/internal/stdcell"
	"repro/internal/timinglib"
	"repro/internal/waveform"
)

func sampleFile() *timinglib.File {
	lib := stdcell.NewLibrary(device.Default28nm())
	f := timinglib.New(lib)
	mk := func(cell, pin string, e waveform.Edge, base float64) *nsigma.ArcModel {
		var quant nsigma.QuantileModel
		for i := range quant.Coeffs {
			quant.Coeffs[i] = make([]float64, len(nsigma.FeatureNames(i-3)))
		}
		return &nsigma.ArcModel{
			Arc: charlib.Arc{Cell: cell, Pin: pin, InEdge: e},
			LUT: nsigma.MomentLUT{
				Slews:   []float64{10e-12, 100e-12},
				Loads:   []float64{0.4e-15, 2e-15},
				Mu:      [][]float64{{base, 2 * base}, {1.5 * base, 3 * base}},
				Sigma:   [][]float64{{base / 10, base / 5}, {base / 10, base / 5}},
				Gamma:   [][]float64{{1, 1.2}, {0.9, 1.1}},
				Kappa:   [][]float64{{4, 5}, {4, 5}},
				OutSlew: [][]float64{{2 * base, 3 * base}, {2 * base, 3 * base}},
			},
			Quant: quant,
		}
	}
	f.AddArc(mk("INVx1", "A", waveform.Rising, 10e-12))
	f.AddArc(mk("INVx1", "A", waveform.Falling, 12e-12))
	f.AddArc(mk("NAND2x2", "B", waveform.Rising, 15e-12))
	return f
}

func TestExportStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := Export(&buf, "nsigma28", sampleFile()); err != nil {
		t.Fatal(err)
	}
	doc := buf.String()

	for _, want := range []string{
		"library (nsigma28) {",
		"delay_model : table_lookup;",
		"lu_table_template (tmpl_1)",
		"index_1 (\"10, 100\");",
		"index_2 (\"0.4, 2\");",
		"cell (INVx1) {",
		"pin (A) {",
		"pin (Y) {",
		"related_pin : \"A\";",
		"timing_sense : negative_unate;",
		"cell_rise (tmpl_1)",
		"cell_fall (tmpl_1)",
		"ocv_sigma_cell_rise",
		"ocv_skewness_cell_fall",
		"ocv_kurtosis_cell_rise",
		"cell (NAND2x2) {",
		"related_pin : \"B\";",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("Liberty output missing %q", want)
		}
	}
	// Balanced braces.
	if strings.Count(doc, "{") != strings.Count(doc, "}") {
		t.Fatalf("unbalanced braces: %d vs %d", strings.Count(doc, "{"), strings.Count(doc, "}"))
	}
}

func TestExportValues(t *testing.T) {
	var buf bytes.Buffer
	if err := Export(&buf, "x", sampleFile()); err != nil {
		t.Fatal(err)
	}
	doc := buf.String()
	// The INVx1 rise-output arc (falling input) has base 12 ps at the
	// reference corner; Liberty units are ps.
	if !strings.Contains(doc, "\"12, 24\"") {
		t.Error("cell_rise values not in ps or misplaced")
	}
	// Pin capacitance in fF.
	if !strings.Contains(doc, "capacitance :") {
		t.Error("pin capacitance missing")
	}
	// Every cell of the library must appear even without arcs (structural
	// completeness).
	for _, cell := range []string{"NOR2x8", "AOI2x4"} {
		if !strings.Contains(doc, "cell ("+cell+")") {
			t.Errorf("cell %s missing from export", cell)
		}
	}
}

func TestExportDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	f := sampleFile()
	if err := Export(&a, "x", f); err != nil {
		t.Fatal(err)
	}
	if err := Export(&b, "x", f); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("export not deterministic")
	}
}
