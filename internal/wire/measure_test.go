package wire

import (
	"context"
	"math"
	"reflect"
	"testing"

	"repro/internal/charlib"
	"repro/internal/rctree"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/stdcell"
	"repro/internal/waveform"
)

func smallCfg() *charlib.Config {
	cfg := charlib.DefaultConfig()
	cfg.Steps = 250
	return cfg
}

func demoStage() *Stage {
	t := rctree.NewTree("n", 0.1e-15)
	a := t.MustAddNode("a", 0, 300, 0.6e-15)
	b := t.MustAddNode("b", a, 400, 0.9e-15)
	return &Stage{
		Driver: "INVx2", DriverPin: "A", InEdge: waveform.Rising, InSlew: 20e-12,
		Tree:  t,
		Loads: []LoadSpec{{Leaf: b, Cell: "INVx2", Pin: "A"}},
	}
}

func TestMeasureStageOnceNominal(t *testing.T) {
	cfg := smallCfg()
	s, err := MeasureStageOnce(cfg, demoStage(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.CellDelay <= 0 || s.CellDelay > 200e-12 {
		t.Errorf("cell delay %v implausible", s.CellDelay)
	}
	if s.WireDelay <= 0 || s.WireDelay > 50e-12 {
		t.Errorf("wire delay %v implausible", s.WireDelay)
	}
	if s.LeafSlew < s.RootSlew {
		t.Errorf("slew shrank across the RC tree: root %v leaf %v", s.RootSlew, s.LeafSlew)
	}
}

func TestMeasureStageWireNearElmore(t *testing.T) {
	// With a slow-ish driver output the 50%–50% wire delay must land near
	// the Elmore number computed with the load pin cap included.
	cfg := smallCfg()
	st := demoStage()
	s, err := MeasureStageOnce(cfg, st, nil)
	if err != nil {
		t.Fatal(err)
	}
	lc := cfg.Lib.MustCell("INVx2")
	withPin := st.Tree.Clone()
	withPin.Nodes[st.Loads[0].Leaf].C += lc.PinCap("A")
	elm := withPin.Elmore(st.Loads[0].Leaf)
	if e := stats.RelErr(s.WireDelay, elm); e > 35 {
		t.Fatalf("wire delay %v vs Elmore %v differ %v%%", s.WireDelay, elm, e)
	}
}

func TestMeasureStageValidation(t *testing.T) {
	cfg := smallCfg()
	st := demoStage()
	st.Driver = "GHOSTx1"
	if _, err := MeasureStageOnce(cfg, st, nil); err == nil {
		t.Fatal("unknown driver accepted")
	}
	st = demoStage()
	st.Loads = nil
	if _, err := MeasureStageOnce(cfg, st, nil); err == nil {
		t.Fatal("no loads accepted")
	}
	st = demoStage()
	st.Target = 5
	if _, err := MeasureStageOnce(cfg, st, nil); err == nil {
		t.Fatal("target out of range accepted")
	}
	st = demoStage()
	st.Loads[0].Cell = "GHOSTx1"
	if _, err := MeasureStageOnce(cfg, st, nil); err == nil {
		t.Fatal("unknown load cell accepted")
	}
	st = demoStage()
	st.Loads[0].Leaf = 99
	if _, err := MeasureStageOnce(cfg, st, nil); err == nil {
		t.Fatal("leaf out of range accepted")
	}
}

func TestMCStageDeterministicAcrossWorkers(t *testing.T) {
	st := demoStage()
	run := func(workers int) *StageSamples {
		cfg := smallCfg()
		cfg.Workers = workers
		ss, err := MCStage(context.Background(), cfg, st, 12, 5)
		if err != nil {
			t.Fatal(err)
		}
		return ss
	}
	if !reflect.DeepEqual(run(1), run(8)) {
		t.Fatal("MCStage depends on worker count")
	}
}

func TestStableKeysShareDraws(t *testing.T) {
	// The same gate key must produce identical cell delay whether the gate
	// appears as the driver of this stage or as a load elsewhere —
	// demonstrated by repeating a run with the same ctx and keys.
	cfg := smallCfg()
	st := demoStage()
	st.DriverKey = stdcell.KeyFromString("gate:U7")
	st.TreeKey = stdcell.KeyFromString("net:n")
	st.Loads[0].Key = stdcell.KeyFromString("gate:U8")
	mk := func() *stdcell.SampleCtx {
		r := rng.New(42)
		return &stdcell.SampleCtx{Model: cfg.Var, Corner: cfg.Var.SampleCorner(r), Base: r}
	}
	a, err := MeasureStageOnce(cfg, st, mk())
	if err != nil {
		t.Fatal(err)
	}
	b, err := MeasureStageOnce(cfg, st, mk())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same keys/same sample gave different results: %+v vs %+v", a, b)
	}
	// Changing only the load key must change the result (its transistors
	// load the net).
	st.Loads[0].Key = stdcell.KeyFromString("gate:U9")
	c, err := MeasureStageOnce(cfg, st, mk())
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("load key has no effect on the measurement")
	}
}

func TestVariabilityTrendsWithLoadStrength(t *testing.T) {
	// The paper's Fig. 8 load trend, at reduced sample count: σ_w/µ_w must
	// rise with the load cell strength — a bigger load cell contributes
	// more (and more variable) capacitance to the net. (The paper's driver
	// trend is weaker under this repository's global-dominated variation
	// split and is reported, not asserted; see EXPERIMENTS.md.)
	if testing.Short() {
		t.Skip("MC trend test")
	}
	cfg := smallCfg()
	xw := func(load string) float64 {
		st := demoStage()
		st.Loads[0].Cell = load
		ss, err := MCStage(context.Background(), cfg, st, 400, 77)
		if err != nil {
			t.Fatal(err)
		}
		m := stats.ComputeMoments(ss.Wire)
		return m.Std / m.Mean
	}
	small := xw("INVx1")
	big := xw("INVx8")
	if !(big > small) {
		t.Fatalf("sigma/mu should rise with load strength: x1=%v x8=%v", small, big)
	}
	if math.IsNaN(small) || small <= 0 {
		t.Fatalf("small-load variability %v", small)
	}
}
