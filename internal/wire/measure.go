// Package wire implements the paper's statistical wire-delay model: the
// Elmore delay supplies the mean (eq. 4), and the variability X_w = σ_w/µ_w
// is a linear combination of cell-specific coefficients X_FI (driver) and
// X_FO (load) rooted in Pelgrom's law (eqs. 5–7), normalised to an FO4
// inverter. Quantiles follow T_w(nσ) = (1 + n·X_w)·T_Elmore (eq. 9).
//
// The package also contains the golden stage measurement — driver cell +
// RC tree + transistor-level load cells simulated together — because the
// cell/wire interaction (shared driver resistance, load gate-capacitance
// variation) only exists when both sides are in one circuit.
package wire

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/charlib"
	"repro/internal/circuit"
	"repro/internal/rctree"
	"repro/internal/resilience"
	"repro/internal/rng"
	"repro/internal/stdcell"
	"repro/internal/waveform"
)

// LoadSpec attaches a load cell input pin to a leaf of the RC tree.
type LoadSpec struct {
	Leaf int    // tree node index
	Cell string // load cell name
	Pin  string // load cell input pin
	// Key is the stable variation-draw key of this load instance (0 means
	// derive one from the slice position).
	Key uint64
}

// Stage describes one driver → RC tree → load(s) measurement scenario.
type Stage struct {
	Driver    string // driver cell name
	DriverPin string // switching input pin of the driver
	InEdge    waveform.Edge
	InSlew    float64
	Tree      *rctree.Tree
	Loads     []LoadSpec
	// Target selects which load's leaf defines "the" wire delay (index into
	// Loads). Defaults to 0.
	Target int
	// DriverKey and TreeKey are the stable variation-draw keys of the
	// driver instance and the net parasitics (0 means use role defaults).
	// Stable keys let path-level Monte Carlo re-instantiate the same gate
	// with identical transistor parameters across adjacent stages.
	DriverKey uint64
	TreeKey   uint64
	// InWave, when non-nil, drives the stage input with an actual recorded
	// waveform (previous stage's leaf trace) instead of a synthetic ramp —
	// the golden path MC's waveform handoff. InSlew/InEdge still describe
	// the transition (edge direction and reporting).
	InWave *circuit.PWL
	// CaptureLeafWave asks MeasureStageOnce to return the trimmed leaf
	// waveform for handoff to the next stage.
	CaptureLeafWave bool
}

// Role-default sampler keys used when a Stage does not set explicit ones.
const (
	defaultDriverKey = 0xd1e5_0001
	defaultTreeKey   = 0xd1e5_0002
	defaultLoadKey   = 0xd1e5_1000 // + load index
)

func (st *Stage) driverKey() uint64 {
	if st.DriverKey != 0 {
		return st.DriverKey
	}
	return defaultDriverKey
}

func (st *Stage) treeKey() uint64 {
	if st.TreeKey != 0 {
		return st.TreeKey
	}
	return defaultTreeKey
}

func (st *Stage) loadKey(i int) uint64 {
	if st.Loads[i].Key != 0 {
		return st.Loads[i].Key
	}
	return defaultLoadKey + uint64(i)
}

// StageSample is one golden measurement of a stage.
type StageSample struct {
	CellDelay float64 // driver input 50 % → tree root 50 %
	WireDelay float64 // tree root 50 % → target leaf 50 %
	LeafSlew  float64 // effective-ramp slew at the target leaf
	RootSlew  float64 // effective-ramp slew at the tree root (driver output)
	// LeafWave is the trimmed leaf waveform, present when the stage asked
	// for CaptureLeafWave.
	LeafWave *circuit.PWL
}

// StageSamples collects Monte-Carlo results of a stage.
type StageSamples struct {
	Cell []float64
	Wire []float64
	Slew []float64
}

// MeasureStageOnce simulates a full stage once. ctx may be nil for a
// nominal run; when non-nil its corner and keyed sub-streams drive the
// device and wire-segment variation. The solver cache is checked out of
// cfg's pool for the duration of the call.
func MeasureStageOnce(cfg *charlib.Config, st *Stage, ctx *stdcell.SampleCtx) (StageSample, error) {
	cache := cfg.AcquireSolvers()
	defer cfg.ReleaseSolvers(cache)
	return MeasureStageOnceCached(cfg, st, ctx, cache)
}

// MeasureStageOnceCached is MeasureStageOnce with an explicit solver cache,
// for callers that hold one per worker across many samples (path-level
// Monte Carlo re-simulates the same stage topologies thousands of times).
// cache may be nil to compile fresh solvers. Results are bit-identical
// whether or not a cache is supplied.
func MeasureStageOnceCached(cfg *charlib.Config, st *Stage, ctx *stdcell.SampleCtx,
	cache *circuit.SolverCache) (StageSample, error) {
	var out StageSample
	drv := cfg.Lib.Cell(st.Driver)
	if drv == nil {
		return out, fmt.Errorf("wire: unknown driver cell %q", st.Driver)
	}
	if len(st.Loads) == 0 {
		return out, fmt.Errorf("wire: stage has no loads")
	}
	if st.Target < 0 || st.Target >= len(st.Loads) {
		return out, fmt.Errorf("wire: target %d out of range", st.Target)
	}

	ck := circuit.New()
	vdd := ck.NodeByName("vdd")
	ck.AddSource(vdd, circuit.DC(cfg.Tech.Vdd))
	in := ck.NodeByName("in")
	root := ck.NodeByName("root")

	// Input stimulus: either the recorded previous-stage waveform (golden
	// handoff) or a synthetic ramp of the requested slew.
	var inCross, transEnd float64
	if st.InWave != nil {
		var err error
		inCross, err = waveform.CrossTime(st.InWave.Times, st.InWave.Values,
			cfg.Tech.Vdd/2, bool(st.InEdge), 0)
		if err != nil {
			return out, fmt.Errorf("wire: input wave has no %s crossing: %w", st.InEdge, err)
		}
		transEnd = st.InWave.End()
		ck.AddSource(in, st.InWave)
	} else {
		const t0 = 5e-12
		ramp := circuit.Ramp{T0: t0, TRamp: waveform.RampTimeForSlew(st.InSlew)}
		if st.InEdge == waveform.Rising {
			ramp.V0, ramp.V1 = 0, cfg.Tech.Vdd
		} else {
			ramp.V0, ramp.V1 = cfg.Tech.Vdd, 0
		}
		inCross = t0 + 0.5*ramp.TRamp
		transEnd = t0 + ramp.TRamp
		ck.AddSource(in, ramp)
	}

	// Driver cell.
	pins := map[string]circuit.Node{"vdd": vdd, "Y": root, st.DriverPin: in}
	for pin, level := range drv.SensitizingLevels(st.DriverPin) {
		n := ck.NodeByName("drvbias_" + pin)
		if level {
			ck.AddSource(n, circuit.DC(cfg.Tech.Vdd))
		} else {
			ck.AddSource(n, circuit.DC(0))
		}
		pins[pin] = n
	}
	drv.Build(ck, pins, ctx.SamplerFor(st.driverKey()))

	// RC tree with per-segment variation from the same sample.
	var topt *rctree.BuildOptions
	if ctx != nil {
		ts := ctx.SamplerFor(st.treeKey())
		topt = &rctree.BuildOptions{Variation: ts.Model, Corner: ts.Corner, R: ts.R}
	}
	treeNodes := st.Tree.Build(ck, root, topt)

	// Load cells at the leaves: full transistor instances, so their gate
	// capacitance (and its variation) loads the net realistically.
	for li, ls := range st.Loads {
		lc := cfg.Lib.Cell(ls.Cell)
		if lc == nil {
			return out, fmt.Errorf("wire: unknown load cell %q", ls.Cell)
		}
		if ls.Leaf < 0 || ls.Leaf >= len(st.Tree.Nodes) {
			return out, fmt.Errorf("wire: load %d leaf %d out of range", li, ls.Leaf)
		}
		lpins := map[string]circuit.Node{
			"vdd":  vdd,
			"Y":    ck.NewNode(fmt.Sprintf("loadout%d", li)),
			ls.Pin: treeNodes[ls.Leaf],
		}
		for pin, level := range lc.SensitizingLevels(ls.Pin) {
			n := ck.NodeByName(fmt.Sprintf("ldbias%d_%s", li, pin))
			if level {
				ck.AddSource(n, circuit.DC(cfg.Tech.Vdd))
			} else {
				ck.AddSource(n, circuit.DC(0))
			}
			lpins[pin] = n
		}
		lc.Build(ck, lpins, ctx.SamplerFor(st.loadKey(li)))
		// Give the load cell's own output a small fanout so its switching
		// current is realistic rather than an unloaded glitch.
		ck.AddCapacitor(lpins["Y"], circuit.Ground, lc.PinCap(ls.Pin))
	}

	target := treeNodes[st.Loads[st.Target].Leaf]

	// Simulation window: input transition plus driver + wire time constants.
	tau := st.Tree.Elmore(st.Loads[st.Target].Leaf) + st.Tree.TotalCap()*50e3 // generous driver R guess
	window := transEnd + 40*(tau+8e-12)
	var lastErr error
	for attempt := 0; attempt < 4; attempt++ {
		res, err := ck.TransientCached(cache, circuit.SimOptions{TStop: window, DT: window / 500})
		if err != nil {
			return out, err
		}
		s, err := measureStageWaveforms(cfg, res, 0, inCross, st.InEdge, root, target)
		if err == nil {
			if st.CaptureLeafWave {
				tt, vv := waveform.TrimTransition(res.Times, res.Waveform(target), cfg.Tech.Vdd)
				pwl, perr := circuit.NewPWL(tt, vv)
				if perr != nil {
					return out, perr
				}
				s.LeafWave = pwl
			}
			return s, nil
		}
		lastErr = err
		window *= 3
	}
	return out, fmt.Errorf("wire: stage did not settle: %w", lastErr)
}

func measureStageWaveforms(cfg *charlib.Config, res *circuit.Result, searchFrom, inCross float64,
	inEdge waveform.Edge, root, target circuit.Node) (StageSample, error) {
	var s StageSample
	vdd := cfg.Tech.Vdd
	outEdge := inEdge.Opposite()
	// All crossings are searched from the stimulus onset: a fast driver
	// under a slow input may switch before the input midpoint (negative
	// cell delay, physical), and the leaf follows the root causally.
	rootCross, err := waveform.CrossTime(res.Times, res.Waveform(root), vdd/2, bool(outEdge), searchFrom)
	if err != nil {
		return s, fmt.Errorf("root crossing: %w", err)
	}
	leafCross, err := waveform.CrossTime(res.Times, res.Waveform(target), vdd/2, bool(outEdge), rootCross)
	if err != nil {
		return s, fmt.Errorf("leaf crossing: %w", err)
	}
	s.CellDelay = rootCross - inCross
	s.WireDelay = leafCross - rootCross
	s.RootSlew, err = waveform.MeasureSlew(res.Times, res.Waveform(root), vdd, outEdge, searchFrom)
	if err != nil {
		return s, fmt.Errorf("root slew: %w", err)
	}
	s.LeafSlew, err = waveform.MeasureSlew(res.Times, res.Waveform(target), vdd, outEdge, searchFrom)
	if err != nil {
		return s, fmt.Errorf("leaf slew: %w", err)
	}
	final := waveform.LastValue(res.Waveform(target))
	settled := (outEdge == waveform.Rising && final > 0.95*vdd) ||
		(outEdge == waveform.Falling && final < 0.05*vdd)
	if !settled {
		return s, fmt.Errorf("target leaf not settled (%.3g V)", final)
	}
	return s, nil
}

// MCStage runs n Monte-Carlo samples of a stage, deterministically in the
// sample index regardless of worker count. The first sample failure (or a
// context cancellation) stops all workers promptly instead of letting them
// keep burning CPU on a doomed run, and worker panics surface as classified
// errors rather than killing the process.
func MCStage(ctx context.Context, cfg *charlib.Config, st *Stage, n int, seed uint64) (*StageSamples, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	out := &StageSamples{
		Cell: make([]float64, n),
		Wire: make([]float64, n),
		Slew: make([]float64, n),
	}
	base := rng.New(seed)
	workers := 1
	if cfg.Workers != 0 {
		workers = cfg.Workers
	} else {
		workers = defaultWorkers()
	}
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	var (
		mu       sync.Mutex
		firstErr error
	)
	fatal := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cache := cfg.AcquireSolvers()
			defer cfg.ReleaseSolvers(cache)
			for i := range next {
				if runCtx.Err() != nil {
					return
				}
				var s StageSample
				err := resilience.Safely(fmt.Sprintf("stage sample %d", i), func() error {
					r := base.At(i)
					sctx := &stdcell.SampleCtx{Model: cfg.Var, Corner: cfg.Var.SampleCorner(r), Base: r}
					var merr error
					s, merr = MeasureStageOnceCached(cfg, st, sctx, cache)
					return merr
				})
				if err != nil {
					fatal(resilience.Wrap(fmt.Sprintf("wire: sample %d", i), err))
					return
				}
				out.Cell[i] = s.CellDelay
				out.Wire[i] = s.WireDelay
				out.Slew[i] = s.LeafSlew
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, resilience.Wrap("wire: stage Monte-Carlo", err)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
