package wire

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"

	"repro/internal/linalg"
)

func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Calibration is the fitted wire-variability model: the FO4 baseline ratio
// and the per-cell X_FI / X_FO coefficients of eqs. (6)–(7). Cell names key
// both maps.
type Calibration struct {
	// R4 is σ_FO4/µ_FO4, the delay-variability ratio of the INVx4 baseline
	// under the FO4 constraint (eq. 6's normaliser).
	R4 float64 `json:"r4"`
	// CellRatio is σ_c/µ_c of each cell under the FO4 constraint.
	CellRatio map[string]float64 `json:"cellRatio"`
	// XFI and XFO are the fitted driver/load coefficients.
	XFI map[string]float64 `json:"xfi"`
	XFO map[string]float64 `json:"xfo"`
}

// XW evaluates eq. (7): the wire-delay variability σ_w/µ_w for a net driven
// by driver and loaded by load.
func (c *Calibration) XW(driver, load string) (float64, error) {
	xfi, ok := c.XFI[driver]
	if !ok {
		return 0, fmt.Errorf("wire: no X_FI for driver cell %q", driver)
	}
	xfo, ok := c.XFO[load]
	if !ok {
		return 0, fmt.Errorf("wire: no X_FO for load cell %q", load)
	}
	rfi, ok := c.CellRatio[driver]
	if !ok {
		return 0, fmt.Errorf("wire: no variability ratio for driver cell %q", driver)
	}
	rfo, ok := c.CellRatio[load]
	if !ok {
		return 0, fmt.Errorf("wire: no variability ratio for load cell %q", load)
	}
	return xfi*rfi + xfo*rfo, nil
}

// Quantile evaluates eq. (9): T_w(nσ) = (1 + n·X_w)·T_Elmore.
func Quantile(elmore, xw float64, n int) float64 {
	return (1 + float64(n)*xw) * elmore
}

// Sigma evaluates eq. (8): σ_w = X_w·T_Elmore.
func Sigma(elmore, xw float64) float64 { return xw * elmore }

// PelgromPrior returns the theoretical eq. (5) coefficient for a cell with
// the given stack depth and strength, normalised to the INVx4 baseline
// (stack 1, strength 4): √(4 / (stack·strength)).
func PelgromPrior(stack, strength int) float64 {
	if stack <= 0 || strength <= 0 {
		return 1
	}
	return math.Sqrt(4 / (float64(stack) * float64(strength)))
}

// Observation is one golden training point for the X-coefficient fit: a
// (driver, load) pair with the measured wire-delay variability.
type Observation struct {
	Driver string
	Load   string
	XW     float64 // measured σ_w/µ_w
}

// FitOptions tunes the calibration fit.
type FitOptions struct {
	// PriorWeight controls the Tikhonov rows that anchor each coefficient
	// to its Pelgrom prior (eq. 5). The additive driver/load decomposition
	// of eq. (7) has a gauge freedom (shifting variability between X_FI and
	// X_FO); the prior rows fix it and encode the physics. Default 0.05.
	PriorWeight float64
	// Prior supplies the per-cell Pelgrom prior; keys must cover every cell
	// appearing in the observations.
	Prior map[string]float64
}

// Fit solves for the per-cell X_FI/X_FO coefficients by least squares over
// golden observations, per the paper's "fitting MC simulations" (Fig. 9).
// cellRatio must hold σ/µ of every involved cell, and r4 the FO4 baseline.
func Fit(obs []Observation, cellRatio map[string]float64, r4 float64, opt FitOptions) (*Calibration, error) {
	if len(obs) == 0 {
		return nil, errors.New("wire: no observations to fit")
	}
	if r4 <= 0 {
		return nil, errors.New("wire: FO4 baseline ratio must be positive")
	}
	if opt.PriorWeight == 0 {
		opt.PriorWeight = 0.05
	}

	// Collect the distinct driver and load cells, deterministically.
	driverSet := map[string]bool{}
	loadSet := map[string]bool{}
	for _, o := range obs {
		driverSet[o.Driver] = true
		loadSet[o.Load] = true
	}
	drivers := sortedKeys(driverSet)
	loads := sortedKeys(loadSet)
	col := make(map[string]int, len(drivers)+len(loads))
	for i, d := range drivers {
		col["fi:"+d] = i
	}
	for i, l := range loads {
		col["fo:"+l] = len(drivers) + i
	}
	ncol := len(drivers) + len(loads)

	var xwScale float64
	for _, o := range obs {
		xwScale += math.Abs(o.XW)
	}
	xwScale /= float64(len(obs))

	rows := make([][]float64, 0, len(obs)+ncol)
	rhs := make([]float64, 0, len(obs)+ncol)
	for _, o := range obs {
		rfi, ok := cellRatio[o.Driver]
		if !ok {
			return nil, fmt.Errorf("wire: missing variability ratio for %q", o.Driver)
		}
		rfo, ok := cellRatio[o.Load]
		if !ok {
			return nil, fmt.Errorf("wire: missing variability ratio for %q", o.Load)
		}
		row := make([]float64, ncol)
		row[col["fi:"+o.Driver]] = rfi
		row[col["fo:"+o.Load]] = rfo
		rows = append(rows, row)
		rhs = append(rhs, o.XW)
	}
	// Prior rows: PriorWeight·xwScale·(x_c − prior_c) = 0, splitting the
	// measured variability evenly between the FI and FO halves a priori.
	lambda := opt.PriorWeight * xwScale
	addPrior := func(key, cell string) error {
		p, ok := opt.Prior[cell]
		if !ok {
			return fmt.Errorf("wire: missing Pelgrom prior for %q", cell)
		}
		row := make([]float64, ncol)
		row[col[key]] = lambda
		rows = append(rows, row)
		rhs = append(rhs, lambda*p/2)
		return nil
	}
	for _, d := range drivers {
		if err := addPrior("fi:"+d, d); err != nil {
			return nil, err
		}
	}
	for _, l := range loads {
		if err := addPrior("fo:"+l, l); err != nil {
			return nil, err
		}
	}

	sol, err := linalg.LeastSquares(linalg.FromRows(rows), rhs)
	if err != nil {
		return nil, fmt.Errorf("wire: X coefficient fit: %w", err)
	}
	cal := &Calibration{
		R4:        r4,
		CellRatio: copyMap(cellRatio),
		XFI:       make(map[string]float64, len(drivers)),
		XFO:       make(map[string]float64, len(loads)),
	}
	for _, d := range drivers {
		cal.XFI[d] = sol[col["fi:"+d]]
	}
	for _, l := range loads {
		cal.XFO[l] = sol[col["fo:"+l]]
	}
	return cal, nil
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func copyMap(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
