package wire

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/stats"
)

func TestPelgromPrior(t *testing.T) {
	if p := PelgromPrior(1, 4); p != 1 {
		t.Fatalf("INVx4 baseline prior %v want 1", p)
	}
	if p := PelgromPrior(1, 1); math.Abs(p-2) > 1e-12 {
		t.Fatalf("INVx1 prior %v want 2", p)
	}
	if p := PelgromPrior(2, 2); math.Abs(p-1) > 1e-12 {
		t.Fatalf("stack-2 strength-2 prior %v want 1", p)
	}
	if p := PelgromPrior(0, 0); p != 1 {
		t.Fatalf("degenerate prior %v want 1", p)
	}
}

func TestQuantileAndSigma(t *testing.T) {
	const elmore, xw = 10e-12, 0.1
	if got := Quantile(elmore, xw, 0); got != elmore {
		t.Fatalf("0σ quantile %v", got)
	}
	if got := Quantile(elmore, xw, 3); math.Abs(got-13e-12) > 1e-24 {
		t.Fatalf("+3σ quantile %v want 13ps", got)
	}
	if got := Quantile(elmore, xw, -3); math.Abs(got-7e-12) > 1e-24 {
		t.Fatalf("-3σ quantile %v want 7ps", got)
	}
	if got := Sigma(elmore, xw); math.Abs(got-1e-12) > 1e-24 {
		t.Fatalf("σ_w %v", got)
	}
}

// synthetic fit scenario: planted XFI/XFO coefficients and cell ratios.
func plantedFit(t *testing.T, noise float64) (*Calibration, map[string]float64, map[string]float64) {
	t.Helper()
	cells := []string{"INVx1", "INVx2", "INVx4", "INVx8", "NAND2x2"}
	ratio := map[string]float64{
		"INVx1": 0.20, "INVx2": 0.15, "INVx4": 0.10, "INVx8": 0.07, "NAND2x2": 0.12,
	}
	prior := map[string]float64{
		"INVx1": 2, "INVx2": 1.41, "INVx4": 1, "INVx8": 0.71, "NAND2x2": 1,
	}
	wantXFI := map[string]float64{
		"INVx1": 0.9, "INVx2": 0.8, "INVx4": 0.7, "INVx8": 0.65, "NAND2x2": 0.75,
	}
	wantXFO := map[string]float64{
		"INVx1": 0.3, "INVx2": 0.45, "INVx4": 0.6, "INVx8": 0.8, "NAND2x2": 0.5,
	}
	r := rng.New(21)
	var obs []Observation
	for _, d := range cells {
		for _, l := range cells {
			xw := wantXFI[d]*ratio[d] + wantXFO[l]*ratio[l]
			xw *= 1 + noise*r.NormFloat64()
			obs = append(obs, Observation{Driver: d, Load: l, XW: xw})
		}
	}
	cal, err := Fit(obs, ratio, ratio["INVx4"], FitOptions{Prior: prior, PriorWeight: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	return cal, wantXFI, wantXFO
}

func TestFitReproducesObservations(t *testing.T) {
	cal, wantXFI, wantXFO := plantedFit(t, 0)
	// The additive decomposition has a gauge freedom, so individual
	// coefficients may shift — but predictions must match the planted
	// model everywhere.
	ratio := cal.CellRatio
	for d := range wantXFI {
		for l := range wantXFO {
			want := wantXFI[d]*ratio[d] + wantXFO[l]*ratio[l]
			got, err := cal.XW(d, l)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 0.005*want {
				t.Errorf("XW(%s,%s) = %v want %v", d, l, got, want)
			}
		}
	}
}

func TestFitRobustToNoise(t *testing.T) {
	cal, wantXFI, wantXFO := plantedFit(t, 0.05)
	ratio := cal.CellRatio
	var worst float64
	for d := range wantXFI {
		for l := range wantXFO {
			want := wantXFI[d]*ratio[d] + wantXFO[l]*ratio[l]
			got, _ := cal.XW(d, l)
			if e := stats.RelErr(got, want); e > worst {
				worst = e
			}
		}
	}
	if worst > 10 {
		t.Fatalf("noisy fit worst error %v%%", worst)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, nil, 0.1, FitOptions{}); err == nil {
		t.Fatal("empty observations accepted")
	}
	obs := []Observation{{Driver: "a", Load: "b", XW: 0.1}}
	if _, err := Fit(obs, map[string]float64{"a": 0.1, "b": 0.1}, 0, FitOptions{}); err == nil {
		t.Fatal("zero baseline accepted")
	}
	if _, err := Fit(obs, map[string]float64{"a": 0.1}, 0.1,
		FitOptions{Prior: map[string]float64{"a": 1, "b": 1}}); err == nil {
		t.Fatal("missing ratio accepted")
	}
	if _, err := Fit(obs, map[string]float64{"a": 0.1, "b": 0.1}, 0.1,
		FitOptions{Prior: map[string]float64{"a": 1}}); err == nil {
		t.Fatal("missing prior accepted")
	}
}

func TestXWMissingCells(t *testing.T) {
	cal := &Calibration{
		R4:        0.1,
		CellRatio: map[string]float64{"INVx4": 0.1},
		XFI:       map[string]float64{"INVx4": 0.5},
		XFO:       map[string]float64{"INVx4": 0.5},
	}
	if _, err := cal.XW("INVx4", "INVx4"); err != nil {
		t.Fatal(err)
	}
	if _, err := cal.XW("ghost", "INVx4"); err == nil {
		t.Fatal("unknown driver accepted")
	}
	if _, err := cal.XW("INVx4", "ghost"); err == nil {
		t.Fatal("unknown load accepted")
	}
}

func TestStageKeyDefaults(t *testing.T) {
	st := &Stage{Loads: []LoadSpec{{}, {Key: 99}}}
	if st.driverKey() == 0 || st.treeKey() == 0 {
		t.Fatal("default keys must be nonzero")
	}
	if st.loadKey(0) == st.loadKey(1) {
		t.Fatal("distinct loads must get distinct default keys")
	}
	if st.loadKey(1) != 99 {
		t.Fatal("explicit load key ignored")
	}
	st.DriverKey = 7
	st.TreeKey = 8
	if st.driverKey() != 7 || st.treeKey() != 8 {
		t.Fatal("explicit keys ignored")
	}
}
