package variation

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestPelgromAreaScaling(t *testing.T) {
	m := Default28nm()
	s1 := m.LocalVthSigma(100e-9, 30e-9)
	s4 := m.LocalVthSigma(400e-9, 30e-9)
	if math.Abs(s1/s4-2) > 1e-9 {
		t.Fatalf("4x width must halve sigma: %v vs %v", s1, s4)
	}
	if s1 <= 0 {
		t.Fatal("sigma must be positive for positive area")
	}
	if m.LocalVthSigma(0, 30e-9) != 0 {
		t.Fatal("zero width must give zero sigma")
	}
}

func TestCornerDeterminism(t *testing.T) {
	m := Default28nm()
	a := m.SampleCorner(rng.New(9))
	b := m.SampleCorner(rng.New(9))
	if a != b {
		t.Fatalf("corner sampling not deterministic: %+v vs %+v", a, b)
	}
}

func TestCornerStatistics(t *testing.T) {
	m := Default28nm()
	r := rng.New(10)
	const n = 50000
	var sumV, sumV2 float64
	for i := 0; i < n; i++ {
		c := m.SampleCorner(r)
		sumV += c.DVthN
		sumV2 += c.DVthN * c.DVthN
	}
	mean := sumV / n
	std := math.Sqrt(sumV2/n - mean*mean)
	if math.Abs(mean) > 3*m.GlobalVthSigma/math.Sqrt(n)*5 {
		t.Errorf("global Vth mean %v not centred", mean)
	}
	if math.Abs(std-m.GlobalVthSigma)/m.GlobalVthSigma > 0.05 {
		t.Errorf("global Vth sigma %v want %v", std, m.GlobalVthSigma)
	}
}

func TestMultipliersClamped(t *testing.T) {
	m := Default28nm()
	// Blow up the sigmas so the Gaussian tail would go negative without
	// clamping.
	m.GlobalBetaSigma = 3
	r := rng.New(11)
	for i := 0; i < 10000; i++ {
		c := m.SampleCorner(r)
		if c.BetaN <= 0 || c.BetaP <= 0 || c.WireR <= 0 || c.WireC <= 0 || c.Cap <= 0 {
			t.Fatalf("multiplier went non-positive: %+v", c)
		}
	}
}

func TestNominalCorner(t *testing.T) {
	if Nominal.BetaN != 1 || Nominal.BetaP != 1 || Nominal.Cap != 1 ||
		Nominal.WireR != 1 || Nominal.WireC != 1 ||
		Nominal.DVthN != 0 || Nominal.DVthP != 0 {
		t.Fatalf("Nominal corner wrong: %+v", Nominal)
	}
}

func TestLocalSamplesCentred(t *testing.T) {
	m := Default28nm()
	r := rng.New(12)
	const n = 100000
	w, l := 200e-9, 30e-9
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := m.SampleLocalVth(r, w, l)
		sum += v
		sum2 += v * v
	}
	std := math.Sqrt(sum2 / n)
	want := m.LocalVthSigma(w, l)
	if math.Abs(std-want)/want > 0.03 {
		t.Errorf("local Vth sigma %v want %v", std, want)
	}
}

func TestWireSegmentSampling(t *testing.T) {
	m := Default28nm()
	r := rng.New(13)
	corner := Corner{WireR: 1.2, WireC: 0.9, BetaN: 1, BetaP: 1, Cap: 1}
	const n = 50000
	var sumR, sumC float64
	for i := 0; i < n; i++ {
		rm, cm := m.SampleWireSegment(r, corner)
		if rm <= 0 || cm <= 0 {
			t.Fatal("non-positive wire multiplier")
		}
		sumR += rm
		sumC += cm
	}
	if math.Abs(sumR/n-1.2) > 0.01 {
		t.Errorf("wire R multiplier mean %v want ~1.2 (global corner)", sumR/n)
	}
	if math.Abs(sumC/n-0.9) > 0.01 {
		t.Errorf("wire C multiplier mean %v want ~0.9", sumC/n)
	}
}

func TestLocalCapSigmaScaling(t *testing.T) {
	m := Default28nm()
	r := rng.New(14)
	const n = 100000
	var sum2 float64
	for i := 0; i < n; i++ {
		d := m.SampleLocalCap(r, 100e-9, 30e-9) - 1
		sum2 += d * d
	}
	std := math.Sqrt(sum2 / n)
	want := m.ACap / math.Sqrt(0.1*0.03)
	if math.Abs(std-want)/want > 0.05 {
		t.Errorf("local cap sigma %v want %v", std, want)
	}
}
