// Package variation models process variation for a synthetic 28-nm-class
// technology: a *global* component shared by every device in one Monte-Carlo
// sample (lot/wafer corner drift) and a *local* mismatch component drawn per
// transistor following Pelgrom's law, σ(ΔV_th) = A_VT/√(W·L).
//
// The paper's wire-variability calibration (eqs. 5–7) is rooted in exactly
// this law — variability shrinks with the square root of device area, stack
// count and strength — so the golden simulator must generate variation with
// that structure for the calibration to be meaningful.
package variation

import (
	"math"

	"repro/internal/rng"
)

// Corner is one global process draw, shared by every device of a sample.
// Voltage shifts are in volts; the remaining fields are relative multipliers
// centred on 1.
type Corner struct {
	DVthN float64 // global NMOS threshold shift (V)
	DVthP float64 // global PMOS threshold shift (V), sign convention: added to |Vth|
	BetaN float64 // global NMOS transconductance multiplier
	BetaP float64 // global PMOS transconductance multiplier
	Cap   float64 // global device capacitance multiplier (oxide/CD drift)
	WireR float64 // global interconnect resistance multiplier
	WireC float64 // global interconnect capacitance multiplier
}

// Nominal is the variation-free corner.
var Nominal = Corner{BetaN: 1, BetaP: 1, Cap: 1, WireR: 1, WireC: 1}

// Model holds the statistical parameters of the technology.
type Model struct {
	// Global (die-to-die) sigmas.
	GlobalVthSigma  float64 // V
	GlobalBetaSigma float64 // relative
	GlobalCapSigma  float64 // relative, device capacitances (oxide thickness)
	WireRSigma      float64 // relative
	WireCSigma      float64 // relative

	// Local (within-die) Pelgrom coefficients.
	AVT   float64 // V·µm   — σ(ΔVth)  = AVT  /√(W·L), W and L in µm
	ABeta float64 // rel·µm — σ(Δβ/β) = ABeta/√(W·L)
	ACap  float64 // rel·µm — σ(ΔC/C)  = ACap /√(W·L), gate/junction caps

	// Local interconnect segment mismatch (relative, per segment).
	WireLocalR float64
	WireLocalC float64
}

// Default28nm returns variation parameters representative of a 28-nm
// low-power process (A_VT and global sigmas from published Pelgrom-law
// surveys; they set the *scale* of variability, not foundry-exact values).
func Default28nm() *Model {
	return &Model{
		// The global/local split matters beyond the cell level: path-delay
		// spread under eq. (10)'s quantile summation tracks the golden MC
		// only when the correlated (global) component carries most of the
		// variance, which is the regime the paper's foundry data sits in.
		GlobalVthSigma:  0.016, // 16 mV die-to-die
		GlobalBetaSigma: 0.08,
		GlobalCapSigma:  0.04,
		WireRSigma:      0.08,
		WireCSigma:      0.05,
		AVT:             0.0004, // 0.4 mV·µm
		ABeta:           0.003,  // 0.3 %·µm
		ACap:            0.003,  // 0.3 %·µm
		WireLocalR:      0.03,
		WireLocalC:      0.02,
	}
}

// SampleCorner draws one global corner.
func (m *Model) SampleCorner(r *rng.Stream) Corner {
	return Corner{
		DVthN: m.GlobalVthSigma * r.NormFloat64(),
		DVthP: m.GlobalVthSigma * r.NormFloat64(),
		BetaN: clampMult(1 + m.GlobalBetaSigma*r.NormFloat64()),
		BetaP: clampMult(1 + m.GlobalBetaSigma*r.NormFloat64()),
		Cap:   clampMult(1 + m.GlobalCapSigma*r.NormFloat64()),
		WireR: clampMult(1 + m.WireRSigma*r.NormFloat64()),
		WireC: clampMult(1 + m.WireCSigma*r.NormFloat64()),
	}
}

// LocalVthSigma returns σ(ΔVth) in volts for a device of the given geometry
// (metres), per Pelgrom's law.
func (m *Model) LocalVthSigma(widthM, lengthM float64) float64 {
	wUm := widthM * 1e6
	lUm := lengthM * 1e6
	if wUm <= 0 || lUm <= 0 {
		return 0
	}
	return m.AVT / math.Sqrt(wUm*lUm)
}

// LocalBetaSigma returns the relative σ(Δβ/β) for a device geometry (metres).
func (m *Model) LocalBetaSigma(widthM, lengthM float64) float64 {
	wUm := widthM * 1e6
	lUm := lengthM * 1e6
	if wUm <= 0 || lUm <= 0 {
		return 0
	}
	return m.ABeta / math.Sqrt(wUm*lUm)
}

// SampleLocalVth draws a local threshold shift for a device geometry.
func (m *Model) SampleLocalVth(r *rng.Stream, widthM, lengthM float64) float64 {
	return m.LocalVthSigma(widthM, lengthM) * r.NormFloat64()
}

// SampleLocalBeta draws a local β multiplier for a device geometry.
func (m *Model) SampleLocalBeta(r *rng.Stream, widthM, lengthM float64) float64 {
	return clampMult(1 + m.LocalBetaSigma(widthM, lengthM)*r.NormFloat64())
}

// SampleLocalCap draws a local capacitance multiplier for a device geometry
// (same Pelgrom area law with the ACap coefficient).
func (m *Model) SampleLocalCap(r *rng.Stream, widthM, lengthM float64) float64 {
	wUm := widthM * 1e6
	lUm := lengthM * 1e6
	if wUm <= 0 || lUm <= 0 {
		return 1
	}
	sigma := m.ACap / math.Sqrt(wUm*lUm)
	return clampMult(1 + sigma*r.NormFloat64())
}

// SampleWireSegment draws (R multiplier, C multiplier) for one RC segment,
// combining the global corner with local per-segment mismatch.
func (m *Model) SampleWireSegment(r *rng.Stream, c Corner) (rMult, cMult float64) {
	rMult = clampMult(c.WireR * (1 + m.WireLocalR*r.NormFloat64()))
	cMult = clampMult(c.WireC * (1 + m.WireLocalC*r.NormFloat64()))
	return rMult, cMult
}

// clampMult keeps relative multipliers physical (positive); the Gaussian
// tails beyond ±4σ would otherwise occasionally produce negative R, C or β.
func clampMult(x float64) float64 {
	const floor = 0.05
	if x < floor {
		return floor
	}
	return x
}
