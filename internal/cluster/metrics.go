package cluster

import "repro/internal/obs"

// nodeMetrics are the cluster families on the default obs registry. They
// are registered per Node (not at package init) so single-node timingd
// scrapes stay free of cluster families; multiple nodes in one test process
// share the families, each merging its own peer label values in.
type nodeMetrics struct {
	forwards    *obs.CounterVec // requests redirected/proxied to an owner, by peer
	forwardErrs *obs.CounterVec // proxy forwards failing transport or 5xx, by peer
	breakerOpen *obs.GaugeVec   // 1 while the breaker to a peer is open
	lag         *obs.GaugeVec   // replication lag in edit seqs, by replica peer
	hbFails     *obs.CounterVec // failed heartbeat probes, by peer
	shipped     *obs.CounterVec // snapshot shipments acked by a replica, by peer
	alive       *obs.Gauge      // peers currently in the ring (incl. self)
	applied     *obs.Counter    // replicated snapshots applied on this node
	skipped     *obs.Counter    // replicated snapshots skipped as stale
	promotions  *obs.Counter    // designs this node promoted itself to own
	fenced      *obs.Counter    // stale-epoch internal requests rejected here
	leaseEpoch  *obs.GaugeVec   // current lease epoch, by design
}

func newNodeMetrics(peers []string) *nodeMetrics {
	r := obs.Default()
	return &nodeMetrics{
		forwards: r.CounterVec("cluster_forwards_total",
			"Requests forwarded (redirect or proxy) to a design's owner, by peer.", "peer", peers...),
		forwardErrs: r.CounterVec("cluster_forward_errors_total",
			"Proxied forwards that failed with a transport error or 5xx, by peer.", "peer", peers...),
		breakerOpen: r.GaugeVec("cluster_breaker_open",
			"1 while the circuit breaker to a peer is open, else 0.", "peer", peers...),
		lag: r.GaugeVec("cluster_replication_lag_seqs",
			"Edit sequences a replica lags behind this owner, by peer.", "peer", peers...),
		hbFails: r.CounterVec("cluster_heartbeat_failures_total",
			"Failed heartbeat probes, by peer.", "peer", peers...),
		shipped: r.CounterVec("cluster_replicate_shipped_total",
			"Snapshot shipments acknowledged by a replica, by peer.", "peer", peers...),
		alive: r.Gauge("cluster_peers_alive",
			"Peers currently alive in the ring, including this node."),
		applied: r.Counter("cluster_replicate_applied_total",
			"Replicated snapshots applied on this node."),
		skipped: r.Counter("cluster_replicate_skipped_total",
			"Replicated snapshots skipped as stale (idempotent re-ship)."),
		promotions: r.Counter("cluster_promotions_total",
			"Designs this node promoted itself to own after winning a lease claim."),
		fenced: r.Counter("cluster_fenced_requests_total",
			"Internal requests rejected with stale_epoch on this node."),
		leaseEpoch: r.GaugeVec("cluster_lease_epoch",
			"Current ownership-lease epoch of a design, by design.", "design"),
	}
}

// ensurePeer merges a freshly joined peer's label value into the per-peer
// families (a value registered late gets its own series instead of the
// bounded "other" overflow). Re-registration returns the same underlying
// family, so the vec fields themselves never change — no reassignment.
func (m *nodeMetrics) ensurePeer(peer string) {
	r := obs.Default()
	r.CounterVec("cluster_forwards_total", "", "peer", peer)
	r.CounterVec("cluster_forward_errors_total", "", "peer", peer)
	r.GaugeVec("cluster_breaker_open", "", "peer", peer)
	r.GaugeVec("cluster_replication_lag_seqs", "", "peer", peer)
	r.CounterVec("cluster_heartbeat_failures_total", "", "peer", peer)
	r.CounterVec("cluster_replicate_shipped_total", "", "peer", peer)
}

// ensureDesign merges a design's label value into the lease-epoch family.
func (m *nodeMetrics) ensureDesign(design string) {
	obs.Default().GaugeVec("cluster_lease_epoch", "", "design", design)
}
