package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func peersN(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return out
}

func TestRingDeterministic(t *testing.T) {
	a := NewRing(peersN(5), 64)
	// Same membership in a different order must yield the same placement.
	shuffled := []string{peersN(5)[3], peersN(5)[0], peersN(5)[4], peersN(5)[2], peersN(5)[1]}
	b := NewRing(shuffled, 64)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("design-%d", i)
		if got, want := a.Lookup(key, 3), b.Lookup(key, 3); !reflect.DeepEqual(got, want) {
			t.Fatalf("key %q: placement differs across build orders: %v vs %v", key, got, want)
		}
	}
}

func TestRingLookupDistinctAndComplete(t *testing.T) {
	r := NewRing(peersN(4), 32)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("d%d", i)
		got := r.Lookup(key, 3)
		if len(got) != 3 {
			t.Fatalf("key %q: got %d peers, want 3", key, len(got))
		}
		seen := map[string]bool{}
		for _, p := range got {
			if seen[p] {
				t.Fatalf("key %q: duplicate peer %s in %v", key, p, got)
			}
			seen[p] = true
		}
		if got[0] != r.Owner(key) {
			t.Fatalf("key %q: Lookup[0] %s != Owner %s", key, got[0], r.Owner(key))
		}
	}
	// Asking for more peers than exist returns all of them.
	if got := r.Lookup("x", 10); len(got) != 4 {
		t.Fatalf("over-ask returned %d peers, want 4", len(got))
	}
	// Empty ring.
	if NewRing(nil, 8).Owner("x") != "" {
		t.Fatal("empty ring must own nothing")
	}
}

func TestRingBalance(t *testing.T) {
	peers := peersN(4)
	r := NewRing(peers, DefaultVNodes)
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("design/%d", i))]++
	}
	for _, p := range peers {
		frac := float64(counts[p]) / keys
		// Perfect balance is 0.25; with 64 vnodes the spread stays well
		// within a factor of two.
		if frac < 0.10 || frac > 0.45 {
			t.Fatalf("peer %s owns %.1f%% of keys — ring badly unbalanced: %v", p, 100*frac, counts)
		}
	}
}

// TestRingEjectionStability pins the consistent-hashing property the
// cluster relies on during failover: removing one peer must not move any
// key whose placement didn't involve that peer.
func TestRingEjectionStability(t *testing.T) {
	peers := peersN(5)
	full := NewRing(peers, 64)
	down := peers[2]
	survivors := append(append([]string{}, peers[:2]...), peers[3:]...)
	partial := NewRing(survivors, 64)
	moved := 0
	const keys = 1000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("design-%d", i)
		before, after := full.Owner(key), partial.Owner(key)
		if before != down && before != after {
			t.Fatalf("key %q moved %s → %s though its owner %s stayed up", key, before, after, before)
		}
		if before == down {
			moved++
			if after == down {
				t.Fatalf("key %q still placed on ejected peer", key)
			}
		}
	}
	if moved == 0 {
		t.Fatal("test vacuous: ejected peer owned no keys")
	}
}
