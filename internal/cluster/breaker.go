package cluster

import (
	"sync"
	"time"
)

// BreakerState is the classic three-state circuit-breaker automaton.
type BreakerState int

const (
	// BreakerClosed: requests flow; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: requests are refused until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed; probe requests are let through
	// and the first outcome decides between Closed and Open.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	default:
		return "half-open"
	}
}

// Breaker is a per-peer circuit breaker: `threshold` consecutive failures
// open it, `cooldown` later it half-opens and lets probes through, and one
// success closes it again. Safe for concurrent use.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	onOpen    func(open bool) // nil ok; called on open/not-open transitions

	mu       sync.Mutex
	state    BreakerState
	failures int
	openedAt time.Time
	now      func() time.Time // injectable clock for tests
}

// NewBreaker builds a closed breaker. onOpen (optional) is invoked with
// true when the breaker opens and false when it leaves the open state —
// the hook behind the cluster_breaker_open gauge.
func NewBreaker(threshold int, cooldown time.Duration, onOpen func(bool)) *Breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, onOpen: onOpen, now: time.Now}
}

// Allow reports whether a request may be sent now. In the open state it
// starts returning true once the cooldown has elapsed, transitioning to
// half-open.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen {
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		if b.onOpen != nil {
			b.onOpen(false)
		}
	}
	return true
}

// Record reports a request outcome. A success resets to closed; a failure
// in half-open, or the threshold'th consecutive failure in closed,
// (re)opens the breaker.
func (b *Breaker) Record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		wasOpen := b.state == BreakerOpen
		b.state = BreakerClosed
		b.failures = 0
		if wasOpen && b.onOpen != nil {
			b.onOpen(false)
		}
		return
	}
	b.failures++
	if b.state == BreakerHalfOpen || b.failures >= b.threshold {
		wasOpen := b.state == BreakerOpen
		b.state = BreakerOpen
		b.openedAt = b.now()
		if !wasOpen && b.onOpen != nil {
			b.onOpen(true)
		}
	}
}

// State returns the current state (open is reported as open even if the
// cooldown has already elapsed — the transition happens on the next Allow).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// RetryAfter is how long until an open breaker half-opens and lets the next
// probe through — the Retry-After hint peer_unavailable responses carry so
// clients back off for exactly the blackout the breaker enforces. Zero when
// the breaker is not open (retry immediately).
func (b *Breaker) RetryAfter() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerOpen {
		return 0
	}
	d := b.cooldown - b.now().Sub(b.openedAt)
	if d < 0 {
		return 0
	}
	return d
}
