package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestLeaseTableStateMachine(t *testing.T) {
	lt := NewLeaseTable()
	if _, ok := lt.Current("d"); ok {
		t.Fatal("fresh table must not know d")
	}
	if lt.NextEpoch("d") != 1 {
		t.Fatalf("NextEpoch on empty = %d, want 1", lt.NextEpoch("d"))
	}
	if !lt.Promise("d", 1) {
		t.Fatal("first promise at 1 must succeed")
	}
	if lt.Promise("d", 1) {
		t.Fatal("re-promising the same epoch must fail")
	}
	if !lt.Adopt("d", "http://a:1", 1) {
		t.Fatal("adopting the promised epoch must succeed")
	}
	if !lt.Adopt("d", "http://a:1", 1) {
		t.Fatal("idempotent re-adopt by the same owner must succeed")
	}
	if lt.Adopt("d", "http://b:1", 1) {
		t.Fatal("a different owner must not adopt the same epoch")
	}
	if li, ok := lt.CheckEpoch("d", 1); !ok || li.Owner != "http://a:1" {
		t.Fatalf("CheckEpoch(1) = %+v/%v, want ok for owner a", li, ok)
	}
	if li, ok := lt.CheckEpoch("d", 0); ok || li.Epoch != 1 {
		t.Fatalf("CheckEpoch(0) = %+v/%v, want fenced with current lease", li, ok)
	}
	if !lt.Adopt("d", "http://b:1", 3) {
		t.Fatal("higher-epoch adopt must succeed")
	}
	if lt.Promise("d", 3) || lt.Promise("d", 2) {
		t.Fatal("promises at or below the adopted epoch must fail")
	}
	if lt.NextEpoch("d") != 4 {
		t.Fatalf("NextEpoch = %d, want 4", lt.NextEpoch("d"))
	}
	// Promised beyond adopted raises the claim floor.
	if !lt.Promise("d", 9) {
		t.Fatal("promise at 9 must succeed")
	}
	if lt.NextEpoch("d") != 10 {
		t.Fatalf("NextEpoch after promise(9) = %d, want 10", lt.NextEpoch("d"))
	}

	// Snapshot/Load round-trip, then Forget.
	snap := lt.Snapshot()
	lt2 := NewLeaseTable()
	lt2.Load(snap)
	if li, ok := lt2.Current("d"); !ok || li.Owner != "http://b:1" || li.Epoch != 3 || li.Promised != 9 {
		t.Fatalf("round-tripped lease = %+v/%v", li, ok)
	}
	lt2.Forget("d")
	if _, ok := lt2.Current("d"); ok {
		t.Fatal("Forget must drop the lease")
	}
}

// TestCheckEpochFencesAtPromised is the acked-write-loss regression: once a
// node has promised epoch E+k to a claimant, replication traffic below E+k
// must be refused even though the adopted lease still names the old owner at
// E — accepting it would let that owner acknowledge an edit which the E+k
// winner's snapshot ship then erases cluster-wide.
func TestCheckEpochFencesAtPromised(t *testing.T) {
	lt := NewLeaseTable()
	if !lt.Adopt("d", "http://old:1", 2) {
		t.Fatal("adopt at 2 must succeed")
	}
	if _, ok := lt.CheckEpoch("d", 2); !ok {
		t.Fatal("traffic at the adopted epoch must pass before any promise")
	}
	if !lt.Promise("d", 5) {
		t.Fatal("promise at 5 must succeed")
	}
	if li, ok := lt.CheckEpoch("d", 2); ok {
		t.Fatalf("traffic at the adopted epoch must be fenced by the promise; lease %+v", li)
	}
	if _, ok := lt.CheckEpoch("d", 4); ok {
		t.Fatal("traffic below the promised epoch must be fenced")
	}
	if li, ok := lt.CheckEpoch("d", 5); !ok || li.Owner != "http://old:1" {
		t.Fatalf("the promised claimant's own traffic must pass; lease %+v ok %v", li, ok)
	}
}

func TestLeaseTableOnChange(t *testing.T) {
	lt := NewLeaseTable()
	calls := 0
	lt.OnChange(func() { calls++ })
	lt.Promise("d", 1)  // fires
	lt.Promise("d", 1)  // no-op, must not fire
	lt.Adopt("d", "a", 1)
	lt.Adopt("d", "b", 1) // refused, must not fire
	lt.Forget("d")
	lt.Forget("d") // already gone, must not fire
	if calls != 3 {
		t.Fatalf("onChange calls = %d, want 3", calls)
	}
}

// TestLeaseFencingProperty drives random claim schedules over a simulated
// cluster of lease tables and asserts the safety property the whole design
// rests on: no two candidates ever win the same (design, epoch), no matter
// how the network partitions — because winning requires promises from a
// majority and each table promises an epoch at most once.
func TestLeaseFencingProperty(t *testing.T) {
	const nodes = 5
	quorum := nodes/2 + 1
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tables := make([]*LeaseTable, nodes)
		for i := range tables {
			tables[i] = NewLeaseTable()
		}
		winners := map[string]int{} // "design/epoch" → winning node
		for step := 0; step < 400; step++ {
			design := fmt.Sprintf("d%d", rng.Intn(3))
			cand := rng.Intn(nodes)
			// The candidate proposes the next epoch by its own view —
			// sometimes a deliberately stale one to model a partitioned
			// straggler retrying an old claim.
			epoch := tables[cand].NextEpoch(design)
			if rng.Intn(4) == 0 && epoch > 1 {
				epoch -= uint64(rng.Intn(int(epoch)))
			}
			// Random partition: each node is independently reachable.
			grants := 0
			for i, lt := range tables {
				if i != cand && rng.Intn(3) == 0 {
					continue // unreachable this round
				}
				if lt.Promise(design, epoch) {
					grants++
				}
			}
			if grants < quorum {
				continue // claim failed; promises stay burned
			}
			key := fmt.Sprintf("%s/%d", design, epoch)
			if prev, dup := winners[key]; dup {
				t.Fatalf("seed %d step %d: (%s) won by node %d and node %d",
					seed, step, key, prev, cand)
			}
			winners[key] = cand
			// The winner adopts on itself and on a random subset of the
			// granters (models partial broadcast of the adoption).
			self := fmt.Sprintf("http://n%d", cand)
			if !tables[cand].Adopt(design, self, epoch) {
				t.Fatalf("seed %d step %d: winner could not adopt its own claim", seed, step)
			}
			for i, lt := range tables {
				if i != cand && rng.Intn(2) == 0 {
					lt.Adopt(design, self, epoch)
				}
			}
		}
		if len(winners) == 0 {
			t.Fatalf("seed %d: no claim ever won — test is vacuous", seed)
		}
	}
}
