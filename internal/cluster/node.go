package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config describes one node's view of the cluster. Peers seeds the initial
// membership (including Self — it is appended if missing); membership is
// dynamic after that via AddMember/RemoveMember. Everything else has working
// defaults.
type Config struct {
	Self     string   // this node's advertised base URL, e.g. http://10.0.0.1:8080
	Peers    []string // initial membership (base URLs)
	Replicas int      // read replicas per design beyond the owner (default 1)
	VNodes   int      // virtual nodes per peer (default DefaultVNodes)

	HeartbeatInterval time.Duration // probe cadence (default 1s)
	HeartbeatTimeout  time.Duration // per-probe timeout (default 500ms)
	FailAfter         int           // consecutive failures before ejection (default 3)

	BreakerThreshold int           // consecutive forward failures to open (default 3)
	BreakerCooldown  time.Duration // open → half-open delay (default 5s)

	Proxy             bool          // proxy edits to the owner instead of 307 redirects
	ReplicateInterval time.Duration // snapshot shipping cadence (default 1s)

	Client *http.Client // transport for probes/forwards/shipping (default http.DefaultClient-like)
}

// PeerStatus is one row of the /v1/cluster/members payload.
type PeerStatus struct {
	URL      string `json:"url"`
	Self     bool   `json:"self,omitempty"`
	Alive    bool   `json:"alive"`
	Breaker  string `json:"breaker,omitempty"`
	Failures int    `json:"heartbeat_failures,omitempty"` // consecutive
}

// Node is a live cluster membership view: the member list (dynamic — join
// and leave rebuild the ring), which members are currently alive
// (heartbeat-driven), the consistent-hash ring over the alive set, and a
// circuit breaker per remote peer. All methods are safe for concurrent use.
// Start launches the heartbeat prober; Close stops it.
type Node struct {
	cfg    Config
	client *http.Client
	met    *nodeMetrics
	ring   atomic.Pointer[Ring]

	mu       sync.Mutex
	members  []string // sorted, includes Self
	breakers map[string]*Breaker
	alive    map[string]bool
	fails    map[string]int       // consecutive probe failures
	next     map[string]time.Time // backoff: earliest next probe per ejected peer
	started  bool

	stop chan struct{}
	done chan struct{}
}

// normalizePeer trims and validates a peer base URL.
func normalizePeer(p string) (string, error) {
	p = strings.TrimRight(strings.TrimSpace(p), "/")
	if p == "" {
		return "", fmt.Errorf("cluster: empty peer URL")
	}
	u, err := url.Parse(p)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return "", fmt.Errorf("cluster: peer %q is not an http(s) base URL", p)
	}
	return p, nil
}

// NewNode validates and normalizes cfg and builds the initial ring with
// every peer presumed alive (an unreachable peer is ejected after
// FailAfter probes). Call Start to begin probing.
func NewNode(cfg Config) (*Node, error) {
	cfg.Self = strings.TrimRight(cfg.Self, "/")
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: Self URL required")
	}
	peers := make([]string, 0, len(cfg.Peers)+1)
	seen := map[string]bool{}
	for _, p := range append([]string{cfg.Self}, cfg.Peers...) {
		if strings.TrimSpace(p) == "" {
			continue
		}
		norm, err := normalizePeer(p)
		if err != nil {
			return nil, err
		}
		if seen[norm] {
			continue
		}
		seen[norm] = true
		peers = append(peers, norm)
	}
	sort.Strings(peers)
	cfg.Peers = peers
	if cfg.Replicas < 0 {
		cfg.Replicas = 0
	} else if cfg.Replicas == 0 {
		cfg.Replicas = 1
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = DefaultVNodes
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = time.Second
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 500 * time.Millisecond
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = 3
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 5 * time.Second
	}
	if cfg.ReplicateInterval <= 0 {
		cfg.ReplicateInterval = time.Second
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	n := &Node{
		cfg:      cfg,
		client:   client,
		met:      newNodeMetrics(peers),
		members:  peers,
		breakers: make(map[string]*Breaker, len(peers)),
		alive:    make(map[string]bool, len(peers)),
		fails:    make(map[string]int, len(peers)),
		next:     make(map[string]time.Time),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, p := range peers {
		n.alive[p] = true
		if p != cfg.Self {
			n.breakers[p] = n.newPeerBreaker(p)
		}
	}
	n.ring.Store(NewRing(peers, cfg.VNodes))
	n.met.alive.Set(float64(len(peers)))
	return n, nil
}

func (n *Node) newPeerBreaker(peer string) *Breaker {
	return NewBreaker(n.cfg.BreakerThreshold, n.cfg.BreakerCooldown, func(open bool) {
		v := 0.0
		if open {
			v = 1
		}
		n.met.breakerOpen.With(peer).Set(v)
	})
}

// Start launches the heartbeat prober (idempotent).
func (n *Node) Start() {
	n.mu.Lock()
	if n.started {
		n.mu.Unlock()
		return
	}
	n.started = true
	n.mu.Unlock()
	go n.heartbeatLoop()
}

// Close stops the prober and waits for it to exit.
func (n *Node) Close() {
	n.mu.Lock()
	started := n.started
	n.mu.Unlock()
	select {
	case <-n.stop:
	default:
		close(n.stop)
	}
	if started {
		<-n.done
	}
}

// Self returns this node's normalized base URL.
func (n *Node) Self() string { return n.cfg.Self }

// Proxy reports whether edits to non-owners are proxied (true) or answered
// with a 307 redirect (false).
func (n *Node) Proxy() bool { return n.cfg.Proxy }

// ReplicateInterval is the snapshot-shipping cadence.
func (n *Node) ReplicateInterval() time.Duration { return n.cfg.ReplicateInterval }

// Client returns the HTTP client used for all intra-cluster traffic.
func (n *Node) Client() *http.Client { return n.client }

// Ring returns the current ring over the alive members.
func (n *Node) Ring() *Ring { return n.ring.Load() }

// Placement returns the owner and read replicas of key under the current
// ring.
func (n *Node) Placement(key string) (owner string, replicas []string) {
	l := n.ring.Load().Lookup(key, n.cfg.Replicas+1)
	if len(l) == 0 {
		return "", nil
	}
	return l[0], l[1:]
}

// Role resolves this node's role for key: the owner URL plus whether this
// node is that owner or one of the key's replicas.
func (n *Node) Role(key string) (owner string, isOwner, isReplica bool) {
	owner, replicas := n.Placement(key)
	if owner == n.cfg.Self {
		return owner, true, false
	}
	for _, p := range replicas {
		if p == n.cfg.Self {
			return owner, false, true
		}
	}
	return owner, false, false
}

// Breaker returns the circuit breaker guarding traffic to peer (nil for
// self or unknown peers).
func (n *Node) Breaker(peer string) *Breaker {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.breakers[peer]
}

// Members returns the current membership, sorted by URL.
func (n *Node) Members() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, len(n.members))
	copy(out, n.members)
	return out
}

// IsMember reports whether peer (normalized) is in the membership.
func (n *Node) IsMember(peer string) bool {
	norm, err := normalizePeer(peer)
	if err != nil {
		return false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, m := range n.members {
		if m == norm {
			return true
		}
	}
	return false
}

// AliveMember reports whether peer is a member currently in the ring.
func (n *Node) AliveMember(peer string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.alive[peer]
}

// Quorum is the majority size of the full membership: lease claims and
// write acceptance require this many nodes (counting self). It is computed
// over configured members, not the alive subset — a partitioned minority
// must not form its own majority.
func (n *Node) Quorum() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.members)/2 + 1
}

// HasMajority reports whether this node can currently see a majority of the
// membership (itself included) — the gate for accepting edits and claiming
// leases.
func (n *Node) HasMajority() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	alive := 0
	for _, m := range n.members {
		if n.alive[m] {
			alive++
		}
	}
	return alive >= len(n.members)/2+1
}

// AddMember joins peer to the membership (idempotent). The new member is
// presumed alive and enters the ring immediately; replication catch-up to
// it happens on the owners' next shipping ticks.
func (n *Node) AddMember(peer string) (string, error) {
	norm, err := normalizePeer(peer)
	if err != nil {
		return "", err
	}
	n.mu.Lock()
	for _, m := range n.members {
		if m == norm {
			n.mu.Unlock()
			return norm, nil
		}
	}
	n.members = append(n.members, norm)
	sort.Strings(n.members)
	n.alive[norm] = true
	n.fails[norm] = 0
	delete(n.next, norm)
	if norm != n.cfg.Self && n.breakers[norm] == nil {
		n.breakers[norm] = n.newPeerBreaker(norm)
	}
	n.met.ensurePeer(norm)
	n.rebuildRingLocked()
	n.mu.Unlock()
	return norm, nil
}

// RemoveMember removes peer from the membership (idempotent). Removing Self
// is refused — a node leaves by asking the rest of the cluster to remove it
// and then shutting down.
func (n *Node) RemoveMember(peer string) (string, error) {
	norm, err := normalizePeer(peer)
	if err != nil {
		return "", err
	}
	if norm == n.cfg.Self {
		return "", fmt.Errorf("cluster: refusing to remove self from membership")
	}
	n.mu.Lock()
	kept := n.members[:0]
	found := false
	for _, m := range n.members {
		if m == norm {
			found = true
			continue
		}
		kept = append(kept, m)
	}
	n.members = kept
	if found {
		delete(n.alive, norm)
		delete(n.fails, norm)
		delete(n.next, norm)
		delete(n.breakers, norm)
		n.rebuildRingLocked()
	}
	n.mu.Unlock()
	return norm, nil
}

// rebuildRingLocked rebuilds the ring over alive ∩ members and refreshes
// the alive gauge. Caller holds n.mu.
func (n *Node) rebuildRingLocked() {
	live := make([]string, 0, len(n.members))
	for _, m := range n.members {
		if n.alive[m] {
			live = append(live, m)
		}
	}
	n.ring.Store(NewRing(live, n.cfg.VNodes))
	n.met.alive.Set(float64(len(live)))
}

// Peers returns every member with its live status, sorted by URL.
func (n *Node) Peers() []PeerStatus {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]PeerStatus, 0, len(n.members))
	for _, p := range n.members {
		st := PeerStatus{URL: p, Self: p == n.cfg.Self, Alive: n.alive[p], Failures: n.fails[p]}
		if b := n.breakers[p]; b != nil {
			st.Breaker = b.State().String()
		}
		out = append(out, st)
	}
	return out
}

// NoteForward counts one redirect/proxy to peer.
func (n *Node) NoteForward(peer string) { n.met.forwards.With(peer).Inc() }

// NoteForwardError counts one failed proxy to peer.
func (n *Node) NoteForwardError(peer string) { n.met.forwardErrs.With(peer).Inc() }

// NoteShipped counts one snapshot shipment acked by peer.
func (n *Node) NoteShipped(peer string) { n.met.shipped.With(peer).Inc() }

// NoteReplicateApplied counts one shipped snapshot applied locally.
func (n *Node) NoteReplicateApplied() { n.met.applied.Inc() }

// NoteReplicateSkipped counts one shipped snapshot skipped as stale.
func (n *Node) NoteReplicateSkipped() { n.met.skipped.Inc() }

// NotePromotion counts one design this node promoted itself to own.
func (n *Node) NotePromotion() { n.met.promotions.Inc() }

// NoteFenced counts one stale-epoch internal request rejected here.
func (n *Node) NoteFenced() { n.met.fenced.Inc() }

// SetLeaseEpoch records the current lease epoch of a design on the
// cluster_lease_epoch gauge.
func (n *Node) SetLeaseEpoch(design string, epoch uint64) {
	n.met.ensureDesign(design)
	n.met.leaseEpoch.With(design).Set(float64(epoch))
}

// ClearLeaseEpoch zeroes a deleted design's lease-epoch gauge.
func (n *Node) ClearLeaseEpoch(design string) { n.met.leaseEpoch.With(design).Set(0) }

// SetReplicationLag records how many edit seqs peer's replica trails this
// owner.
func (n *Node) SetReplicationLag(peer string, seqs float64) { n.met.lag.With(peer).Set(seqs) }

// heartbeatLoop probes every remote member each HeartbeatInterval, ejecting
// a peer from the ring after FailAfter consecutive failures and re-admitting
// it on the first success. Ejected peers are probed with exponential
// backoff (capped at 8× the interval) so a long-dead peer costs little.
func (n *Node) heartbeatLoop() {
	defer close(n.done)
	t := time.NewTicker(n.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
			n.probeAll()
		}
	}
}

func (n *Node) probeAll() {
	now := time.Now()
	n.mu.Lock()
	due := make([]string, 0, len(n.members))
	for _, p := range n.members {
		if p == n.cfg.Self || now.Before(n.next[p]) {
			continue
		}
		due = append(due, p)
	}
	n.mu.Unlock()
	for _, p := range due {
		n.notePeer(p, n.probe(p))
		select {
		case <-n.stop:
			return
		default:
		}
	}
}

// InternalHeader marks cluster-originated internal traffic. Servers use it
// to keep internal calls out of the per-route user-request metrics and to
// log them at debug level; its value names the kind of call ("heartbeat",
// "replicate", "edits", "lease-claim", "members"). The full enumeration is
// documented in API.md.
const InternalHeader = "X-Timingd-Internal"

// PeerHeader carries the sender's advertised base URL on every internal
// request, so receivers can attribute traffic and answer fenced senders
// with the current owner.
const PeerHeader = "X-Timingd-Peer"

// probe GETs the peer's internal health endpoint within HeartbeatTimeout.
func (n *Node) probe(peer string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.HeartbeatTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/internal/health", nil)
	if err != nil {
		return false
	}
	req.Header.Set(InternalHeader, "heartbeat")
	req.Header.Set(PeerHeader, n.cfg.Self)
	resp, err := n.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// notePeer folds one probe outcome into the membership view, rebuilding the
// ring when a peer's aliveness flips.
func (n *Node) notePeer(peer string, ok bool) {
	n.mu.Lock()
	isMember := false
	for _, m := range n.members {
		if m == peer {
			isMember = true
			break
		}
	}
	if !isMember { // removed while the probe was in flight
		n.mu.Unlock()
		return
	}
	changed := false
	if ok {
		if !n.alive[peer] {
			n.alive[peer] = true
			changed = true
		}
		n.fails[peer] = 0
		delete(n.next, peer)
	} else {
		n.fails[peer]++
		n.met.hbFails.With(peer).Inc()
		if n.fails[peer] >= n.cfg.FailAfter {
			if n.alive[peer] {
				n.alive[peer] = false
				changed = true
			}
			shift := n.fails[peer] - n.cfg.FailAfter
			if shift > 3 {
				shift = 3
			}
			n.next[peer] = time.Now().Add(n.cfg.HeartbeatInterval << shift)
		}
	}
	if changed {
		n.rebuildRingLocked()
	}
	n.mu.Unlock()
}
