package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config describes one node's view of the cluster. Peers is the full static
// membership list (including Self — it is appended if missing); everything
// else has working defaults.
type Config struct {
	Self     string   // this node's advertised base URL, e.g. http://10.0.0.1:8080
	Peers    []string // static membership (base URLs)
	Replicas int      // read replicas per design beyond the owner (default 1)
	VNodes   int      // virtual nodes per peer (default DefaultVNodes)

	HeartbeatInterval time.Duration // probe cadence (default 1s)
	HeartbeatTimeout  time.Duration // per-probe timeout (default 500ms)
	FailAfter         int           // consecutive failures before ejection (default 3)

	BreakerThreshold int           // consecutive forward failures to open (default 3)
	BreakerCooldown  time.Duration // open → half-open delay (default 5s)

	Proxy             bool          // proxy edits to the owner instead of 307 redirects
	ReplicateInterval time.Duration // snapshot shipping cadence (default 1s)

	Client *http.Client // transport for probes/forwards/shipping (default http.DefaultClient-like)
}

// PeerStatus is one row of the /v1/cluster introspection payload.
type PeerStatus struct {
	URL      string `json:"url"`
	Self     bool   `json:"self,omitempty"`
	Alive    bool   `json:"alive"`
	Breaker  string `json:"breaker,omitempty"`
	Failures int    `json:"heartbeat_failures,omitempty"` // consecutive
}

// Node is a live cluster membership view: the static peer list, which peers
// are currently alive (heartbeat-driven), the consistent-hash ring over the
// alive set, and a circuit breaker per remote peer. All methods are safe
// for concurrent use. Start launches the heartbeat prober; Close stops it.
type Node struct {
	cfg      Config
	client   *http.Client
	breakers map[string]*Breaker
	met      *nodeMetrics
	ring     atomic.Pointer[Ring]

	mu      sync.Mutex
	alive   map[string]bool
	fails   map[string]int       // consecutive probe failures
	next    map[string]time.Time // backoff: earliest next probe per ejected peer
	started bool

	stop chan struct{}
	done chan struct{}
}

// NewNode validates and normalizes cfg and builds the initial ring with
// every peer presumed alive (an unreachable peer is ejected after
// FailAfter probes). Call Start to begin probing.
func NewNode(cfg Config) (*Node, error) {
	cfg.Self = strings.TrimRight(cfg.Self, "/")
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: Self URL required")
	}
	peers := make([]string, 0, len(cfg.Peers)+1)
	seen := map[string]bool{}
	for _, p := range append([]string{cfg.Self}, cfg.Peers...) {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p == "" || seen[p] {
			continue
		}
		u, err := url.Parse(p)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("cluster: peer %q is not an http(s) base URL", p)
		}
		seen[p] = true
		peers = append(peers, p)
	}
	sort.Strings(peers)
	cfg.Peers = peers
	if cfg.Replicas < 0 {
		cfg.Replicas = 0
	} else if cfg.Replicas == 0 {
		cfg.Replicas = 1
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = DefaultVNodes
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = time.Second
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 500 * time.Millisecond
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = 3
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 5 * time.Second
	}
	if cfg.ReplicateInterval <= 0 {
		cfg.ReplicateInterval = time.Second
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	n := &Node{
		cfg:      cfg,
		client:   client,
		breakers: make(map[string]*Breaker, len(peers)),
		met:      newNodeMetrics(peers),
		alive:    make(map[string]bool, len(peers)),
		fails:    make(map[string]int, len(peers)),
		next:     make(map[string]time.Time),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, p := range peers {
		n.alive[p] = true
		if p != cfg.Self {
			peer := p
			n.breakers[p] = NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, func(open bool) {
				v := 0.0
				if open {
					v = 1
				}
				n.met.breakerOpen.With(peer).Set(v)
			})
		}
	}
	n.ring.Store(NewRing(peers, cfg.VNodes))
	n.met.alive.Set(float64(len(peers)))
	return n, nil
}

// Start launches the heartbeat prober (idempotent).
func (n *Node) Start() {
	n.mu.Lock()
	if n.started {
		n.mu.Unlock()
		return
	}
	n.started = true
	n.mu.Unlock()
	go n.heartbeatLoop()
}

// Close stops the prober and waits for it to exit.
func (n *Node) Close() {
	n.mu.Lock()
	started := n.started
	n.mu.Unlock()
	select {
	case <-n.stop:
	default:
		close(n.stop)
	}
	if started {
		<-n.done
	}
}

// Self returns this node's normalized base URL.
func (n *Node) Self() string { return n.cfg.Self }

// Proxy reports whether edits to non-owners are proxied (true) or answered
// with a 307 redirect (false).
func (n *Node) Proxy() bool { return n.cfg.Proxy }

// ReplicateInterval is the snapshot-shipping cadence.
func (n *Node) ReplicateInterval() time.Duration { return n.cfg.ReplicateInterval }

// Client returns the HTTP client used for all intra-cluster traffic.
func (n *Node) Client() *http.Client { return n.client }

// Ring returns the current ring over the alive peers.
func (n *Node) Ring() *Ring { return n.ring.Load() }

// Placement returns the owner and read replicas of key under the current
// ring.
func (n *Node) Placement(key string) (owner string, replicas []string) {
	l := n.ring.Load().Lookup(key, n.cfg.Replicas+1)
	if len(l) == 0 {
		return "", nil
	}
	return l[0], l[1:]
}

// Role resolves this node's role for key: the owner URL plus whether this
// node is that owner or one of the key's replicas.
func (n *Node) Role(key string) (owner string, isOwner, isReplica bool) {
	owner, replicas := n.Placement(key)
	if owner == n.cfg.Self {
		return owner, true, false
	}
	for _, p := range replicas {
		if p == n.cfg.Self {
			return owner, false, true
		}
	}
	return owner, false, false
}

// Breaker returns the circuit breaker guarding traffic to peer (nil for
// self or unknown peers).
func (n *Node) Breaker(peer string) *Breaker { return n.breakers[peer] }

// Peers returns every configured peer with its live status, sorted by URL.
func (n *Node) Peers() []PeerStatus {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]PeerStatus, 0, len(n.cfg.Peers))
	for _, p := range n.cfg.Peers {
		st := PeerStatus{URL: p, Self: p == n.cfg.Self, Alive: n.alive[p], Failures: n.fails[p]}
		if b := n.breakers[p]; b != nil {
			st.Breaker = b.State().String()
		}
		out = append(out, st)
	}
	return out
}

// NoteForward counts one redirect/proxy to peer.
func (n *Node) NoteForward(peer string) { n.met.forwards.With(peer).Inc() }

// NoteForwardError counts one failed proxy to peer.
func (n *Node) NoteForwardError(peer string) { n.met.forwardErrs.With(peer).Inc() }

// NoteShipped counts one snapshot shipment acked by peer.
func (n *Node) NoteShipped(peer string) { n.met.shipped.With(peer).Inc() }

// NoteReplicateApplied counts one shipped snapshot applied locally.
func (n *Node) NoteReplicateApplied() { n.met.applied.Inc() }

// NoteReplicateSkipped counts one shipped snapshot skipped as stale.
func (n *Node) NoteReplicateSkipped() { n.met.skipped.Inc() }

// SetReplicationLag records how many snapshot seqs peer's replica trails
// this owner.
func (n *Node) SetReplicationLag(peer string, seqs float64) { n.met.lag.With(peer).Set(seqs) }

// heartbeatLoop probes every remote peer each HeartbeatInterval, ejecting a
// peer from the ring after FailAfter consecutive failures and re-admitting
// it on the first success. Ejected peers are probed with exponential
// backoff (capped at 8× the interval) so a long-dead peer costs little.
func (n *Node) heartbeatLoop() {
	defer close(n.done)
	t := time.NewTicker(n.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
			n.probeAll()
		}
	}
}

func (n *Node) probeAll() {
	now := time.Now()
	n.mu.Lock()
	due := make([]string, 0, len(n.cfg.Peers))
	for _, p := range n.cfg.Peers {
		if p == n.cfg.Self || now.Before(n.next[p]) {
			continue
		}
		due = append(due, p)
	}
	n.mu.Unlock()
	for _, p := range due {
		n.notePeer(p, n.probe(p))
		select {
		case <-n.stop:
			return
		default:
		}
	}
}

// InternalHeader marks cluster-originated internal traffic (heartbeats,
// snapshot replication). Servers use it to keep internal calls out of the
// per-route user-request metrics and to log them at debug level; its value
// names the kind of call ("heartbeat", "replicate").
const InternalHeader = "X-Timingd-Internal"

// probe GETs the peer's health endpoint within HeartbeatTimeout.
func (n *Node) probe(peer string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.HeartbeatTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/healthz", nil)
	if err != nil {
		return false
	}
	req.Header.Set(InternalHeader, "heartbeat")
	resp, err := n.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// notePeer folds one probe outcome into the membership view, rebuilding the
// ring when a peer's aliveness flips.
func (n *Node) notePeer(peer string, ok bool) {
	n.mu.Lock()
	changed := false
	if ok {
		if !n.alive[peer] {
			n.alive[peer] = true
			changed = true
		}
		n.fails[peer] = 0
		delete(n.next, peer)
	} else {
		n.fails[peer]++
		n.met.hbFails.With(peer).Inc()
		if n.fails[peer] >= n.cfg.FailAfter {
			if n.alive[peer] {
				n.alive[peer] = false
				changed = true
			}
			shift := n.fails[peer] - n.cfg.FailAfter
			if shift > 3 {
				shift = 3
			}
			n.next[peer] = time.Now().Add(n.cfg.HeartbeatInterval << shift)
		}
	}
	aliveCount := 0
	if changed {
		live := make([]string, 0, len(n.cfg.Peers))
		for _, p := range n.cfg.Peers {
			if n.alive[p] {
				live = append(live, p)
			}
		}
		n.ring.Store(NewRing(live, n.cfg.VNodes))
	}
	for _, p := range n.cfg.Peers {
		if n.alive[p] {
			aliveCount++
		}
	}
	n.mu.Unlock()
	n.met.alive.Set(float64(aliveCount))
}
