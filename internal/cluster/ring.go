// Package cluster turns timingd into a multi-node service. A consistent-hash
// ring with virtual nodes places every design on a primary owner plus R read
// replicas, rebuilt deterministically from a static peer list; HTTP
// heartbeats with timeout and backoff eject dead peers from the ring;
// per-peer circuit breakers protect proxying; and Node bundles the whole
// membership view for the cluster-aware router in internal/server, which
// forwards, redirects, or serves any request on any node.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVNodes is the virtual-node count per peer when Config.VNodes is
// zero. 64 points per peer keeps the ownership imbalance across a handful
// of peers within a few percent while the ring stays tiny.
const DefaultVNodes = 64

// point is one virtual node: a position on the 64-bit hash circle owned by
// a peer.
type point struct {
	hash uint64
	peer string
}

// Ring is an immutable consistent-hash ring. Build one with NewRing; to
// change membership, build a new ring from the new peer list — two rings
// built from the same (sorted) peers and vnode count are identical, so every
// node that agrees on the alive set agrees on placement.
type Ring struct {
	points []point
	peers  []string // sorted, deduplicated
}

// hash64 is FNV-64a finished with a murmur3-style avalanche mix — stable
// across processes and platforms (unlike Go's runtime map hash), and the
// finalizer spreads the near-identical vnode strings ("peer#0", "peer#1",
// …) uniformly around the circle, which raw FNV does not.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// NewRing builds a ring over peers with vnodes virtual nodes per peer
// (DefaultVNodes when vnodes <= 0). Peers are sorted and deduplicated, so
// the ring is a pure function of the membership set.
func NewRing(peers []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	uniq := make([]string, 0, len(peers))
	seen := make(map[string]bool, len(peers))
	for _, p := range peers {
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		uniq = append(uniq, p)
	}
	sort.Strings(uniq)
	r := &Ring{peers: uniq, points: make([]point, 0, len(uniq)*vnodes)}
	for _, p := range uniq {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, point{hash: hash64(fmt.Sprintf("%s#%d", p, i)), peer: p})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].peer < r.points[j].peer
	})
	return r
}

// Peers returns the ring's member set, sorted. The slice is shared; do not
// mutate.
func (r *Ring) Peers() []string { return r.peers }

// Lookup walks the ring clockwise from key's hash and returns the first n
// distinct peers: index 0 is the key's owner, the rest are its replicas in
// preference order. Fewer than n peers are returned when the ring is smaller
// than n.
func (r *Ring) Lookup(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.peers) {
		n = len(r.peers)
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)].peer
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// Owner returns the peer owning key ("" on an empty ring).
func (r *Ring) Owner(key string) string {
	l := r.Lookup(key, 1)
	if len(l) == 0 {
		return ""
	}
	return l[0]
}
