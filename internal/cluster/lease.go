package cluster

import "sync"

// Ownership of a design is a lease: (owner, epoch) where the epoch is a
// monotonically increasing fencing token. A node becomes owner by claiming a
// strictly greater epoch and collecting promises from a majority of the
// cluster membership (Paxos-promise style: a node that has promised epoch E
// refuses every claim at or below E, and refuses replication traffic below
// the highest epoch it has adopted *or promised*). An old owner that was
// partitioned away keeps its stale epoch; every replicate ship or edit it
// sends is rejected with
// stale_epoch by any node that adopted the greater one — that rejection is
// what fences it.
//
// LeaseTable is one node's view of the per-design leases: the adopted
// (owner, epoch) plus the highest epoch it has promised to a claim. It is
// a pure state machine — the claim RPCs live in the server layer.

// LeaseInfo is one design's lease as this node knows it. Promised is the
// highest epoch this node has promised to a claimant (promises outlive the
// claim: once promised, epochs at or below are never granted again).
type LeaseInfo struct {
	Owner    string `json:"owner,omitempty"`
	Epoch    uint64 `json:"epoch"`
	Promised uint64 `json:"promised,omitempty"`
}

// LeaseTable holds the per-design lease state. Safe for concurrent use.
// The optional change hook (set once, before concurrent use) fires after
// every mutation so the server can persist promises durably — a restarted
// node must not re-grant an epoch it promised before the crash.
type LeaseTable struct {
	mu       sync.Mutex
	leases   map[string]LeaseInfo
	onChange func()
}

// NewLeaseTable builds an empty table.
func NewLeaseTable() *LeaseTable {
	return &LeaseTable{leases: map[string]LeaseInfo{}}
}

// OnChange registers the persistence hook, called (outside the table lock)
// after every state change.
func (t *LeaseTable) OnChange(fn func()) { t.onChange = fn }

func (t *LeaseTable) changed() {
	if t.onChange != nil {
		t.onChange()
	}
}

// Current returns the design's lease view (zero LeaseInfo if never seen).
func (t *LeaseTable) Current(design string) (LeaseInfo, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	li, ok := t.leases[design]
	return li, ok
}

// Promise grants a claim at epoch iff it is strictly greater than both the
// adopted epoch and every epoch already promised. A granted promise is
// remembered: this node will never grant epoch or anything below it again,
// whether or not the claim wins its quorum.
func (t *LeaseTable) Promise(design string, epoch uint64) bool {
	t.mu.Lock()
	li := t.leases[design]
	if epoch <= li.Epoch || epoch <= li.Promised {
		t.mu.Unlock()
		return false
	}
	li.Promised = epoch
	t.leases[design] = li
	t.mu.Unlock()
	t.changed()
	return true
}

// Adopt installs (owner, epoch) as the design's accepted lease. It succeeds
// for a strictly greater epoch, or for the current epoch when the owner
// matches (idempotent re-adopt); anything lower is stale and refused.
func (t *LeaseTable) Adopt(design, owner string, epoch uint64) bool {
	t.mu.Lock()
	li := t.leases[design]
	switch {
	case epoch > li.Epoch:
	case epoch == li.Epoch && (li.Owner == "" || li.Owner == owner):
	default:
		t.mu.Unlock()
		return false
	}
	li.Owner, li.Epoch = owner, epoch
	if li.Promised < epoch {
		li.Promised = epoch
	}
	t.leases[design] = li
	t.mu.Unlock()
	t.changed()
	return true
}

// CheckEpoch accepts traffic at or above this node's fencing epoch: the
// maximum of the adopted epoch and every epoch promised to a claimant.
// Fencing at the promise (not just the adopted lease) is standard promise
// semantics, and it is load-bearing: a node that has promised E+1 to a new
// claimant but still accepted an ex-owner's edits at E would let that owner
// acknowledge a write which the E+1 winner's snapshot ship then erases.
// It returns the current lease view either way, so a fenced sender can
// learn who owns the design now.
func (t *LeaseTable) CheckEpoch(design string, epoch uint64) (LeaseInfo, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	li := t.leases[design]
	fence := li.Epoch
	if li.Promised > fence {
		fence = li.Promised
	}
	return li, epoch >= fence
}

// NextEpoch is the lowest epoch a fresh claim for design could win here:
// one past everything adopted or promised.
func (t *LeaseTable) NextEpoch(design string) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	li := t.leases[design]
	e := li.Epoch
	if li.Promised > e {
		e = li.Promised
	}
	return e + 1
}

// Forget drops a design's lease (after a DELETE tombstone).
func (t *LeaseTable) Forget(design string) {
	t.mu.Lock()
	_, ok := t.leases[design]
	delete(t.leases, design)
	t.mu.Unlock()
	if ok {
		t.changed()
	}
}

// Snapshot copies the table for persistence.
func (t *LeaseTable) Snapshot() map[string]LeaseInfo {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]LeaseInfo, len(t.leases))
	for d, li := range t.leases {
		out[d] = li
	}
	return out
}

// Load replaces the table wholesale (recovery; before concurrent use).
func (t *LeaseTable) Load(m map[string]LeaseInfo) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.leases = make(map[string]LeaseInfo, len(m))
	for d, li := range m {
		t.leases[d] = li
	}
}
