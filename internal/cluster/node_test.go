package cluster

import (
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"
)

// newListenerAt rebinds the host:port of a base URL (for peer-revival
// tests; the OS may have handed the port out again, hence the error path).
func newListenerAt(t *testing.T, base string) (net.Listener, error) {
	t.Helper()
	u, err := url.Parse(base)
	if err != nil {
		return nil, err
	}
	return net.Listen("tcp", u.Host)
}

func TestNodeConfigValidation(t *testing.T) {
	if _, err := NewNode(Config{}); err == nil {
		t.Fatal("empty Self must be rejected")
	}
	if _, err := NewNode(Config{Self: "http://a:1", Peers: []string{"not-a-url"}}); err == nil {
		t.Fatal("non-URL peer must be rejected")
	}
	n, err := NewNode(Config{Self: "http://a:1/", Peers: []string{"http://b:1", "http://a:1"}})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if n.Self() != "http://a:1" {
		t.Fatalf("Self = %q, want trailing slash trimmed", n.Self())
	}
	if got := n.Ring().Peers(); len(got) != 2 {
		t.Fatalf("ring peers = %v, want self deduped into 2", got)
	}
	if n.Breaker("http://b:1") == nil || n.Breaker("http://a:1") != nil {
		t.Fatal("breakers must exist for remote peers only")
	}
}

func TestNodeRoles(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1"}
	nodes := make([]*Node, len(peers))
	for i, self := range peers {
		n, err := NewNode(Config{Self: self, Peers: peers, Replicas: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		nodes[i] = n
	}
	key := "some-design"
	owner, replicas := nodes[0].Placement(key)
	if owner == "" || len(replicas) != 1 {
		t.Fatalf("placement = %q/%v", owner, replicas)
	}
	owners, reps := 0, 0
	for _, n := range nodes {
		o, isOwner, isReplica := n.Role(key)
		if o != owner {
			t.Fatalf("nodes disagree on owner: %q vs %q", o, owner)
		}
		if isOwner {
			owners++
			if n.Self() != owner {
				t.Fatal("isOwner on a non-owner node")
			}
		}
		if isReplica {
			reps++
			if n.Self() != replicas[0] {
				t.Fatal("isReplica on a non-replica node")
			}
		}
	}
	if owners != 1 || reps != 1 {
		t.Fatalf("owners=%d replicas=%d, want 1/1", owners, reps)
	}
}

func TestDynamicMembership(t *testing.T) {
	n, err := NewNode(Config{Self: "http://a:1", Peers: []string{"http://b:1"}})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if q := n.Quorum(); q != 2 {
		t.Fatalf("2-node quorum = %d, want 2", q)
	}
	if !n.HasMajority() {
		t.Fatal("all-alive 2-node cluster must have a majority")
	}

	// Join: normalized, idempotent, enters ring + breakers immediately.
	if _, err := n.AddMember("not a url"); err == nil {
		t.Fatal("bad join URL must be rejected")
	}
	norm, err := n.AddMember("http://c:1/")
	if err != nil || norm != "http://c:1" {
		t.Fatalf("AddMember = %q/%v", norm, err)
	}
	if _, err := n.AddMember("http://c:1"); err != nil {
		t.Fatalf("idempotent re-join: %v", err)
	}
	if got := n.Members(); len(got) != 3 {
		t.Fatalf("members = %v, want 3", got)
	}
	if !n.IsMember("http://c:1/") || n.IsMember("http://d:1") {
		t.Fatal("IsMember misreports")
	}
	if n.Breaker("http://c:1") == nil {
		t.Fatal("joined peer must get a breaker")
	}
	if q := n.Quorum(); q != 2 {
		t.Fatalf("3-node quorum = %d, want 2", q)
	}
	inRing := func(url string) bool {
		for _, p := range n.Ring().Peers() {
			if p == url {
				return true
			}
		}
		return false
	}
	if !inRing("http://c:1") {
		t.Fatal("joined peer missing from ring")
	}

	// A dead majority of members drops HasMajority even though self is fine.
	n.notePeer("http://b:1", false)
	n.notePeer("http://b:1", false)
	n.notePeer("http://b:1", false)
	n.notePeer("http://c:1", false)
	n.notePeer("http://c:1", false)
	n.notePeer("http://c:1", false)
	if n.HasMajority() {
		t.Fatal("1-of-3 alive must not have a majority")
	}

	// Leave: removed from ring, membership, breakers; self is refused.
	if _, err := n.RemoveMember("http://a:1"); err == nil {
		t.Fatal("removing self must be refused")
	}
	if _, err := n.RemoveMember("http://c:1"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.RemoveMember("http://c:1"); err != nil {
		t.Fatalf("idempotent re-leave: %v", err)
	}
	if n.IsMember("http://c:1") || inRing("http://c:1") || n.Breaker("http://c:1") != nil {
		t.Fatal("left peer must be fully forgotten")
	}
	if q := n.Quorum(); q != 2 {
		t.Fatalf("post-leave quorum = %d, want 2", q)
	}
	// b is still dead: 1 of 2 alive is not a majority.
	if n.HasMajority() {
		t.Fatal("1-of-2 alive must not have a majority")
	}
	n.notePeer("http://b:1", true)
	if !n.HasMajority() {
		t.Fatal("2-of-2 alive must have a majority")
	}
}

// TestHeartbeatEjectsAndReadmits runs a real prober against one live
// httptest peer and one dead port: the dead peer must leave the ring after
// FailAfter probes, and a revived peer must rejoin.
func TestHeartbeatEjectsAndReadmits(t *testing.T) {
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/internal/health" {
			http.NotFound(w, r)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer live.Close()
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // port now refuses connections

	self := "http://127.0.0.1:1" // never probed
	n, err := NewNode(Config{
		Self:              self,
		Peers:             []string{live.URL, deadURL},
		Replicas:          1,
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatTimeout:  100 * time.Millisecond,
		FailAfter:         2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	n.Start()

	waitFor := func(desc string, pred func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if pred() {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s; peers = %+v", desc, n.Peers())
	}
	inRing := func(url string) bool {
		for _, p := range n.Ring().Peers() {
			if p == url {
				return true
			}
		}
		return false
	}
	waitFor("dead peer ejected", func() bool { return !inRing(deadURL) })
	if !inRing(live.URL) || !inRing(self) {
		t.Fatalf("live peers missing from ring: %v", n.Ring().Peers())
	}
	for _, st := range n.Peers() {
		switch st.URL {
		case deadURL:
			if st.Alive {
				t.Fatal("dead peer still marked alive")
			}
		case live.URL, self:
			if !st.Alive {
				t.Fatalf("%s marked dead", st.URL)
			}
		}
	}

	// Revive the dead peer on its old address and wait for re-admission
	// (the prober backs off but keeps probing ejected peers).
	l, err := newListenerAt(t, deadURL)
	if err != nil {
		t.Skipf("cannot rebind %s: %v", deadURL, err)
	}
	revived := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})}
	go revived.Serve(l)
	defer revived.Close()
	waitFor("revived peer re-admitted", func() bool { return inRing(deadURL) })
}
