package cluster

import (
	"testing"
	"time"
)

func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(0, 0)
	var opens []bool
	b := NewBreaker(3, time.Second, func(open bool) { opens = append(opens, open) })
	b.now = func() time.Time { return now }

	if !b.Allow() || b.State() != BreakerClosed {
		t.Fatal("new breaker must be closed and allowing")
	}
	// Failures below threshold keep it closed.
	b.Record(false)
	b.Record(false)
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatalf("state after 2 failures = %v, want closed", b.State())
	}
	// A success resets the failure count.
	b.Record(true)
	b.Record(false)
	b.Record(false)
	if b.State() != BreakerClosed {
		t.Fatal("success must reset the consecutive-failure count")
	}
	// Third consecutive failure opens it.
	b.Record(false)
	if b.State() != BreakerOpen || b.Allow() {
		t.Fatalf("state after threshold failures = %v, want open+refusing", b.State())
	}
	if len(opens) != 1 || !opens[0] {
		t.Fatalf("onOpen calls = %v, want [true]", opens)
	}
	// Cooldown elapses → half-open, probes allowed.
	now = now.Add(time.Second)
	if !b.Allow() || b.State() != BreakerHalfOpen {
		t.Fatalf("post-cooldown state = %v, want half-open+allowing", b.State())
	}
	// A half-open failure reopens immediately.
	b.Record(false)
	if b.State() != BreakerOpen || b.Allow() {
		t.Fatal("half-open failure must reopen")
	}
	// Cooldown again, then a success closes it for good.
	now = now.Add(time.Second)
	if !b.Allow() {
		t.Fatal("second cooldown must allow a probe")
	}
	b.Record(true)
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("half-open success must close")
	}
	// Transitions seen: open, half-open(false), open, half-open(false), closed(false? no — success from half-open is not 'leaving open')
	if opens[len(opens)-1] != false {
		t.Fatalf("final onOpen call = %v, want false", opens[len(opens)-1])
	}
}

func TestBreakerRetryAfter(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(1, 10*time.Second, nil)
	b.now = func() time.Time { return now }

	if got := b.RetryAfter(); got != 0 {
		t.Fatalf("closed RetryAfter = %v, want 0", got)
	}
	b.Record(false) // opens (threshold 1)
	if got := b.RetryAfter(); got != 10*time.Second {
		t.Fatalf("just-opened RetryAfter = %v, want 10s", got)
	}
	now = now.Add(4 * time.Second)
	if got := b.RetryAfter(); got != 6*time.Second {
		t.Fatalf("mid-cooldown RetryAfter = %v, want 6s", got)
	}
	now = now.Add(20 * time.Second) // past the deadline, still formally open
	if got := b.RetryAfter(); got != 0 {
		t.Fatalf("expired-cooldown RetryAfter = %v, want 0", got)
	}
	b.Allow() // half-open now
	if got := b.RetryAfter(); got != 0 {
		t.Fatalf("half-open RetryAfter = %v, want 0", got)
	}
}

func TestBreakerDefaults(t *testing.T) {
	b := NewBreaker(0, 0, nil)
	if b.threshold != 3 || b.cooldown != 5*time.Second {
		t.Fatalf("defaults = %d/%v", b.threshold, b.cooldown)
	}
}
